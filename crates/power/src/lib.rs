//! # McPAT-like power and energy model
//!
//! The paper integrates McPAT for power/energy modelling (§V: "McPAT has
//! been integrated with the rest of the infrastructure for power and
//! energy modelling. The use of the timing and power simulators is
//! optional"). This crate follows the same approach at a coarser grain:
//! activity counts from the timing simulator are multiplied by per-access
//! energies derived from structure sizes, plus a leakage component
//! proportional to area and cycle count. Absolute watts are not the point
//! (we are not calibrated against a 22nm library); *relative* behaviour
//! across configurations is, which is what the design-space and
//! in-order-vs-out-of-order studies need.

use darco_timing::{TimingConfig, TimingStats};

/// Per-access energies in picojoules, scaled from structure geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Base energy of one simple ALU operation.
    pub alu_pj: f64,
    /// Multiply.
    pub mul_pj: f64,
    /// Divide.
    pub div_pj: f64,
    /// FP operation.
    pub fp_pj: f64,
    /// Register-file read port access.
    pub regfile_read_pj: f64,
    /// Register-file write.
    pub regfile_write_pj: f64,
    /// Per-KiB scaling of a cache access (SRAM word-line energy).
    pub cache_pj_per_kib: f64,
    /// Fixed part of a cache access.
    pub cache_base_pj: f64,
    /// DRAM access.
    pub dram_pj: f64,
    /// Branch-predictor access.
    pub bpred_pj: f64,
    /// TLB access.
    pub tlb_pj: f64,
    /// Per-instruction front-end (fetch/decode) energy.
    pub frontend_pj: f64,
    /// Leakage power per square-millimetre-equivalent area unit, in mW.
    pub leakage_mw_per_unit: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_pj: 0.9,
            mul_pj: 3.5,
            div_pj: 12.0,
            fp_pj: 4.5,
            regfile_read_pj: 0.3,
            regfile_write_pj: 0.45,
            cache_pj_per_kib: 0.012,
            cache_base_pj: 0.6,
            dram_pj: 120.0,
            bpred_pj: 0.25,
            tlb_pj: 0.2,
            frontend_pj: 1.1,
            leakage_mw_per_unit: 2.0,
        }
    }
}

/// Per-component energy breakdown (picojoules) and derived power.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerReport {
    pub frontend_pj: f64,
    pub int_core_pj: f64,
    pub fp_core_pj: f64,
    pub regfile_pj: f64,
    pub bpred_pj: f64,
    pub il1_pj: f64,
    pub dl1_pj: f64,
    pub l2_pj: f64,
    pub dram_pj: f64,
    pub tlb_pj: f64,
    pub leakage_pj: f64,
    /// Total energy in picojoules.
    pub total_pj: f64,
    /// Average power in milliwatts at the configured clock.
    pub avg_power_mw: f64,
    /// Energy-delay product (pJ · cycles).
    pub edp: f64,
}

/// Computes the report for a run.
pub fn report(stats: &TimingStats, cfg: &TimingConfig, em: &EnergyModel) -> PowerReport {
    let cache_access = |size: u32| em.cache_base_pj + em.cache_pj_per_kib * (size as f64 / 1024.0);
    let mut r = PowerReport {
        frontend_pj: stats.insns as f64 * em.frontend_pj,
        int_core_pj: stats.int_ops as f64 * em.alu_pj
            + stats.mul_ops as f64 * em.mul_pj
            + stats.div_ops as f64 * em.div_pj,
        fp_core_pj: stats.fp_ops as f64 * em.fp_pj,
        regfile_pj: stats.reg_reads as f64 * em.regfile_read_pj
            + stats.reg_writes as f64 * em.regfile_write_pj,
        bpred_pj: stats.branches as f64 * em.bpred_pj * (cfg.gshare_bits as f64 / 12.0),
        il1_pj: stats.il1_accesses as f64 * cache_access(cfg.il1.size),
        dl1_pj: stats.dl1_accesses as f64 * cache_access(cfg.dl1.size),
        l2_pj: stats.l2_accesses as f64 * cache_access(cfg.l2.size),
        dram_pj: stats.l2_misses as f64 * em.dram_pj,
        tlb_pj: (stats.loads + stats.stores + stats.insns / 8) as f64 * em.tlb_pj,
        ..Default::default()
    };
    // Leakage: area proxy grows with width, window size and SRAM bytes.
    let area_units = cfg.issue_width as f64 * 1.2
        + cfg.rob_size as f64 / 24.0
        + (cfg.il1.size + cfg.dl1.size) as f64 / (64.0 * 1024.0)
        + cfg.l2.size as f64 / (512.0 * 1024.0)
        + cfg.fp_units as f64 * 1.5;
    let seconds = stats.cycles as f64 / (cfg.clock_mhz as f64 * 1.0e6);
    r.leakage_pj = em.leakage_mw_per_unit * area_units * seconds * 1.0e9; // mW·s → pJ
    r.total_pj = r.frontend_pj
        + r.int_core_pj
        + r.fp_core_pj
        + r.regfile_pj
        + r.bpred_pj
        + r.il1_pj
        + r.dl1_pj
        + r.l2_pj
        + r.dram_pj
        + r.tlb_pj
        + r.leakage_pj;
    r.avg_power_mw = if seconds > 0.0 { r.total_pj * 1.0e-9 / seconds } else { 0.0 };
    r.edp = r.total_pj * stats.cycles as f64;
    r
}

/// Energy per instruction in picojoules.
pub fn epi_pj(r: &PowerReport, stats: &TimingStats) -> f64 {
    if stats.insns == 0 {
        0.0
    } else {
        r.total_pj / stats.insns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(insns: u64, cycles: u64) -> TimingStats {
        TimingStats {
            insns,
            cycles,
            int_ops: insns * 6 / 10,
            loads: insns / 5,
            stores: insns / 10,
            fp_ops: insns / 20,
            il1_accesses: insns / 8,
            dl1_accesses: insns * 3 / 10,
            l2_accesses: insns / 50,
            l2_misses: insns / 500,
            reg_reads: insns * 3 / 2,
            reg_writes: insns * 7 / 10,
            branches: insns / 7,
            ..Default::default()
        }
    }

    #[test]
    fn totals_add_up() {
        let cfg = TimingConfig::default();
        let s = stats(1_000_000, 800_000);
        let r = report(&s, &cfg, &EnergyModel::default());
        let sum = r.frontend_pj
            + r.int_core_pj
            + r.fp_core_pj
            + r.regfile_pj
            + r.bpred_pj
            + r.il1_pj
            + r.dl1_pj
            + r.l2_pj
            + r.dram_pj
            + r.tlb_pj
            + r.leakage_pj;
        assert!((sum - r.total_pj).abs() < 1e-6);
        assert!(r.avg_power_mw > 0.0);
    }

    #[test]
    fn wider_core_leaks_more() {
        let s = stats(1_000_000, 800_000);
        let em = EnergyModel::default();
        let narrow = report(&s, &TimingConfig::default(), &em);
        let wide = report(&s, &TimingConfig::wide_inorder(), &em);
        assert!(wide.leakage_pj > narrow.leakage_pj);
    }

    #[test]
    fn slower_run_has_lower_power_but_same_dynamic_energy() {
        let em = EnergyModel::default();
        let cfg = TimingConfig::default();
        let fast = report(&stats(1_000_000, 500_000), &cfg, &em);
        let slow = report(&stats(1_000_000, 2_000_000), &cfg, &em);
        assert!(slow.avg_power_mw < fast.avg_power_mw);
        assert!(slow.total_pj > fast.total_pj, "leakage accumulates over time");
        assert!(slow.edp > fast.edp);
    }

    #[test]
    fn dram_misses_dominate_when_frequent() {
        let em = EnergyModel::default();
        let cfg = TimingConfig::default();
        let mut s = stats(1_000_000, 800_000);
        s.l2_misses = 200_000;
        let r = report(&s, &cfg, &em);
        assert!(r.dram_pj > r.int_core_pj);
    }
}
