//! Verifier-backed end-to-end property tests.
//!
//! Random structured guest programs run through the coupled machine at
//! every optimization level with the static verifier in `Fatal` mode:
//!
//! * every region the BBM/SBM pipelines produce must pass [`darco_ir::
//!   verify_region`], every DDG must pass `verify_ddg`, and every
//!   generated host-code body must pass `check_host_code` (a finding
//!   panics the run);
//! * the translated execution must agree with the authoritative
//!   interpreter (the machine's end-of-application validation).
//!
//! Random programs come from the internal seeded PRNG (deterministic).

use darco::machine::{Machine, MachineEvent};
use darco_guest::insn::{AluOp, Insn, ShiftAmount, ShiftOp, UnaryOp};
use darco_guest::prng::{Rng, SmallRng};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::reg::{Addr, Cond, Scale, Width};
use darco_guest::{Asm, GuestProgram, Gpr};
use darco_host::sink::NullSink;
use darco_ir::OptLevel;
use darco_tol::{TolConfig, VerifyMode};

/// A random but well-structured program: loops with random straight-line
/// bodies over registers and a scratch array (no ESP/ECX games, so the
/// loops stay well-formed and hot enough to promote).
fn random_program(seed: u64) -> GuestProgram {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_C0DE ^ seed);
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    let scratch = 0x0040_0000u32;
    let reg = |rng: &mut SmallRng| {
        [Gpr::Eax, Gpr::Ebx, Gpr::Edx, Gpr::Esi, Gpr::Edi][rng.gen_range(0..5)]
    };
    let addr = |rng: &mut SmallRng| Addr::abs(scratch + rng.gen_range(0..64) * 4);
    for _ in 0..rng.gen_range(1..3) {
        a.mov_ri(Gpr::Ecx, rng.gen_range(30..120));
        let top = a.here();
        for _ in 0..rng.gen_range(3..14) {
            match rng.gen_range(0..12) {
                0 => a.mov_ri(reg(&mut rng), rng.gen()),
                1 => a.mov_rr(reg(&mut rng), reg(&mut rng)),
                2 => a.alu_rr(AluOp::from_index(rng.gen_range(0..7)), reg(&mut rng), reg(&mut rng)),
                3 => a.alu_ri(
                    AluOp::from_index(rng.gen_range(0..7)),
                    reg(&mut rng),
                    rng.gen_range(-100..100),
                ),
                4 => a.load(reg(&mut rng), addr(&mut rng)),
                5 => a.store(addr(&mut rng), reg(&mut rng), Width::D),
                6 => {
                    a.push(reg(&mut rng));
                    a.pop(reg(&mut rng));
                }
                7 => a.emit(Insn::Unary {
                    op: UnaryOp::from_index(rng.gen_range(0..4)),
                    dst: reg(&mut rng),
                }),
                8 => a.emit(Insn::Shift {
                    op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][rng.gen_range(0..3)],
                    dst: reg(&mut rng),
                    amount: ShiftAmount::Imm(rng.gen_range(0..31)),
                }),
                9 => a.imul(reg(&mut rng), reg(&mut rng)),
                10 => {
                    a.cmp_rr(reg(&mut rng), reg(&mut rng));
                    a.emit(Insn::Setcc {
                        cc: Cond::from_index(rng.gen_range(0..16)),
                        dst: reg(&mut rng),
                    });
                }
                _ => a.lea(
                    reg(&mut rng),
                    Addr::full(reg(&mut rng), reg(&mut rng), Scale::S4, rng.gen_range(-64..64)),
                ),
            }
        }
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
    }
    a.halt();
    a.into_program().with_data(vec![0x5A; 4096])
}

fn run_verified(p: &GuestProgram, cfg: TolConfig, what: &str) -> darco_tol::TolStats {
    assert_eq!(cfg.verify, VerifyMode::Fatal, "property tests want fatal verification");
    let mut m = Machine::new(cfg, p);
    // A verifier finding panics inside run_to (Fatal mode); a semantic
    // divergence surfaces as MachineError::Validation.
    let ev = m.run_to(u64::MAX, true, &mut NullSink).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert_eq!(ev, MachineEvent::Ended { exit_status: None }, "{what}");
    assert_eq!(m.tol.stats.verify_findings, 0, "{what}");
    m.tol.stats
}

#[test]
fn random_programs_verify_and_agree_at_every_opt_level() {
    for seed in 0..10u64 {
        let p = random_program(seed);
        for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let cfg = TolConfig {
                bbm_threshold: 3,
                sbm_threshold: 12,
                opt_level: lvl,
                ..TolConfig::default()
            };
            let stats = run_verified(&p, cfg, &format!("seed {seed} at {lvl:?}"));
            assert!(stats.verify_regions > 0, "seed {seed} at {lvl:?}: verifier never ran");
            assert!(stats.translations_bb > 0, "seed {seed} at {lvl:?}: nothing promoted");
        }
    }
}

#[test]
fn random_programs_verify_without_speculation_and_with_strict_flags() {
    for seed in 0..6u64 {
        let p = random_program(100 + seed);
        for (spec, strict) in [(false, false), (true, true)] {
            let cfg = TolConfig {
                bbm_threshold: 3,
                sbm_threshold: 12,
                speculation: spec,
                strict_flags: strict,
                ..TolConfig::default()
            };
            let what = format!("seed {seed} spec={spec} strict={strict}");
            let stats = run_verified(&p, cfg, &what);
            assert!(stats.verify_regions > 0, "{what}: verifier never ran");
        }
    }
}
