//! Checkpoint determinism property test.
//!
//! For every workload × translation-mode × timing-sink combination, a run
//! that is checkpointed at a *random* step boundary, serialized, parsed
//! back, restored into a fresh engine and driven to completion must
//! produce a report byte-identical to the uninterrupted run under the
//! same stepping schedule — in every deterministic metric (wall-clock
//! counters are projected out, as the fleet merger does).

use darco::{RunReport, SinkChoice, Snapshot, StepExit, System, SystemConfig};
use darco_guest::prng::{Rng, SmallRng};
use darco_guest::GuestProgram;
use darco_workloads::kernels;

/// The fleet's wall-clock projection (`darco_fleet::deterministic_metric`),
/// restated here because core cannot depend on fleet.
fn deterministic_metric(name: &str) -> bool {
    !(name.ends_with("_nanos") || name.ends_with("_ns") || name.contains("_ns."))
}

/// The comparable slice of a report: headline numbers plus the projected
/// metrics registry rendered to JSON.
fn comparable(r: &RunReport) -> String {
    let mut m = r.metrics.clone();
    m.retain(deterministic_metric);
    format!(
        "insns={} modes={:?} overhead={} rollbacks={} validations={} \
         exit={:?} fault={:?} metrics={}",
        r.guest_insns,
        r.mode_insns,
        r.overhead.total(),
        r.rollbacks,
        r.validations,
        r.exit_status,
        r.guest_fault,
        m.to_json()
    )
}

type Workload = (&'static str, fn() -> GuestProgram);

fn workloads() -> Vec<Workload> {
    vec![
        ("dot", || kernels::dot_product(600)),
        ("crc32", || kernels::crc32(900)),
        ("quicksort", || kernels::quicksort(250)),
        ("search", || kernels::string_search(3_000, 1_800)),
        ("nbody", || kernels::nbody_step(6, 15)),
    ]
}

/// The three translation regimes of the paper's staged model.
fn modes() -> Vec<(&'static str, SystemConfig)> {
    let mut im_only = SystemConfig::default();
    im_only.tol.bbm_threshold = 1_000_000_000; // never promote
    let mut bbm = SystemConfig::default();
    bbm.tol.bbm_threshold = 3;
    bbm.tol.sbm_threshold = 1_000_000_000; // promote to BBM, never to SBM
    let mut sbm = SystemConfig::default();
    sbm.tol.bbm_threshold = 3;
    sbm.tol.sbm_threshold = 12;
    sbm.tol.speculation = true;
    vec![("im", im_only), ("bbm", bbm), ("sbm+spec", sbm)]
}

/// Steps an engine to completion at a fixed quantum, checkpointing (and
/// round-tripping through bytes + a fresh engine) after `ckpt_after`
/// boundaries when given. Returns the final report and how many step
/// calls it took.
fn drive(
    cfg: &SystemConfig,
    program: fn() -> GuestProgram,
    quantum: u64,
    ckpt_after: Option<u64>,
    label: &str,
) -> (RunReport, u64) {
    let mut engine = System::new(cfg.clone(), program()).start();
    let mut steps = 0u64;
    while let StepExit::Yielded | StepExit::ValidationDue =
        engine.step(quantum).unwrap_or_else(|e| panic!("{label}: {e}"))
    {
        steps += 1;
        if Some(steps) == ckpt_after {
            let snap = engine.checkpoint().expect("mid-run checkpoint");
            // Full serialization round trip, then a cold engine.
            let parsed = Snapshot::from_bytes(snap.into_bytes()).unwrap();
            let mut fresh = System::new(cfg.clone(), program()).start();
            fresh.restore(&parsed).unwrap();
            engine = fresh;
        }
    }
    (engine.into_report(), steps)
}

#[test]
fn random_checkpoint_restore_is_invisible_everywhere() {
    let mut rng = SmallRng::seed_from_u64(0xDA2C0);
    let quantum = 2_048u64;
    for (wname, program) in workloads() {
        for (mname, mut cfg) in modes() {
            for sink in [SinkChoice::None, SinkChoice::InOrder] {
                cfg.sink = sink;
                let label = format!("{wname}/{mname}/{sink:?}");
                let (reference, steps) = drive(&cfg, program, quantum, None, &label);
                assert!(reference.guest_insns > 0, "{label}");
                if steps == 0 {
                    continue; // finished inside one quantum: no boundary to cut at
                }
                let at = rng.gen_range(1..=steps);
                let (resumed, _) = drive(&cfg, program, quantum, Some(at), &label);
                assert_eq!(
                    comparable(&resumed),
                    comparable(&reference),
                    "checkpoint at boundary {at}/{steps} perturbed {wname}/{mname}/{sink:?}"
                );
            }
        }
    }
}

#[test]
fn snapshot_refuses_foreign_program_and_config() {
    let mut cfg = SystemConfig::default();
    cfg.tol.bbm_threshold = 3;
    let mut e = System::new(cfg.clone(), kernels::dot_product(600)).start();
    e.step(1_000).unwrap();
    let snap = e.checkpoint().unwrap();

    // Same shape, different program: one extra loop iteration.
    let mut other = System::new(cfg.clone(), kernels::dot_product(601)).start();
    let err = other.restore(&snap).unwrap_err().to_string();
    assert!(err.contains("different program"), "{err}");

    // Same program, different configuration.
    let mut cfg2 = cfg.clone();
    cfg2.validate_every = Some(12_345);
    let mut wrong = System::new(cfg2, kernels::dot_product(600)).start();
    let err = wrong.restore(&snap).unwrap_err().to_string();
    assert!(err.contains("different configuration"), "{err}");

    // And the original combination still restores cleanly.
    let mut same = System::new(cfg, kernels::dot_product(600)).start();
    same.restore(&snap).unwrap();
    assert_eq!(same.insns(), snap.guest_insns());
}
