//! Checkpoint determinism property test.
//!
//! For every workload × translation-mode × timing-sink combination, a run
//! that is checkpointed at a *random* step boundary, serialized, parsed
//! back, restored into a fresh engine and driven to completion must
//! produce a report byte-identical to the uninterrupted run under the
//! same stepping schedule — in every deterministic metric (wall-clock
//! counters are projected out, as the fleet merger does).

use darco::{RunReport, SinkChoice, Snapshot, StepExit, System, SystemConfig};
use darco_guest::prng::{Rng, SmallRng};
use darco_guest::GuestProgram;
use darco_workloads::kernels;

/// The fleet's wall-clock projection (`darco_fleet::deterministic_metric`),
/// restated here because core cannot depend on fleet.
fn deterministic_metric(name: &str) -> bool {
    !(name.ends_with("_nanos") || name.ends_with("_ns") || name.contains("_ns."))
}

/// The comparable slice of a report: headline numbers plus the projected
/// metrics registry rendered to JSON.
fn comparable(r: &RunReport) -> String {
    let mut m = r.metrics.clone();
    m.retain(deterministic_metric);
    format!(
        "insns={} modes={:?} overhead={} rollbacks={} validations={} \
         exit={:?} fault={:?} metrics={}",
        r.guest_insns,
        r.mode_insns,
        r.overhead.total(),
        r.rollbacks,
        r.validations,
        r.exit_status,
        r.guest_fault,
        m.to_json()
    )
}

type Workload = (&'static str, fn() -> GuestProgram);

fn workloads() -> Vec<Workload> {
    vec![
        ("dot", || kernels::dot_product(600)),
        ("crc32", || kernels::crc32(900)),
        ("quicksort", || kernels::quicksort(250)),
        ("search", || kernels::string_search(3_000, 1_800)),
        ("nbody", || kernels::nbody_step(6, 15)),
    ]
}

/// The three translation regimes of the paper's staged model.
fn modes() -> Vec<(&'static str, SystemConfig)> {
    let mut im_only = SystemConfig::default();
    im_only.tol.bbm_threshold = 1_000_000_000; // never promote
    let mut bbm = SystemConfig::default();
    bbm.tol.bbm_threshold = 3;
    bbm.tol.sbm_threshold = 1_000_000_000; // promote to BBM, never to SBM
    let mut sbm = SystemConfig::default();
    sbm.tol.bbm_threshold = 3;
    sbm.tol.sbm_threshold = 12;
    sbm.tol.speculation = true;
    vec![("im", im_only), ("bbm", bbm), ("sbm+spec", sbm)]
}

/// Steps an engine to completion at a fixed quantum, checkpointing (and
/// round-tripping through bytes + a fresh engine) after `ckpt_after`
/// boundaries when given. Returns the final report and how many step
/// calls it took.
fn drive(
    cfg: &SystemConfig,
    program: fn() -> GuestProgram,
    quantum: u64,
    ckpt_after: Option<u64>,
    label: &str,
) -> (RunReport, u64) {
    let mut engine = System::new(cfg.clone(), program()).start();
    let mut steps = 0u64;
    while let StepExit::Yielded | StepExit::ValidationDue =
        engine.step(quantum).unwrap_or_else(|e| panic!("{label}: {e}"))
    {
        steps += 1;
        if Some(steps) == ckpt_after {
            let snap = engine.checkpoint().expect("mid-run checkpoint");
            // Full serialization round trip, then a cold engine.
            let parsed = Snapshot::from_bytes(snap.into_bytes()).unwrap();
            let mut fresh = System::new(cfg.clone(), program()).start();
            fresh.restore(&parsed).unwrap();
            engine = fresh;
        }
    }
    (engine.into_report(), steps)
}

#[test]
fn random_checkpoint_restore_is_invisible_everywhere() {
    let mut rng = SmallRng::seed_from_u64(0xDA2C0);
    let quantum = 2_048u64;
    for (wname, program) in workloads() {
        for (mname, mut cfg) in modes() {
            for sink in [SinkChoice::None, SinkChoice::InOrder] {
                cfg.sink = sink;
                let label = format!("{wname}/{mname}/{sink:?}");
                let (reference, steps) = drive(&cfg, program, quantum, None, &label);
                assert!(reference.guest_insns > 0, "{label}");
                if steps == 0 {
                    continue; // finished inside one quantum: no boundary to cut at
                }
                let at = rng.gen_range(1..=steps);
                let (resumed, _) = drive(&cfg, program, quantum, Some(at), &label);
                assert_eq!(
                    comparable(&resumed),
                    comparable(&reference),
                    "checkpoint at boundary {at}/{steps} perturbed {wname}/{mname}/{sink:?}"
                );
            }
        }
    }
}

#[test]
fn snapshot_refuses_foreign_program_and_config() {
    let mut cfg = SystemConfig::default();
    cfg.tol.bbm_threshold = 3;
    let mut e = System::new(cfg.clone(), kernels::dot_product(600)).start();
    e.step(1_000).unwrap();
    let snap = e.checkpoint().unwrap();

    // Same shape, different program: one extra loop iteration.
    let mut other = System::new(cfg.clone(), kernels::dot_product(601)).start();
    let err = other.restore(&snap).unwrap_err().to_string();
    assert!(err.contains("different program"), "{err}");

    // Same program, different configuration.
    let mut cfg2 = cfg.clone();
    cfg2.validate_every = Some(12_345);
    let mut wrong = System::new(cfg2, kernels::dot_product(600)).start();
    let err = wrong.restore(&snap).unwrap_err().to_string();
    assert!(err.contains("different configuration"), "{err}");

    // And the original combination still restores cleanly.
    let mut same = System::new(cfg, kernels::dot_product(600)).start();
    same.restore(&snap).unwrap();
    assert_eq!(same.insns(), snap.guest_insns());
}

/// Cross-backend checkpointing: a snapshot is a pure function of guest
/// progress, never of how translations were executed (or how long the
/// host took — wall-clock telemetry is normalized to zero on the wire,
/// see `registry_snapshot_into`). Taken at the same step boundary,
/// emulator and native-JIT snapshots must therefore be *byte-identical*;
/// and a run snapshotted under one backend must finish under the other
/// with a report identical to never having switched at all.
#[test]
fn checkpoint_crosses_backends_bit_identically() {
    use darco_host::codegen::Backend;

    if !Backend::native_available() {
        return; // single-backend host: nothing to cross
    }

    // `jit.*` counters are the native backend's own instrumentation and
    // exist only on runs that executed native code — the one legitimate
    // report asymmetry between backends.
    fn cross_comparable(r: &RunReport) -> String {
        let mut m = r.metrics.clone();
        m.retain(|n| deterministic_metric(n) && !n.starts_with("jit."));
        format!(
            "insns={} modes={:?} overhead={} rollbacks={} validations={} \
             exit={:?} fault={:?} metrics={}",
            r.guest_insns,
            r.mode_insns,
            r.overhead.total(),
            r.rollbacks,
            r.validations,
            r.exit_status,
            r.guest_fault,
            m.to_json()
        )
    }

    fn checkpoint_at(
        cfg: &SystemConfig,
        program: fn() -> GuestProgram,
        quantum: u64,
        at: u64,
    ) -> Snapshot {
        let mut engine = System::new(cfg.clone(), program()).start();
        let mut steps = 0u64;
        while let StepExit::Yielded | StepExit::ValidationDue = engine.step(quantum).unwrap() {
            steps += 1;
            if steps == at {
                return engine.checkpoint().expect("mid-run checkpoint");
            }
        }
        panic!("run ended before boundary {at}");
    }

    fn finish_from(
        cfg: &SystemConfig,
        program: fn() -> GuestProgram,
        snap: &Snapshot,
        quantum: u64,
    ) -> RunReport {
        let mut engine = System::new(cfg.clone(), program()).start();
        engine.restore(snap).expect("cross-backend restore");
        while let StepExit::Yielded | StepExit::ValidationDue = engine.step(quantum).unwrap() {}
        engine.into_report()
    }

    let quantum = 2_048u64;
    let (_, sbm) = modes().pop().unwrap(); // sbm+spec: all machinery live
    let mut emu_cfg = sbm.clone();
    emu_cfg.backend = Backend::Emu;
    let mut nat_cfg = sbm;
    nat_cfg.backend = Backend::Native;

    for (wname, program) in workloads().into_iter().take(3) {
        let (reference, steps) = drive(&emu_cfg, program, quantum, None, wname);
        let (native_ref, _) = drive(&nat_cfg, program, quantum, None, wname);
        assert_eq!(
            cross_comparable(&native_ref),
            cross_comparable(&reference),
            "{wname}: backends disagree even uninterrupted"
        );
        if steps == 0 {
            continue;
        }
        let at = steps.div_ceil(2);

        // Same boundary, both backends: the snapshots must be the same
        // bytes. Report the first differing offset, not a 160 KiB dump.
        let emu_bytes = checkpoint_at(&emu_cfg, program, quantum, at).into_bytes();
        let nat_bytes = checkpoint_at(&nat_cfg, program, quantum, at).into_bytes();
        assert_eq!(emu_bytes.len(), nat_bytes.len(), "{wname}: snapshot sizes differ");
        for (i, (e, n)) in emu_bytes.iter().zip(&nat_bytes).enumerate() {
            assert!(
                e == n,
                "{wname}: snapshot byte {i} differs across backends \
                 (emu {e:#04x}, native {n:#04x})"
            );
        }

        // Native → emu and emu → native must both land on the reference.
        let nat_snap = Snapshot::from_bytes(nat_bytes).unwrap();
        let nat_to_emu = finish_from(&emu_cfg, program, &nat_snap, quantum);
        assert_eq!(
            cross_comparable(&nat_to_emu),
            cross_comparable(&reference),
            "{wname}: native-snapshot → emu-finish diverged"
        );
        let emu_snap = Snapshot::from_bytes(emu_bytes).unwrap();
        let emu_to_nat = finish_from(&nat_cfg, program, &emu_snap, quantum);
        assert_eq!(
            cross_comparable(&emu_to_nat),
            cross_comparable(&reference),
            "{wname}: emu-snapshot → native-finish diverged"
        );
    }
}
