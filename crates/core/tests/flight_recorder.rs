//! End-to-end flight-recorder test: plant an optimizer bug, let the run
//! diverge, and check the dump names the events leading up to it.
//!
//! The planted `OptimizerBadFold` corrupts the first translated region,
//! so the authoritative comparison at program end fails; the dump written
//! to `flight_path` must validate structurally and must contain, in
//! sequence order, the divergent region's translation and the speculative
//! rollback the superblock takes on its final loop iteration.

use darco::{DarcoError, System, SystemConfig};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::{AluOp, Asm, Cond, Gpr, GuestProgram, Insn};
use darco_obs::flight::validate_flight_dump;
use darco_obs::json::{parse, JsonValue};
use darco_tol::{BugKind, Injection, TolConfig};

/// A hot loop whose inner branch alternates: promoted to a superblock
/// under the biased-speculation config below, its asserts keep failing,
/// so the window reliably contains rollbacks. The loop-top block carries
/// a constant feeding a live-out register (`edi`) so `OptimizerBadFold`
/// has a fold to corrupt.
fn alternating_loop() -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 400);
    let top = a.here();
    a.mov_ri(Gpr::Edx, 5);
    a.alu_rr(AluOp::Add, Gpr::Edi, Gpr::Edx);
    a.emit(Insn::TestRI { a: Gpr::Ecx, imm: 1 });
    let odd = a.label();
    let join = a.label();
    a.jcc_to(Cond::Ne, odd);
    a.alu_ri(AluOp::Add, Gpr::Eax, 3);
    a.jmp_to(join);
    a.bind(odd);
    a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x77);
    a.bind(join);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    a.into_program()
}

/// Speculate aggressively (low edge bias) so the superblock is built
/// across the alternating branch and misspeculates.
fn spec_tol_cfg() -> TolConfig {
    TolConfig {
        bbm_threshold: 3,
        sbm_threshold: 10,
        edge_bias: 0.4,
        min_reach_prob: 0.1,
        assert_fail_limit: 4,
        ..TolConfig::default()
    }
}

fn event_names(doc: &JsonValue) -> Vec<String> {
    doc.get("events")
        .and_then(JsonValue::as_arr)
        .unwrap()
        .iter()
        .map(|e| e.get("name").and_then(JsonValue::as_str).unwrap().to_string())
        .collect()
}

#[test]
fn divergence_writes_an_ordered_flight_dump() {
    let path = std::env::temp_dir().join("darco_flight_recorder_test.json");
    let _ = std::fs::remove_file(&path);

    let cfg = SystemConfig {
        tol: TolConfig {
            injection: Some(Injection {
                kind: BugKind::OptimizerBadFold,
                translation_ordinal: 0,
            }),
            ..spec_tol_cfg()
        },
        trace_capacity: Some(1024),
        flight_path: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let err = System::new(cfg, alternating_loop()).run().unwrap_err();
    assert!(
        matches!(err, DarcoError::Validation { .. }),
        "planted optimizer bug must surface as a divergence: {err}"
    );

    let text = std::fs::read_to_string(&path).expect("flight dump written on divergence");
    let doc = parse(&text).expect("dump is parseable by the repo's own reader");
    let n = validate_flight_dump(&doc).expect("dump validates structurally");
    assert!(n > 0, "dump holds a non-empty event window");
    assert!(
        doc.get("context").and_then(JsonValue::as_str).unwrap().contains("validation failed"),
        "context names the divergence"
    );

    // The window must show, in order: the divergent region being
    // translated, the speculative rollback on the final loop iteration,
    // and the divergence itself.
    let names = event_names(&doc);
    let translate = names
        .iter()
        .position(|n| n == "translate_bb" || n == "translate_sb")
        .expect("window contains the region's translation");
    let rollback = names.iter().position(|n| n == "rollback").expect("window contains a rollback");
    let divergence =
        names.iter().position(|n| n == "divergence").expect("window records the divergence");
    assert!(translate < rollback, "translation precedes the rollback: {names:?}");
    assert!(rollback < divergence, "rollback precedes the divergence: {names:?}");

    // The metrics snapshot rides along and carries the TOL bridge.
    let counters = doc.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(
        counters.get("tol.translations_bb").and_then(JsonValue::as_num).unwrap_or(0.0) >= 1.0,
        "metrics snapshot includes the TolStats bridge"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn clean_run_writes_no_flight_dump() {
    let path = std::env::temp_dir().join("darco_flight_recorder_clean.json");
    let _ = std::fs::remove_file(&path);
    let cfg = SystemConfig {
        tol: spec_tol_cfg(),
        trace_capacity: Some(1024),
        flight_path: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let report = System::new(cfg, alternating_loop()).run().expect("clean run succeeds");
    assert!(!path.exists(), "no dump for a clean run");
    assert!(!report.trace.is_empty(), "trace ring captured events");
    let _ = std::fs::remove_file(&path);
}
