//! The `jit.*` / `verify.*` trace lanes: a traced run under the native
//! backend with semantic verification must surface JIT compile activity
//! and semantic-proof spans in the event window, and the chrome export
//! must place them on their own lanes (5 = native JIT, 6 = verification
//! spans) with balanced begin/end phases.

use darco::{System, SystemConfig};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::{AluOp, Asm, Cond, Gpr, GuestProgram};
use darco_host::codegen::Backend;
use darco_obs::chrome::{to_chrome_trace, validate_chrome_trace};
use darco_obs::json::{parse, JsonValue};
use darco_obs::TraceEventKind;
use darco_tol::{TolConfig, VerifyLevel};

/// A hot counted loop that promotes through BBM into SBM, so both
/// translation pipelines (and their semantic proofs) run.
fn hot_loop() -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 300);
    let top = a.here();
    a.alu_ri(AluOp::Add, Gpr::Eax, 7);
    a.alu_rr(AluOp::Xor, Gpr::Ebx, Gpr::Eax);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    a.into_program()
}

fn traced_cfg() -> SystemConfig {
    SystemConfig {
        tol: TolConfig {
            bbm_threshold: 3,
            sbm_threshold: 10,
            verify_level: VerifyLevel::Semantic,
            ..TolConfig::default()
        },
        backend: Backend::Native,
        trace_capacity: Some(4096),
        ..Default::default()
    }
}

#[test]
fn semantic_proofs_and_jit_activity_land_on_their_lanes() {
    let report = System::new(traced_cfg(), hot_loop()).run().expect("clean run");
    let names: Vec<&str> = report.trace.iter().map(|e| e.kind.name()).collect();

    // Semantic-proof spans: every begin has its end, in order, and at
    // least one region was proven.
    let begins = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::SemBegin { .. }))
        .count();
    let ends: Vec<&darco_obs::TraceEvent> = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::SemEnd { .. }))
        .collect();
    assert!(begins >= 1, "semantic verification ran: {names:?}");
    assert_eq!(begins, ends.len(), "balanced verify.semantic spans");
    for e in &ends {
        let TraceEventKind::SemEnd { findings, .. } = e.kind else { unreachable!() };
        assert_eq!(findings, 0, "clean run proves all regions");
    }

    // Native JIT activity (only where the backend actually exists).
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        assert!(names.contains(&"jit.compile"), "native backend compiled fragments: {names:?}");
        let compiled: u64 = report
            .trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::JitCompile { frags, bytes, .. } => {
                    assert!(bytes > 0, "compiled fragments emit code bytes");
                    Some(frags)
                }
                _ => None,
            })
            .sum();
        assert!(compiled >= 1);
    }

    // Chrome export: validates, and the new kinds sit on lanes 5/6 with
    // B/E phases for the proof spans.
    let chrome = to_chrome_trace("trace-lanes", &report.trace);
    let doc = parse(&chrome).expect("chrome export parses");
    validate_chrome_trace(&doc).expect("chrome export validates");
    let arr = doc.as_arr().unwrap();
    let mut sem_depth = 0i64;
    let mut saw_sem = false;
    for ev in arr {
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap();
        let tid = ev.get("tid").and_then(JsonValue::as_num).unwrap_or(-1.0) as i64;
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap();
        if name.starts_with("jit.") {
            assert_eq!(tid, 5, "jit events on lane 5: {name}");
            assert_eq!(ph, "i");
        }
        if name == "verify.semantic" {
            saw_sem = true;
            assert_eq!(tid, 6, "semantic proofs on lane 6");
            match ph {
                "B" => sem_depth += 1,
                "E" => sem_depth -= 1,
                other => panic!("verify.semantic must be a span, got ph {other}"),
            }
            assert!(sem_depth >= 0, "span ends never precede their begins");
        }
        if name == "verify.mcode" {
            assert_eq!(tid, 6, "machine-code checks on lane 6");
        }
    }
    assert!(saw_sem, "export carries the proof spans");
    assert_eq!(sem_depth, 0, "every span closed");
}

#[test]
fn emulator_backend_emits_no_jit_events() {
    let cfg = SystemConfig { backend: Backend::Emu, ..traced_cfg() };
    let report = System::new(cfg, hot_loop()).run().expect("clean run");
    assert!(
        !report.trace.iter().any(|e| e.kind.name().starts_with("jit.")),
        "the emulator backend must not fabricate jit.* events"
    );
    assert!(
        report.trace.iter().any(|e| e.kind.name() == "verify.semantic"),
        "semantic spans are backend-independent"
    );
}
