//! The warm-up simulation methodology (paper §VI-E case study).
//!
//! Sampling-based timing simulation needs the *software-layer state* (code
//! cache contents, profile counters) warmed up in addition to the
//! microarchitectural state, and an inaccurate TOL state costs thousands
//! of cycles per spurious retranslation. The paper's technique:
//!
//! 1. during each sample's warm-up window the promotion thresholds are
//!    *downscaled* by a scaling factor, so code reaches the higher
//!    optimization modes with far fewer executions than in the
//!    authoritative run;
//! 2. an **offline heuristic** picks the `(scaling factor, warm-up
//!    length)` pair per sample whose execution distribution best matches
//!    the authoritative execution's distribution;
//! 3. detailed timing simulation runs only inside the samples; thresholds
//!    are restored while statistics are collected.
//!
//! The execution-distribution metric here is the per-mode (IM/BBM/SBM)
//! instruction distribution inside the sample window — the observable
//! footprint of the TOL state the paper's heuristic reconstructs.

use crate::machine::Machine;
use darco_guest::GuestProgram;
use darco_host::sink::NullSink;
use darco_timing::{InOrderCore, TimingConfig};
use darco_tol::TolConfig;

/// Warm-up study configuration.
#[derive(Debug, Clone)]
pub struct WarmupConfig {
    /// Guest instructions per detailed sample.
    pub sample_len: u64,
    /// Number of samples, spread evenly over the run.
    pub num_samples: usize,
    /// Candidate warm-up lengths (guest instructions).
    pub warmup_lens: Vec<u64>,
    /// Candidate threshold scaling factors.
    pub scale_factors: Vec<u64>,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig {
            sample_len: 20_000,
            num_samples: 5,
            warmup_lens: vec![5_000, 20_000],
            scale_factors: vec![5, 20],
        }
    }
}

/// Per-sample outcome.
#[derive(Debug, Clone)]
pub struct SampleOutcome {
    /// Sample start (guest instruction count).
    pub start: u64,
    /// Chosen scaling factor.
    pub scale: u64,
    /// Chosen warm-up length.
    pub warmup_len: u64,
    /// Host cycles per guest instruction in the sample, methodology run.
    pub cpi: f64,
    /// Same metric from the authoritative detailed run.
    pub ref_cpi: f64,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct WarmupResult {
    /// Authoritative CPI over the sampled windows.
    pub full_cpi: f64,
    /// Methodology CPI over the same windows.
    pub sampled_cpi: f64,
    /// Relative error, percent.
    pub error_pct: f64,
    /// Guest instructions simulated in detail by the authoritative run.
    pub full_cost: u64,
    /// Guest instructions the methodology spent (warm-up + samples).
    pub sampled_cost: u64,
    /// `full_cost / sampled_cost`.
    pub cost_reduction: f64,
    /// Per-sample details.
    pub samples: Vec<SampleOutcome>,
}

/// Mode distribution inside a window.
#[derive(Debug, Clone, Copy)]
struct ModeDist {
    im: f64,
    bbm: f64,
    sbm: f64,
}

fn dist_between(start: (u64, u64, u64), end: (u64, u64, u64)) -> ModeDist {
    let im = (end.0 - start.0) as f64;
    let bbm = (end.1 - start.1) as f64;
    let sbm = (end.2 - start.2) as f64;
    let total = (im + bbm + sbm).max(1.0);
    ModeDist { im: im / total, bbm: bbm / total, sbm: sbm / total }
}

fn dist_l1(a: ModeDist, b: ModeDist) -> f64 {
    (a.im - b.im).abs() + (a.bbm - b.bbm).abs() + (a.sbm - b.sbm).abs()
}

/// Per-window measurement of the authoritative (full-detail) run.
struct RefWindow {
    start: u64,
    cycles: u64,
    dist: ModeDist,
}

/// Pre-computed fast-forward checkpoints for one threshold scale: the
/// machine is driven forward once (functionally, cheapest possible) and
/// snapshotted at every requested warm-up start, so each `(sample,
/// warm-up length)` candidate restores in O(state) instead of re-executing
/// the whole prefix — the stepping-engine replacement for the old
/// run-from-zero-per-candidate scheme.
struct WarmStartBank {
    scaled: TolConfig,
    /// `warm_start → serialized machine` at (or just past) that count.
    snaps: Vec<(u64, Vec<u8>)>,
}

impl WarmStartBank {
    /// Drives one machine through all `points` (ascending), checkpointing
    /// at each. Returns `None` when the coupled run fails.
    fn build(program: &GuestProgram, base: &TolConfig, scale: u64, points: &[u64]) -> Option<WarmStartBank> {
        // Cold TOL at the warm-up start: the methodology reconstructs the
        // software-layer state inside the warm-up window.
        let scaled = TolConfig {
            bbm_threshold: (base.bbm_threshold / scale).max(1),
            sbm_threshold: (base.sbm_threshold / scale).max(2),
            ..base.clone()
        };
        let mut m = Machine::new(scaled.clone(), program);
        let mut snaps = Vec::with_capacity(points.len());
        for &p in points {
            // Functional fast-forward (not charged to simulation cost).
            m.run_to(p, true, &mut NullSink).ok()?;
            let mut w = darco_guest::Wire::new();
            m.snapshot_into(&mut w).ok()?;
            snaps.push((p, w.finish()));
        }
        Some(WarmStartBank { scaled, snaps })
    }

    /// A fresh machine restored to the checkpoint taken at `warm_start`.
    fn machine_at(&self, program: &GuestProgram, warm_start: u64) -> Option<Machine> {
        let (_, bytes) = self.snaps.iter().find(|(p, _)| *p == warm_start)?;
        let mut m = Machine::new(self.scaled.clone(), program);
        let mut r = darco_guest::WireReader::new(bytes);
        m.restore_from(&mut r).ok()?;
        Some(m)
    }
}

/// Runs a window `[start, start+len)`: restore the functional
/// fast-forward state at `warm_start` from `bank`, warm-up (downscaled
/// thresholds) to `start`, detailed sample to `start+len`. Returns
/// (cycles, dist).
fn run_methodology_sample(
    program: &GuestProgram,
    base: &TolConfig,
    timing: &TimingConfig,
    bank: &WarmStartBank,
    warm_start: u64,
    start: u64,
    len: u64,
) -> Option<(u64, ModeDist)> {
    let mut m = bank.machine_at(program, warm_start)?;
    // Warm-up window: detailed, with downscaled thresholds — this warms
    // both the microarchitectural state and the software-layer state.
    let mut core = InOrderCore::new(timing.clone());
    m.tol.set_synthesize_overhead(true);
    m.run_to(start, true, &mut core).ok()?;
    // Restore thresholds for the measured region.
    m.tol.cfg.bbm_threshold = base.bbm_threshold;
    m.tol.cfg.sbm_threshold = base.sbm_threshold;
    // Detailed sample.
    let warm_cycles = core.stats().cycles;
    let before = m.tol.mode_split();
    m.run_to(start + len, true, &mut core).ok()?;
    let after = m.tol.mode_split();
    Some((core.stats().cycles - warm_cycles, dist_between(before, after)))
}

/// Runs the full study.
///
/// Returns `None` when the program is too short for the requested
/// sampling plan.
pub fn warmup_study(
    program: &GuestProgram,
    tol: &TolConfig,
    timing: &TimingConfig,
    wcfg: &WarmupConfig,
) -> Option<WarmupResult> {
    // --- authoritative run: full-detail timing, measuring each window ---
    let mut m = Machine::new(tol.clone(), program);
    let mut core = InOrderCore::new(timing.clone());
    m.tol.set_synthesize_overhead(true);
    // First find program length cheaply by running it (detailed; this IS
    // the authoritative run, windows measured on the fly).
    let mut windows: Vec<RefWindow> = Vec::new();
    // Estimate total length with a scout run.
    let total = {
        let mut scout = Machine::new(tol.clone(), program);
        scout.run_to(u64::MAX, true, &mut NullSink).ok()?;
        scout.insns()
    };
    let needed = wcfg.sample_len * wcfg.num_samples as u64 * 2;
    if total < needed {
        return None;
    }
    let stride = total / (wcfg.num_samples as u64 + 1);
    let starts: Vec<u64> = (1..=wcfg.num_samples as u64).map(|i| i * stride).collect();
    for &s in &starts {
        m.run_to(s, true, &mut core).ok()?;
        let c0 = core.stats().cycles;
        let d0 = m.tol.mode_split();
        m.run_to(s + wcfg.sample_len, true, &mut core).ok()?;
        let c1 = core.stats().cycles;
        let d1 = m.tol.mode_split();
        windows.push(RefWindow { start: s, cycles: c1 - c0, dist: dist_between(d0, d1) });
    }

    // --- methodology: per sample, pick the best (scale, warmup) ---------
    // One functional fast-forward per scale factor, checkpointed at every
    // warm-up start; each candidate below restores instead of re-running
    // the prefix from instruction zero.
    let mut points: Vec<u64> = windows
        .iter()
        .flat_map(|w| wcfg.warmup_lens.iter().map(|wl| w.start.saturating_sub(*wl)))
        .collect();
    points.sort_unstable();
    points.dedup();
    let banks: Vec<(u64, WarmStartBank)> = wcfg
        .scale_factors
        .iter()
        .filter_map(|&s| WarmStartBank::build(program, tol, s, &points).map(|b| (s, b)))
        .collect();
    let mut samples = Vec::new();
    let mut sampled_cost = 0u64;
    for w in &windows {
        let mut best: Option<(f64, u64, u64, u64)> = None; // (score, scale, wlen, cycles)
        for (scale, bank) in &banks {
            let scale = *scale;
            for &wlen in &wcfg.warmup_lens {
                let warm_start = w.start.saturating_sub(wlen);
                let Some((cycles, dist)) = run_methodology_sample(
                    program,
                    tol,
                    timing,
                    bank,
                    warm_start,
                    w.start,
                    wcfg.sample_len,
                ) else {
                    continue;
                };
                let score = dist_l1(dist, w.dist);
                // Prefer the longer warm-up on near-ties: the execution
                // distribution cannot see microarchitectural warmth, and
                // longer warm-up only costs simulation time (the paper's
                // accuracy/length trade-off).
                let better = match best {
                    None => true,
                    Some((bs, _, bw, _)) => {
                        score + 0.02 < bs || ((score - bs).abs() <= 0.02 && wlen > bw)
                    }
                };
                if better {
                    best = Some((score, scale, wlen, cycles));
                }
            }
        }
        let (_, scale, wlen, cycles) = best?;
        sampled_cost += wlen + wcfg.sample_len;
        samples.push(SampleOutcome {
            start: w.start,
            scale,
            warmup_len: wlen,
            cpi: cycles as f64 / wcfg.sample_len as f64,
            ref_cpi: w.cycles as f64 / wcfg.sample_len as f64,
        });
    }

    let full_cpi = windows.iter().map(|w| w.cycles).sum::<u64>() as f64
        / (wcfg.sample_len * windows.len() as u64) as f64;
    let sampled_cpi =
        samples.iter().map(|s| s.cpi).sum::<f64>() / samples.len().max(1) as f64;
    let error_pct = ((sampled_cpi - full_cpi) / full_cpi).abs() * 100.0;
    Some(WarmupResult {
        full_cpi,
        sampled_cpi,
        error_pct,
        full_cost: total,
        sampled_cost,
        cost_reduction: total as f64 / sampled_cost.max(1) as f64,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{AluOp, Asm, Cond, Gpr};

    /// A phased program: several loops of different character.
    fn phased_program() -> GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        for phase in 0..4 {
            a.mov_ri(Gpr::Ecx, 20_000);
            let top = a.here();
            for k in 0..3 + phase {
                a.alu_ri(AluOp::Add, Gpr::Eax, k + 1);
            }
            a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x9E37);
            a.dec(Gpr::Ecx);
            a.jcc_to(Cond::Ne, top);
        }
        a.halt();
        a.into_program()
    }

    #[test]
    fn warmup_study_reduces_cost_with_small_error() {
        let tol = TolConfig { bbm_threshold: 20, sbm_threshold: 200, ..Default::default() };
        let timing = TimingConfig::default();
        let wcfg = WarmupConfig {
            sample_len: 5_000,
            num_samples: 3,
            warmup_lens: vec![4_000, 16_000],
            scale_factors: vec![4, 16],
        };
        let r = warmup_study(&phased_program(), &tol, &timing, &wcfg).expect("study runs");
        assert_eq!(r.samples.len(), 3);
        assert!(r.cost_reduction > 3.0, "cost reduction {:.1}x", r.cost_reduction);
        // Unit-scale programs leave residual microarchitectural transients;
        // the bench harness measures the paper-scale numbers.
        assert!(r.error_pct < 25.0, "CPI error {:.2}%", r.error_pct);
        assert!(r.full_cpi > 0.0 && r.sampled_cpi > 0.0);
    }

    #[test]
    fn too_short_program_is_rejected() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.halt();
        let p = a.into_program();
        assert!(warmup_study(
            &p,
            &TolConfig::default(),
            &TimingConfig::default(),
            &WarmupConfig::default()
        )
        .is_none());
    }
}
