//! Sampling-based timing simulation: the §VI-E warm-up methodology and a
//! SMARTS-style sampled-CPI campaign, both fast-forwarding through a
//! shared functional checkpoint bank.
//!
//! Sampling-based timing simulation needs the *software-layer state* (code
//! cache contents, profile counters) warmed up in addition to the
//! microarchitectural state, and an inaccurate TOL state costs thousands
//! of cycles per spurious retranslation. Two harnesses share one
//! fast-forward primitive here:
//!
//! * [`SnapshotBank`] — a single functional pass (null sink, base TOL
//!   configuration) over the program, serializing the coupled machine at
//!   each requested instruction count. Every sample then *restores* its
//!   starting state in O(state) instead of re-executing the prefix — the
//!   stepping-engine replacement for run-from-zero-per-sample schemes.
//!   Because the checkpoint carries the TOL (code cache, profile
//!   counters) along with the architectural state, the software layer
//!   arrives warm for free.
//!
//! * [`warmup_study`] — the paper's §VI-E case study: during each
//!   sample's warm-up window the promotion thresholds are *downscaled* by
//!   a scaling factor (applied by mutating the restored machine's TOL
//!   thresholds) so any code the prefix had not yet promoted reaches the
//!   higher optimization modes with far fewer executions; an offline
//!   heuristic picks the `(scaling factor, warm-up length)` pair per
//!   sample whose execution distribution best matches the authoritative
//!   run's; thresholds are restored while statistics are collected.
//!
//! * [`sampled_cpi`] — a SMARTS-style statistical campaign: `n` windows
//!   strided evenly over the run, each fast-forwarded via the bank,
//!   detail-warmed, then measured; the result is a per-workload CPI with
//!   a 95% confidence interval. The measurement windows default to the
//!   accelerated timing path ([`TimingMode::Fast`]), which is
//!   bit-identical to the full model, so sampling error is the *only*
//!   error source versus a full detailed run.

use crate::machine::Machine;
use crate::system::TimingMode;
use darco_guest::GuestProgram;
use darco_host::sink::{InsnSink, NullSink};
use darco_timing::{FastTimer, InOrderCore, TimingConfig, TimingStats};
use darco_tol::TolConfig;

/// Warm-up study configuration.
#[derive(Debug, Clone)]
pub struct WarmupConfig {
    /// Guest instructions per detailed sample.
    pub sample_len: u64,
    /// Number of samples, spread evenly over the run.
    pub num_samples: usize,
    /// Candidate warm-up lengths (guest instructions).
    pub warmup_lens: Vec<u64>,
    /// Candidate threshold scaling factors.
    pub scale_factors: Vec<u64>,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig {
            sample_len: 20_000,
            num_samples: 5,
            warmup_lens: vec![5_000, 20_000],
            scale_factors: vec![5, 20],
        }
    }
}

/// Per-sample outcome.
#[derive(Debug, Clone)]
pub struct SampleOutcome {
    /// Sample start (guest instruction count).
    pub start: u64,
    /// Chosen scaling factor.
    pub scale: u64,
    /// Chosen warm-up length.
    pub warmup_len: u64,
    /// Host cycles per guest instruction in the sample, methodology run.
    pub cpi: f64,
    /// Same metric from the authoritative detailed run.
    pub ref_cpi: f64,
}

/// Study result.
#[derive(Debug, Clone)]
pub struct WarmupResult {
    /// Authoritative CPI over the sampled windows.
    pub full_cpi: f64,
    /// Methodology CPI over the same windows.
    pub sampled_cpi: f64,
    /// Relative error, percent.
    pub error_pct: f64,
    /// Guest instructions simulated in detail by the authoritative run.
    pub full_cost: u64,
    /// Guest instructions the methodology spent (warm-up + samples).
    pub sampled_cost: u64,
    /// `full_cost / sampled_cost`.
    pub cost_reduction: f64,
    /// Per-sample details.
    pub samples: Vec<SampleOutcome>,
}

/// Mode distribution inside a window.
#[derive(Debug, Clone, Copy)]
struct ModeDist {
    im: f64,
    bbm: f64,
    sbm: f64,
}

fn dist_between(start: (u64, u64, u64), end: (u64, u64, u64)) -> ModeDist {
    let im = (end.0 - start.0) as f64;
    let bbm = (end.1 - start.1) as f64;
    let sbm = (end.2 - start.2) as f64;
    let total = (im + bbm + sbm).max(1.0);
    ModeDist { im: im / total, bbm: bbm / total, sbm: sbm / total }
}

fn dist_l1(a: ModeDist, b: ModeDist) -> f64 {
    (a.im - b.im).abs() + (a.bbm - b.bbm).abs() + (a.sbm - b.sbm).abs()
}

/// Per-window measurement of the authoritative (full-detail) run.
struct RefWindow {
    start: u64,
    cycles: u64,
    dist: ModeDist,
}

/// Pre-computed functional fast-forward checkpoints: one machine is
/// driven forward once (null sink — the cheapest possible execution)
/// under the base TOL configuration and serialized at every requested
/// point, so each sample restores in O(state) instead of re-executing
/// the whole prefix. Shared by [`warmup_study`] and [`sampled_cpi`].
pub struct SnapshotBank {
    cfg: TolConfig,
    /// `point → serialized machine` at (or just past) that count.
    snaps: Vec<(u64, Vec<u8>)>,
}

impl SnapshotBank {
    /// Drives one machine through all `points` (must be ascending),
    /// checkpointing at each. Returns `None` when the coupled run fails
    /// or ends before the last point.
    pub fn build(program: &GuestProgram, cfg: &TolConfig, points: &[u64]) -> Option<SnapshotBank> {
        let mut m = Machine::new(cfg.clone(), program);
        let mut snaps = Vec::with_capacity(points.len());
        for &p in points {
            m.run_to(p, true, &mut NullSink).ok()?;
            if m.ended() {
                return None;
            }
            let mut w = darco_guest::Wire::new();
            m.snapshot_into(&mut w).ok()?;
            snaps.push((p, w.finish()));
        }
        Some(SnapshotBank { cfg: cfg.clone(), snaps })
    }

    /// A fresh machine restored to the checkpoint taken at `point`.
    pub fn machine_at(&self, program: &GuestProgram, point: u64) -> Option<Machine> {
        let (_, bytes) = self.snaps.iter().find(|(p, _)| *p == point)?;
        let mut m = Machine::new(self.cfg.clone(), program);
        let mut r = darco_guest::WireReader::new(bytes);
        m.restore_from(&mut r).ok()?;
        Some(m)
    }

    /// The checkpointed instruction counts, ascending.
    pub fn points(&self) -> Vec<u64> {
        self.snaps.iter().map(|(p, _)| *p).collect()
    }

    /// [`SnapshotBank::build`], but the functional pass continues to the
    /// end of the program and reports its exact totals — the guest
    /// length and the *sink-visible* host instruction count (application
    /// host instructions plus synthesizable TOL overhead; construction
    /// charges like TOL init, which never reach a timing sink, are
    /// excluded via the baseline). [`sampled_cpi`] scales its sampled
    /// cycles-per-host-instruction by `host_insns / guest_insns`.
    pub fn build_to_end(
        program: &GuestProgram,
        cfg: &TolConfig,
        points: &[u64],
    ) -> Option<(SnapshotBank, FunctionalTotals)> {
        let mut m = Machine::new(cfg.clone(), program);
        let acct_base = host_acct(&m);
        let mut snaps = Vec::with_capacity(points.len());
        for &p in points {
            m.run_to(p, true, &mut NullSink).ok()?;
            if m.ended() {
                return None;
            }
            let mut w = darco_guest::Wire::new();
            m.snapshot_into(&mut w).ok()?;
            snaps.push((p, w.finish()));
        }
        m.run_to(u64::MAX, true, &mut NullSink).ok()?;
        let totals = FunctionalTotals {
            guest_insns: m.insns(),
            host_app_insns: m.tol.stats.host_app - acct_base.0,
            overhead_insns: m.tol.overhead().total() - acct_base.1,
            sb_overhead_insns: m.tol.overhead().sb_translator,
            sb_translations: m.tol.stats.translations_sb,
        };
        Some((SnapshotBank { cfg: cfg.clone(), snaps }, totals))
    }
}

/// Exact totals of a functional pass (see [`SnapshotBank::build_to_end`]).
#[derive(Debug, Clone, Copy)]
pub struct FunctionalTotals {
    /// Retired guest instructions.
    pub guest_insns: u64,
    /// Application host instructions (translated/interpreted guest work).
    pub host_app_insns: u64,
    /// Sink-visible TOL overhead host instructions (construction charges
    /// like TOL init, which never reach a timing sink, are excluded).
    pub overhead_insns: u64,
    /// The superblock-translator share of `overhead_insns` — the big
    /// (tens of kilo-instruction) bursts whose cache/predictor
    /// interference the effective-overhead calibration must capture.
    pub sb_overhead_insns: u64,
    /// Number of SBM translations (bursts) behind `sb_overhead_insns`.
    pub sb_translations: u64,
}

impl FunctionalTotals {
    /// Total host instructions a timing sink would retire over the run.
    pub fn host_insns(&self) -> u64 {
        self.host_app_insns + self.overhead_insns
    }
}

/// Host-instruction accounting snapshot `(application, overhead)`.
/// Deltas of the sum over a window equal the events a timing sink
/// retires in that window (overhead synthesis emits exactly what it
/// charges).
fn host_acct(m: &Machine) -> (u64, u64) {
    (m.tol.stats.host_app, m.tol.overhead().total())
}

/// Steady-state cycles per instruction of the synthesized TOL-overhead
/// stream under `timing`. The overhead instruction mix is a fixed
/// workload-independent rotating pattern (see
/// `darco_tol::overhead::Accountant`), so one calibration run serves
/// every workload: a fresh core retires the pure synthetic stream, the
/// first chunk warms it, the second is measured. Deterministic.
pub fn calibrate_overhead_cph(timing: &TimingConfig) -> f64 {
    let mut core = InOrderCore::new(timing.clone());
    let mut acct = darco_tol::overhead::Accountant::new(true);
    acct.charge(darco_tol::OverheadKind::Others, 50_000, &mut core);
    let c0 = core.stats().cycles;
    acct.charge(darco_tol::OverheadKind::Others, 200_000, &mut core);
    (core.stats().cycles - c0) as f64 / 200_000.0
}

/// Total retired guest instructions of a functional (null-sink) run —
/// the scout pass that sizes a sampling plan. `None` when the coupled
/// run fails.
pub fn functional_length(program: &GuestProgram, cfg: &TolConfig) -> Option<u64> {
    let mut scout = Machine::new(cfg.clone(), program);
    scout.run_to(u64::MAX, true, &mut NullSink).ok()?;
    Some(scout.insns())
}

/// Runs a window `[start, start+len)`: restore the functional
/// fast-forward state at `warm_start` from the shared `bank`, warm up
/// in detail with thresholds downscaled by `scale` (re-promoting any
/// code the checkpoint left cold), restore thresholds, measure the
/// sample. Returns (cycles, dist).
#[allow(clippy::too_many_arguments)]
fn run_methodology_sample(
    program: &GuestProgram,
    base: &TolConfig,
    timing: &TimingConfig,
    bank: &SnapshotBank,
    scale: u64,
    warm_start: u64,
    start: u64,
    len: u64,
) -> Option<(u64, ModeDist)> {
    let mut m = bank.machine_at(program, warm_start)?;
    // Warm-up window: detailed, with downscaled thresholds — this warms
    // the microarchitectural state and finishes warming the
    // software-layer state.
    m.tol.cfg.bbm_threshold = (base.bbm_threshold / scale).max(1);
    m.tol.cfg.sbm_threshold = (base.sbm_threshold / scale).max(2);
    let mut core = InOrderCore::new(timing.clone());
    m.tol.set_synthesize_overhead(true);
    m.run_to(start, true, &mut core).ok()?;
    // Restore thresholds for the measured region.
    m.tol.cfg.bbm_threshold = base.bbm_threshold;
    m.tol.cfg.sbm_threshold = base.sbm_threshold;
    // Detailed sample.
    let warm_cycles = core.stats().cycles;
    let before = m.tol.mode_split();
    m.run_to(start + len, true, &mut core).ok()?;
    let after = m.tol.mode_split();
    Some((core.stats().cycles - warm_cycles, dist_between(before, after)))
}

/// Runs the full study.
///
/// Returns `None` when the program is too short for the requested
/// sampling plan.
pub fn warmup_study(
    program: &GuestProgram,
    tol: &TolConfig,
    timing: &TimingConfig,
    wcfg: &WarmupConfig,
) -> Option<WarmupResult> {
    // --- authoritative run: full-detail timing, measuring each window ---
    let mut m = Machine::new(tol.clone(), program);
    let mut core = InOrderCore::new(timing.clone());
    m.tol.set_synthesize_overhead(true);
    // Estimate total length with a functional scout run.
    let total = functional_length(program, tol)?;
    let needed = wcfg.sample_len * wcfg.num_samples as u64 * 2;
    if total < needed {
        return None;
    }
    let stride = total / (wcfg.num_samples as u64 + 1);
    let starts: Vec<u64> = (1..=wcfg.num_samples as u64).map(|i| i * stride).collect();
    let mut windows: Vec<RefWindow> = Vec::new();
    for &s in &starts {
        m.run_to(s, true, &mut core).ok()?;
        let c0 = core.stats().cycles;
        let d0 = m.tol.mode_split();
        m.run_to(s + wcfg.sample_len, true, &mut core).ok()?;
        let c1 = core.stats().cycles;
        let d1 = m.tol.mode_split();
        windows.push(RefWindow { start: s, cycles: c1 - c0, dist: dist_between(d0, d1) });
    }

    // --- methodology: per sample, pick the best (scale, warmup) ---------
    // ONE functional fast-forward, checkpointed at every warm-up start;
    // every `(scale, warm-up length)` candidate below restores from the
    // shared bank instead of re-running the prefix from instruction zero
    // (scaling factors only shape the warm-up window itself, so they no
    // longer need separate fast-forward passes).
    let mut points: Vec<u64> = windows
        .iter()
        .flat_map(|w| wcfg.warmup_lens.iter().map(|wl| w.start.saturating_sub(*wl)))
        .collect();
    points.sort_unstable();
    points.dedup();
    let bank = SnapshotBank::build(program, tol, &points)?;
    let mut samples = Vec::new();
    let mut sampled_cost = 0u64;
    for w in &windows {
        let mut best: Option<(f64, u64, u64, u64)> = None; // (score, scale, wlen, cycles)
        for &scale in &wcfg.scale_factors {
            for &wlen in &wcfg.warmup_lens {
                let warm_start = w.start.saturating_sub(wlen);
                let Some((cycles, dist)) = run_methodology_sample(
                    program,
                    tol,
                    timing,
                    &bank,
                    scale,
                    warm_start,
                    w.start,
                    wcfg.sample_len,
                ) else {
                    continue;
                };
                let score = dist_l1(dist, w.dist);
                // Prefer the longer warm-up on near-ties: the execution
                // distribution cannot see microarchitectural warmth, and
                // longer warm-up only costs simulation time (the paper's
                // accuracy/length trade-off).
                let better = match best {
                    None => true,
                    Some((bs, _, bw, _)) => {
                        score + 0.02 < bs || ((score - bs).abs() <= 0.02 && wlen > bw)
                    }
                };
                if better {
                    best = Some((score, scale, wlen, cycles));
                }
            }
        }
        let (_, scale, wlen, cycles) = best?;
        sampled_cost += wlen + wcfg.sample_len;
        samples.push(SampleOutcome {
            start: w.start,
            scale,
            warmup_len: wlen,
            cpi: cycles as f64 / wcfg.sample_len as f64,
            ref_cpi: w.cycles as f64 / wcfg.sample_len as f64,
        });
    }

    let full_cpi = windows.iter().map(|w| w.cycles).sum::<u64>() as f64
        / (wcfg.sample_len * windows.len() as u64) as f64;
    let sampled_cpi =
        samples.iter().map(|s| s.cpi).sum::<f64>() / samples.len().max(1) as f64;
    let error_pct = ((sampled_cpi - full_cpi) / full_cpi).abs() * 100.0;
    Some(WarmupResult {
        full_cpi,
        sampled_cpi,
        error_pct,
        full_cost: total,
        sampled_cost,
        cost_reduction: total as f64 / sampled_cost.max(1) as f64,
        samples,
    })
}

// -- SMARTS-style sampled CPI -------------------------------------------------

/// Configuration of a [`sampled_cpi`] campaign.
#[derive(Debug, Clone)]
pub struct SmartsConfig {
    /// Number of measurement windows, strided evenly over the run.
    pub num_samples: usize,
    /// Detailed warm-up window before each measurement (guest insns) —
    /// warms the fresh core's caches and predictors; the software layer
    /// arrives warm from the checkpoint.
    pub warm_len: u64,
    /// Measured window length (guest insns).
    pub measure_len: u64,
    /// Which timing path the windows run under. `Fast` is bit-identical
    /// to `Full` for the in-order core, so it is the default.
    pub timing_mode: TimingMode,
    /// Effective overhead cycles-per-instruction override. `None` (the
    /// default, recommended) calibrates in context per workload by burst
    /// injection: one sample window is run twice, once as control and
    /// once with a synthetic 30k-instruction overhead burst injected
    /// into the timing stream, and the cycle delta per injected
    /// instruction gives the effective cost — including the cache and
    /// predictor interference with the application working set that an
    /// isolated calibration (see [`calibrate_overhead_cph`]) misses.
    pub overhead_cph: Option<f64>,
}

impl Default for SmartsConfig {
    fn default() -> Self {
        SmartsConfig {
            num_samples: 7,
            warm_len: 4_000,
            measure_len: 12_000,
            timing_mode: TimingMode::Fast,
            overhead_cph: None,
        }
    }
}

/// One measurement window's outcome.
#[derive(Debug, Clone)]
pub struct SmartsSample {
    /// Window start (guest instruction count).
    pub start: u64,
    /// Cycles per *guest* instruction in the measured window.
    pub cpi: f64,
    /// Cycles per *host* instruction in the measured window — the
    /// quantity the estimator fits (see [`SampledCpi::cpi`]).
    pub cph: f64,
    /// Cycle delta of the measured window.
    pub cycles: u64,
    /// Guest instructions actually measured.
    pub insns: u64,
    /// Application host instructions measured.
    pub host_app_insns: u64,
    /// Synthesized TOL-overhead host instructions measured.
    pub overhead_insns: u64,
}

/// Result of a [`sampled_cpi`] campaign.
///
/// The estimator exploits the co-designed structure of guest CPI:
/// `guest cycles = app_CPH × app_host_insns + ovh_CPH × overhead_insns`.
/// The host-instruction totals come *exactly* from the functional
/// fast-forward pass (the TOL's accounting is identical whether or not
/// a timing sink is attached); `ovh_CPH` is calibrated once from the
/// workload-independent synthetic overhead stream; only `app_CPH` — a
/// smooth pipeline property — needs detailed sampling. Sampling guest
/// CPI directly would miss TOL overhead bursts entirely: a translation
/// charges tens of thousands of host instructions at a single
/// guest-instruction boundary, a zero-width spike in guest position
/// space that strided windows almost never straddle.
#[derive(Debug, Clone)]
pub struct SampledCpi {
    /// Total guest instructions of the workload.
    pub total_insns: u64,
    /// Total sink-visible host instructions (functional pass, exact).
    pub host_insns: u64,
    /// Fitted cycles per application host instruction.
    pub app_cph: f64,
    /// Calibrated cycles per synthesized-overhead host instruction.
    pub overhead_cph: f64,
    /// Estimated cycles per guest instruction:
    /// `(app_cph × app_host + overhead_cph × overhead) / guest_insns`.
    pub cpi: f64,
    /// Half-width of the 95% confidence interval on [`SampledCpi::cpi`]
    /// (`1.96·s/√n` over the window CPHs, scaled by the expansion
    /// factor; 0 when fewer than two windows).
    pub ci95: f64,
    /// Guest instructions simulated in detail (warm-up + measurement).
    pub detailed_insns: u64,
    /// Per-window outcomes, in ascending start order.
    pub samples: Vec<SmartsSample>,
}

/// Runtime-selected window sink: the campaign chooses fast or full per
/// configuration, both over the identical in-order model.
enum WindowSink {
    Fast(Box<FastTimer>),
    Full(Box<InOrderCore>),
}

impl WindowSink {
    fn new(mode: TimingMode, cfg: &TimingConfig) -> WindowSink {
        match mode {
            TimingMode::Fast => WindowSink::Fast(Box::new(FastTimer::new(cfg.clone()))),
            TimingMode::Full => WindowSink::Full(Box::new(InOrderCore::new(cfg.clone()))),
        }
    }

    fn as_sink(&mut self) -> &mut dyn InsnSink {
        match self {
            WindowSink::Fast(s) => &mut **s,
            WindowSink::Full(s) => &mut **s,
        }
    }

    fn stats(&self) -> TimingStats {
        match self {
            WindowSink::Fast(s) => s.stats(),
            WindowSink::Full(s) => s.stats(),
        }
    }
}

/// Runs a SMARTS-style sampled-CPI campaign: scout the workload length
/// functionally, checkpoint a [`SnapshotBank`] at `n` strided warm-up
/// starts, then per sample restore, warm a fresh core in detail and
/// measure CPI over the window. Fully deterministic: samples run
/// serially in ascending order and nothing depends on wall clock.
///
/// Returns `None` when the program is too short for the requested plan
/// (it needs at least `2·n·(warm+measure)` instructions).
pub fn sampled_cpi(
    program: &GuestProgram,
    tol: &TolConfig,
    timing: &TimingConfig,
    scfg: &SmartsConfig,
) -> Option<SampledCpi> {
    let total = functional_length(program, tol)?;
    sampled_cpi_with_len(program, tol, timing, scfg, total)
}

/// [`sampled_cpi`] with the workload length already known (e.g. from a
/// prior oracle or functional run), skipping the scout pass. Windows
/// are placed by systematic midpoint sampling — the `i`-th measurement
/// starts at `stride/2 + i·stride` with `stride = total/n` — so every
/// region of the run, including the cold-start phase, is represented
/// proportionally (skipping the start would bias the estimate low on
/// workloads whose translation warm-up is a visible fraction of the
/// run).
pub fn sampled_cpi_with_len(
    program: &GuestProgram,
    tol: &TolConfig,
    timing: &TimingConfig,
    scfg: &SmartsConfig,
    total: u64,
) -> Option<SampledCpi> {
    let n = scfg.num_samples.max(1) as u64;
    let window = scfg.warm_len + scfg.measure_len;
    if total < window * n * 2 {
        return None;
    }
    let stride = total / n;
    let starts: Vec<u64> = (0..n).map(|i| stride / 2 + i * stride).collect();
    let points: Vec<u64> = starts.iter().map(|s| s.saturating_sub(scfg.warm_len)).collect();
    let (bank, totals) = SnapshotBank::build_to_end(program, tol, &points)?;
    let mut samples = Vec::with_capacity(starts.len());
    let mut detailed_insns = 0u64;
    for (&start, &ws) in starts.iter().zip(&points) {
        let mut m = bank.machine_at(program, ws)?;
        let restored_at = m.insns();
        let mut sink = WindowSink::new(scfg.timing_mode, timing);
        m.tol.set_synthesize_overhead(true);
        // Warm-up: charge the fresh core without recording.
        m.run_to(start, true, &mut sink.as_sink()).ok()?;
        let c0 = sink.stats().cycles;
        let g0 = m.insns();
        let (a0, o0) = host_acct(&m);
        // Measurement.
        m.run_to(start + scfg.measure_len, true, &mut sink.as_sink()).ok()?;
        let c1 = sink.stats().cycles;
        let g1 = m.insns();
        let (a1, o1) = host_acct(&m);
        if g1 == g0 || (a1 - a0) + (o1 - o0) == 0 {
            return None;
        }
        detailed_insns += g1 - restored_at;
        samples.push(SmartsSample {
            start,
            cpi: (c1 - c0) as f64 / (g1 - g0) as f64,
            cph: (c1 - c0) as f64 / ((a1 - a0) + (o1 - o0)) as f64,
            cycles: c1 - c0,
            insns: g1 - g0,
            host_app_insns: a1 - a0,
            overhead_insns: o1 - o0,
        });
    }
    let k = samples.len() as f64;
    let sum_c: u64 = samples.iter().map(|s| s.cycles).sum();
    let sum_a: u64 = samples.iter().map(|s| s.host_app_insns).sum();
    let sum_o: u64 = samples.iter().map(|s| s.overhead_insns).sum();
    // Effective overhead CPH. Two calibrations bracket the truth:
    //
    // * the **isolated** stream cost ([`calibrate_overhead_cph`]) — right
    //   for small overhead events (dispatch, lookups, basic-block
    //   translations of a few hundred instructions) whose footprint is
    //   too small to evict application cache and predictor state;
    // * the **injected** in-context cost (a control window versus the
    //   same window with a synthetic 30k-instruction burst) — right for
    //   big superblock-translation bursts, which thrash the application
    //   working set and charge an interference premium on top of the
    //   stream cost.
    //
    // Compose per overhead stream: the SBM-translator share pays the
    // injected rate scaled by how close its mean burst size comes to
    // the injected burst; everything else pays the isolated rate.
    let ovh_cph = match scfg.overhead_cph {
        Some(b) => b,
        None => {
            const INJECT: u64 = 30_000;
            let run = |inject: u64| -> Option<(u64, u64)> {
                let ws = points[points.len() / 2];
                let mut m = bank.machine_at(program, ws)?;
                let base = m.insns();
                let mut sink = WindowSink::new(scfg.timing_mode, timing);
                m.tol.set_synthesize_overhead(true);
                m.run_to(base + scfg.warm_len, true, &mut sink.as_sink()).ok()?;
                let c0 = sink.stats().cycles;
                if inject > 0 {
                    // The injected burst only touches the timing sink;
                    // the guest/TOL state evolves identically to the
                    // control window, so the cycle delta is purely the
                    // burst's pipeline cost plus its interference.
                    let mut acct = darco_tol::overhead::Accountant::new(true);
                    acct.charge(
                        darco_tol::OverheadKind::SbTranslator,
                        inject,
                        &mut sink.as_sink(),
                    );
                }
                m.run_to(base + scfg.warm_len + scfg.measure_len, true, &mut sink.as_sink())
                    .ok()?;
                Some((sink.stats().cycles - c0, m.insns() - base))
            };
            let (ctrl, g_ctrl) = run(0)?;
            let (inj, g_inj) = run(INJECT)?;
            detailed_insns += g_ctrl + g_inj;
            let beta_inj =
                ((inj.saturating_sub(ctrl)) as f64 / INJECT as f64).clamp(0.3, 8.0);
            let beta_iso = calibrate_overhead_cph(timing);
            let o = totals.overhead_insns.max(1) as f64;
            let o_sb = totals.sb_overhead_insns.min(totals.overhead_insns) as f64;
            let mean_burst = if totals.sb_translations > 0 {
                o_sb / totals.sb_translations as f64
            } else {
                0.0
            };
            let w = (mean_burst / INJECT as f64).clamp(0.0, 1.0);
            let beta_sb = beta_iso + w * (beta_inj - beta_iso);
            (o_sb * beta_sb + (o - o_sb) * beta_iso) / o
        }
    };
    // Fit the application CPH by subtracting the overhead contribution
    // from the pooled window cycles (host-weighted ratio fit — a window
    // that straddles a translation burst contributes the burst's host
    // instructions with proportional weight), then compose with the
    // exact functional host-instruction split.
    let app_cph = if sum_a > 0 {
        ((sum_c as f64 - ovh_cph * sum_o as f64) / sum_a as f64).max(0.1)
    } else {
        ovh_cph
    };
    let g = totals.guest_insns as f64;
    let cpi = (app_cph * totals.host_app_insns as f64
        + ovh_cph * totals.overhead_insns as f64)
        / g;
    let ci95 = if samples.len() >= 2 && sum_a > 0 {
        // Linearized ratio-estimator variance of the app fit: residuals
        // of window cycles against the fitted model, normalized by the
        // mean app window size, scaled to guest CPI via the exact
        // app-host expansion.
        let a_mean = sum_a as f64 / k;
        let var_d = samples
            .iter()
            .map(|s| {
                let d = s.cycles as f64
                    - app_cph * s.host_app_insns as f64
                    - ovh_cph * s.overhead_insns as f64;
                d * d
            })
            .sum::<f64>()
            / (k - 1.0);
        1.96 * (var_d / k).sqrt() / a_mean * (totals.host_app_insns as f64 / g)
    } else {
        0.0
    };
    Some(SampledCpi {
        total_insns: totals.guest_insns,
        host_insns: totals.host_insns(),
        app_cph,
        overhead_cph: ovh_cph,
        cpi,
        ci95,
        detailed_insns,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{AluOp, Asm, Cond, Gpr};

    /// A phased program: several loops of different character.
    fn phased_program() -> GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        for phase in 0..4 {
            a.mov_ri(Gpr::Ecx, 20_000);
            let top = a.here();
            for k in 0..3 + phase {
                a.alu_ri(AluOp::Add, Gpr::Eax, k + 1);
            }
            a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x9E37);
            a.dec(Gpr::Ecx);
            a.jcc_to(Cond::Ne, top);
        }
        a.halt();
        a.into_program()
    }

    #[test]
    fn warmup_study_reduces_cost_with_small_error() {
        let tol = TolConfig { bbm_threshold: 20, sbm_threshold: 200, ..Default::default() };
        let timing = TimingConfig::default();
        let wcfg = WarmupConfig {
            sample_len: 5_000,
            num_samples: 3,
            warmup_lens: vec![4_000, 16_000],
            scale_factors: vec![4, 16],
        };
        let r = warmup_study(&phased_program(), &tol, &timing, &wcfg).expect("study runs");
        assert_eq!(r.samples.len(), 3);
        assert!(r.cost_reduction > 3.0, "cost reduction {:.1}x", r.cost_reduction);
        // Unit-scale programs leave residual microarchitectural transients;
        // the bench harness measures the paper-scale numbers.
        assert!(r.error_pct < 25.0, "CPI error {:.2}%", r.error_pct);
        assert!(r.full_cpi > 0.0 && r.sampled_cpi > 0.0);
    }

    #[test]
    fn too_short_program_is_rejected() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.halt();
        let p = a.into_program();
        assert!(warmup_study(
            &p,
            &TolConfig::default(),
            &TimingConfig::default(),
            &WarmupConfig::default()
        )
        .is_none());
        assert!(sampled_cpi(
            &p,
            &TolConfig::default(),
            &TimingConfig::default(),
            &SmartsConfig::default()
        )
        .is_none());
    }

    #[test]
    fn snapshot_bank_restores_exact_counts() {
        let tol = TolConfig { bbm_threshold: 10, sbm_threshold: 60, ..Default::default() };
        let p = phased_program();
        let points = vec![10_000, 50_000, 200_000];
        let bank = SnapshotBank::build(&p, &tol, &points).expect("bank builds");
        assert_eq!(bank.points(), points);
        for &pt in &points {
            let m = bank.machine_at(&p, pt).expect("restore");
            assert!(m.insns() >= pt, "restored at {} for point {pt}", m.insns());
            // Restores are repeatable: same point, same state bytes.
            let m2 = bank.machine_at(&p, pt).unwrap();
            assert_eq!(m.insns(), m2.insns());
        }
        assert!(bank.machine_at(&p, 12345).is_none(), "unknown point");
    }

    #[test]
    fn sampled_cpi_is_deterministic_and_mode_agnostic() {
        let tol = TolConfig { bbm_threshold: 20, sbm_threshold: 200, ..Default::default() };
        let timing = TimingConfig::default();
        let scfg = SmartsConfig {
            num_samples: 3,
            warm_len: 4_000,
            measure_len: 6_000,
            timing_mode: TimingMode::Fast,
            overhead_cph: None,
        };
        let p = phased_program();
        let a = sampled_cpi(&p, &tol, &timing, &scfg).expect("campaign runs");
        let b = sampled_cpi(&p, &tol, &timing, &scfg).expect("campaign runs");
        assert_eq!(a.cpi.to_bits(), b.cpi.to_bits(), "bitwise deterministic");
        assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
        assert_eq!(a.samples.len(), 3);
        assert!(a.cpi > 0.0 && a.detailed_insns < a.total_insns);
        // The fast path is bit-identical to full simulation, so the whole
        // campaign must agree bit-for-bit across modes.
        let full = sampled_cpi(
            &p,
            &tol,
            &timing,
            &SmartsConfig { timing_mode: TimingMode::Full, ..scfg },
        )
        .expect("full-mode campaign runs");
        assert_eq!(a.cpi.to_bits(), full.cpi.to_bits(), "fast == full per window");
        for (x, y) in a.samples.iter().zip(&full.samples) {
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.insns, y.insns);
        }
    }
}
