//! The re-entrant stepping engine and serializable checkpoints.
//!
//! [`Engine`] inverts the old run-to-completion control flow: instead of
//! [`crate::System::run`] owning the loop until the application ends, the
//! caller owns it — [`Engine::step`] runs one bounded quantum and returns
//! a [`StepExit`] at a synchronization-safe boundary. At every such
//! boundary the complete simulation state (guest architectural state and
//! memory, TOL including the code cache, the authoritative component, and
//! the attached timing core) can be serialized with [`Engine::checkpoint`]
//! and later resumed bit-identically with [`Engine::restore`].
//!
//! The determinism contract: for a fixed stepping schedule, a run that is
//! checkpointed at a boundary, restored into a fresh engine and driven to
//! completion produces a [`crate::RunReport`] identical to the
//! uninterrupted run in every deterministic metric (wall-clock
//! measurements such as `*_nanos` counters are inherently excluded).

use crate::machine::{Machine, MachineEvent};
use crate::profiler::Profiler;
use crate::system::{DarcoError, RunReport, SinkChoice, SystemConfig, TimingMode};
use darco_guest::{Fault, GuestProgram, Wire, WireError, WireReader};
use darco_host::sink::{InsnSink, NullSink, RetireEvent};
use darco_host::HInsn;
use darco_obs::{Registry, Tracer};
use darco_power::EnergyModel;
use darco_timing::{FastTimer, InOrderCore, OooCore};

/// Why [`Engine::step`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepExit {
    /// The quantum budget was exhausted; call [`Engine::step`] again to
    /// continue.
    Yielded,
    /// The application ended (halt or exit syscall); the report is final.
    Ended,
    /// Both components raised the same guest fault; the report is final.
    GuestFault,
    /// A periodic validation boundary was reached and the validation was
    /// performed (successfully — a divergence is an error, not an exit).
    ValidationDue,
}

/// Snapshot format magic (`DARCOSNP`, little-endian).
const SNAP_MAGIC: u64 = u64::from_le_bytes(*b"DARCOSNP");
/// Snapshot format version. v3: the TOL body carries per-translation
/// static cycle annotations (and their `TolStats` aggregate), and sink
/// tag 3 (`fast`) exists.
const SNAP_VERSION: u32 = 3;

/// A serialized checkpoint of a running engine.
///
/// The header carries a format magic + version plus fingerprints of the
/// guest program and the system configuration, so a snapshot can only be
/// restored into an engine built from the same inputs.
#[derive(Debug, Clone)]
pub struct Snapshot {
    bytes: Vec<u8>,
    guest_insns: u64,
    program_fingerprint: u64,
}

impl Snapshot {
    /// The serialized form (stable across processes and hosts).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Parses a serialized snapshot, checking magic and version.
    ///
    /// # Errors
    /// [`DarcoError::Protocol`] when the bytes are not a DARCO snapshot
    /// or use an unsupported format version.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, DarcoError> {
        let mut r = WireReader::new(&bytes);
        let magic = r.get_u64().map_err(wire_err)?;
        if magic != SNAP_MAGIC {
            return Err(DarcoError::Protocol("not a DARCO snapshot (bad magic)".into()));
        }
        let version = r.get_u32().map_err(wire_err)?;
        if version != SNAP_VERSION {
            return Err(DarcoError::Protocol(format!(
                "unsupported snapshot version {version} (expected {SNAP_VERSION})"
            )));
        }
        let program_fingerprint = r.get_u64().map_err(wire_err)?;
        let _config_fingerprint = r.get_u64().map_err(wire_err)?;
        let guest_insns = r.get_u64().map_err(wire_err)?;
        Ok(Snapshot { bytes, guest_insns, program_fingerprint })
    }

    /// Retired guest instructions at the checkpoint.
    pub fn guest_insns(&self) -> u64 {
        self.guest_insns
    }

    /// Fingerprint of the program the snapshot was taken from.
    pub fn program_fingerprint(&self) -> u64 {
        self.program_fingerprint
    }
}

fn wire_err(e: WireError) -> DarcoError {
    DarcoError::Protocol(format!("malformed snapshot: {e}"))
}

/// FNV-1a over the configuration's debug rendering: a guard against
/// restoring a snapshot under a different configuration, not a security
/// boundary. [`SystemConfig`] contains no hash-ordered containers, so the
/// rendering is deterministic.
///
/// The backend is normalized out: native code is a pure cache over the
/// arena, so a snapshot taken under either backend restores bit-for-bit
/// into the other.
pub(crate) fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    let mut cfg = cfg.clone();
    cfg.backend = Default::default();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{cfg:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) enum Sink {
    Null(NullSink),
    InOrder(Box<InOrderCore>),
    Ooo(Box<OooCore>),
    /// The in-order model behind the block-granular accelerated path
    /// ([`TimingMode::Fast`]) — bit-identical to `InOrder` by contract.
    Fast(Box<FastTimer>),
}

impl InsnSink for Sink {
    fn retire(&mut self, ev: &RetireEvent) {
        match self {
            Sink::Null(s) => s.retire(ev),
            Sink::InOrder(s) => s.retire(ev),
            Sink::Ooo(s) => s.retire(ev),
            Sink::Fast(s) => s.retire(ev),
        }
    }

    fn is_null(&self) -> bool {
        matches!(self, Sink::Null(_))
    }

    fn wants_blocks(&self) -> bool {
        match self {
            Sink::Null(s) => s.wants_blocks(),
            Sink::InOrder(s) => s.wants_blocks(),
            Sink::Ooo(s) => s.wants_blocks(),
            Sink::Fast(s) => s.wants_blocks(),
        }
    }

    fn retire_block(&mut self, events: &[RetireEvent], complete: bool) {
        match self {
            Sink::Null(s) => s.retire_block(events, complete),
            Sink::InOrder(s) => s.retire_block(events, complete),
            Sink::Ooo(s) => s.retire_block(events, complete),
            Sink::Fast(s) => s.retire_block(events, complete),
        }
    }

    fn install_note(&mut self, host_base: u64, code: &[HInsn]) -> Option<u64> {
        match self {
            Sink::Null(s) => s.install_note(host_base, code),
            Sink::InOrder(s) => s.install_note(host_base, code),
            Sink::Ooo(s) => s.install_note(host_base, code),
            Sink::Fast(s) => s.install_note(host_base, code),
        }
    }
}

enum Finish {
    Ended { exit_status: Option<u32> },
    Fault(Fault),
}

/// Persistent registry mirror for flight dumps: `sync_from` at every
/// quantum boundary accumulates honest epoch stamps (quiet metrics are
/// not re-stamped), so on a crash `delta_since(boundary_epoch)` names
/// exactly the metrics that moved after the last good boundary.
struct ObsMirror {
    reg: Registry,
    /// Mirror epoch as of the last completed boundary.
    boundary_epoch: u64,
}

/// A running simulation that the caller steps.
///
/// Created by [`crate::System::start`]. Drop it at any point, resume it
/// with more [`Engine::step`] calls, or serialize it with
/// [`Engine::checkpoint`] — the engine never owns a loop.
pub struct Engine {
    cfg: SystemConfig,
    program: GuestProgram,
    machine: Machine,
    sink: Sink,
    /// Next instruction count at which to validate (`u64::MAX` when
    /// periodic validation is off).
    next_validate: u64,
    finished: Option<Finish>,
    /// Guest-PC sampling profiler, sampled at every quantum boundary when
    /// enabled ([`Engine::enable_profiler`]). Boxed: most runs carry none.
    profiler: Option<Box<Profiler>>,
    /// Flight-dump registry mirror (allocated only with a flight path).
    flight_mirror: Option<Box<ObsMirror>>,
}

impl Engine {
    /// Builds a ready-to-step engine (the Initialization phase).
    pub fn new(cfg: SystemConfig, program: GuestProgram) -> Engine {
        let mut machine = Machine::new(cfg.tol.clone(), &program);
        if let Some(cap) = cfg.trace_capacity {
            machine.tol.obs.trace = Tracer::ring(cap);
        }
        if cfg.timing_includes_tol && cfg.sink != SinkChoice::None {
            machine.tol.set_synthesize_overhead(true);
        }
        machine.tol.set_backend(cfg.backend);
        let sink = match (cfg.sink, cfg.timing_mode) {
            (SinkChoice::None, _) => Sink::Null(NullSink),
            (SinkChoice::InOrder, TimingMode::Full) => {
                Sink::InOrder(Box::new(InOrderCore::new(cfg.timing.clone())))
            }
            (SinkChoice::InOrder, TimingMode::Fast) => {
                Sink::Fast(Box::new(FastTimer::new(cfg.timing.clone())))
            }
            // The out-of-order model has no accelerated path; `fast`
            // degrades to the detailed simulation it would escape into
            // anyway.
            (SinkChoice::OutOfOrder, _) => Sink::Ooo(Box::new(OooCore::new(cfg.timing.clone()))),
        };
        let next_validate = match cfg.validate_every {
            Some(step) => machine.insns().saturating_add(step),
            None => u64::MAX,
        };
        let flight_mirror = cfg
            .flight_path
            .is_some()
            .then(|| Box::new(ObsMirror { reg: Registry::default(), boundary_epoch: 0 }));
        Engine { cfg, program, machine, sink, next_validate, finished: None, profiler: None, flight_mirror }
    }

    /// Turns on the guest-PC sampling profiler. The engine samples once
    /// per [`Engine::step`] boundary, so `every` is realized by stepping
    /// with that budget (as `darco-run --profile` does); the value is
    /// recorded in the profiler's reports. Replaces any prior profiler.
    pub fn enable_profiler(&mut self, every: u64) {
        self.profiler = Some(Box::new(Profiler::new(every)));
    }

    /// The profiler, when enabled.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_deref()
    }

    /// Detaches and returns the profiler (e.g. before
    /// [`Engine::into_report`]).
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take().map(|p| *p)
    }

    /// Total retired guest instructions so far.
    pub fn insns(&self) -> u64 {
        self.machine.insns()
    }

    /// Whether the application has ended (further steps are no-ops).
    pub fn finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The coupled machine (inspection; the sampling harness also mutates
    /// TOL thresholds through it between steps).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the coupled machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Assembles the current unified metrics registry: a read-only
    /// snapshot of everything counted so far, exactly what
    /// [`Engine::into_report`] would carry (minus the power bridge).
    /// Callers that publish incremental updates pair this with
    /// [`Registry::sync_from`] on a persistent mirror and
    /// [`Registry::delta_since`].
    pub fn metrics(&self) -> Registry {
        Self::assemble_metrics(&self.machine, &self.sink)
    }

    /// Runs up to `budget` more guest instructions, stopping early at
    /// periodic-validation boundaries (the validation is performed before
    /// returning [`StepExit::ValidationDue`]) and at the end of the
    /// application. All synchronization invariants hold at return: the
    /// TOL is at a mode boundary with emulator transients drained, so the
    /// engine can be checkpointed or dropped.
    ///
    /// # Errors
    /// [`DarcoError`] on validation divergence, protocol errors, or when
    /// the total run exceeds [`SystemConfig::max_guest_insns`]
    /// ([`DarcoError::BudgetExceeded`] — the partial report remains
    /// available via [`Engine::into_report`]).
    pub fn step(&mut self, budget: u64) -> Result<StepExit, DarcoError> {
        if let Some(f) = &self.finished {
            return Ok(match f {
                Finish::Ended { .. } => StepExit::Ended,
                Finish::Fault(_) => StepExit::GuestFault,
            });
        }
        // With a flight path configured, a panic anywhere in the pipeline
        // (e.g. `VerifyMode::Fatal`) still produces the dump before
        // propagating, and so does every returned error.
        let r = if self.cfg.flight_path.is_some() {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.step_inner(budget)
            }));
            match r {
                Ok(Ok(exit)) => Ok(exit),
                Ok(Err(e)) => {
                    self.emit_flight(&e.to_string());
                    Err(e)
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    self.emit_flight(&format!("panic: {msg}"));
                    std::panic::resume_unwind(payload);
                }
            }
        } else {
            self.step_inner(budget)
        };
        if matches!(r, Ok(StepExit::Yielded | StepExit::ValidationDue)) {
            // A quantum boundary mid-run: the TOL sits at a mode boundary
            // with transients drained, so the sample is well-defined.
            if let Some(p) = &mut self.profiler {
                p.sample(&self.machine);
            }
            if let Some(mirr) = &mut self.flight_mirror {
                mirr.reg.sync_from(&Self::assemble_metrics(&self.machine, &self.sink));
                mirr.boundary_epoch = mirr.reg.epoch();
            }
        }
        r
    }

    /// Assembles and writes the flight artifact for a failing step,
    /// attaching the since-last-boundary registry delta and the profile
    /// window when available.
    fn emit_flight(&mut self, context: &str) {
        let reg = Self::assemble_metrics(&self.machine, &self.sink);
        let delta = self.flight_mirror.as_mut().map(|mirr| {
            mirr.reg.sync_from(&reg);
            mirr.reg.delta_since(mirr.boundary_epoch).to_json()
        });
        let window = self.profiler.as_ref().map(|p| p.window_json());
        let mut extras: Vec<(&str, &str)> = Vec::new();
        if let Some(d) = &delta {
            extras.push(("delta", d));
        }
        if let Some(w) = &window {
            extras.push(("profile_window", w));
        }
        Self::write_flight(&self.cfg, &self.machine, &reg, context, &extras);
    }

    fn step_inner(&mut self, budget: u64) -> Result<StepExit, DarcoError> {
        let now = self.machine.insns();
        if now >= self.cfg.max_guest_insns {
            return Err(DarcoError::BudgetExceeded);
        }
        let target =
            now.saturating_add(budget).min(self.next_validate).min(self.cfg.max_guest_insns);
        match self.machine.run_to(target, self.cfg.compare_flags, &mut self.sink)? {
            MachineEvent::Reached => {
                if self.machine.insns() >= self.next_validate {
                    self.machine
                        .xcomp
                        .run_until(self.machine.insns())
                        .map_err(|e| DarcoError::Protocol(e.to_string()))?;
                    self.machine.validate(self.cfg.compare_flags)?;
                    let step = self.cfg.validate_every.unwrap_or(u64::MAX);
                    self.next_validate = self.machine.insns().saturating_add(step);
                    Ok(StepExit::ValidationDue)
                } else {
                    Ok(StepExit::Yielded)
                }
            }
            MachineEvent::Ended { exit_status } => {
                self.finished = Some(Finish::Ended { exit_status });
                Ok(StepExit::Ended)
            }
            MachineEvent::GuestFault(f) => {
                self.finished = Some(Finish::Fault(f));
                Ok(StepExit::GuestFault)
            }
        }
    }

    /// Serializes the complete engine state. Drives the authoritative
    /// component to the co-designed instruction count first, so the
    /// snapshot captures both components at the same execution point.
    ///
    /// # Errors
    /// [`DarcoError::Protocol`] when the run already finished (nothing
    /// left to resume) or the authoritative component cannot catch up.
    pub fn checkpoint(&mut self) -> Result<Snapshot, DarcoError> {
        if self.finished.is_some() {
            return Err(DarcoError::Protocol("cannot checkpoint a finished run".into()));
        }
        let mut w = Wire::new();
        w.put_u64(SNAP_MAGIC);
        w.put_u32(SNAP_VERSION);
        let program_fingerprint = self.program.fingerprint();
        w.put_u64(program_fingerprint);
        w.put_u64(config_fingerprint(&self.cfg));
        let guest_insns = self.machine.insns();
        w.put_u64(guest_insns);
        self.machine.snapshot_into(&mut w)?;
        w.put_u64(self.next_validate);
        match &self.sink {
            Sink::Null(_) => w.put_u8(0),
            Sink::InOrder(c) => {
                w.put_u8(1);
                c.snapshot_into(&mut w);
            }
            Sink::Ooo(c) => {
                w.put_u8(2);
                c.snapshot_into(&mut w);
            }
            Sink::Fast(c) => {
                w.put_u8(3);
                c.snapshot_into(&mut w);
            }
        }
        Ok(Snapshot { bytes: w.finish(), guest_insns, program_fingerprint })
    }

    /// Restores the engine to a checkpointed state. The engine must have
    /// been built from the same program and configuration the snapshot
    /// was taken under (enforced via the header fingerprints).
    ///
    /// # Errors
    /// [`DarcoError::Protocol`] on fingerprint mismatches or a malformed
    /// snapshot body.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), DarcoError> {
        let mut r = WireReader::new(&snap.bytes);
        let magic = r.get_u64().map_err(wire_err)?;
        let version = r.get_u32().map_err(wire_err)?;
        if magic != SNAP_MAGIC || version != SNAP_VERSION {
            return Err(DarcoError::Protocol("not a restorable DARCO snapshot".into()));
        }
        let program_fp = r.get_u64().map_err(wire_err)?;
        if program_fp != self.program.fingerprint() {
            return Err(DarcoError::Protocol(format!(
                "snapshot was taken from a different program \
                 (fingerprint {program_fp:#018x}, engine has {:#018x})",
                self.program.fingerprint()
            )));
        }
        let config_fp = r.get_u64().map_err(wire_err)?;
        if config_fp != config_fingerprint(&self.cfg) {
            return Err(DarcoError::Protocol(
                "snapshot was taken under a different configuration".into(),
            ));
        }
        let _insns = r.get_u64().map_err(wire_err)?;
        self.machine.restore_from(&mut r).map_err(wire_err)?;
        self.next_validate = r.get_u64().map_err(wire_err)?;
        let sink_tag = r.get_u8().map_err(wire_err)?;
        match (&mut self.sink, sink_tag) {
            (Sink::Null(_), 0) => {}
            (Sink::InOrder(c), 1) => c.restore_from(&mut r).map_err(wire_err)?,
            (Sink::Ooo(c), 2) => c.restore_from(&mut r).map_err(wire_err)?,
            (Sink::Fast(c), 3) => c.restore_from(&mut r).map_err(wire_err)?,
            _ => {
                return Err(DarcoError::Protocol(
                    "snapshot was taken with a different timing sink".into(),
                ))
            }
        }
        r.expect_end().map_err(wire_err)?;
        self.finished = None;
        // Synthesis follows the engine's configuration, not the snapshot.
        self.machine
            .tol
            .set_synthesize_overhead(self.cfg.timing_includes_tol && self.cfg.sink != SinkChoice::None);
        Ok(())
    }

    /// Finalizes the run into a report. Valid at any point: after
    /// [`StepExit::Ended`]/[`StepExit::GuestFault`] the report is final,
    /// mid-run (or after [`DarcoError::BudgetExceeded`]) it is the
    /// partial report of everything retired so far.
    pub fn into_report(self) -> RunReport {
        let Engine { cfg, program, machine: m, sink, finished, .. } = self;
        let (exit_status, fault) = match finished {
            Some(Finish::Ended { exit_status }) => (exit_status, None),
            Some(Finish::Fault(f)) => (None, Some(f)),
            None => (None, None),
        };
        let timing = match &sink {
            Sink::Null(_) => None,
            Sink::InOrder(c) => Some(c.stats()),
            Sink::Ooo(c) => Some(c.stats()),
            Sink::Fast(c) => Some(c.stats()),
        };
        let fast = match &sink {
            Sink::Fast(c) => Some(c.fast_stats()),
            _ => None,
        };
        let power = match (&timing, cfg.power) {
            (Some(ts), true) => Some(darco_power::report(ts, &cfg.timing, &EnergyModel::default())),
            _ => None,
        };
        // Single metric assembly: the registry built here is the one the
        // report carries (the flight path assembles its own only on the
        // error path, where no report exists). The timing bridge lives in
        // `assemble_metrics`, so live consumers (`--metrics`, flight
        // dumps, the dashboard) see the same `timing.*`/`fast.*` keys.
        let mut metrics = Self::assemble_metrics(&m, &sink);
        if let Some(p) = &power {
            metrics.set_gauge("power.total_pj", p.total_pj);
            metrics.set_gauge("power.avg_power_mw", p.avg_power_mw);
            metrics.set_gauge("power.edp", p.edp);
        }
        RunReport {
            name: program.name.clone(),
            guest_insns: m.tol.total_guest(),
            mode_insns: m.tol.mode_split(),
            host_app_insns: m.tol.stats.host_app,
            overhead: *m.tol.overhead(),
            sbm_emulation_cost: m.tol.sbm_emulation_cost(),
            tol_stats: m.tol.stats,
            chkpts: m.tol.emu.counters.chkpts,
            rollbacks: m.tol.emu.counters.assert_fails + m.tol.emu.counters.alias_fails,
            validations: m.validations,
            pages_served: m.pages_served,
            syscalls: m.syscalls,
            output: m.xcomp.output.clone(),
            exit_status,
            guest_fault: fault.map(|f| f.to_string()),
            timing,
            fast,
            power,
            metrics,
            trace: m.tol.obs.trace.events(),
        }
    }

    /// Builds the unified registry from everything the machine counted:
    /// the TOL's live histograms/gauges, the `TolStats` and overhead
    /// bridges, sync-protocol counters, the authoritative component and
    /// the timing sink (`timing.*`, plus `fast.*` in accelerated mode) —
    /// so `--metrics`, flight dumps and the final report all expose the
    /// same keys.
    fn assemble_metrics(m: &Machine, sink: &Sink) -> Registry {
        let mut reg = m.tol.obs.metrics.clone();
        match sink {
            Sink::Null(_) => {}
            Sink::InOrder(c) => c.stats().register_into(&mut reg, "timing"),
            Sink::Ooo(c) => c.stats().register_into(&mut reg, "timing"),
            Sink::Fast(c) => {
                c.stats().register_into(&mut reg, "timing");
                c.fast_stats().register_into(&mut reg, "fast");
            }
        }
        m.tol.stats.register_into(&mut reg, "tol");
        m.tol.overhead().register_into(&mut reg, "tol");
        m.xcomp.register_metrics(&mut reg, "xcomp");
        reg.set_counter("sync.validations", m.validations);
        reg.set_counter("sync.pages_served", m.pages_served);
        reg.set_counter("sync.syscalls", m.syscalls);
        reg.set_counter("sync.xcomp_nanos", m.xcomp_nanos);
        // Per-cause emulator counters: rollback and transaction causes
        // individually, where `tol.spec_rollbacks` only has the merged
        // total. Deterministic (no wall clock), so campaign artifacts and
        // the fuzzer's coverage map can key on them.
        let ec = &m.tol.emu.counters;
        reg.set_counter("emu.chkpts", ec.chkpts);
        reg.set_counter("emu.commits", ec.commits);
        reg.set_counter("emu.assert_fails", ec.assert_fails);
        reg.set_counter("emu.alias_fails", ec.alias_fails);
        reg.set_counter("emu.page_faults", ec.page_faults);
        reg.set_counter("emu.ibtc_hits", ec.ibtc_hits);
        reg.set_counter("emu.ibtc_misses", ec.ibtc_misses);
        reg.set_counter("emu.smc_aborts", ec.smc_aborts);
        // Native-backend self-counters. Assembled here, never into the
        // TOL's serialized registry: JIT state is not part of a snapshot.
        if let Some(j) = m.tol.jit_stats() {
            reg.set_counter("jit.frags_compiled", j.frags_compiled);
            reg.set_counter("jit.enters", j.enters);
            reg.set_counter("jit.code_bytes_emitted", j.code_bytes_emitted);
            reg.set_counter("jit.code_bytes_flushed", j.code_bytes_flushed);
            reg.set_counter("jit.jump_patches", j.jump_patches);
            reg.set_counter("jit.ibtc_patches", j.ibtc_patches);
            reg.set_counter("jit.regalloc_spills", j.regalloc_spills);
            reg.set_counter("jit.slow_mem_exits", j.slow_mem_exits);
            reg.set_counter("jit.exec_nanos", j.exec_nanos);
            reg.set_counter("jit.compile_nanos", j.compile_nanos);
            reg.set_counter("jit.verify.fragments", j.verify_fragments);
            reg.set_counter("jit.verify.findings", j.verify_findings);
            reg.set_counter("jit.verify.nanos", j.verify_nanos);
            for k in darco_host::codegen::CheckKind::ALL {
                reg.set_counter(
                    &format!("jit.verify.{}", k.name()),
                    j.verify_by_kind[k.index()],
                );
            }
        }
        reg
    }

    /// Writes the flight-recorder artifact from a pre-assembled registry
    /// (best effort — a failing dump never masks the original error).
    fn write_flight(
        cfg: &SystemConfig,
        machine: &Machine,
        reg: &Registry,
        context: &str,
        extras: &[(&str, &str)],
    ) {
        let Some(path) = &cfg.flight_path else { return };
        let (events, dropped) = match machine.tol.obs.trace.ring_ref() {
            Some(r) => (r.events(), r.dropped()),
            None => (Vec::new(), 0),
        };
        let dump = darco_obs::flight::flight_dump_with(context, &events, dropped, reg, extras);
        if let Err(e) = std::fs::write(path, dump) {
            eprintln!("warning: could not write flight dump to {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};

    fn loop_program(iters: i32) -> GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, iters);
        let top = a.here();
        a.add_rr(Gpr::Eax, Gpr::Ecx);
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        a.into_program()
    }

    fn hot_cfg() -> SystemConfig {
        SystemConfig {
            tol: darco_tol::TolConfig { bbm_threshold: 3, sbm_threshold: 12, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn stepping_matches_monolithic_run() {
        let monolithic = System::new(hot_cfg(), loop_program(2000)).run().unwrap();
        let mut e = System::new(hot_cfg(), loop_program(2000)).start();
        let mut steps = 0;
        while let StepExit::Yielded | StepExit::ValidationDue = e.step(500).unwrap() {
            steps += 1;
        }
        assert!(steps >= 10, "quantum 500 over 6001 insns yields repeatedly: {steps}");
        let stepped = e.into_report();
        assert_eq!(stepped.guest_insns, monolithic.guest_insns);
        assert_eq!(stepped.mode_insns, monolithic.mode_insns);
        assert_eq!(stepped.exit_status, monolithic.exit_status);
    }

    #[test]
    fn step_after_end_is_idempotent() {
        let mut e = System::new(hot_cfg(), loop_program(50)).start();
        while !matches!(e.step(u64::MAX).unwrap(), StepExit::Ended) {}
        assert!(e.finished());
        assert_eq!(e.step(100).unwrap(), StepExit::Ended);
        assert_eq!(e.step(100).unwrap(), StepExit::Ended);
    }

    #[test]
    fn validation_due_is_surfaced_and_performed() {
        let mut cfg = hot_cfg();
        cfg.validate_every = Some(300);
        let mut e = System::new(cfg, loop_program(1000)).start();
        let mut validations = 0;
        loop {
            match e.step(10_000).unwrap() {
                StepExit::ValidationDue => validations += 1,
                StepExit::Yielded => {}
                StepExit::Ended | StepExit::GuestFault => break,
            }
        }
        assert!(validations >= 5, "3001 insns / 300 per check: {validations}");
        let r = e.into_report();
        assert!(r.validations >= validations as u64);
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let mut cfg = hot_cfg();
        cfg.sink = crate::SinkChoice::InOrder;
        // Uninterrupted reference with a fixed stepping schedule.
        let mut a = System::new(cfg.clone(), loop_program(3000)).start();
        let mut plain = System::new(cfg.clone(), loop_program(3000)).start();
        for _ in 0..4 {
            assert_eq!(a.step(1000).unwrap(), StepExit::Yielded);
            assert_eq!(plain.step(1000).unwrap(), StepExit::Yielded);
        }
        let snap = a.checkpoint().unwrap();
        assert!(snap.guest_insns() >= 4000);
        // Restore into a brand-new engine and finish both.
        let mut b = System::new(cfg, loop_program(3000)).start();
        b.restore(&snap).unwrap();
        assert_eq!(b.insns(), a.insns());
        loop {
            let (x, y) = (b.step(1000).unwrap(), plain.step(1000).unwrap());
            assert_eq!(x, y, "restored and uninterrupted runs step in lockstep");
            if x == StepExit::Ended {
                break;
            }
        }
        let rb = b.into_report();
        let rp = plain.into_report();
        assert_eq!(rb.guest_insns, rp.guest_insns);
        assert_eq!(rb.mode_insns, rp.mode_insns);
        assert_eq!(rb.overhead, rp.overhead);
        assert_eq!(rb.tol_stats.chain_patches, rp.tol_stats.chain_patches);
        let (tb, tp) = (rb.timing.unwrap(), rp.timing.unwrap());
        assert_eq!(tb.cycles, tp.cycles, "timing state carries over exactly");
        assert_eq!(tb.il1_misses, tp.il1_misses);
    }

    #[test]
    fn fast_timing_mode_matches_full_and_checkpoints() {
        let mut full = hot_cfg();
        full.sink = crate::SinkChoice::InOrder;
        let mut fast = full.clone();
        fast.timing_mode = crate::TimingMode::Fast;
        let rf = System::new(full, loop_program(4000)).run().unwrap();
        // Same (trivial) stepping schedule: the synthesized overhead
        // stream depends on quantum boundaries, so oracle comparisons
        // must hold the schedule fixed.
        let rb = System::new(fast.clone(), loop_program(4000)).run().unwrap();
        assert_eq!(rb.guest_insns, rf.guest_insns);
        assert_eq!(rb.timing, rf.timing, "fast path is bit-identical to full");
        let fs = rb.fast.expect("fast stats present in fast mode");
        assert!(fs.memo_blocks > 0, "steady loop must take the fast path: {fs:?}");
        assert!(rf.fast.is_none(), "full mode reports no fast stats");
        assert_eq!(
            rb.metrics.counter_value("timing.cycles"),
            rf.metrics.counter_value("timing.cycles"),
            "timing bridge is assembled identically in both modes"
        );
        assert!(rb.metrics.counter_value("fast.memo_blocks").is_some());

        // Checkpoint/restore under the fast sink (tag 3): a restored run
        // finishes identically to an uninterrupted run on the same
        // stepping schedule.
        let mut a = System::new(fast.clone(), loop_program(4000)).start();
        let mut plain = System::new(fast.clone(), loop_program(4000)).start();
        for _ in 0..3 {
            assert_eq!(a.step(1000).unwrap(), StepExit::Yielded);
            assert_eq!(plain.step(1000).unwrap(), StepExit::Yielded);
        }
        let snap = a.checkpoint().unwrap();
        let mut b = System::new(fast, loop_program(4000)).start();
        b.restore(&snap).unwrap();
        loop {
            let (x, y) = (b.step(1000).unwrap(), plain.step(1000).unwrap());
            assert_eq!(x, y);
            if x == StepExit::Ended {
                break;
            }
        }
        let (rb, rp) = (b.into_report(), plain.into_report());
        assert_eq!(rb.timing, rp.timing, "fast sink state survives checkpoint/restore");
    }

    #[test]
    fn live_metrics_carry_timing_bridge() {
        let mut cfg = hot_cfg();
        cfg.sink = crate::SinkChoice::InOrder;
        let mut e = System::new(cfg, loop_program(2000)).start();
        e.step(1000).unwrap();
        let m = e.metrics();
        assert!(
            m.counter_value("timing.cycles").unwrap_or(0) > 0,
            "mid-run metrics expose timing.* without finalizing the report"
        );
    }

    #[test]
    fn restore_rejects_wrong_program_and_config() {
        let mut e = System::new(hot_cfg(), loop_program(3000)).start();
        e.step(1000).unwrap();
        let snap = e.checkpoint().unwrap();
        let mut other = System::new(hot_cfg(), loop_program(3001)).start();
        let err = other.restore(&snap).unwrap_err();
        assert!(matches!(&err, DarcoError::Protocol(m) if m.contains("different program")), "{err}");
        let mut cfg = hot_cfg();
        cfg.validate_every = Some(777);
        let mut wrong_cfg = System::new(cfg, loop_program(3000)).start();
        let err = wrong_cfg.restore(&snap).unwrap_err();
        assert!(
            matches!(&err, DarcoError::Protocol(m) if m.contains("different configuration")),
            "{err}"
        );
    }

    #[test]
    fn snapshot_bytes_round_trip_through_parser() {
        let mut e = System::new(hot_cfg(), loop_program(2000)).start();
        e.step(1500).unwrap();
        let snap = e.checkpoint().unwrap();
        let parsed = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        assert_eq!(parsed.guest_insns(), snap.guest_insns());
        assert_eq!(parsed.program_fingerprint(), snap.program_fingerprint());
        assert!(Snapshot::from_bytes(b"garbage".to_vec()).is_err());
    }

    #[test]
    fn budget_exceeded_still_yields_partial_report() {
        let mut cfg = hot_cfg();
        cfg.max_guest_insns = 2_000;
        let mut e = System::new(cfg, loop_program(100_000)).start();
        let err = loop {
            match e.step(10_000) {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err, DarcoError::BudgetExceeded);
        let r = e.into_report();
        assert!(r.guest_insns >= 2_000 && r.exit_status.is_none());
    }
}
