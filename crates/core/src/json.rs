//! JSON report serialization.
//!
//! The writer itself lives in [`darco_obs::json`] (the workspace builds
//! with no external crates, so everything serializes through that tiny
//! hand-rolled writer instead of serde); this module re-exports it for
//! backward compatibility and renders [`RunReport`]s.
//!
//! The `tol_stats` and `metrics` sections are generated from the same
//! [`darco_obs::Registry`] bridges the flight recorder and `--metrics`
//! exporter use, so every reporting surface shows identical numbers.

use crate::system::RunReport;

pub use darco_obs::json::JsonWriter;

/// Serializes a [`RunReport`] to a JSON object string.
pub fn report_to_json(r: &RunReport) -> String {
    report_to_json_with(r, &[])
}

/// [`report_to_json`] plus caller-supplied top-level sections, each a
/// `(key, pre-rendered JSON value)` pair — `darco-run --profile --json`
/// attaches the sampling profiler's translation-cache heatmap this way.
pub fn report_to_json_with(r: &RunReport, extras: &[(&str, &str)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("name", &r.name);
    w.field_num("guest_insns", r.guest_insns);
    w.begin_obj(Some("mode_insns"))
        .field_num("im", r.mode_insns.0)
        .field_num("bbm", r.mode_insns.1)
        .field_num("sbm", r.mode_insns.2)
        .end_obj();
    w.field_num("host_app_insns", r.host_app_insns);
    let mut overhead_reg = darco_obs::Registry::new();
    r.overhead.register_into(&mut overhead_reg, "");
    w.field_raw("overhead", &overhead_reg.counters_to_json_stripped("overhead."));
    w.field_f64("overhead_fraction", r.overhead_fraction());
    w.field_f64("sbm_emulation_cost", r.sbm_emulation_cost);
    w.field_f64("sbm_fraction", r.sbm_fraction());
    let mut stats_reg = darco_obs::Registry::new();
    r.tol_stats.register_into(&mut stats_reg, "");
    w.field_raw("tol_stats", &stats_reg.counters_to_json());
    w.field_num("chkpts", r.chkpts);
    w.field_num("rollbacks", r.rollbacks);
    w.field_num("validations", r.validations);
    w.field_num("pages_served", r.pages_served);
    w.field_num("syscalls", r.syscalls);
    w.field_str("output", &String::from_utf8_lossy(&r.output));
    match r.exit_status {
        Some(v) => w.field_num("exit_status", v),
        None => w.field_null("exit_status"),
    };
    match &r.guest_fault {
        Some(f) => w.field_str("guest_fault", f),
        None => w.field_null("guest_fault"),
    };
    if let Some(t) = &r.timing {
        let mut treg = darco_obs::Registry::new();
        t.register_into(&mut treg, "t");
        let mut tw = JsonWriter::new();
        tw.begin_obj(None);
        tw.field_num("insns", t.insns).field_num("cycles", t.cycles).field_f64("ipc", t.ipc());
        for name in [
            "loads",
            "stores",
            "branches",
            "mispredicts",
            "il1_accesses",
            "il1_misses",
            "dl1_accesses",
            "dl1_misses",
            "l2_accesses",
            "l2_misses",
            "itlb_misses",
            "dtlb_misses",
        ] {
            let v = treg.counter_value(&format!("t.{name}")).unwrap_or(0);
            tw.field_num(name, v);
        }
        tw.end_obj();
        w.field_raw("timing", &tw.finish());
    } else {
        w.field_null("timing");
    }
    if let Some(f) = &r.fast {
        w.begin_obj(Some("fast"))
            .field_num("memo_blocks", f.memo_blocks)
            .field_num("memo_events", f.memo_events)
            .field_num("escapes", f.escapes)
            .field_num("learns", f.learns)
            .field_num("plain_blocks", f.plain_blocks)
            .field_num("memo_clears", f.memo_clears)
            .field_num("installs", f.installs)
            .field_num("static_cycles", f.static_cycles)
            .end_obj();
    } else {
        w.field_null("fast");
    }
    if let Some(p) = &r.power {
        w.begin_obj(Some("power"))
            .field_f64("total_pj", p.total_pj)
            .field_f64("avg_power_mw", p.avg_power_mw)
            .field_f64("edp", p.edp)
            .end_obj();
    } else {
        w.field_null("power");
    }
    w.field_raw("metrics", &r.metrics.to_json());
    for (key, json) in extras {
        w.field_raw(key, json);
    }
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(JsonWriter::escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn writer_builds_nested_objects() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("a", 1);
        w.begin_obj(Some("b")).field_str("c", "x").end_obj();
        w.field_bool("d", true);
        w.end_obj();
        assert_eq!(w.finish(), "{\"a\":1,\"b\":{\"c\":\"x\"},\"d\":true}");
    }
}
