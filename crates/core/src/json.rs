//! Minimal hand-rolled JSON emission for reports.
//!
//! The workspace builds with no external crates (sandboxed environments
//! have no registry access), so the `--json` output of `darco-run` and the
//! bench harnesses serialize through this tiny writer instead of serde.

use crate::system::RunReport;

/// An incremental JSON object/array writer.
///
/// The caller is responsible for well-formedness of nested raw values;
/// every `field_*` method handles comma placement and string escaping.
pub struct JsonWriter {
    buf: String,
    need_comma: bool,
}

impl JsonWriter {
    /// Starts an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter { buf: String::new(), need_comma: false }
    }

    /// Escapes a string for inclusion in JSON output.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn sep(&mut self) {
        if self.need_comma {
            self.buf.push(',');
        }
        self.need_comma = true;
    }

    /// Opens an object (`{`), either at the top level or as a field.
    pub fn begin_obj(&mut self, key: Option<&str>) -> &mut Self {
        self.sep();
        if let Some(k) = key {
            self.buf.push_str(&format!("\"{}\":", Self::escape(k)));
        }
        self.buf.push('{');
        self.need_comma = false;
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.buf.push('}');
        self.need_comma = true;
        self
    }

    /// Emits a numeric field (anything implementing `Display` that is
    /// already valid JSON: integers, or floats via [`Self::field_f64`]).
    pub fn field_num<T: std::fmt::Display>(&mut self, key: &str, v: T) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), v));
        self
    }

    /// Emits a float field (non-finite values become `null`).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.sep();
        if v.is_finite() {
            self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), v));
        } else {
            self.buf.push_str(&format!("\"{}\":null", Self::escape(key)));
        }
        self
    }

    /// Emits a string field.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":\"{}\"", Self::escape(key), Self::escape(v)));
        self
    }

    /// Emits a bool field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), v));
        self
    }

    /// Emits a pre-rendered JSON value under a key.
    pub fn field_raw(&mut self, key: &str, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), v));
        self
    }

    /// Emits `null` under a key.
    pub fn field_null(&mut self, key: &str) -> &mut Self {
        self.field_raw(key, "null")
    }

    /// Finishes and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

/// Serializes a [`RunReport`] to a JSON object string.
pub fn report_to_json(r: &RunReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("name", &r.name);
    w.field_num("guest_insns", r.guest_insns);
    w.begin_obj(Some("mode_insns"))
        .field_num("im", r.mode_insns.0)
        .field_num("bbm", r.mode_insns.1)
        .field_num("sbm", r.mode_insns.2)
        .end_obj();
    w.field_num("host_app_insns", r.host_app_insns);
    w.begin_obj(Some("overhead"))
        .field_num("interpreter", r.overhead.interpreter)
        .field_num("bb_translator", r.overhead.bb_translator)
        .field_num("sb_translator", r.overhead.sb_translator)
        .field_num("prologue", r.overhead.prologue)
        .field_num("chaining", r.overhead.chaining)
        .field_num("cache_lookup", r.overhead.cache_lookup)
        .field_num("others", r.overhead.others)
        .field_num("total", r.overhead.total())
        .end_obj();
    w.field_f64("overhead_fraction", r.overhead_fraction());
    w.field_f64("sbm_emulation_cost", r.sbm_emulation_cost);
    w.field_f64("sbm_fraction", r.sbm_fraction());
    let s = &r.tol_stats;
    w.begin_obj(Some("tol_stats"))
        .field_num("guest_im", s.guest_im)
        .field_num("translations_bb", s.translations_bb)
        .field_num("translations_sb", s.translations_sb)
        .field_num("recreations", s.recreations)
        .field_num("host_app", s.host_app)
        .field_num("interp_blocks", s.interp_blocks)
        .field_num("spec_rollbacks", s.spec_rollbacks)
        .field_num("chain_patches", s.chain_patches)
        .field_num("ibtc_inserts", s.ibtc_inserts)
        .field_num("guest_external", s.guest_external)
        .field_num("sb_static_guest", s.sb_static_guest)
        .field_num("sb_static_host", s.sb_static_host)
        .field_num("verify_regions", s.verify_regions)
        .field_num("verify_findings", s.verify_findings)
        .field_num("verify_nanos", s.verify_nanos)
        .field_num("translate_nanos", s.translate_nanos);
    w.begin_obj(Some("verify_by_kind"));
    for kind in darco_ir::InvariantKind::ALL {
        w.field_num(kind.name(), s.verify_by_kind[kind.index()]);
    }
    w.end_obj();
    w.end_obj();
    w.field_num("chkpts", r.chkpts);
    w.field_num("rollbacks", r.rollbacks);
    w.field_num("validations", r.validations);
    w.field_num("pages_served", r.pages_served);
    w.field_num("syscalls", r.syscalls);
    w.field_str("output", &String::from_utf8_lossy(&r.output));
    match r.exit_status {
        Some(v) => w.field_num("exit_status", v),
        None => w.field_null("exit_status"),
    };
    match &r.guest_fault {
        Some(f) => w.field_str("guest_fault", f),
        None => w.field_null("guest_fault"),
    };
    if let Some(t) = &r.timing {
        w.begin_obj(Some("timing"))
            .field_num("insns", t.insns)
            .field_num("cycles", t.cycles)
            .field_f64("ipc", t.ipc())
            .field_num("loads", t.loads)
            .field_num("stores", t.stores)
            .field_num("branches", t.branches)
            .field_num("mispredicts", t.mispredicts)
            .field_num("il1_accesses", t.il1_accesses)
            .field_num("il1_misses", t.il1_misses)
            .field_num("dl1_accesses", t.dl1_accesses)
            .field_num("dl1_misses", t.dl1_misses)
            .field_num("l2_accesses", t.l2_accesses)
            .field_num("l2_misses", t.l2_misses)
            .field_num("itlb_misses", t.itlb_misses)
            .field_num("dtlb_misses", t.dtlb_misses)
            .end_obj();
    } else {
        w.field_null("timing");
    }
    if let Some(p) = &r.power {
        w.begin_obj(Some("power"))
            .field_f64("total_pj", p.total_pj)
            .field_f64("avg_power_mw", p.avg_power_mw)
            .field_f64("edp", p.edp)
            .end_obj();
    } else {
        w.field_null("power");
    }
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(JsonWriter::escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn writer_builds_nested_objects() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("a", 1);
        w.begin_obj(Some("b")).field_str("c", "x").end_obj();
        w.field_bool("d", true);
        w.end_obj();
        assert_eq!(w.finish(), "{\"a\":1,\"b\":{\"c\":\"x\"},\"d\":true}");
    }
}
