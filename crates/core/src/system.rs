//! The controller and top-level [`System`] — DARCO's main user interface.

use crate::engine::{Engine, StepExit};
use crate::machine::MachineError;
use darco_guest::GuestProgram;
use darco_host::codegen::Backend;
use darco_obs::{Registry, TraceEvent};
use darco_power::PowerReport;
use darco_timing::{TimingConfig, TimingStats};
use darco_tol::{Overhead, TolConfig, TolStats};

/// Which timing sink to attach (the paper: "the use of the timing and
/// power simulators is optional and does not affect the functionality of
/// the rest of the infrastructure").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkChoice {
    /// Functional simulation only.
    None,
    /// The in-order core model.
    InOrder,
    /// The out-of-order extension (§III design-choice study).
    OutOfOrder,
}

/// How the attached timing sink charges cycles.
///
/// `Full` is the oracle: every retired host instruction walks the
/// detailed pipeline model. `Fast` consults per-translation cycle
/// annotations (stamped at install time) and a block memo, charging a
/// whole translated block in O(1) when the microarchitectural state is
/// provably clean, and escaping into the full model otherwise — by
/// construction bit-identical to `Full` for the in-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Detailed per-instruction simulation (the oracle).
    #[default]
    Full,
    /// Block-granular accelerated path with escape into the full model.
    Fast,
}

/// Top-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Software-layer configuration.
    pub tol: TolConfig,
    /// Validate co-designed vs authoritative state every N guest
    /// instructions (`None`: only at syscalls and end of application) —
    /// the paper's "the user can also decide how often to validate".
    pub validate_every: Option<u64>,
    /// Include the flags register in state comparison.
    pub compare_flags: bool,
    /// Timing simulation.
    pub sink: SinkChoice,
    /// Accelerated vs detailed timing (used when `sink != None`).
    /// `Fast` applies to the in-order sink; the out-of-order sink has no
    /// accelerated path and always runs detailed.
    pub timing_mode: TimingMode,
    /// Timing configuration (used when `sink != None`).
    pub timing: TimingConfig,
    /// Synthesize TOL-overhead instructions into the timing stream.
    pub timing_includes_tol: bool,
    /// Produce a power report (requires timing).
    pub power: bool,
    /// Safety bound on guest instructions.
    pub max_guest_insns: u64,
    /// Record trace events into a ring of this many entries (`None`:
    /// tracing off, the zero-overhead default).
    pub trace_capacity: Option<usize>,
    /// Write a flight-recorder dump (last trace events + metrics
    /// snapshot) to this path when the run diverges or panics.
    pub flight_path: Option<String>,
    /// Host-code backend. `Native` JIT-compiles translations to x86-64
    /// (emulator results stay bit-identical); runs that need retire
    /// events (timing/power/tracing sinks) and non-x86-64 hosts fall
    /// back to the emulator automatically. Not part of the checkpoint
    /// fingerprint: a snapshot taken under either backend restores into
    /// the other.
    pub backend: Backend,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            tol: TolConfig::default(),
            validate_every: None,
            compare_flags: true,
            sink: SinkChoice::None,
            timing_mode: TimingMode::default(),
            timing: TimingConfig::default(),
            timing_includes_tol: true,
            power: false,
            max_guest_insns: 2_000_000_000,
            trace_capacity: None,
            flight_path: None,
            backend: Backend::default(),
        }
    }
}

/// Errors from a system run.
#[derive(Debug, Clone, PartialEq)]
pub enum DarcoError {
    /// Co-designed state diverged from the authoritative state.
    Validation {
        /// Instruction count at the failed check.
        at_insns: u64,
        /// Authoritative PC.
        guest_pc: u32,
        /// First difference.
        detail: String,
    },
    /// Protocol error.
    Protocol(String),
    /// The run exceeded `max_guest_insns`.
    BudgetExceeded,
}

impl std::fmt::Display for DarcoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DarcoError::Validation { at_insns, guest_pc, detail } => write!(
                f,
                "validation failed after {at_insns} instructions at {guest_pc:#010x}: {detail}"
            ),
            DarcoError::Protocol(m) => write!(f, "protocol error: {m}"),
            DarcoError::BudgetExceeded => write!(f, "guest instruction budget exceeded"),
        }
    }
}

impl std::error::Error for DarcoError {}

impl From<MachineError> for DarcoError {
    fn from(e: MachineError) -> DarcoError {
        match e {
            MachineError::Validation { at_insns, guest_pc, detail } => {
                DarcoError::Validation { at_insns, guest_pc, detail }
            }
            MachineError::Xcomp(x) => DarcoError::Protocol(x.to_string()),
            MachineError::FaultMismatch(m) => DarcoError::Protocol(m),
        }
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub name: String,
    /// Total retired guest instructions.
    pub guest_insns: u64,
    /// Per-mode guest instructions `(IM, BBM, SBM)` — Fig. 4.
    pub mode_insns: (u64, u64, u64),
    /// Host instructions executed as application code.
    pub host_app_insns: u64,
    /// TOL overhead, by category — Figs. 6 and 7.
    pub overhead: Overhead,
    /// Dynamic host-per-guest ratio in SBM — Fig. 5.
    pub sbm_emulation_cost: f64,
    /// Full TOL statistics.
    pub tol_stats: TolStats,
    /// Host emulator counters (checkpoints, rollbacks, IBTC, ...).
    pub chkpts: u64,
    /// Assert + alias rollbacks.
    pub rollbacks: u64,
    /// State validations performed.
    pub validations: u64,
    /// Pages served via data requests.
    pub pages_served: u64,
    /// Synchronized system calls.
    pub syscalls: u64,
    /// Guest stdout.
    pub output: Vec<u8>,
    /// Exit status (when the guest exited via syscall).
    pub exit_status: Option<u32>,
    /// A guest program fault, when execution ended with one (verified
    /// identical on both components).
    pub guest_fault: Option<String>,
    /// Timing statistics (when a sink was attached).
    pub timing: Option<TimingStats>,
    /// Fast-path accounting (when the sink ran in [`TimingMode::Fast`]).
    pub fast: Option<darco_timing::FastStats>,
    /// Power report (when requested).
    pub power: Option<PowerReport>,
    /// The unified metrics registry: TOL stats/overhead, live TOL
    /// histograms, sync-protocol counters, authoritative-component and
    /// timing counters, all under one namespace.
    pub metrics: Registry,
    /// Trace events still held in the ring at the end of the run (empty
    /// unless [`SystemConfig::trace_capacity`] was set).
    pub trace: Vec<TraceEvent>,
}

impl RunReport {
    /// Fraction of the host dynamic stream that is TOL overhead (Fig. 6).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.overhead.total() + self.host_app_insns;
        if total == 0 {
            0.0
        } else {
            self.overhead.total() as f64 / total as f64
        }
    }

    /// Fraction of guest instructions executed in SBM (Fig. 4).
    pub fn sbm_fraction(&self) -> f64 {
        let total = self.mode_insns.0 + self.mode_insns.1 + self.mode_insns.2;
        if total == 0 {
            0.0
        } else {
            self.mode_insns.2 as f64 / total as f64
        }
    }
}

/// The DARCO system: program + configuration, run end to end (or stepped
/// via [`System::start`]).
pub struct System {
    cfg: SystemConfig,
    program: GuestProgram,
}

impl System {
    /// Creates a system for a program.
    pub fn new(cfg: SystemConfig, program: GuestProgram) -> System {
        System { cfg, program }
    }

    /// Begins execution, handing control-flow ownership to the caller: the
    /// returned [`Engine`] runs one quantum per [`Engine::step`] call and
    /// can be checkpointed/restored between steps.
    pub fn start(self) -> Engine {
        Engine::new(self.cfg, self.program)
    }

    /// Runs the program to completion under the full protocol — a thin
    /// wrapper that steps an [`Engine`] with an unbounded quantum.
    ///
    /// # Errors
    /// Returns [`DarcoError`] on validation failures, protocol errors or
    /// budget exhaustion.
    pub fn run(self) -> Result<RunReport, DarcoError> {
        let mut engine = self.start();
        loop {
            match engine.step(u64::MAX)? {
                StepExit::Yielded | StepExit::ValidationDue => {}
                StepExit::Ended | StepExit::GuestFault => return Ok(engine.into_report()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};

    fn loop_program(iters: i32) -> GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, iters);
        let top = a.here();
        a.add_rr(Gpr::Eax, Gpr::Ecx);
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        a.into_program()
    }

    fn hot_cfg() -> SystemConfig {
        SystemConfig {
            tol: darco_tol::TolConfig {
                bbm_threshold: 3,
                sbm_threshold: 12,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn functional_run_produces_report() {
        let r = System::new(hot_cfg(), loop_program(500)).run().unwrap();
        assert_eq!(r.guest_insns, 1 + 3 * 500);
        assert!(r.sbm_fraction() > 0.8, "hot loop runs in SBM: {}", r.sbm_fraction());
        assert!(r.overhead.total() > 0);
        assert!(r.timing.is_none());
    }

    #[test]
    fn periodic_validation_runs() {
        let mut cfg = hot_cfg();
        cfg.validate_every = Some(200);
        let r = System::new(cfg, loop_program(2000)).run().unwrap();
        assert!(r.validations >= 10, "periodic checks: {}", r.validations);
    }

    #[test]
    fn timing_and_power_attach() {
        let mut cfg = hot_cfg();
        cfg.sink = SinkChoice::InOrder;
        cfg.power = true;
        let r = System::new(cfg, loop_program(3000)).run().unwrap();
        let t = r.timing.unwrap();
        assert!(t.insns > r.guest_insns, "host stream is larger than guest");
        assert!(t.cycles > 0);
        let p = r.power.unwrap();
        assert!(p.total_pj > 0.0);
    }

    #[test]
    fn ooo_sink_runs_the_same_program() {
        let mut cfg = hot_cfg();
        cfg.sink = SinkChoice::OutOfOrder;
        let r = System::new(cfg, loop_program(3000)).run().unwrap();
        assert!(r.timing.unwrap().cycles > 0);
    }

    #[test]
    fn budget_guard_fires() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        let top = a.here();
        a.inc(Gpr::Eax);
        a.emit(darco_guest::Insn::Jmp { rel: 0 });
        // infinite loop: jmp back
        let _ = top;
        let p = {
            let mut a = Asm::new(DEFAULT_CODE_BASE);
            let top = a.here();
            a.inc(Gpr::Eax);
            a.jmp_to(top);
            a.into_program()
        };
        let mut cfg = hot_cfg();
        cfg.max_guest_insns = 10_000;
        assert_eq!(System::new(cfg, p).run().unwrap_err(), DarcoError::BudgetExceeded);
    }
}
