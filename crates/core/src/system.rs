//! The controller and top-level [`System`] — DARCO's main user interface.

use crate::machine::{Machine, MachineError, MachineEvent};
use darco_guest::{Fault, GuestProgram};
use darco_host::sink::{InsnSink, NullSink, RetireEvent};
use darco_obs::{Registry, TraceEvent, Tracer};
use darco_power::{EnergyModel, PowerReport};
use darco_timing::{InOrderCore, OooCore, TimingConfig, TimingStats};
use darco_tol::{Overhead, TolConfig, TolStats};

/// Which timing sink to attach (the paper: "the use of the timing and
/// power simulators is optional and does not affect the functionality of
/// the rest of the infrastructure").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkChoice {
    /// Functional simulation only.
    None,
    /// The in-order core model.
    InOrder,
    /// The out-of-order extension (§III design-choice study).
    OutOfOrder,
}

/// Top-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Software-layer configuration.
    pub tol: TolConfig,
    /// Validate co-designed vs authoritative state every N guest
    /// instructions (`None`: only at syscalls and end of application) —
    /// the paper's "the user can also decide how often to validate".
    pub validate_every: Option<u64>,
    /// Include the flags register in state comparison.
    pub compare_flags: bool,
    /// Timing simulation.
    pub sink: SinkChoice,
    /// Timing configuration (used when `sink != None`).
    pub timing: TimingConfig,
    /// Synthesize TOL-overhead instructions into the timing stream.
    pub timing_includes_tol: bool,
    /// Produce a power report (requires timing).
    pub power: bool,
    /// Safety bound on guest instructions.
    pub max_guest_insns: u64,
    /// Record trace events into a ring of this many entries (`None`:
    /// tracing off, the zero-overhead default).
    pub trace_capacity: Option<usize>,
    /// Write a flight-recorder dump (last trace events + metrics
    /// snapshot) to this path when the run diverges or panics.
    pub flight_path: Option<String>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            tol: TolConfig::default(),
            validate_every: None,
            compare_flags: true,
            sink: SinkChoice::None,
            timing: TimingConfig::default(),
            timing_includes_tol: true,
            power: false,
            max_guest_insns: 2_000_000_000,
            trace_capacity: None,
            flight_path: None,
        }
    }
}

/// Errors from a system run.
#[derive(Debug, Clone, PartialEq)]
pub enum DarcoError {
    /// Co-designed state diverged from the authoritative state.
    Validation {
        /// Instruction count at the failed check.
        at_insns: u64,
        /// Authoritative PC.
        guest_pc: u32,
        /// First difference.
        detail: String,
    },
    /// Protocol error.
    Protocol(String),
    /// The run exceeded `max_guest_insns`.
    BudgetExceeded,
}

impl std::fmt::Display for DarcoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DarcoError::Validation { at_insns, guest_pc, detail } => write!(
                f,
                "validation failed after {at_insns} instructions at {guest_pc:#010x}: {detail}"
            ),
            DarcoError::Protocol(m) => write!(f, "protocol error: {m}"),
            DarcoError::BudgetExceeded => write!(f, "guest instruction budget exceeded"),
        }
    }
}

impl std::error::Error for DarcoError {}

impl From<MachineError> for DarcoError {
    fn from(e: MachineError) -> DarcoError {
        match e {
            MachineError::Validation { at_insns, guest_pc, detail } => {
                DarcoError::Validation { at_insns, guest_pc, detail }
            }
            MachineError::Xcomp(x) => DarcoError::Protocol(x.to_string()),
            MachineError::FaultMismatch(m) => DarcoError::Protocol(m),
        }
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub name: String,
    /// Total retired guest instructions.
    pub guest_insns: u64,
    /// Per-mode guest instructions `(IM, BBM, SBM)` — Fig. 4.
    pub mode_insns: (u64, u64, u64),
    /// Host instructions executed as application code.
    pub host_app_insns: u64,
    /// TOL overhead, by category — Figs. 6 and 7.
    pub overhead: Overhead,
    /// Dynamic host-per-guest ratio in SBM — Fig. 5.
    pub sbm_emulation_cost: f64,
    /// Full TOL statistics.
    pub tol_stats: TolStats,
    /// Host emulator counters (checkpoints, rollbacks, IBTC, ...).
    pub chkpts: u64,
    /// Assert + alias rollbacks.
    pub rollbacks: u64,
    /// State validations performed.
    pub validations: u64,
    /// Pages served via data requests.
    pub pages_served: u64,
    /// Synchronized system calls.
    pub syscalls: u64,
    /// Guest stdout.
    pub output: Vec<u8>,
    /// Exit status (when the guest exited via syscall).
    pub exit_status: Option<u32>,
    /// A guest program fault, when execution ended with one (verified
    /// identical on both components).
    pub guest_fault: Option<String>,
    /// Timing statistics (when a sink was attached).
    pub timing: Option<TimingStats>,
    /// Power report (when requested).
    pub power: Option<PowerReport>,
    /// The unified metrics registry: TOL stats/overhead, live TOL
    /// histograms, sync-protocol counters, authoritative-component and
    /// timing counters, all under one namespace.
    pub metrics: Registry,
    /// Trace events still held in the ring at the end of the run (empty
    /// unless [`SystemConfig::trace_capacity`] was set).
    pub trace: Vec<TraceEvent>,
}

impl RunReport {
    /// Fraction of the host dynamic stream that is TOL overhead (Fig. 6).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.overhead.total() + self.host_app_insns;
        if total == 0 {
            0.0
        } else {
            self.overhead.total() as f64 / total as f64
        }
    }

    /// Fraction of guest instructions executed in SBM (Fig. 4).
    pub fn sbm_fraction(&self) -> f64 {
        let total = self.mode_insns.0 + self.mode_insns.1 + self.mode_insns.2;
        if total == 0 {
            0.0
        } else {
            self.mode_insns.2 as f64 / total as f64
        }
    }
}

enum Sink {
    Null(NullSink),
    InOrder(Box<InOrderCore>),
    Ooo(Box<OooCore>),
}

impl InsnSink for Sink {
    fn retire(&mut self, ev: &RetireEvent) {
        match self {
            Sink::Null(s) => s.retire(ev),
            Sink::InOrder(s) => s.retire(ev),
            Sink::Ooo(s) => s.retire(ev),
        }
    }
}

/// The DARCO system: program + configuration, run end to end.
pub struct System {
    cfg: SystemConfig,
    program: GuestProgram,
}

impl System {
    /// Creates a system for a program.
    pub fn new(cfg: SystemConfig, program: GuestProgram) -> System {
        System { cfg, program }
    }

    /// Runs the program to completion under the full protocol.
    ///
    /// # Errors
    /// Returns [`DarcoError`] on validation failures, protocol errors or
    /// budget exhaustion.
    pub fn run(self) -> Result<RunReport, DarcoError> {
        let System { cfg, program } = self;
        let mut machine = Machine::new(cfg.tol.clone(), &program);
        if let Some(cap) = cfg.trace_capacity {
            machine.tol.obs.trace = Tracer::ring(cap);
        }
        if cfg.timing_includes_tol && cfg.sink != SinkChoice::None {
            machine.tol.set_synthesize_overhead(true);
        }
        let mut sink = match cfg.sink {
            SinkChoice::None => Sink::Null(NullSink),
            SinkChoice::InOrder => Sink::InOrder(Box::new(InOrderCore::new(cfg.timing.clone()))),
            SinkChoice::OutOfOrder => Sink::Ooo(Box::new(OooCore::new(cfg.timing.clone()))),
        };
        // With a flight path configured, a panic anywhere in the pipeline
        // (e.g. `VerifyMode::Fatal`) still produces the dump before
        // propagating.
        let driven = if cfg.flight_path.is_some() {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Self::drive(&cfg, &mut machine, &mut sink)
            })) {
                Ok(r) => r,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Self::write_flight(&cfg, &machine, &format!("panic: {msg}"));
                    std::panic::resume_unwind(payload);
                }
            }
        } else {
            Self::drive(&cfg, &mut machine, &mut sink)
        };
        let (exit_status, fault) = match driven {
            Ok(v) => v,
            Err(e) => {
                Self::write_flight(&cfg, &machine, &e.to_string());
                return Err(e);
            }
        };

        let timing = match &sink {
            Sink::Null(_) => None,
            Sink::InOrder(c) => Some(c.stats()),
            Sink::Ooo(c) => Some(c.stats()),
        };
        let power = match (&timing, cfg.power) {
            (Some(ts), true) => Some(darco_power::report(ts, &cfg.timing, &EnergyModel::default())),
            _ => None,
        };
        let m = machine;
        let mut metrics = Self::assemble_metrics(&m);
        if let Some(t) = &timing {
            t.register_into(&mut metrics, "timing");
        }
        if let Some(p) = &power {
            metrics.set_gauge("power.total_pj", p.total_pj);
            metrics.set_gauge("power.avg_power_mw", p.avg_power_mw);
            metrics.set_gauge("power.edp", p.edp);
        }
        Ok(RunReport {
            name: program.name.clone(),
            guest_insns: m.tol.total_guest(),
            mode_insns: m.tol.mode_split(),
            host_app_insns: m.tol.stats.host_app,
            overhead: *m.tol.overhead(),
            sbm_emulation_cost: m.tol.sbm_emulation_cost(),
            tol_stats: m.tol.stats,
            chkpts: m.tol.emu.counters.chkpts,
            rollbacks: m.tol.emu.counters.assert_fails + m.tol.emu.counters.alias_fails,
            validations: m.validations,
            pages_served: m.pages_served,
            syscalls: m.syscalls,
            output: m.xcomp.output.clone(),
            exit_status,
            guest_fault: fault.map(|f| f.to_string()),
            timing,
            power,
            metrics,
            trace: m.tol.obs.trace.events(),
        })
    }

    /// The execution/synchronization loop (split out so `run` can attach
    /// divergence and panic handling around it).
    fn drive(
        cfg: &SystemConfig,
        machine: &mut Machine,
        sink: &mut Sink,
    ) -> Result<(Option<u32>, Option<Fault>), DarcoError> {
        let step = cfg.validate_every.unwrap_or(u64::MAX);
        loop {
            if machine.insns() >= cfg.max_guest_insns {
                return Err(DarcoError::BudgetExceeded);
            }
            let target = machine.insns().saturating_add(step).min(cfg.max_guest_insns);
            match machine.run_to(target, cfg.compare_flags, sink)? {
                MachineEvent::Reached => {
                    if cfg.validate_every.is_some() {
                        machine
                            .xcomp
                            .run_until(machine.insns())
                            .map_err(|e| DarcoError::Protocol(e.to_string()))?;
                        machine.validate(cfg.compare_flags)?;
                    }
                }
                MachineEvent::Ended { exit_status } => return Ok((exit_status, None)),
                MachineEvent::GuestFault(f) => return Ok((None, Some(f))),
            }
        }
    }

    /// Builds the unified registry from everything the machine counted:
    /// the TOL's live histograms/gauges, the [`TolStats`] and overhead
    /// bridges, sync-protocol counters and the authoritative component.
    fn assemble_metrics(m: &Machine) -> Registry {
        let mut reg = m.tol.obs.metrics.clone();
        m.tol.stats.register_into(&mut reg, "tol");
        m.tol.overhead().register_into(&mut reg, "tol");
        m.xcomp.register_metrics(&mut reg, "xcomp");
        reg.set_counter("sync.validations", m.validations);
        reg.set_counter("sync.pages_served", m.pages_served);
        reg.set_counter("sync.syscalls", m.syscalls);
        reg
    }

    /// Writes the flight-recorder artifact (best effort — a failing dump
    /// never masks the original error).
    fn write_flight(cfg: &SystemConfig, machine: &Machine, context: &str) {
        let Some(path) = &cfg.flight_path else { return };
        let reg = Self::assemble_metrics(machine);
        let (events, dropped) = match machine.tol.obs.trace.ring_ref() {
            Some(r) => (r.events(), r.dropped()),
            None => (Vec::new(), 0),
        };
        let dump = darco_obs::flight::flight_dump(context, &events, dropped, &reg);
        if let Err(e) = std::fs::write(path, dump) {
            eprintln!("warning: could not write flight dump to {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};

    fn loop_program(iters: i32) -> GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, iters);
        let top = a.here();
        a.add_rr(Gpr::Eax, Gpr::Ecx);
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        a.into_program()
    }

    fn hot_cfg() -> SystemConfig {
        SystemConfig {
            tol: darco_tol::TolConfig {
                bbm_threshold: 3,
                sbm_threshold: 12,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn functional_run_produces_report() {
        let r = System::new(hot_cfg(), loop_program(500)).run().unwrap();
        assert_eq!(r.guest_insns, 1 + 3 * 500);
        assert!(r.sbm_fraction() > 0.8, "hot loop runs in SBM: {}", r.sbm_fraction());
        assert!(r.overhead.total() > 0);
        assert!(r.timing.is_none());
    }

    #[test]
    fn periodic_validation_runs() {
        let mut cfg = hot_cfg();
        cfg.validate_every = Some(200);
        let r = System::new(cfg, loop_program(2000)).run().unwrap();
        assert!(r.validations >= 10, "periodic checks: {}", r.validations);
    }

    #[test]
    fn timing_and_power_attach() {
        let mut cfg = hot_cfg();
        cfg.sink = SinkChoice::InOrder;
        cfg.power = true;
        let r = System::new(cfg, loop_program(3000)).run().unwrap();
        let t = r.timing.unwrap();
        assert!(t.insns > r.guest_insns, "host stream is larger than guest");
        assert!(t.cycles > 0);
        let p = r.power.unwrap();
        assert!(p.total_pj > 0.0);
    }

    #[test]
    fn ooo_sink_runs_the_same_program() {
        let mut cfg = hot_cfg();
        cfg.sink = SinkChoice::OutOfOrder;
        let r = System::new(cfg, loop_program(3000)).run().unwrap();
        assert!(r.timing.unwrap().cycles > 0);
    }

    #[test]
    fn budget_guard_fires() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        let top = a.here();
        a.inc(Gpr::Eax);
        a.emit(darco_guest::Insn::Jmp { rel: 0 });
        // infinite loop: jmp back
        let _ = top;
        let p = {
            let mut a = Asm::new(DEFAULT_CODE_BASE);
            let top = a.here();
            a.inc(Gpr::Eax);
            a.jmp_to(top);
            a.into_program()
        };
        let mut cfg = hot_cfg();
        cfg.max_guest_insns = 10_000;
        assert_eq!(System::new(cfg, p).run().unwrap_err(), DarcoError::BudgetExceeded);
    }
}
