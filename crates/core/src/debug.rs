//! The debug toolchain (paper §IV "powerful debug toolchain", §V-D).
//!
//! "DARCO, first of all, pinpoints the exact basic block where the problem
//! was originated. Then it traces back to find out the particular step
//! where the bug first appeared, e.g. while translation to IR, any of the
//! several optimizations, during emulation in the host ISA emulator, etc."
//!
//! [`diagnose`] does exactly that: it localizes the first divergent
//! region with fine-grained validation, then replays the program through a
//! ladder of configurations — interpreter-only, unoptimized translations,
//! optimizer without scheduling/speculation, full pipeline — and blames
//! the first stage whose output diverges from the authoritative state.

use crate::machine::{Machine, MachineError};
use darco_guest::GuestProgram;
use darco_host::sink::NullSink;
use darco_ir::OptLevel;
use darco_obs::{TraceEvent, Tracer};
use darco_tol::TolConfig;

/// Trace-ring capacity for diagnosis runs: enough to hold the window of
/// translations, rollbacks and validations leading up to a divergence.
const DIAG_TRACE_CAP: usize = 256;

/// Which pipeline stage introduced the divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Even pure interpretation diverges (guest executor / protocol bug).
    Interpreter,
    /// Unoptimized translations diverge: guest→IR translation or host
    /// code generation.
    TranslatorOrCodegen,
    /// Divergence appears when the optimizer passes run.
    Optimizer,
    /// Divergence appears only with scheduling/speculative memory
    /// reordering enabled.
    SchedulerOrSpeculation,
    /// No divergence found.
    None,
}

/// Diagnosis result.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The culprit stage.
    pub stage: Stage,
    /// Instruction count of the first failed validation (region
    /// granularity), for the failing configuration.
    pub divergence_at: Option<u64>,
    /// Authoritative guest PC at that point.
    pub guest_pc: Option<u32>,
    /// First differing state element.
    pub detail: Option<String>,
    /// The trace-event window leading up to the divergence in the failing
    /// configuration (which translations ran, what rolled back, the last
    /// passing validations) — empty when no divergence was found.
    pub window: Vec<TraceEvent>,
}

/// Runs the program under `cfg` with per-region validation; returns the
/// first divergence (with the event window leading up to it), if any.
fn first_divergence(
    program: &GuestProgram,
    cfg: &TolConfig,
    max: u64,
) -> Option<(u64, u32, String, Vec<TraceEvent>)> {
    let mut m = Machine::new(cfg.clone(), program);
    // Trace the diagnosis run so the culprit can be named by its exact
    // event window, not just an instruction count.
    m.tol.obs.trace = Tracer::ring(DIAG_TRACE_CAP);
    loop {
        if m.insns() >= max {
            return None;
        }
        // Step one region-sized quantum at a time, validating after each.
        // (Large enough not to perturb promotion decisions, small enough
        // to localize the divergence to a few basic blocks.)
        let target = m.insns() + 64;
        match m.run_to(target, true, &mut NullSink) {
            Ok(ev) => {
                if m.xcomp.run_until(m.insns()).is_err() {
                    let window = m.tol.obs.trace.events();
                    return Some((m.insns(), m.xcomp.state.eip, "count overrun".into(), window));
                }
                if let Err(MachineError::Validation { at_insns, guest_pc, detail }) =
                    m.validate(true)
                {
                    return Some((at_insns, guest_pc, detail, m.tol.obs.trace.events()));
                }
                match ev {
                    crate::machine::MachineEvent::Reached => {}
                    _ => return None, // ended cleanly
                }
            }
            Err(MachineError::Validation { at_insns, guest_pc, detail }) => {
                return Some((at_insns, guest_pc, detail, m.tol.obs.trace.events()));
            }
            Err(_) => return None,
        }
    }
}

/// Diagnoses a misbehaving configuration: localizes the first divergent
/// region and attributes it to a pipeline stage.
pub fn diagnose(program: &GuestProgram, cfg: &TolConfig, max_insns: u64) -> Diagnosis {
    // Stage ladder, each inheriting the suspect configuration (including
    // any planted bug) but progressively enabling machinery.
    let im_only = TolConfig { bbm_threshold: u64::MAX, ..cfg.clone() };
    let o0 = TolConfig {
        opt_level: OptLevel::O0,
        speculation: false,
        unroll: false,
        ..cfg.clone()
    };
    let o2 = TolConfig {
        opt_level: OptLevel::O2,
        speculation: false,
        unroll: false,
        ..cfg.clone()
    };
    let ladder: [(Stage, &TolConfig); 4] = [
        (Stage::Interpreter, &im_only),
        (Stage::TranslatorOrCodegen, &o0),
        (Stage::Optimizer, &o2),
        (Stage::SchedulerOrSpeculation, cfg),
    ];
    for (stage, c) in ladder {
        if let Some((at, pc, detail, window)) = first_divergence(program, c, max_insns) {
            return Diagnosis {
                stage,
                divergence_at: Some(at),
                guest_pc: Some(pc),
                detail: Some(detail),
                window,
            };
        }
    }
    Diagnosis {
        stage: Stage::None,
        divergence_at: None,
        guest_pc: None,
        detail: None,
        window: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{AluOp, Asm, Cond, Gpr};
    use darco_tol::{BugKind, Injection};

    fn program() -> GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, 400);
        let top = a.here();
        a.alu_ri(AluOp::Add, Gpr::Eax, 7);
        a.mov_ri(Gpr::Ebx, 3);
        a.alu_rr(AluOp::Add, Gpr::Ebx, Gpr::Eax);
        a.store(
            darco_guest::Addr::abs(0x0040_0000),
            Gpr::Ebx,
            darco_guest::Width::D,
        );
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        a.into_program().with_data(vec![0; 64])
    }

    fn cfg_with(kind: BugKind) -> TolConfig {
        TolConfig {
            bbm_threshold: 3,
            sbm_threshold: 12,
            injection: Some(Injection { kind, translation_ordinal: 0 }),
            ..Default::default()
        }
    }

    #[test]
    fn clean_program_diagnoses_as_no_divergence() {
        let d = diagnose(
            &program(),
            &TolConfig { bbm_threshold: 3, sbm_threshold: 12, ..Default::default() },
            1_000_000,
        );
        assert_eq!(d.stage, Stage::None);
    }

    #[test]
    fn translator_bug_is_attributed_to_translation() {
        let d = diagnose(&program(), &cfg_with(BugKind::TranslatorWrongConstant), 1_000_000);
        assert_eq!(d.stage, Stage::TranslatorOrCodegen, "{d:?}");
        assert!(d.divergence_at.unwrap() > 0);
        assert!(d.guest_pc.is_some());
    }

    #[test]
    fn codegen_bug_is_attributed_to_translation_stage() {
        let d = diagnose(&program(), &cfg_with(BugKind::CodegenDropStore), 1_000_000);
        assert_eq!(d.stage, Stage::TranslatorOrCodegen, "{d:?}");
    }

    #[test]
    fn optimizer_bug_is_attributed_to_the_optimizer() {
        let d = diagnose(&program(), &cfg_with(BugKind::OptimizerBadFold), 1_000_000);
        assert_eq!(d.stage, Stage::Optimizer, "{d:?}");
    }

    // -- semantic translation validation (DESIGN.md §13) ---------------------

    use darco_host::codegen::Backend;
    use darco_tol::VerifyLevel;

    /// Runs the program to completion (or until something panics).
    fn run_full(cfg: TolConfig, backend: Backend) -> Machine {
        let p = program();
        let mut m = Machine::new(cfg, &p);
        m.tol.set_backend(backend);
        for _ in 0..1000 {
            match m.run_to(m.insns() + 10_000, false, &mut NullSink) {
                Ok(crate::machine::MachineEvent::Reached) => continue,
                _ => break,
            }
        }
        m
    }

    /// The planted bad fold is invisible to the structural verifier (the
    /// `optimizer_bug_is_attributed_to_the_optimizer` test above only
    /// finds it *dynamically*, by state divergence); the semantic
    /// validator must reject it statically, before the broken
    /// translation executes a single guest instruction, naming the
    /// offending stage.
    #[test]
    #[should_panic(expected = "TOL static verification failed at stage `bbm-semantic`")]
    fn semantic_validation_rejects_bad_fold_statically() {
        let cfg = TolConfig {
            verify_level: VerifyLevel::Semantic,
            ..cfg_with(BugKind::OptimizerBadFold)
        };
        run_full(cfg, Backend::Emu);
    }

    /// Same plant, `Report` mode: the run completes (diverging
    /// dynamically), but the divergence is on the verify log with the
    /// injection context named.
    #[test]
    fn semantic_validation_reports_bad_fold_with_context() {
        let cfg = TolConfig {
            verify: darco_tol::VerifyMode::Report,
            verify_level: VerifyLevel::Semantic,
            ..cfg_with(BugKind::OptimizerBadFold)
        };
        let m = run_full(cfg, Backend::Emu);
        assert!(m.tol.stats.verify_findings > 0);
        assert!(
            m.tol.verify_log.iter().any(|l| l.contains("bbm-semantic") && l.contains("optimizer")),
            "log: {:?}",
            m.tol.verify_log
        );
    }

    /// A clean program sails through semantic validation — no findings,
    /// every translation counted.
    #[test]
    fn semantic_validation_is_clean_on_a_correct_program() {
        let cfg = TolConfig {
            bbm_threshold: 3,
            sbm_threshold: 12,
            verify_level: VerifyLevel::Semantic,
            ..Default::default()
        };
        let m = run_full(cfg, Backend::Emu);
        assert_eq!(m.tol.stats.verify_findings, 0, "log: {:?}", m.tol.verify_log);
        assert!(m.tol.stats.translations_bb > 0);
        assert!(m.tol.stats.verify_regions > 0);
    }

    /// A pinned-register clobber planted below the IR (into the emitted
    /// x86-64 itself) is invisible to every IR-level verifier; the
    /// machine-code checker rejects the fragment before it runs.
    #[test]
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[should_panic(expected = "native code verification failed")]
    fn native_checker_rejects_planted_register_clobber() {
        let cfg = TolConfig {
            verify_level: VerifyLevel::Semantic,
            ..cfg_with(BugKind::CodegenClobberPinnedReg)
        };
        run_full(cfg, Backend::Native);
    }

    /// Same plant, `Report` mode: the clobber is dead code at run time,
    /// so the run completes — but the finding is counted in the JIT
    /// stats and surfaced on the TOL verify log.
    #[test]
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn native_checker_reports_planted_clobber() {
        let cfg = TolConfig {
            verify: darco_tol::VerifyMode::Report,
            verify_level: VerifyLevel::Semantic,
            ..cfg_with(BugKind::CodegenClobberPinnedReg)
        };
        let m = run_full(cfg, Backend::Native);
        let js = m.tol.jit_stats().expect("native backend active");
        assert!(js.verify_fragments > 0);
        assert!(js.verify_findings > 0, "clobber not found");
        assert!(
            m.tol.verify_log.iter().any(|l| l.contains("[native-code]") && l.contains("r15")),
            "log: {:?}",
            m.tol.verify_log
        );
    }

    /// The checker under `Semantic`+`Fatal` accepts every legitimate
    /// fragment a real workload compiles — a clean run is the strongest
    /// regression against checker false positives.
    #[test]
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn native_checker_accepts_all_legitimate_fragments() {
        let cfg = TolConfig {
            bbm_threshold: 3,
            sbm_threshold: 12,
            verify_level: VerifyLevel::Semantic,
            ..Default::default()
        };
        let m = run_full(cfg, Backend::Native);
        let js = m.tol.jit_stats().expect("native backend active");
        assert!(js.verify_fragments > 0, "nothing was compiled/checked");
        assert_eq!(js.verify_findings, 0);
    }
}
