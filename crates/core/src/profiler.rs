//! The guest-PC sampling profiler.
//!
//! At every [`crate::Engine::step`] quantum boundary the engine is at a
//! synchronization-safe point: the TOL sits at a mode boundary with its
//! transients drained, so the guest PC names the *next* dispatch site and
//! the code cache answers, in O(1), which mode that dispatch will run in
//! (a valid translation at the PC means BBM or SBM; no translation means
//! the interpreter). [`Profiler::sample`] records exactly that — guest
//! PC, execution mode and region identity — into power-of-two histograms
//! and a region-residency table, which is the per-region/per-mode
//! attribution data the DCG design-space work (ROADMAP item 4) needs.
//!
//! Sampling is a pure read of machine state: it never perturbs the
//! simulation, so a profiled run retires exactly the instructions an
//! unprofiled run does. Because the engine's stepping schedule is
//! deterministic, the samples are too — two profiled runs of the same
//! workload at the same quantum produce byte-identical folded output.
//!
//! Three export surfaces:
//! * [`Profiler::to_folded`] — collapsed-stack ("folded") lines,
//!   `workload;MODE;frame count`, the input format of standard flamegraph
//!   tooling (`darco-run --profile out.folded`);
//! * [`Profiler::to_json`] — the translation-cache heatmap for the debug
//!   JSON: per-region residency, promotion lag and rollback density;
//! * [`Profiler::window_json`] — the most recent samples, embedded in
//!   flight dumps so a crash artifact shows where the guest was.

use crate::machine::Machine;
use darco_obs::{ExecMode, Histogram, JsonWriter};
use darco_tol::TransKind;
use std::collections::{BTreeMap, VecDeque};

/// Default sampling quantum (guest instructions between samples) used by
/// `darco-run --profile`.
pub const DEFAULT_SAMPLE_EVERY: u64 = 10_000;

/// Samples kept in the rolling window for flight dumps.
const WINDOW_CAP: usize = 64;

/// One sample: where the guest was at a quantum boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfSample {
    /// Retired guest instructions at the boundary.
    pub insns: u64,
    /// Guest PC of the next dispatch.
    pub pc: u32,
    /// Mode the next dispatch runs in.
    pub mode: ExecMode,
    /// Region entry PC when the dispatch hits the code cache.
    pub region: Option<u32>,
}

/// Accumulated residency for one translated region (keyed by its guest
/// entry PC, which is stable across BB→SB promotion and recreation,
/// unlike translation ids).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionStat {
    /// Samples that hit this region as a basic-block translation.
    pub samples_bb: u64,
    /// Samples that hit it as a superblock.
    pub samples_sb: u64,
    /// Instruction count at the first BBM sample.
    pub first_bb: Option<u64>,
    /// Instruction count at the first SBM sample.
    pub first_sb: Option<u64>,
    /// Instruction count at the most recent sample.
    pub last_seen: u64,
    /// Latest observed speculation-failure count (rollback density).
    pub spec_fails: u32,
    /// Host instructions in the current translation (static).
    pub host_insns: u32,
    /// Guest instructions in the source region (static).
    pub src_insns: u32,
}

/// The sampling profiler (see the module docs).
#[derive(Debug, Clone)]
pub struct Profiler {
    every: u64,
    samples: u64,
    mode_counts: [u64; 3], // IM, BBM, SBM
    /// Power-of-two histogram over sampled guest PCs (address locality).
    pc_histo: Histogram,
    /// Power-of-two histogram of BB-sample→SB-sample promotion lags.
    promotion_lag: Histogram,
    /// Interpreter samples by exact guest PC.
    im_pcs: BTreeMap<u32, u64>,
    /// Region-residency table by guest entry PC.
    regions: BTreeMap<u32, RegionStat>,
    /// Rolling window of the most recent samples.
    window: VecDeque<ProfSample>,
}

impl Profiler {
    /// Creates a profiler; `every` is the sampling quantum it will be
    /// driven at (recorded for the reports, not enforced here — the
    /// engine's caller owns the stepping schedule).
    pub fn new(every: u64) -> Profiler {
        Profiler {
            every: every.max(1),
            samples: 0,
            mode_counts: [0; 3],
            pc_histo: Histogram::default(),
            promotion_lag: Histogram::default(),
            im_pcs: BTreeMap::new(),
            regions: BTreeMap::new(),
            window: VecDeque::with_capacity(WINDOW_CAP),
        }
    }

    /// Records one sample off the machine's current state.
    pub fn sample(&mut self, m: &Machine) {
        let insns = m.insns();
        let pc = m.state.eip;
        let (mode, region) = match m.tol.cache.lookup(pc) {
            Some(id) => {
                let t = m.tol.cache.translation(id);
                let r = self.regions.entry(pc).or_default();
                r.host_insns = t.host_insns;
                r.src_insns = t.src_insns;
                r.spec_fails = t.spec_fails;
                r.last_seen = insns;
                match t.kind {
                    TransKind::Bb => {
                        r.samples_bb += 1;
                        r.first_bb.get_or_insert(insns);
                        (ExecMode::Bbm, Some(pc))
                    }
                    TransKind::Sb { .. } => {
                        r.samples_sb += 1;
                        if r.first_sb.is_none() {
                            r.first_sb = Some(insns);
                            if let Some(fb) = r.first_bb {
                                self.promotion_lag.record(insns - fb);
                            }
                        }
                        (ExecMode::Sbm, Some(pc))
                    }
                }
            }
            None => {
                *self.im_pcs.entry(pc).or_insert(0) += 1;
                (ExecMode::Im, None)
            }
        };
        self.samples += 1;
        self.mode_counts[match mode {
            ExecMode::Im => 0,
            ExecMode::Bbm => 1,
            ExecMode::Sbm => 2,
        }] += 1;
        self.pc_histo.record(pc as u64);
        if self.window.len() == WINDOW_CAP {
            self.window.pop_front();
        }
        self.window.push_back(ProfSample { insns, pc, mode, region });
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sample counts per mode `(IM, BBM, SBM)`.
    pub fn mode_counts(&self) -> (u64, u64, u64) {
        (self.mode_counts[0], self.mode_counts[1], self.mode_counts[2])
    }

    /// The region-residency table (entry PC → stats).
    pub fn regions(&self) -> impl Iterator<Item = (u32, &RegionStat)> {
        self.regions.iter().map(|(pc, r)| (*pc, r))
    }

    /// The sampling quantum this profiler was configured for.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Collapsed-stack flamegraph export: one `frames count` line per
    /// distinct stack, frames separated by `;`. Stacks are
    /// `workload;MODE;site`, where the site is the exact guest PC for
    /// interpreter samples and `region_0x<entry>` for translated code.
    /// Deterministic: lines are ordered by PC within each mode group.
    pub fn to_folded(&self, workload: &str) -> String {
        let mut out = String::new();
        for (pc, n) in &self.im_pcs {
            out.push_str(&format!("{workload};IM;0x{pc:08x} {n}\n"));
        }
        for (pc, r) in &self.regions {
            if r.samples_bb > 0 {
                out.push_str(&format!("{workload};BBM;region_0x{pc:08x} {}\n", r.samples_bb));
            }
            if r.samples_sb > 0 {
                out.push_str(&format!("{workload};SBM;region_0x{pc:08x} {}\n", r.samples_sb));
            }
        }
        out
    }

    fn histo_json(h: &Histogram) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("count", h.count);
        w.field_num("sum", h.sum);
        w.field_num("min", if h.count == 0 { 0 } else { h.min });
        w.field_num("max", h.max);
        w.begin_arr(Some("buckets"));
        for (lo, hi, n) in h.nonzero_buckets() {
            let mut b = JsonWriter::new();
            b.begin_arr(None).elem_num(lo).elem_num(hi).elem_num(n).end_arr();
            w.elem_raw(&b.finish());
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// The translation-cache heatmap: per-region residency (hot regions),
    /// promotion lag and rollback density, plus the mode-residency and
    /// PC-locality summaries. Embedded under `"profile"` in the debug
    /// JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("samples", self.samples);
        w.field_num("sample_every", self.every);
        w.begin_obj(Some("mode_residency"));
        w.field_num("im", self.mode_counts[0]);
        w.field_num("bbm", self.mode_counts[1]);
        w.field_num("sbm", self.mode_counts[2]);
        w.end_obj();
        w.field_raw("pc_histogram", &Self::histo_json(&self.pc_histo));
        w.field_raw("promotion_lag", &Self::histo_json(&self.promotion_lag));
        w.begin_arr(Some("regions"));
        for (pc, r) in &self.regions {
            let mut e = JsonWriter::new();
            e.begin_obj(None);
            e.field_str("entry", &format!("0x{pc:08x}"));
            e.field_num("samples_bb", r.samples_bb);
            e.field_num("samples_sb", r.samples_sb);
            let share = (r.samples_bb + r.samples_sb) as f64 / self.samples.max(1) as f64;
            e.field_f64("share", share);
            match r.first_bb {
                Some(v) => e.field_num("first_bb", v),
                None => e.field_null("first_bb"),
            };
            match r.first_sb {
                Some(v) => e.field_num("first_sb", v),
                None => e.field_null("first_sb"),
            };
            if let (Some(fb), Some(fs)) = (r.first_bb, r.first_sb) {
                e.field_num("promotion_lag", fs - fb);
            }
            e.field_num("last_seen", r.last_seen);
            e.field_num("spec_fails", r.spec_fails);
            e.field_num("host_insns", r.host_insns);
            e.field_num("src_insns", r.src_insns);
            e.end_obj();
            w.elem_raw(&e.finish());
        }
        w.end_arr();
        // Interpreter hot spots: the top sites by sample count (ties
        // broken by PC so the list is deterministic).
        let mut im: Vec<(u32, u64)> = self.im_pcs.iter().map(|(p, n)| (*p, *n)).collect();
        im.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        w.begin_arr(Some("hot_im_pcs"));
        for (pc, n) in im.into_iter().take(16) {
            let mut e = JsonWriter::new();
            e.begin_arr(None).elem_str(&format!("0x{pc:08x}")).elem_num(n).end_arr();
            w.elem_raw(&e.finish());
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// The active profile window (most recent samples, oldest first) as a
    /// JSON array — the flight-dump embedding.
    pub fn window_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_arr(None);
        for s in &self.window {
            let mut e = JsonWriter::new();
            e.begin_obj(None);
            e.field_num("insns", s.insns);
            e.field_str("pc", &format!("0x{:08x}", s.pc));
            e.field_str("mode", s.mode.name());
            match s.region {
                Some(r) => e.field_str("region", &format!("0x{r:08x}")),
                None => e.field_null("region"),
            };
            e.end_obj();
            w.elem_raw(&e.finish());
        }
        w.end_arr();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::system::{System, SystemConfig};
    use crate::StepExit;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};

    fn loop_program(iters: i32) -> darco_guest::GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, iters);
        let top = a.here();
        a.add_rr(Gpr::Eax, Gpr::Ecx);
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        a.into_program()
    }

    fn hot_cfg() -> SystemConfig {
        SystemConfig {
            tol: darco_tol::TolConfig { bbm_threshold: 3, sbm_threshold: 12, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn profiled_run_attributes_modes_and_regions() {
        let mut e = System::new(hot_cfg(), loop_program(20_000)).start();
        e.enable_profiler(500);
        while let StepExit::Yielded | StepExit::ValidationDue = e.step(500).unwrap() {}
        let p = e.take_profiler().expect("profiler was enabled");
        assert!(p.samples() > 50, "60k insns at quantum 500: {}", p.samples());
        let (_, _, sbm) = p.mode_counts();
        assert!(sbm > 0, "a hot loop is sampled in SBM");
        // The hot loop is one region; its residency dominates.
        let hottest = p.regions().map(|(_, r)| r.samples_bb + r.samples_sb).max().unwrap();
        assert!(
            hottest as f64 / p.samples() as f64 > 0.5,
            "hot region holds most samples: {hottest}/{}",
            p.samples()
        );
        // Folded output: non-empty, parseable, counts match samples.
        let folded = p.to_folded("loop");
        let mut total = 0u64;
        for line in folded.lines() {
            let (stack, n) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3, "workload;MODE;site: {line}");
            assert!(stack.starts_with("loop;"));
            total += n.parse::<u64>().unwrap();
        }
        assert_eq!(total, p.samples(), "every sample lands in exactly one stack");
        // The heatmap and window render as valid JSON.
        let heat = darco_obs::parse(&p.to_json()).unwrap();
        assert_eq!(
            heat.get("samples").and_then(|v| v.as_num()),
            Some(p.samples() as f64)
        );
        assert!(!heat.get("regions").unwrap().as_arr().unwrap().is_empty());
        let win = darco_obs::parse(&p.window_json()).unwrap();
        assert!(!win.as_arr().unwrap().is_empty());
    }

    #[test]
    fn profiled_and_plain_runs_retire_identically() {
        let mut plain = System::new(hot_cfg(), loop_program(5_000)).start();
        let mut prof = System::new(hot_cfg(), loop_program(5_000)).start();
        prof.enable_profiler(300);
        loop {
            let (a, b) = (plain.step(300).unwrap(), prof.step(300).unwrap());
            assert_eq!(a, b);
            if a == StepExit::Ended {
                break;
            }
        }
        let (ra, rb) = (plain.into_report(), prof.into_report());
        assert_eq!(ra.guest_insns, rb.guest_insns);
        assert_eq!(ra.mode_insns, rb.mode_insns);
        assert_eq!(ra.overhead, rb.overhead);
    }

    #[test]
    fn promotion_lag_is_observed_for_promoted_regions() {
        let mut e = System::new(hot_cfg(), loop_program(50_000)).start();
        // Tiny quantum so BB-phase samples land before promotion.
        e.enable_profiler(20);
        while let StepExit::Yielded | StepExit::ValidationDue = e.step(20).unwrap() {}
        let p = e.take_profiler().unwrap();
        let promoted = p
            .regions()
            .filter(|(_, r)| r.first_bb.is_some() && r.first_sb.is_some())
            .count();
        assert!(promoted > 0, "the hot loop was sampled in both BB and SB phases");
        let doc = darco_obs::parse(&p.to_json()).unwrap();
        let lag = doc.get("promotion_lag").unwrap();
        assert!(lag.get("count").and_then(|v| v.as_num()).unwrap() >= 1.0);
    }
}
