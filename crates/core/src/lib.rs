//! # DARCO — the complete co-designed-processor simulation infrastructure
//!
//! This crate ties the pieces together the way Fig. 2 of the paper draws
//! them:
//!
//! * the **co-designed component** — the Translation Optimization Layer
//!   (`darco-tol`) plus the host functional emulator (`darco-host`),
//!   keeping the *emulated* guest architectural and memory state;
//! * the **x86 component** — the authoritative full-system emulator with
//!   OS-lite (`darco-xcomp`);
//! * the **timing simulator** (`darco-timing`) and **power model**
//!   (`darco-power`), both optional;
//! * the **controller** ([`System`]) — the main user interface: it runs
//!   the three-phase execution flow (Initialization / Execution /
//!   Synchronization), resolves data requests, executes system calls on
//!   the authoritative side, and validates the co-designed state at
//!   syscalls, at end of application and at a user-chosen period.
//!
//! The [`debug`] module is the debug toolchain: on a validation mismatch
//! it pinpoints the first divergent region and replays it per-stage
//! (interpreter / translator / optimizer / scheduler+speculation) to name
//! the culprit. The [`sampling`] module implements the paper's §VI-E
//! warm-up simulation methodology (promotion-threshold downscaling with
//! an offline configuration-matching heuristic).
//!
//! ## Quick start
//!
//! ```
//! use darco::{System, SystemConfig};
//! use darco_guest::{Asm, Gpr, Cond};
//!
//! let mut a = Asm::new(0x10_0000);
//! a.mov_ri(Gpr::Ecx, 100);
//! let top = a.here();
//! a.add_rr(Gpr::Eax, Gpr::Ecx);
//! a.dec(Gpr::Ecx);
//! a.jcc_to(Cond::Ne, top);
//! a.halt();
//! let report = System::new(SystemConfig::default(), a.into_program()).run().unwrap();
//! assert_eq!(report.guest_insns, 1 + 3 * 100);
//! ```

pub mod config_json;
pub mod debug;
pub mod engine;
pub mod json;
pub mod machine;
pub mod profiler;
pub mod sampling;
pub mod system;

pub use config_json::{config_apply_json, config_from_json, config_from_str, config_to_json};
pub use engine::{Engine, Snapshot, StepExit};
pub use profiler::{ProfSample, Profiler, RegionStat, DEFAULT_SAMPLE_EVERY};
pub use machine::{Machine, MachineEvent};
pub use system::{DarcoError, RunReport, SinkChoice, System, SystemConfig, TimingMode};
