//! [`SystemConfig`] ⇄ JSON, through the workspace's own writer/parser
//! ([`darco_obs::json`]).
//!
//! `darco-fleet` campaigns are files: a campaign JSON names workloads and
//! embeds the [`SystemConfig`] each job runs under. Serialization emits
//! every field; parsing is *sparse* — it starts from
//! [`SystemConfig::default`] and overrides only the keys present — so a
//! campaign can say `{"tol":{"opt_level":"O1"},"sink":"inorder"}` and
//! nothing else. Unknown keys are errors (a typo in a campaign file must
//! not silently run the default configuration).
//!
//! Integer fields round-trip exactly up to 2^53 (the parser reads numbers
//! as `f64`); every knob in the system is far below that.

use crate::system::{SinkChoice, SystemConfig, TimingMode};
use darco_ir::sched::SchedConfig;
use darco_ir::OptLevel;
use darco_obs::json::{JsonValue, JsonWriter};
use darco_timing::{CacheConfig, TimingConfig, TlbConfig};
use darco_tol::{BugKind, Injection, TolConfig, VerifyLevel, VerifyMode};

// -- emission -----------------------------------------------------------------

fn opt_level_name(l: OptLevel) -> &'static str {
    match l {
        OptLevel::O0 => "O0",
        OptLevel::O1 => "O1",
        OptLevel::O2 => "O2",
        OptLevel::O3 => "O3",
    }
}

fn sink_name(s: SinkChoice) -> &'static str {
    match s {
        SinkChoice::None => "none",
        SinkChoice::InOrder => "inorder",
        SinkChoice::OutOfOrder => "ooo",
    }
}

fn timing_mode_name(m: TimingMode) -> &'static str {
    match m {
        TimingMode::Full => "full",
        TimingMode::Fast => "fast",
    }
}

fn verify_name(v: VerifyMode) -> &'static str {
    match v {
        VerifyMode::Off => "off",
        VerifyMode::Report => "report",
        VerifyMode::Fatal => "fatal",
    }
}

fn verify_level_name(v: VerifyLevel) -> &'static str {
    match v {
        VerifyLevel::Structural => "structural",
        VerifyLevel::Semantic => "semantic",
    }
}

fn bug_name(b: BugKind) -> &'static str {
    match b {
        BugKind::TranslatorWrongConstant => "translator_wrong_constant",
        BugKind::OptimizerBadFold => "optimizer_bad_fold",
        BugKind::CodegenDropStore => "codegen_drop_store",
        BugKind::CodegenClobberPinnedReg => "codegen_clobber_pinned_reg",
    }
}

fn write_cache(w: &mut JsonWriter, key: &str, c: &CacheConfig) {
    w.begin_obj(Some(key))
        .field_num("size", c.size)
        .field_num("ways", c.ways)
        .field_num("line", c.line)
        .field_num("latency", c.latency)
        .end_obj();
}

fn write_tlb(w: &mut JsonWriter, key: &str, t: &TlbConfig) {
    w.begin_obj(Some(key))
        .field_num("entries", t.entries)
        .field_num("miss_penalty", t.miss_penalty)
        .end_obj();
}

fn write_tol(w: &mut JsonWriter, key: &str, t: &TolConfig) {
    w.begin_obj(Some(key));
    w.field_num("bbm_threshold", t.bbm_threshold);
    w.field_num("sbm_threshold", t.sbm_threshold);
    w.field_f64("edge_bias", t.edge_bias);
    w.field_f64("min_reach_prob", t.min_reach_prob);
    w.field_num("max_sb_insns", t.max_sb_insns);
    w.field_num("max_sb_bbs", t.max_sb_bbs);
    w.field_num("assert_fail_limit", t.assert_fail_limit);
    w.field_bool("unroll", t.unroll);
    w.field_num("unroll_factor", t.unroll_factor);
    w.field_str("opt_level", opt_level_name(t.opt_level));
    w.field_bool("speculation", t.speculation);
    w.field_bool("strict_flags", t.strict_flags);
    w.field_bool("chaining", t.chaining);
    w.field_bool("ibtc", t.ibtc);
    w.field_num("code_cache_words", t.code_cache_words);
    w.begin_obj(Some("sched"))
        .field_num("issue_width", t.sched.issue_width)
        .field_num("mem_ports", t.sched.mem_ports)
        .field_num("fp_units", t.sched.fp_units)
        .field_num("muldiv_units", t.sched.muldiv_units)
        .end_obj();
    match &t.injection {
        Some(inj) => {
            w.begin_obj(Some("injection"))
                .field_str("kind", bug_name(inj.kind))
                .field_num("translation_ordinal", inj.translation_ordinal)
                .end_obj();
        }
        None => {
            w.field_null("injection");
        }
    }
    w.field_str("verify", verify_name(t.verify));
    w.field_str("verify_level", verify_level_name(t.verify_level));
    w.end_obj();
}

fn write_timing(w: &mut JsonWriter, key: &str, t: &TimingConfig) {
    w.begin_obj(Some(key));
    w.field_num("fetch_width", t.fetch_width);
    w.field_num("issue_width", t.issue_width);
    w.field_num("iq_size", t.iq_size);
    w.field_num("frontend_depth", t.frontend_depth);
    w.field_num("simple_units", t.simple_units);
    w.field_num("complex_units", t.complex_units);
    w.field_num("fp_units", t.fp_units);
    w.field_num("mem_read_ports", t.mem_read_ports);
    w.field_num("mem_write_ports", t.mem_write_ports);
    w.field_num("phys_regs", t.phys_regs);
    w.field_num("vec_phys_regs", t.vec_phys_regs);
    w.field_num("vector_len", t.vector_len);
    w.field_num("lat_mul", t.lat_mul);
    w.field_num("lat_div", t.lat_div);
    w.field_num("lat_fpadd", t.lat_fpadd);
    w.field_num("lat_fpmul", t.lat_fpmul);
    w.field_num("lat_fpdiv", t.lat_fpdiv);
    w.field_num("lat_fpsqrt", t.lat_fpsqrt);
    w.field_num("gshare_bits", t.gshare_bits);
    w.field_num("btb_entries", t.btb_entries);
    w.field_num("mispredict_penalty", t.mispredict_penalty);
    write_cache(w, "il1", &t.il1);
    write_cache(w, "dl1", &t.dl1);
    write_cache(w, "l2", &t.l2);
    w.field_num("mem_latency", t.mem_latency);
    write_tlb(w, "itlb", &t.itlb);
    write_tlb(w, "dtlb", &t.dtlb);
    write_tlb(w, "l2tlb", &t.l2tlb);
    w.field_bool("prefetch", t.prefetch);
    w.field_num("prefetch_degree", t.prefetch_degree);
    w.field_num("rob_size", t.rob_size);
    w.field_num("clock_mhz", t.clock_mhz);
    w.end_obj();
}

/// Serializes a [`SystemConfig`] to a JSON object string (every field,
/// in declaration order — the output is byte-stable for equal configs).
pub fn config_to_json(c: &SystemConfig) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    write_tol(&mut w, "tol", &c.tol);
    match c.validate_every {
        Some(n) => w.field_num("validate_every", n),
        None => w.field_null("validate_every"),
    };
    w.field_bool("compare_flags", c.compare_flags);
    w.field_str("sink", sink_name(c.sink));
    w.field_str("timing_mode", timing_mode_name(c.timing_mode));
    write_timing(&mut w, "timing", &c.timing);
    w.field_bool("timing_includes_tol", c.timing_includes_tol);
    w.field_bool("power", c.power);
    w.field_num("max_guest_insns", c.max_guest_insns);
    match c.trace_capacity {
        Some(n) => w.field_num("trace_capacity", n),
        None => w.field_null("trace_capacity"),
    };
    match &c.flight_path {
        Some(p) => w.field_str("flight_path", p),
        None => w.field_null("flight_path"),
    };
    w.field_str("backend", c.backend.as_str());
    w.end_obj();
    w.finish()
}

// -- parsing ------------------------------------------------------------------

fn want_u64(v: &JsonValue, ctx: &str) -> Result<u64, String> {
    match v.as_num() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
        _ => Err(format!("{ctx}: expected a non-negative integer")),
    }
}

fn want_u32(v: &JsonValue, ctx: &str) -> Result<u32, String> {
    u32::try_from(want_u64(v, ctx)?).map_err(|_| format!("{ctx}: out of u32 range"))
}

fn want_f64(v: &JsonValue, ctx: &str) -> Result<f64, String> {
    v.as_num().ok_or_else(|| format!("{ctx}: expected a number"))
}

fn want_bool(v: &JsonValue, ctx: &str) -> Result<bool, String> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{ctx}: expected a bool")),
    }
}

fn want_str<'a>(v: &'a JsonValue, ctx: &str) -> Result<&'a str, String> {
    v.as_str().ok_or_else(|| format!("{ctx}: expected a string"))
}

fn members<'a>(v: &'a JsonValue, ctx: &str) -> Result<&'a [(String, JsonValue)], String> {
    match v {
        JsonValue::Obj(m) => Ok(m),
        _ => Err(format!("{ctx}: expected an object")),
    }
}

fn apply_cache(c: &mut CacheConfig, v: &JsonValue, ctx: &str) -> Result<(), String> {
    for (k, val) in members(v, ctx)? {
        let ctx = format!("{ctx}.{k}");
        match k.as_str() {
            "size" => c.size = want_u32(val, &ctx)?,
            "ways" => c.ways = want_u32(val, &ctx)?,
            "line" => c.line = want_u32(val, &ctx)?,
            "latency" => c.latency = want_u32(val, &ctx)?,
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    Ok(())
}

fn apply_tlb(t: &mut TlbConfig, v: &JsonValue, ctx: &str) -> Result<(), String> {
    for (k, val) in members(v, ctx)? {
        let ctx = format!("{ctx}.{k}");
        match k.as_str() {
            "entries" => t.entries = want_u32(val, &ctx)?,
            "miss_penalty" => t.miss_penalty = want_u32(val, &ctx)?,
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    Ok(())
}

fn apply_sched(s: &mut SchedConfig, v: &JsonValue, ctx: &str) -> Result<(), String> {
    for (k, val) in members(v, ctx)? {
        let ctx = format!("{ctx}.{k}");
        match k.as_str() {
            "issue_width" => s.issue_width = want_u32(val, &ctx)?,
            "mem_ports" => s.mem_ports = want_u32(val, &ctx)?,
            "fp_units" => s.fp_units = want_u32(val, &ctx)?,
            "muldiv_units" => s.muldiv_units = want_u32(val, &ctx)?,
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    Ok(())
}

fn parse_injection(v: &JsonValue, ctx: &str) -> Result<Option<Injection>, String> {
    if *v == JsonValue::Null {
        return Ok(None);
    }
    let mut kind = None;
    let mut ordinal = 0;
    for (k, val) in members(v, ctx)? {
        let ctx = format!("{ctx}.{k}");
        match k.as_str() {
            "kind" => {
                kind = Some(match want_str(val, &ctx)? {
                    "translator_wrong_constant" => BugKind::TranslatorWrongConstant,
                    "optimizer_bad_fold" => BugKind::OptimizerBadFold,
                    "codegen_drop_store" => BugKind::CodegenDropStore,
                    "codegen_clobber_pinned_reg" => BugKind::CodegenClobberPinnedReg,
                    other => return Err(format!("{ctx}: unknown bug kind `{other}`")),
                })
            }
            "translation_ordinal" => ordinal = want_u64(val, &ctx)?,
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    match kind {
        Some(kind) => Ok(Some(Injection { kind, translation_ordinal: ordinal })),
        None => Err(format!("{ctx}: injection needs a `kind`")),
    }
}

fn apply_tol(t: &mut TolConfig, v: &JsonValue, ctx: &str) -> Result<(), String> {
    for (k, val) in members(v, ctx)? {
        let ctx = format!("{ctx}.{k}");
        match k.as_str() {
            "bbm_threshold" => t.bbm_threshold = want_u64(val, &ctx)?,
            "sbm_threshold" => t.sbm_threshold = want_u64(val, &ctx)?,
            "edge_bias" => t.edge_bias = want_f64(val, &ctx)?,
            "min_reach_prob" => t.min_reach_prob = want_f64(val, &ctx)?,
            "max_sb_insns" => t.max_sb_insns = want_u64(val, &ctx)? as usize,
            "max_sb_bbs" => t.max_sb_bbs = want_u64(val, &ctx)? as usize,
            "assert_fail_limit" => t.assert_fail_limit = want_u32(val, &ctx)?,
            "unroll" => t.unroll = want_bool(val, &ctx)?,
            "unroll_factor" => {
                t.unroll_factor = u8::try_from(want_u64(val, &ctx)?)
                    .map_err(|_| format!("{ctx}: out of u8 range"))?
            }
            "opt_level" => {
                t.opt_level = match want_str(val, &ctx)? {
                    "O0" => OptLevel::O0,
                    "O1" => OptLevel::O1,
                    "O2" => OptLevel::O2,
                    "O3" => OptLevel::O3,
                    other => return Err(format!("{ctx}: unknown opt level `{other}`")),
                }
            }
            "speculation" => t.speculation = want_bool(val, &ctx)?,
            "strict_flags" => t.strict_flags = want_bool(val, &ctx)?,
            "chaining" => t.chaining = want_bool(val, &ctx)?,
            "ibtc" => t.ibtc = want_bool(val, &ctx)?,
            "code_cache_words" => t.code_cache_words = want_u64(val, &ctx)? as usize,
            "sched" => apply_sched(&mut t.sched, val, &ctx)?,
            "injection" => t.injection = parse_injection(val, &ctx)?,
            "verify_level" => {
                t.verify_level = match want_str(val, &ctx)? {
                    "structural" => VerifyLevel::Structural,
                    "semantic" => VerifyLevel::Semantic,
                    other => return Err(format!("{ctx}: unknown verify level `{other}`")),
                }
            }
            "verify" => {
                t.verify = match want_str(val, &ctx)? {
                    "off" => VerifyMode::Off,
                    "report" => VerifyMode::Report,
                    "fatal" => VerifyMode::Fatal,
                    other => return Err(format!("{ctx}: unknown verify mode `{other}`")),
                }
            }
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    Ok(())
}

fn apply_timing(t: &mut TimingConfig, v: &JsonValue, ctx: &str) -> Result<(), String> {
    for (k, val) in members(v, ctx)? {
        let ctx = format!("{ctx}.{k}");
        match k.as_str() {
            "fetch_width" => t.fetch_width = want_u32(val, &ctx)?,
            "issue_width" => t.issue_width = want_u32(val, &ctx)?,
            "iq_size" => t.iq_size = want_u32(val, &ctx)?,
            "frontend_depth" => t.frontend_depth = want_u32(val, &ctx)?,
            "simple_units" => t.simple_units = want_u32(val, &ctx)?,
            "complex_units" => t.complex_units = want_u32(val, &ctx)?,
            "fp_units" => t.fp_units = want_u32(val, &ctx)?,
            "mem_read_ports" => t.mem_read_ports = want_u32(val, &ctx)?,
            "mem_write_ports" => t.mem_write_ports = want_u32(val, &ctx)?,
            "phys_regs" => t.phys_regs = want_u32(val, &ctx)?,
            "vec_phys_regs" => t.vec_phys_regs = want_u32(val, &ctx)?,
            "vector_len" => t.vector_len = want_u32(val, &ctx)?,
            "lat_mul" => t.lat_mul = want_u32(val, &ctx)?,
            "lat_div" => t.lat_div = want_u32(val, &ctx)?,
            "lat_fpadd" => t.lat_fpadd = want_u32(val, &ctx)?,
            "lat_fpmul" => t.lat_fpmul = want_u32(val, &ctx)?,
            "lat_fpdiv" => t.lat_fpdiv = want_u32(val, &ctx)?,
            "lat_fpsqrt" => t.lat_fpsqrt = want_u32(val, &ctx)?,
            "gshare_bits" => t.gshare_bits = want_u32(val, &ctx)?,
            "btb_entries" => t.btb_entries = want_u32(val, &ctx)?,
            "mispredict_penalty" => t.mispredict_penalty = want_u32(val, &ctx)?,
            "il1" => apply_cache(&mut t.il1, val, &ctx)?,
            "dl1" => apply_cache(&mut t.dl1, val, &ctx)?,
            "l2" => apply_cache(&mut t.l2, val, &ctx)?,
            "mem_latency" => t.mem_latency = want_u32(val, &ctx)?,
            "itlb" => apply_tlb(&mut t.itlb, val, &ctx)?,
            "dtlb" => apply_tlb(&mut t.dtlb, val, &ctx)?,
            "l2tlb" => apply_tlb(&mut t.l2tlb, val, &ctx)?,
            "prefetch" => t.prefetch = want_bool(val, &ctx)?,
            "prefetch_degree" => t.prefetch_degree = want_u32(val, &ctx)?,
            "rob_size" => t.rob_size = want_u32(val, &ctx)?,
            "clock_mhz" => t.clock_mhz = want_u32(val, &ctx)?,
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    Ok(())
}

/// Builds a [`SystemConfig`] from parsed JSON: defaults, overridden by
/// whatever keys are present.
///
/// # Errors
/// Returns a message naming the offending key path on unknown keys,
/// wrong types or unknown enum spellings.
pub fn config_from_json(v: &JsonValue) -> Result<SystemConfig, String> {
    let mut c = SystemConfig::default();
    config_apply_json(&mut c, v)?;
    Ok(c)
}

/// Applies a sparse JSON patch to an existing config — campaign files
/// layer `defaults.config` and a per-job `config` on top of each other
/// with repeated calls.
///
/// # Errors
/// Same contract as [`config_from_json`].
pub fn config_apply_json(c: &mut SystemConfig, v: &JsonValue) -> Result<(), String> {
    for (k, val) in members(v, "config")? {
        let ctx = format!("config.{k}");
        match k.as_str() {
            "tol" => apply_tol(&mut c.tol, val, &ctx)?,
            "validate_every" => {
                c.validate_every =
                    if *val == JsonValue::Null { None } else { Some(want_u64(val, &ctx)?) }
            }
            "compare_flags" => c.compare_flags = want_bool(val, &ctx)?,
            "sink" => {
                c.sink = match want_str(val, &ctx)? {
                    "none" => SinkChoice::None,
                    "inorder" => SinkChoice::InOrder,
                    "ooo" => SinkChoice::OutOfOrder,
                    other => return Err(format!("{ctx}: unknown sink `{other}`")),
                }
            }
            "timing_mode" => {
                c.timing_mode = match want_str(val, &ctx)? {
                    "full" => TimingMode::Full,
                    "fast" => TimingMode::Fast,
                    other => return Err(format!("{ctx}: unknown timing mode `{other}`")),
                }
            }
            "timing" => apply_timing(&mut c.timing, val, &ctx)?,
            "timing_includes_tol" => c.timing_includes_tol = want_bool(val, &ctx)?,
            "power" => c.power = want_bool(val, &ctx)?,
            "max_guest_insns" => c.max_guest_insns = want_u64(val, &ctx)?,
            "trace_capacity" => {
                c.trace_capacity = if *val == JsonValue::Null {
                    None
                } else {
                    Some(want_u64(val, &ctx)? as usize)
                }
            }
            "flight_path" => {
                c.flight_path =
                    if *val == JsonValue::Null { None } else { Some(want_str(val, &ctx)?.to_string()) }
            }
            "backend" => {
                let s = want_str(val, &ctx)?;
                c.backend = darco_host::codegen::Backend::parse(s)
                    .ok_or_else(|| format!("{ctx}: unknown backend `{s}`"))?
            }
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    Ok(())
}

/// Convenience: parse a JSON string straight into a config.
///
/// # Errors
/// Propagates JSON syntax errors and [`config_from_json`] failures.
pub fn config_from_str(s: &str) -> Result<SystemConfig, String> {
    let v = darco_obs::parse(s).map_err(|e| e.to_string())?;
    config_from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_round_trips_byte_identically() {
        let c = SystemConfig::default();
        let json = config_to_json(&c);
        let back = config_from_str(&json).unwrap();
        assert_eq!(back, c);
        assert_eq!(config_to_json(&back), json, "re-serialization is byte-stable");
    }

    #[test]
    fn non_default_config_round_trips() {
        let mut c = SystemConfig::default();
        c.tol.bbm_threshold = 3;
        c.tol.sbm_threshold = 12;
        c.tol.opt_level = OptLevel::O1;
        c.tol.speculation = false;
        c.tol.verify = VerifyMode::Report;
        c.tol.verify_level = VerifyLevel::Semantic;
        c.tol.injection =
            Some(Injection { kind: BugKind::CodegenClobberPinnedReg, translation_ordinal: 5 });
        c.validate_every = Some(10_000);
        c.sink = SinkChoice::OutOfOrder;
        c.timing_mode = TimingMode::Fast;
        c.timing = TimingConfig::narrow_ooo();
        c.power = true;
        c.trace_capacity = Some(4096);
        c.flight_path = Some("out/flight.json".to_string());
        let back = config_from_str(&config_to_json(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn sparse_override_starts_from_defaults() {
        let c = config_from_str(
            r#"{"tol":{"opt_level":"O2","bbm_threshold":7},"sink":"inorder","power":true}"#,
        )
        .unwrap();
        assert_eq!(c.tol.opt_level, OptLevel::O2);
        assert_eq!(c.tol.bbm_threshold, 7);
        assert_eq!(c.sink, SinkChoice::InOrder);
        assert!(c.power);
        // Everything else keeps the default.
        assert_eq!(c.tol.sbm_threshold, TolConfig::default().sbm_threshold);
        assert_eq!(c.max_guest_insns, SystemConfig::default().max_guest_insns);
    }

    #[test]
    fn patches_layer_left_to_right() {
        let mut c = SystemConfig::default();
        let base = darco_obs::parse(r#"{"tol":{"opt_level":"O1","bbm_threshold":9}}"#).unwrap();
        let job = darco_obs::parse(r#"{"tol":{"opt_level":"O3"},"power":true}"#).unwrap();
        config_apply_json(&mut c, &base).unwrap();
        config_apply_json(&mut c, &job).unwrap();
        assert_eq!(c.tol.opt_level, OptLevel::O3, "job patch wins");
        assert_eq!(c.tol.bbm_threshold, 9, "base patch survives where the job is silent");
        assert!(c.power);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_named_errors() {
        let e = config_from_str(r#"{"tol":{"bmm_threshold":3}}"#).unwrap_err();
        assert!(e.contains("config.tol.bmm_threshold"), "{e}");
        let e = config_from_str(r#"{"sink":"fast"}"#).unwrap_err();
        assert!(e.contains("unknown sink"), "{e}");
        // `fast` is a timing *mode*, not a sink — and it has its own key.
        let c = config_from_str(r#"{"sink":"inorder","timing_mode":"fast"}"#).unwrap();
        assert_eq!(c.timing_mode, TimingMode::Fast);
        let e = config_from_str(r#"{"timing_mode":"turbo"}"#).unwrap_err();
        assert!(e.contains("unknown timing mode"), "{e}");
        let e = config_from_str(r#"{"max_guest_insns":-4}"#).unwrap_err();
        assert!(e.contains("non-negative"), "{e}");
        let e = config_from_str(r#"{"timing":{"il1":{"sets":4}}}"#).unwrap_err();
        assert!(e.contains("config.timing.il1.sets"), "{e}");
    }
}
