//! `darco-run` — the command-line face of the controller: run a suite
//! benchmark or a built-in kernel through the full infrastructure and
//! report what happened.
//!
//! ```text
//! darco-run --list
//! darco-run 401.bzip2 --scale 1/8 --timing --power
//! darco-run kernel:nbody --validate-every 10000 --json
//! darco-run continuous --ooo --strict-flags --no-chain
//! darco-run 401.bzip2 --scale 1/64 --trace=trace.json --metrics=metrics.json
//! ```

use darco::{SinkChoice, Snapshot, StepExit, System, SystemConfig};
use darco_workloads::{benchmarks, kernels};
use std::process::ExitCode;

/// Exit code for a clean guest-instruction-budget stop (partial report
/// was printed) — distinct from protocol/validation failures.
const EXIT_BUDGET: u8 = 3;

fn usage() -> ! {
    eprintln!(
        "usage: darco-run <benchmark|kernel:NAME|fuzz:PATH> [options]\n\
         \n\
         benchmarks: any name from --list (e.g. 403.gcc, breakable)\n\
         kernels:    kernel:dot, kernel:matmul, kernel:search, kernel:nbody,\n             kernel:quicksort, kernel:crc32\n\
         fuzz:PATH   replay a darco-fuzz reproducer or corpus entry\n\
         \n\
         options:\n\
           --list                 list suite benchmarks and exit\n\
           --scale N/D            scale iteration counts (default 1/1)\n\
           --timing               attach the in-order timing simulator\n\
           --timing-mode M        fast|full (default full): `fast` charges\n\
         \u{20}                        cycle-annotated translated blocks in\n\
         \u{20}                        O(1) and escapes into the detailed\n\
         \u{20}                        model on misses/mispredicts — cycle\n\
         \u{20}                        counts stay bit-identical to full\n\
           --ooo                  attach the out-of-order core instead\n\
         \u{20}                        (no fast path; always detailed)\n\
           --power                add the power report (implies --timing)\n\
           --validate-every N     periodic state validation interval\n\
           --strict-flags         materialize all guest flags (ablation)\n\
           --no-chain             disable chaining and the IBTC\n\
           --no-spec              disable speculation (multi-exit SBs)\n\
           --opt LEVEL            O0|O1|O2|O3 (default O3)\n\
           --backend B            native|emu (default emu): run host code\n\
         \u{20}                        through the x86-64 JIT or the reference\n\
         \u{20}                        emulator; native falls back to emu when\n\
         \u{20}                        timing/tracing needs retire events or\n\
         \u{20}                        the host has no JIT\n\
           --max-insns N          guest instruction budget (a run that\n\
         \u{20}                        exceeds it stops cleanly, prints the\n\
         \u{20}                        partial report and exits with code 3)\n\
           --checkpoint-at N      serialize a checkpoint once N guest\n\
         \u{20}                        instructions have retired, then go on\n\
           --checkpoint-to FILE   checkpoint destination (darco.snap)\n\
           --restore FILE         resume from a checkpoint file (same\n\
         \u{20}                        workload and options required)\n\
           --json                 print the full report as JSON\n\
           --trace[=]FILE         record trace events; write a Chrome\n\
         \u{20}                        trace-event JSON array to FILE\n\
           --trace-cap N          trace ring capacity (default 65536)\n\
           --metrics[=FILE]       print the metrics registry as JSON\n\
         \u{20}                        (or write it to FILE)\n\
           --flight[=]FILE        write a flight-recorder dump to FILE\n\
         \u{20}                        if the run diverges or panics\n\
           --profile[=]FILE       sample guest PC/mode/region at quantum\n\
         \u{20}                        boundaries; write collapsed-stack\n\
         \u{20}                        (flamegraph) lines to FILE and put the\n\
         \u{20}                        translation-cache heatmap in --json\n\
           --profile-every N      sampling quantum in guest instructions\n\
         \u{20}                        (default 10000)\n\
         \n\
         exit codes:\n\
           0  run completed (or guest faulted identically on both\n\
         \u{20}    components — a program error, not a simulator error)\n\
           1  simulator error: validation divergence, protocol error,\n\
         \u{20}    unreadable/mismatched checkpoint, unwritable output\n\
           2  usage error\n\
           3  guest instruction budget (--max-insns) exceeded; the\n\
         \u{20}    partial report was still produced"
    );
    std::process::exit(2);
}

/// Accepts both `--flag=VALUE` and `--flag VALUE` spellings.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    let a = &args[*i];
    if let Some(v) = a.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
        return v.to_string();
    }
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| usage())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for b in benchmarks() {
            println!("{:<16} {}", b.name, b.suite.name());
        }
        return ExitCode::SUCCESS;
    }
    let Some(target) = args.first().filter(|a| !a.starts_with("--")) else { usage() };

    let mut cfg = SystemConfig::default();
    let mut scale = (1u32, 1u32);
    let mut json = false;
    let mut trace_path: Option<String> = None;
    let mut trace_cap: usize = 1 << 16;
    // None: off; Some(None): stdout; Some(Some(path)): file.
    let mut metrics_out: Option<Option<String>> = None;
    let mut checkpoint_at: Option<u64> = None;
    let mut checkpoint_to = "darco.snap".to_string();
    let mut restore_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut profile_every: u64 = darco::DEFAULT_SAMPLE_EVERY;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                let mut it = v.split('/');
                scale = (
                    it.next().and_then(|x| x.parse().ok()).unwrap_or(1),
                    it.next().and_then(|x| x.parse().ok()).unwrap_or(1),
                );
            }
            "--timing" => {
                if cfg.sink == SinkChoice::None {
                    cfg.sink = SinkChoice::InOrder;
                }
            }
            a if a == "--timing-mode" || a.starts_with("--timing-mode=") => {
                let v = flag_value(&args, &mut i, "--timing-mode");
                if cfg.sink == SinkChoice::None {
                    cfg.sink = SinkChoice::InOrder;
                }
                cfg.timing_mode = match v.as_str() {
                    "full" => darco::TimingMode::Full,
                    "fast" => darco::TimingMode::Fast,
                    _ => usage(),
                };
            }
            "--ooo" => cfg.sink = SinkChoice::OutOfOrder,
            "--power" => {
                if cfg.sink == SinkChoice::None {
                    cfg.sink = SinkChoice::InOrder;
                }
                cfg.power = true;
            }
            "--validate-every" => {
                i += 1;
                cfg.validate_every =
                    Some(args.get(i).and_then(|x| x.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--strict-flags" => cfg.tol.strict_flags = true,
            "--no-chain" => {
                cfg.tol.chaining = false;
                cfg.tol.ibtc = false;
            }
            "--no-spec" => cfg.tol.speculation = false,
            "--opt" => {
                i += 1;
                cfg.tol.opt_level = match args.get(i).map(String::as_str) {
                    Some("O0") => darco_ir::OptLevel::O0,
                    Some("O1") => darco_ir::OptLevel::O1,
                    Some("O2") => darco_ir::OptLevel::O2,
                    Some("O3") => darco_ir::OptLevel::O3,
                    _ => usage(),
                };
            }
            "--max-insns" => {
                i += 1;
                cfg.max_guest_insns =
                    args.get(i).and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--checkpoint-at" => {
                i += 1;
                checkpoint_at =
                    Some(args.get(i).and_then(|x| x.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--checkpoint-to" => {
                i += 1;
                checkpoint_to = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--restore" => {
                i += 1;
                restore_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--json" => json = true,
            "--trace-cap" => {
                i += 1;
                trace_cap = args.get(i).and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            a if a == "--trace" || a.starts_with("--trace=") => {
                trace_path = Some(flag_value(&args, &mut i, "--trace"));
            }
            "--metrics" => metrics_out = Some(None),
            a if a.starts_with("--metrics=") => {
                metrics_out = Some(Some(flag_value(&args, &mut i, "--metrics")));
            }
            a if a == "--flight" || a.starts_with("--flight=") => {
                cfg.flight_path = Some(flag_value(&args, &mut i, "--flight"));
            }
            a if a == "--profile" || a.starts_with("--profile=") => {
                profile_path = Some(flag_value(&args, &mut i, "--profile"));
            }
            "--profile-every" => {
                i += 1;
                profile_every =
                    args.get(i).and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            a if a == "--backend" || a.starts_with("--backend=") => {
                let v = flag_value(&args, &mut i, "--backend");
                cfg.backend =
                    darco_host::codegen::Backend::parse(&v).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    if trace_path.is_some() || cfg.flight_path.is_some() {
        cfg.trace_capacity = Some(trace_cap);
    }

    let program = if let Some(k) = target.strip_prefix("kernel:") {
        match k {
            "dot" => kernels::dot_product(20_000),
            "matmul" => kernels::matmul(24),
            "search" => kernels::string_search(200_000, 123_456),
            "nbody" => kernels::nbody_step(64, 500),
            "quicksort" => kernels::quicksort(4_000),
            "crc32" => kernels::crc32(50_000),
            _ => usage(),
        }
    } else if let Some(path) = target.strip_prefix("fuzz:") {
        // A darco-fuzz reproducer/corpus entry: replay it through the
        // full single-run harness (tracing, flight recorder, profiler).
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading fuzz reproducer `{path}`: {e}");
            std::process::exit(2);
        });
        let fp = darco_workloads::fuzzprog::FuzzProgram::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: parsing fuzz reproducer `{path}`: {e}");
            std::process::exit(2);
        });
        fp.lower()
    } else {
        match benchmarks().into_iter().find(|b| b.name == target) {
            Some(b) => darco_workloads::build(&b.profile.scaled(scale.0, scale.1)),
            None => usage(),
        }
    };

    let t0 = std::time::Instant::now();
    let flight_path = cfg.flight_path.clone();
    let mut engine = System::new(cfg, program).start();
    if profile_path.is_some() {
        engine.enable_profiler(profile_every);
    }
    if let Some(path) = &restore_path {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("could not read checkpoint {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snap = match Snapshot::from_bytes(bytes) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("could not parse checkpoint {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = engine.restore(&snap) {
            eprintln!("could not restore checkpoint {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("restored checkpoint at {} guest instructions", engine.insns());
    }
    let mut budget_exceeded = false;
    loop {
        // Stop exactly (well, at the next boundary) at the checkpoint
        // point; otherwise run with an unbounded quantum — unless the
        // profiler needs boundaries at its sampling quantum.
        let budget = match checkpoint_at {
            Some(n) if engine.insns() < n => n - engine.insns(),
            _ => u64::MAX,
        };
        let budget = if profile_path.is_some() { budget.min(profile_every) } else { budget };
        match engine.step(budget) {
            Ok(StepExit::Ended | StepExit::GuestFault) => break,
            Ok(_) => {
                if let Some(n) = checkpoint_at {
                    if engine.insns() >= n {
                        checkpoint_at = None;
                        let snap = match engine.checkpoint() {
                            Ok(s) => s,
                            Err(e) => {
                                eprintln!("checkpoint failed: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        if let Err(e) = std::fs::write(&checkpoint_to, snap.as_bytes()) {
                            eprintln!("could not write checkpoint to {checkpoint_to}: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!(
                            "checkpoint written to {checkpoint_to} at {} guest instructions",
                            snap.guest_insns()
                        );
                    }
                }
            }
            Err(darco::DarcoError::BudgetExceeded) => {
                eprintln!(
                    "guest instruction budget exceeded after {} instructions; \
                     reporting partial results",
                    engine.insns()
                );
                budget_exceeded = true;
                break;
            }
            Err(e) => {
                eprintln!("run failed: {e}");
                if let Some(p) = &flight_path {
                    eprintln!("flight-recorder dump written to {p}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    let profiler = engine.take_profiler();
    let report = engine.into_report();
    let dt = t0.elapsed().as_secs_f64();

    if let (Some(path), Some(p)) = (&profile_path, &profiler) {
        if let Err(e) = std::fs::write(path, p.to_folded(&report.name)) {
            eprintln!("could not write profile to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &trace_path {
        let doc = darco_obs::chrome::to_chrome_trace(&report.name, &report.trace);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("could not write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match &metrics_out {
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(path, report.metrics.to_json()) {
                eprintln!("could not write metrics to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        Some(None) => println!("{}", report.metrics.to_json()),
        None => {}
    }

    let exit = if budget_exceeded { ExitCode::from(EXIT_BUDGET) } else { ExitCode::SUCCESS };
    if json {
        match &profiler {
            Some(p) => {
                let heat = p.to_json();
                println!("{}", darco::json::report_to_json_with(&report, &[("profile", &heat)]));
            }
            None => println!("{}", darco::json::report_to_json(&report)),
        }
        return exit;
    }
    let (im, bbm, sbm) = report.mode_insns;
    let total = (im + bbm + sbm).max(1) as f64;
    println!("{}", report.name);
    println!("  guest instructions   {:>12}  ({:.2} MIPS wall-clock)", report.guest_insns, report.guest_insns as f64 / dt / 1e6);
    println!("  mode split           IM {:.1}% / BBM {:.1}% / SBM {:.1}%", im as f64 / total * 100.0, bbm as f64 / total * 100.0, sbm as f64 / total * 100.0);
    println!("  SBM emulation cost   {:>12.2}  host insns / guest insn", report.sbm_emulation_cost);
    println!("  TOL overhead         {:>11.1}%  of the host dynamic stream", report.overhead_fraction() * 100.0);
    println!("  translations         {:>12}  ({} BB, {} SB, {} recreations)",
        report.tol_stats.translations_bb + report.tol_stats.translations_sb,
        report.tol_stats.translations_bb, report.tol_stats.translations_sb, report.tol_stats.recreations);
    println!("  speculation          {:>12}  rollbacks", report.rollbacks);
    println!("  protocol             {:>12}  pages served, {} syscalls, {} validations",
        report.pages_served, report.syscalls, report.validations);
    if let Some(p) = &profiler {
        let (pim, pbbm, psbm) = p.mode_counts();
        println!("  profile              {:>12}  samples (IM {pim} / BBM {pbbm} / SBM {psbm})",
            p.samples());
    }
    if let Some(t) = &report.timing {
        println!("  timing               {:>12}  cycles, IPC {:.2}, CPI(guest) {:.2}",
            t.cycles, t.ipc(), t.cycles as f64 / report.guest_insns as f64);
        println!("  caches               L1D miss {:.2}%, L2 miss {:.2}%, bpred miss {:.2}%",
            t.dl1_misses as f64 / t.dl1_accesses.max(1) as f64 * 100.0,
            t.l2_misses as f64 / t.l2_accesses.max(1) as f64 * 100.0,
            t.mispredicts as f64 / t.branches.max(1) as f64 * 100.0);
    }
    if let Some(fs) = &report.fast {
        let blocks = (fs.memo_blocks + fs.escapes + fs.plain_blocks).max(1);
        println!("  fast path            {:>12}  memo blocks ({:.1}% of {} blocks), {} escapes",
            fs.memo_blocks, fs.memo_blocks as f64 / blocks as f64 * 100.0, blocks, fs.escapes);
    }
    if let Some(p) = &report.power {
        println!("  power                {:>9.1} mW  avg, {:.1} pJ/insn", p.avg_power_mw, p.total_pj / report.guest_insns as f64);
    }
    if let Some(f) = &report.guest_fault {
        println!("  guest fault          {f}");
    }
    exit
}
