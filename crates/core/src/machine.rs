//! The coupled machine: co-designed component + authoritative component
//! with the DARCO synchronization protocol.
//!
//! [`Machine::run_to`] implements the paper's Execution/Synchronization
//! phases at the granularity callers need (the [`crate::System`] controller
//! for whole runs, the [`crate::sampling`] harness for windows).

use darco_guest::{Fault, GuestMem, GuestProgram, GuestState, Wire, WireError, WireReader};
use darco_host::sink::InsnSink;
use darco_obs::TraceEventKind;
use darco_tol::{flags, Tol, TolConfig, TolEvent};
use darco_xcomp::{SyscallOutcome, XComponent, XcompError};

/// Why [`Machine::run_to`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineEvent {
    /// Reached the requested instruction count.
    Reached,
    /// The application ended (halt or exit syscall); count is final.
    Ended {
        /// Exit status when the program exited via syscall.
        exit_status: Option<u32>,
    },
    /// Both components raised the same guest fault (program error).
    GuestFault(Fault),
}

/// Errors during coupled execution.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The co-designed and authoritative states disagreed.
    Validation {
        /// Retired guest instructions at the failed check.
        at_insns: u64,
        /// Authoritative `EIP` at that point.
        guest_pc: u32,
        /// Human-readable description of the first difference.
        detail: String,
    },
    /// Protocol-level failure in the authoritative component.
    Xcomp(XcompError),
    /// The components disagreed about a guest fault.
    FaultMismatch(String),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Validation { at_insns, guest_pc, detail } => write!(
                f,
                "state validation failed after {at_insns} instructions (pc {guest_pc:#010x}): {detail}"
            ),
            MachineError::Xcomp(e) => write!(f, "{e}"),
            MachineError::FaultMismatch(m) => write!(f, "fault mismatch: {m}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// The coupled co-designed + authoritative machine.
pub struct Machine {
    /// The co-designed component's software layer.
    pub tol: Tol,
    /// The co-designed component's emulated guest state.
    pub state: GuestState,
    /// The authoritative component.
    pub xcomp: XComponent,
    /// Validations performed.
    pub validations: u64,
    /// Pages served through data-request synchronization.
    pub pages_served: u64,
    /// Syscall synchronizations.
    pub syscalls: u64,
    /// Wall nanoseconds spent driving the authoritative component to
    /// catch-up points (`*_nanos`: excluded from determinism comparisons).
    pub xcomp_nanos: u64,
    ended: Option<MachineEvent>,
}

impl Machine {
    /// Initialization phase: launches both components and forwards the
    /// initial architectural state to the co-designed side.
    pub fn new(cfg: TolConfig, program: &GuestProgram) -> Machine {
        let xcomp = XComponent::new(program);
        let mut state = GuestState::boot_regs_only(program);
        state.copy_regs_from(&xcomp.initial_regs());
        Machine {
            tol: Tol::new(cfg),
            state,
            xcomp,
            validations: 0,
            pages_served: 0,
            syscalls: 0,
            xcomp_nanos: 0,
            ended: None,
        }
    }

    /// Total retired guest instructions (the protocol's synchronization
    /// currency).
    pub fn insns(&self) -> u64 {
        self.tol.total_guest()
    }

    /// Whether the application has ended.
    pub fn ended(&self) -> bool {
        self.ended.is_some()
    }

    /// Drives the authoritative component to `count` retired instructions,
    /// attributing the wall time to `xcomp_nanos`.
    fn xcomp_catch_up(&mut self, count: u64) -> Result<(), MachineError> {
        let t0 = std::time::Instant::now();
        let r = self.xcomp.run_until(count).map_err(MachineError::Xcomp);
        self.xcomp_nanos += t0.elapsed().as_nanos() as u64;
        r
    }

    /// Runs the co-designed component until `target` retired guest
    /// instructions (or the end of the application), resolving
    /// synchronization events against the authoritative component.
    ///
    /// # Errors
    /// Returns [`MachineError`] on validation failures or protocol errors.
    pub fn run_to<S: InsnSink>(
        &mut self,
        target: u64,
        compare_flags: bool,
        sink: &mut S,
    ) -> Result<MachineEvent, MachineError> {
        if let Some(ev) = &self.ended {
            return Ok(ev.clone());
        }
        loop {
            let now = self.insns();
            if now >= target {
                return Ok(MachineEvent::Reached);
            }
            match self.tol.run(&mut self.state, target - now, sink) {
                TolEvent::FuelOut => return Ok(MachineEvent::Reached),
                TolEvent::PageFault { addr, .. } => {
                    // Data request: drive the authoritative component to the
                    // same execution point, then transfer the page.
                    let count = self.insns();
                    self.xcomp_catch_up(count)?;
                    let page = self.xcomp.page_for(addr);
                    self.state.mem.install_page(GuestMem::page_of(addr), page);
                    self.pages_served += 1;
                    self.tol.obs.emit(TraceEventKind::PageRequest { addr });
                }
                TolEvent::Syscall => {
                    let count = self.insns();
                    self.xcomp_catch_up(count)?;
                    self.tol.obs.emit(TraceEventKind::SyscallSync { at_insns: count });
                    // The paper validates at system calls.
                    self.validate(compare_flags)?;
                    let outcome = self.xcomp.exec_syscall().map_err(MachineError::Xcomp)?;
                    self.syscalls += 1;
                    // Apply the syscall's effects to the co-designed state:
                    // registers (incl. EIP past the syscall) and any pages
                    // the kernel wrote that the co-designed side already
                    // holds.
                    self.state.copy_regs_from(&self.xcomp.state);
                    self.tol.pending_flags = None;
                    self.tol.credit_external(1);
                    if let SyscallOutcome::Ok { modified } = &outcome {
                        for (addr, len) in modified {
                            let first = GuestMem::page_of(*addr);
                            let last = GuestMem::page_of(addr.wrapping_add(len.saturating_sub(1)));
                            for p in first..=last {
                                if self.state.mem.is_mapped(p << 12) {
                                    let data = self.xcomp.page_for(p << 12);
                                    self.state.mem.install_page(p, data);
                                }
                            }
                        }
                    }
                    if let SyscallOutcome::Exit(code) = outcome {
                        self.tol.obs.emit(TraceEventKind::RunEnd { at_insns: self.insns() });
                        let ev = MachineEvent::Ended { exit_status: Some(code) };
                        self.ended = Some(ev.clone());
                        return Ok(ev);
                    }
                }
                TolEvent::Halted => {
                    let count = self.insns();
                    self.xcomp_catch_up(count)?;
                    self.xcomp.confirm_halt().map_err(MachineError::Xcomp)?;
                    // End-of-application validation (mandatory in the paper).
                    self.validate(compare_flags)?;
                    self.tol.obs.emit(TraceEventKind::RunEnd { at_insns: self.insns() });
                    let ev = MachineEvent::Ended { exit_status: None };
                    self.ended = Some(ev.clone());
                    return Ok(ev);
                }
                TolEvent::GuestError(fault) => {
                    // The authoritative component must hit the same fault.
                    let count = self.insns();
                    self.xcomp_catch_up(count)?;
                    return match self.xcomp.run_until(count + 1) {
                        Err(XcompError::GuestFault(f)) if f == fault => {
                            self.validate(compare_flags)?;
                            self.tol.obs.emit(TraceEventKind::RunEnd { at_insns: self.insns() });
                            let ev = MachineEvent::GuestFault(fault);
                            self.ended = Some(ev.clone());
                            Ok(ev)
                        }
                        other => Err(MachineError::FaultMismatch(format!(
                            "co-designed faulted with {fault}, authoritative: {other:?}"
                        ))),
                    };
                }
            }
        }
    }

    /// Serializes the coupled machine: both components' architectural
    /// state plus the synchronization counters. Drives the authoritative
    /// component to the co-designed instruction count first so the two
    /// sides are serialized at the same execution point.
    ///
    /// Must only be called at a mode boundary (after [`Machine::run_to`]
    /// returned) and before the application ended.
    ///
    /// # Errors
    /// [`MachineError::Xcomp`] if the authoritative component cannot reach
    /// the co-designed instruction count.
    ///
    /// # Panics
    /// Panics if the application already ended.
    pub fn snapshot_into(&mut self, w: &mut Wire) -> Result<(), MachineError> {
        assert!(self.ended.is_none(), "cannot snapshot an ended machine");
        self.xcomp.run_until(self.insns()).map_err(MachineError::Xcomp)?;
        self.state.snapshot_into(w);
        self.tol.snapshot_into(w);
        self.xcomp.snapshot_into(w);
        w.put_u64(self.validations);
        w.put_u64(self.pages_served);
        w.put_u64(self.syscalls);
        Ok(())
    }

    /// Restores from a [`Machine::snapshot_into`] stream. `self` must
    /// have been created with [`Machine::new`] for the same program and
    /// TOL configuration as the snapshotted machine (the [`crate::Engine`]
    /// checkpoint header enforces this with fingerprints; direct callers
    /// are on their own).
    ///
    /// # Errors
    /// Wire decode failures or geometry mismatches.
    pub fn restore_from(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.state.restore_from(r)?;
        self.tol.restore_from(r)?;
        self.xcomp.restore_from(r)?;
        self.validations = r.get_u64()?;
        self.pages_served = r.get_u64()?;
        self.syscalls = r.get_u64()?;
        self.ended = None;
        Ok(())
    }

    /// Validates the co-designed state against the authoritative state.
    /// The authoritative component must already be at the same
    /// instruction count.
    ///
    /// # Errors
    /// [`MachineError::Validation`] with the first difference found.
    pub fn validate(&mut self, compare_flags: bool) -> Result<(), MachineError> {
        self.validations += 1;
        // Materialize lazily deferred flags first (semantically a no-op).
        flags::resolve(&mut self.state, &mut self.tol.pending_flags);
        match self.validate_inner(compare_flags) {
            Ok(()) => {
                self.tol.obs.emit(TraceEventKind::Validation { at_insns: self.insns() });
                Ok(())
            }
            Err(e) => {
                if let MachineError::Validation { at_insns, guest_pc, .. } = &e {
                    self.tol.obs.emit(TraceEventKind::Divergence {
                        at_insns: *at_insns,
                        guest_pc: *guest_pc,
                    });
                }
                Err(e)
            }
        }
    }

    fn validate_inner(&mut self, compare_flags: bool) -> Result<(), MachineError> {
        if let Some(detail) = self.state.first_reg_mismatch(&self.xcomp.state, compare_flags) {
            return Err(MachineError::Validation {
                at_insns: self.insns(),
                guest_pc: self.xcomp.state.eip,
                detail,
            });
        }
        if let Some(addr) = self.state.mem.first_difference(&self.xcomp.state.mem) {
            let got = self.state.mem.read_u8(addr).unwrap_or(0);
            let want = self.xcomp.state.mem.read_u8(addr).unwrap_or(0);
            return Err(MachineError::Validation {
                at_insns: self.insns(),
                guest_pc: self.xcomp.state.eip,
                detail: format!("memory at {addr:#010x}: {got:#04x} != {want:#04x}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};
    use darco_host::sink::NullSink;
    use darco_xcomp::OS_WRITE;

    fn hot() -> TolConfig {
        TolConfig { bbm_threshold: 3, sbm_threshold: 12, ..TolConfig::default() }
    }

    #[test]
    fn coupled_run_with_demand_paging_validates() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Esi, 0x0040_0000);
        a.mov_ri(Gpr::Ecx, 200);
        let top = a.here();
        a.store(
            darco_guest::Addr::base_index(Gpr::Esi, Gpr::Ecx, darco_guest::Scale::S4),
            Gpr::Ecx,
            darco_guest::Width::D,
        );
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        let p = a.into_program().with_data(vec![0; 2048]);
        let mut m = Machine::new(hot(), &p);
        let ev = m.run_to(u64::MAX, true, &mut NullSink).unwrap();
        assert_eq!(ev, MachineEvent::Ended { exit_status: None });
        assert!(m.pages_served > 0, "code + data pages must be requested");
        assert!(m.validations >= 1, "end-of-application validation");
    }

    #[test]
    fn syscall_synchronization_transfers_results() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, 30);
        let top = a.here();
        a.push(Gpr::Ecx);
        a.mov_ri(Gpr::Eax, OS_WRITE as i32);
        a.mov_ri(Gpr::Ebx, 1);
        a.mov_ri(Gpr::Ecx, 0x0040_0000);
        a.mov_ri(Gpr::Edx, 3);
        a.syscall();
        a.pop(Gpr::Ecx);
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        let p = a.into_program().with_data(b"ab\n".to_vec());
        let mut m = Machine::new(hot(), &p);
        let ev = m.run_to(u64::MAX, true, &mut NullSink).unwrap();
        assert_eq!(ev, MachineEvent::Ended { exit_status: None });
        assert_eq!(m.syscalls, 30);
        assert_eq!(m.xcomp.output.len(), 90);
        // Syscall retirements are in the count (insns must match xcomp).
        assert_eq!(m.insns(), m.xcomp.insns);
    }

    #[test]
    fn run_to_stops_at_target_and_resumes() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, 1000);
        let top = a.here();
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        let p = a.into_program();
        let mut m = Machine::new(hot(), &p);
        let ev = m.run_to(500, true, &mut NullSink).unwrap();
        assert_eq!(ev, MachineEvent::Reached);
        assert!(m.insns() >= 500 && m.insns() < 900, "stops near target: {}", m.insns());
        // Mid-run validation works.
        m.xcomp.run_until(m.insns()).unwrap();
        m.validate(true).unwrap();
        let ev = m.run_to(u64::MAX, true, &mut NullSink).unwrap();
        assert_eq!(ev, MachineEvent::Ended { exit_status: None });
    }

    #[test]
    fn guest_fault_is_synchronized() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Eax, 5);
        a.mov_ri(Gpr::Ebx, 0);
        a.emit(darco_guest::Insn::Idiv { dst: Gpr::Eax, src: Gpr::Ebx });
        a.halt();
        let p = a.into_program();
        let mut m = Machine::new(hot(), &p);
        let ev = m.run_to(u64::MAX, true, &mut NullSink).unwrap();
        assert!(matches!(ev, MachineEvent::GuestFault(Fault::DivByZero { .. })));
    }

    #[test]
    fn planted_bug_is_caught_by_validation() {
        use darco_tol::{BugKind, Injection};
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ecx, 300);
        let top = a.here();
        a.alu_ri(darco_guest::AluOp::Add, Gpr::Eax, 7);
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
        a.halt();
        let p = a.into_program();
        let mut cfg = hot();
        cfg.injection = Some(Injection {
            kind: BugKind::TranslatorWrongConstant,
            translation_ordinal: 0,
        });
        let mut m = Machine::new(cfg, &p);
        let err = m.run_to(u64::MAX, true, &mut NullSink).unwrap_err();
        assert!(matches!(err, MachineError::Validation { .. }), "{err}");
    }
}
