//! # The authoritative guest component (DARCO's "x86 component")
//!
//! A full-system functional emulator for the guest ISA (paper §V: "runs an
//! unmodified operating system and is the only component that interacts
//! with the operating system"). In this reproduction the operating system
//! is OS-lite ([`os`]): a deterministic syscall layer (exit/write/read/
//! sbrk/time/getpid) with demand paging — the co-designed component models
//! user code only, so everything system-level lives here.
//!
//! The component keeps the **authoritative architectural and memory
//! state**. The controller (in the `darco` crate) drives it to the same
//! execution point as the co-designed component (measured in retired guest
//! instructions — deterministic execution makes the two streams
//! identical), then serves data requests, executes system calls, and
//! validates the co-designed state against this one.

pub mod os;
pub mod process;

pub use os::{SyscallOutcome, OS_EXIT, OS_GETPID, OS_READ, OS_SBRK, OS_TIME, OS_WRITE};
pub use process::ProcessTracker;

use darco_guest::exec::{self, Next};
use darco_guest::insn::Insn;
use darco_guest::{DecodeCache, Fault, GuestProgram, GuestState};

/// Errors from driving the authoritative component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XcompError {
    /// The guest program faulted (bad opcode / division by zero).
    GuestFault(Fault),
    /// The component was asked to run past a halt/exit.
    RanPastEnd,
    /// The controller expected a syscall here but found something else.
    ProtocolMismatch(&'static str),
}

impl std::fmt::Display for XcompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XcompError::GuestFault(fa) => write!(f, "authoritative guest fault: {fa}"),
            XcompError::RanPastEnd => write!(f, "ran past end of application"),
            XcompError::ProtocolMismatch(m) => write!(f, "protocol mismatch: {m}"),
        }
    }
}

impl std::error::Error for XcompError {}

/// The authoritative full-system component.
#[derive(Debug, Clone)]
pub struct XComponent {
    /// The authoritative architectural state.
    pub state: GuestState,
    /// Retired guest instructions (syscalls count as one; `halt` does
    /// not retire).
    pub insns: u64,
    /// Process tracker (the paper's CR3-based tracker).
    pub tracker: ProcessTracker,
    /// Captured stdout of the guest.
    pub output: Vec<u8>,
    os: os::OsState,
    halted: bool,
    exited: Option<u32>,
    /// Predecoded guest-block cache backing the replay loop.
    decode: DecodeCache,
}

impl XComponent {
    /// Launches a program: boots the full image and initializes the
    /// process tracker (the paper's EXECVE pause point).
    pub fn new(program: &GuestProgram) -> XComponent {
        XComponent {
            state: GuestState::boot(program),
            insns: 0,
            tracker: ProcessTracker::new(&program.name),
            output: Vec::new(),
            os: os::OsState::new(program),
            halted: false,
            exited: None,
            decode: DecodeCache::new(),
        }
    }

    /// The initial architectural state (registers only) the controller
    /// forwards to the co-designed component during Initialization.
    pub fn initial_regs(&self) -> GuestState {
        let mut st = GuestState::new();
        st.copy_regs_from(&self.state);
        st
    }

    /// Whether the application has ended (halt or exit syscall).
    pub fn ended(&self) -> bool {
        self.halted || self.exited.is_some()
    }

    /// Exit status, if the program exited via syscall.
    pub fn exit_status(&self) -> Option<u32> {
        self.exited
    }

    /// Registers the authoritative component's counters under `prefix`.
    pub fn register_metrics(&self, reg: &mut darco_obs::Registry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.insns"), self.insns);
        reg.set_counter(&format!("{prefix}.output_bytes"), self.output.len() as u64);
        reg.set_counter(&format!("{prefix}.asid"), self.tracker.asid() as u64);
    }

    /// Serializes the authoritative component: architectural state,
    /// retired-instruction count, captured output, kernel state and the
    /// ended/exited markers. The process tracker (derived from the program
    /// name) and the predecode cache (a pure cache) are re-materialized on
    /// restore, not serialized.
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        self.state.snapshot_into(w);
        w.put_u64(self.insns);
        w.put_bytes(&self.output);
        self.os.snapshot_into(w);
        w.put_bool(self.halted);
        match self.exited {
            Some(code) => {
                w.put_bool(true);
                w.put_u32(code);
            }
            None => w.put_bool(false),
        }
    }

    /// Restores the component from an [`XComponent::snapshot_into`]
    /// stream. `self` must have been created with [`XComponent::new`] for
    /// the same program the snapshot was taken from (the engine enforces
    /// this with a program fingerprint); the predecode cache starts cold.
    ///
    /// # Errors
    /// Propagates wire decode failures.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        self.state.restore_from(r)?;
        self.insns = r.get_u64()?;
        self.output = r.get_bytes()?;
        self.os.restore_from(r)?;
        self.halted = r.get_bool()?;
        self.exited = if r.get_bool()? { Some(r.get_u32()?) } else { None };
        self.decode = DecodeCache::new();
        Ok(())
    }

    /// Runs until exactly `count` guest instructions have retired
    /// (executing any system calls encountered on the way). Stops early —
    /// with an error — if the application ends first.
    ///
    /// # Errors
    /// Returns [`XcompError::GuestFault`] on a program error, and
    /// [`XcompError::RanPastEnd`] if `count` lies beyond program end.
    pub fn run_until(&mut self, count: u64) -> Result<(), XcompError> {
        while self.insns < count {
            if self.ended() {
                return Err(XcompError::RanPastEnd);
            }
            self.run_block(count - self.insns)?;
        }
        Ok(())
    }

    /// Executes the system call the guest is stopped at, returning its
    /// outcome (used by the controller's Synchronization phase).
    ///
    /// # Errors
    /// [`XcompError::ProtocolMismatch`] if the next instruction is not a
    /// syscall.
    pub fn exec_syscall(&mut self) -> Result<SyscallOutcome, XcompError> {
        match exec::fetch(&self.state.mem, self.state.eip) {
            Ok((Insn::Syscall, len)) => {
                self.state.eip = self.state.eip.wrapping_add(len);
                self.insns += 1;
                let outcome = os::do_syscall(&mut self.state, &mut self.os, &mut self.output);
                if let SyscallOutcome::Exit(code) = outcome {
                    self.exited = Some(code);
                }
                Ok(outcome)
            }
            _ => Err(XcompError::ProtocolMismatch("expected syscall")),
        }
    }

    /// Confirms the guest is stopped at `halt` and marks the application
    /// ended.
    ///
    /// # Errors
    /// [`XcompError::ProtocolMismatch`] if the next instruction is not
    /// `halt`.
    pub fn confirm_halt(&mut self) -> Result<(), XcompError> {
        match exec::fetch(&self.state.mem, self.state.eip) {
            Ok((Insn::Halt, _)) => {
                self.halted = true;
                Ok(())
            }
            _ => Err(XcompError::ProtocolMismatch("expected halt")),
        }
    }

    /// Returns a copy of the page containing `addr`, demand-mapping it
    /// first (OS behaviour) if needed — this serves the co-designed
    /// component's *data request*.
    pub fn page_for(&mut self, addr: u32) -> Vec<u8> {
        let page = darco_guest::GuestMem::page_of(addr);
        self.state.mem.map_zero(page);
        self.state.mem.page(page).expect("just mapped").to_vec()
    }

    /// Replays (up to) one predecoded basic block — at most `budget`
    /// retired instructions — with transparent syscall handling and
    /// demand paging. The hot-path counterpart of stepping one
    /// instruction at a time: each block is decoded once and replayed on
    /// every revisit (see `darco_guest::predecode`).
    fn run_block(&mut self, budget: u64) -> Result<(), XcompError> {
        let entry_pc = self.state.eip;
        // Field-level borrows: the block borrows `self.decode`; the replay
        // below only touches the other fields.
        let block = match self.decode.block(&mut self.state.mem, entry_pc) {
            Ok(b) => b,
            Err(Fault::Page(pf)) => {
                // Demand paging on the instruction fetch itself.
                self.state.mem.map_zero(darco_guest::GuestMem::page_of(pf.addr));
                return Ok(());
            }
            Err(f) => return Err(XcompError::GuestFault(f)),
        };
        let mut retired = 0u64;
        let mut pc = entry_pc;
        // A store can overwrite the running block (self-modifying code):
        // re-check the code generation after every retire and bail out so
        // the next entry re-decodes.
        let gen0 = self.state.mem.code_gen();
        for &(ref insn, len) in &block.insns {
            // The inner loop retries faulting accesses after demand
            // paging and re-executes `REP` string instructions in place.
            loop {
                if retired >= budget {
                    return Ok(());
                }
                match insn {
                    Insn::Syscall => {
                        // Counting must match the co-designed side: the
                        // syscall retires as one instruction.
                        self.state.eip = pc.wrapping_add(len);
                        self.insns += 1;
                        let outcome =
                            os::do_syscall(&mut self.state, &mut self.os, &mut self.output);
                        if let SyscallOutcome::Exit(code) = outcome {
                            self.exited = Some(code);
                        }
                        return Ok(());
                    }
                    Insn::Halt => {
                        self.halted = true;
                        return Ok(());
                    }
                    _ => {}
                }
                match exec::exec_insn(&mut self.state, insn, pc, len) {
                    Ok(next) => {
                        self.insns += 1;
                        retired += 1;
                        match next {
                            Next::RepContinue => {
                                self.state.eip = pc;
                                if self.state.mem.code_gen() != gen0 {
                                    return Ok(());
                                }
                                continue;
                            }
                            Next::Seq => {
                                self.state.eip = pc.wrapping_add(len);
                                if insn.ends_block() || self.state.mem.code_gen() != gen0 {
                                    return Ok(());
                                }
                                pc = self.state.eip;
                                break;
                            }
                            Next::Jump(t) => {
                                self.state.eip = t;
                                return Ok(());
                            }
                            Next::Syscall | Next::Halt => {
                                unreachable!("syscall/halt are intercepted before execution")
                            }
                        }
                    }
                    Err(Fault::Page(pf)) => {
                        // Demand paging: the OS maps a zero page and the
                        // access retries. (A real OS would fault on wild
                        // kernel-space addresses; OS-lite is permissive —
                        // see DESIGN.md.)
                        self.state.mem.map_zero(darco_guest::GuestMem::page_of(pf.addr));
                        self.state.eip = pc;
                        continue;
                    }
                    Err(f) => return Err(XcompError::GuestFault(f)),
                }
            }
        }
        // Block cut short at predecode (size cap or faulting tail): the
        // next call re-enters the cache at the current PC.
        Ok(())
    }

    /// Runs until the application ends (halt or exit), up to `max`
    /// instructions.
    ///
    /// # Errors
    /// Propagates guest faults; errors if `max` is exceeded.
    pub fn run_to_end(&mut self, max: u64) -> Result<(), XcompError> {
        while !self.ended() {
            if self.insns >= max {
                return Err(XcompError::RanPastEnd);
            }
            self.run_block(max - self.insns)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::reg::{Addr, Cond};
    use darco_guest::{Asm, Gpr};

    #[test]
    fn runs_to_halt_and_counts() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Eax, 1);
        a.mov_ri(Gpr::Ebx, 2);
        a.add_rr(Gpr::Eax, Gpr::Ebx);
        a.halt();
        let p = a.into_program();
        let mut x = XComponent::new(&p);
        x.run_to_end(1000).unwrap();
        assert_eq!(x.insns, 3);
        assert_eq!(x.state.gpr(Gpr::Eax), 3);
        assert!(x.ended());
    }

    #[test]
    fn run_until_stops_exactly() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        for _ in 0..10 {
            a.inc(Gpr::Eax);
        }
        a.halt();
        let p = a.into_program();
        let mut x = XComponent::new(&p);
        x.run_until(4).unwrap();
        assert_eq!(x.state.gpr(Gpr::Eax), 4);
        x.run_until(10).unwrap();
        assert_eq!(x.state.gpr(Gpr::Eax), 10);
    }

    #[test]
    fn write_syscall_captures_output() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Eax, OS_WRITE as i32);
        a.mov_ri(Gpr::Ebx, 1);
        a.mov_ri(Gpr::Ecx, 0x0040_0000);
        a.mov_ri(Gpr::Edx, 5);
        a.syscall();
        a.halt();
        let p = a.into_program().with_data(b"hello world".to_vec());
        let mut x = XComponent::new(&p);
        // Run to the syscall (4 movs), then execute it.
        x.run_until(4).unwrap();
        let out = x.exec_syscall().unwrap();
        assert!(matches!(out, SyscallOutcome::Ok { .. }));
        assert_eq!(&x.output, b"hello");
        assert_eq!(x.state.gpr(Gpr::Eax), 5, "write returns length");
        assert_eq!(x.insns, 5, "the syscall retired");
    }

    #[test]
    fn sbrk_read_and_time_are_deterministic() {
        let build = || {
            let mut a = Asm::new(DEFAULT_CODE_BASE);
            // sbrk(4096) -> EAX = old brk
            a.mov_ri(Gpr::Eax, OS_SBRK as i32);
            a.mov_ri(Gpr::Ebx, 4096);
            a.syscall();
            a.mov_rr(Gpr::Esi, Gpr::Eax);
            // read(0, heap, 4)
            a.mov_ri(Gpr::Eax, OS_READ as i32);
            a.mov_ri(Gpr::Ebx, 0);
            a.mov_rr(Gpr::Ecx, Gpr::Esi);
            a.mov_ri(Gpr::Edx, 4);
            a.syscall();
            a.load(Gpr::Edi, Addr::base(Gpr::Esi));
            // time()
            a.mov_ri(Gpr::Eax, OS_TIME as i32);
            a.syscall();
            a.halt();
            a.into_program().with_input(vec![0x11, 0x22, 0x33, 0x44])
        };
        let run = |p: &darco_guest::GuestProgram| {
            let mut x = XComponent::new(p);
            x.run_to_end(10_000).unwrap();
            x
        };
        let p = build();
        let x1 = run(&p);
        let x2 = run(&p);
        assert_eq!(x1.state.gpr(Gpr::Edi), 0x4433_2211);
        assert_eq!(x1.state.gpr(Gpr::Eax), x2.state.gpr(Gpr::Eax), "time is deterministic");
    }

    #[test]
    fn exit_syscall_ends_program() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Eax, OS_EXIT as i32);
        a.mov_ri(Gpr::Ebx, 7);
        a.syscall();
        a.nop(); // never reached
        let p = a.into_program();
        let mut x = XComponent::new(&p);
        x.run_to_end(100).unwrap();
        assert_eq!(x.exit_status(), Some(7));
    }

    #[test]
    fn demand_paging_on_wild_access() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ebx, 0x0A00_0000);
        a.store(Addr::base(Gpr::Ebx), Gpr::Eax, darco_guest::Width::D);
        let l = a.label();
        a.jcc_to(Cond::E, l);
        a.bind(l);
        a.halt();
        let p = a.into_program();
        let mut x = XComponent::new(&p);
        x.run_to_end(100).unwrap();
        assert!(x.state.mem.is_mapped(0x0A00_0000));
    }

    #[test]
    fn snapshot_mid_run_resumes_identically() {
        let build = || {
            let mut a = Asm::new(DEFAULT_CODE_BASE);
            // Alternate computation and syscalls so kernel state matters.
            a.mov_ri(Gpr::Eax, OS_SBRK as i32);
            a.mov_ri(Gpr::Ebx, 64);
            a.syscall();
            a.mov_ri(Gpr::Ecx, 50);
            let top = a.here();
            a.add_rr(Gpr::Edx, Gpr::Ecx);
            a.dec(Gpr::Ecx);
            a.jcc_to(Cond::Ne, top);
            a.mov_ri(Gpr::Eax, OS_TIME as i32);
            a.syscall();
            a.halt();
            a.into_program().with_input(vec![5, 6])
        };
        let p = build();
        let mut full = XComponent::new(&p);
        full.run_to_end(100_000).unwrap();

        let mut x = XComponent::new(&p);
        x.run_until(40).unwrap();
        let mut w = darco_guest::Wire::new();
        x.snapshot_into(&mut w);
        let bytes = w.finish();

        let mut y = XComponent::new(&p);
        let mut r = darco_guest::WireReader::new(&bytes);
        y.restore_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(y.insns, 40);
        y.run_to_end(100_000).unwrap();
        assert_eq!(y.insns, full.insns);
        assert_eq!(y.state.first_reg_mismatch(&full.state, true), None);
        assert_eq!(y.state.mem.first_difference(&full.state.mem), None);
        assert_eq!(y.output, full.output);
        assert_eq!(y.exit_status(), full.exit_status());
    }

    #[test]
    fn page_for_serves_data_requests() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.halt();
        let p = a.into_program().with_data(vec![9u8; 16]);
        let mut x = XComponent::new(&p);
        let page = x.page_for(p.data_base + 3);
        assert_eq!(page.len(), darco_guest::PAGE_SIZE as usize);
        assert_eq!(page[3], 9);
        // Unmapped page: demand-mapped zero.
        let page = x.page_for(0x0777_7000);
        assert!(page.iter().all(|&b| b == 0));
    }
}
