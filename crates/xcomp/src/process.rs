//! Process tracking — the paper's CR3-based tracker.
//!
//! DARCO's x86 component runs a whole OS; a *process tracker* initialized
//! with the application's Control Register 3 value distinguishes the
//! traced process from everything else running on top of the OS (§V-A).
//! OS-lite runs a single process, but the tracker is kept for protocol
//! fidelity: every synchronization message carries the address-space id
//! and the controller rejects mismatches.


/// Tracks the traced process by its address-space identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessTracker {
    asid: u32,
    name: String,
}

impl ProcessTracker {
    /// Initializes the tracker for a named program (the CR3 analog is a
    /// deterministic hash of the name).
    pub fn new(name: &str) -> ProcessTracker {
        ProcessTracker { asid: asid_of(name), name: name.to_string() }
    }

    /// The address-space id (CR3 analog).
    pub fn asid(&self) -> u32 {
        self.asid
    }

    /// Whether a synchronization message with this id belongs to the
    /// traced process.
    pub fn matches(&self, asid: u32) -> bool {
        self.asid == asid
    }

    /// The traced program's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Deterministic FNV-1a hash of the program name.
fn asid_of(name: &str) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h | 1 // never zero
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_distinguishes_processes() {
        let a = ProcessTracker::new("400.perlbench");
        let b = ProcessTracker::new("401.bzip2");
        assert_ne!(a.asid(), b.asid());
        assert!(a.matches(a.asid()));
        assert!(!a.matches(b.asid()));
        assert_ne!(a.asid(), 0);
    }

    #[test]
    fn asid_is_deterministic() {
        assert_eq!(ProcessTracker::new("x").asid(), ProcessTracker::new("x").asid());
    }
}
