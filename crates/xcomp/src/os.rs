//! OS-lite: the deterministic system-call layer of the authoritative
//! component.
//!
//! ABI: syscall number in `EAX`, arguments in `EBX`/`ECX`/`EDX`, result in
//! `EAX`. Everything is deterministic (the `time` syscall is a counter),
//! so the DARCO execution-flow protocol can replay runs exactly.

use darco_guest::{GuestProgram, GuestState, Gpr, PAGE_SIZE};

/// `exit(status)`.
pub const OS_EXIT: u32 = 1;
/// `write(fd, buf, len) -> len` (fd 1/2 captured as output).
pub const OS_WRITE: u32 = 2;
/// `read(fd, buf, len) -> n` from the program's deterministic input.
pub const OS_READ: u32 = 3;
/// `sbrk(delta) -> old_brk`.
pub const OS_SBRK: u32 = 4;
/// `time() -> deterministic counter`.
pub const OS_TIME: u32 = 5;
/// `getpid() -> 42`.
pub const OS_GETPID: u32 = 6;

/// Outcome of a system call, reported to the controller so it can update
/// the co-designed component's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// Normal completion. `modified` lists guest memory ranges the kernel
    /// wrote (the controller refreshes co-designed copies of those pages).
    Ok {
        /// `(address, length)` ranges written by the kernel.
        modified: Vec<(u32, u32)>,
    },
    /// The program exited with a status code.
    Exit(u32),
}

/// Mutable kernel state.
#[derive(Debug, Clone)]
pub struct OsState {
    brk: u32,
    input: Vec<u8>,
    input_pos: usize,
    time: u64,
}

impl OsState {
    /// Creates kernel state for a program.
    pub fn new(program: &GuestProgram) -> OsState {
        OsState { brk: program.brk_base, input: program.input.clone(), input_pos: 0, time: 0 }
    }

    /// Serializes the kernel state (brk, input stream + cursor, time
    /// counter) into `w`.
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_u32(self.brk);
        w.put_bytes(&self.input);
        w.put_usize(self.input_pos);
        w.put_u64(self.time);
    }

    /// Restores kernel state from an [`OsState::snapshot_into`] stream.
    ///
    /// # Errors
    /// Propagates wire decode failures.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        self.brk = r.get_u32()?;
        self.input = r.get_bytes()?;
        self.input_pos = r.get_usize()?;
        self.time = r.get_u64()?;
        Ok(())
    }
}

/// Executes one system call against the authoritative state. `EIP` must
/// already be advanced past the `syscall` instruction.
pub fn do_syscall(st: &mut GuestState, os: &mut OsState, output: &mut Vec<u8>) -> SyscallOutcome {
    let nr = st.gpr(Gpr::Eax);
    let a1 = st.gpr(Gpr::Ebx);
    let a2 = st.gpr(Gpr::Ecx);
    let a3 = st.gpr(Gpr::Edx);
    match nr {
        OS_EXIT => return SyscallOutcome::Exit(a1),
        OS_WRITE => {
            let len = a3.min(1 << 20);
            let mut written = 0u32;
            for i in 0..len {
                match st.mem.read_u8(a2.wrapping_add(i)) {
                    Ok(b) => {
                        if a1 == 1 || a1 == 2 {
                            output.push(b);
                        }
                        written += 1;
                    }
                    Err(_) => break, // EFAULT-style partial write
                }
            }
            st.set_gpr(Gpr::Eax, written);
        }
        OS_READ => {
            let len = a3.min(1 << 20);
            let mut read = 0u32;
            let mut modified = Vec::new();
            for i in 0..len {
                let Some(&b) = os.input.get(os.input_pos) else { break };
                let addr = a2.wrapping_add(i);
                st.mem.map_zero(darco_guest::GuestMem::page_of(addr));
                st.mem.write_u8(addr, b).expect("just mapped");
                os.input_pos += 1;
                read += 1;
            }
            if read > 0 {
                modified.push((a2, read));
            }
            st.set_gpr(Gpr::Eax, read);
            return SyscallOutcome::Ok { modified };
        }
        OS_SBRK => {
            let old = os.brk;
            let delta = a1 as i32;
            let new = (old as i64 + delta as i64).clamp(0, u32::MAX as i64) as u32;
            // Map the grown range eagerly (zero pages).
            if new > old {
                let first = darco_guest::GuestMem::page_of(old);
                let last = darco_guest::GuestMem::page_of(new.saturating_sub(1).max(old));
                for p in first..=last {
                    st.mem.map_zero(p);
                }
            }
            os.brk = new;
            st.set_gpr(Gpr::Eax, old);
        }
        OS_TIME => {
            os.time += 1000;
            st.set_gpr(Gpr::Eax, os.time as u32);
        }
        OS_GETPID => st.set_gpr(Gpr::Eax, 42),
        _ => st.set_gpr(Gpr::Eax, u32::MAX), // ENOSYS
    }
    SyscallOutcome::Ok { modified: Vec::new() }
}

/// Bytes per page, re-exported for convenience in protocol code.
pub const OS_PAGE: u32 = PAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::Asm;

    fn state_with(nr: u32, a1: u32, a2: u32, a3: u32) -> (GuestState, OsState) {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.halt();
        let p = a.into_program().with_input(vec![1, 2, 3]);
        let mut st = GuestState::boot(&p);
        st.set_gpr(Gpr::Eax, nr);
        st.set_gpr(Gpr::Ebx, a1);
        st.set_gpr(Gpr::Ecx, a2);
        st.set_gpr(Gpr::Edx, a3);
        (st, OsState::new(&p))
    }

    #[test]
    fn unknown_syscall_returns_enosys() {
        let (mut st, mut os) = state_with(999, 0, 0, 0);
        let mut out = Vec::new();
        do_syscall(&mut st, &mut os, &mut out);
        assert_eq!(st.gpr(Gpr::Eax), u32::MAX);
    }

    #[test]
    fn read_reports_modified_ranges() {
        let (mut st, mut os) = state_with(OS_READ, 0, 0x0500_0000, 8);
        let mut out = Vec::new();
        let o = do_syscall(&mut st, &mut os, &mut out);
        assert_eq!(st.gpr(Gpr::Eax), 3, "only 3 input bytes available");
        assert_eq!(o, SyscallOutcome::Ok { modified: vec![(0x0500_0000, 3)] });
        assert_eq!(st.mem.read_u8(0x0500_0001).unwrap(), 2);
    }

    #[test]
    fn sbrk_grows_and_maps() {
        let (mut st, mut os) = state_with(OS_SBRK, 2 * PAGE_SIZE, 0, 0);
        let brk0 = os.brk;
        let mut out = Vec::new();
        do_syscall(&mut st, &mut os, &mut out);
        assert_eq!(st.gpr(Gpr::Eax), brk0);
        assert_eq!(os.brk, brk0 + 2 * PAGE_SIZE);
        assert!(st.mem.is_mapped(brk0));
        assert!(st.mem.is_mapped(brk0 + 2 * PAGE_SIZE - 1));
    }

    #[test]
    fn write_to_nonstd_fd_is_counted_but_discarded() {
        let (mut st, mut os) = state_with(OS_WRITE, 9, DEFAULT_CODE_BASE, 2);
        let mut out = Vec::new();
        do_syscall(&mut st, &mut os, &mut out);
        assert_eq!(st.gpr(Gpr::Eax), 2);
        assert!(out.is_empty());
    }
}
