//! Property-based round-trip tests for the host instruction encoding.

use darco_guest::Width;
use darco_host::{decode_insn, encode_insn, FAluOp, FCmpOp, FUnOp2, HAluOp, HFreg, HInsn, HReg};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = HReg> {
    (0u8..64).prop_map(HReg)
}

fn freg() -> impl Strategy<Value = HFreg> {
    (0u8..64).prop_map(HFreg)
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B), Just(Width::W), Just(Width::D)]
}

fn insn() -> impl Strategy<Value = HInsn> {
    prop_oneof![
        (0usize..HAluOp::ALL.len(), reg(), reg(), reg())
            .prop_map(|(o, rd, ra, rb)| HInsn::Alu { op: HAluOp::from_index(o), rd, ra, rb }),
        (0usize..HAluOp::ALL.len(), reg(), reg(), -2048i16..2048)
            .prop_map(|(o, rd, ra, imm)| HInsn::AluI { op: HAluOp::from_index(o), rd, ra, imm }),
        (reg(), any::<u16>()).prop_map(|(rd, imm)| HInsn::Lui { rd, imm }),
        (reg(), any::<u16>()).prop_map(|(rd, imm)| HInsn::OriZ { rd, imm }),
        (reg(), any::<i16>()).prop_map(|(rd, imm)| HInsn::Li16 { rd, imm }),
        (reg(), reg(), -2048i32..2048, width(), any::<bool>(), any::<bool>(), any::<u16>())
            .prop_map(|(rd, base, off, width, sign, spec, seq)| HInsn::Load {
                rd,
                base,
                off,
                width,
                // 32-bit loads have no extension; the encoding canonicalizes
                // their sign bit to false.
                sign: sign && width != Width::D,
                spec,
                seq: if spec { seq } else { 0 },
            }),
        (reg(), reg(), -2048i32..2048, width(), any::<bool>(), any::<u16>())
            .prop_map(|(rs, base, off, width, spec, seq)| HInsn::Store {
                rs, base, off, width, spec, seq: if spec { seq } else { 0 },
            }),
        (freg(), reg(), -2048i32..2048, any::<bool>(), any::<u16>())
            .prop_map(|(fd, base, off, spec, seq)| HInsn::LoadF {
                fd, base, off, spec, seq: if spec { seq } else { 0 },
            }),
        (freg(), reg(), -2048i32..2048, any::<bool>(), any::<u16>())
            .prop_map(|(fs, base, off, spec, seq)| HInsn::StoreF {
                fs, base, off, spec, seq: if spec { seq } else { 0 },
            }),
        (-(1i32 << 23)..(1 << 23)).prop_map(|rel| HInsn::B { rel }),
        (-(1i32 << 23)..(1 << 23)).prop_map(|rel| HInsn::Bl { rel }),
        (reg(), -(1i32 << 17)..(1 << 17)).prop_map(|(rs, rel)| HInsn::Bz { rs, rel }),
        (reg(), -(1i32 << 17)..(1 << 17)).prop_map(|(rs, rel)| HInsn::Bnz { rs, rel }),
        Just(HInsn::Blr),
        (0usize..FAluOp::ALL.len(), freg(), freg(), freg())
            .prop_map(|(o, fd, fa, fb)| HInsn::FAlu { op: FAluOp::from_index(o), fd, fa, fb }),
        (0usize..FUnOp2::ALL.len(), freg(), freg())
            .prop_map(|(o, fd, fa)| HInsn::FUn { op: FUnOp2::from_index(o), fd, fa }),
        (0usize..FCmpOp::ALL.len(), reg(), freg(), freg())
            .prop_map(|(o, rd, fa, fb)| HInsn::FCmp { op: FCmpOp::from_index(o), rd, fa, fb }),
        (freg(), reg()).prop_map(|(fd, ra)| HInsn::CvtIF { fd, ra }),
        (reg(), freg()).prop_map(|(rd, fa)| HInsn::CvtFI { rd, fa }),
        (freg(), any::<u64>()).prop_map(|(fd, bits)| HInsn::FLoadImm { fd, bits }),
        Just(HInsn::Chkpt),
        Just(HInsn::Commit),
        reg().prop_map(|rs| HInsn::AssertZ { rs }),
        reg().prop_map(|rs| HInsn::AssertNz { rs }),
        any::<u16>().prop_map(|id| HInsn::TolExit { id }),
        any::<u16>().prop_map(|id| HInsn::ChainSlot { id }),
        (reg(), any::<u16>()).prop_map(|(rs, id)| HInsn::IbtcJmp { rs, id }),
        (any::<u16>(), any::<bool>()).prop_map(|(n, sb)| HInsn::Gcnt { n, sb }),
        (0u32..(1 << 24)).prop_map(|idx| HInsn::Count { idx }),
        Just(HInsn::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2000, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_roundtrip(i in insn()) {
        let mut buf = Vec::new();
        encode_insn(&i, &mut buf);
        prop_assert_eq!(buf.len(), i.encoded_words());
        let (got, len) = decode_insn(&buf).unwrap();
        prop_assert_eq!(got, i);
        prop_assert_eq!(len, buf.len());
    }

    /// Sequences of instructions decode back as the same sequence
    /// (the encoding is a prefix code over words).
    #[test]
    fn sequences_roundtrip(insns in prop::collection::vec(insn(), 1..40)) {
        let words = darco_host::encode::encode_all(&insns);
        let mut off = 0;
        let mut got = Vec::new();
        while off < words.len() {
            let (i, len) = decode_insn(&words[off..]).unwrap();
            got.push(i);
            off += len;
        }
        prop_assert_eq!(got, insns);
    }
}
