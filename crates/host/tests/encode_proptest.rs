//! Randomized round-trip tests for the host instruction encoding, driven
//! by the internal seeded PRNG (deterministic across runs).

use darco_guest::prng::{Rng, SmallRng};
use darco_guest::Width;
use darco_host::{decode_insn, encode_insn, FAluOp, FCmpOp, FUnOp2, HAluOp, HFreg, HInsn, HReg};

fn reg(rng: &mut SmallRng) -> HReg {
    HReg(rng.gen_range(0u8..64))
}

fn freg(rng: &mut SmallRng) -> HFreg {
    HFreg(rng.gen_range(0u8..64))
}

fn width(rng: &mut SmallRng) -> Width {
    [Width::B, Width::W, Width::D][rng.gen_range(0usize..3)]
}

/// One random instruction, covering every `HInsn` variant.
fn insn(rng: &mut SmallRng) -> HInsn {
    match rng.gen_range(0u32..30) {
        0 => HInsn::Alu {
            op: HAluOp::from_index(rng.gen_range(0..HAluOp::ALL.len())),
            rd: reg(rng),
            ra: reg(rng),
            rb: reg(rng),
        },
        1 => HInsn::AluI {
            op: HAluOp::from_index(rng.gen_range(0..HAluOp::ALL.len())),
            rd: reg(rng),
            ra: reg(rng),
            imm: rng.gen_range(-2048i16..2048),
        },
        2 => HInsn::Lui { rd: reg(rng), imm: rng.gen() },
        3 => HInsn::OriZ { rd: reg(rng), imm: rng.gen() },
        4 => HInsn::Li16 { rd: reg(rng), imm: rng.gen() },
        5 => {
            let w = width(rng);
            let spec = rng.gen();
            HInsn::Load {
                rd: reg(rng),
                base: reg(rng),
                off: rng.gen_range(-2048i32..2048),
                width: w,
                // 32-bit loads have no extension; the encoding
                // canonicalizes their sign bit to false.
                sign: rng.gen::<bool>() && w != Width::D,
                spec,
                seq: if spec { rng.gen() } else { 0 },
            }
        }
        6 => {
            let spec = rng.gen();
            HInsn::Store {
                rs: reg(rng),
                base: reg(rng),
                off: rng.gen_range(-2048i32..2048),
                width: width(rng),
                spec,
                seq: if spec { rng.gen() } else { 0 },
            }
        }
        7 => {
            let spec = rng.gen();
            HInsn::LoadF {
                fd: freg(rng),
                base: reg(rng),
                off: rng.gen_range(-2048i32..2048),
                spec,
                seq: if spec { rng.gen() } else { 0 },
            }
        }
        8 => {
            let spec = rng.gen();
            HInsn::StoreF {
                fs: freg(rng),
                base: reg(rng),
                off: rng.gen_range(-2048i32..2048),
                spec,
                seq: if spec { rng.gen() } else { 0 },
            }
        }
        9 => HInsn::B { rel: rng.gen_range(-(1i32 << 23)..(1 << 23)) },
        10 => HInsn::Bl { rel: rng.gen_range(-(1i32 << 23)..(1 << 23)) },
        11 => HInsn::Bz { rs: reg(rng), rel: rng.gen_range(-(1i32 << 17)..(1 << 17)) },
        12 => HInsn::Bnz { rs: reg(rng), rel: rng.gen_range(-(1i32 << 17)..(1 << 17)) },
        13 => HInsn::Blr,
        14 => HInsn::FAlu {
            op: FAluOp::from_index(rng.gen_range(0..FAluOp::ALL.len())),
            fd: freg(rng),
            fa: freg(rng),
            fb: freg(rng),
        },
        15 => HInsn::FUn {
            op: FUnOp2::from_index(rng.gen_range(0..FUnOp2::ALL.len())),
            fd: freg(rng),
            fa: freg(rng),
        },
        16 => HInsn::FCmp {
            op: FCmpOp::from_index(rng.gen_range(0..FCmpOp::ALL.len())),
            rd: reg(rng),
            fa: freg(rng),
            fb: freg(rng),
        },
        17 => HInsn::CvtIF { fd: freg(rng), ra: reg(rng) },
        18 => HInsn::CvtFI { rd: reg(rng), fa: freg(rng) },
        19 => HInsn::FLoadImm { fd: freg(rng), bits: rng.gen() },
        20 => HInsn::Chkpt,
        21 => HInsn::Commit,
        22 => HInsn::AssertZ { rs: reg(rng) },
        23 => HInsn::AssertNz { rs: reg(rng) },
        24 => HInsn::TolExit { id: rng.gen() },
        25 => HInsn::ChainSlot { id: rng.gen() },
        26 => HInsn::IbtcJmp { rs: reg(rng), id: rng.gen() },
        27 => HInsn::Gcnt { n: rng.gen(), sb: rng.gen() },
        28 => HInsn::Count { idx: rng.gen_range(0u32..(1 << 24)) },
        _ => HInsn::Nop,
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x4057_E4C0);
    for _ in 0..20_000 {
        let i = insn(&mut rng);
        let mut buf = Vec::new();
        encode_insn(&i, &mut buf);
        assert_eq!(buf.len(), i.encoded_words());
        let (got, len) = decode_insn(&buf).unwrap();
        assert_eq!(got, i);
        assert_eq!(len, buf.len());
    }
}

/// Sequences of instructions decode back as the same sequence
/// (the encoding is a prefix code over words).
#[test]
fn sequences_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x4057_5EC5);
    for _ in 0..500 {
        let n = rng.gen_range(1usize..40);
        let insns: Vec<HInsn> = (0..n).map(|_| insn(&mut rng)).collect();
        let words = darco_host::encode::encode_all(&insns);
        let mut off = 0;
        let mut got = Vec::new();
        while off < words.len() {
            let (i, len) = decode_insn(&words[off..]).unwrap();
            got.push(i);
            off += len;
        }
        assert_eq!(got, insns);
    }
}
