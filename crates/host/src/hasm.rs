//! Host-code assembler with label resolution.
//!
//! Branch `rel` fields are in instruction slots relative to the *next*
//! instruction. [`HAsm`] lets the runtime routines and tests write host
//! code with labels; the TOL code generator builds instruction vectors
//! directly.

use crate::insn::HInsn;
use crate::regs::HReg;

/// A label into host code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HLabel(usize);

#[derive(Debug)]
enum PendKind {
    B,
    Bl,
    Bz(HReg),
    Bnz(HReg),
}

/// Host assembler.
#[derive(Debug, Default)]
pub struct HAsm {
    code: Vec<HInsn>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, PendKind, HLabel)>,
}

impl HAsm {
    /// Creates an empty assembler.
    pub fn new() -> HAsm {
        HAsm::default()
    }

    /// Current position (instruction index).
    pub fn pos(&self) -> usize {
        self.code.len()
    }

    /// Emits an instruction.
    pub fn push(&mut self, insn: HInsn) {
        self.code.push(insn);
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> HLabel {
        self.labels.push(None);
        HLabel(self.labels.len() - 1)
    }

    /// Binds `label` here.
    ///
    /// # Panics
    /// Panics if already bound.
    pub fn bind(&mut self, label: HLabel) {
        assert!(self.labels[label.0].is_none(), "host label bound twice");
        self.labels[label.0] = Some(self.pos());
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> HLabel {
        let l = self.label();
        self.bind(l);
        l
    }

    /// `b label`.
    pub fn b_to(&mut self, label: HLabel) {
        self.fixups.push((self.pos(), PendKind::B, label));
        self.code.push(HInsn::B { rel: 0 });
    }

    /// `bl label`.
    pub fn bl_to(&mut self, label: HLabel) {
        self.fixups.push((self.pos(), PendKind::Bl, label));
        self.code.push(HInsn::Bl { rel: 0 });
    }

    /// `bz rs, label`.
    pub fn bz_to(&mut self, rs: HReg, label: HLabel) {
        self.fixups.push((self.pos(), PendKind::Bz(rs), label));
        self.code.push(HInsn::Bz { rs, rel: 0 });
    }

    /// `bnz rs, label`.
    pub fn bnz_to(&mut self, rs: HReg, label: HLabel) {
        self.fixups.push((self.pos(), PendKind::Bnz(rs), label));
        self.code.push(HInsn::Bnz { rs, rel: 0 });
    }

    /// Resolves labels and returns the code.
    ///
    /// # Panics
    /// Panics if a referenced label is unbound.
    pub fn finish(mut self) -> Vec<HInsn> {
        for (at, kind, label) in self.fixups.drain(..) {
            let target = self.labels[label.0].expect("branch to unbound host label");
            let rel = target as i32 - (at as i32 + 1);
            self.code[at] = match kind {
                PendKind::B => HInsn::B { rel },
                PendKind::Bl => HInsn::Bl { rel },
                PendKind::Bz(rs) => HInsn::Bz { rs, rel },
                PendKind::Bnz(rs) => HInsn::Bnz { rs, rel },
            };
        }
        self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::HInsn;

    #[test]
    fn labels_resolve_to_slot_relative_offsets() {
        let mut a = HAsm::new();
        let top = a.here();
        a.push(HInsn::Nop);
        let end = a.label();
        a.bz_to(HReg(1), end);
        a.b_to(top);
        a.bind(end);
        a.push(HInsn::Blr);
        let code = a.finish();
        // bz at index 1 targets index 3 -> rel = 3 - 2 = 1
        assert_eq!(code[1], HInsn::Bz { rs: HReg(1), rel: 1 });
        // b at index 2 targets index 0 -> rel = 0 - 3 = -3
        assert_eq!(code[2], HInsn::B { rel: -3 });
    }
}
