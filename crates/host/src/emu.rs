//! The transactional host functional emulator.
//!
//! Executes translated host code out of the software layer's code cache.
//! The execution model implements the co-designed speculation support of
//! §III and §V-B of the paper:
//!
//! * **Checkpoints** — `chkpt` commits the running transaction and
//!   snapshots the register files. All stores between checkpoints go to a
//!   *gated store buffer* and reach guest memory only on commit, so any
//!   failure can roll the architectural state back to the last checkpoint.
//! * **Asserts** — `assert.z`/`assert.nz` verify the speculated direction
//!   of a branch that the superblock optimizer removed; a failing assert
//!   rolls back and returns [`ExitCause::AssertFail`], after which the
//!   software layer re-executes the region in interpretation mode.
//! * **Alias detection** — speculatively hoisted loads record
//!   `(address, size, original sequence number)` in a hardware table; a
//!   store whose sequence number is *older* than an already-executed
//!   load's and whose bytes overlap it raises [`ExitCause::AliasFail`].
//!   Store-to-load forwarding is filtered by sequence number, and commit
//!   drains the store buffer in original program order, so the scheduler
//!   may freely reorder memory operations as long as hoisted loads carry
//!   the `spec` mark.
//! * **Precise faults** — guest page faults and division by zero also roll
//!   back to the checkpoint, which is what lets the controller service a
//!   DARCO *data request* and simply re-enter the translation.

use crate::insn::{FAluOp, FCmpOp, FUnOp2, HAluOp, HInsn};
use crate::sink::{EventKind, InsnSink, RetireEvent};
use darco_guest::mem::PageFault;
use darco_guest::{GuestMem, Width};
use std::collections::HashMap;

/// Indirect-branch translation cache: guest address → host address.
pub type IbtcTable = HashMap<u32, usize>;

/// Guest effective address of the software profile counter table (used
/// only to give `count` instructions realistic memory traffic for the
/// timing simulator).
pub const PROF_TABLE_ADDR: u32 = 0xF800_0000;

/// The software layer's profile counter table, updated by `count`
/// instructions. A counter whose `trip` is non-zero causes an exit to the
/// software layer when it reaches that value (hot-region promotion).
#[derive(Debug, Clone, Default)]
pub struct ProfTable {
    /// Counter values.
    pub counts: Vec<u64>,
    /// Trip thresholds (0 = never trips).
    pub trips: Vec<u64>,
}

impl ProfTable {
    /// Creates an empty table.
    pub fn new() -> ProfTable {
        ProfTable::default()
    }

    /// Allocates a counter with the given trip threshold, returning its
    /// index.
    pub fn alloc(&mut self, trip: u64) -> u32 {
        self.counts.push(0);
        self.trips.push(trip);
        (self.counts.len() - 1) as u32
    }

    /// Reads a counter.
    pub fn count(&self, idx: u32) -> u64 {
        self.counts[idx as usize]
    }
}

/// Why execution left the code cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCause {
    /// A `tolexit`, unpatched `chainslot`, or missed `ibtcjmp` with this id.
    Exit { id: u16 },
    /// An assert failed; state was rolled back to the last checkpoint.
    AssertFail,
    /// Speculative memory reordering was wrong; rolled back.
    AliasFail,
    /// A guest page was unmapped; rolled back.
    PageFault {
        /// Faulting guest address.
        addr: u32,
        /// Whether the access was a write.
        write: bool,
    },
    /// Integer division by zero; rolled back (the interpreter re-executes
    /// the region and raises the precise guest fault).
    DivByZero,
    /// A software profile counter reached its trip threshold; the software
    /// layer promotes the region (exit is at a checkpoint boundary).
    ProfileTrip {
        /// The tripped counter's index.
        idx: u32,
    },
    /// The instruction budget ran out; stopped at a checkpoint boundary
    /// with the previous transaction committed.
    Fuel,
    /// A store targeted a marked code page (self-modifying code); rolled
    /// back before the store entered the transaction. The software layer
    /// interprets forward so the write lands with the interpreter's
    /// per-instruction visibility, then flushes stale translations.
    SmcWrite {
        /// Guest address the store targeted.
        addr: u32,
    },
}

/// Result of one [`HostEmulator::execute`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitInfo {
    /// Why execution stopped.
    pub cause: ExitCause,
    /// Host instructions executed (weighted by [`HInsn::dyn_cost`]),
    /// including speculative work that was rolled back.
    pub executed: u64,
    /// Host address (word index) where execution stopped.
    pub host_pc: usize,
    /// Host address of the last checkpoint (the rollback point).
    pub chkpt_pc: usize,
}

/// Aggregate emulator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmuCounters {
    /// Checkpoints taken.
    pub chkpts: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Assert failures.
    pub assert_fails: u64,
    /// Alias-detection failures.
    pub alias_fails: u64,
    /// Page-fault rollbacks.
    pub page_faults: u64,
    /// IBTC hits.
    pub ibtc_hits: u64,
    /// IBTC misses.
    pub ibtc_misses: u64,
    /// Self-modifying-store transaction aborts.
    pub smc_aborts: u64,
}

#[derive(Debug, Clone, Copy)]
struct StoreEnt {
    seq: u16,
    addr: u32,
    len: u8,
    data: u64,
}

/// Outcome of buffering one store (page faults are reported separately).
enum StoreOut {
    /// Buffered.
    Done,
    /// Alias violation against a younger speculative load.
    Alias,
    /// The store targets a marked code page.
    Smc,
}

#[derive(Debug, Clone, Copy)]
struct SpecLoad {
    seq: u16,
    addr: u32,
    len: u8,
}

#[derive(Clone)]
struct Snapshot {
    iregs: [u32; 64],
    fregs: [f64; 64],
    host_pc: usize,
    gcnt_bb: u64,
    gcnt_sb: u64,
}

/// The host functional emulator. Holds the host register files (into which
/// the software layer maps the guest architectural state) and the
/// speculation machinery.
pub struct HostEmulator {
    /// Integer register file.
    pub iregs: [u32; 64],
    /// Floating-point register file.
    pub fregs: [f64; 64],
    /// Aggregate counters.
    pub counters: EmuCounters,
    /// Guest instructions retired in basic-block-mode translations.
    pub gcnt_bb: u64,
    /// Guest instructions retired in superblock-mode translations.
    pub gcnt_sb: u64,
    /// Host instructions attributed to BBM execution (see `gcnt`).
    pub host_bb: u64,
    /// Host instructions attributed to SBM execution.
    pub host_sb: u64,
    pub(crate) unattributed: u64,
    store_buf: Vec<StoreEnt>,
    spec_loads: Vec<SpecLoad>,
    snapshot: Snapshot,
    /// Retire events buffered for block-granular sinks
    /// ([`InsnSink::wants_blocks`]); drained at architectural boundaries.
    block_buf: Vec<RetireEvent>,
}

impl Default for HostEmulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HostEmulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostEmulator")
            .field("counters", &self.counters)
            .field("buffered_stores", &self.store_buf.len())
            .finish()
    }
}

impl HostEmulator {
    /// Creates an emulator with zeroed register files.
    pub fn new() -> HostEmulator {
        HostEmulator {
            iregs: [0; 64],
            fregs: [0.0; 64],
            counters: EmuCounters::default(),
            gcnt_bb: 0,
            gcnt_sb: 0,
            host_bb: 0,
            host_sb: 0,
            unattributed: 0,
            store_buf: Vec::new(),
            spec_loads: Vec::new(),
            block_buf: Vec::new(),
            snapshot: Snapshot {
                iregs: [0; 64],
                fregs: [0.0; 64],
                host_pc: 0,
                gcnt_bb: 0,
                gcnt_sb: 0,
            },
        }
    }

    fn take_snapshot(&mut self, pc: usize) {
        self.snapshot.iregs = self.iregs;
        self.snapshot.fregs = self.fregs;
        self.snapshot.host_pc = pc;
        self.snapshot.gcnt_bb = self.gcnt_bb;
        self.snapshot.gcnt_sb = self.gcnt_sb;
    }

    fn rollback(&mut self) -> usize {
        self.iregs = self.snapshot.iregs;
        self.fregs = self.snapshot.fregs;
        self.gcnt_bb = self.snapshot.gcnt_bb;
        self.gcnt_sb = self.snapshot.gcnt_sb;
        self.store_buf.clear();
        self.spec_loads.clear();
        self.snapshot.host_pc
    }

    /// Drains the host-instruction count not yet attributed to a mode
    /// (work since the last `gcnt`; the caller attributes it by the kind
    /// of the translation execution stopped in).
    pub fn drain_unattributed(&mut self) -> u64 {
        std::mem::take(&mut self.unattributed)
    }

    fn commit(&mut self, mem: &mut GuestMem) {
        // `store_buf` is kept sorted by `seq` at insertion, so commit
        // applies stores in program order without sorting.
        for e in &self.store_buf {
            let bytes = e.data.to_le_bytes();
            mem.write(e.addr, &bytes[..e.len as usize]).expect("store page probed at execute");
        }
        self.store_buf.clear();
        self.spec_loads.clear();
        self.counters.commits += 1;
    }

    /// Reads `len` bytes at `addr` as seen by a memory operation with
    /// original sequence number `seq`: memory overlaid with older buffered
    /// stores, in program order.
    fn read_mem(&self, mem: &GuestMem, addr: u32, len: u8, seq: u16) -> Result<u64, PageFault> {
        let mut buf = [0u8; 8];
        mem.read(addr, &mut buf[..len as usize])?;
        // Overlay forwarding-eligible buffered stores. `store_buf` is
        // sorted by `seq`, so a plain scan forwards in program order and
        // can stop at the first younger store.
        for e in &self.store_buf {
            if e.seq >= seq {
                break;
            }
            if !overlaps(e.addr, e.len, addr, len) {
                continue;
            }
            let d = e.data.to_le_bytes();
            for i in 0..e.len as u64 {
                let a = e.addr as u64 + i;
                if a >= addr as u64 && a < addr as u64 + len as u64 {
                    buf[(a - addr as u64) as usize] = d[i as usize];
                }
            }
        }
        Ok(u64::from_le_bytes(buf))
    }

    /// Buffers a store; checks code-page hits (self-modifying code) and
    /// alias violations against executed speculative loads that are
    /// *younger* in program order.
    fn write_mem(
        &mut self,
        mem: &GuestMem,
        addr: u32,
        len: u8,
        data: u64,
        seq: u16,
    ) -> Result<StoreOut, PageFault> {
        mem.probe(addr, len as u32, true)?;
        // Self-modifying store: abort before the write enters the
        // transaction (checked before the alias screen; the native
        // backend's slow store helper must match this order).
        if mem.is_code(addr, len as u32) {
            return Ok(StoreOut::Smc);
        }
        for l in &self.spec_loads {
            if l.seq > seq && overlaps(l.addr, l.len, addr, len) {
                return Ok(StoreOut::Alias);
            }
        }
        // Insertion keeps the buffer sorted by `seq`; stores almost always
        // arrive in program order, so this is an O(1) append in practice.
        let pos = self.store_buf.iter().rposition(|e| e.seq <= seq).map_or(0, |i| i + 1);
        self.store_buf.insert(pos, StoreEnt { seq, addr, len, data });
        Ok(StoreOut::Done)
    }

    /// Executes host code starting at word index `entry` until an exit
    /// condition occurs.
    ///
    /// `fuel` is an absolute bound on the guest-retired counter
    /// (`gcnt_bb + gcnt_sb`); it is only checked at checkpoint boundaries
    /// so the stop point is always architecturally clean.
    #[allow(clippy::too_many_arguments)]
    pub fn execute<S: InsnSink>(
        &mut self,
        code: &[HInsn],
        entry: usize,
        mem: &mut GuestMem,
        ibtc: &IbtcTable,
        prof: &mut ProfTable,
        fuel: u64,
        sink: &mut S,
    ) -> ExitInfo {
        let mut pc = entry;
        let mut executed: u64 = 0;
        // Hoisted once: per-instruction delivery vs block buffering is a
        // property of the sink, decided before the hot loop.
        let buffered = sink.wants_blocks();
        self.block_buf.clear();
        self.take_snapshot(pc);

        // Event delivery: per-instruction for plain sinks, buffered for
        // block-granular ones. The stream a buffered sink sees across
        // `retire_block` calls is event-for-event identical to what a
        // plain sink sees through `retire`.
        macro_rules! emit {
            ($ev:expr) => {{
                let ev = $ev;
                if buffered {
                    self.block_buf.push(ev);
                } else {
                    sink.retire(&ev);
                }
            }};
        }

        macro_rules! flush {
            ($complete:expr) => {
                if buffered && !self.block_buf.is_empty() {
                    sink.retire_block(&self.block_buf, $complete);
                    self.block_buf.clear();
                }
            };
        }

        macro_rules! exit_rollback {
            ($cause:expr) => {{
                flush!(false);
                let chkpt_pc = self.rollback();
                return ExitInfo { cause: $cause, executed, host_pc: pc, chkpt_pc };
            }};
        }

        loop {
            let insn = code[pc];
            executed += insn.dyn_cost();
            self.unattributed += insn.dyn_cost();
            let mut next = pc + 1;
            match insn {
                HInsn::Alu { op, rd, ra, rb } => {
                    let a = self.iregs[ra.index()];
                    let b = self.iregs[rb.index()];
                    if matches!(op, HAluOp::Div | HAluOp::Rem) && b == 0 {
                        emit!(RetireEvent::plain(pc as u64, EventKind::IntDiv));
                        self.counters.page_faults += 0; // no-op; keeps match simple
                        exit_rollback!(ExitCause::DivByZero);
                    }
                    self.iregs[rd.index()] = eval_halu(op, a, b);
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: alu_kind(op),
                        dst: Some(rd.0),
                        srcs: [Some(ra.0), Some(rb.0)],
                    });
                }
                HInsn::AluI { op, rd, ra, imm } => {
                    let a = self.iregs[ra.index()];
                    let b = imm as i32 as u32;
                    if matches!(op, HAluOp::Div | HAluOp::Rem) && b == 0 {
                        emit!(RetireEvent::plain(pc as u64, EventKind::IntDiv));
                        exit_rollback!(ExitCause::DivByZero);
                    }
                    self.iregs[rd.index()] = eval_halu(op, a, b);
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: alu_kind(op),
                        dst: Some(rd.0),
                        srcs: [Some(ra.0), None],
                    });
                }
                HInsn::Lui { rd, imm } => {
                    self.iregs[rd.index()] = (imm as u32) << 16;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: Some(rd.0),
                        srcs: [None, None],
                    });
                }
                HInsn::OriZ { rd, imm } => {
                    self.iregs[rd.index()] |= imm as u32;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: Some(rd.0),
                        srcs: [Some(rd.0), None],
                    });
                }
                HInsn::Li16 { rd, imm } => {
                    self.iregs[rd.index()] = imm as i32 as u32;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: Some(rd.0),
                        srcs: [None, None],
                    });
                }
                HInsn::Load { rd, base, off, width, sign, spec, seq } => {
                    let addr = self.iregs[base.index()].wrapping_add(off as u32);
                    let len = width.bytes() as u8;
                    match self.read_mem(mem, addr, len, seq) {
                        Ok(raw) => {
                            let v = extend(raw, width, sign);
                            self.iregs[rd.index()] = v;
                            if spec {
                                self.spec_loads.push(SpecLoad { seq, addr, len });
                            }
                            emit!(RetireEvent {
                                host_pc: pc as u64,
                                kind: EventKind::Load { addr, bytes: len },
                                dst: Some(rd.0),
                                srcs: [Some(base.0), None],
                            });
                        }
                        Err(pf) => {
                            emit!(RetireEvent {
                                host_pc: pc as u64,
                                kind: EventKind::Load { addr, bytes: len },
                                dst: Some(rd.0),
                                srcs: [Some(base.0), None],
                            });
                            self.counters.page_faults += 1;
                            exit_rollback!(ExitCause::PageFault { addr: pf.addr, write: false });
                        }
                    }
                }
                HInsn::Store { rs, base, off, width, spec: _, seq } => {
                    let addr = self.iregs[base.index()].wrapping_add(off as u32);
                    let len = width.bytes() as u8;
                    let data = self.iregs[rs.index()] as u64;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Store { addr, bytes: len },
                        dst: None,
                        srcs: [Some(rs.0), Some(base.0)],
                    });
                    match self.write_mem(mem, addr, len, data, seq) {
                        Ok(StoreOut::Done) => {}
                        Ok(StoreOut::Smc) => {
                            self.counters.smc_aborts += 1;
                            exit_rollback!(ExitCause::SmcWrite { addr });
                        }
                        Ok(StoreOut::Alias) => {
                            self.counters.alias_fails += 1;
                            exit_rollback!(ExitCause::AliasFail);
                        }
                        Err(pf) => {
                            self.counters.page_faults += 1;
                            exit_rollback!(ExitCause::PageFault { addr: pf.addr, write: true });
                        }
                    }
                }
                HInsn::LoadF { fd, base, off, spec, seq } => {
                    let addr = self.iregs[base.index()].wrapping_add(off as u32);
                    match self.read_mem(mem, addr, 8, seq) {
                        Ok(raw) => {
                            self.fregs[fd.index()] = f64::from_bits(raw);
                            if spec {
                                self.spec_loads.push(SpecLoad { seq, addr, len: 8 });
                            }
                            emit!(RetireEvent {
                                host_pc: pc as u64,
                                kind: EventKind::Load { addr, bytes: 8 },
                                dst: Some(crate::sink::fp_reg(fd.0)),
                                srcs: [Some(base.0), None],
                            });
                        }
                        Err(pf) => {
                            emit!(RetireEvent {
                                host_pc: pc as u64,
                                kind: EventKind::Load { addr, bytes: 8 },
                                dst: Some(crate::sink::fp_reg(fd.0)),
                                srcs: [Some(base.0), None],
                            });
                            self.counters.page_faults += 1;
                            exit_rollback!(ExitCause::PageFault { addr: pf.addr, write: false });
                        }
                    }
                }
                HInsn::StoreF { fs, base, off, spec: _, seq } => {
                    let addr = self.iregs[base.index()].wrapping_add(off as u32);
                    let data = self.fregs[fs.index()].to_bits();
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Store { addr, bytes: 8 },
                        dst: None,
                        srcs: [Some(crate::sink::fp_reg(fs.0)), Some(base.0)],
                    });
                    match self.write_mem(mem, addr, 8, data, seq) {
                        Ok(StoreOut::Done) => {}
                        Ok(StoreOut::Smc) => {
                            self.counters.smc_aborts += 1;
                            exit_rollback!(ExitCause::SmcWrite { addr });
                        }
                        Ok(StoreOut::Alias) => {
                            self.counters.alias_fails += 1;
                            exit_rollback!(ExitCause::AliasFail);
                        }
                        Err(pf) => {
                            self.counters.page_faults += 1;
                            exit_rollback!(ExitCause::PageFault { addr: pf.addr, write: true });
                        }
                    }
                }
                HInsn::B { rel } => {
                    next = add_rel(pc, rel);
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Branch { taken: true, target: next as u64, cond: false },
                        dst: None,
                        srcs: [None, None],
                    });
                }
                HInsn::Bl { rel } => {
                    self.iregs[crate::regs::R_LINK.index()] = (pc + 1) as u32;
                    next = add_rel(pc, rel);
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Branch { taken: true, target: next as u64, cond: false },
                        dst: Some(crate::regs::R_LINK.0),
                        srcs: [None, None],
                    });
                }
                HInsn::Blr => {
                    next = self.iregs[crate::regs::R_LINK.index()] as usize;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Branch { taken: true, target: next as u64, cond: false },
                        dst: None,
                        srcs: [Some(crate::regs::R_LINK.0), None],
                    });
                }
                HInsn::Bz { rs, rel } => {
                    let taken = self.iregs[rs.index()] == 0;
                    let target = add_rel(pc, rel);
                    if taken {
                        next = target;
                    }
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Branch { taken, target: target as u64, cond: true },
                        dst: None,
                        srcs: [Some(rs.0), None],
                    });
                }
                HInsn::Bnz { rs, rel } => {
                    let taken = self.iregs[rs.index()] != 0;
                    let target = add_rel(pc, rel);
                    if taken {
                        next = target;
                    }
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Branch { taken, target: target as u64, cond: true },
                        dst: None,
                        srcs: [Some(rs.0), None],
                    });
                }
                HInsn::FAlu { op, fd, fa, fb } => {
                    let a = self.fregs[fa.index()];
                    let b = self.fregs[fb.index()];
                    self.fregs[fd.index()] = eval_falu(op, a, b);
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: falu_kind(op),
                        dst: Some(crate::sink::fp_reg(fd.0)),
                        srcs: [Some(crate::sink::fp_reg(fa.0)), Some(crate::sink::fp_reg(fb.0))],
                    });
                }
                HInsn::FUn { op, fd, fa } => {
                    let a = self.fregs[fa.index()];
                    self.fregs[fd.index()] = match op {
                        FUnOp2::Mov => a,
                        FUnOp2::Sqrt => a.sqrt(),
                        FUnOp2::Abs => a.abs(),
                        FUnOp2::Neg => -a,
                    };
                    let kind = if op == FUnOp2::Sqrt { EventKind::FpSqrt } else { EventKind::FpAdd };
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind,
                        dst: Some(crate::sink::fp_reg(fd.0)),
                        srcs: [Some(crate::sink::fp_reg(fa.0)), None],
                    });
                }
                HInsn::FCmp { op, rd, fa, fb } => {
                    let a = self.fregs[fa.index()];
                    let b = self.fregs[fb.index()];
                    let v = match op {
                        FCmpOp::Lt => a < b,
                        FCmpOp::Le => a <= b,
                        FCmpOp::Eq => a == b,
                        FCmpOp::Unord => a.is_nan() || b.is_nan(),
                    };
                    self.iregs[rd.index()] = v as u32;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::FpAdd,
                        dst: Some(rd.0),
                        srcs: [Some(crate::sink::fp_reg(fa.0)), Some(crate::sink::fp_reg(fb.0))],
                    });
                }
                HInsn::CvtIF { fd, ra } => {
                    self.fregs[fd.index()] = self.iregs[ra.index()] as i32 as f64;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::FpAdd,
                        dst: Some(crate::sink::fp_reg(fd.0)),
                        srcs: [Some(ra.0), None],
                    });
                }
                HInsn::CvtFI { rd, fa } => {
                    self.iregs[rd.index()] = self.fregs[fa.index()] as i32 as u32;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::FpAdd,
                        dst: Some(rd.0),
                        srcs: [Some(crate::sink::fp_reg(fa.0)), None],
                    });
                }
                HInsn::FLoadImm { fd, bits } => {
                    self.fregs[fd.index()] = f64::from_bits(bits);
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Other,
                        dst: Some(crate::sink::fp_reg(fd.0)),
                        srcs: [None, None],
                    });
                }
                HInsn::Chkpt => {
                    self.commit(mem);
                    // The committed transaction is a complete block; the
                    // checkpoint event itself opens the next one, so memo
                    // blocks are keyed by their checkpoint pc.
                    flush!(true);
                    emit!(RetireEvent::plain(pc as u64, EventKind::Other));
                    if self.gcnt_bb + self.gcnt_sb >= fuel {
                        flush!(false);
                        return ExitInfo {
                            cause: ExitCause::Fuel,
                            executed,
                            host_pc: pc,
                            chkpt_pc: pc,
                        };
                    }
                    self.take_snapshot(pc);
                    self.counters.chkpts += 1;
                }
                HInsn::Commit => {
                    self.commit(mem);
                    emit!(RetireEvent::plain(pc as u64, EventKind::Other));
                }
                HInsn::AssertZ { rs } => {
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: None,
                        srcs: [Some(rs.0), None],
                    });
                    if self.iregs[rs.index()] != 0 {
                        self.counters.assert_fails += 1;
                        exit_rollback!(ExitCause::AssertFail);
                    }
                }
                HInsn::AssertNz { rs } => {
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: None,
                        srcs: [Some(rs.0), None],
                    });
                    if self.iregs[rs.index()] == 0 {
                        self.counters.assert_fails += 1;
                        exit_rollback!(ExitCause::AssertFail);
                    }
                }
                HInsn::TolExit { id } | HInsn::ChainSlot { id } => {
                    emit!(RetireEvent::plain(pc as u64, EventKind::Other));
                    self.commit(mem);
                    flush!(true);
                    return ExitInfo {
                        cause: ExitCause::Exit { id },
                        executed,
                        host_pc: pc,
                        chkpt_pc: self.snapshot.host_pc,
                    };
                }
                HInsn::IbtcJmp { rs, id } => {
                    let guest_target = self.iregs[rs.index()];
                    // The software IBTC probe: hash, table load, compare.
                    let table_addr = 0xF000_0000u32 | ((guest_target >> 2) & 0x3FF) << 3;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: Some(57),
                        srcs: [Some(rs.0), None],
                    });
                    emit!(RetireEvent::plain(pc as u64, EventKind::IntAlu));
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Load { addr: table_addr, bytes: 8 },
                        dst: Some(58),
                        srcs: [Some(57), None],
                    });
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: None,
                        srcs: [Some(58), None],
                    });
                    emit!(RetireEvent::plain(pc as u64, EventKind::IntAlu));
                    match ibtc.get(&guest_target) {
                        Some(&hpc) => {
                            self.counters.ibtc_hits += 1;
                            next = hpc;
                            emit!(RetireEvent {
                                host_pc: pc as u64,
                                kind: EventKind::Branch {
                                    taken: true,
                                    target: hpc as u64,
                                    cond: false,
                                },
                                dst: None,
                                srcs: [Some(58), None],
                            });
                        }
                        None => {
                            self.counters.ibtc_misses += 1;
                            emit!(RetireEvent {
                                host_pc: pc as u64,
                                kind: EventKind::Branch {
                                    taken: false,
                                    target: pc as u64 + 1,
                                    cond: false,
                                },
                                dst: None,
                                srcs: [Some(58), None],
                            });
                            self.commit(mem);
                            flush!(true);
                            return ExitInfo {
                                cause: ExitCause::Exit { id },
                                executed,
                                host_pc: pc,
                                chkpt_pc: self.snapshot.host_pc,
                            };
                        }
                    }
                }
                HInsn::Gcnt { n, sb } => {
                    // Attribute host work since the previous attribution
                    // point to this mode (fig. 5's per-mode emulation cost).
                    if sb {
                        self.gcnt_sb += n as u64;
                        self.host_sb += self.unattributed;
                    } else {
                        self.gcnt_bb += n as u64;
                        self.host_bb += self.unattributed;
                    }
                    self.unattributed = 0;
                }
                HInsn::Count { idx } => {
                    let slot = PROF_TABLE_ADDR + idx * 8;
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Load { addr: slot, bytes: 8 },
                        dst: Some(59),
                        srcs: [None, None],
                    });
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::IntAlu,
                        dst: Some(59),
                        srcs: [Some(59), None],
                    });
                    emit!(RetireEvent {
                        host_pc: pc as u64,
                        kind: EventKind::Store { addr: slot, bytes: 8 },
                        dst: None,
                        srcs: [Some(59), None],
                    });
                    let i = idx as usize;
                    prof.counts[i] += 1;
                    if prof.trips[i] != 0 && prof.counts[i] == prof.trips[i] {
                        self.commit(mem);
                        flush!(true);
                        return ExitInfo {
                            cause: ExitCause::ProfileTrip { idx },
                            executed,
                            host_pc: pc,
                            chkpt_pc: self.snapshot.host_pc,
                        };
                    }
                }
                HInsn::Nop => {
                    emit!(RetireEvent::plain(pc as u64, EventKind::IntAlu));
                }
            }
            pc = next;
        }
    }
}

#[inline]
fn add_rel(pc: usize, rel: i32) -> usize {
    (pc as i64 + 1 + rel as i64) as usize
}

#[inline]
fn overlaps(a: u32, alen: u8, b: u32, blen: u8) -> bool {
    let (a, alen, b, blen) = (a as u64, alen as u64, b as u64, blen as u64);
    a < b + blen && b < a + alen
}

#[inline]
fn extend(raw: u64, width: Width, sign: bool) -> u32 {
    match (width, sign) {
        (Width::B, false) => raw as u8 as u32,
        (Width::B, true) => raw as u8 as i8 as i32 as u32,
        (Width::W, false) => raw as u16 as u32,
        (Width::W, true) => raw as u16 as i16 as i32 as u32,
        (Width::D, _) => raw as u32,
    }
}

/// Evaluates a host integer ALU operation (division by zero must be
/// checked by the caller).
pub fn eval_halu(op: HAluOp, a: u32, b: u32) -> u32 {
    match op {
        HAluOp::Add => a.wrapping_add(b),
        HAluOp::Sub => a.wrapping_sub(b),
        HAluOp::Mul => a.wrapping_mul(b),
        HAluOp::MulHS => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        HAluOp::Div => (a as i32).wrapping_div(b as i32) as u32,
        HAluOp::Rem => (a as i32).wrapping_rem(b as i32) as u32,
        HAluOp::And => a & b,
        HAluOp::Or => a | b,
        HAluOp::Xor => a ^ b,
        HAluOp::Shl => a << (b & 31),
        HAluOp::Shr => a >> (b & 31),
        HAluOp::Sar => ((a as i32) >> (b & 31)) as u32,
        HAluOp::SltS => ((a as i32) < (b as i32)) as u32,
        HAluOp::SltU => (a < b) as u32,
        HAluOp::Seq => (a == b) as u32,
        HAluOp::Sne => (a != b) as u32,
        HAluOp::SleS => ((a as i32) <= (b as i32)) as u32,
        HAluOp::SleU => (a <= b) as u32,
        HAluOp::Parity => (a as u8).count_ones().is_multiple_of(2) as u32,
        HAluOp::Sext8 => a as u8 as i8 as i32 as u32,
        HAluOp::Sext16 => a as u16 as i16 as i32 as u32,
    }
}

/// Evaluates a host FP binary operation (GISA min/max semantics).
pub fn eval_falu(op: FAluOp, a: f64, b: f64) -> f64 {
    match op {
        FAluOp::Add => a + b,
        FAluOp::Sub => a - b,
        FAluOp::Mul => a * b,
        FAluOp::Div => a / b,
        FAluOp::Min => {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else if a < b {
                a
            } else {
                b
            }
        }
        FAluOp::Max => {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else if a > b {
                a
            } else {
                b
            }
        }
    }
}

fn alu_kind(op: HAluOp) -> EventKind {
    match op {
        HAluOp::Mul | HAluOp::MulHS => EventKind::IntMul,
        HAluOp::Div | HAluOp::Rem => EventKind::IntDiv,
        _ => EventKind::IntAlu,
    }
}

fn falu_kind(op: FAluOp) -> EventKind {
    match op {
        FAluOp::Mul => EventKind::FpMul,
        FAluOp::Div => EventKind::FpDiv,
        _ => EventKind::FpAdd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::HReg;
    use crate::sink::{DynSink, NullSink};

    fn run(code: Vec<HInsn>, setup: impl FnOnce(&mut HostEmulator, &mut GuestMem)) -> (HostEmulator, GuestMem, ExitInfo) {
        let mut emu = HostEmulator::new();
        let mut mem = GuestMem::new();
        mem.map_zero(0);
        mem.map_zero(1);
        setup(&mut emu, &mut mem);
        let ibtc = IbtcTable::new();
        let mut prof = ProfTable::new();
        let info = emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, u64::MAX, &mut NullSink);
        (emu, mem, info)
    }

    #[test]
    fn basic_alu_and_exit() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 21 },
            HInsn::AluI { op: HAluOp::Add, rd: HReg(16), ra: HReg(16), imm: 21 },
            HInsn::TolExit { id: 5 },
        ];
        let (emu, _, info) = run(code, |_, _| {});
        assert_eq!(info.cause, ExitCause::Exit { id: 5 });
        assert_eq!(emu.iregs[16], 42);
        assert_eq!(info.executed, 4);
    }

    #[test]
    fn stores_are_gated_until_commit() {
        // Store, then assert-fail: the store must not reach memory.
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 77 },
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x100, width: Width::D, spec: false, seq: 0 },
            HInsn::AssertZ { rs: HReg(16) }, // fails (r16 = 77)
            HInsn::TolExit { id: 0 },
        ];
        let (emu, mem, info) = run(code, |_, _| {});
        assert_eq!(info.cause, ExitCause::AssertFail);
        assert_eq!(mem.read_u32(0x100).unwrap(), 0, "gated store must be squashed");
        // Registers rolled back too.
        assert_eq!(emu.iregs[16], 0);
        assert_eq!(info.chkpt_pc, 0);
    }

    #[test]
    fn store_to_load_forwarding_within_transaction() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 1234 },
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x80, width: Width::D, spec: false, seq: 1 },
            HInsn::Load { rd: HReg(18), base: HReg(17), off: 0x80, width: Width::D, sign: false, spec: false, seq: 2 },
            HInsn::TolExit { id: 0 },
        ];
        let (emu, mem, info) = run(code, |_, _| {});
        assert_eq!(info.cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[18], 1234, "load must see the buffered store");
        assert_eq!(mem.read_u32(0x80).unwrap(), 1234, "exit commits");
    }

    #[test]
    fn seq_filtered_forwarding_models_hoisted_store() {
        // A store with seq 5 hoisted above a load with seq 2: the load must
        // NOT see it (program order: load first).
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 99 },
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x40, width: Width::D, spec: false, seq: 5 },
            HInsn::Load { rd: HReg(18), base: HReg(17), off: 0x40, width: Width::D, sign: false, spec: false, seq: 2 },
            HInsn::TolExit { id: 0 },
        ];
        let (emu, mem, _) = run(code, |_, mem| {
            mem.write_u32(0x40, 7).unwrap();
        });
        assert_eq!(emu.iregs[18], 7, "load sees pre-store memory");
        assert_eq!(mem.read_u32(0x40).unwrap(), 99, "commit applies the younger store");
    }

    #[test]
    fn alias_violation_detected_for_hoisted_load() {
        // Load with seq 7 speculatively hoisted above a store with seq 3 to
        // the same address: when the store executes, it must fail.
        let code = vec![
            HInsn::Chkpt,
            HInsn::Load { rd: HReg(18), base: HReg(17), off: 0x40, width: Width::D, sign: false, spec: true, seq: 7 },
            HInsn::Li16 { rd: HReg(16), imm: 5 },
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x40, width: Width::D, spec: false, seq: 3 },
            HInsn::TolExit { id: 0 },
        ];
        let (emu, _, info) = run(code, |_, _| {});
        assert_eq!(info.cause, ExitCause::AliasFail);
        assert_eq!(emu.counters.alias_fails, 1);
    }

    #[test]
    fn disjoint_hoisted_load_is_fine() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::Load { rd: HReg(18), base: HReg(17), off: 0x40, width: Width::D, sign: false, spec: true, seq: 7 },
            HInsn::Li16 { rd: HReg(16), imm: 5 },
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x48, width: Width::D, spec: false, seq: 3 },
            HInsn::TolExit { id: 0 },
        ];
        let (_, _, info) = run(code, |_, _| {});
        assert_eq!(info.cause, ExitCause::Exit { id: 0 });
    }

    #[test]
    fn commit_applies_stores_in_program_order() {
        // Two stores to the same address executed in reverse program order:
        // memory must end with the younger store's value.
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 2 },
            HInsn::Li16 { rd: HReg(19), imm: 1 },
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x20, width: Width::D, spec: false, seq: 9 },
            HInsn::Store { rs: HReg(19), base: HReg(17), off: 0x20, width: Width::D, spec: false, seq: 4 },
            HInsn::TolExit { id: 0 },
        ];
        let (_, mem, _) = run(code, |_, _| {});
        assert_eq!(mem.read_u32(0x20).unwrap(), 2, "seq 9 wins over seq 4");
    }

    #[test]
    fn page_fault_rolls_back() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 3 },
            HInsn::Lui { rd: HReg(17), imm: 0x7000 },
            HInsn::Load { rd: HReg(18), base: HReg(17), off: 0, width: Width::D, sign: false, spec: false, seq: 0 },
            HInsn::TolExit { id: 0 },
        ];
        let (emu, _, info) = run(code, |_, _| {});
        assert_eq!(info.cause, ExitCause::PageFault { addr: 0x7000_0000, write: false });
        assert_eq!(emu.iregs[16], 0, "rolled back");
        assert_eq!(emu.iregs[17], 0, "rolled back");
    }

    #[test]
    fn div_by_zero_rolls_back() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 10 },
            HInsn::Alu { op: HAluOp::Div, rd: HReg(16), ra: HReg(16), rb: HReg(20) },
            HInsn::TolExit { id: 0 },
        ];
        let (emu, _, info) = run(code, |_, _| {});
        assert_eq!(info.cause, ExitCause::DivByZero);
        assert_eq!(emu.iregs[16], 0);
    }

    #[test]
    fn fuel_stops_at_checkpoint() {
        // A self-loop retiring 3 guest insns per iteration; guest fuel must
        // stop it cleanly at a checkpoint.
        let code = vec![
            HInsn::Chkpt,
            HInsn::AluI { op: HAluOp::Add, rd: HReg(16), ra: HReg(16), imm: 1 },
            HInsn::Gcnt { n: 3, sb: true },
            HInsn::B { rel: -4 },
        ];
        let mut emu = HostEmulator::new();
        let mut mem = GuestMem::new();
        let ibtc = IbtcTable::new();
        let mut prof = ProfTable::new();
        let info = emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, 100, &mut NullSink);
        assert_eq!(info.cause, ExitCause::Fuel);
        assert_eq!(info.host_pc, 0);
        assert!(emu.gcnt_sb >= 100 && emu.gcnt_sb < 110, "stops near the target");
        assert!(emu.iregs[16] > 0, "committed iterations persist");
    }

    #[test]
    fn ibtc_hit_and_miss() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 0x500 },
            HInsn::IbtcJmp { rs: HReg(16), id: 9 },
            HInsn::Nop,
            // target translation:
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(17), imm: 1 },
            HInsn::TolExit { id: 1 },
        ];
        let mut emu = HostEmulator::new();
        let mut mem = GuestMem::new();
        let mut ibtc = IbtcTable::new();
        let mut prof = ProfTable::new();
        // Miss first.
        let info = emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, u64::MAX, &mut NullSink);
        assert_eq!(info.cause, ExitCause::Exit { id: 9 });
        assert_eq!(emu.counters.ibtc_misses, 1);
        // Now hit.
        ibtc.insert(0x500, 4);
        let info = emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, u64::MAX, &mut NullSink);
        assert_eq!(info.cause, ExitCause::Exit { id: 1 });
        assert_eq!(emu.iregs[17], 1);
        assert_eq!(emu.counters.ibtc_hits, 1);
    }

    #[test]
    fn ibtc_jump_costs_probe_sequence() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::IbtcJmp { rs: HReg(16), id: 2 },
        ];
        let mut emu = HostEmulator::new();
        let mut mem = GuestMem::new();
        let ibtc = IbtcTable::new();
        let mut prof = ProfTable::new();
        let info = emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, u64::MAX, &mut NullSink);
        assert_eq!(info.executed, 1 + 6, "chkpt + 6-slot IBTC probe");
    }

    #[test]
    fn block_delivery_matches_per_event_stream() {
        #[derive(Default)]
        struct PerEvent(Vec<RetireEvent>);
        impl InsnSink for PerEvent {
            fn retire(&mut self, ev: &RetireEvent) {
                self.0.push(*ev);
            }
        }
        #[derive(Default)]
        struct Blocks {
            events: Vec<RetireEvent>,
            blocks: Vec<(usize, bool)>,
        }
        impl InsnSink for Blocks {
            fn retire(&mut self, ev: &RetireEvent) {
                self.events.push(*ev);
            }
            fn wants_blocks(&self) -> bool {
                true
            }
            fn retire_block(&mut self, events: &[RetireEvent], complete: bool) {
                self.blocks.push((events.len(), complete));
                self.events.extend_from_slice(events);
            }
        }
        // Two committed transactions, then an assert-fail rollback.
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: 2 },
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x20, width: Width::D, spec: false, seq: 0 },
            HInsn::Chkpt,
            HInsn::AluI { op: HAluOp::Add, rd: HReg(16), ra: HReg(16), imm: 1 },
            HInsn::AssertZ { rs: HReg(16) }, // fails: r16 == 3
            HInsn::TolExit { id: 0 },
        ];
        let run_with = |sink: &mut dyn InsnSink| {
            let mut emu = HostEmulator::new();
            let mut mem = GuestMem::new();
            mem.map_zero(0);
            let ibtc = IbtcTable::new();
            let mut prof = ProfTable::new();
            emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, u64::MAX, &mut DynSink(sink))
        };
        let mut per_event = PerEvent::default();
        let a = run_with(&mut per_event);
        let mut blocks = Blocks::default();
        let b = run_with(&mut blocks);
        assert_eq!(a, b, "exit info must not depend on delivery granularity");
        assert_eq!(per_event.0, blocks.events, "streams must be identical");
        // First transaction flushes complete at the second chkpt; the
        // rolled-back tail flushes incomplete.
        assert_eq!(blocks.blocks.first().map(|b| b.1), Some(true));
        assert_eq!(blocks.blocks.last().map(|b| b.1), Some(false));
    }

    #[test]
    fn subword_store_and_signed_load() {
        let code = vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(16), imm: -1 }, // 0xFFFFFFFF
            HInsn::Store { rs: HReg(16), base: HReg(17), off: 0x10, width: Width::B, spec: false, seq: 0 },
            HInsn::Load { rd: HReg(18), base: HReg(17), off: 0x10, width: Width::B, sign: true, spec: false, seq: 1 },
            HInsn::Load { rd: HReg(19), base: HReg(17), off: 0x10, width: Width::W, sign: false, spec: false, seq: 2 },
            HInsn::TolExit { id: 0 },
        ];
        let (emu, _, _) = run(code, |_, _| {});
        assert_eq!(emu.iregs[18], 0xFFFF_FFFF);
        assert_eq!(emu.iregs[19], 0x0000_00FF, "only one byte was stored");
    }
}
