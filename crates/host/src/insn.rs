//! The host instruction set.

use crate::regs::{HFreg, HReg};
use darco_guest::Width;
use std::fmt;

/// Integer ALU operations (three-register or register-immediate).
///
/// Comparison operations produce 0/1 in the destination register — HISA has
/// no flags register of its own; guest flags are explicit values, which is
/// what enables the translator's lazy flag materialization. `Parity` is a
/// guest-assist operation (co-designed hosts add such instructions to cut
/// the cost of emulating guest flag semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HAluOp {
    Add = 0,
    Sub = 1,
    Mul = 2,
    /// High 32 bits of the signed 64-bit product.
    MulHS = 3,
    /// Signed division (`i32::MIN / -1` wraps; division by zero traps).
    Div = 4,
    /// Signed remainder.
    Rem = 5,
    And = 6,
    Or = 7,
    Xor = 8,
    /// Logical shift left (amount masked to 5 bits).
    Shl = 9,
    /// Logical shift right.
    Shr = 10,
    /// Arithmetic shift right.
    Sar = 11,
    /// Set if less-than, signed.
    SltS = 12,
    /// Set if less-than, unsigned.
    SltU = 13,
    /// Set if equal.
    Seq = 14,
    /// Set if not equal.
    Sne = 15,
    /// Set if less-or-equal, signed.
    SleS = 16,
    /// Set if less-or-equal, unsigned.
    SleU = 17,
    /// Even parity of the low byte of the first operand (guest assist).
    Parity = 18,
    /// Sign-extend low byte of the first operand (second ignored).
    Sext8 = 19,
    /// Sign-extend low halfword of the first operand.
    Sext16 = 20,
}

impl HAluOp {
    /// All operations in encoding order.
    pub const ALL: [HAluOp; 21] = [
        HAluOp::Add,
        HAluOp::Sub,
        HAluOp::Mul,
        HAluOp::MulHS,
        HAluOp::Div,
        HAluOp::Rem,
        HAluOp::And,
        HAluOp::Or,
        HAluOp::Xor,
        HAluOp::Shl,
        HAluOp::Shr,
        HAluOp::Sar,
        HAluOp::SltS,
        HAluOp::SltU,
        HAluOp::Seq,
        HAluOp::Sne,
        HAluOp::SleS,
        HAluOp::SleU,
        HAluOp::Parity,
        HAluOp::Sext8,
        HAluOp::Sext16,
    ];

    /// Decodes a 6-bit sub-opcode.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn from_index(idx: usize) -> HAluOp {
        Self::ALL[idx]
    }
}

/// FP binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FAluOp {
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    /// GISA min: NaN in either operand yields NaN.
    Min = 4,
    /// GISA max.
    Max = 5,
}

impl FAluOp {
    pub const ALL: [FAluOp; 6] =
        [FAluOp::Add, FAluOp::Sub, FAluOp::Mul, FAluOp::Div, FAluOp::Min, FAluOp::Max];

    /// Decodes a sub-opcode.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn from_index(idx: usize) -> FAluOp {
        Self::ALL[idx]
    }
}

/// FP unary operations (hardware ones — `sin`/`cos` are runtime routines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FUnOp2 {
    Mov = 0,
    Sqrt = 1,
    Abs = 2,
    Neg = 3,
}

impl FUnOp2 {
    pub const ALL: [FUnOp2; 4] = [FUnOp2::Mov, FUnOp2::Sqrt, FUnOp2::Abs, FUnOp2::Neg];

    /// Decodes a sub-opcode.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn from_index(idx: usize) -> FUnOp2 {
        Self::ALL[idx]
    }
}

/// FP comparisons, producing 0/1 in an integer register. All are false on
/// NaN except `Unord`, which is true iff either operand is NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FCmpOp {
    Lt = 0,
    Le = 1,
    Eq = 2,
    Unord = 3,
}

impl FCmpOp {
    pub const ALL: [FCmpOp; 4] = [FCmpOp::Lt, FCmpOp::Le, FCmpOp::Eq, FCmpOp::Unord];

    /// Decodes a sub-opcode.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn from_index(idx: usize) -> FCmpOp {
        Self::ALL[idx]
    }
}

/// A host instruction.
///
/// Branch offsets (`rel`) are in instruction slots relative to the *next*
/// instruction. Memory operations address guest memory (`base + off`);
/// `spec`-marked operations participate in alias detection with their
/// original program-order sequence number `seq`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HInsn {
    /// Three-register ALU operation.
    Alu { op: HAluOp, rd: HReg, ra: HReg, rb: HReg },
    /// Register-immediate ALU operation (imm is sign-extended).
    AluI { op: HAluOp, rd: HReg, ra: HReg, imm: i16 },
    /// `rd = imm << 16`.
    Lui { rd: HReg, imm: u16 },
    /// `rd = rd | zext(imm)` (pairs with `Lui` to build 32-bit constants).
    OriZ { rd: HReg, imm: u16 },
    /// `rd = sext(imm)` (small-constant load; HISA has no zero register).
    Li16 { rd: HReg, imm: i16 },
    /// Integer load, zero/sign-extended to 32 bits.
    Load { rd: HReg, base: HReg, off: i32, width: Width, sign: bool, spec: bool, seq: u16 },
    /// Integer store of the low `width` bytes.
    Store { rs: HReg, base: HReg, off: i32, width: Width, spec: bool, seq: u16 },
    /// f64 load.
    LoadF { fd: HFreg, base: HReg, off: i32, spec: bool, seq: u16 },
    /// f64 store.
    StoreF { fs: HFreg, base: HReg, off: i32, spec: bool, seq: u16 },
    /// Unconditional relative branch.
    B { rel: i32 },
    /// Branch if `rs == 0`.
    Bz { rs: HReg, rel: i32 },
    /// Branch if `rs != 0`.
    Bnz { rs: HReg, rel: i32 },
    /// Call: `r63 = pc + 1`, branch.
    Bl { rel: i32 },
    /// Return through `r63`.
    Blr,
    /// FP binary operation.
    FAlu { op: FAluOp, fd: HFreg, fa: HFreg, fb: HFreg },
    /// FP unary operation.
    FUn { op: FUnOp2, fd: HFreg, fa: HFreg },
    /// FP compare into an integer register.
    FCmp { op: FCmpOp, rd: HReg, fa: HFreg, fb: HFreg },
    /// Convert i32 → f64.
    CvtIF { fd: HFreg, ra: HReg },
    /// Convert f64 → i32 (truncating, saturating, NaN → 0).
    CvtFI { rd: HReg, fa: HFreg },
    /// Load an f64 constant (three-word molecule).
    FLoadImm { fd: HFreg, bits: u64 },
    /// Commit the running transaction and open a new checkpoint.
    Chkpt,
    /// Commit the running transaction (stores drain to memory).
    Commit,
    /// Assert `rs == 0`; on failure roll back to the last checkpoint.
    AssertZ { rs: HReg },
    /// Assert `rs != 0`.
    AssertNz { rs: HReg },
    /// Leave the code cache with exit id `id` (meaning is per-translation
    /// metadata kept by the software layer).
    TolExit { id: u16 },
    /// Patchable exit: behaves as `TolExit` until the chainer patches it
    /// into a direct `B`.
    ChainSlot { id: u16 },
    /// Indirect-branch translation cache jump: looks up the guest address
    /// in `rs`; on hit, continues at the cached host address, else exits
    /// with `id`.
    IbtcJmp { rs: HReg, id: u16 },
    /// Guest retired-instruction counter update: adds `n` to the hardware
    /// guest-instruction counter (attributed to superblock mode when `sb`).
    /// Co-designed processors maintain this counter in hardware for
    /// precise-state bookkeeping, so it costs no execution slot.
    Gcnt { n: u16, sb: bool },
    /// Software profiling counter: increments counter `idx` in the
    /// software layer's profile table; when the counter reaches its trip
    /// threshold, execution exits to the software layer
    /// (hot-region promotion). Models the three-instruction
    /// load/add/store counter sequence of the paper's BBM profiling.
    Count { idx: u32 },
    /// No operation.
    Nop,
}

/// Branch target of a `rel` offset at `pc`: offsets are relative to the
/// *next* instruction.
pub fn add_rel(pc: usize, rel: i32) -> usize {
    (pc as i64 + 1 + rel as i64) as usize
}

impl HInsn {
    /// Dynamic cost in host instructions. `IbtcJmp` models the inline
    /// software IBTC probe sequence of Scott et al. (paper reference
    /// \[17\]: hash, compare, indirect jump), so it costs more than one
    /// slot.
    pub fn dyn_cost(&self) -> u64 {
        match self {
            HInsn::IbtcJmp { .. } => 6,
            HInsn::Gcnt { .. } => 0,
            HInsn::Count { .. } => 3,
            _ => 1,
        }
    }

    /// Number of 32-bit words in the encoded form.
    pub fn encoded_words(&self) -> usize {
        match self {
            HInsn::FLoadImm { .. } => 3,
            HInsn::Load { spec, .. }
            | HInsn::Store { spec, .. }
            | HInsn::LoadF { spec, .. }
            | HInsn::StoreF { spec, .. } => 1 + usize::from(*spec),
            _ => 1,
        }
    }
}

impl fmt::Display for HInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use HInsn::*;
        match self {
            Alu { op, rd, ra, rb } => write!(f, "{op:?} {rd}, {ra}, {rb}"),
            AluI { op, rd, ra, imm } => write!(f, "{op:?}i {rd}, {ra}, {imm}"),
            Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            OriZ { rd, imm } => write!(f, "oriz {rd}, {imm:#x}"),
            Li16 { rd, imm } => write!(f, "li {rd}, {imm}"),
            Load { rd, base, off, width, sign, spec, seq } => write!(
                f,
                "l{}{}{} {rd}, {off}({base}) #s{seq}",
                width_ch(*width),
                if *sign { "s" } else { "" },
                if *spec { ".spec" } else { "" },
            ),
            Store { rs, base, off, width, spec, seq } => write!(
                f,
                "s{}{} {rs}, {off}({base}) #s{seq}",
                width_ch(*width),
                if *spec { ".spec" } else { "" },
            ),
            LoadF { fd, base, off, spec, seq } => write!(
                f,
                "lfd{} {fd}, {off}({base}) #s{seq}",
                if *spec { ".spec" } else { "" }
            ),
            StoreF { fs, base, off, spec, seq } => write!(
                f,
                "sfd{} {fs}, {off}({base}) #s{seq}",
                if *spec { ".spec" } else { "" }
            ),
            B { rel } => write!(f, "b {rel:+}"),
            Bz { rs, rel } => write!(f, "bz {rs}, {rel:+}"),
            Bnz { rs, rel } => write!(f, "bnz {rs}, {rel:+}"),
            Bl { rel } => write!(f, "bl {rel:+}"),
            Blr => write!(f, "blr"),
            FAlu { op, fd, fa, fb } => write!(f, "f{op:?} {fd}, {fa}, {fb}"),
            FUn { op, fd, fa } => write!(f, "f{op:?} {fd}, {fa}"),
            FCmp { op, rd, fa, fb } => write!(f, "fcmp.{op:?} {rd}, {fa}, {fb}"),
            CvtIF { fd, ra } => write!(f, "cvtif {fd}, {ra}"),
            CvtFI { rd, fa } => write!(f, "cvtfi {rd}, {fa}"),
            FLoadImm { fd, bits } => write!(f, "fli {fd}, {}", f64::from_bits(*bits)),
            Chkpt => write!(f, "chkpt"),
            Commit => write!(f, "commit"),
            AssertZ { rs } => write!(f, "assert.z {rs}"),
            AssertNz { rs } => write!(f, "assert.nz {rs}"),
            TolExit { id } => write!(f, "tolexit #{id}"),
            ChainSlot { id } => write!(f, "chainslot #{id}"),
            IbtcJmp { rs, id } => write!(f, "ibtcjmp {rs} #{id}"),
            Gcnt { n, sb } => write!(f, "gcnt {n}{}", if *sb { " sb" } else { "" }),
            Count { idx } => write!(f, "count #{idx}"),
            Nop => write!(f, "nop"),
        }
    }
}

fn width_ch(w: Width) -> char {
    match w {
        Width::B => 'b',
        Width::W => 'h',
        Width::D => 'w',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_and_sizes() {
        assert_eq!(HInsn::Nop.dyn_cost(), 1);
        assert_eq!(HInsn::IbtcJmp { rs: HReg(3), id: 0 }.dyn_cost(), 6);
        assert_eq!(HInsn::FLoadImm { fd: HFreg(1), bits: 0 }.encoded_words(), 3);
        let spec_load = HInsn::Load {
            rd: HReg(1),
            base: HReg(2),
            off: 0,
            width: Width::D,
            sign: false,
            spec: true,
            seq: 9,
        };
        assert_eq!(spec_load.encoded_words(), 2);
    }

    #[test]
    fn display_nonempty() {
        let samples = [
            HInsn::Alu { op: HAluOp::SltU, rd: HReg(16), ra: HReg(0), rb: HReg(1) },
            HInsn::AssertNz { rs: HReg(20) },
            HInsn::ChainSlot { id: 3 },
        ];
        for s in samples {
            assert!(!format!("{s}").is_empty());
        }
    }
}
