//! Hand-written host runtime routines for software-emulated guest
//! instructions.
//!
//! Guest `fsin`/`fcos` have no host functional unit (the paper: "these x86
//! instructions are not directly mapped to the host instructions, however,
//! they are emulated in software" — the reason Physicsbench's emulation
//! cost is high). The translator emits a `bl` to these routines.
//!
//! Each routine evaluates **exactly** the operation sequence of the
//! architectural spec in [`darco_guest::softfp`], so results are
//! bit-identical to the interpreter's and state validation can compare FP
//! registers exactly. A property test below verifies this on a large
//! sample.
//!
//! Calling convention: argument and result in `f56`; clobbers `f57`–`f59`
//! and `r56`–`r57`; returns through `r63`.

use crate::hasm::HAsm;
use crate::insn::{FAluOp, FCmpOp, FUnOp2, HInsn};
use crate::regs::{HFreg, HReg};
use darco_guest::softfp;

/// The assembled runtime routines and their entry offsets (word indices
/// relative to the start of the routine block).
#[derive(Debug, Clone)]
pub struct RuntimeRoutines {
    /// The code block; the software layer copies it into the code cache.
    pub code: Vec<HInsn>,
    /// Entry offset of `sin`.
    pub sin_entry: usize,
    /// Entry offset of `cos`.
    pub cos_entry: usize,
}

const FA: HFreg = HFreg(56); // argument/result
const FT: HFreg = HFreg(57); // t, kt, r2
const FK: HFreg = HFreg(58); // k, then polynomial accumulator
const FS: HFreg = HFreg(59); // scratch constants
const RT: HReg = HReg(56);
const RU: HReg = HReg(57);

/// Builds the runtime routine block.
pub fn build_runtime() -> RuntimeRoutines {
    let mut a = HAsm::new();
    let sin_entry = a.pos();
    emit_trig(&mut a, true);
    let cos_entry = a.pos();
    emit_trig(&mut a, false);
    RuntimeRoutines { code: a.finish(), sin_entry, cos_entry }
}

/// Emits the body shared by sin and cos: domain check, range reduction,
/// then the respective Horner polynomial — operation-for-operation the
/// sequence of `softfp::{sin,cos}_spec`.
fn emit_trig(a: &mut HAsm, sin: bool) {
    let ok = a.label();
    // Domain check: |x| <= LIMIT, false on NaN, catches +-inf too.
    a.push(HInsn::FUn { op: FUnOp2::Abs, fd: FT, fa: FA });
    a.push(HInsn::FLoadImm { fd: FS, bits: softfp::DOMAIN_LIMIT.to_bits() });
    a.push(HInsn::FCmp { op: FCmpOp::Le, rd: RT, fa: FT, fb: FS });
    a.bnz_to(RT, ok);
    a.push(HInsn::FLoadImm { fd: FA, bits: f64::NAN.to_bits() });
    a.push(HInsn::Blr);
    a.bind(ok);

    // t = x * INV_2PI
    a.push(HInsn::FLoadImm { fd: FS, bits: softfp::INV_2PI.to_bits() });
    a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FT, fa: FA, fb: FS });
    // kt = t + 0.5
    a.push(HInsn::FLoadImm { fd: FS, bits: 0.5f64.to_bits() });
    a.push(HInsn::FAlu { op: FAluOp::Add, fd: FT, fa: FT, fb: FS });
    // k = trunc(kt), floor-corrected
    a.push(HInsn::CvtFI { rd: RT, fa: FT });
    a.push(HInsn::CvtIF { fd: FK, ra: RT });
    let nofix = a.label();
    a.push(HInsn::FCmp { op: FCmpOp::Lt, rd: RU, fa: FT, fb: FK }); // kt < k ?
    a.bz_to(RU, nofix);
    a.push(HInsn::FLoadImm { fd: FS, bits: 1.0f64.to_bits() });
    a.push(HInsn::FAlu { op: FAluOp::Sub, fd: FK, fa: FK, fb: FS });
    a.bind(nofix);
    // r = x - k * 2π   (result in FA)
    a.push(HInsn::FLoadImm { fd: FS, bits: softfp::TWO_PI.to_bits() });
    a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FK, fa: FK, fb: FS });
    a.push(HInsn::FAlu { op: FAluOp::Sub, fd: FA, fa: FA, fb: FK });

    // r2 in FT
    a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FT, fa: FA, fb: FA });

    if sin {
        // Horner: p = S15; p = p*r2 + c ...
        let coeffs: [f64; 7] = [
            -1.0 / 1_307_674_368_000.0, // S15 (initial p)
            1.0 / 6_227_020_800.0,      // S13
            -1.0 / 39_916_800.0,        // S11
            1.0 / 362_880.0,            // S9
            -1.0 / 5040.0,              // S7
            1.0 / 120.0,                // S5
            -1.0 / 6.0,                 // S3
        ];
        a.push(HInsn::FLoadImm { fd: FK, bits: coeffs[0].to_bits() });
        for c in &coeffs[1..] {
            a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FK, fa: FK, fb: FT });
            a.push(HInsn::FLoadImm { fd: FS, bits: c.to_bits() });
            a.push(HInsn::FAlu { op: FAluOp::Add, fd: FK, fa: FK, fb: FS });
        }
        // result = r + (r * r2) * p
        a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FS, fa: FA, fb: FT }); // r*r2
        a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FK, fa: FS, fb: FK }); // (r*r2)*p
        a.push(HInsn::FAlu { op: FAluOp::Add, fd: FA, fa: FA, fb: FK });
    } else {
        let coeffs: [f64; 8] = [
            1.0 / 20_922_789_888_000.0, // C16 (initial p)
            -1.0 / 87_178_291_200.0,    // C14
            1.0 / 479_001_600.0,        // C12
            -1.0 / 3_628_800.0,         // C10
            1.0 / 40_320.0,             // C8
            -1.0 / 720.0,               // C6
            1.0 / 24.0,                 // C4
            -0.5,                       // C2
        ];
        a.push(HInsn::FLoadImm { fd: FK, bits: coeffs[0].to_bits() });
        for c in &coeffs[1..] {
            a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FK, fa: FK, fb: FT });
            a.push(HInsn::FLoadImm { fd: FS, bits: c.to_bits() });
            a.push(HInsn::FAlu { op: FAluOp::Add, fd: FK, fa: FK, fb: FS });
        }
        // result = 1.0 + r2 * p
        a.push(HInsn::FAlu { op: FAluOp::Mul, fd: FK, fa: FT, fb: FK }); // r2*p
        a.push(HInsn::FLoadImm { fd: FS, bits: 1.0f64.to_bits() });
        a.push(HInsn::FAlu { op: FAluOp::Add, fd: FA, fa: FS, fb: FK });
    }
    a.push(HInsn::Blr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::{ExitCause, HostEmulator, IbtcTable};
    use crate::sink::NullSink;
    use darco_guest::GuestMem;

    fn call(entry_off: usize, x: f64) -> (f64, u64) {
        let rt = build_runtime();
        // Wrap the routine in a caller that bl's into it and exits.
        let mut code = vec![HInsn::Chkpt, HInsn::Bl { rel: 1 }, HInsn::TolExit { id: 0 }];
        let base = code.len();
        code.extend(rt.code.iter().copied());
        // Patch the bl to target the routine entry.
        code[1] = HInsn::Bl { rel: (base + entry_off) as i32 - 2 };
        let mut emu = HostEmulator::new();
        emu.fregs[FA.index()] = x;
        let mut mem = GuestMem::new();
        let ibtc = IbtcTable::new();
        let mut prof = crate::emu::ProfTable::new();
        let info = emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, u64::MAX, &mut NullSink);
        assert_eq!(info.cause, ExitCause::Exit { id: 0 });
        (emu.fregs[FA.index()], info.executed)
    }

    #[test]
    fn sin_routine_is_bit_identical_to_spec() {
        let rt = build_runtime();
        for i in 0..500 {
            let x = (i as f64) * 13.37 - 3000.0;
            let (got, _) = call(rt.sin_entry, x);
            let want = darco_guest::softfp::sin_spec(x);
            assert_eq!(got.to_bits(), want.to_bits(), "sin({x})");
        }
    }

    #[test]
    fn cos_routine_is_bit_identical_to_spec() {
        let rt = build_runtime();
        for i in 0..500 {
            let x = (i as f64) * 0.731 - 150.0;
            let (got, _) = call(rt.cos_entry, x);
            let want = darco_guest::softfp::cos_spec(x);
            assert_eq!(got.to_bits(), want.to_bits(), "cos({x})");
        }
    }

    #[test]
    fn nan_and_domain_paths() {
        let rt = build_runtime();
        assert!(call(rt.sin_entry, f64::NAN).0.is_nan());
        assert!(call(rt.sin_entry, f64::INFINITY).0.is_nan());
        assert!(call(rt.cos_entry, 3.0e9).0.is_nan());
    }

    #[test]
    fn cost_is_near_the_documented_constant() {
        let rt = build_runtime();
        let (_, cost) = call(rt.sin_entry, 1.0);
        let cost = cost - 3; // subtract the wrapper's chkpt/bl/exit
        let doc = darco_guest::softfp::SOFT_FP_HOST_COST;
        assert!(
            (cost as i64 - doc as i64).unsigned_abs() <= 8,
            "sin cost {cost} deviates from documented {doc}"
        );
    }
}
