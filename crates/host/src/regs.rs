//! Host register files and the register convention.
//!
//! The convention implements the paper's emulation-cost optimizations:
//! guest architectural registers are *pinned* to fixed host registers so
//! that translated code never loads/stores them around guest-register
//! accesses, and the five guest status flags have dedicated host registers
//! that are written only when a consumer exists (lazy flag
//! materialization).
//!
//! | host regs  | use                                                  |
//! |------------|------------------------------------------------------|
//! | r0–r7      | guest GPRs (EAX…EDI), pinned                          |
//! | r8–r12     | guest flags CF, ZF, SF, OF, PF (0/1 values)           |
//! | r13–r14    | deferred-flag descriptor operands at translation exits |
//! | r15        | deferred-flag descriptor *kind* (0 = flags in r8–r12)  |
//! | r16–r55    | allocatable temporaries (linear-scan pool)            |
//! | r56        | indirect-branch target at exits / runtime scratch    |
//! | r57–r61    | runtime-routine scratch (never allocated)             |
//! | r62        | spill-area base pointer                               |
//! | r63        | link register (`bl` writes, `blr` reads)              |
//! | f0–f7      | guest FP registers, pinned                            |
//! | f8–f55     | allocatable FP temporaries                            |
//! | f56        | runtime-routine argument/result                       |
//! | f57–f63    | runtime-routine scratch                               |

use std::fmt;

/// Number of host integer registers.
pub const NUM_IREGS: usize = 64;
/// Number of host floating-point registers.
pub const NUM_FREGS: usize = 64;

/// A host integer register (`r0`–`r63`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HReg(pub u8);

/// A host floating-point register (`f0`–`f63`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HFreg(pub u8);

impl HReg {
    /// Creates a register, checking the index.
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    #[inline]
    pub fn new(idx: u8) -> HReg {
        assert!((idx as usize) < NUM_IREGS, "host ireg out of range: {idx}");
        HReg(idx)
    }

    /// The register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl HFreg {
    /// Creates a register, checking the index.
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    #[inline]
    pub fn new(idx: u8) -> HFreg {
        assert!((idx as usize) < NUM_FREGS, "host freg out of range: {idx}");
        HFreg(idx)
    }

    /// The register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for HFreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Host register pinned to a guest GPR (`r0`–`r7`).
#[inline]
pub fn guest_gpr(idx: usize) -> HReg {
    debug_assert!(idx < 8);
    HReg(idx as u8)
}

/// Host FP register pinned to a guest FPR (`f0`–`f7`).
#[inline]
pub fn guest_fpr(idx: usize) -> HFreg {
    debug_assert!(idx < 8);
    HFreg(idx as u8)
}

/// Flag registers CF, ZF, SF, OF, PF in order (`r8`–`r12`).
pub const FLAG_REGS: [HReg; 5] = [HReg(8), HReg(9), HReg(10), HReg(11), HReg(12)];
/// Carry flag register.
pub const R_CF: HReg = HReg(8);
/// Zero flag register.
pub const R_ZF: HReg = HReg(9);
/// Sign flag register.
pub const R_SF: HReg = HReg(10);
/// Overflow flag register.
pub const R_OF: HReg = HReg(11);
/// Parity flag register.
pub const R_PF: HReg = HReg(12);
/// First deferred-flag descriptor operand.
pub const R_DEF_A: HReg = HReg(13);
/// Second deferred-flag descriptor operand.
pub const R_DEF_B: HReg = HReg(14);
/// Deferred-flag descriptor kind (0 means "flags live in r8–r12").
pub const R_DEF_KIND: HReg = HReg(15);
/// Indirect-branch guest target at exit stubs (shared with runtime
/// scratch; consumed immediately by `ibtcjmp`).
pub const R_IND: HReg = HReg(56);
/// First allocatable temporary.
pub const R_TMP_FIRST: u8 = 16;
/// Last allocatable temporary (inclusive).
pub const R_TMP_LAST: u8 = 55;
/// First runtime scratch register.
pub const R_RT_FIRST: u8 = 56;
/// Spill-area base pointer.
pub const R_SPILL_BASE: HReg = HReg(62);
/// Link register.
pub const R_LINK: HReg = HReg(63);

/// Runtime-routine FP argument/result register.
pub const F_RT_ARG: HFreg = HFreg(56);
/// First allocatable FP temporary.
pub const F_TMP_FIRST: u8 = 8;
/// Last allocatable FP temporary (inclusive).
pub const F_TMP_LAST: u8 = 55;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn convention_is_disjoint() {
        // Pinned guest regs, flags, glue, temps, runtime scratch, spill and
        // link must not overlap.
        assert!(FLAG_REGS.iter().all(|r| r.index() >= 8 && r.index() <= 12));
        assert!(R_TMP_FIRST > R_DEF_KIND.0);
        assert_eq!(R_IND.0, R_RT_FIRST);
        assert!(R_RT_FIRST > R_TMP_LAST);
        assert!(R_SPILL_BASE.0 > 61 - 1);
        assert_eq!(R_LINK.0, 63);
        assert!(F_RT_ARG.0 > F_TMP_LAST);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hreg_range_checked() {
        let _ = HReg::new(64);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", HReg(5)), "r5");
        assert_eq!(format!("{}", HFreg(63)), "f63");
    }
}
