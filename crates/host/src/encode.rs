//! Fixed-width 32-bit encoding of host instructions.
//!
//! Plain instructions occupy one word. Speculative memory operations are
//! two-word molecules (the second word carries the original-program-order
//! sequence number used by alias detection), and `fli` is a three-word
//! molecule carrying a 64-bit immediate. The software layer uses these
//! encodings for code-cache size accounting; execution runs over the
//! decoded form.

use crate::insn::{FAluOp, FCmpOp, FUnOp2, HAluOp, HInsn};
use crate::regs::{HFreg, HReg};
use darco_guest::Width;
use std::fmt;

/// Error returned by [`decode_insn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HDecodeError {
    /// Unknown major opcode.
    BadOpcode(u8),
    /// Invalid sub-opcode field.
    BadSubOp,
    /// A multi-word molecule was truncated.
    Truncated,
}

impl fmt::Display for HDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HDecodeError::BadOpcode(op) => write!(f, "invalid host opcode {op:#04x}"),
            HDecodeError::BadSubOp => write!(f, "invalid host sub-opcode"),
            HDecodeError::Truncated => write!(f, "truncated host molecule"),
        }
    }
}

impl std::error::Error for HDecodeError {}

const OP_ALU: u8 = 0x01;
const OP_LUI: u8 = 0x03;
const OP_ORIZ: u8 = 0x04;
const OP_LI16: u8 = 0x05;

const OP_LB: u8 = 0x10;
const OP_LBU: u8 = 0x11;
const OP_LH: u8 = 0x12;
const OP_LHU: u8 = 0x13;
const OP_LW: u8 = 0x14;
const OP_SB: u8 = 0x18;
const OP_SH: u8 = 0x19;
const OP_SW: u8 = 0x1a;
const OP_LFD: u8 = 0x1c;
const OP_SFD: u8 = 0x1d;
/// ORed into a memory opcode for the speculative two-word form.
const SPEC_BIT: u8 = 0x80;

const OP_B: u8 = 0x30;
const OP_BL: u8 = 0x31;
const OP_BZ: u8 = 0x32;
const OP_BNZ: u8 = 0x33;
const OP_BLR: u8 = 0x34;

const OP_FALU: u8 = 0x40;
const OP_FUN: u8 = 0x41;
const OP_FCMP: u8 = 0x42;
const OP_CVTIF: u8 = 0x43;
const OP_CVTFI: u8 = 0x44;
const OP_FLI: u8 = 0x45;

const OP_CHKPT: u8 = 0x50;
const OP_COMMIT: u8 = 0x51;
const OP_ASSERTZ: u8 = 0x52;
const OP_ASSERTNZ: u8 = 0x53;
const OP_TOLEXIT: u8 = 0x54;
const OP_CHAINSLOT: u8 = 0x55;
const OP_IBTCJMP: u8 = 0x56;
const OP_GCNT: u8 = 0x57;
const OP_GCNT_SB: u8 = 0x58;
const OP_COUNT: u8 = 0x59;
const OP_NOP: u8 = 0x5f;

/// Base for the register-immediate ALU family (one major opcode per op).
const OP_ALUI_BASE: u8 = 0x60;

#[inline]
fn word(op: u8, rest: u32) -> u32 {
    (op as u32) << 24 | (rest & 0x00FF_FFFF)
}

#[inline]
fn r3(a: HReg, b: HReg, c: HReg, sub: u8) -> u32 {
    (a.0 as u32) << 18 | (b.0 as u32) << 12 | (c.0 as u32) << 6 | sub as u32
}

#[inline]
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Encodes one instruction, appending 1–3 words to `out`.
///
/// # Panics
/// Panics if an immediate or offset exceeds its encodable range (the code
/// generator legalizes these before emission).
pub fn encode_insn(insn: &HInsn, out: &mut Vec<u32>) {
    match *insn {
        HInsn::Alu { op, rd, ra, rb } => out.push(word(OP_ALU, r3(rd, ra, rb, op as u8))),
        HInsn::AluI { op, rd, ra, imm } => {
            assert!((-2048..2048).contains(&imm), "AluI immediate out of i12 range: {imm}");
            out.push(word(
                OP_ALUI_BASE + op as u8,
                (rd.0 as u32) << 18 | (ra.0 as u32) << 12 | (imm as u32 & 0xFFF),
            ));
        }
        HInsn::Lui { rd, imm } => out.push(word(OP_LUI, (rd.0 as u32) << 18 | imm as u32)),
        HInsn::OriZ { rd, imm } => out.push(word(OP_ORIZ, (rd.0 as u32) << 18 | imm as u32)),
        HInsn::Li16 { rd, imm } => {
            out.push(word(OP_LI16, (rd.0 as u32) << 18 | (imm as u16 as u32)))
        }
        HInsn::Load { rd, base, off, width, sign, spec, seq } => {
            let op = match (width, sign) {
                (Width::B, true) => OP_LB,
                (Width::B, false) => OP_LBU,
                (Width::W, true) => OP_LH,
                (Width::W, false) => OP_LHU,
                (Width::D, _) => OP_LW,
            };
            mem_word(op, rd.0, base, off, spec, seq, out);
        }
        HInsn::Store { rs, base, off, width, spec, seq } => {
            let op = match width {
                Width::B => OP_SB,
                Width::W => OP_SH,
                Width::D => OP_SW,
            };
            mem_word(op, rs.0, base, off, spec, seq, out);
        }
        HInsn::LoadF { fd, base, off, spec, seq } => {
            mem_word(OP_LFD, fd.0, base, off, spec, seq, out)
        }
        HInsn::StoreF { fs, base, off, spec, seq } => {
            mem_word(OP_SFD, fs.0, base, off, spec, seq, out)
        }
        HInsn::B { rel } => {
            assert!((-(1 << 23)..(1 << 23)).contains(&rel), "B rel out of range");
            out.push(word(OP_B, rel as u32));
        }
        HInsn::Bl { rel } => {
            assert!((-(1 << 23)..(1 << 23)).contains(&rel), "Bl rel out of range");
            out.push(word(OP_BL, rel as u32));
        }
        HInsn::Bz { rs, rel } => {
            assert!((-(1 << 17)..(1 << 17)).contains(&rel), "Bz rel out of range");
            out.push(word(OP_BZ, (rs.0 as u32) << 18 | (rel as u32 & 0x3FFFF)));
        }
        HInsn::Bnz { rs, rel } => {
            assert!((-(1 << 17)..(1 << 17)).contains(&rel), "Bnz rel out of range");
            out.push(word(OP_BNZ, (rs.0 as u32) << 18 | (rel as u32 & 0x3FFFF)));
        }
        HInsn::Blr => out.push(word(OP_BLR, 0)),
        HInsn::FAlu { op, fd, fa, fb } => {
            out.push(word(OP_FALU, r3(HReg(fd.0), HReg(fa.0), HReg(fb.0), op as u8)))
        }
        HInsn::FUn { op, fd, fa } => {
            out.push(word(OP_FUN, (fd.0 as u32) << 18 | (fa.0 as u32) << 12 | op as u32))
        }
        HInsn::FCmp { op, rd, fa, fb } => {
            out.push(word(OP_FCMP, r3(rd, HReg(fa.0), HReg(fb.0), op as u8)))
        }
        HInsn::CvtIF { fd, ra } => {
            out.push(word(OP_CVTIF, (fd.0 as u32) << 18 | (ra.0 as u32) << 12))
        }
        HInsn::CvtFI { rd, fa } => {
            out.push(word(OP_CVTFI, (rd.0 as u32) << 18 | (fa.0 as u32) << 12))
        }
        HInsn::FLoadImm { fd, bits } => {
            out.push(word(OP_FLI, (fd.0 as u32) << 18));
            out.push(bits as u32);
            out.push((bits >> 32) as u32);
        }
        HInsn::Chkpt => out.push(word(OP_CHKPT, 0)),
        HInsn::Commit => out.push(word(OP_COMMIT, 0)),
        HInsn::AssertZ { rs } => out.push(word(OP_ASSERTZ, (rs.0 as u32) << 18)),
        HInsn::AssertNz { rs } => out.push(word(OP_ASSERTNZ, (rs.0 as u32) << 18)),
        HInsn::TolExit { id } => out.push(word(OP_TOLEXIT, id as u32)),
        HInsn::ChainSlot { id } => out.push(word(OP_CHAINSLOT, id as u32)),
        HInsn::IbtcJmp { rs, id } => {
            out.push(word(OP_IBTCJMP, (rs.0 as u32) << 18 | id as u32))
        }
        HInsn::Gcnt { n, sb } => {
            out.push(word(if sb { OP_GCNT_SB } else { OP_GCNT }, n as u32))
        }
        HInsn::Count { idx } => {
            assert!(idx < (1 << 24), "profile counter index out of range");
            out.push(word(OP_COUNT, idx));
        }
        HInsn::Nop => out.push(word(OP_NOP, 0)),
    }
}

fn mem_word(op: u8, reg: u8, base: HReg, off: i32, spec: bool, seq: u16, out: &mut Vec<u32>) {
    assert!((-2048..2048).contains(&off), "memory offset out of i12 range: {off}");
    let op = if spec { op | SPEC_BIT } else { op };
    out.push(word(op, (reg as u32) << 18 | (base.0 as u32) << 12 | (off as u32 & 0xFFF)));
    if spec {
        out.push(seq as u32);
    }
}

/// Decodes one instruction from the front of `words`, returning it and the
/// number of words consumed.
///
/// # Errors
/// Returns [`HDecodeError`] on malformed input.
pub fn decode_insn(words: &[u32]) -> Result<(HInsn, usize), HDecodeError> {
    let w = *words.first().ok_or(HDecodeError::Truncated)?;
    let op = (w >> 24) as u8;
    let rd = HReg(((w >> 18) & 63) as u8);
    let ra = HReg(((w >> 12) & 63) as u8);
    let rb = HReg(((w >> 6) & 63) as u8);
    let sub = (w & 63) as u8;
    let imm16 = (w & 0xFFFF) as u16;

    // Memory family (possibly with the spec bit set).
    let base_op = op & !SPEC_BIT;
    if (OP_LB..=OP_SFD).contains(&base_op) {
        if let Some(mem) = decode_mem(op, words)? {
            return Ok(mem);
        }
    }

    let insn = match op {
        OP_ALU => {
            if sub as usize >= HAluOp::ALL.len() {
                return Err(HDecodeError::BadSubOp);
            }
            HInsn::Alu { op: HAluOp::from_index(sub as usize), rd, ra, rb }
        }
        OP_LUI => HInsn::Lui { rd, imm: imm16 },
        OP_ORIZ => HInsn::OriZ { rd, imm: imm16 },
        OP_LI16 => HInsn::Li16 { rd, imm: imm16 as i16 },
        OP_B => HInsn::B { rel: sext(w, 24) },
        OP_BL => HInsn::Bl { rel: sext(w, 24) },
        OP_BZ => HInsn::Bz { rs: rd, rel: sext(w, 18) },
        OP_BNZ => HInsn::Bnz { rs: rd, rel: sext(w, 18) },
        OP_BLR => HInsn::Blr,
        OP_FALU => {
            if sub as usize >= FAluOp::ALL.len() {
                return Err(HDecodeError::BadSubOp);
            }
            HInsn::FAlu {
                op: FAluOp::from_index(sub as usize),
                fd: HFreg(rd.0),
                fa: HFreg(ra.0),
                fb: HFreg(rb.0),
            }
        }
        OP_FUN => {
            if sub as usize >= FUnOp2::ALL.len() {
                return Err(HDecodeError::BadSubOp);
            }
            HInsn::FUn { op: FUnOp2::from_index(sub as usize), fd: HFreg(rd.0), fa: HFreg(ra.0) }
        }
        OP_FCMP => {
            if sub as usize >= FCmpOp::ALL.len() {
                return Err(HDecodeError::BadSubOp);
            }
            HInsn::FCmp {
                op: FCmpOp::from_index(sub as usize),
                rd,
                fa: HFreg(ra.0),
                fb: HFreg(rb.0),
            }
        }
        OP_CVTIF => HInsn::CvtIF { fd: HFreg(rd.0), ra },
        OP_CVTFI => HInsn::CvtFI { rd, fa: HFreg(ra.0) },
        OP_FLI => {
            if words.len() < 3 {
                return Err(HDecodeError::Truncated);
            }
            let bits = words[1] as u64 | (words[2] as u64) << 32;
            return Ok((HInsn::FLoadImm { fd: HFreg(rd.0), bits }, 3));
        }
        OP_CHKPT => HInsn::Chkpt,
        OP_COMMIT => HInsn::Commit,
        OP_ASSERTZ => HInsn::AssertZ { rs: rd },
        OP_ASSERTNZ => HInsn::AssertNz { rs: rd },
        OP_TOLEXIT => HInsn::TolExit { id: imm16 },
        OP_CHAINSLOT => HInsn::ChainSlot { id: imm16 },
        OP_IBTCJMP => HInsn::IbtcJmp { rs: rd, id: imm16 },
        OP_GCNT => HInsn::Gcnt { n: imm16, sb: false },
        OP_GCNT_SB => HInsn::Gcnt { n: imm16, sb: true },
        OP_COUNT => HInsn::Count { idx: w & 0x00FF_FFFF },
        OP_NOP => HInsn::Nop,
        o if (OP_ALUI_BASE..OP_ALUI_BASE + HAluOp::ALL.len() as u8).contains(&o) => HInsn::AluI {
            op: HAluOp::from_index((o - OP_ALUI_BASE) as usize),
            rd,
            ra,
            imm: sext(w, 12) as i16,
        },
        other => return Err(HDecodeError::BadOpcode(other)),
    };
    Ok((insn, 1))
}

fn decode_mem(op: u8, words: &[u32]) -> Result<Option<(HInsn, usize)>, HDecodeError> {
    let w = words[0];
    let spec = op & SPEC_BIT != 0;
    let base_op = op & !SPEC_BIT;
    let reg = ((w >> 18) & 63) as u8;
    let base = HReg(((w >> 12) & 63) as u8);
    let off = sext(w, 12);
    let (seq, len) = if spec {
        let s = *words.get(1).ok_or(HDecodeError::Truncated)?;
        (s as u16, 2usize)
    } else {
        (0u16, 1usize)
    };
    let insn = match base_op {
        OP_LB => HInsn::Load { rd: HReg(reg), base, off, width: Width::B, sign: true, spec, seq },
        OP_LBU => HInsn::Load { rd: HReg(reg), base, off, width: Width::B, sign: false, spec, seq },
        OP_LH => HInsn::Load { rd: HReg(reg), base, off, width: Width::W, sign: true, spec, seq },
        OP_LHU => HInsn::Load { rd: HReg(reg), base, off, width: Width::W, sign: false, spec, seq },
        OP_LW => HInsn::Load { rd: HReg(reg), base, off, width: Width::D, sign: false, spec, seq },
        OP_SB => HInsn::Store { rs: HReg(reg), base, off, width: Width::B, spec, seq },
        OP_SH => HInsn::Store { rs: HReg(reg), base, off, width: Width::W, spec, seq },
        OP_SW => HInsn::Store { rs: HReg(reg), base, off, width: Width::D, spec, seq },
        OP_LFD => HInsn::LoadF { fd: HFreg(reg), base, off, spec, seq },
        OP_SFD => HInsn::StoreF { fs: HFreg(reg), base, off, spec, seq },
        _ => return Ok(None),
    };
    Ok(Some((insn, len)))
}

/// Encodes a whole instruction sequence.
pub fn encode_all(insns: &[HInsn]) -> Vec<u32> {
    let mut out = Vec::with_capacity(insns.len());
    for i in insns {
        encode_insn(i, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{HFreg, HReg};

    fn roundtrip(insn: HInsn) {
        let mut buf = Vec::new();
        encode_insn(&insn, &mut buf);
        assert_eq!(buf.len(), insn.encoded_words(), "{insn:?}");
        let (got, len) = decode_insn(&buf).unwrap();
        assert_eq!(got, insn);
        assert_eq!(len, buf.len());
    }

    #[test]
    fn roundtrip_all_families() {
        let r = HReg;
        let f = HFreg;
        let cases = vec![
            HInsn::Alu { op: HAluOp::Parity, rd: r(63), ra: r(0), rb: r(31) },
            HInsn::AluI { op: HAluOp::SltU, rd: r(16), ra: r(7), imm: -2048 },
            HInsn::AluI { op: HAluOp::Add, rd: r(16), ra: r(7), imm: 2047 },
            HInsn::Lui { rd: r(5), imm: 0xFFFF },
            HInsn::OriZ { rd: r(5), imm: 0xABCD },
            HInsn::Li16 { rd: r(20), imm: -1 },
            HInsn::Load {
                rd: r(1),
                base: r(2),
                off: -7,
                width: Width::W,
                sign: true,
                spec: false,
                seq: 0,
            },
            HInsn::Load {
                rd: r(1),
                base: r(2),
                off: 2047,
                width: Width::D,
                sign: false,
                spec: true,
                seq: 999,
            },
            HInsn::Store { rs: r(3), base: r(4), off: -2048, width: Width::B, spec: true, seq: 7 },
            HInsn::LoadF { fd: f(8), base: r(2), off: 16, spec: false, seq: 0 },
            HInsn::StoreF { fs: f(55), base: r(62), off: -8, spec: true, seq: 12 },
            HInsn::B { rel: -8_000_000 },
            HInsn::Bl { rel: 8_388_607 },
            HInsn::Bz { rs: r(16), rel: -131_072 },
            HInsn::Bnz { rs: r(16), rel: 131_071 },
            HInsn::Blr,
            HInsn::FAlu { op: FAluOp::Max, fd: f(0), fa: f(62), fb: f(63) },
            HInsn::FUn { op: FUnOp2::Sqrt, fd: f(1), fa: f(2) },
            HInsn::FCmp { op: FCmpOp::Unord, rd: r(9), fa: f(3), fb: f(4) },
            HInsn::CvtIF { fd: f(9), ra: r(1) },
            HInsn::CvtFI { rd: r(1), fa: f(9) },
            HInsn::FLoadImm { fd: f(57), bits: f64::to_bits(-0.12345) },
            HInsn::Chkpt,
            HInsn::Commit,
            HInsn::AssertZ { rs: r(17) },
            HInsn::AssertNz { rs: r(18) },
            HInsn::TolExit { id: 65535 },
            HInsn::ChainSlot { id: 1 },
            HInsn::IbtcJmp { rs: r(16), id: 1234 },
            HInsn::Nop,
        ];
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn rejects_bad_opcode() {
        assert_eq!(decode_insn(&[0xFFu32 << 24]), Err(HDecodeError::BadOpcode(0xFF)));
        assert_eq!(decode_insn(&[]), Err(HDecodeError::Truncated));
        // FLI missing its immediate words.
        let mut buf = Vec::new();
        encode_insn(&HInsn::FLoadImm { fd: HFreg(0), bits: 1 }, &mut buf);
        assert_eq!(decode_insn(&buf[..1]), Err(HDecodeError::Truncated));
    }

    #[test]
    #[should_panic(expected = "out of i12 range")]
    fn rejects_oversized_offset() {
        let mut buf = Vec::new();
        encode_insn(
            &HInsn::Store {
                rs: HReg(0),
                base: HReg(1),
                off: 4096,
                width: Width::D,
                spec: false,
                seq: 0,
            },
            &mut buf,
        );
    }
}
