//! Retired-instruction event stream.
//!
//! DARCO's timing simulator "receives the dynamic instruction stream from
//! the co-designed component" (§V-C). [`InsnSink`] is that interface: the
//! host emulator (and the TOL-overhead synthesizer) push one
//! [`RetireEvent`] per executed host instruction; the timing simulator in
//! `darco-timing` implements the trait.

/// Classified retired host instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Simple integer operation (1-cycle class).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// FP add/sub/compare/convert class.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// FP square root.
    FpSqrt,
    /// Memory load with its guest effective address.
    Load { addr: u32, bytes: u8 },
    /// Memory store with its guest effective address.
    Store { addr: u32, bytes: u8 },
    /// Control transfer. `cond` distinguishes conditional branches (which
    /// train the direction predictor) from unconditional ones.
    Branch { taken: bool, target: u64, cond: bool },
    /// Anything else (checkpoint bookkeeping, immediate moves, ...).
    Other,
}

/// Register operand in the unified timing namespace: `0–63` integer
/// registers, `64–127` FP registers, `None` when absent.
pub type RegId = Option<u8>;

/// Encodes an FP register index into the unified namespace.
#[inline]
pub fn fp_reg(idx: u8) -> u8 {
    64 + idx
}

/// One retired host instruction, with its register dependences (the
/// timing simulator's scoreboard consumes these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetireEvent {
    /// Host program counter, in code-cache word units.
    pub host_pc: u64,
    /// Instruction class.
    pub kind: EventKind,
    /// Destination register.
    pub dst: RegId,
    /// Source registers.
    pub srcs: [RegId; 2],
}

impl RetireEvent {
    /// An event with no register operands.
    pub fn plain(host_pc: u64, kind: EventKind) -> RetireEvent {
        RetireEvent { host_pc, kind, dst: None, srcs: [None, None] }
    }
}

/// Consumer of the retired-instruction stream.
///
/// The hot path is monomorphized over this trait (`S: InsnSink`), so a
/// [`NullSink`] compiles to nothing inside the emulator loops. Call sites
/// that genuinely need runtime sink selection (the debug toolchain) wrap
/// a trait object in [`DynSink`].
pub trait InsnSink {
    /// Receives one retired instruction.
    fn retire(&mut self, ev: &RetireEvent);

    /// Whether this sink discards every event. The native backend is only
    /// eligible when the sink is inert: translated regions run as real
    /// machine code and produce no per-instruction retire stream, so any
    /// sink that observes events (the timing simulators, counting sinks)
    /// forces the emulator path.
    #[inline]
    fn is_null(&self) -> bool {
        false
    }

    /// Whether this sink wants block-granular delivery. When true, the
    /// emulator buffers retire events between architectural boundaries
    /// (checkpoints, cache exits, rollbacks) and hands them over through
    /// [`InsnSink::retire_block`] instead of one [`InsnSink::retire`] call
    /// per instruction, which is what lets a fast timing path charge a
    /// whole block at once.
    #[inline]
    fn wants_blocks(&self) -> bool {
        false
    }

    /// Receives one block of retired instructions in program order.
    /// `complete` is true when the block ended at a planned boundary
    /// (checkpoint, cache exit) and false when it was cut short by a
    /// rollback or a fuel stop — incomplete blocks are valid retire
    /// history but not representative block shapes worth memoizing.
    ///
    /// The default forwards to per-instruction [`InsnSink::retire`], so
    /// sinks that don't opt into blocks behave identically either way.
    #[inline]
    fn retire_block(&mut self, events: &[RetireEvent], complete: bool) {
        let _ = complete;
        for ev in events {
            self.retire(ev);
        }
    }

    /// Notification that a translation was installed into the code cache at
    /// word address `host_base`, with its code body. Timing sinks use this
    /// to statically annotate the translation with its steady-state
    /// (miss-free, predicted) cycle cost, which the software layer stamps
    /// on the cache entry. Returns that cost, or `None` for sinks that
    /// don't annotate.
    #[inline]
    fn install_note(&mut self, host_base: u64, code: &[crate::insn::HInsn]) -> Option<u64> {
        let _ = (host_base, code);
        None
    }
}

impl<S: InsnSink + ?Sized> InsnSink for &mut S {
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        (**self).retire(ev);
    }

    #[inline]
    fn is_null(&self) -> bool {
        (**self).is_null()
    }

    #[inline]
    fn wants_blocks(&self) -> bool {
        (**self).wants_blocks()
    }

    #[inline]
    fn retire_block(&mut self, events: &[RetireEvent], complete: bool) {
        (**self).retire_block(events, complete);
    }

    #[inline]
    fn install_note(&mut self, host_base: u64, code: &[crate::insn::HInsn]) -> Option<u64> {
        (**self).install_note(host_base, code)
    }
}

/// Sink that discards everything (functional-only simulation).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl InsnSink for NullSink {
    #[inline(always)]
    fn retire(&mut self, _ev: &RetireEvent) {}

    #[inline(always)]
    fn is_null(&self) -> bool {
        true
    }
}

/// Adapter giving a trait-object sink the concrete type the monomorphized
/// hot path wants: `DynSink(&mut dyn InsnSink)` is itself an `InsnSink`.
pub struct DynSink<'a>(pub &'a mut dyn InsnSink);

impl InsnSink for DynSink<'_> {
    #[inline]
    fn retire(&mut self, ev: &RetireEvent) {
        self.0.retire(ev);
    }

    #[inline]
    fn is_null(&self) -> bool {
        self.0.is_null()
    }

    #[inline]
    fn wants_blocks(&self) -> bool {
        self.0.wants_blocks()
    }

    #[inline]
    fn retire_block(&mut self, events: &[RetireEvent], complete: bool) {
        self.0.retire_block(events, complete);
    }

    #[inline]
    fn install_note(&mut self, host_base: u64, code: &[crate::insn::HInsn]) -> Option<u64> {
        self.0.install_note(host_base, code)
    }
}

/// Sink that counts events by class; useful in tests and quick stats.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total events seen.
    pub total: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches (conditional and unconditional).
    pub branches: u64,
    /// Taken branches.
    pub taken: u64,
}

impl InsnSink for CountingSink {
    fn retire(&mut self, ev: &RetireEvent) {
        self.total += 1;
        match ev.kind {
            EventKind::Load { .. } => self.loads += 1,
            EventKind::Store { .. } => self.stores += 1,
            EventKind::Branch { taken, .. } => {
                self.branches += 1;
                if taken {
                    self.taken += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_classifies() {
        let mut s = CountingSink::default();
        s.retire(&RetireEvent::plain(0, EventKind::Load { addr: 4, bytes: 4 }));
        s.retire(&RetireEvent::plain(
            1,
            EventKind::Branch { taken: true, target: 9, cond: true },
        ));
        s.retire(&RetireEvent::plain(2, EventKind::IntAlu));
        assert_eq!((s.total, s.loads, s.branches, s.taken), (3, 1, 1, 1));
    }

    #[test]
    fn fp_registers_map_above_integer_space() {
        assert_eq!(fp_reg(0), 64);
        assert_eq!(fp_reg(63), 127);
    }
}
