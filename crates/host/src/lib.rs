//! # HISA — the co-designed host ISA of the DARCO reproduction
//!
//! DARCO's host is a "PowerPC-like RISC" with co-designed extensions for
//! speculative execution (ISPASS 2017, §III and §V-B). This crate defines
//! that host:
//!
//! * 64 integer + 64 floating-point registers with a fixed [register
//!   convention](regs) that pins the guest architectural state to host
//!   registers (the paper's "map guest architectural registers directly on
//!   the host registers" emulation-cost optimization);
//! * a RISC instruction set ([`HInsn`]) with compare-into-register +
//!   branch-on-register control flow and fixed 32-bit [encodings](encode)
//!   (speculative memory operations use a two-word "molecule" carrying
//!   their original program-order sequence number);
//! * the co-designed speculation primitives the paper describes:
//!   `chkpt`/`commit` transactions with a gated store buffer, `assert`
//!   instructions that replace biased branches inside superblocks, and
//!   alias detection for speculatively reordered memory operations
//!   ([`emu::HostEmulator`]);
//! * code-cache glue: patchable [`HInsn::ChainSlot`] exits for translation
//!   chaining and [`HInsn::IbtcJmp`] for the indirect-branch translation
//!   cache;
//! * hand-written host [runtime routines](runtime) for the guest's
//!   software-emulated `sin`/`cos`, operation-for-operation identical to
//!   the architectural spec in `darco_guest::softfp`.
//!
//! The emulator is *transactional*: every translation begins with `chkpt`,
//! stores are buffered until commit, and any assert failure, alias
//! violation or page fault rolls the whole transaction back — exactly the
//! recovery model that lets DARCO's software layer fall back to
//! interpretation after a speculation failure.

pub mod codegen;
pub mod emu;
pub mod encode;
pub mod hasm;
pub mod insn;
pub mod regs;
pub mod runtime;
pub mod sink;

pub use codegen::{new_backend, Backend, HostCodeGen, JitStats};
pub use emu::{ExitCause, ExitInfo, HostEmulator, IbtcTable, ProfTable};
pub use encode::{decode_insn, encode_insn, HDecodeError};
pub use hasm::HAsm;
pub use insn::{FAluOp, FCmpOp, FUnOp2, HAluOp, HInsn};
pub use regs::{HFreg, HReg};
pub use sink::{CountingSink, DynSink, EventKind, InsnSink, NullSink, RetireEvent};
