//! Executable code buffer with a W^X life cycle.
//!
//! The buffer is one `mmap`'d anonymous region. It is never writable and
//! executable at the same time: emission and jump patching happen in the
//! `Rw` state, execution in the `Rx` state, and [`CodeBuffer`] flips
//! between them with `mprotect` on demand. Steady state (no compiles, no
//! patches) therefore pays no syscalls at all.

#![allow(clippy::missing_safety_doc)]

use std::ffi::c_void;

// The workspace forbids external crates, but std on Linux already links
// the platform C library — declaring the three symbols we need is free.
unsafe extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const PROT_EXEC: i32 = 4;
const MAP_PRIVATE: i32 = 0x02;
const MAP_ANONYMOUS: i32 = 0x20;

/// Current protection state of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prot {
    /// Read + write: emitting or patching.
    Rw,
    /// Read + execute: running.
    Rx,
}

/// A fixed-capacity executable buffer. Code is appended monotonically;
/// `reset` reclaims everything at once (fragments are a pure cache, so
/// whole-buffer invalidation is always safe).
pub struct CodeBuffer {
    base: *mut u8,
    cap: usize,
    len: usize,
    prot: Prot,
    /// Total bytes ever emitted (survives resets; feeds jit.* counters).
    pub bytes_emitted: u64,
    /// Total bytes discarded by resets.
    pub bytes_flushed: u64,
}

// The buffer owns its mapping; raw pointer use is confined to this module.
unsafe impl Send for CodeBuffer {}

impl CodeBuffer {
    /// Maps a fresh RW buffer of `cap` bytes.
    ///
    /// # Panics
    /// Panics if the kernel refuses the mapping (out of address space).
    pub fn new(cap: usize) -> CodeBuffer {
        let base = unsafe {
            mmap(
                std::ptr::null_mut(),
                cap,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(
            !std::ptr::eq(base, usize::MAX as *mut c_void) && !base.is_null(),
            "mmap for the JIT code buffer failed"
        );
        CodeBuffer { base: base.cast(), cap, len: 0, prot: Prot::Rw, bytes_emitted: 0, bytes_flushed: 0 }
    }

    fn set_prot(&mut self, prot: Prot) {
        if self.prot == prot {
            return;
        }
        let bits = match prot {
            Prot::Rw => PROT_READ | PROT_WRITE,
            Prot::Rx => PROT_READ | PROT_EXEC,
        };
        let rc = unsafe { mprotect(self.base.cast(), self.cap, bits) };
        assert_eq!(rc, 0, "mprotect on the JIT code buffer failed");
        self.prot = prot;
    }

    /// Bytes currently in use.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been emitted since the last reset.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.cap - self.len
    }

    /// Appends `bytes`, returning the offset of the first one.
    ///
    /// # Panics
    /// Panics on overflow; callers must check [`CodeBuffer::remaining`]
    /// and reset first.
    pub fn append(&mut self, bytes: &[u8]) -> usize {
        assert!(self.len + bytes.len() <= self.cap, "code buffer overflow");
        self.set_prot(Prot::Rw);
        let off = self.len;
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.base.add(off), bytes.len());
        }
        self.len += bytes.len();
        self.bytes_emitted += bytes.len() as u64;
        off
    }

    /// Overwrites the 4 bytes at `off` (rel32 / imm32 patching).
    pub fn patch_u32(&mut self, off: usize, val: u32) {
        assert!(off + 4 <= self.len, "patch outside emitted code");
        self.set_prot(Prot::Rw);
        unsafe {
            std::ptr::copy_nonoverlapping(val.to_le_bytes().as_ptr(), self.base.add(off), 4);
        }
    }

    /// Reads back the 4 bytes at `off` (saving a rel32 before patching
    /// over it, so precise invalidation can restore it later).
    pub fn read_u32(&self, off: usize) -> u32 {
        assert!(off + 4 <= self.len, "read outside emitted code");
        let mut b = [0u8; 4];
        unsafe {
            std::ptr::copy_nonoverlapping(self.base.add(off), b.as_mut_ptr(), 4);
        }
        u32::from_le_bytes(b)
    }

    /// Makes the buffer executable and returns the address of `off`.
    pub fn exec_ptr(&mut self, off: usize) -> *const u8 {
        self.set_prot(Prot::Rx);
        unsafe { self.base.add(off) }
    }

    /// Discards all emitted code (the mapping itself is kept).
    pub fn reset(&mut self) {
        self.bytes_flushed += self.len as u64;
        self.len = 0;
        self.set_prot(Prot::Rw);
    }
}

impl Drop for CodeBuffer {
    fn drop(&mut self) {
        unsafe {
            munmap(self.base.cast(), self.cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_patch_reset_round_trip() {
        let mut b = CodeBuffer::new(4096);
        let off = b.append(&[0xAA; 8]);
        assert_eq!(off, 0);
        assert_eq!(b.len(), 8);
        b.patch_u32(4, 0xDEAD_BEEF);
        let p = b.exec_ptr(0);
        let back = unsafe { std::slice::from_raw_parts(p, 8) };
        assert_eq!(&back[..4], &[0xAA; 4]);
        assert_eq!(u32::from_le_bytes(back[4..8].try_into().unwrap()), 0xDEAD_BEEF);
        b.reset();
        assert_eq!(b.len(), 0);
        assert_eq!(b.bytes_emitted, 8);
        assert_eq!(b.bytes_flushed, 8);
    }

    #[test]
    fn executes_emitted_code() {
        // mov eax, 42; ret
        let mut b = CodeBuffer::new(4096);
        let off = b.append(&[0xB8, 42, 0, 0, 0, 0xC3]);
        let f: extern "sysv64" fn() -> u32 = unsafe { std::mem::transmute(b.exec_ptr(off)) };
        assert_eq!(f(), 42);
    }
}
