//! Static verification of emitted x86-64 machine code (DESIGN.md §13,
//! stage 2 of the translation-validation pipeline).
//!
//! The lowerer ([`super::lower`]) emits a closed, small subset of x86-64
//! through [`super::x64::Asm`]. This module re-decodes every compiled
//! fragment with a self-contained decoder for exactly that subset and
//! runs an abstract interpreter over the decoded instructions, proving
//! the machine-code invariants the IR-level verifier cannot see:
//!
//! * **register discipline** — nothing writes the pinned context pointer
//!   `r15` or `rsp` (the thunk owns both; with no `rsp` writes and no
//!   push/pop in the subset, stack balance follows);
//! * **helper-call shape** — every indirect call is
//!   `mov rax, imm64; call rax` with the immediate equal to a registered
//!   helper entry point;
//! * **context bounds** — every `[r15 + disp]` access (including pointers
//!   derived from `r15` by bounded index arithmetic, like TLB slots and
//!   transaction-buffer entries) stays inside the `NativeCtx` layout;
//! * **memory discipline** — every other load/store goes through a
//!   pointer proven to be a bounds-checked L0-TLB page pointer (guard
//!   compare + `ja slow` observed) or a profile-table pointer loaded from
//!   the context; anything else must have gone to a helper;
//! * **branch targets** — every rel32 branch lands on a decoded
//!   instruction boundary inside the fragment (unpatched chain/IBTC
//!   sites have rel32 = 0, which is the next boundary by construction).
//!
//! The abstract domain is deliberately simple: known immediates, upper
//! bounds established by `and`/`movzx`/guarded compares, and tagged
//! pointers (context / guest page / profile table) with a constant
//! offset. State is reset at every branch target (except the pinned
//! `r15`), so the proof is per straight-line path — exactly how the
//! lowerer reasons, which keeps the checker precise enough to accept
//! every legitimate fragment while rejecting single-instruction
//! corruptions like a planted `mov r15, ...`.

use super::exec::{NativeCtx, O_PROF_COUNTS, O_PROF_TRIPS, O_TLB, TLB_SLOTS};
use super::x64::{Alu, CC_A, CC_AE};
use super::CheckKind;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// One checker finding: what invariant broke, where in the fragment.
pub(super) struct CheckFinding {
    pub kind: CheckKind,
    /// Byte offset of the offending instruction inside the fragment.
    pub off: usize,
    pub msg: String,
}

impl fmt::Display for CheckFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at +{:#x}: {}", self.kind.name(), self.off, self.msg)
    }
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

/// Register-or-memory operand (all memory operands in the emitted subset
/// are `[base + disp32]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Rm {
    Reg(u8),
    Mem { base: u8, disp: i32 },
}

/// A decoded instruction of the emitter's subset, carrying exactly the
/// operands of the [`super::x64::Asm`] method that emitted it (so a
/// decoded fragment can be re-emitted byte-identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Op {
    MovLoad { w: bool, dst: u8, base: u8, disp: i32 },
    MovStore { w: bool, base: u8, disp: i32, src: u8 },
    MovRR { w: bool, dst: u8, src: u8 },
    MovImm32 { dst: u8, imm: u32 },
    MovImm64 { dst: u8, imm: u64 },
    /// `mov <size> [base+disp], imm` — size 1/2/4/8 bytes (8 stores a
    /// sign-extended imm32).
    MovMemImm { size: u8, base: u8, disp: i32, imm: u32 },
    /// movzx/movsx of an 8- or 16-bit source into a 32-bit register.
    Movx { sign: bool, width: u8, dst: u8, rm: Rm },
    Movsxd { dst: u8, src: u8 },
    AluRR { w: bool, op: Alu, dst: u8, src: u8 },
    AluLoad { op: Alu, dst: u8, base: u8, disp: i32 },
    AluImm { w: bool, op: Alu, dst: u8, imm: u32 },
    AluMemImm { w: bool, op: Alu, base: u8, disp: i32, imm: u32 },
    /// Store-form 64-bit ALU: `op qword [base+disp], src`.
    AluMemR { op: Alu, base: u8, disp: i32, src: u8 },
    Rol64Cl { r: u8 },
    TestMemR { base: u8, disp: i32, src: u8 },
    TestRR { a: u8, b: u8 },
    ImulRR { w: bool, dst: u8, src: u8 },
    Cdq,
    Idiv { r: u8 },
    Neg { r: u8 },
    ShiftCl { ext: u8, r: u8 },
    Shr64Imm { r: u8, imm: u8 },
    ShiftImm { ext: u8, r: u8, imm: u8 },
    Setcc { cc: u8, r: u8 },
    IncMem64 { base: u8, disp: i32 },
    Lea { w: bool, dst: u8, base: u8, disp: i32 },
    CallR { r: u8 },
    Ret,
    Jmp { rel: i32 },
    Jcc { cc: u8, rel: i32 },
    Ud2,
    MovsdLoad { dst: u8, base: u8, disp: i32 },
    MovsdStore { base: u8, disp: i32, src: u8 },
    MovapdXX { dst: u8, src: u8 },
    SseArith { opcode: u8, dst: u8, src: u8 },
    Ucomisd { a: u8, b: u8 },
    Andpd { dst: u8, src: u8 },
    Xorpd { dst: u8, src: u8 },
    MovqXR { dst: u8, src: u8 },
    MovqRX { dst: u8, src: u8 },
    Cvttsd2si { dst: u8, src: u8 },
    Cvtsi2sd { dst: u8, src: u8 },
}

#[derive(Debug, Clone, Copy)]
pub(super) struct Decoded {
    pub off: usize,
    pub len: usize,
    pub op: Op,
}

struct Dec<'a> {
    b: &'a [u8],
    p: usize,
}

impl Dec<'_> {
    fn u8(&mut self) -> Result<u8, String> {
        let v = *self.b.get(self.p).ok_or("truncated instruction")?;
        self.p += 1;
        Ok(v)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.p).copied()
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes([self.u8()?, self.u8()?, self.u8()?, self.u8()?]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from(self.u32()?) | (u64::from(self.u32()?) << 32))
    }

    /// ModRM (+ SIB + disp32 for memory operands): returns the extended
    /// reg field and the r/m operand.
    fn modrm(&mut self, rex: u8) -> Result<(u8, Rm), String> {
        let m = self.u8()?;
        let reg = ((m >> 3) & 7) + if rex & 4 != 0 { 8 } else { 0 };
        let rm_lo = m & 7;
        let bump = if rex & 1 != 0 { 8 } else { 0 };
        match m >> 6 {
            0b11 => Ok((reg, Rm::Reg(rm_lo + bump))),
            0b10 => {
                if rm_lo == 4 {
                    let sib = self.u8()?;
                    if sib != 0x24 {
                        return Err(format!("unexpected SIB byte {sib:#04x}"));
                    }
                }
                let disp = self.u32()? as i32;
                Ok((reg, Rm::Mem { base: rm_lo + bump, disp }))
            }
            other => Err(format!("unsupported ModRM mod={other}")),
        }
    }
}

fn mem(rm: Rm) -> Result<(u8, i32), String> {
    match rm {
        Rm::Mem { base, disp } => Ok((base, disp)),
        Rm::Reg(_) => Err("expected memory operand".into()),
    }
}

fn reg(rm: Rm) -> Result<u8, String> {
    match rm {
        Rm::Reg(r) => Ok(r),
        Rm::Mem { .. } => Err("expected register operand".into()),
    }
}

fn alu_from_rm_opcode(b: u8) -> Option<Alu> {
    match b {
        0x03 => Some(Alu::Add),
        0x2B => Some(Alu::Sub),
        0x23 => Some(Alu::And),
        0x0B => Some(Alu::Or),
        0x33 => Some(Alu::Xor),
        0x3B => Some(Alu::Cmp),
        _ => None,
    }
}

fn alu_from_mr_opcode(b: u8) -> Option<Alu> {
    match b {
        0x01 => Some(Alu::Add),
        0x29 => Some(Alu::Sub),
        0x21 => Some(Alu::And),
        0x09 => Some(Alu::Or),
        0x31 => Some(Alu::Xor),
        0x39 => Some(Alu::Cmp),
        _ => None,
    }
}

fn alu_from_imm_ext(e: u8) -> Option<Alu> {
    match e {
        0 => Some(Alu::Add),
        1 => Some(Alu::Or),
        4 => Some(Alu::And),
        5 => Some(Alu::Sub),
        6 => Some(Alu::Xor),
        7 => Some(Alu::Cmp),
        _ => None,
    }
}

/// Decodes the instruction at `off`; returns the op and its length.
fn decode_one(bytes: &[u8], off: usize) -> Result<(Op, usize), String> {
    let mut d = Dec { b: bytes, p: off };
    let mut p66 = false;
    let mut pf2 = false;
    loop {
        match d.peek() {
            Some(0x66) if !p66 => {
                p66 = true;
                d.p += 1;
            }
            Some(0xF2) if !pf2 => {
                pf2 = true;
                d.p += 1;
            }
            _ => break,
        }
    }
    let mut rex = 0u8;
    if let Some(b) = d.peek() {
        if (0x40..=0x4F).contains(&b) {
            rex = b;
            d.p += 1;
        }
    }
    if rex & 2 != 0 {
        return Err("REX.X is never emitted".into());
    }
    let w = rex & 8 != 0;
    let opc = d.u8()?;
    let op = match opc {
        0x0F => {
            let o2 = d.u8()?;
            match o2 {
                0x10 | 0x11 if pf2 => {
                    let (x, rm) = d.modrm(rex)?;
                    let (base, disp) = mem(rm)?;
                    if o2 == 0x10 {
                        Op::MovsdLoad { dst: x, base, disp }
                    } else {
                        Op::MovsdStore { base, disp, src: x }
                    }
                }
                0x28 if p66 => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::MovapdXX { dst, src: reg(rm)? }
                }
                0x2A if pf2 => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::Cvtsi2sd { dst, src: reg(rm)? }
                }
                0x2C if pf2 => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::Cvttsd2si { dst, src: reg(rm)? }
                }
                0x2E if p66 => {
                    let (a, rm) = d.modrm(rex)?;
                    Op::Ucomisd { a, b: reg(rm)? }
                }
                0x51 | 0x58 | 0x59 | 0x5C | 0x5E if pf2 => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::SseArith { opcode: o2, dst, src: reg(rm)? }
                }
                0x54 if p66 => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::Andpd { dst, src: reg(rm)? }
                }
                0x57 if p66 => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::Xorpd { dst, src: reg(rm)? }
                }
                0x6E if p66 && w => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::MovqXR { dst, src: reg(rm)? }
                }
                0x7E if p66 && w => {
                    let (src, rm) = d.modrm(rex)?;
                    Op::MovqRX { dst: reg(rm)?, src }
                }
                0x80..=0x8F if !p66 && !pf2 => Op::Jcc { cc: o2 - 0x80, rel: d.u32()? as i32 },
                0x90..=0x9F if !p66 && !pf2 => {
                    let (ext, rm) = d.modrm(rex)?;
                    if ext & 7 != 0 {
                        return Err("setcc with nonzero reg field".into());
                    }
                    Op::Setcc { cc: o2 - 0x90, r: reg(rm)? }
                }
                0xAF => {
                    let (dst, rm) = d.modrm(rex)?;
                    Op::ImulRR { w, dst, src: reg(rm)? }
                }
                0xB6 | 0xB7 | 0xBE | 0xBF => {
                    let (dst, rm) = d.modrm(rex)?;
                    let sign = o2 >= 0xBE;
                    let width = if o2 & 1 == 0 { 8 } else { 16 };
                    Op::Movx { sign, width, dst, rm }
                }
                0x0B => Op::Ud2,
                other => return Err(format!("unknown 0F opcode {other:#04x}")),
            }
        }
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 => {
            if !w {
                return Err("store-form ALU is only emitted 64-bit".into());
            }
            let aop = alu_from_mr_opcode(opc).expect("matched above");
            let (src, rm) = d.modrm(rex)?;
            let (base, disp) = mem(rm)?;
            Op::AluMemR { op: aop, base, disp, src }
        }
        0x03 | 0x0B | 0x23 | 0x2B | 0x33 | 0x3B => {
            let aop = alu_from_rm_opcode(opc).expect("matched above");
            let (dst, rm) = d.modrm(rex)?;
            match rm {
                Rm::Reg(src) => Op::AluRR { w, op: aop, dst, src },
                Rm::Mem { base, disp } => {
                    if w {
                        return Err("64-bit ALU load form is never emitted".into());
                    }
                    Op::AluLoad { op: aop, dst, base, disp }
                }
            }
        }
        0x63 => {
            if !w {
                return Err("movsxd without REX.W".into());
            }
            let (dst, rm) = d.modrm(rex)?;
            Op::Movsxd { dst, src: reg(rm)? }
        }
        0x81 => {
            let (ext, rm) = d.modrm(rex)?;
            let aop = alu_from_imm_ext(ext & 7)
                .ok_or_else(|| format!("bad 0x81 extension {}", ext & 7))?;
            match rm {
                Rm::Reg(r) => Op::AluImm { w, op: aop, dst: r, imm: d.u32()? },
                Rm::Mem { base, disp } => {
                    Op::AluMemImm { w, op: aop, base, disp, imm: d.u32()? }
                }
            }
        }
        0x85 => {
            let (r, rm) = d.modrm(rex)?;
            match rm {
                Rm::Mem { base, disp } => {
                    if !w {
                        return Err("32-bit test-mem is never emitted".into());
                    }
                    Op::TestMemR { base, disp, src: r }
                }
                Rm::Reg(a) => {
                    if w {
                        return Err("64-bit test-reg is never emitted".into());
                    }
                    Op::TestRR { a, b: r }
                }
            }
        }
        0x89 => {
            let (src, rm) = d.modrm(rex)?;
            match rm {
                Rm::Mem { base, disp } => Op::MovStore { w, base, disp, src },
                Rm::Reg(dst) => Op::MovRR { w, dst, src },
            }
        }
        0x8B => {
            let (dst, rm) = d.modrm(rex)?;
            let (base, disp) = mem(rm)?;
            Op::MovLoad { w, dst, base, disp }
        }
        0x8D => {
            let (dst, rm) = d.modrm(rex)?;
            let (base, disp) = mem(rm)?;
            Op::Lea { w, dst, base, disp }
        }
        0x99 => Op::Cdq,
        0xB8..=0xBF => {
            let dst = (opc - 0xB8) + if rex & 1 != 0 { 8 } else { 0 };
            if w {
                Op::MovImm64 { dst, imm: d.u64()? }
            } else {
                Op::MovImm32 { dst, imm: d.u32()? }
            }
        }
        0xC1 => {
            let (ext, rm) = d.modrm(rex)?;
            let r = reg(rm)?;
            let ext = ext & 7;
            if w {
                if ext != 5 {
                    return Err(format!("64-bit shift-imm /{ext} is never emitted"));
                }
                Op::Shr64Imm { r, imm: d.u8()? }
            } else {
                if !matches!(ext, 4 | 5 | 7) {
                    return Err(format!("bad shift extension /{ext}"));
                }
                Op::ShiftImm { ext, r, imm: d.u8()? }
            }
        }
        0xC3 => Op::Ret,
        0xC6 => {
            let (ext, rm) = d.modrm(rex)?;
            if ext & 7 != 0 {
                return Err("mov-imm8 with nonzero reg field".into());
            }
            let (base, disp) = mem(rm)?;
            Op::MovMemImm { size: 1, base, disp, imm: u32::from(d.u8()?) }
        }
        0xC7 => {
            let (ext, rm) = d.modrm(rex)?;
            if ext & 7 != 0 {
                return Err("mov-imm with nonzero reg field".into());
            }
            let (base, disp) = mem(rm)?;
            if p66 {
                Op::MovMemImm { size: 2, base, disp, imm: u32::from(d.u16()?) }
            } else {
                Op::MovMemImm { size: if w { 8 } else { 4 }, base, disp, imm: d.u32()? }
            }
        }
        0xD3 => {
            let (ext, rm) = d.modrm(rex)?;
            let r = reg(rm)?;
            let ext = ext & 7;
            if w {
                if ext != 0 {
                    return Err(format!("64-bit D3 /{ext} is never emitted"));
                }
                Op::Rol64Cl { r }
            } else {
                if !matches!(ext, 4 | 5 | 7) {
                    return Err(format!("bad shift-cl extension /{ext}"));
                }
                Op::ShiftCl { ext, r }
            }
        }
        0xE9 => Op::Jmp { rel: d.u32()? as i32 },
        0xF7 => {
            let (ext, rm) = d.modrm(rex)?;
            let r = reg(rm)?;
            match ext & 7 {
                7 => Op::Idiv { r },
                3 => Op::Neg { r },
                e => return Err(format!("bad 0xF7 extension /{e}")),
            }
        }
        0xFF => {
            let (ext, rm) = d.modrm(rex)?;
            match (ext & 7, rm) {
                (0, Rm::Mem { base, disp }) => {
                    if !w {
                        return Err("32-bit inc-mem is never emitted".into());
                    }
                    Op::IncMem64 { base, disp }
                }
                (2, Rm::Reg(r)) => Op::CallR { r },
                (e, _) => return Err(format!("bad 0xFF form /{e}")),
            }
        }
        other => return Err(format!("unknown opcode {other:#04x}")),
    };
    Ok((op, d.p - off))
}

/// Decodes the whole fragment, or reports the offset where decoding
/// failed.
pub(super) fn decode_all(bytes: &[u8]) -> Result<Vec<Decoded>, (usize, String)> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < bytes.len() {
        let (op, len) = decode_one(bytes, off).map_err(|e| (off, e))?;
        out.push(Decoded { off, len, op });
        off += len;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Abstract interpreter
// ---------------------------------------------------------------------

const RSP: u8 = 4;
const R15: u8 = 15;
const PAGE: u64 = 4096;

/// What the checker knows about a register's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    Top,
    /// Exactly this value (helper addresses, small constants).
    Imm(u64),
    /// Unsigned value `<= bound`.
    Bounded(u64),
    /// Context pointer plus a constant byte offset.
    CtxPtr(u64),
    /// Bounds-checked guest-page data pointer plus a constant offset.
    PagePtr(u64),
    /// Profile-table pointer (`prof_counts` / `prof_trips`).
    TablePtr,
}

use AbsVal::{Bounded, CtxPtr, Imm, PagePtr, TablePtr, Top};

/// A compare whose very next instruction may refine a bound.
#[derive(Debug, Clone, Copy)]
enum LastCmp {
    RegImm { r: u8, imm: u32 },
    CtxImm { eff: i64, imm: u32 },
}

/// Classification of one memory access.
enum MemClass {
    Ctx(i64),
    Page,
    Table,
    Bad(String),
}

fn trunc32(v: AbsVal) -> AbsVal {
    match v {
        Imm(x) => Imm(x & 0xFFFF_FFFF),
        Bounded(m) => Bounded(m.min(u64::from(u32::MAX))),
        _ => Bounded(u64::from(u32::MAX)),
    }
}

struct Checker<'a> {
    regs: [AbsVal; 16],
    /// Known upper bounds of 32-bit context fields (`cmp dword
    /// [r15+eff], imm` + `ja`/`jae` guards), by effective offset.
    bounds: HashMap<i64, u64>,
    cmp: Option<LastCmp>,
    helpers: &'a [usize],
    findings: Vec<CheckFinding>,
}

impl<'a> Checker<'a> {
    fn new(helpers: &'a [usize]) -> Checker<'a> {
        let mut c = Checker {
            regs: [Top; 16],
            bounds: HashMap::new(),
            cmp: None,
            helpers,
            findings: Vec::new(),
        };
        c.regs[R15 as usize] = CtxPtr(0);
        c
    }

    /// Join-free merge at a branch target: forget everything except the
    /// pinned context pointer.
    fn reset(&mut self) {
        self.regs = [Top; 16];
        self.regs[R15 as usize] = CtxPtr(0);
        self.bounds.clear();
        self.cmp = None;
    }

    fn finding(&mut self, kind: CheckKind, off: usize, msg: String) {
        self.findings.push(CheckFinding { kind, off, msg });
    }

    /// Register write with pinned-register discipline.
    fn write(&mut self, off: usize, r: u8, v: AbsVal) {
        if r == R15 || r == RSP {
            let name = if r == R15 { "r15 (context pointer)" } else { "rsp" };
            self.finding(
                CheckKind::RegDiscipline,
                off,
                format!("write to pinned register {name}"),
            );
            return;
        }
        self.regs[r as usize] = v;
    }

    /// Classifies and bounds-checks a `[base + disp]` access of `len`
    /// bytes; records a finding when it cannot be proven safe.
    fn mem(&mut self, off: usize, base: u8, disp: i32, len: u8) -> MemClass {
        let ctx_size = std::mem::size_of::<NativeCtx>() as i64;
        let cls = match self.regs[base as usize] {
            CtxPtr(m) => {
                let eff = m as i64 + i64::from(disp);
                if eff < 0 || eff + i64::from(len) > ctx_size {
                    MemClass::Bad(format!(
                        "context access at offset {eff} (+{len}) outside NativeCtx ({ctx_size} bytes)"
                    ))
                } else {
                    MemClass::Ctx(eff)
                }
            }
            PagePtr(m) => {
                let eff = m as i64 + i64::from(disp);
                if eff < 0 || eff + i64::from(len) > PAGE as i64 {
                    MemClass::Bad(format!(
                        "page access at offset {eff} (+{len}) not proven within the 4 KiB page"
                    ))
                } else {
                    MemClass::Page
                }
            }
            TablePtr => {
                if disp < 0 {
                    MemClass::Bad("negative profile-table offset".into())
                } else {
                    MemClass::Table
                }
            }
            other => MemClass::Bad(format!(
                "access through r{base} = {other:?}, not a proven context/page/table pointer"
            )),
        };
        if let MemClass::Bad(msg) = &cls {
            let kind = if matches!(self.regs[base as usize], CtxPtr(_)) {
                CheckKind::CtxBounds
            } else {
                CheckKind::MemDiscipline
            };
            self.finding(kind, off, msg.clone());
        }
        cls
    }

    /// A store to a context field invalidates any bound established for
    /// it (e.g. the transaction-buffer length after its increment).
    fn store_effect(&mut self, cls: &MemClass) {
        if let MemClass::Ctx(eff) = cls {
            self.bounds.remove(eff);
        }
    }

    /// Value produced by a load, refined by what is known about the
    /// loaded context field.
    fn load_value(&mut self, cls: &MemClass, len: u8, w: bool) -> AbsVal {
        match (cls, w) {
            (MemClass::Ctx(eff), false) => match self.bounds.get(eff) {
                Some(&b) => Bounded(b),
                None => Bounded(u64::from(u32::MAX)),
            },
            (MemClass::Ctx(eff), true) => {
                let tlb_lo = i64::from(O_TLB);
                let tlb_hi = tlb_lo + (TLB_SLOTS as i64) * 16;
                if len == 8 && *eff >= tlb_lo && *eff + 8 <= tlb_hi && (*eff - tlb_lo) % 16 == 8 {
                    // The data-pointer half of a TLB slot: a valid page
                    // pointer whenever the adjacent tag matched.
                    PagePtr(0)
                } else if len == 8
                    && (*eff == i64::from(O_PROF_COUNTS) || *eff == i64::from(O_PROF_TRIPS))
                {
                    TablePtr
                } else {
                    Top
                }
            }
            (_, false) => Bounded(u64::from(u32::MAX)),
            (_, true) => Top,
        }
    }

    fn step(&mut self, d: &Decoded) {
        let off = d.off;
        let prev_cmp = self.cmp.take();
        match d.op {
            Op::MovLoad { w, dst, base, disp } => {
                let cls = self.mem(off, base, disp, if w { 8 } else { 4 });
                let v = self.load_value(&cls, if w { 8 } else { 4 }, w);
                self.write(off, dst, v);
            }
            Op::MovStore { w, base, disp, src: _ } => {
                let cls = self.mem(off, base, disp, if w { 8 } else { 4 });
                self.store_effect(&cls);
            }
            Op::MovRR { w, dst, src } => {
                let v = if w { self.regs[src as usize] } else { trunc32(self.regs[src as usize]) };
                self.write(off, dst, v);
            }
            Op::MovImm32 { dst, imm } => self.write(off, dst, Imm(u64::from(imm))),
            Op::MovImm64 { dst, imm } => self.write(off, dst, Imm(imm)),
            Op::MovMemImm { size, base, disp, imm: _ } => {
                let cls = self.mem(off, base, disp, size);
                self.store_effect(&cls);
            }
            Op::Movx { sign, width, dst, rm } => {
                if let Rm::Mem { base, disp } = rm {
                    self.mem(off, base, disp, width / 8);
                }
                let v = if sign {
                    Bounded(u64::from(u32::MAX))
                } else if width == 8 {
                    Bounded(0xFF)
                } else {
                    Bounded(0xFFFF)
                };
                self.write(off, dst, v);
            }
            Op::Movsxd { dst, .. } => self.write(off, dst, Top),
            Op::AluRR { w, op, dst, src } => {
                if op == Alu::Cmp {
                    return;
                }
                let (a, b) = (self.regs[dst as usize], self.regs[src as usize]);
                let mut v = match op {
                    Alu::Add => match (a, b) {
                        (Imm(x), Imm(y)) => Imm(x.wrapping_add(y)),
                        (CtxPtr(m), Imm(x) | Bounded(x)) | (Imm(x) | Bounded(x), CtxPtr(m)) => {
                            CtxPtr(m.saturating_add(x))
                        }
                        (PagePtr(m), Imm(x) | Bounded(x)) | (Imm(x) | Bounded(x), PagePtr(m)) => {
                            PagePtr(m.saturating_add(x))
                        }
                        (Imm(x) | Bounded(x), Imm(y) | Bounded(y)) => match x.checked_add(y) {
                            Some(s) => Bounded(s),
                            None => Top,
                        },
                        _ => Top,
                    },
                    Alu::And => match (a, b) {
                        (Imm(x), Imm(y)) => Imm(x & y),
                        (Imm(m) | Bounded(m), _) | (_, Imm(m) | Bounded(m)) => Bounded(m),
                        _ => Top,
                    },
                    Alu::Sub => match (a, b) {
                        (Imm(x), Imm(y)) => Imm(x.wrapping_sub(y)),
                        _ => Top,
                    },
                    _ => Top,
                };
                if !w {
                    v = trunc32(v);
                }
                self.write(off, dst, v);
            }
            Op::AluLoad { op, dst, base, disp } => {
                self.mem(off, base, disp, 4);
                if op != Alu::Cmp {
                    self.write(off, dst, Bounded(u64::from(u32::MAX)));
                }
            }
            Op::AluImm { w, op, dst, imm } => {
                if op == Alu::Cmp {
                    if !w {
                        self.cmp = Some(LastCmp::RegImm { r: dst, imm });
                    }
                    return;
                }
                let a = self.regs[dst as usize];
                let x = u64::from(imm);
                let mut v = match op {
                    Alu::Add => match a {
                        Imm(y) => Imm(y.wrapping_add(x)),
                        Bounded(m) => match m.checked_add(x) {
                            Some(s) => Bounded(s),
                            None => Top,
                        },
                        CtxPtr(m) => CtxPtr(m.saturating_add(x)),
                        PagePtr(m) => PagePtr(m.saturating_add(x)),
                        _ => Top,
                    },
                    Alu::And => match a {
                        Imm(y) => Imm(y & x),
                        _ => Bounded(x),
                    },
                    Alu::Sub => match a {
                        Imm(y) => Imm(y.wrapping_sub(x)),
                        _ => Top,
                    },
                    _ => Top,
                };
                if !w {
                    v = trunc32(v);
                }
                self.write(off, dst, v);
            }
            Op::AluMemImm { w: _, op, base, disp, imm } => {
                let cls = self.mem(off, base, disp, if d.op_is_wide() { 8 } else { 4 });
                if op == Alu::Cmp {
                    if let MemClass::Ctx(eff) = cls {
                        self.cmp = Some(LastCmp::CtxImm { eff, imm });
                    }
                } else {
                    self.store_effect(&cls);
                }
            }
            Op::AluMemR { op, base, disp, src: _ } => {
                let cls = self.mem(off, base, disp, 8);
                if op != Alu::Cmp {
                    self.store_effect(&cls);
                }
            }
            Op::Rol64Cl { r } => self.write(off, r, Top),
            Op::TestMemR { base, disp, .. } => {
                self.mem(off, base, disp, 8);
            }
            Op::TestRR { .. } | Op::Ud2 | Op::Ret => {}
            Op::ImulRR { w, dst, .. } => {
                let v = if w { Top } else { Bounded(u64::from(u32::MAX)) };
                self.write(off, dst, v);
            }
            Op::Cdq => self.write(off, 2, Bounded(u64::from(u32::MAX))),
            Op::Idiv { .. } => {
                self.write(off, 0, Bounded(u64::from(u32::MAX)));
                self.write(off, 2, Bounded(u64::from(u32::MAX)));
            }
            Op::Neg { r } => self.write(off, r, Bounded(u64::from(u32::MAX))),
            Op::ShiftCl { r, .. } => self.write(off, r, Bounded(u64::from(u32::MAX))),
            Op::Shr64Imm { r, imm } => {
                let v = match self.regs[r as usize] {
                    Imm(x) => Imm(x >> (imm & 63)),
                    Bounded(m) => Bounded(m >> (imm & 63)),
                    _ => Top,
                };
                self.write(off, r, v);
            }
            Op::ShiftImm { ext, r, imm } => {
                let sh = u32::from(imm & 31);
                let v = match (ext, self.regs[r as usize]) {
                    (4, Imm(x)) => Imm(u64::from((x as u32) << sh)),
                    (4, Bounded(m)) => match u32::try_from(m).ok().and_then(|m| m.checked_shl(sh)) {
                        Some(s) => Bounded(u64::from(s)),
                        None => Bounded(u64::from(u32::MAX)),
                    },
                    (5, Imm(x)) => Imm(u64::from((x as u32) >> sh)),
                    (5, Bounded(m)) => Bounded(u64::from(u32::try_from(m.min(u64::from(u32::MAX))).expect("clamped") >> sh)),
                    (5, _) => Bounded(u64::from(u32::MAX >> sh)),
                    _ => Bounded(u64::from(u32::MAX)),
                };
                self.write(off, r, v);
            }
            Op::Setcc { r, .. } => self.write(off, r, Top),
            Op::IncMem64 { base, disp } => {
                let cls = self.mem(off, base, disp, 8);
                self.store_effect(&cls);
            }
            Op::Lea { w, dst, base, disp } => {
                let v = if !w {
                    Bounded(u64::from(u32::MAX))
                } else {
                    match self.regs[base as usize] {
                        Imm(m) => Imm(m.wrapping_add(disp as i64 as u64)),
                        Bounded(m) if disp >= 0 => Bounded(m.saturating_add(disp as u64)),
                        CtxPtr(m) if disp >= 0 => CtxPtr(m.saturating_add(disp as u64)),
                        PagePtr(m) if disp >= 0 => PagePtr(m.saturating_add(disp as u64)),
                        _ => Top,
                    }
                };
                self.write(off, dst, v);
            }
            Op::CallR { r } => {
                let target_ok = r == 0
                    && matches!(self.regs[0], Imm(a) if self.helpers.contains(&(a as usize)));
                if !target_ok {
                    self.finding(
                        CheckKind::HelperCall,
                        off,
                        format!(
                            "indirect call through r{r} = {:?} is not `mov rax, <helper>; call rax`",
                            self.regs[r as usize]
                        ),
                    );
                }
                // SysV: caller-saved registers die, and the helper may
                // have grown the transaction buffers.
                for cs in [0u8, 1, 2, 6, 7, 8, 9, 10, 11] {
                    self.regs[cs as usize] = Top;
                }
                self.bounds.clear();
            }
            Op::Jmp { .. } => {}
            Op::Jcc { cc, .. } => {
                // `cmp x, imm` immediately followed by `ja`/`jae slow`
                // bounds x on the fall-through path.
                if let Some(c) = prev_cmp {
                    let bound = match cc {
                        CC_A => Some(u64::from(c.imm())),
                        CC_AE => u64::from(c.imm()).checked_sub(1),
                        _ => None,
                    };
                    if let Some(b) = bound {
                        match c {
                            LastCmp::RegImm { r, .. } => {
                                if r != R15 && r != RSP {
                                    self.regs[r as usize] = Bounded(b);
                                }
                            }
                            LastCmp::CtxImm { eff, .. } => {
                                self.bounds.insert(eff, b);
                            }
                        }
                    }
                }
            }
            Op::MovsdLoad { base, disp, .. } => {
                self.mem(off, base, disp, 8);
            }
            Op::MovsdStore { base, disp, .. } => {
                let cls = self.mem(off, base, disp, 8);
                self.store_effect(&cls);
            }
            Op::MovapdXX { .. }
            | Op::SseArith { .. }
            | Op::Ucomisd { .. }
            | Op::Andpd { .. }
            | Op::Xorpd { .. }
            | Op::MovqXR { .. }
            | Op::Cvtsi2sd { .. } => {}
            Op::MovqRX { dst, .. } => self.write(off, dst, Top),
            Op::Cvttsd2si { dst, .. } => self.write(off, dst, Bounded(u64::from(u32::MAX))),
        }
    }
}

impl LastCmp {
    fn imm(self) -> u32 {
        match self {
            LastCmp::RegImm { imm, .. } | LastCmp::CtxImm { imm, .. } => imm,
        }
    }
}

impl Decoded {
    /// Whether an `AluMemImm` was the 64-bit form (affects the access
    /// width only).
    fn op_is_wide(&self) -> bool {
        matches!(self.op, Op::AluMemImm { w: true, .. })
    }
}

/// Checks one compiled fragment: decodes it, validates every rel32
/// branch target, and abstract-interprets the instruction stream.
/// `helpers` is the set of valid helper entry addresses.
pub(super) fn check_fragment(bytes: &[u8], helpers: &[usize]) -> Vec<CheckFinding> {
    let decoded = match decode_all(bytes) {
        Ok(d) => d,
        Err((off, msg)) => {
            return vec![CheckFinding {
                kind: CheckKind::Decode,
                off,
                msg: format!("undecodable bytes: {msg}"),
            }]
        }
    };
    let boundaries: BTreeSet<usize> = decoded.iter().map(|d| d.off).collect();
    let mut checker = Checker::new(helpers);
    let mut targets = BTreeSet::new();
    for d in &decoded {
        let rel = match d.op {
            Op::Jmp { rel } => Some(rel),
            Op::Jcc { rel, .. } => Some(rel),
            _ => None,
        };
        if let Some(rel) = rel {
            let t = d.off as i64 + d.len as i64 + i64::from(rel);
            if t < 0 || t >= bytes.len() as i64 || !boundaries.contains(&(t as usize)) {
                checker.finding(
                    CheckKind::BranchTarget,
                    d.off,
                    format!("rel32 branch to +{t:#x} is not an instruction boundary in the fragment"),
                );
            } else {
                targets.insert(t as usize);
            }
        }
    }
    for d in &decoded {
        if targets.contains(&d.off) {
            checker.reset();
        }
        checker.step(d);
    }
    checker.findings
}

#[cfg(test)]
mod tests {
    use super::super::lower::{compile_fragment, Helpers};
    use super::super::x64::{Asm, Lab, CC_E, CC_NE, RAX, RCX, RDI, RSI, R12, R15, R8, XMM0, XMM1};
    use super::*;
    use crate::insn::{FAluOp, HAluOp, HInsn};
    use crate::regs::{HFreg, HReg};
    use darco_guest::prng::{Rng, SmallRng};
    use darco_guest::Width;
    use std::collections::BTreeMap;

    fn fake_helpers() -> Helpers {
        // Distinct, recognizable non-code addresses; the checker only
        // compares them, never calls them.
        Helpers {
            chkpt: 0x1000,
            commit: 0x1008,
            exit_commit: 0x1010,
            count_trip: 0x1018,
            rollback: 0x1020,
            slow_load: 0x1028,
            slow_store: 0x1030,
            ibtc: 0x1038,
            bl_routine: 0x1040,
        }
    }

    fn helper_list(h: &Helpers) -> Vec<usize> {
        vec![
            h.chkpt,
            h.commit,
            h.exit_commit,
            h.count_trip,
            h.rollback,
            h.slow_load,
            h.slow_store,
            h.ibtc,
            h.bl_routine,
        ]
    }

    /// A representative arena exercising every lowering family: ALU
    /// (including div and compares), loads/stores (int + float, spec),
    /// FP arithmetic and conversions, branches in and out of the
    /// fragment, profiling, transactions and the IBTC.
    fn sample_arena() -> Vec<HInsn> {
        vec![
            HInsn::Chkpt,
            HInsn::Li16 { rd: HReg(1), imm: 100 },
            HInsn::Li16 { rd: HReg(2), imm: 7 },
            HInsn::Alu { op: HAluOp::Add, rd: HReg(3), ra: HReg(1), rb: HReg(2) },
            HInsn::AluI { op: HAluOp::Shl, rd: HReg(4), ra: HReg(3), imm: 2 },
            HInsn::Alu { op: HAluOp::Div, rd: HReg(5), ra: HReg(1), rb: HReg(2) },
            HInsn::Alu { op: HAluOp::SltU, rd: HReg(6), ra: HReg(5), rb: HReg(1) },
            HInsn::Alu { op: HAluOp::MulHS, rd: HReg(7), ra: HReg(1), rb: HReg(2) },
            HInsn::Load {
                rd: HReg(8),
                base: HReg(1),
                off: 4,
                width: Width::D,
                sign: false,
                spec: true,
                seq: 1,
            },
            HInsn::Store { rs: HReg(8), base: HReg(1), off: 8, width: Width::W, spec: false, seq: 2 },
            HInsn::LoadF { fd: HFreg(0), base: HReg(1), off: 16, spec: false, seq: 3 },
            HInsn::FAlu { op: FAluOp::Mul, fd: HFreg(1), fa: HFreg(0), fb: HFreg(0) },
            HInsn::FAlu { op: FAluOp::Min, fd: HFreg(2), fa: HFreg(1), fb: HFreg(0) },
            HInsn::CvtFI { rd: HReg(9), fa: HFreg(2) },
            HInsn::CvtIF { fd: HFreg(3), ra: HReg(9) },
            HInsn::StoreF { fs: HFreg(3), base: HReg(1), off: 24, spec: false, seq: 4 },
            HInsn::AssertNz { rs: HReg(1) },
            HInsn::Gcnt { n: 12, sb: true },
            HInsn::Count { idx: 3 },
            HInsn::Bz { rs: HReg(6), rel: 2 },
            HInsn::Commit,
            HInsn::TolExit { id: 1 },
            HInsn::IbtcJmp { rs: HReg(8), id: 2 },
        ]
    }

    #[test]
    fn real_fragment_verifies_clean() {
        let h = fake_helpers();
        let arena = sample_arena();
        let out = compile_fragment(&arena, 0, 0, &h);
        let findings = check_fragment(&out.bytes, &helper_list(&h));
        assert!(
            findings.is_empty(),
            "legitimate fragment flagged:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn planted_r15_clobber_is_flagged() {
        let h = fake_helpers();
        let arena = sample_arena();
        let mut out = compile_fragment(&arena, 0, 0, &h);
        // `mov r15, r15`: a runtime no-op, but a forbidden write — the
        // exact mutation `plant_clobber` injects.
        out.bytes.extend_from_slice(&[0x4D, 0x89, 0xFF]);
        let findings = check_fragment(&out.bytes, &helper_list(&h));
        assert!(
            findings.iter().any(|f| f.kind == CheckKind::RegDiscipline),
            "clobber not caught: {:?}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupted_byte_is_a_decode_finding() {
        let h = fake_helpers();
        let arena = sample_arena();
        let mut out = compile_fragment(&arena, 0, 0, &h);
        out.bytes[0] = 0x06; // not an opcode the emitter produces
        let findings = check_fragment(&out.bytes, &helper_list(&h));
        assert!(findings.iter().any(|f| f.kind == CheckKind::Decode));
    }

    #[test]
    fn unproven_pointer_and_ctx_oob_are_flagged() {
        let mut a = Asm::new();
        a.mov_r32_mem(RAX, RCX, 0); // rcx: never established
        a.mov_r32_mem(RAX, R15, std::mem::size_of::<NativeCtx>() as i32); // past the ctx
        a.ret();
        let findings = check_fragment(&a.finish(), &[]);
        assert!(findings.iter().any(|f| f.kind == CheckKind::MemDiscipline));
        assert!(findings.iter().any(|f| f.kind == CheckKind::CtxBounds));
    }

    #[test]
    fn rogue_call_and_bad_branch_are_flagged() {
        let mut a = Asm::new();
        a.mov_r64_imm(RAX, 0xDEAD_BEEF); // not a registered helper
        a.call_r(RAX);
        a.jmp_rel(1); // lands inside the next instruction's immediate
        a.mov_r64_imm(RCX, 0);
        a.ret();
        let findings = check_fragment(&a.finish(), &[0x1000]);
        assert!(findings.iter().any(|f| f.kind == CheckKind::HelperCall));
        assert!(findings.iter().any(|f| f.kind == CheckKind::BranchTarget));
    }

    #[test]
    fn tlb_fast_path_without_bounds_guard_is_flagged() {
        // A page-pointer deref whose in-page offset was never compared
        // against 4096-len must not verify.
        let mut a = Asm::new();
        a.mov_r64_mem(RCX, R15, O_TLB + 8); // page data pointer
        a.mov_r32_mem(RAX, RSI, 0); // rsi unproven — and unbounded
        a.alu_rr64(Alu::Add, RCX, RSI);
        a.ret();
        let findings = check_fragment(&a.finish(), &[]);
        assert!(findings.iter().any(|f| f.kind == CheckKind::MemDiscipline));
    }

    // ---- decoder round-trip property test ----

    /// Re-emits a decoded instruction stream through `Asm`; bytes must
    /// come back identical (labels are re-bound at the decoded branch
    /// targets).
    fn reemit(decoded: &[Decoded], total_len: usize) -> Vec<u8> {
        let mut a = Asm::new();
        let mut labels: BTreeMap<usize, Lab> = BTreeMap::new();
        for d in decoded {
            if let Op::Jcc { rel, .. } = d.op {
                let t = (d.off as i64 + d.len as i64 + i64::from(rel)) as usize;
                labels.entry(t).or_insert_with(|| a.new_label());
            }
        }
        for d in decoded {
            if let Some(&l) = labels.get(&d.off) {
                a.bind(l);
            }
            assert_eq!(a.pos(), d.off, "re-emission drifted at {:?}", d.op);
            match d.op {
                Op::MovLoad { w: false, dst, base, disp } => a.mov_r32_mem(dst, base, disp),
                Op::MovLoad { w: true, dst, base, disp } => a.mov_r64_mem(dst, base, disp),
                Op::MovStore { w: false, base, disp, src } => a.mov_mem_r32(base, disp, src),
                Op::MovStore { w: true, base, disp, src } => a.mov_mem_r64(base, disp, src),
                Op::MovRR { w: false, dst, src } => a.mov_rr32(dst, src),
                Op::MovRR { w: true, dst, src } => a.mov_rr64(dst, src),
                Op::MovImm32 { dst, imm } => a.mov_r32_imm(dst, imm),
                Op::MovImm64 { dst, imm } => a.mov_r64_imm(dst, imm),
                Op::MovMemImm { size: 1, base, disp, imm } => a.mov_mem8_imm(base, disp, imm as u8),
                Op::MovMemImm { size: 2, base, disp, imm } => {
                    a.mov_mem16_imm(base, disp, imm as u16)
                }
                Op::MovMemImm { size: 4, base, disp, imm } => a.mov_mem32_imm(base, disp, imm),
                Op::MovMemImm { size: _, base, disp, imm } => {
                    a.mov_mem64_imm(base, disp, imm as i32)
                }
                Op::Movx { sign, width, dst, rm } => match (sign, width == 8, rm) {
                    (false, true, Rm::Mem { base, disp }) => a.movzx8_mem(dst, base, disp),
                    (false, false, Rm::Mem { base, disp }) => a.movzx16_mem(dst, base, disp),
                    (true, true, Rm::Mem { base, disp }) => a.movsx8_mem(dst, base, disp),
                    (true, false, Rm::Mem { base, disp }) => a.movsx16_mem(dst, base, disp),
                    (false, true, Rm::Reg(src)) => a.movzx8_rr(dst, src),
                    (false, false, Rm::Reg(src)) => a.movzx16_rr(dst, src),
                    (true, true, Rm::Reg(src)) => a.movsx8_rr(dst, src),
                    (true, false, Rm::Reg(src)) => a.movsx16_rr(dst, src),
                },
                Op::Movsxd { dst, src } => a.movsxd(dst, src),
                Op::AluRR { w: false, op, dst, src } => a.alu_rr32(op, dst, src),
                Op::AluRR { w: true, op, dst, src } => a.alu_rr64(op, dst, src),
                Op::AluLoad { op, dst, base, disp } => a.alu_r32_mem(op, dst, base, disp),
                Op::AluImm { w: false, op, dst, imm } => a.alu_r32_imm(op, dst, imm),
                Op::AluImm { w: true, op, dst, imm } => a.alu_r64_imm(op, dst, imm as i32),
                Op::AluMemImm { w: false, op, base, disp, imm } => {
                    a.alu_mem32_imm(op, base, disp, imm)
                }
                Op::AluMemImm { w: true, op, base, disp, imm } => {
                    a.alu_mem64_imm(op, base, disp, imm as i32)
                }
                Op::AluMemR { op, base, disp, src } => a.alu_mem64_r(op, base, disp, src),
                Op::Rol64Cl { r } => a.rol64_cl(r),
                Op::TestMemR { base, disp, src } => a.test_mem64_r(base, disp, src),
                Op::TestRR { a: x, b } => a.test_rr32(x, b),
                Op::ImulRR { w: false, dst, src } => a.imul_rr32(dst, src),
                Op::ImulRR { w: true, dst, src } => a.imul_rr64(dst, src),
                Op::Cdq => a.cdq(),
                Op::Idiv { r } => a.idiv_r32(r),
                Op::Neg { r } => a.neg_r32(r),
                Op::ShiftCl { ext, r } => a.shift_cl(ext, r),
                Op::Shr64Imm { r, imm } => a.shr_r64_imm(r, imm),
                Op::ShiftImm { ext, r, imm } => a.shift_r32_imm(ext, r, imm),
                Op::Setcc { cc, r } => a.setcc(cc, r),
                Op::IncMem64 { base, disp } => a.inc_mem64(base, disp),
                Op::Lea { w: false, dst, base, disp } => a.lea_r32(dst, base, disp),
                Op::Lea { w: true, dst, base, disp } => a.lea_r64(dst, base, disp),
                Op::CallR { r } => a.call_r(r),
                Op::Ret => a.ret(),
                Op::Jmp { rel } => {
                    a.jmp_rel(rel);
                }
                Op::Jcc { cc, rel } => {
                    let t = (d.off as i64 + d.len as i64 + i64::from(rel)) as usize;
                    a.jcc(cc, labels[&t]);
                }
                Op::Ud2 => a.ud2(),
                Op::MovsdLoad { dst, base, disp } => a.movsd_x_mem(dst, base, disp),
                Op::MovsdStore { base, disp, src } => a.movsd_mem_x(base, disp, src),
                Op::MovapdXX { dst, src } => a.movapd_xx(dst, src),
                Op::SseArith { opcode, dst, src } => a.sse_arith(opcode, dst, src),
                Op::Ucomisd { a: x, b } => a.ucomisd(x, b),
                Op::Andpd { dst, src } => a.andpd(dst, src),
                Op::Xorpd { dst, src } => a.xorpd(dst, src),
                Op::MovqXR { dst, src } => a.movq_x_r(dst, src),
                Op::MovqRX { dst, src } => a.movq_r_x(dst, src),
                Op::Cvttsd2si { dst, src } => a.cvttsd2si(dst, src),
                Op::Cvtsi2sd { dst, src } => a.cvtsi2sd(dst, src),
            }
        }
        for (&t, &l) in &labels {
            if t == total_len {
                a.bind(l);
            }
        }
        a.finish()
    }

    /// Emits one random instruction through every emitter method family.
    fn random_insn(a: &mut Asm, rng: &mut SmallRng, backward: &[usize]) {
        let r = |rng: &mut SmallRng| rng.gen_range(0u8..16);
        // Avoid rsp as a base only because the emitter itself never uses
        // it with an index-free SIB in a way the decoder rejects; every
        // other register, including r12/r13, exercises the SIB/disp
        // special cases.
        let base = |rng: &mut SmallRng| *[0u8, 1, 3, 5, 6, 7, 12, 13, 15].get(rng.gen_range(0usize..9)).unwrap();
        let xmm = |rng: &mut SmallRng| rng.gen_range(0u8..2);
        let disp = |rng: &mut SmallRng| rng.gen_range(-4096i32..4096);
        let alu = |rng: &mut SmallRng| {
            [Alu::Add, Alu::Sub, Alu::And, Alu::Or, Alu::Xor, Alu::Cmp][rng.gen_range(0usize..6)]
        };
        let cc = |rng: &mut SmallRng| {
            [0x2u8, 0x3, 0x4, 0x5, 0x6, 0x7, 0xA, 0xB, 0xC, 0xD, 0xE, 0xF][rng.gen_range(0usize..12)]
        };
        match rng.gen_range(0u32..40) {
            0 => a.mov_r32_mem(r(rng), base(rng), disp(rng)),
            1 => a.mov_mem_r32(base(rng), disp(rng), r(rng)),
            2 => a.mov_r64_mem(r(rng), base(rng), disp(rng)),
            3 => a.mov_mem_r64(base(rng), disp(rng), r(rng)),
            4 => a.mov_rr32(r(rng), r(rng)),
            5 => a.mov_rr64(r(rng), r(rng)),
            6 => a.mov_r32_imm(r(rng), rng.gen()),
            7 => a.mov_r64_imm(r(rng), rng.gen()),
            8 => a.mov_mem32_imm(base(rng), disp(rng), rng.gen()),
            9 => a.mov_mem64_imm(base(rng), disp(rng), rng.gen::<i32>()),
            10 => a.mov_mem16_imm(base(rng), disp(rng), rng.gen()),
            11 => a.mov_mem8_imm(base(rng), disp(rng), rng.gen()),
            12 => match rng.gen_range(0u32..4) {
                0 => a.movzx8_mem(r(rng), base(rng), disp(rng)),
                1 => a.movzx16_mem(r(rng), base(rng), disp(rng)),
                2 => a.movsx8_mem(r(rng), base(rng), disp(rng)),
                _ => a.movsx16_mem(r(rng), base(rng), disp(rng)),
            },
            13 => match rng.gen_range(0u32..4) {
                0 => a.movzx8_rr(r(rng), r(rng)),
                1 => a.movzx16_rr(r(rng), r(rng)),
                2 => a.movsx8_rr(r(rng), r(rng)),
                _ => a.movsx16_rr(r(rng), r(rng)),
            },
            14 => a.movsxd(r(rng), r(rng)),
            15 => a.alu_rr32(alu(rng), r(rng), r(rng)),
            16 => a.alu_rr64(alu(rng), r(rng), r(rng)),
            17 => a.alu_r32_mem(alu(rng), r(rng), base(rng), disp(rng)),
            18 => a.alu_r32_imm(alu(rng), r(rng), rng.gen()),
            19 => a.alu_r64_imm(alu(rng), r(rng), rng.gen::<i32>()),
            20 => a.alu_mem32_imm(alu(rng), base(rng), disp(rng), rng.gen()),
            21 => a.alu_mem64_imm(alu(rng), base(rng), disp(rng), rng.gen::<i32>()),
            22 => a.alu_mem64_r(alu(rng), base(rng), disp(rng), r(rng)),
            23 => a.rol64_cl(r(rng)),
            24 => a.test_mem64_r(base(rng), disp(rng), r(rng)),
            25 => a.test_rr32(r(rng), r(rng)),
            26 => {
                if rng.gen_bool(0.5) {
                    a.imul_rr32(r(rng), r(rng))
                } else {
                    a.imul_rr64(r(rng), r(rng))
                }
            }
            27 => {
                a.cdq();
                a.idiv_r32(r(rng));
                a.neg_r32(r(rng));
            }
            28 => a.shift_cl([4u8, 5, 7][rng.gen_range(0usize..3)], r(rng)),
            29 => a.shr_r64_imm(r(rng), rng.gen_range(0u8..64)),
            30 => a.shift_r32_imm([4u8, 5, 7][rng.gen_range(0usize..3)], r(rng), rng.gen_range(0u8..32)),
            31 => a.setcc(cc(rng), r(rng)),
            32 => a.inc_mem64(base(rng), disp(rng)),
            33 => {
                if rng.gen_bool(0.5) {
                    a.lea_r32(r(rng), base(rng), disp(rng))
                } else {
                    a.lea_r64(r(rng), base(rng), disp(rng))
                }
            }
            34 => a.call_r(r(rng)),
            35 => match rng.gen_range(0u32..5) {
                0 => a.movsd_x_mem(xmm(rng), base(rng), disp(rng)),
                1 => a.movsd_mem_x(base(rng), disp(rng), xmm(rng)),
                2 => a.movapd_xx(xmm(rng), xmm(rng)),
                3 => a.sse_arith([0x51u8, 0x58, 0x59, 0x5C, 0x5E][rng.gen_range(0usize..5)], xmm(rng), xmm(rng)),
                _ => a.ucomisd(xmm(rng), xmm(rng)),
            },
            36 => match rng.gen_range(0u32..6) {
                0 => a.andpd(xmm(rng), xmm(rng)),
                1 => a.xorpd(xmm(rng), xmm(rng)),
                2 => a.movq_x_r(xmm(rng), r(rng)),
                3 => a.movq_r_x(r(rng), xmm(rng)),
                4 => a.cvttsd2si(r(rng), xmm(rng)),
                _ => a.cvtsi2sd(xmm(rng), r(rng)),
            },
            37 => {
                a.ud2();
            }
            38 => {
                // Backward jcc to a previously recorded boundary.
                if let Some(&t) = backward.get(rng.gen_range(0usize..backward.len().max(1))) {
                    let l = a.new_label();
                    let here = a.pos();
                    a.jcc(cc(rng), l);
                    // Bind by emitting the label at the recorded offset
                    // is impossible after the fact; instead jump forward
                    // to the next instruction when no backward target.
                    let _ = (t, here);
                    a.bind(l);
                } else {
                    a.ud2();
                }
            }
            _ => {
                // Forward jmp over one filler instruction, plus a jcc to
                // the same place — covers both rel32 encoders.
                let l = a.new_label();
                a.jmp(l);
                a.mov_r32_imm(r(rng), rng.gen());
                a.bind(l);
                let l2 = a.new_label();
                a.jcc(cc(rng), l2);
                a.bind(l2);
            }
        }
    }

    #[test]
    fn emit_decode_reemit_is_byte_identical() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0DE_C0DE ^ seed);
            let mut a = Asm::new();
            let n = rng.gen_range(4usize..40);
            for _ in 0..n {
                random_insn(&mut a, &mut rng, &[]);
            }
            a.ret();
            let bytes = a.finish();
            let decoded = decode_all(&bytes)
                .unwrap_or_else(|(off, e)| panic!("seed {seed}: decode failed at +{off}: {e}"));
            let back = reemit(&decoded, bytes.len());
            assert_eq!(back, bytes, "seed {seed}: re-emission differs");
        }
    }

    #[test]
    fn real_fragment_decodes_and_reemits_byte_identical() {
        let h = fake_helpers();
        let arena = sample_arena();
        let out = compile_fragment(&arena, 0, 0, &h);
        let decoded = decode_all(&out.bytes)
            .unwrap_or_else(|(off, e)| panic!("decode failed at +{off}: {e}"));
        let back = reemit(&decoded, out.bytes.len());
        assert_eq!(back, out.bytes);
    }

    #[test]
    fn decoder_reports_offset_of_bad_byte() {
        let mut a = Asm::new();
        a.mov_r32_imm(RAX, 5);
        let mut bytes = a.finish();
        let at = bytes.len();
        bytes.push(0x06);
        assert_eq!(decode_all(&bytes).unwrap_err().0, at);
    }

    #[test]
    fn store_append_pattern_verifies_through_bound_refinement() {
        use super::super::exec::{O_STORE_BUF, O_STORE_LEN, STORE_CAP};
        let mut a = Asm::new();
        let slow = a.new_label();
        a.alu_mem32_imm(Alu::Cmp, R15, O_STORE_LEN, STORE_CAP as u32);
        a.jcc(CC_AE, slow);
        a.mov_r32_mem(RCX, R15, O_STORE_LEN);
        a.shift_r32_imm(4, RCX, 4);
        a.lea_r64(RCX, RCX, O_STORE_BUF);
        a.alu_rr64(Alu::Add, RCX, R15);
        a.mov_mem16_imm(RCX, 0, 7);
        a.mov_mem_r64(RCX, 8, R8);
        a.bind(slow);
        a.ret();
        let findings = check_fragment(&a.finish(), &[]);
        assert!(
            findings.is_empty(),
            "bounded buffer append flagged: {:?}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unguarded_buffer_index_is_flagged() {
        use super::super::exec::{O_STORE_BUF, O_STORE_LEN};
        // Same pattern minus the capacity guard: the index is unbounded,
        // so the slot store cannot be proven inside the context.
        let mut a = Asm::new();
        a.mov_r32_mem(RCX, R15, O_STORE_LEN);
        a.shift_r32_imm(4, RCX, 4);
        a.lea_r64(RCX, RCX, O_STORE_BUF);
        a.alu_rr64(Alu::Add, RCX, R15);
        a.mov_mem_r64(RCX, 8, R8);
        a.ret();
        let findings = check_fragment(&a.finish(), &[]);
        assert!(findings.iter().any(|f| f.kind == CheckKind::CtxBounds));
    }

    #[test]
    fn helper_call_shape_is_accepted() {
        let mut a = Asm::new();
        a.mov_rr64(RDI, R15);
        a.mov_r32_imm(RSI, 42);
        a.mov_r64_imm(RAX, 0x1000);
        a.call_r(RAX);
        a.ret();
        let findings = check_fragment(&a.finish(), &[0x1000]);
        assert!(findings.is_empty());
    }

    #[test]
    fn decode_covers_sse_and_fp_paths() {
        let mut a = Asm::new();
        a.movsd_x_mem(XMM0, R15, 256);
        a.movsd_x_mem(XMM1, R12, 8);
        a.sse_arith(0x58, XMM0, XMM1);
        a.ucomisd(XMM0, XMM1);
        a.setcc(CC_E, RSI); // forced-REX setcc on sil
        a.setcc(CC_NE, RAX);
        a.movq_x_r(XMM1, R8);
        a.movq_r_x(RCX, XMM0);
        a.cvttsd2si(RAX, XMM0);
        a.cvtsi2sd(XMM1, RCX);
        a.movsd_mem_x(R15, 264, XMM0);
        a.ret();
        let bytes = a.finish();
        let decoded = decode_all(&bytes).expect("decodes");
        assert_eq!(reemit(&decoded, bytes.len()), bytes);
    }
}
