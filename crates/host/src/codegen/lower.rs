//! HISA-fragment → x86-64 lowering.
//!
//! A *fragment* is a single-entry slice of the host-code arena, scanned
//! forward from the entry until the first unconditional terminator with
//! no pending forward branch target beyond it. In-range branch targets
//! become local labels; out-of-range targets become patchable
//! continue-exits (the trampoline chains them directly in native code).
//!
//! Bit-identity rules the whole lowering:
//! * every instruction's `dyn_cost` is accumulated into a compile-time
//!   `pending` counter and flushed to `ctx.executed`/`ctx.unattributed`
//!   *before* the instruction's effects, exactly like the emulator's
//!   cost-before-execute ordering;
//! * integer division, `Parity`, `MulHS`, FP min/max, FP compares and
//!   float→int conversion are lowered with explicit fix-ups so they match
//!   `eval_halu`/`eval_falu` (Rust semantics) bit for bit;
//! * memory runs an inline L0-TLB hit fast path whose guard conditions
//!   are strictly conservative — anything that could need store-buffer
//!   overlay, alias checks, faults or sorted insertion falls back to the
//!   slow-path helpers, which are transcriptions of the emulator.

use super::exec::{
    freg_off, ireg_off, CAUSE_ASSERT, CAUSE_DIV_ZERO, O_CONT_TARGET, O_EXECUTED, O_GCNT_BB,
    O_GCNT_SB, O_HELPER_EXIT, O_HOST_BB, O_HOST_SB, O_IBTC_CMP_SITE, O_IBTC_GUARD_SITE,
    O_IBTC_HITS, O_IBTC_JMP_SITE, O_IBTC_PC, O_PATCH_KIND, O_PATCH_SITE, O_PROF_COUNTS,
    O_PROF_TRIPS, O_SPEC_BUF, O_SPEC_HI, O_SPEC_LEN, O_SPEC_LO, O_STORE_BUF, O_STORE_HI,
    O_SPEC_BLOOM, O_STORE_BLOOM, O_STORE_LAST_SEQ, O_STORE_LEN, O_STORE_LO, O_TLB, O_UNATTR,
    RANGE_SPLIT, SPEC_CAP, STORE_CAP,
};
use super::x64::{
    Alu, Asm, Lab, Reg, CC_A, CC_AE, CC_B, CC_BE, CC_E, CC_NE, CC_NP, CC_P, R12, R13, R14, R15,
    R8, RAX, RBP, RBX, RCX, RDI, RDX, RSI, XMM0, XMM1,
};
use crate::insn::{add_rel, FCmpOp, FUnOp2, HAluOp, HInsn};
use darco_guest::Width;
use std::collections::{BTreeSet, HashMap};

/// Helper entry addresses, resolved by the engine.
pub(super) struct Helpers {
    pub chkpt: usize,
    pub commit: usize,
    pub exit_commit: usize,
    pub count_trip: usize,
    pub rollback: usize,
    pub slow_load: usize,
    pub slow_store: usize,
    pub ibtc: usize,
    pub bl_routine: usize,
}

/// Compiled fragment.
pub(super) struct FragOut {
    pub bytes: Vec<u8>,
    /// Distinct guest registers the fragment used beyond the cached set.
    pub spills: u64,
    /// One-past-the-last arena word the fragment's code depends on; a
    /// mutation anywhere in `[entry, end)` makes the code stale.
    pub end: usize,
}

/// Host registers holding cached guest integer registers (callee-saved,
/// so they survive helper calls).
const HOST_CACHE: [Reg; 5] = [RBX, RBP, R12, R13, R14];
/// Guest integer registers eligible for caching: r0–r55. The runtime
/// scratch/link registers r56–r63 stay in memory so the `Bl` routine
/// interpreter can mutate them behind the fragment's back.
const CACHE_CANDIDATES: usize = 56;
const MAX_FRAG: usize = 8192;

const SSE_ADD: u8 = 0x58;
const SSE_MUL: u8 = 0x59;
const SSE_SUB: u8 = 0x5C;
const SSE_DIV: u8 = 0x5E;
const SSE_SQRT: u8 = 0x51;

struct Scan {
    end: usize,
    targets: BTreeSet<usize>,
    /// Whether the fragment was cut before a terminator (needs a
    /// synthetic fallthrough continue-exit to `end`).
    fallthrough: bool,
}

fn scan(arena: &[HInsn], entry: usize) -> Scan {
    let mut targets = BTreeSet::new();
    let mut max_tgt = entry;
    let mut p = entry;
    loop {
        if p >= arena.len() {
            return Scan { end: p, targets, fallthrough: true };
        }
        let mut term = false;
        match arena[p] {
            HInsn::B { rel } => {
                let t = add_rel(p, rel);
                if t >= entry && t < entry + MAX_FRAG {
                    targets.insert(t);
                    max_tgt = max_tgt.max(t);
                }
                term = true;
            }
            HInsn::Bz { rel, .. } | HInsn::Bnz { rel, .. } => {
                let t = add_rel(p, rel);
                if t >= entry && t < entry + MAX_FRAG {
                    targets.insert(t);
                    max_tgt = max_tgt.max(t);
                }
            }
            HInsn::Blr
            | HInsn::TolExit { .. }
            | HInsn::ChainSlot { .. }
            | HInsn::IbtcJmp { .. } => term = true,
            _ => {}
        }
        if term && p >= max_tgt {
            return Scan { end: p + 1, targets, fallthrough: false };
        }
        p += 1;
        if p - entry >= MAX_FRAG {
            return Scan { end: p, targets, fallthrough: true };
        }
    }
}

/// Integer-register references of one instruction: (reads, write).
fn ireg_refs(insn: &HInsn) -> ([Option<usize>; 2], Option<usize>) {
    match *insn {
        HInsn::Alu { rd, ra, rb, .. } => ([Some(ra.index()), Some(rb.index())], Some(rd.index())),
        HInsn::AluI { rd, ra, .. } => ([Some(ra.index()), None], Some(rd.index())),
        HInsn::Lui { rd, .. } | HInsn::Li16 { rd, .. } => ([None, None], Some(rd.index())),
        HInsn::OriZ { rd, .. } => ([Some(rd.index()), None], Some(rd.index())),
        HInsn::Load { rd, base, .. } => ([Some(base.index()), None], Some(rd.index())),
        HInsn::Store { rs, base, .. } => ([Some(rs.index()), Some(base.index())], None),
        HInsn::LoadF { base, .. } | HInsn::StoreF { base, .. } => {
            ([Some(base.index()), None], None)
        }
        HInsn::Bz { rs, .. } | HInsn::Bnz { rs, .. } => ([Some(rs.index()), None], None),
        HInsn::FCmp { rd, .. } => ([None, None], Some(rd.index())),
        HInsn::CvtIF { ra, .. } => ([Some(ra.index()), None], None),
        HInsn::CvtFI { rd, .. } => ([None, None], Some(rd.index())),
        HInsn::AssertZ { rs } | HInsn::AssertNz { rs } => ([Some(rs.index()), None], None),
        HInsn::IbtcJmp { rs, .. } => ([Some(rs.index()), None], None),
        _ => ([None, None], None),
    }
}

struct Lowerer<'x> {
    a: Asm,
    arena: &'x [HInsn],
    entry: usize,
    end: usize,
    frag_base: usize,
    h: &'x Helpers,
    labels: HashMap<usize, Lab>,
    /// guest ireg → cached host reg.
    cached: HashMap<usize, Reg>,
    /// Cached registers written somewhere in the fragment (flush set).
    written: Vec<(usize, Reg)>,
    pending: u64,
    ret0: Lab,
    /// External branch target → continue-exit stub label.
    cont_stubs: HashMap<usize, Lab>,
}

impl Lowerer<'_> {
    fn flush_pending(&mut self) {
        if self.pending > 0 {
            let n = i32::try_from(self.pending).expect("fragment cost fits imm32");
            self.a.alu_mem64_imm(Alu::Add, R15, O_EXECUTED, n);
            self.a.alu_mem64_imm(Alu::Add, R15, O_UNATTR, n);
            self.pending = 0;
        }
    }

    fn flush_regs(&mut self) {
        for &(g, host) in &self.written {
            self.a.mov_mem_r32(R15, ireg_off(g), host);
        }
    }

    fn reload_regs(&mut self) {
        for (&g, &host) in &self.cached.clone() {
            self.a.mov_r32_mem(host, R15, ireg_off(g));
        }
    }

    /// Value of guest ireg `r` in a host register: the cached register
    /// itself, or a load into `scratch`.
    fn read_ireg(&mut self, r: usize, scratch: Reg) -> Reg {
        match self.cached.get(&r) {
            Some(&h) => h,
            None => {
                self.a.mov_r32_mem(scratch, R15, ireg_off(r));
                scratch
            }
        }
    }

    fn write_ireg(&mut self, r: usize, src: Reg) {
        match self.cached.get(&r) {
            Some(&h) => {
                if h != src {
                    self.a.mov_rr32(h, src);
                }
            }
            None => self.a.mov_mem_r32(R15, ireg_off(r), src),
        }
    }

    fn write_ireg_imm(&mut self, r: usize, v: u32) {
        match self.cached.get(&r) {
            Some(&h) => self.a.mov_r32_imm(h, v),
            None => self.a.mov_mem32_imm(R15, ireg_off(r), v),
        }
    }

    fn call_helper(&mut self, addr: usize) {
        self.a.mov_r64_imm(RAX, addr as u64);
        self.a.call_r(RAX);
    }

    /// Emits a patchable continue-exit: record target + patch site, then
    /// return CONTINUE. The 5-byte jmp initially falls through; once the
    /// trampoline patches its rel32, control flows straight into the
    /// target fragment. Registers must already be flushed.
    fn emit_cont_exit(&mut self, target: usize) {
        self.a.mov_mem64_imm(R15, O_CONT_TARGET, target as i32);
        self.a.mov_mem64_imm(R15, O_PATCH_KIND, 1);
        let site = self.a.jmp_rel(0);
        self.a.mov_mem64_imm(R15, O_PATCH_SITE, (self.frag_base + site) as i32);
        self.a.mov_r32_imm(RAX, 1);
        self.a.ret();
    }

    fn cont_stub(&mut self, target: usize) -> Lab {
        if let Some(&l) = self.cont_stubs.get(&target) {
            return l;
        }
        let l = self.a.new_label();
        self.cont_stubs.insert(target, l);
        l
    }

    /// Inline rollback exit (assert failures, division by zero).
    fn emit_rollback(&mut self, pc: usize, cause: u32) {
        self.a.mov_rr64(RDI, R15);
        self.a.mov_r32_imm(RSI, pc as u32);
        self.a.mov_r32_imm(RDX, cause);
        self.a.alu_rr32(Alu::Xor, RCX, RCX);
        self.a.alu_rr32(Alu::Xor, R8, R8);
        self.call_helper(self.h.rollback);
        self.a.jmp(self.ret0);
    }

    /// Computes the guest effective address `base + off` into esi.
    fn emit_addr(&mut self, base: usize, off: i32) {
        let b = self.read_ireg(base, RSI);
        self.a.lea_r32(RSI, b, off);
    }

    /// The shared TLB tag check: on hit, leaves the slot pointer in rax
    /// and the in-page offset in rdx; on miss jumps to `slow`. Clobbers
    /// rax, rcx, rdx. Expects the address in esi (upper bits zero).
    fn emit_tlb_check(&mut self, len: u8, slow: Lab) {
        self.a.mov_rr32(RCX, RSI);
        self.a.shift_r32_imm(5, RCX, 12); // page
        self.a.mov_rr32(RAX, RCX);
        self.a.alu_r32_imm(Alu::And, RAX, super::exec::TLB_SLOTS as u32 - 1);
        self.a.shift_r32_imm(4, RAX, 4); // slot * 16
        self.a.alu_rr64(Alu::Add, RAX, R15);
        self.a.alu_r32_imm(Alu::Add, RCX, 1); // tag = page + 1
        self.a.cmp_mem64_r(RAX, O_TLB, RCX);
        self.a.jcc(CC_NE, slow);
        self.a.mov_rr32(RDX, RSI);
        self.a.alu_r32_imm(Alu::And, RDX, 0xFFF);
        self.a.alu_r32_imm(Alu::Cmp, RDX, 4096 - len as u32);
        self.a.jcc(CC_A, slow);
    }

    /// Appends an entry to a flat transaction buffer (store or spec log).
    /// Leaves the slot address in rcx. Expects the guest address in esi.
    fn emit_buf_append(&mut self, len_field: i32, buf_off: i32, seq: u16, len: u8) {
        self.a.mov_r32_mem(RCX, R15, len_field);
        self.a.shift_r32_imm(4, RCX, 4);
        self.a.lea_r64(RCX, RCX, buf_off);
        self.a.alu_rr64(Alu::Add, RCX, R15);
        self.a.mov_mem16_imm(RCX, 0, seq);
        self.a.mov_mem8_imm(RCX, 2, len);
        self.a.mov_mem_r32(RCX, 4, RSI);
        self.a.alu_mem32_imm(Alu::Add, R15, len_field, 1);
    }

    /// Updates a `lo`/`hi` byte-range pair with `[esi, esi+len)`.
    /// Clobbers rdx.
    fn emit_range_update_one(&mut self, lo_off: i32, hi_off: i32, len: u8) {
        let keep_lo = self.a.new_label();
        self.a.cmp_mem64_r(R15, lo_off, RSI); // lo - addr
        self.a.jcc(CC_BE, keep_lo); // lo <= addr
        self.a.mov_mem_r64(R15, lo_off, RSI);
        self.a.bind(keep_lo);
        let keep_hi = self.a.new_label();
        self.a.lea_r64(RDX, RSI, len as i32); // end = addr + len
        self.a.cmp_mem64_r(R15, hi_off, RDX); // hi - end
        self.a.jcc(CC_AE, keep_hi); // hi >= end
        self.a.mov_mem_r64(R15, hi_off, RDX);
        self.a.bind(keep_hi);
    }

    /// Extends whichever of the two screen ranges `addr` falls in
    /// (`lo_off` pair below `RANGE_SPLIT`, the `+16`-offset pair above).
    fn emit_range_update(&mut self, lo_off: i32, hi_off: i32, len: u8) {
        let upper = self.a.new_label();
        let done = self.a.new_label();
        self.a.alu_r32_imm(Alu::Cmp, RSI, RANGE_SPLIT);
        self.a.jcc(CC_AE, upper);
        self.emit_range_update_one(lo_off, hi_off, len);
        self.a.jmp(done);
        self.a.bind(upper);
        self.emit_range_update_one(lo_off + 16, hi_off + 16, len);
        self.a.bind(done);
    }

    /// Jumps to `maybe` when `[addr, addr+len)` may overlap either screen
    /// range of the `lo_off`/`hi_off` pair (second range at `+16`).
    fn emit_range_screen(&mut self, lo_off: i32, hi_off: i32, len: u8, maybe: Lab) {
        for (lo, hi) in [(lo_off, hi_off), (lo_off + 16, hi_off + 16)] {
            let disjoint = self.a.new_label();
            self.a.cmp_mem64_r(R15, hi, RSI); // hi - addr
            self.a.jcc(CC_BE, disjoint); // hi <= addr
            self.a.lea_r64(RCX, RSI, len as i32);
            self.a.cmp_mem64_r(R15, lo, RCX); // lo - end
            self.a.jcc(CC_B, maybe); // lo < end → possible overlap
            self.a.bind(disjoint);
        }
    }

    /// Builds the access's bloom mask in rdx: bits for granules
    /// `addr >> 3` and its successor (mod 64, via `rol`) — a superset of
    /// the granules any `len <= 8` access touches, so one mask covers the
    /// whole access with no length branch. Clobbers rcx, rdx.
    fn emit_bloom_mask(&mut self) {
        self.a.mov_rr32(RCX, RSI);
        self.a.shift_r32_imm(5, RCX, 3); // granule = addr >> 3
        self.a.mov_r32_imm(RDX, 3);
        self.a.rol64_cl(RDX);
    }

    /// Jumps to `slow` when the bloom filter at `bloom_off` has a bit set
    /// for the access at `esi`; falls through on a miss, which proves no
    /// logged access can alias this one.
    fn emit_bloom_check(&mut self, bloom_off: i32, slow: Lab) {
        self.emit_bloom_mask();
        self.a.test_mem64_r(R15, bloom_off, RDX);
        self.a.jcc(CC_NE, slow);
    }

    /// Sets the bloom bits at `bloom_off` for the access at `esi`.
    /// Clobbers rcx, rdx.
    fn emit_bloom_set(&mut self, bloom_off: i32) {
        self.emit_bloom_mask();
        self.a.alu_mem64_r(Alu::Or, R15, bloom_off, RDX);
    }

    /// The combined two-level alias screen: the range screen first (two
    /// `[lo, hi)` intervals, split at `RANGE_SPLIT`), then on a suspected
    /// overlap the granule bloom filter. Only a positive from *both*
    /// levels takes `slow` — ranges catch far-apart traffic cheaply,
    /// the bloom separates interleaved accesses the ranges fuse.
    fn emit_overlap_screen(&mut self, lo_off: i32, hi_off: i32, bloom_off: i32, len: u8, slow: Lab) {
        let maybe = self.a.new_label();
        let clear = self.a.new_label();
        self.emit_range_screen(lo_off, hi_off, len, maybe);
        self.a.jmp(clear);
        self.a.bind(maybe);
        self.emit_bloom_check(bloom_off, slow);
        self.a.bind(clear);
    }

    /// Integer ALU lowering matching `eval_halu` exactly.
    fn lower_alu(&mut self, pc: usize, op: HAluOp, rd: usize, ra: usize, b: AluSrc) {
        if matches!(op, HAluOp::Div | HAluOp::Rem) {
            self.flush_pending();
            if let AluSrc::Imm(0) = b {
                self.emit_rollback(pc, CAUSE_DIV_ZERO);
                return;
            }
            let a_reg = self.read_ireg(ra, RAX);
            if a_reg != RAX {
                self.a.mov_rr32(RAX, a_reg);
            }
            match b {
                AluSrc::Reg(rb) => {
                    let b_reg = self.read_ireg(rb, RCX);
                    if b_reg != RCX {
                        self.a.mov_rr32(RCX, b_reg);
                    }
                    let nonzero = self.a.new_label();
                    self.a.test_rr32(RCX, RCX);
                    self.a.jcc(CC_NE, nonzero);
                    self.emit_rollback(pc, CAUSE_DIV_ZERO);
                    self.a.bind(nonzero);
                }
                AluSrc::Imm(v) => self.a.mov_r32_imm(RCX, v),
            }
            // b == -1 wraps (INT_MIN / -1) in Rust but traps in idiv:
            // Div → wrapping negate, Rem → 0.
            let general = self.a.new_label();
            let done = self.a.new_label();
            self.a.alu_r32_imm(Alu::Cmp, RCX, u32::MAX);
            self.a.jcc(CC_NE, general);
            if op == HAluOp::Div {
                self.a.neg_r32(RAX);
            } else {
                self.a.alu_rr32(Alu::Xor, RAX, RAX);
            }
            self.a.jmp(done);
            self.a.bind(general);
            self.a.cdq();
            self.a.idiv_r32(RCX);
            if op == HAluOp::Rem {
                self.a.mov_rr32(RAX, RDX);
            }
            self.a.bind(done);
            self.write_ireg(rd, RAX);
            return;
        }

        // Value of `a` in eax.
        let load_a = |s: &mut Self| {
            let r = s.read_ireg(ra, RAX);
            if r != RAX {
                s.a.mov_rr32(RAX, r);
            }
        };
        // Second operand into ecx (reg, mem or imm).
        let load_b = |s: &mut Self, scratch: Reg| -> Reg {
            match b {
                AluSrc::Reg(rb) => s.read_ireg(rb, scratch),
                AluSrc::Imm(v) => {
                    s.a.mov_r32_imm(scratch, v);
                    scratch
                }
            }
        };
        match op {
            HAluOp::Add | HAluOp::Sub | HAluOp::And | HAluOp::Or | HAluOp::Xor => {
                let x = match op {
                    HAluOp::Add => Alu::Add,
                    HAluOp::Sub => Alu::Sub,
                    HAluOp::And => Alu::And,
                    HAluOp::Or => Alu::Or,
                    _ => Alu::Xor,
                };
                load_a(self);
                match b {
                    AluSrc::Imm(v) => self.a.alu_r32_imm(x, RAX, v),
                    AluSrc::Reg(rb) => {
                        let r = self.read_ireg(rb, RCX);
                        self.a.alu_rr32(x, RAX, r);
                    }
                }
                self.write_ireg(rd, RAX);
            }
            HAluOp::Mul => {
                load_a(self);
                let r = load_b(self, RCX);
                self.a.imul_rr32(RAX, r);
                self.write_ireg(rd, RAX);
            }
            HAluOp::MulHS => {
                load_a(self);
                let r = load_b(self, RCX);
                if r != RCX {
                    self.a.mov_rr32(RCX, r);
                }
                self.a.movsxd(RAX, RAX);
                self.a.movsxd(RCX, RCX);
                self.a.imul_rr64(RAX, RCX);
                self.a.shr_r64_imm(RAX, 32);
                self.write_ireg(rd, RAX);
            }
            HAluOp::Shl | HAluOp::Shr | HAluOp::Sar => {
                load_a(self);
                let r = load_b(self, RCX);
                if r != RCX {
                    self.a.mov_rr32(RCX, r);
                }
                let ext = match op {
                    HAluOp::Shl => 4,
                    HAluOp::Shr => 5,
                    _ => 7,
                };
                self.a.shift_cl(ext, RAX); // hardware masks the count & 31
                self.write_ireg(rd, RAX);
            }
            HAluOp::SltS | HAluOp::SltU | HAluOp::Seq | HAluOp::Sne | HAluOp::SleS
            | HAluOp::SleU => {
                load_a(self);
                match b {
                    AluSrc::Imm(v) => self.a.alu_r32_imm(Alu::Cmp, RAX, v),
                    AluSrc::Reg(rb) => {
                        let r = self.read_ireg(rb, RCX);
                        self.a.alu_rr32(Alu::Cmp, RAX, r);
                    }
                }
                let cc = match op {
                    HAluOp::SltS => super::x64::CC_L,
                    HAluOp::SltU => CC_B,
                    HAluOp::Seq => CC_E,
                    HAluOp::Sne => CC_NE,
                    HAluOp::SleS => super::x64::CC_LE,
                    _ => CC_BE,
                };
                self.a.setcc(cc, RAX);
                self.a.movzx8_rr(RAX, RAX);
                self.write_ireg(rd, RAX);
            }
            HAluOp::Parity => {
                // x86 PF is the parity of the low result byte: set when
                // the number of ones is even, which is exactly
                // `(a as u8).count_ones() % 2 == 0`.
                load_a(self);
                self.a.alu_r32_imm(Alu::And, RAX, 0xFF);
                self.a.setcc(CC_P, RAX);
                self.a.movzx8_rr(RAX, RAX);
                self.write_ireg(rd, RAX);
            }
            HAluOp::Sext8 => {
                let r = self.read_ireg(ra, RAX);
                self.a.movsx8_rr(RAX, r);
                self.write_ireg(rd, RAX);
            }
            HAluOp::Sext16 => {
                let r = self.read_ireg(ra, RAX);
                self.a.movsx16_rr(RAX, r);
                self.write_ireg(rd, RAX);
            }
            HAluOp::Div | HAluOp::Rem => unreachable!(),
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the HInsn load fields
    fn lower_load(
        &mut self,
        pc: usize,
        rd_int: Option<usize>,
        fd: Option<usize>,
        base: usize,
        off: i32,
        width: Width,
        sign: bool,
        spec: bool,
        seq: u16,
    ) {
        let len = if fd.is_some() { 8 } else { width.bytes() as u8 };
        self.flush_pending();
        self.emit_addr(base, off);
        let slow = self.a.new_label();
        let done = self.a.new_label();

        // Store-buffer overlap? (possible forwarding → slow path)
        self.emit_overlap_screen(O_STORE_LO, O_STORE_HI, O_STORE_BLOOM, len, slow);
        if spec {
            self.a.alu_mem32_imm(Alu::Cmp, R15, O_SPEC_LEN, SPEC_CAP as u32);
            self.a.jcc(CC_AE, slow);
        }
        self.emit_tlb_check(len, slow);
        self.a.mov_r64_mem(RCX, RAX, O_TLB + 8); // page data pointer
        self.a.alu_rr64(Alu::Add, RCX, RDX);
        if fd.is_some() {
            self.a.movsd_x_mem(XMM0, RCX, 0);
        } else {
            match (width, sign) {
                (Width::B, false) => self.a.movzx8_mem(RAX, RCX, 0),
                (Width::B, true) => self.a.movsx8_mem(RAX, RCX, 0),
                (Width::W, false) => self.a.movzx16_mem(RAX, RCX, 0),
                (Width::W, true) => self.a.movsx16_mem(RAX, RCX, 0),
                (Width::D, _) => self.a.mov_r32_mem(RAX, RCX, 0),
            }
        }
        if spec {
            self.emit_buf_append(O_SPEC_LEN, O_SPEC_BUF, seq, len);
            self.emit_bloom_set(O_SPEC_BLOOM);
            self.emit_range_update(O_SPEC_LO, O_SPEC_HI, len);
        }
        self.a.jmp(done);

        self.a.bind(slow);
        self.a.mov_rr64(RDI, R15);
        self.a.mov_r32_imm(RDX, pc as u32);
        let desc = seq as u32 | (u32::from(len) << 16) | (u32::from(spec) << 24);
        self.a.mov_r32_imm(RCX, desc);
        self.call_helper(self.h.slow_load);
        self.a.alu_mem32_imm(Alu::Cmp, R15, O_HELPER_EXIT, 0);
        self.a.jcc(CC_NE, self.ret0);
        if fd.is_some() {
            self.a.movq_x_r(XMM0, RAX);
        } else if sign {
            // The raw value is zero-extended by construction; only
            // sign-extension needs an instruction.
            match width {
                Width::B => self.a.movsx8_rr(RAX, RAX),
                Width::W => self.a.movsx16_rr(RAX, RAX),
                Width::D => {}
            }
        }
        self.a.bind(done);
        if let Some(fd) = fd {
            self.a.movsd_mem_x(R15, freg_off(fd), XMM0);
        } else if let Some(rd) = rd_int {
            self.write_ireg(rd, RAX);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the HInsn store fields
    fn lower_store(
        &mut self,
        pc: usize,
        rs_int: Option<usize>,
        fs: Option<usize>,
        base: usize,
        off: i32,
        width: Width,
        seq: u16,
    ) {
        let len = if fs.is_some() { 8 } else { width.bytes() as u8 };
        self.flush_pending();
        self.emit_addr(base, off);
        // Data into r8 (64-bit value, exactly what the buffer holds).
        if let Some(fs) = fs {
            self.a.movsd_x_mem(XMM0, R15, freg_off(fs));
            self.a.movq_r_x(R8, XMM0);
        } else if let Some(rs) = rs_int {
            let r = self.read_ireg(rs, R8);
            if r != R8 {
                self.a.mov_rr32(R8, r);
            } else {
                // Loaded via mov r32 → already zero-extended.
            }
        }
        let slow = self.a.new_label();
        let done = self.a.new_label();

        // Conservative alias screen: disjoint from every logged
        // speculative load → the seq-aware check cannot fire.
        self.emit_overlap_screen(O_SPEC_LO, O_SPEC_HI, O_SPEC_BLOOM, len, slow);
        // In-order append only (sorted insert goes slow).
        self.a.alu_mem32_imm(Alu::Cmp, R15, O_STORE_LAST_SEQ, seq as u32);
        self.a.jcc(CC_A, slow);
        self.a.alu_mem32_imm(Alu::Cmp, R15, O_STORE_LEN, STORE_CAP as u32);
        self.a.jcc(CC_AE, slow);
        // Probe: the write-probe only checks mapped-ness, which the read
        // TLB tag answers.
        self.emit_tlb_check(len, slow);
        self.emit_buf_append(O_STORE_LEN, O_STORE_BUF, seq, len);
        self.a.mov_mem_r64(RCX, 8, R8);
        self.a.mov_mem32_imm(R15, O_STORE_LAST_SEQ, seq as u32);
        self.emit_bloom_set(O_STORE_BLOOM);
        self.emit_range_update(O_STORE_LO, O_STORE_HI, len);
        self.a.jmp(done);

        self.a.bind(slow);
        self.a.mov_rr64(RDI, R15);
        self.a.mov_r32_imm(RDX, pc as u32);
        let desc = seq as u32 | (u32::from(len) << 16);
        self.a.mov_r32_imm(RCX, desc);
        self.call_helper(self.h.slow_store);
        self.a.alu_mem32_imm(Alu::Cmp, R15, O_HELPER_EXIT, 0);
        self.a.jcc(CC_NE, self.ret0);
        self.a.bind(done);
    }

    fn lower_insn(&mut self, pc: usize) {
        let insn = self.arena[pc];
        self.pending += insn.dyn_cost();
        match insn {
            HInsn::Nop => {}
            HInsn::Alu { op, rd, ra, rb } => {
                self.lower_alu(pc, op, rd.index(), ra.index(), AluSrc::Reg(rb.index()));
            }
            HInsn::AluI { op, rd, ra, imm } => {
                self.lower_alu(pc, op, rd.index(), ra.index(), AluSrc::Imm(imm as i32 as u32));
            }
            HInsn::Lui { rd, imm } => self.write_ireg_imm(rd.index(), (imm as u32) << 16),
            HInsn::Li16 { rd, imm } => self.write_ireg_imm(rd.index(), imm as i32 as u32),
            HInsn::OriZ { rd, imm } => {
                let rd = rd.index();
                match self.cached.get(&rd) {
                    Some(&h) => self.a.alu_r32_imm(Alu::Or, h, imm as u32),
                    None => {
                        self.a.mov_r32_mem(RAX, R15, ireg_off(rd));
                        self.a.alu_r32_imm(Alu::Or, RAX, imm as u32);
                        self.a.mov_mem_r32(R15, ireg_off(rd), RAX);
                    }
                }
            }
            HInsn::Load { rd, base, off, width, sign, spec, seq } => {
                self.lower_load(pc, Some(rd.index()), None, base.index(), off, width, sign, spec, seq);
            }
            HInsn::LoadF { fd, base, off, spec, seq } => {
                self.lower_load(pc, None, Some(fd.index()), base.index(), off, Width::D, false, spec, seq);
            }
            HInsn::Store { rs, base, off, width, spec: _, seq } => {
                self.lower_store(pc, Some(rs.index()), None, base.index(), off, width, seq);
            }
            HInsn::StoreF { fs, base, off, spec: _, seq } => {
                self.lower_store(pc, None, Some(fs.index()), base.index(), off, Width::D, seq);
            }
            HInsn::B { rel } => {
                let t = add_rel(pc, rel);
                self.flush_pending();
                if t >= self.entry && t < self.end {
                    let l = self.labels[&t];
                    self.a.jmp(l);
                } else {
                    self.flush_regs();
                    self.emit_cont_exit(t);
                }
            }
            HInsn::Bz { rs, rel } | HInsn::Bnz { rs, rel } => {
                let t = add_rel(pc, rel);
                self.flush_pending();
                let v = self.read_ireg(rs.index(), RAX);
                self.a.test_rr32(v, v);
                let cc = if matches!(insn, HInsn::Bz { .. }) { CC_E } else { CC_NE };
                if t >= self.entry && t < self.end {
                    let l = self.labels[&t];
                    self.a.jcc(cc, l);
                } else {
                    let stub = self.cont_stub(t);
                    self.a.jcc(cc, stub);
                }
            }
            HInsn::Bl { rel } => {
                let t = add_rel(pc, rel);
                self.flush_pending();
                self.a.mov_mem32_imm(R15, ireg_off(63), (pc + 1) as u32);
                self.flush_regs();
                self.a.mov_rr64(RDI, R15);
                self.a.mov_r32_imm(RSI, t as u32);
                self.call_helper(self.h.bl_routine);
                self.reload_regs();
            }
            HInsn::Blr => {
                self.flush_pending();
                self.flush_regs();
                self.a.mov_r32_mem(RAX, R15, ireg_off(63));
                self.a.mov_mem_r64(R15, O_CONT_TARGET, RAX);
                self.a.mov_mem64_imm(R15, O_PATCH_KIND, 0);
                self.a.mov_r32_imm(RAX, 1);
                self.a.ret();
            }
            HInsn::Chkpt => {
                self.flush_pending();
                self.flush_regs();
                self.a.mov_rr64(RDI, R15);
                self.a.mov_r32_imm(RSI, pc as u32);
                self.call_helper(self.h.chkpt);
                self.a.alu_r64_imm(Alu::Cmp, RAX, 0);
                self.a.jcc(CC_NE, self.ret0);
            }
            HInsn::Commit => {
                self.flush_pending();
                self.a.mov_rr64(RDI, R15);
                self.call_helper(self.h.commit);
            }
            HInsn::TolExit { id } | HInsn::ChainSlot { id } => {
                self.flush_pending();
                self.flush_regs();
                self.a.mov_rr64(RDI, R15);
                self.a.mov_r32_imm(RSI, pc as u32);
                self.a.mov_r32_imm(RDX, id as u32);
                self.call_helper(self.h.exit_commit);
                self.a.jmp(self.ret0);
            }
            HInsn::AssertZ { rs } | HInsn::AssertNz { rs } => {
                self.flush_pending();
                let v = self.read_ireg(rs.index(), RAX);
                self.a.test_rr32(v, v);
                let ok = self.a.new_label();
                let cc = if matches!(insn, HInsn::AssertZ { .. }) { CC_E } else { CC_NE };
                self.a.jcc(cc, ok);
                self.emit_rollback(pc, CAUSE_ASSERT);
                self.a.bind(ok);
            }
            HInsn::Gcnt { n, sb } => {
                self.flush_pending();
                let (gcnt, host) = if sb { (O_GCNT_SB, O_HOST_SB) } else { (O_GCNT_BB, O_HOST_BB) };
                self.a.alu_mem64_imm(Alu::Add, R15, gcnt, n as i32);
                self.a.mov_r64_mem(RAX, R15, O_UNATTR);
                self.a.alu_mem64_r(Alu::Add, R15, host, RAX);
                self.a.mov_mem64_imm(R15, O_UNATTR, 0);
            }
            HInsn::Count { idx } => {
                self.flush_pending();
                let disp = i32::try_from(idx as u64 * 8).expect("profile table fits disp32");
                self.a.mov_r64_mem(RAX, R15, O_PROF_COUNTS);
                self.a.inc_mem64(RAX, disp);
                self.a.mov_r64_mem(RCX, R15, O_PROF_TRIPS);
                self.a.mov_r64_mem(RCX, RCX, disp);
                let skip = self.a.new_label();
                self.a.alu_r64_imm(Alu::Cmp, RCX, 0);
                self.a.jcc(CC_E, skip);
                self.a.cmp_mem64_r(RAX, disp, RCX);
                self.a.jcc(CC_NE, skip);
                self.flush_regs();
                self.a.mov_rr64(RDI, R15);
                self.a.mov_r32_imm(RSI, pc as u32);
                self.a.mov_r32_imm(RDX, idx);
                self.call_helper(self.h.count_trip);
                self.a.jmp(self.ret0);
                self.a.bind(skip);
            }
            HInsn::IbtcJmp { rs, id } => {
                self.flush_pending();
                self.flush_regs();
                let v = self.read_ireg(rs.index(), RSI);
                if v != RSI {
                    self.a.mov_rr32(RSI, v);
                }
                self.a.mov_mem_r64(R15, O_IBTC_PC, RSI);
                let probe = self.a.new_label();
                // Monomorphic inline cache: guarded off until the
                // trampoline patches pc + target and opens the guard.
                let guard_site = self.a.jmp(probe);
                self.a.alu_r32_imm(Alu::Cmp, RSI, 0);
                let cmp_site = self.a.pos() - 4;
                self.a.jcc(CC_NE, probe);
                self.a.inc_mem64(R15, O_IBTC_HITS);
                let jmp_site = self.a.jmp_rel(0);
                self.a.bind(probe);
                self.a.mov_rr64(RDI, R15);
                self.a.mov_r32_imm(RDX, pc as u32);
                self.a.mov_r32_imm(RCX, id as u32);
                self.call_helper(self.h.ibtc);
                self.a.alu_r64_imm(Alu::Cmp, RAX, 0);
                self.a.jcc(CC_E, self.ret0); // miss → DONE
                self.a.alu_r64_imm(Alu::Sub, RAX, 1);
                self.a.mov_mem_r64(R15, O_CONT_TARGET, RAX);
                self.a.mov_mem64_imm(R15, O_PATCH_KIND, 2);
                self.a.mov_mem64_imm(R15, O_IBTC_GUARD_SITE, (self.frag_base + guard_site) as i32);
                self.a.mov_mem64_imm(R15, O_IBTC_CMP_SITE, (self.frag_base + cmp_site) as i32);
                self.a.mov_mem64_imm(R15, O_IBTC_JMP_SITE, (self.frag_base + jmp_site) as i32);
                self.a.mov_r32_imm(RAX, 1);
                self.a.ret();
            }
            HInsn::FAlu { op, fd, fa, fb } => {
                use crate::insn::FAluOp;
                let (fd, fa, fb) = (fd.index(), fa.index(), fb.index());
                self.a.movsd_x_mem(XMM0, R15, freg_off(fa));
                self.a.movsd_x_mem(XMM1, R15, freg_off(fb));
                match op {
                    FAluOp::Add => self.a.sse_arith(SSE_ADD, XMM0, XMM1),
                    FAluOp::Sub => self.a.sse_arith(SSE_SUB, XMM0, XMM1),
                    FAluOp::Mul => self.a.sse_arith(SSE_MUL, XMM0, XMM1),
                    FAluOp::Div => self.a.sse_arith(SSE_DIV, XMM0, XMM1),
                    FAluOp::Min | FAluOp::Max => {
                        // eval_falu: NaN if either is NaN, else strict
                        // `if a<b {a} else {b}` (resp. `a>b`).
                        self.flush_pending();
                        let nan = self.a.new_label();
                        let keep_a = self.a.new_label();
                        let store = self.a.new_label();
                        self.a.ucomisd(XMM0, XMM1);
                        self.a.jcc(CC_P, nan);
                        self.a.jcc(if op == FAluOp::Min { CC_B } else { CC_A }, keep_a);
                        self.a.movapd_xx(XMM0, XMM1);
                        self.a.jmp(store);
                        self.a.bind(nan);
                        self.a.mov_r64_imm(RAX, f64::NAN.to_bits());
                        self.a.movq_x_r(XMM0, RAX);
                        self.a.bind(keep_a);
                        self.a.bind(store);
                    }
                }
                self.a.movsd_mem_x(R15, freg_off(fd), XMM0);
            }
            HInsn::FUn { op, fd, fa } => {
                let (fd, fa) = (fd.index(), fa.index());
                match op {
                    FUnOp2::Mov => {
                        self.a.mov_r64_mem(RAX, R15, freg_off(fa));
                        self.a.mov_mem_r64(R15, freg_off(fd), RAX);
                    }
                    FUnOp2::Sqrt => {
                        self.a.movsd_x_mem(XMM0, R15, freg_off(fa));
                        self.a.sse_arith(SSE_SQRT, XMM0, XMM0);
                        self.a.movsd_mem_x(R15, freg_off(fd), XMM0);
                    }
                    FUnOp2::Abs | FUnOp2::Neg => {
                        // Rust f64::abs / -x are pure sign-bit ops.
                        let mask: u64 =
                            if op == FUnOp2::Abs { 0x7FFF_FFFF_FFFF_FFFF } else { 0x8000_0000_0000_0000 };
                        self.a.mov_r64_mem(RAX, R15, freg_off(fa));
                        self.a.mov_r64_imm(RCX, mask);
                        if op == FUnOp2::Abs {
                            self.a.alu_rr64(Alu::And, RAX, RCX);
                        } else {
                            self.a.alu_rr64(Alu::Xor, RAX, RCX);
                        }
                        self.a.mov_mem_r64(R15, freg_off(fd), RAX);
                    }
                }
            }
            HInsn::FCmp { op, rd, fa, fb } => {
                let (fa, fb) = (fa.index(), fb.index());
                self.a.movsd_x_mem(XMM0, R15, freg_off(fa));
                self.a.movsd_x_mem(XMM1, R15, freg_off(fb));
                match op {
                    FCmpOp::Lt | FCmpOp::Le => {
                        // a<b ⇔ b>a; `seta`/`setae` are false on
                        // unordered, matching Rust comparisons on NaN.
                        self.a.ucomisd(XMM1, XMM0);
                        self.a.setcc(if op == FCmpOp::Lt { CC_A } else { CC_AE }, RAX);
                        self.a.movzx8_rr(RAX, RAX);
                    }
                    FCmpOp::Eq => {
                        self.a.ucomisd(XMM0, XMM1);
                        self.a.setcc(CC_NP, RAX);
                        self.a.setcc(CC_E, RCX);
                        self.a.movzx8_rr(RAX, RAX);
                        self.a.movzx8_rr(RCX, RCX);
                        self.a.alu_rr32(Alu::And, RAX, RCX);
                    }
                    FCmpOp::Unord => {
                        self.a.ucomisd(XMM0, XMM1);
                        self.a.setcc(CC_P, RAX);
                        self.a.movzx8_rr(RAX, RAX);
                    }
                }
                self.write_ireg(rd.index(), RAX);
            }
            HInsn::CvtIF { fd, ra } => {
                let r = self.read_ireg(ra.index(), RAX);
                self.a.cvtsi2sd(XMM0, r);
                self.a.movsd_mem_x(R15, freg_off(fd.index()), XMM0);
            }
            HInsn::CvtFI { rd, fa } => {
                // Rust `f64 as i32` saturates and maps NaN → 0; cvttsd2si
                // reports all of those as 0x8000_0000, so fix up.
                self.flush_pending();
                let done = self.a.new_label();
                let nan = self.a.new_label();
                let pos = self.a.new_label();
                self.a.movsd_x_mem(XMM0, R15, freg_off(fa.index()));
                self.a.cvttsd2si(RAX, XMM0);
                self.a.alu_r32_imm(Alu::Cmp, RAX, 0x8000_0000);
                self.a.jcc(CC_NE, done);
                self.a.ucomisd(XMM0, XMM0);
                self.a.jcc(CC_P, nan);
                self.a.xorpd(XMM1, XMM1);
                self.a.ucomisd(XMM0, XMM1);
                self.a.jcc(CC_A, pos);
                self.a.jmp(done); // negative overflow: i32::MIN is right
                self.a.bind(pos);
                self.a.mov_r32_imm(RAX, 0x7FFF_FFFF);
                self.a.jmp(done);
                self.a.bind(nan);
                self.a.alu_rr32(Alu::Xor, RAX, RAX);
                self.a.bind(done);
                self.write_ireg(rd.index(), RAX);
            }
            HInsn::FLoadImm { fd, bits } => {
                self.a.mov_r64_imm(RAX, bits);
                self.a.mov_mem_r64(R15, freg_off(fd.index()), RAX);
            }
        }
    }
}

enum AluSrc {
    Reg(usize),
    Imm(u32),
}

/// Compiles the fragment entered at `entry`. `frag_base` is the offset
/// the code will be placed at in the buffer (patch sites are recorded as
/// absolute buffer offsets).
pub(super) fn compile_fragment(
    arena: &[HInsn],
    entry: usize,
    frag_base: usize,
    h: &Helpers,
) -> FragOut {
    let scan = scan(arena, entry);

    // Use counts for register caching; reads and writes both count.
    let mut counts = [0u32; CACHE_CANDIDATES];
    let mut writes = [false; CACHE_CANDIDATES];
    for insn in &arena[entry..scan.end] {
        let (reads, write) = ireg_refs(insn);
        for r in reads.into_iter().flatten() {
            if r < CACHE_CANDIDATES {
                counts[r] += 1;
            }
        }
        if let Some(r) = write {
            if r < CACHE_CANDIDATES {
                counts[r] += 1;
                writes[r] = true;
            }
        }
    }
    let mut ranked: Vec<usize> = (0..CACHE_CANDIDATES).filter(|&r| counts[r] > 0).collect();
    ranked.sort_by_key(|&r| (std::cmp::Reverse(counts[r]), r));
    let distinct = ranked.len() as u64;
    let mut cached = HashMap::new();
    let mut written = Vec::new();
    for (i, &g) in ranked.iter().take(HOST_CACHE.len()).enumerate() {
        cached.insert(g, HOST_CACHE[i]);
        if writes[g] {
            written.push((g, HOST_CACHE[i]));
        }
    }
    let spills = distinct.saturating_sub(HOST_CACHE.len() as u64);

    let mut a = Asm::new();
    let ret0 = a.new_label();
    let mut lw = Lowerer {
        a,
        arena,
        entry,
        end: scan.end,
        frag_base,
        h,
        labels: HashMap::new(),
        cached,
        written,
        pending: 0,
        ret0,
        cont_stubs: HashMap::new(),
    };
    for &t in scan.targets.iter().filter(|&&t| t < scan.end) {
        let l = lw.a.new_label();
        lw.labels.insert(t, l);
    }

    // Preamble: pull the cached set into host registers.
    for (&g, &host) in &lw.cached.clone() {
        lw.a.mov_r32_mem(host, R15, ireg_off(g));
    }

    for p in entry..scan.end {
        if let Some(&l) = lw.labels.get(&p) {
            lw.flush_pending();
            lw.a.bind(l);
        }
        lw.lower_insn(p);
    }
    if scan.fallthrough {
        lw.flush_pending();
        lw.flush_regs();
        lw.emit_cont_exit(scan.end);
    }

    // Continue-exit stubs for conditional out-of-fragment branches.
    for (t, l) in lw.cont_stubs.clone() {
        lw.a.bind(l);
        lw.flush_regs();
        lw.emit_cont_exit(t);
    }

    // Shared DONE epilogue.
    lw.a.bind(lw.ret0);
    lw.a.alu_rr32(Alu::Xor, RAX, RAX);
    lw.a.ret();

    FragOut { bytes: lw.a.finish(), spills, end: scan.end }
}
