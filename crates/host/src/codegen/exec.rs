//! Native execution engine: the JIT-side mirror of `HostEmulator`.
//!
//! Compiled fragments run over a [`NativeCtx`] anchored in `r15`. The
//! context mirrors the emulator's architectural state (`iregs`, `fregs`,
//! counters, snapshot, store buffer, speculative-load log) field for
//! field; slow paths call back into the `extern "sysv64"` helpers below,
//! which are line-by-line transcriptions of the corresponding
//! `HostEmulator` code so the two backends stay bit-identical.
//!
//! Control protocol: a fragment returns 0 in `rax` when the transaction
//! is DONE (exit info is in the context) and 1 to CONTINUE at
//! `ctx.cont_target` (with optional patch-site info so the trampoline can
//! chain fragments directly in native code).

use super::buffer::CodeBuffer;
use super::check;
use super::lower::{compile_fragment, Helpers};
use super::{CheckMode, JitStats, MutationLog};
use crate::emu::{ExitCause, ExitInfo, HostEmulator, IbtcTable, ProfTable};
use crate::insn::HInsn;
use darco_guest::GuestMem;
use std::collections::{HashMap, HashSet};

/// Store-buffer capacity. A transaction (checkpoint to checkpoint) is
/// bounded by translation size (a few thousand instructions), so this is
/// far beyond reachable; the helpers abort rather than wrap if it is ever
/// hit.
pub(super) const STORE_CAP: usize = 8192;
/// Speculative-load log capacity (same bound argument).
pub(super) const SPEC_CAP: usize = 8192;
/// Store/spec range-screen split: addresses at or above this (the guest
/// stack lives at 0x7FFF_F000 down) are tracked in the second range.
/// Transactions usually mix stack traffic with data traffic; one global
/// `[lo, hi)` interval would fuse them into a range spanning most of the
/// address space and send every load in between to the slow path. The
/// split keeps both intervals tight. Correctness never depends on the
/// split point — both intervals are always checked.
pub(super) const RANGE_SPLIT: u32 = 0x7000_0000;

/// Direct-mapped native L0 TLB entries. Sized so hot working sets
/// (hundreds of guest pages) fit without conflict misses; the array is
/// rezeroed on every `execute` entry, which bounds how big it can
/// usefully be.
pub(super) const TLB_SLOTS: usize = 256;

/// One buffered store (16 bytes so slot addressing is `index << 4`).
/// Mirrors the emulator's `StoreEnt`.
#[repr(C)]
#[derive(Clone, Copy)]
pub(super) struct StoreSlot {
    pub seq: u16,
    pub len: u8,
    pub _pad: u8,
    pub addr: u32,
    pub data: u64,
}

/// One logged speculative load (16 bytes). Mirrors `SpecLoad`.
#[repr(C)]
#[derive(Clone, Copy)]
pub(super) struct SpecSlot {
    pub seq: u16,
    pub len: u8,
    pub _pad: u8,
    pub addr: u32,
    pub _pad2: u64,
}

/// Exit-cause codes shared between emitted code, helpers and the engine.
pub(super) const CAUSE_EXIT: u32 = 0;
pub(super) const CAUSE_ASSERT: u32 = 1;
pub(super) const CAUSE_ALIAS: u32 = 2;
pub(super) const CAUSE_PAGE_FAULT: u32 = 3;
pub(super) const CAUSE_DIV_ZERO: u32 = 4;
pub(super) const CAUSE_TRIP: u32 = 5;
pub(super) const CAUSE_FUEL: u32 = 6;
pub(super) const CAUSE_SMC: u32 = 7;

/// The JIT execution context. `r15` points here for the whole native
/// call; every offset below is addressed as `[r15 + disp32]`.
#[repr(C)]
pub(super) struct NativeCtx {
    // -- architectural state (mirrors HostEmulator) --
    pub iregs: [u32; 64],
    pub fregs: [f64; 64],
    pub executed: u64,
    pub unattributed: u64,
    pub gcnt_bb: u64,
    pub gcnt_sb: u64,
    pub host_bb: u64,
    pub host_sb: u64,
    // EmuCounters, field for field.
    pub chkpts: u64,
    pub commits: u64,
    pub assert_fails: u64,
    pub alias_fails: u64,
    pub page_faults: u64,
    pub ibtc_hits: u64,
    pub ibtc_misses: u64,
    pub smc_aborts: u64,
    // -- rollback snapshot --
    pub snap_iregs: [u32; 64],
    pub snap_fregs: [f64; 64],
    pub snap_pc: u64,
    pub snap_gcnt_bb: u64,
    pub snap_gcnt_sb: u64,
    pub fuel: u64,
    // -- store buffer / spec log bookkeeping --
    pub store_len: u32,
    /// `seq` of the last (highest-seq) buffered store; 0 when empty, so
    /// the in-order append test `seq >= last` is correct for any seq.
    pub store_last_seq: u32,
    pub store_lo: u64,
    pub store_hi: u64,
    /// Second store range (addresses >= `RANGE_SPLIT`).
    pub store_lo2: u64,
    pub store_hi2: u64,
    /// Bloom filter over 8-byte granules of buffered-store addresses:
    /// bit `(addr >> 3) & 63`. Consulted by loads whose range screen
    /// suspects an overlap — a miss proves no store-buffer entry can
    /// alias the load, so it still takes the fast path.
    pub store_bloom: u64,
    pub spec_len: u32,
    pub _pad0: u32,
    pub spec_lo: u64,
    pub spec_hi: u64,
    /// Second speculative-load range (addresses >= `RANGE_SPLIT`).
    pub spec_lo2: u64,
    pub spec_hi2: u64,
    /// Bloom filter over 8-byte granules of speculative-load addresses
    /// (same hash as `store_bloom`), consulted by the store alias screen.
    pub spec_bloom: u64,
    // -- exit info (DONE protocol) --
    pub exit_cause: u32,
    pub exit_a: u32,
    pub exit_b: u32,
    /// Set to 1 by a slow-path memory helper when it already rolled back
    /// and filled the exit info (the fragment must return DONE).
    pub helper_exit: u32,
    pub exit_host_pc: u64,
    pub exit_chkpt_pc: u64,
    // -- continue protocol --
    pub cont_target: u64,
    /// 0 = no patch, 1 = direct-jump site, 2 = IBTC inline-cache site.
    pub patch_kind: u64,
    pub patch_site: u64,
    pub ibtc_guard_site: u64,
    pub ibtc_cmp_site: u64,
    pub ibtc_jmp_site: u64,
    pub ibtc_pc: u64,
    // -- environment (refreshed every execute) --
    pub mem: *mut GuestMem,
    pub ibtc: *const IbtcTable,
    pub prof_counts: *mut u64,
    pub prof_trips: *const u64,
    pub arena: *const HInsn,
    pub arena_len: u64,
    /// Slow-path memory operations this execute (jit.slow_mem_exits).
    pub slow_mem: u64,
    // -- native L0 TLB: [tag = page+1, page data ptr] pairs --
    pub tlb: [u64; TLB_SLOTS * 2],
    // -- flat transaction buffers --
    pub store_buf: [StoreSlot; STORE_CAP],
    pub spec_buf: [SpecSlot; SPEC_CAP],
}

macro_rules! off {
    ($name:ident, $field:ident) => {
        pub(super) const $name: i32 = std::mem::offset_of!(NativeCtx, $field) as i32;
    };
}

off!(O_IREGS, iregs);
off!(O_FREGS, fregs);
off!(O_EXECUTED, executed);
off!(O_UNATTR, unattributed);
off!(O_GCNT_BB, gcnt_bb);
off!(O_GCNT_SB, gcnt_sb);
off!(O_HOST_BB, host_bb);
off!(O_HOST_SB, host_sb);
off!(O_IBTC_HITS, ibtc_hits);
off!(O_STORE_LEN, store_len);
off!(O_STORE_LAST_SEQ, store_last_seq);
off!(O_STORE_LO, store_lo);
off!(O_STORE_HI, store_hi);
off!(O_STORE_LO2, store_lo2);
off!(O_STORE_HI2, store_hi2);
off!(O_STORE_BLOOM, store_bloom);
off!(O_SPEC_LEN, spec_len);
off!(O_SPEC_LO, spec_lo);
off!(O_SPEC_HI, spec_hi);
off!(O_SPEC_LO2, spec_lo2);
off!(O_SPEC_HI2, spec_hi2);
off!(O_SPEC_BLOOM, spec_bloom);
// The lowerer addresses the second-range fields as `first + 16`.
const _: () = assert!(O_STORE_LO2 == O_STORE_LO + 16 && O_STORE_HI2 == O_STORE_HI + 16);
const _: () = assert!(O_SPEC_LO2 == O_SPEC_LO + 16 && O_SPEC_HI2 == O_SPEC_HI + 16);
off!(O_HELPER_EXIT, helper_exit);
off!(O_CONT_TARGET, cont_target);
off!(O_PATCH_KIND, patch_kind);
off!(O_PATCH_SITE, patch_site);
off!(O_IBTC_GUARD_SITE, ibtc_guard_site);
off!(O_IBTC_CMP_SITE, ibtc_cmp_site);
off!(O_IBTC_JMP_SITE, ibtc_jmp_site);
off!(O_IBTC_PC, ibtc_pc);
off!(O_PROF_COUNTS, prof_counts);
off!(O_PROF_TRIPS, prof_trips);
off!(O_TLB, tlb);
off!(O_STORE_BUF, store_buf);
off!(O_SPEC_BUF, spec_buf);

/// Register index of a ctx integer register.
pub(super) fn ireg_off(i: usize) -> i32 {
    O_IREGS + (i as i32) * 4
}

/// Register index of a ctx FP register.
pub(super) fn freg_off(i: usize) -> i32 {
    O_FREGS + (i as i32) * 8
}

// ---------------------------------------------------------------------
// Helpers (extern "sysv64", called from emitted code)
// ---------------------------------------------------------------------

fn ctx_mut<'a>(ctx: *mut NativeCtx) -> &'a mut NativeCtx {
    unsafe { &mut *ctx }
}

/// Commits the store buffer to guest memory; mirrors `HostEmulator::commit`.
///
/// Commits cluster heavily on one page, so the page is resolved once per
/// run of same-page stores instead of once per store. Code pages and
/// page-crossing stores take the full `write` path (the former so the
/// decode-cache generation advances exactly as the emulator's commit
/// does — it is checkpointed state).
fn commit_stores(c: &mut NativeCtx) {
    let mem = unsafe { &mut *c.mem };
    let mut cur_page = u32::MAX;
    let mut cur_ptr: *mut u8 = std::ptr::null_mut();
    for i in 0..c.store_len as usize {
        let e = c.store_buf[i];
        let off = (e.addr & 0xfff) as usize;
        let len = e.len as usize;
        let page = e.addr >> 12;
        if off + len <= 4096 && page == cur_page {
            unsafe {
                std::ptr::copy_nonoverlapping(e.data.to_le_bytes().as_ptr(), cur_ptr.add(off), len);
            }
            continue;
        }
        if off + len <= 4096 {
            if let Some(pg) = mem.page_for_commit(page) {
                cur_page = page;
                cur_ptr = pg.as_mut_ptr();
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        e.data.to_le_bytes().as_ptr(),
                        cur_ptr.add(off),
                        len,
                    );
                }
                continue;
            }
        }
        let bytes = e.data.to_le_bytes();
        mem.write(e.addr, &bytes[..len]).expect("store page probed at execute");
    }
    clear_transaction(c);
    c.commits += 1;
}

fn clear_transaction(c: &mut NativeCtx) {
    c.store_len = 0;
    c.store_last_seq = 0;
    c.store_lo = u64::MAX;
    c.store_hi = 0;
    c.store_lo2 = u64::MAX;
    c.store_hi2 = 0;
    c.store_bloom = 0;
    c.spec_len = 0;
    c.spec_lo = u64::MAX;
    c.spec_hi = 0;
    c.spec_lo2 = u64::MAX;
    c.spec_hi2 = 0;
    c.spec_bloom = 0;
}

/// Bloom mask for an access at `addr`: bits for granule `addr >> 3` and
/// its successor (mod 64) — a superset of the granules any `len <= 8`
/// access touches. Must match `emit_bloom_mask` in the lowerer exactly:
/// soundness only needs every *set* mask to cover the store's granules
/// and every *checked* mask to cover the load's, which the common
/// two-bit superset does.
fn bloom_mask(addr: u32) -> u64 {
    3u64.rotate_left(addr >> 3)
}

fn take_snapshot(c: &mut NativeCtx, pc: u64) {
    c.snap_iregs = c.iregs;
    c.snap_fregs = c.fregs;
    c.snap_pc = pc;
    c.snap_gcnt_bb = c.gcnt_bb;
    c.snap_gcnt_sb = c.gcnt_sb;
}

/// Mirrors `HostEmulator::rollback` + exit-info fill.
fn rollback_to(c: &mut NativeCtx, pc: u64, cause: u32, a: u32, b: u32) {
    c.iregs = c.snap_iregs;
    c.fregs = c.snap_fregs;
    c.gcnt_bb = c.snap_gcnt_bb;
    c.gcnt_sb = c.snap_gcnt_sb;
    clear_transaction(c);
    c.exit_cause = cause;
    c.exit_a = a;
    c.exit_b = b;
    c.exit_host_pc = pc;
    c.exit_chkpt_pc = c.snap_pc;
}

fn overlaps(a: u32, alen: u8, b: u32, blen: u8) -> bool {
    let (a, b) = (a as u64, b as u64);
    a < b + blen as u64 && b < a + alen as u64
}

/// `Chkpt`: commit, fuel check, snapshot. Returns 1 on fuel exhaustion
/// (DONE), 0 to continue.
pub(super) extern "sysv64" fn h_chkpt(ctx: *mut NativeCtx, pc: u64) -> u64 {
    let c = ctx_mut(ctx);
    commit_stores(c);
    if c.gcnt_bb + c.gcnt_sb >= c.fuel {
        c.exit_cause = CAUSE_FUEL;
        c.exit_a = 0;
        c.exit_b = 0;
        c.exit_host_pc = pc;
        c.exit_chkpt_pc = pc;
        return 1;
    }
    take_snapshot(c, pc);
    c.chkpts += 1;
    0
}

/// `Commit`: commit without a new snapshot.
pub(super) extern "sysv64" fn h_commit(ctx: *mut NativeCtx) {
    commit_stores(ctx_mut(ctx));
}

/// `TolExit` / unchained `ChainSlot`: commit and exit with `id`.
pub(super) extern "sysv64" fn h_exit_commit(ctx: *mut NativeCtx, pc: u64, id: u64) {
    let c = ctx_mut(ctx);
    commit_stores(c);
    c.exit_cause = CAUSE_EXIT;
    c.exit_a = id as u32;
    c.exit_b = 0;
    c.exit_host_pc = pc;
    c.exit_chkpt_pc = c.snap_pc;
}

/// `Count` profile-trip: commit and exit with `ProfileTrip{idx}`.
pub(super) extern "sysv64" fn h_count_trip(ctx: *mut NativeCtx, pc: u64, idx: u64) {
    let c = ctx_mut(ctx);
    commit_stores(c);
    c.exit_cause = CAUSE_TRIP;
    c.exit_a = idx as u32;
    c.exit_b = 0;
    c.exit_host_pc = pc;
    c.exit_chkpt_pc = c.snap_pc;
}

/// Assert / div-by-zero rollback exits.
pub(super) extern "sysv64" fn h_rollback(ctx: *mut NativeCtx, pc: u64, cause: u64, a: u64, b: u64) {
    let c = ctx_mut(ctx);
    if cause as u32 == CAUSE_ASSERT {
        c.assert_fails += 1;
    }
    rollback_to(c, pc, cause as u32, a as u32, b as u32);
}

/// Fills the native TLB slot for the page containing `addr`, if mapped.
/// Marked code pages never enter the TLB: every access to one takes the
/// slow helper, where self-modifying stores are detected and aborted
/// (mirroring `GuestMem`'s write-TLB discipline).
fn tlb_fill(c: &mut NativeCtx, addr: u32) {
    let page = addr >> 12;
    let mem = unsafe { &*c.mem };
    if mem.is_code_page(page) {
        return;
    }
    if let Some(pg) = mem.page(page) {
        let slot = (page as usize & (TLB_SLOTS - 1)) * 2;
        c.tlb[slot] = page as u64 + 1;
        c.tlb[slot + 1] = pg.as_ptr() as u64;
    }
}

fn push_spec(c: &mut NativeCtx, seq: u16, addr: u32, len: u8) {
    let i = c.spec_len as usize;
    if i >= SPEC_CAP {
        std::process::abort();
    }
    c.spec_buf[i] = SpecSlot { seq, len, _pad: 0, addr, _pad2: 0 };
    c.spec_len += 1;
    if addr >= RANGE_SPLIT {
        c.spec_lo2 = c.spec_lo2.min(addr as u64);
        c.spec_hi2 = c.spec_hi2.max(addr as u64 + len as u64);
    } else {
        c.spec_lo = c.spec_lo.min(addr as u64);
        c.spec_hi = c.spec_hi.max(addr as u64 + len as u64);
    }
    c.spec_bloom |= bloom_mask(addr);
}

/// Slow-path load: full store-buffer overlay, spec logging, page-fault
/// rollback, and TLB refill. `desc` packs `seq | len<<16 | spec<<24`.
/// Returns the raw little-endian value; the fragment extends it. On
/// fault, sets `helper_exit` and the fragment returns DONE.
pub(super) extern "sysv64" fn h_slow_load(
    ctx: *mut NativeCtx,
    addr: u64,
    pc: u64,
    desc: u64,
) -> u64 {
    let c = ctx_mut(ctx);
    c.slow_mem += 1;
    let addr = addr as u32;
    let seq = (desc & 0xFFFF) as u16;
    let len = ((desc >> 16) & 0xFF) as u8;
    let spec = (desc >> 24) & 1 != 0;
    let mem = unsafe { &*c.mem };
    let mut buf = [0u8; 8];
    if let Err(pf) = mem.read(addr, &mut buf[..len as usize]) {
        c.page_faults += 1;
        rollback_to(c, pc, CAUSE_PAGE_FAULT, pf.addr, 0);
        c.helper_exit = 1;
        return 0;
    }
    // Overlay forwarding-eligible buffered stores (sorted by seq).
    for i in 0..c.store_len as usize {
        let e = c.store_buf[i];
        if e.seq >= seq {
            break;
        }
        if !overlaps(e.addr, e.len, addr, len) {
            continue;
        }
        let d = e.data.to_le_bytes();
        for j in 0..e.len as u64 {
            let a = e.addr as u64 + j;
            if a >= addr as u64 && a < addr as u64 + len as u64 {
                buf[(a - addr as u64) as usize] = d[j as usize];
            }
        }
    }
    if spec {
        push_spec(c, seq, addr, len);
    }
    tlb_fill(c, addr);
    c.helper_exit = 0;
    u64::from_le_bytes(buf)
}

/// Slow-path store: probe, alias check against younger speculative loads,
/// sorted insert. `desc` packs `seq | len<<16`.
pub(super) extern "sysv64" fn h_slow_store(
    ctx: *mut NativeCtx,
    addr: u64,
    pc: u64,
    desc: u64,
    data: u64,
) {
    let c = ctx_mut(ctx);
    c.slow_mem += 1;
    let addr = addr as u32;
    let seq = (desc & 0xFFFF) as u16;
    let len = ((desc >> 16) & 0xFF) as u8;
    let mem = unsafe { &*c.mem };
    if let Err(pf) = mem.probe(addr, len as u32, true) {
        c.page_faults += 1;
        rollback_to(c, pc, CAUSE_PAGE_FAULT, pf.addr, 1);
        c.helper_exit = 1;
        return;
    }
    // Self-modifying store: abort before buffering (same check order as
    // `HostEmulator::write_mem` — probe, SMC, alias — so counters match
    // across backends).
    if mem.is_code(addr, len as u32) {
        c.smc_aborts += 1;
        rollback_to(c, pc, CAUSE_SMC, addr, 0);
        c.helper_exit = 1;
        return;
    }
    for i in 0..c.spec_len as usize {
        let l = c.spec_buf[i];
        if l.seq > seq && overlaps(l.addr, l.len, addr, len) {
            c.alias_fails += 1;
            rollback_to(c, pc, CAUSE_ALIAS, 0, 0);
            c.helper_exit = 1;
            return;
        }
    }
    let n = c.store_len as usize;
    if n >= STORE_CAP {
        std::process::abort();
    }
    // Sorted insert by seq (rposition + 1, as in the emulator).
    let mut pos = 0;
    for i in (0..n).rev() {
        if c.store_buf[i].seq <= seq {
            pos = i + 1;
            break;
        }
    }
    c.store_buf.copy_within(pos..n, pos + 1);
    c.store_buf[pos] = StoreSlot { seq, len, _pad: 0, addr, data };
    c.store_len += 1;
    c.store_last_seq = c.store_buf[n].seq as u32;
    if addr >= RANGE_SPLIT {
        c.store_lo2 = c.store_lo2.min(addr as u64);
        c.store_hi2 = c.store_hi2.max(addr as u64 + len as u64);
    } else {
        c.store_lo = c.store_lo.min(addr as u64);
        c.store_hi = c.store_hi.max(addr as u64 + len as u64);
    }
    c.store_bloom |= bloom_mask(addr);
    tlb_fill(c, addr);
    c.helper_exit = 0;
}

/// `IbtcJmp` probe. Hit: returns host target + 1 (no commit). Miss:
/// commits, fills `Exit{id}` info and returns 0 (DONE).
pub(super) extern "sysv64" fn h_ibtc(ctx: *mut NativeCtx, guest: u64, pc: u64, id: u64) -> u64 {
    let c = ctx_mut(ctx);
    let ibtc = unsafe { &*c.ibtc };
    if let Some(&hpc) = ibtc.get(&(guest as u32)) {
        c.ibtc_hits += 1;
        hpc as u64 + 1
    } else {
        c.ibtc_misses += 1;
        commit_stores(c);
        c.exit_cause = CAUSE_EXIT;
        c.exit_a = id as u32;
        c.exit_b = 0;
        c.exit_host_pc = pc;
        c.exit_chkpt_pc = c.snap_pc;
        0
    }
}

/// `Bl`: interprets the runtime routine at `target` until its `Blr`,
/// with the same per-instruction cost accounting as the emulator. The
/// routines are pure register code (no memory, no exits), so this cannot
/// fault; anything outside that subset aborts loudly.
pub(super) extern "sysv64" fn h_bl_routine(ctx: *mut NativeCtx, target: u64) {
    use crate::emu::{eval_falu, eval_halu};
    use crate::insn::{FCmpOp, FUnOp2};
    let c = ctx_mut(ctx);
    let arena = unsafe { std::slice::from_raw_parts(c.arena, c.arena_len as usize) };
    let mut pc = target as usize;
    loop {
        let insn = arena[pc];
        c.executed += insn.dyn_cost();
        c.unattributed += insn.dyn_cost();
        let mut next = pc + 1;
        match insn {
            HInsn::FAlu { op, fd, fa, fb } => {
                c.fregs[fd.index()] = eval_falu(op, c.fregs[fa.index()], c.fregs[fb.index()]);
            }
            HInsn::FUn { op, fd, fa } => {
                let a = c.fregs[fa.index()];
                c.fregs[fd.index()] = match op {
                    FUnOp2::Mov => a,
                    FUnOp2::Sqrt => a.sqrt(),
                    FUnOp2::Abs => a.abs(),
                    FUnOp2::Neg => -a,
                };
            }
            HInsn::FLoadImm { fd, bits } => c.fregs[fd.index()] = f64::from_bits(bits),
            HInsn::FCmp { op, rd, fa, fb } => {
                let (a, b) = (c.fregs[fa.index()], c.fregs[fb.index()]);
                let r = match op {
                    FCmpOp::Lt => a < b,
                    FCmpOp::Le => a <= b,
                    FCmpOp::Eq => a == b,
                    FCmpOp::Unord => a.is_nan() || b.is_nan(),
                };
                c.iregs[rd.index()] = r as u32;
            }
            HInsn::CvtIF { fd, ra } => c.fregs[fd.index()] = c.iregs[ra.index()] as i32 as f64,
            HInsn::CvtFI { rd, fa } => c.iregs[rd.index()] = c.fregs[fa.index()] as i32 as u32,
            HInsn::Alu { op, rd, ra, rb } => {
                c.iregs[rd.index()] = eval_halu(op, c.iregs[ra.index()], c.iregs[rb.index()]);
            }
            HInsn::AluI { op, rd, ra, imm } => {
                c.iregs[rd.index()] = eval_halu(op, c.iregs[ra.index()], imm as i32 as u32);
            }
            HInsn::Lui { rd, imm } => c.iregs[rd.index()] = (imm as u32) << 16,
            HInsn::OriZ { rd, imm } => c.iregs[rd.index()] |= imm as u32,
            HInsn::Li16 { rd, imm } => c.iregs[rd.index()] = imm as i32 as u32,
            HInsn::B { rel } => next = crate::insn::add_rel(pc, rel),
            HInsn::Bz { rs, rel } => {
                if c.iregs[rs.index()] == 0 {
                    next = crate::insn::add_rel(pc, rel);
                }
            }
            HInsn::Bnz { rs, rel } => {
                if c.iregs[rs.index()] != 0 {
                    next = crate::insn::add_rel(pc, rel);
                }
            }
            HInsn::Nop => {}
            HInsn::Blr => return,
            _ => std::process::abort(),
        }
        pc = next;
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Enter thunk: saves callee-saved registers, anchors `r15` on the
/// context and calls the fragment.
/// `push rbx/rbp/r12..r15; mov r15, rdi; call rsi; pops; ret`
const THUNK: &[u8] = &[
    0x53, 0x55, 0x41, 0x54, 0x41, 0x55, 0x41, 0x56, 0x41, 0x57, // pushes
    0x49, 0x89, 0xFF, // mov r15, rdi
    0xFF, 0xD6, // call rsi
    0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0x41, 0x5C, 0x5D, 0x5B, // pops
    0xC3, // ret
];

const BUF_CAP: usize = 16 << 20;

struct Frag {
    /// Buffer offset of the fragment's code.
    off: usize,
    /// Emitted code length in bytes (`[off, off + host_len)` is the
    /// fragment's buffer range — patch sites inside it die with it).
    host_len: usize,
    /// One-past-the-last arena word the code depends on: the fragment is
    /// stale iff a mutated range overlaps `[entry, end)`.
    end: usize,
}

/// A jump patched into compiled code, recorded so precise invalidation
/// can undo it when its target fragment is dropped.
enum PatchRec {
    /// Chained direct jump: rel32 at buffer offset `site`; writing 0
    /// restores the fall-through continue-exit.
    Direct { site: usize, target: usize },
    /// Inline IBTC cache: restoring `guard_orig` at `guard` closes the
    /// guard (jump back to the out-of-line probe).
    Ibtc { guard: usize, guard_orig: u32, target: usize },
}

/// The native backend: a per-engine code buffer plus a fragment cache
/// keyed on arena word index, validated by the code cache's mutation
/// epoch. Fragments are a pure cache over the HISA arena — dropping all
/// of them at any point is always correct, which is exactly what happens
/// on chaining/invalidation/flush/restore (epoch bump) and buffer
/// overflow.
pub struct NativeEngine {
    buf: CodeBuffer,
    frags: HashMap<usize, Frag>,
    epoch: Option<u64>,
    ctx: Box<NativeCtx>,
    /// IBTC guard sites already patched (absolute buffer offsets).
    patched_ibtc: HashSet<usize>,
    /// Every live patch, for precise unpatching (cleared on reset).
    patches: Vec<PatchRec>,
    /// Machine-code checking applied to every fragment before it may run
    /// (DESIGN.md §13).
    check_mode: CheckMode,
    /// Findings queued under [`CheckMode::Report`], drained by the TOL.
    pending_findings: Vec<String>,
    /// Planted r15-clobber mutation: corrupt the N-th compiled fragment
    /// (0-based) for debug-toolchain tests.
    plant: Option<u64>,
    /// Backend counters (reported as `jit.*` metrics).
    pub stats: JitStats,
}

// The context's raw pointers (guest memory, IBTC, profile table, arena)
// are set from fresh borrows at the top of every `execute` call and never
// dereferenced outside it, so moving the engine across threads between
// calls is sound.
unsafe impl Send for NativeEngine {}

fn alloc_ctx() -> Box<NativeCtx> {
    // The context is several hundred KiB; allocate it zeroed on the heap
    // directly instead of constructing on the stack. All fields are plain
    // data for which the zero pattern is valid.
    let layout = std::alloc::Layout::new::<NativeCtx>();
    unsafe {
        let p = std::alloc::alloc_zeroed(layout).cast::<NativeCtx>();
        assert!(!p.is_null(), "native ctx allocation failed");
        Box::from_raw(p)
    }
}

impl Default for NativeEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeEngine {
    pub fn new() -> NativeEngine {
        let mut buf = CodeBuffer::new(BUF_CAP);
        buf.append(THUNK);
        NativeEngine {
            buf,
            frags: HashMap::new(),
            epoch: None,
            ctx: alloc_ctx(),
            patched_ibtc: HashSet::new(),
            patches: Vec::new(),
            check_mode: CheckMode::Off,
            pending_findings: Vec::new(),
            plant: None,
            stats: JitStats::default(),
        }
    }

    /// Sets the machine-code checking mode for subsequently compiled
    /// fragments and for patch re-validation.
    pub fn set_verify(&mut self, mode: CheckMode) {
        self.check_mode = mode;
    }

    /// Drains findings queued under [`CheckMode::Report`].
    pub fn take_verify_findings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.pending_findings)
    }

    /// Plants a pinned-register clobber into the `ordinal`-th compiled
    /// fragment (a `mov r15, r15` after the final `ret` — dead at run
    /// time, forbidden statically).
    pub fn plant_clobber(&mut self, ordinal: u64) {
        self.plant = Some(ordinal);
    }

    fn helper_list() -> [usize; 9] {
        let h = Self::helpers();
        [
            h.chkpt,
            h.commit,
            h.exit_commit,
            h.count_trip,
            h.rollback,
            h.slow_load,
            h.slow_store,
            h.ibtc,
            h.bl_routine,
        ]
    }

    /// Records checker findings: counts them, and under `Fatal` panics
    /// before the flagged code can ever execute. `what` names the checked
    /// unit (a fragment or the patch set).
    fn note_findings(&mut self, what: &str, findings: Vec<check::CheckFinding>) {
        if findings.is_empty() {
            return;
        }
        self.stats.verify_findings += findings.len() as u64;
        for f in &findings {
            self.stats.verify_by_kind[f.kind.index()] += 1;
        }
        let rendered: Vec<String> = findings.iter().map(|f| format!("{what} {f}")).collect();
        if self.check_mode == CheckMode::Fatal {
            panic!("native code verification failed for {what}:\n{}", rendered.join("\n"));
        }
        self.pending_findings.extend(rendered);
    }

    /// Re-validates every live patch after MutationLog-driven
    /// invalidation: a chained rel32 must still sit inside a live
    /// fragment and land exactly on its target fragment's entry, and an
    /// open IBTC guard must still belong to a live fragment with a live
    /// target. `invalidate_ranges` maintains exactly this, so a finding
    /// here means patch bookkeeping was corrupted.
    fn verify_patches(&mut self) {
        let mut findings = Vec::new();
        let live = |site: usize| {
            self.frags.values().any(|f| site >= f.off && site < f.off + f.host_len)
        };
        for p in &self.patches {
            match *p {
                PatchRec::Direct { site, target } => {
                    if !live(site) {
                        findings.push(check::CheckFinding {
                            kind: super::CheckKind::PatchTarget,
                            off: site,
                            msg: "chained jump site is not inside any live fragment".into(),
                        });
                        continue;
                    }
                    let Some(tf) = self.frags.get(&target) else {
                        findings.push(check::CheckFinding {
                            kind: super::CheckKind::PatchTarget,
                            off: site,
                            msg: format!("chained jump targets dropped fragment {target}"),
                        });
                        continue;
                    };
                    let rel = self.buf.read_u32(site) as i32;
                    let lands = site as i64 + 4 + i64::from(rel);
                    if lands != tf.off as i64 {
                        findings.push(check::CheckFinding {
                            kind: super::CheckKind::PatchTarget,
                            off: site,
                            msg: format!(
                                "chained rel32 lands at {lands:#x}, not fragment {target}'s entry {:#x}",
                                tf.off
                            ),
                        });
                    }
                }
                PatchRec::Ibtc { guard, target, .. } => {
                    if !live(guard) {
                        findings.push(check::CheckFinding {
                            kind: super::CheckKind::PatchTarget,
                            off: guard,
                            msg: "IBTC guard site is not inside any live fragment".into(),
                        });
                    } else if !self.frags.contains_key(&target) {
                        findings.push(check::CheckFinding {
                            kind: super::CheckKind::PatchTarget,
                            off: guard,
                            msg: format!("open IBTC guard targets dropped fragment {target}"),
                        });
                    }
                }
            }
        }
        self.note_findings("patch set", findings);
    }

    /// Drops every compiled fragment (the buffer is reclaimed wholesale).
    pub fn invalidate_all(&mut self) {
        self.frags.clear();
        self.patched_ibtc.clear();
        self.patches.clear();
        self.buf.reset();
        self.buf.append(THUNK);
        self.epoch = None;
    }

    /// Precise invalidation: drops only the fragments whose arena
    /// coverage overlaps a mutated range, and unpatches every recorded
    /// jump into a dropped fragment (direct chains fall back to their
    /// continue-exit, inline IBTC caches close their guard). Fragments
    /// that merely *jumped to* stale code keep running; their unpatched
    /// exits re-enter the trampoline, which recompiles on demand.
    fn invalidate_ranges(&mut self, ranges: &[(usize, usize)]) {
        if ranges.is_empty() {
            return;
        }
        let mut dropped = HashSet::new();
        let mut dropped_host: Vec<(usize, usize)> = Vec::new();
        self.frags.retain(|&entry, f| {
            let stale = ranges.iter().any(|&(lo, hi)| entry < hi && f.end > lo);
            if stale {
                dropped.insert(entry);
                dropped_host.push((f.off, f.off + f.host_len));
            }
            !stale
        });
        if dropped.is_empty() {
            return;
        }
        let in_dropped =
            |site: usize| dropped_host.iter().any(|&(a, b)| site >= a && site < b);
        let mut patches = std::mem::take(&mut self.patches);
        patches.retain(|p| match *p {
            PatchRec::Direct { site, target } => {
                if in_dropped(site) {
                    return false; // the patch site itself is dead code
                }
                if dropped.contains(&target) {
                    self.buf.patch_u32(site, 0);
                    return false;
                }
                true
            }
            PatchRec::Ibtc { guard, guard_orig, target } => {
                if in_dropped(guard) {
                    self.patched_ibtc.remove(&guard);
                    return false;
                }
                if dropped.contains(&target) {
                    self.buf.patch_u32(guard, guard_orig);
                    self.patched_ibtc.remove(&guard);
                    return false;
                }
                true
            }
        });
        self.patches = patches;
    }

    fn helpers() -> Helpers {
        Helpers {
            chkpt: h_chkpt as *const () as usize,
            commit: h_commit as *const () as usize,
            exit_commit: h_exit_commit as *const () as usize,
            count_trip: h_count_trip as *const () as usize,
            rollback: h_rollback as *const () as usize,
            slow_load: h_slow_load as *const () as usize,
            slow_store: h_slow_store as *const () as usize,
            ibtc: h_ibtc as *const () as usize,
            bl_routine: h_bl_routine as *const () as usize,
        }
    }

    /// Offset of the fragment entered at arena word `entry`, compiling it
    /// if needed. The bool reports whether the buffer was reset (any
    /// previously recorded patch site is then stale).
    fn frag_off(&mut self, arena: &[HInsn], entry: usize) -> (usize, bool) {
        if let Some(f) = self.frags.get(&entry) {
            return (f.off, false);
        }
        let mut did_reset = false;
        // Worst-case bound: biggest lowering (a store fast path + stub)
        // stays under 256 bytes/insn; fragments are capped in length.
        if self.buf.remaining() < 4 << 20 {
            self.invalidate_all();
            did_reset = true;
        }
        let frag_base = self.buf.len();
        let tc = std::time::Instant::now();
        let mut out = compile_fragment(arena, entry, frag_base, &Self::helpers());
        self.stats.compile_nanos += tc.elapsed().as_nanos() as u64;
        if self.plant == Some(self.stats.frags_compiled) {
            // `mov r15, r15` after the final `ret`: unreachable at run
            // time, but a forbidden pinned-register write the checker
            // must reject (BugKind::CodegenClobberPinnedReg).
            out.bytes.extend_from_slice(&[0x4D, 0x89, 0xFF]);
        }
        if self.check_mode != CheckMode::Off {
            let tv = std::time::Instant::now();
            let findings = check::check_fragment(&out.bytes, &Self::helper_list());
            self.stats.verify_nanos += tv.elapsed().as_nanos() as u64;
            self.stats.verify_fragments += 1;
            self.note_findings(&format!("fragment at arena entry {entry} (buffer offset {frag_base:#x})"), findings);
        }
        let host_len = out.bytes.len();
        let off = self.buf.append(&out.bytes);
        debug_assert_eq!(off, frag_base);
        self.frags.insert(entry, Frag { off, host_len, end: out.end });
        self.stats.frags_compiled += 1;
        self.stats.regalloc_spills += out.spills;
        (off, did_reset)
    }

    /// Runs host code natively from `entry`, mirroring
    /// `HostEmulator::execute` under a null sink. State is copied in from
    /// and back out to `emu`, which stays the single architectural truth
    /// between calls.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &mut self,
        emu: &mut HostEmulator,
        arena: &[HInsn],
        entry: usize,
        mem: &mut GuestMem,
        ibtc: &IbtcTable,
        prof: &mut ProfTable,
        fuel: u64,
        mutations: &MutationLog,
    ) -> ExitInfo {
        let t0 = std::time::Instant::now();
        let epoch = mutations.epoch();
        if self.epoch != Some(epoch) {
            match self.epoch.and_then(|e| mutations.since(e)) {
                Some(ranges) => self.invalidate_ranges(&ranges),
                // Fresh engine or log gap: recompile from scratch. (A
                // fresh engine has nothing compiled, so the reset is
                // free.)
                None => self.invalidate_all(),
            }
            self.epoch = Some(epoch);
            if self.check_mode != CheckMode::Off {
                self.verify_patches();
            }
        }
        self.stats.enters += 1;

        let c = &mut *self.ctx;
        c.iregs = emu.iregs;
        c.fregs = emu.fregs;
        c.executed = 0;
        c.unattributed = emu.unattributed;
        c.gcnt_bb = emu.gcnt_bb;
        c.gcnt_sb = emu.gcnt_sb;
        c.host_bb = emu.host_bb;
        c.host_sb = emu.host_sb;
        c.chkpts = emu.counters.chkpts;
        c.commits = emu.counters.commits;
        c.assert_fails = emu.counters.assert_fails;
        c.alias_fails = emu.counters.alias_fails;
        c.page_faults = emu.counters.page_faults;
        c.smc_aborts = emu.counters.smc_aborts;
        c.ibtc_hits = emu.counters.ibtc_hits;
        c.ibtc_misses = emu.counters.ibtc_misses;
        take_snapshot(c, entry as u64);
        c.fuel = fuel;
        clear_transaction(c);
        c.helper_exit = 0;
        c.slow_mem = 0;
        c.mem = mem;
        c.ibtc = ibtc;
        c.prof_counts = prof.counts.as_mut_ptr();
        c.prof_trips = prof.trips.as_ptr();
        c.arena = arena.as_ptr();
        c.arena_len = arena.len() as u64;
        c.tlb = [0; TLB_SLOTS * 2];

        let mut pc = entry;
        loop {
            let (off, _) = self.frag_off(arena, pc);
            let frag_ptr = self.buf.exec_ptr(off);
            let thunk_ptr = self.buf.exec_ptr(0);
            let enter: extern "sysv64" fn(*mut NativeCtx, *const u8) -> u64 =
                unsafe { std::mem::transmute(thunk_ptr) };
            let token = enter(&mut *self.ctx, frag_ptr);
            if token == 0 {
                break;
            }
            let c = &mut *self.ctx;
            let target = c.cont_target as usize;
            let kind = c.patch_kind;
            let (site, guard, cmp, jmp, ibtc_pc) = (
                c.patch_site as *const () as usize,
                c.ibtc_guard_site as usize,
                c.ibtc_cmp_site as usize,
                c.ibtc_jmp_site as usize,
                c.ibtc_pc as u32,
            );
            let (toff, reset) = self.frag_off(arena, target);
            if !reset {
                match kind {
                    1 => {
                        let rel = toff as i64 - (site as i64 + 4);
                        self.buf.patch_u32(site, rel as i32 as u32);
                        self.patches.push(PatchRec::Direct { site, target });
                        self.stats.jump_patches += 1;
                    }
                    2 if self.patched_ibtc.insert(guard) => {
                        let guard_orig = self.buf.read_u32(guard);
                        self.buf.patch_u32(cmp, ibtc_pc);
                        let rel = toff as i64 - (jmp as i64 + 4);
                        self.buf.patch_u32(jmp, rel as i32 as u32);
                        // Open the guard last: rel32 = 0 falls
                        // through into the now-valid inline cache.
                        self.buf.patch_u32(guard, 0);
                        self.patches.push(PatchRec::Ibtc { guard, guard_orig, target });
                        self.stats.jump_patches += 1;
                        self.stats.ibtc_patches += 1;
                    }
                    _ => {}
                }
            }
            pc = target;
        }

        let c = &mut *self.ctx;
        emu.iregs = c.iregs;
        emu.fregs = c.fregs;
        emu.unattributed = c.unattributed;
        emu.gcnt_bb = c.gcnt_bb;
        emu.gcnt_sb = c.gcnt_sb;
        emu.host_bb = c.host_bb;
        emu.host_sb = c.host_sb;
        emu.counters.chkpts = c.chkpts;
        emu.counters.commits = c.commits;
        emu.counters.assert_fails = c.assert_fails;
        emu.counters.alias_fails = c.alias_fails;
        emu.counters.page_faults = c.page_faults;
        emu.counters.smc_aborts = c.smc_aborts;
        emu.counters.ibtc_hits = c.ibtc_hits;
        emu.counters.ibtc_misses = c.ibtc_misses;
        self.stats.slow_mem_exits += c.slow_mem;
        self.stats.code_bytes_emitted = self.buf.bytes_emitted;
        self.stats.code_bytes_flushed = self.buf.bytes_flushed;
        self.stats.exec_nanos += t0.elapsed().as_nanos() as u64;

        let cause = match c.exit_cause {
            CAUSE_EXIT => ExitCause::Exit { id: c.exit_a as u16 },
            CAUSE_ASSERT => ExitCause::AssertFail,
            CAUSE_ALIAS => ExitCause::AliasFail,
            CAUSE_PAGE_FAULT => ExitCause::PageFault { addr: c.exit_a, write: c.exit_b != 0 },
            CAUSE_DIV_ZERO => ExitCause::DivByZero,
            CAUSE_TRIP => ExitCause::ProfileTrip { idx: c.exit_a },
            CAUSE_FUEL => ExitCause::Fuel,
            CAUSE_SMC => ExitCause::SmcWrite { addr: c.exit_a },
            other => unreachable!("bad native exit cause {other}"),
        };
        ExitInfo {
            cause,
            executed: c.executed,
            host_pc: c.exit_host_pc as usize,
            chkpt_pc: c.exit_chkpt_pc as usize,
        }
    }
}
