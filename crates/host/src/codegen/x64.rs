//! Minimal x86-64 instruction emitter.
//!
//! Exactly the encodings the fragment lowerer needs, nothing more. All
//! memory operands are `[base + disp32]` (the disp32 form is emitted
//! unconditionally, which sidesteps the rbp/r13 mod=00 special cases at
//! the cost of a few bytes). Labels support forward references; `finish`
//! resolves them and returns the byte vector.

// A few encodings are emitted only by lowerings that come and go as the
// backend evolves; keep the emitter complete rather than minimal.
#![allow(dead_code)]

/// General-purpose register number (rax=0 … r15=15).
pub type Reg = u8;

pub const RAX: Reg = 0;
pub const RCX: Reg = 1;
pub const RDX: Reg = 2;
pub const RBX: Reg = 3;
pub const RBP: Reg = 5;
pub const RSI: Reg = 6;
pub const RDI: Reg = 7;
pub const R8: Reg = 8;
pub const R12: Reg = 12;
pub const R13: Reg = 13;
pub const R14: Reg = 14;
pub const R15: Reg = 15;

/// XMM register number (only xmm0/xmm1 are used).
pub type Xmm = u8;
pub const XMM0: Xmm = 0;
pub const XMM1: Xmm = 1;

/// Condition codes (the low nibble of the 0F 9x / 0F 8x opcodes).
pub const CC_B: u8 = 0x2;
pub const CC_AE: u8 = 0x3;
pub const CC_E: u8 = 0x4;
pub const CC_NE: u8 = 0x5;
pub const CC_BE: u8 = 0x6;
pub const CC_A: u8 = 0x7;
pub const CC_P: u8 = 0xA;
pub const CC_NP: u8 = 0xB;
pub const CC_L: u8 = 0xC;
pub const CC_GE: u8 = 0xD;
pub const CC_LE: u8 = 0xE;
pub const CC_G: u8 = 0xF;

/// Two-operand ALU ops in their `op r, r/m` (load-form) opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Cmp,
}

impl Alu {
    fn rm_opcode(self) -> u8 {
        match self {
            Alu::Add => 0x03,
            Alu::Sub => 0x2B,
            Alu::And => 0x23,
            Alu::Or => 0x0B,
            Alu::Xor => 0x33,
            Alu::Cmp => 0x3B,
        }
    }

    fn imm_ext(self) -> u8 {
        match self {
            Alu::Add => 0,
            Alu::Or => 1,
            Alu::And => 4,
            Alu::Sub => 5,
            Alu::Xor => 6,
            Alu::Cmp => 7,
        }
    }
}

/// Forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lab(usize);

/// The emitter.
#[derive(Default)]
pub struct Asm {
    buf: Vec<u8>,
    /// Bound position per label (usize::MAX = unbound).
    labels: Vec<usize>,
    /// (patch offset of rel32, label) fixups.
    fixups: Vec<(usize, Lab)>,
}

impl Asm {
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current offset (for recording patchable sites).
    pub fn pos(&self) -> usize {
        self.buf.len()
    }

    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn imm32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// REX prefix; emitted only when any bit (or force) is set.
    fn rex(&mut self, w: bool, r: u8, x: bool, b: u8, force: bool) {
        let mut v = 0x40u8;
        if w {
            v |= 8;
        }
        if r >= 8 {
            v |= 4;
        }
        if x {
            v |= 2;
        }
        if b >= 8 {
            v |= 1;
        }
        if v != 0x40 || force {
            self.byte(v);
        }
    }

    /// ModRM (+SIB) for `reg, [base + disp32]`.
    fn modrm_mem(&mut self, reg: u8, base: Reg, disp: i32) {
        let rm = base & 7;
        if rm == 4 {
            self.byte(0x80 | ((reg & 7) << 3) | 4);
            self.byte(0x24); // SIB: no index, base = rsp/r12
        } else {
            self.byte(0x80 | ((reg & 7) << 3) | rm);
        }
        self.imm32(disp as u32);
    }

    /// ModRM for `reg, rm` register-direct.
    fn modrm_reg(&mut self, reg: u8, rm: Reg) {
        self.byte(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    // ---- moves ----

    /// `mov r32, [base+disp]`
    pub fn mov_r32_mem(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(false, dst, false, base, false);
        self.byte(0x8B);
        self.modrm_mem(dst, base, disp);
    }

    /// `mov [base+disp], r32`
    pub fn mov_mem_r32(&mut self, base: Reg, disp: i32, src: Reg) {
        self.rex(false, src, false, base, false);
        self.byte(0x89);
        self.modrm_mem(src, base, disp);
    }

    /// `mov r64, [base+disp]`
    pub fn mov_r64_mem(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(true, dst, false, base, false);
        self.byte(0x8B);
        self.modrm_mem(dst, base, disp);
    }

    /// `mov [base+disp], r64`
    pub fn mov_mem_r64(&mut self, base: Reg, disp: i32, src: Reg) {
        self.rex(true, src, false, base, false);
        self.byte(0x89);
        self.modrm_mem(src, base, disp);
    }

    /// `mov r32, r32`
    pub fn mov_rr32(&mut self, dst: Reg, src: Reg) {
        self.rex(false, src, false, dst, false);
        self.byte(0x89);
        self.modrm_reg(src, dst);
    }

    /// `mov r64, r64`
    pub fn mov_rr64(&mut self, dst: Reg, src: Reg) {
        self.rex(true, src, false, dst, false);
        self.byte(0x89);
        self.modrm_reg(src, dst);
    }

    /// `mov r32, imm32`
    pub fn mov_r32_imm(&mut self, dst: Reg, imm: u32) {
        self.rex(false, 0, false, dst, false);
        self.byte(0xB8 + (dst & 7));
        self.imm32(imm);
    }

    /// `mov r64, imm64`
    pub fn mov_r64_imm(&mut self, dst: Reg, imm: u64) {
        self.rex(true, 0, false, dst, false);
        self.byte(0xB8 + (dst & 7));
        self.bytes(&imm.to_le_bytes());
    }

    /// `mov dword [base+disp], imm32`
    pub fn mov_mem32_imm(&mut self, base: Reg, disp: i32, imm: u32) {
        self.rex(false, 0, false, base, false);
        self.byte(0xC7);
        self.modrm_mem(0, base, disp);
        self.imm32(imm);
    }

    /// `mov qword [base+disp], imm32` (sign-extended)
    pub fn mov_mem64_imm(&mut self, base: Reg, disp: i32, imm: i32) {
        self.rex(true, 0, false, base, false);
        self.byte(0xC7);
        self.modrm_mem(0, base, disp);
        self.imm32(imm as u32);
    }

    /// `mov word [base+disp], imm16`
    pub fn mov_mem16_imm(&mut self, base: Reg, disp: i32, imm: u16) {
        self.byte(0x66);
        self.rex(false, 0, false, base, false);
        self.byte(0xC7);
        self.modrm_mem(0, base, disp);
        self.bytes(&imm.to_le_bytes());
    }

    /// `mov byte [base+disp], imm8`
    pub fn mov_mem8_imm(&mut self, base: Reg, disp: i32, imm: u8) {
        self.rex(false, 0, false, base, false);
        self.byte(0xC6);
        self.modrm_mem(0, base, disp);
        self.byte(imm);
    }

    // ---- widening loads / extensions ----

    /// `movzx r32, byte [base+disp]`
    pub fn movzx8_mem(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(false, dst, false, base, false);
        self.bytes(&[0x0F, 0xB6]);
        self.modrm_mem(dst, base, disp);
    }

    /// `movzx r32, word [base+disp]`
    pub fn movzx16_mem(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(false, dst, false, base, false);
        self.bytes(&[0x0F, 0xB7]);
        self.modrm_mem(dst, base, disp);
    }

    /// `movsx r32, byte [base+disp]`
    pub fn movsx8_mem(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(false, dst, false, base, false);
        self.bytes(&[0x0F, 0xBE]);
        self.modrm_mem(dst, base, disp);
    }

    /// `movsx r32, word [base+disp]`
    pub fn movsx16_mem(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(false, dst, false, base, false);
        self.bytes(&[0x0F, 0xBF]);
        self.modrm_mem(dst, base, disp);
    }

    /// `movsx r32, r8low` (Sext8). Forces REX so sil/dil encode correctly.
    pub fn movsx8_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(false, dst, false, src, src >= 4);
        self.bytes(&[0x0F, 0xBE]);
        self.modrm_reg(dst, src);
    }

    /// `movsx r32, r16low` (Sext16).
    pub fn movsx16_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(false, dst, false, src, false);
        self.bytes(&[0x0F, 0xBF]);
        self.modrm_reg(dst, src);
    }

    /// `movzx r32, r8low`. Forces REX so sil/dil encode correctly.
    pub fn movzx8_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(false, dst, false, src, src >= 4);
        self.bytes(&[0x0F, 0xB6]);
        self.modrm_reg(dst, src);
    }

    /// `movzx r32, r16low`
    pub fn movzx16_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(false, dst, false, src, false);
        self.bytes(&[0x0F, 0xB7]);
        self.modrm_reg(dst, src);
    }

    /// `movsxd r64, r32`
    pub fn movsxd(&mut self, dst: Reg, src: Reg) {
        self.rex(true, dst, false, src, false);
        self.byte(0x63);
        self.modrm_reg(dst, src);
    }

    // ---- ALU ----

    /// `op r32, r32`
    pub fn alu_rr32(&mut self, op: Alu, dst: Reg, src: Reg) {
        self.rex(false, dst, false, src, false);
        self.byte(op.rm_opcode());
        self.modrm_reg(dst, src);
    }

    /// `op r64, r64`
    pub fn alu_rr64(&mut self, op: Alu, dst: Reg, src: Reg) {
        self.rex(true, dst, false, src, false);
        self.byte(op.rm_opcode());
        self.modrm_reg(dst, src);
    }

    /// `op r32, [base+disp]`
    pub fn alu_r32_mem(&mut self, op: Alu, dst: Reg, base: Reg, disp: i32) {
        self.rex(false, dst, false, base, false);
        self.byte(op.rm_opcode());
        self.modrm_mem(dst, base, disp);
    }

    /// `op r32, imm32`
    pub fn alu_r32_imm(&mut self, op: Alu, dst: Reg, imm: u32) {
        self.rex(false, 0, false, dst, false);
        self.byte(0x81);
        self.modrm_reg(op.imm_ext(), dst);
        self.imm32(imm);
    }

    /// `op r64, imm32` (sign-extended)
    pub fn alu_r64_imm(&mut self, op: Alu, dst: Reg, imm: i32) {
        self.rex(true, 0, false, dst, false);
        self.byte(0x81);
        self.modrm_reg(op.imm_ext(), dst);
        self.imm32(imm as u32);
    }

    /// `op dword [base+disp], imm32`
    pub fn alu_mem32_imm(&mut self, op: Alu, base: Reg, disp: i32, imm: u32) {
        self.rex(false, 0, false, base, false);
        self.byte(0x81);
        self.modrm_mem(op.imm_ext(), base, disp);
        self.imm32(imm);
    }

    /// `op qword [base+disp], imm32` (sign-extended)
    pub fn alu_mem64_imm(&mut self, op: Alu, base: Reg, disp: i32, imm: i32) {
        self.rex(true, 0, false, base, false);
        self.byte(0x81);
        self.modrm_mem(op.imm_ext(), base, disp);
        self.imm32(imm as u32);
    }

    /// `op qword [base+disp], r64` (store form: add [m], r)
    pub fn alu_mem64_r(&mut self, op: Alu, base: Reg, disp: i32, src: Reg) {
        let opc = match op {
            Alu::Add => 0x01,
            Alu::Sub => 0x29,
            Alu::And => 0x21,
            Alu::Or => 0x09,
            Alu::Xor => 0x31,
            Alu::Cmp => 0x39,
        };
        self.rex(true, src, false, base, false);
        self.byte(opc);
        self.modrm_mem(src, base, disp);
    }

    /// `cmp qword [base+disp], r64` — alias of the store-form cmp.
    pub fn cmp_mem64_r(&mut self, base: Reg, disp: i32, src: Reg) {
        self.alu_mem64_r(Alu::Cmp, base, disp, src);
    }

    /// `rol r64, cl` (rotate count taken mod 64 by hardware)
    pub fn rol64_cl(&mut self, r: Reg) {
        self.rex(true, 0, false, r, false);
        self.byte(0xD3);
        self.modrm_reg(0, r);
    }

    /// `test [base+disp], r64` — ZF = ((mem & src) == 0)
    pub fn test_mem64_r(&mut self, base: Reg, disp: i32, src: Reg) {
        self.rex(true, src, false, base, false);
        self.byte(0x85);
        self.modrm_mem(src, base, disp);
    }

    /// `test r32, r32`
    pub fn test_rr32(&mut self, a: Reg, b: Reg) {
        self.rex(false, b, false, a, false);
        self.byte(0x85);
        self.modrm_reg(b, a);
    }

    /// `imul r32, r32`
    pub fn imul_rr32(&mut self, dst: Reg, src: Reg) {
        self.rex(false, dst, false, src, false);
        self.bytes(&[0x0F, 0xAF]);
        self.modrm_reg(dst, src);
    }

    /// `imul r64, r64`
    pub fn imul_rr64(&mut self, dst: Reg, src: Reg) {
        self.rex(true, dst, false, src, false);
        self.bytes(&[0x0F, 0xAF]);
        self.modrm_reg(dst, src);
    }

    /// `cdq`
    pub fn cdq(&mut self) {
        self.byte(0x99);
    }

    /// `idiv r32`
    pub fn idiv_r32(&mut self, src: Reg) {
        self.rex(false, 0, false, src, false);
        self.byte(0xF7);
        self.modrm_reg(7, src);
    }

    /// `neg r32`
    pub fn neg_r32(&mut self, r: Reg) {
        self.rex(false, 0, false, r, false);
        self.byte(0xF7);
        self.modrm_reg(3, r);
    }

    /// `shl/shr/sar r32, cl` — ext: 4=shl, 5=shr, 7=sar
    pub fn shift_cl(&mut self, ext: u8, r: Reg) {
        self.rex(false, 0, false, r, false);
        self.byte(0xD3);
        self.modrm_reg(ext, r);
    }

    /// `shr r64, imm8`
    pub fn shr_r64_imm(&mut self, r: Reg, imm: u8) {
        self.rex(true, 0, false, r, false);
        self.byte(0xC1);
        self.modrm_reg(5, r);
        self.byte(imm);
    }

    /// `shl/shr/sar r32, imm8` — ext: 4=shl, 5=shr, 7=sar
    pub fn shift_r32_imm(&mut self, ext: u8, r: Reg, imm: u8) {
        self.rex(false, 0, false, r, false);
        self.byte(0xC1);
        self.modrm_reg(ext, r);
        self.byte(imm);
    }

    /// `setcc r8low`. Forces REX so sil/dil encode correctly.
    pub fn setcc(&mut self, cc: u8, r: Reg) {
        self.rex(false, 0, false, r, r >= 4);
        self.bytes(&[0x0F, 0x90 + cc]);
        self.modrm_reg(0, r);
    }

    /// `inc qword [base+disp]`
    pub fn inc_mem64(&mut self, base: Reg, disp: i32) {
        self.rex(true, 0, false, base, false);
        self.byte(0xFF);
        self.modrm_mem(0, base, disp);
    }

    /// `lea r32, [base+disp]` — the 32-bit destination truncates, which is
    /// exactly guest wrapping-add semantics.
    pub fn lea_r32(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(false, dst, false, base, false);
        self.byte(0x8D);
        self.modrm_mem(dst, base, disp);
    }

    /// `lea r64, [base+disp]`
    pub fn lea_r64(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(true, dst, false, base, false);
        self.byte(0x8D);
        self.modrm_mem(dst, base, disp);
    }

    /// `call r64`
    pub fn call_r(&mut self, r: Reg) {
        self.rex(false, 0, false, r, false);
        self.byte(0xFF);
        self.modrm_reg(2, r);
    }

    /// `ret`
    pub fn ret(&mut self) {
        self.byte(0xC3);
    }

    // ---- SSE2 (xmm0/xmm1 only — no REX.R/B needed) ----

    /// `movsd xmm, [base+disp]`
    pub fn movsd_x_mem(&mut self, dst: Xmm, base: Reg, disp: i32) {
        self.byte(0xF2);
        self.rex(false, dst, false, base, false);
        self.bytes(&[0x0F, 0x10]);
        self.modrm_mem(dst, base, disp);
    }

    /// `movsd [base+disp], xmm`
    pub fn movsd_mem_x(&mut self, base: Reg, disp: i32, src: Xmm) {
        self.byte(0xF2);
        self.rex(false, src, false, base, false);
        self.bytes(&[0x0F, 0x11]);
        self.modrm_mem(src, base, disp);
    }

    /// `movapd xmm, xmm`
    pub fn movapd_xx(&mut self, dst: Xmm, src: Xmm) {
        self.byte(0x66);
        self.bytes(&[0x0F, 0x28]);
        self.modrm_reg(dst, src);
    }

    /// SSE2 scalar-double arithmetic: opcode 0x58 add, 0x5C sub, 0x59 mul,
    /// 0x5E div, 0x51 sqrt.
    pub fn sse_arith(&mut self, opcode: u8, dst: Xmm, src: Xmm) {
        self.byte(0xF2);
        self.bytes(&[0x0F, opcode]);
        self.modrm_reg(dst, src);
    }

    /// `ucomisd xmm, xmm`
    pub fn ucomisd(&mut self, a: Xmm, b: Xmm) {
        self.byte(0x66);
        self.bytes(&[0x0F, 0x2E]);
        self.modrm_reg(a, b);
    }

    /// `andpd xmm, xmm`
    pub fn andpd(&mut self, dst: Xmm, src: Xmm) {
        self.byte(0x66);
        self.bytes(&[0x0F, 0x54]);
        self.modrm_reg(dst, src);
    }

    /// `xorpd xmm, xmm`
    pub fn xorpd(&mut self, dst: Xmm, src: Xmm) {
        self.byte(0x66);
        self.bytes(&[0x0F, 0x57]);
        self.modrm_reg(dst, src);
    }

    /// `movq xmm, r64`
    pub fn movq_x_r(&mut self, dst: Xmm, src: Reg) {
        self.byte(0x66);
        self.rex(true, dst, false, src, false);
        self.bytes(&[0x0F, 0x6E]);
        self.modrm_reg(dst, src);
    }

    /// `movq r64, xmm`
    pub fn movq_r_x(&mut self, dst: Reg, src: Xmm) {
        self.byte(0x66);
        self.rex(true, src, false, dst, false);
        self.bytes(&[0x0F, 0x7E]);
        self.modrm_reg(src, dst);
    }

    /// `cvttsd2si r32, xmm`
    pub fn cvttsd2si(&mut self, dst: Reg, src: Xmm) {
        self.byte(0xF2);
        self.rex(false, dst, false, src, false);
        self.bytes(&[0x0F, 0x2C]);
        self.modrm_reg(dst, src);
    }

    /// `cvtsi2sd xmm, r32`
    pub fn cvtsi2sd(&mut self, dst: Xmm, src: Reg) {
        self.byte(0xF2);
        self.rex(false, dst, false, src, false);
        self.bytes(&[0x0F, 0x2A]);
        self.modrm_reg(dst, src);
    }

    // ---- labels and control flow ----

    pub fn new_label(&mut self) -> Lab {
        self.labels.push(usize::MAX);
        Lab(self.labels.len() - 1)
    }

    /// Binds `lab` to the current position.
    ///
    /// # Panics
    /// Panics if already bound.
    pub fn bind(&mut self, lab: Lab) {
        assert_eq!(self.labels[lab.0], usize::MAX, "label bound twice");
        self.labels[lab.0] = self.buf.len();
    }

    /// `jmp rel32` to a label. Returns the offset of the rel32 field
    /// (IBTC guard sites are patched through it later).
    pub fn jmp(&mut self, lab: Lab) -> usize {
        self.byte(0xE9);
        let at = self.buf.len();
        self.fixups.push((at, lab));
        self.imm32(0);
        at
    }

    /// `jmp rel32` with a literal displacement; returns the offset of the
    /// rel32 field (a patchable site).
    pub fn jmp_rel(&mut self, rel: i32) -> usize {
        self.byte(0xE9);
        let at = self.buf.len();
        self.imm32(rel as u32);
        at
    }

    /// `jcc rel32` to a label.
    pub fn jcc(&mut self, cc: u8, lab: Lab) {
        self.bytes(&[0x0F, 0x80 + cc]);
        self.fixups.push((self.buf.len(), lab));
        self.imm32(0);
    }

    /// `ud2` — traps; used on statically impossible paths.
    pub fn ud2(&mut self) {
        self.bytes(&[0x0F, 0x0B]);
    }

    /// Resolves fixups and returns the code.
    ///
    /// # Panics
    /// Panics if any referenced label is unbound.
    pub fn finish(mut self) -> Vec<u8> {
        for (at, lab) in std::mem::take(&mut self.fixups) {
            let target = self.labels[lab.0];
            assert_ne!(target, usize::MAX, "unbound label");
            let rel = target as i64 - (at as i64 + 4);
            let rel = i32::try_from(rel).expect("fragment too large for rel32");
            self.buf[at..at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_fixup_resolves_forward_and_backward() {
        let mut a = Asm::new();
        let fwd = a.new_label();
        let back = a.new_label();
        a.bind(back);
        a.mov_r32_imm(RAX, 1);
        a.jmp(fwd);
        a.jcc(CC_E, back);
        a.bind(fwd);
        a.ret();
        let code = a.finish();
        // jmp is at offset 5 (after the 5-byte mov), rel32 at 6..10,
        // target = 16 (after the 6-byte jcc) → rel = 16 - 10 = 6.
        assert_eq!(i32::from_le_bytes(code[6..10].try_into().unwrap()), 6);
        // jcc at 10 (0F 84), rel32 at 12..16, target 0 → rel = -16.
        assert_eq!(i32::from_le_bytes(code[12..16].try_into().unwrap()), -16);
    }

    #[test]
    fn mem_operand_uses_sib_for_r12() {
        let mut a = Asm::new();
        a.mov_r32_mem(RAX, R12, 8);
        let code = a.finish();
        // REX.B, 8B, modrm(mod=10 reg=rax rm=100), SIB 0x24, disp32 8
        assert_eq!(code, vec![0x41, 0x8B, 0x84, 0x24, 8, 0, 0, 0]);
    }

    #[test]
    fn rex_w_on_64_bit_mov() {
        let mut a = Asm::new();
        a.mov_mem_r64(R15, 16, RAX);
        let code = a.finish();
        assert_eq!(code, vec![0x49, 0x89, 0x87, 16, 0, 0, 0]);
    }
}
