//! Native code generation for HISA translations.
//!
//! The software layer runs host code through one of two backends behind
//! the [`HostCodeGen`] contract:
//!
//! * the [`HostEmulator`](crate::emu::HostEmulator) — the architectural
//!   reference, always available, and the only backend that can feed an
//!   [`InsnSink`](crate::sink::InsnSink) (timing/power need per-retire
//!   events);
//! * the x86-64 JIT ([`NativeEngine`], Linux/x86-64 only) — translates
//!   arena fragments to native code in a W^X
//!   [`CodeBuffer`](buffer::CodeBuffer), chains fragments by patching
//!   jumps in place, and calls back into helper transcriptions of the
//!   emulator for every slow path, so its architectural results are
//!   bit-identical to the emulator's.
//!
//! Compiled code is a pure cache of the arena: nothing in it is
//! serialized, and a checkpoint restored into either backend replays
//! identically (the engine revalidates against the code cache's
//! [`MutationLog`], drops only fragments covering arena ranges that
//! changed meaning — unpatching jumps into them — and recompiles from
//! scratch when the log cannot cover the gap).

use crate::emu::{ExitInfo, HostEmulator, IbtcTable, ProfTable};
use crate::insn::HInsn;
use darco_guest::GuestMem;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod buffer;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod check;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod exec;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod lower;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod x64;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use exec::NativeEngine;

/// Which backend executes host code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The instruction-by-instruction reference emulator.
    #[default]
    Emu,
    /// Native x86-64 code generation (falls back to the emulator when
    /// unavailable on the build target, or whenever a run needs retire
    /// events).
    Native,
}

impl Backend {
    /// Parses a `--backend` / config value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "emu" => Some(Backend::Emu),
            "native" => Some(Backend::Native),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Emu => "emu",
            Backend::Native => "native",
        }
    }

    /// Whether native code generation exists for the build target.
    pub fn native_available() -> bool {
        cfg!(all(target_arch = "x86_64", target_os = "linux"))
    }
}

/// How the machine-code checker ([`check`], DESIGN.md §13 stage 2) is
/// applied to every compiled fragment before it can execute. The TOL maps
/// its `verify`/`verify_level` configuration onto this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// No checking (structural verify level, or verification off).
    #[default]
    Off,
    /// Check, count findings and queue them for
    /// [`HostCodeGen::take_verify_findings`], but run the code anyway.
    Report,
    /// Check and panic on the first finding — unverified machine code
    /// must never execute.
    Fatal,
}

/// The invariant classes the machine-code checker proves, mirroring
/// `darco_ir::InvariantKind` for the IR layer. Each gets a
/// `jit.verify.*` observability counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Bytes that do not decode as the emitter's x86-64 subset.
    Decode,
    /// A write to a pinned/reserved host register (r15 ctx pointer, rsp).
    RegDiscipline,
    /// An indirect call not of the `mov rax, helper; call rax` shape or
    /// to an address that is not a registered helper.
    HelperCall,
    /// A context access (`[r15 + disp]` or derived) outside the
    /// `NativeCtx` layout.
    CtxBounds,
    /// A load/store through a pointer not proven to be the context, a
    /// bounds-checked L0-TLB page pointer, or a profile table.
    MemDiscipline,
    /// A rel32 branch that does not land on an instruction boundary
    /// inside the fragment.
    BranchTarget,
    /// A chain/IBTC patch whose site or target is not live compiled code
    /// (checked again after mutation-driven invalidation).
    PatchTarget,
}

impl CheckKind {
    /// All kinds, in counter order.
    pub const ALL: [CheckKind; 7] = [
        CheckKind::Decode,
        CheckKind::RegDiscipline,
        CheckKind::HelperCall,
        CheckKind::CtxBounds,
        CheckKind::MemDiscipline,
        CheckKind::BranchTarget,
        CheckKind::PatchTarget,
    ];

    /// Stable index into [`JitStats::verify_by_kind`].
    pub fn index(self) -> usize {
        match self {
            CheckKind::Decode => 0,
            CheckKind::RegDiscipline => 1,
            CheckKind::HelperCall => 2,
            CheckKind::CtxBounds => 3,
            CheckKind::MemDiscipline => 4,
            CheckKind::BranchTarget => 5,
            CheckKind::PatchTarget => 6,
        }
    }

    /// Stable counter-name suffix (`jit.verify.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Decode => "decode",
            CheckKind::RegDiscipline => "reg-discipline",
            CheckKind::HelperCall => "helper-call",
            CheckKind::CtxBounds => "ctx-bounds",
            CheckKind::MemDiscipline => "mem-discipline",
            CheckKind::BranchTarget => "branch-target",
            CheckKind::PatchTarget => "patch-target",
        }
    }
}

/// Number of [`CheckKind`]s (size of [`JitStats::verify_by_kind`]).
pub const CHECK_KIND_COUNT: usize = CheckKind::ALL.len();

/// Counters the JIT maintains about itself (exposed as `jit.*` metrics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JitStats {
    /// Fragments compiled (recompiles after a flush count again).
    pub frags_compiled: u64,
    /// Trampoline entries (one per `execute` call).
    pub enters: u64,
    /// Machine-code bytes ever written to the code buffer.
    pub code_bytes_emitted: u64,
    /// Machine-code bytes discarded by whole-buffer flushes.
    pub code_bytes_flushed: u64,
    /// Direct jumps patched into compiled code (fragment chaining).
    pub jump_patches: u64,
    /// Inline IBTC caches installed (subset of `jump_patches`).
    pub ibtc_patches: u64,
    /// Guest registers that did not fit the fragment register cache.
    pub regalloc_spills: u64,
    /// Memory operations that left the inline fast path for a helper.
    pub slow_mem_exits: u64,
    /// Wall nanoseconds inside `execute` (compile + native run). The
    /// `_nanos` suffix keeps it out of determinism comparisons, like the
    /// TOL's translate timers.
    pub exec_nanos: u64,
    /// Of `exec_nanos`, nanoseconds spent compiling fragments.
    pub compile_nanos: u64,
    /// Fragments run through the machine-code checker.
    pub verify_fragments: u64,
    /// Total checker findings (sum of `verify_by_kind`).
    pub verify_findings: u64,
    /// Wall nanoseconds inside the machine-code checker (the `_nanos`
    /// suffix keeps it out of determinism comparisons).
    pub verify_nanos: u64,
    /// Findings per [`CheckKind`], indexed by [`CheckKind::index`].
    pub verify_by_kind: [u64; CHECK_KIND_COUNT],
}

/// Record of arena ranges whose already-installed words changed meaning
/// (chain patches, invalidation unpatches, flushes, restores), kept by
/// the code cache so a backend can invalidate compiled code *precisely*:
/// only fragments covering a mutated range are dropped, everything else
/// keeps running. The log is bounded; a consumer that has fallen too far
/// behind (or a full-cache event) gets `None` from [`Self::since`] and
/// must fall back to whole-cache invalidation.
///
/// Like the epoch it generalizes, the log is a cache-validity token, not
/// simulated state: it is never serialized, and a restored run simply
/// recompiles from scratch.
#[derive(Debug, Default)]
pub struct MutationLog {
    epoch: u64,
    /// `(epoch after the bump, lo, hi)` — half-open arena word ranges.
    entries: std::collections::VecDeque<(u64, usize, usize)>,
    /// Epoch from which `entries` is complete; `since(e)` with
    /// `e < complete_from` cannot be answered precisely.
    complete_from: u64,
}

impl MutationLog {
    /// Bound on retained entries: past this, precise invalidation would
    /// cost more than it saves and stragglers recompile wholesale.
    const CAP: usize = 256;

    pub fn new() -> MutationLog {
        MutationLog::default()
    }

    /// Monotonic mutation counter (the classic epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records that arena words `[lo, hi)` changed meaning.
    pub fn record(&mut self, lo: usize, hi: usize) {
        self.epoch += 1;
        self.entries.push_back((self.epoch, lo, hi));
        while self.entries.len() > Self::CAP {
            let (e, _, _) = self.entries.pop_front().expect("non-empty");
            self.complete_from = self.complete_from.max(e);
        }
    }

    /// Records a whole-cache event (flush, restore): every consumer must
    /// do a full invalidation.
    pub fn record_full(&mut self) {
        self.epoch += 1;
        self.entries.clear();
        self.complete_from = self.epoch;
    }

    /// The ranges mutated since `epoch`, or `None` when the log no longer
    /// reaches back that far (full invalidation required).
    pub fn since(&self, epoch: u64) -> Option<Vec<(usize, usize)>> {
        if epoch < self.complete_from {
            return None;
        }
        Some(
            self.entries
                .iter()
                .filter(|&&(e, _, _)| e > epoch)
                .map(|&(_, lo, hi)| (lo, hi))
                .collect(),
        )
    }
}

/// The native-backend contract: execute arena code starting at `entry`
/// until the transaction ends, producing the same [`ExitInfo`] and the
/// same mutations of `emu`'s architectural state, counters and
/// profile table as `HostEmulator::execute` would.
///
/// `mutations` is the code cache's mutation log; an engine must discard
/// compiled code covering any arena range that changed meaning since its
/// last call (chaining, invalidation, flush or checkpoint restore).
pub trait HostCodeGen: Send {
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        emu: &mut HostEmulator,
        arena: &[HInsn],
        entry: usize,
        mem: &mut GuestMem,
        ibtc: &IbtcTable,
        prof: &mut ProfTable,
        fuel: u64,
        mutations: &MutationLog,
    ) -> ExitInfo;

    /// Snapshot of the engine's self-counters.
    fn stats(&self) -> JitStats;

    /// Drops all compiled code (it is a pure cache).
    fn invalidate_all(&mut self);

    /// Sets the machine-code checking mode applied to every fragment
    /// before it may execute. Backends without a checker ignore it.
    fn set_verify(&mut self, _mode: CheckMode) {}

    /// Drains checker findings queued under [`CheckMode::Report`]
    /// (empty under `Off`/`Fatal` — `Fatal` panics instead).
    fn take_verify_findings(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Plants a pinned-register-clobber mutation (the TOL's
    /// `CodegenClobberPinnedReg` injection) into the N-th compiled
    /// fragment (0-based), for debug-toolchain tests. Backends without a
    /// code buffer ignore it.
    fn plant_clobber(&mut self, _ordinal: u64) {}
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
impl HostCodeGen for NativeEngine {
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        emu: &mut HostEmulator,
        arena: &[HInsn],
        entry: usize,
        mem: &mut GuestMem,
        ibtc: &IbtcTable,
        prof: &mut ProfTable,
        fuel: u64,
        mutations: &MutationLog,
    ) -> ExitInfo {
        NativeEngine::execute(self, emu, arena, entry, mem, ibtc, prof, fuel, mutations)
    }

    fn stats(&self) -> JitStats {
        self.stats
    }

    fn invalidate_all(&mut self) {
        NativeEngine::invalidate_all(self);
    }

    fn set_verify(&mut self, mode: CheckMode) {
        NativeEngine::set_verify(self, mode);
    }

    fn take_verify_findings(&mut self) -> Vec<String> {
        NativeEngine::take_verify_findings(self)
    }

    fn plant_clobber(&mut self, ordinal: u64) {
        NativeEngine::plant_clobber(self, ordinal);
    }
}

/// Instantiates the backend, or `None` when it must fall back to the
/// emulator (`Backend::Emu`, or native on a host without a JIT).
pub fn new_backend(b: Backend) -> Option<Box<dyn HostCodeGen>> {
    match b {
        Backend::Emu => None,
        Backend::Native => {
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            {
                Some(Box::new(NativeEngine::new()))
            }
            #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
            {
                None
            }
        }
    }
}
