//! Native code generation for HISA translations.
//!
//! The software layer runs host code through one of two backends behind
//! the [`HostCodeGen`] contract:
//!
//! * the [`HostEmulator`](crate::emu::HostEmulator) — the architectural
//!   reference, always available, and the only backend that can feed an
//!   [`InsnSink`](crate::sink::InsnSink) (timing/power need per-retire
//!   events);
//! * the x86-64 JIT ([`NativeEngine`], Linux/x86-64 only) — translates
//!   arena fragments to native code in a W^X
//!   [`CodeBuffer`](buffer::CodeBuffer), chains fragments by patching
//!   jumps in place, and calls back into helper transcriptions of the
//!   emulator for every slow path, so its architectural results are
//!   bit-identical to the emulator's.
//!
//! Compiled code is a pure cache of the arena: nothing in it is
//! serialized, and a checkpoint restored into either backend replays
//! identically (the engine revalidates against the code cache's
//! [`MutationLog`], drops only fragments covering arena ranges that
//! changed meaning — unpatching jumps into them — and recompiles from
//! scratch when the log cannot cover the gap).

use crate::emu::{ExitInfo, HostEmulator, IbtcTable, ProfTable};
use crate::insn::HInsn;
use darco_guest::GuestMem;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod buffer;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod exec;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod lower;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod x64;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use exec::NativeEngine;

/// Which backend executes host code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The instruction-by-instruction reference emulator.
    #[default]
    Emu,
    /// Native x86-64 code generation (falls back to the emulator when
    /// unavailable on the build target, or whenever a run needs retire
    /// events).
    Native,
}

impl Backend {
    /// Parses a `--backend` / config value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "emu" => Some(Backend::Emu),
            "native" => Some(Backend::Native),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Emu => "emu",
            Backend::Native => "native",
        }
    }

    /// Whether native code generation exists for the build target.
    pub fn native_available() -> bool {
        cfg!(all(target_arch = "x86_64", target_os = "linux"))
    }
}

/// Counters the JIT maintains about itself (exposed as `jit.*` metrics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JitStats {
    /// Fragments compiled (recompiles after a flush count again).
    pub frags_compiled: u64,
    /// Trampoline entries (one per `execute` call).
    pub enters: u64,
    /// Machine-code bytes ever written to the code buffer.
    pub code_bytes_emitted: u64,
    /// Machine-code bytes discarded by whole-buffer flushes.
    pub code_bytes_flushed: u64,
    /// Direct jumps patched into compiled code (fragment chaining).
    pub jump_patches: u64,
    /// Inline IBTC caches installed (subset of `jump_patches`).
    pub ibtc_patches: u64,
    /// Guest registers that did not fit the fragment register cache.
    pub regalloc_spills: u64,
    /// Memory operations that left the inline fast path for a helper.
    pub slow_mem_exits: u64,
    /// Wall nanoseconds inside `execute` (compile + native run). The
    /// `_nanos` suffix keeps it out of determinism comparisons, like the
    /// TOL's translate timers.
    pub exec_nanos: u64,
    /// Of `exec_nanos`, nanoseconds spent compiling fragments.
    pub compile_nanos: u64,
}

/// Record of arena ranges whose already-installed words changed meaning
/// (chain patches, invalidation unpatches, flushes, restores), kept by
/// the code cache so a backend can invalidate compiled code *precisely*:
/// only fragments covering a mutated range are dropped, everything else
/// keeps running. The log is bounded; a consumer that has fallen too far
/// behind (or a full-cache event) gets `None` from [`Self::since`] and
/// must fall back to whole-cache invalidation.
///
/// Like the epoch it generalizes, the log is a cache-validity token, not
/// simulated state: it is never serialized, and a restored run simply
/// recompiles from scratch.
#[derive(Debug, Default)]
pub struct MutationLog {
    epoch: u64,
    /// `(epoch after the bump, lo, hi)` — half-open arena word ranges.
    entries: std::collections::VecDeque<(u64, usize, usize)>,
    /// Epoch from which `entries` is complete; `since(e)` with
    /// `e < complete_from` cannot be answered precisely.
    complete_from: u64,
}

impl MutationLog {
    /// Bound on retained entries: past this, precise invalidation would
    /// cost more than it saves and stragglers recompile wholesale.
    const CAP: usize = 256;

    pub fn new() -> MutationLog {
        MutationLog::default()
    }

    /// Monotonic mutation counter (the classic epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records that arena words `[lo, hi)` changed meaning.
    pub fn record(&mut self, lo: usize, hi: usize) {
        self.epoch += 1;
        self.entries.push_back((self.epoch, lo, hi));
        while self.entries.len() > Self::CAP {
            let (e, _, _) = self.entries.pop_front().expect("non-empty");
            self.complete_from = self.complete_from.max(e);
        }
    }

    /// Records a whole-cache event (flush, restore): every consumer must
    /// do a full invalidation.
    pub fn record_full(&mut self) {
        self.epoch += 1;
        self.entries.clear();
        self.complete_from = self.epoch;
    }

    /// The ranges mutated since `epoch`, or `None` when the log no longer
    /// reaches back that far (full invalidation required).
    pub fn since(&self, epoch: u64) -> Option<Vec<(usize, usize)>> {
        if epoch < self.complete_from {
            return None;
        }
        Some(
            self.entries
                .iter()
                .filter(|&&(e, _, _)| e > epoch)
                .map(|&(_, lo, hi)| (lo, hi))
                .collect(),
        )
    }
}

/// The native-backend contract: execute arena code starting at `entry`
/// until the transaction ends, producing the same [`ExitInfo`] and the
/// same mutations of `emu`'s architectural state, counters and
/// profile table as `HostEmulator::execute` would.
///
/// `mutations` is the code cache's mutation log; an engine must discard
/// compiled code covering any arena range that changed meaning since its
/// last call (chaining, invalidation, flush or checkpoint restore).
pub trait HostCodeGen: Send {
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        emu: &mut HostEmulator,
        arena: &[HInsn],
        entry: usize,
        mem: &mut GuestMem,
        ibtc: &IbtcTable,
        prof: &mut ProfTable,
        fuel: u64,
        mutations: &MutationLog,
    ) -> ExitInfo;

    /// Snapshot of the engine's self-counters.
    fn stats(&self) -> JitStats;

    /// Drops all compiled code (it is a pure cache).
    fn invalidate_all(&mut self);
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
impl HostCodeGen for NativeEngine {
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        emu: &mut HostEmulator,
        arena: &[HInsn],
        entry: usize,
        mem: &mut GuestMem,
        ibtc: &IbtcTable,
        prof: &mut ProfTable,
        fuel: u64,
        mutations: &MutationLog,
    ) -> ExitInfo {
        NativeEngine::execute(self, emu, arena, entry, mem, ibtc, prof, fuel, mutations)
    }

    fn stats(&self) -> JitStats {
        self.stats
    }

    fn invalidate_all(&mut self) {
        NativeEngine::invalidate_all(self);
    }
}

/// Instantiates the backend, or `None` when it must fall back to the
/// emulator (`Backend::Emu`, or native on a host without a JIT).
pub fn new_backend(b: Backend) -> Option<Box<dyn HostCodeGen>> {
    match b {
        Backend::Emu => None,
        Backend::Native => {
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            {
                Some(Box::new(NativeEngine::new()))
            }
            #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
            {
                None
            }
        }
    }
}
