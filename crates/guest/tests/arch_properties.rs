//! Property-style tests of GISA's architectural identities — the flag
//! algebra the translator's lazy-flag machinery relies on. Randomized
//! inputs come from the internal seeded PRNG (deterministic across runs),
//! replacing the original proptest strategies.

use darco_guest::exec::{eval_alu, eval_imul, eval_shift, eval_unary};
use darco_guest::insn::{AluOp, ShiftOp, UnaryOp};
use darco_guest::prng::{Rng, SmallRng};
use darco_guest::reg::{Cond, Flags};

const CASES: usize = 4000;

/// ADC with CF=0 behaves exactly like ADD; SBB with CF=0 like SUB.
#[test]
fn adc_sbb_degenerate_to_add_sub() {
    let mut rng = SmallRng::seed_from_u64(0x41D0_0001);
    for _ in 0..CASES {
        let (a, b) = (rng.gen::<u32>(), rng.gen::<u32>());
        let mut f1 = Flags::default();
        let mut f2 = Flags::default();
        assert_eq!(eval_alu(AluOp::Add, a, b, &mut f1), eval_alu(AluOp::Adc, a, b, &mut f2));
        assert_eq!(f1, f2);
        let mut f1 = Flags::default();
        let mut f2 = Flags::default();
        assert_eq!(eval_alu(AluOp::Sub, a, b, &mut f1), eval_alu(AluOp::Sbb, a, b, &mut f2));
        assert_eq!(f1, f2);
    }
}

/// INC/DEC compute ADD/SUB-by-one flags except CF, which they preserve.
#[test]
fn inc_dec_preserve_carry_but_match_otherwise() {
    let mut rng = SmallRng::seed_from_u64(0x41D0_0002);
    for _ in 0..CASES {
        let (a, cf) = (rng.gen::<u32>(), rng.gen::<bool>());
        for (u, alu) in [(UnaryOp::Inc, AluOp::Add), (UnaryOp::Dec, AluOp::Sub)] {
            let mut fu = Flags { cf, ..Flags::default() };
            let r1 = eval_unary(u, a, &mut fu);
            let mut fa = Flags::default();
            let r2 = eval_alu(alu, a, 1, &mut fa);
            assert_eq!(r1, r2);
            assert_eq!(fu.cf, cf, "CF preserved");
            assert_eq!((fu.zf, fu.sf, fu.of, fu.pf), (fa.zf, fa.sf, fa.of, fa.pf));
        }
    }
}

/// NEG's flags equal SUB(0, a)'s — the identity the translator uses
/// for its deferred descriptor.
#[test]
fn neg_flags_are_sub_from_zero() {
    let mut rng = SmallRng::seed_from_u64(0x41D0_0003);
    for _ in 0..CASES {
        let a = rng.gen::<u32>();
        let mut fn_ = Flags::default();
        let r1 = eval_unary(UnaryOp::Neg, a, &mut fn_);
        let mut fs = Flags::default();
        let r2 = eval_alu(AluOp::Sub, 0, a, &mut fs);
        assert_eq!(r1, r2);
        assert_eq!(fn_, fs);
    }
}

/// The signed/unsigned condition codes agree with Rust's comparisons
/// after a compare — the contract behind compare+branch fusion.
#[test]
fn conditions_after_cmp_match_comparisons() {
    let mut rng = SmallRng::seed_from_u64(0x41D0_0004);
    for i in 0..CASES {
        // Mix fully random pairs with near-equal pairs so the equality
        // conditions get real coverage.
        let a = rng.gen::<u32>();
        let b = if i % 4 == 0 { a.wrapping_add(rng.gen_range(0u32..2)) } else { rng.gen::<u32>() };
        let mut f = Flags::default();
        eval_alu(AluOp::Sub, a, b, &mut f);
        assert_eq!(f.cond(Cond::E), a == b);
        assert_eq!(f.cond(Cond::Ne), a != b);
        assert_eq!(f.cond(Cond::B), a < b);
        assert_eq!(f.cond(Cond::Ae), a >= b);
        assert_eq!(f.cond(Cond::Be), a <= b);
        assert_eq!(f.cond(Cond::A), a > b);
        assert_eq!(f.cond(Cond::L), (a as i32) < (b as i32));
        assert_eq!(f.cond(Cond::Ge), (a as i32) >= (b as i32));
        assert_eq!(f.cond(Cond::Le), (a as i32) <= (b as i32));
        assert_eq!(f.cond(Cond::G), (a as i32) > (b as i32));
    }
}

/// Shifting by zero is architecturally a no-op (result and flags);
/// 32 aliases to 0 (amount masked to 5 bits).
#[test]
fn shift_by_zero_is_identity() {
    let mut rng = SmallRng::seed_from_u64(0x41D0_0005);
    for _ in 0..CASES {
        let a = rng.gen::<u32>();
        let op = ShiftOp::from_index(rng.gen_range(0usize..5));
        let bits = rng.gen_range(0u8..32);
        let mut f = Flags::from_bits(bits & 31);
        let before = f;
        assert_eq!(eval_shift(op, a, 0, &mut f), a);
        assert_eq!(f, before);
        let mut f = before;
        assert_eq!(eval_shift(op, a, 32, &mut f), a);
        assert_eq!(f, before);
    }
}

/// IMUL overflow flags fire exactly when the 64-bit product does not
/// fit in 32 bits.
#[test]
fn imul_overflow_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0x41D0_0006);
    for i in 0..CASES {
        // Small factors (which never overflow) need coverage too.
        let (a, b) = if i % 3 == 0 {
            (rng.gen_range(0u32..1000), rng.gen_range(0u32..1000))
        } else {
            (rng.gen::<u32>(), rng.gen::<u32>())
        };
        let mut f = Flags::default();
        let r = eval_imul(a, b, &mut f);
        let full = (a as i32 as i64) * (b as i32 as i64);
        assert_eq!(r, full as u32);
        assert_eq!(f.cf, full != (full as i32) as i64);
        assert_eq!(f.of, f.cf);
    }
}

/// Every encode/decode round-trip preserves instruction identity for
/// random-but-valid instructions (complements the seeded test in the
/// crate).
#[test]
fn encode_roundtrip() {
    for seed in 0..500u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..8 {
            let insn = darco_guest::gen::arbitrary_insn(&mut rng);
            let mut buf = Vec::new();
            darco_guest::encode(&insn, &mut buf);
            let (got, len) = darco_guest::decode(&buf).unwrap();
            assert_eq!(got, insn);
            assert_eq!(len, buf.len());
        }
    }
}
