//! Property-based tests of GISA's architectural identities — the flag
//! algebra the translator's lazy-flag machinery relies on.

use darco_guest::exec::{eval_alu, eval_imul, eval_shift, eval_unary};
use darco_guest::insn::{AluOp, ShiftOp, UnaryOp};
use darco_guest::reg::{Cond, Flags};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 4000, ..ProptestConfig::default() })]

    /// ADC with CF=0 behaves exactly like ADD; SBB with CF=0 like SUB.
    #[test]
    fn adc_sbb_degenerate_to_add_sub(a in any::<u32>(), b in any::<u32>()) {
        let mut f1 = Flags::default();
        let mut f2 = Flags::default();
        prop_assert_eq!(eval_alu(AluOp::Add, a, b, &mut f1), eval_alu(AluOp::Adc, a, b, &mut f2));
        prop_assert_eq!(f1, f2);
        let mut f1 = Flags::default();
        let mut f2 = Flags::default();
        prop_assert_eq!(eval_alu(AluOp::Sub, a, b, &mut f1), eval_alu(AluOp::Sbb, a, b, &mut f2));
        prop_assert_eq!(f1, f2);
    }

    /// INC/DEC compute ADD/SUB-by-one flags except CF, which they preserve.
    #[test]
    fn inc_dec_preserve_carry_but_match_otherwise(a in any::<u32>(), cf in any::<bool>()) {
        for (u, alu) in [(UnaryOp::Inc, AluOp::Add), (UnaryOp::Dec, AluOp::Sub)] {
            let mut fu = Flags { cf, ..Flags::default() };
            let r1 = eval_unary(u, a, &mut fu);
            let mut fa = Flags::default();
            let r2 = eval_alu(alu, a, 1, &mut fa);
            prop_assert_eq!(r1, r2);
            prop_assert_eq!(fu.cf, cf, "CF preserved");
            prop_assert_eq!((fu.zf, fu.sf, fu.of, fu.pf), (fa.zf, fa.sf, fa.of, fa.pf));
        }
    }

    /// NEG's flags equal SUB(0, a)'s — the identity the translator uses
    /// for its deferred descriptor.
    #[test]
    fn neg_flags_are_sub_from_zero(a in any::<u32>()) {
        let mut fn_ = Flags::default();
        let r1 = eval_unary(UnaryOp::Neg, a, &mut fn_);
        let mut fs = Flags::default();
        let r2 = eval_alu(AluOp::Sub, 0, a, &mut fs);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(fn_, fs);
    }

    /// The signed/unsigned condition codes agree with Rust's comparisons
    /// after a compare — the contract behind compare+branch fusion.
    #[test]
    fn conditions_after_cmp_match_comparisons(a in any::<u32>(), b in any::<u32>()) {
        let mut f = Flags::default();
        eval_alu(AluOp::Sub, a, b, &mut f);
        prop_assert_eq!(f.cond(Cond::E), a == b);
        prop_assert_eq!(f.cond(Cond::Ne), a != b);
        prop_assert_eq!(f.cond(Cond::B), a < b);
        prop_assert_eq!(f.cond(Cond::Ae), a >= b);
        prop_assert_eq!(f.cond(Cond::Be), a <= b);
        prop_assert_eq!(f.cond(Cond::A), a > b);
        prop_assert_eq!(f.cond(Cond::L), (a as i32) < (b as i32));
        prop_assert_eq!(f.cond(Cond::Ge), (a as i32) >= (b as i32));
        prop_assert_eq!(f.cond(Cond::Le), (a as i32) <= (b as i32));
        prop_assert_eq!(f.cond(Cond::G), (a as i32) > (b as i32));
    }

    /// Shifting by zero is architecturally a no-op (result and flags).
    #[test]
    fn shift_by_zero_is_identity(a in any::<u32>(), op in 0usize..5, bits in 0u8..32) {
        let op = ShiftOp::from_index(op);
        let mut f = Flags::from_bits(bits & 31);
        let before = f;
        prop_assert_eq!(eval_shift(op, a, 0, &mut f), a);
        prop_assert_eq!(f, before);
        // And 32 aliases to 0 (amount masked to 5 bits).
        let mut f = before;
        prop_assert_eq!(eval_shift(op, a, 32, &mut f), a);
        prop_assert_eq!(f, before);
    }

    /// IMUL overflow flags fire exactly when the 64-bit product does not
    /// fit in 32 bits.
    #[test]
    fn imul_overflow_is_exact(a in any::<u32>(), b in any::<u32>()) {
        let mut f = Flags::default();
        let r = eval_imul(a, b, &mut f);
        let full = (a as i32 as i64) * (b as i32 as i64);
        prop_assert_eq!(r, full as u32);
        prop_assert_eq!(f.cf, full != (full as i32) as i64);
        prop_assert_eq!(f.of, f.cf);
    }

    /// Every encode/decode round-trip preserves instruction identity for
    /// random-but-valid instructions (complements the seeded test in the
    /// crate).
    #[test]
    fn encode_roundtrip(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..8 {
            let insn = darco_guest::gen::arbitrary_insn(&mut rng);
            let mut buf = Vec::new();
            darco_guest::encode(&insn, &mut buf);
            let (got, len) = darco_guest::decode(&buf).unwrap();
            prop_assert_eq!(got, insn);
            prop_assert_eq!(len, buf.len());
        }
    }
}
