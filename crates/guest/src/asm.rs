//! A small two-pass assembler for building guest programs.
//!
//! [`Asm`] appends instructions, resolves forward label references at
//! [`Asm::finish`] time, and can package the result as a [`GuestProgram`].
//! The workload suite (`darco-workloads`) and most tests build their guest
//! code through this type.

use crate::encode::encode;
use crate::insn::{AluOp, Insn, ShiftAmount, ShiftOp};
use crate::program::GuestProgram;
use crate::reg::{Addr, Cond, Fpr, Gpr, Width};

/// A code label. Created unbound with [`Asm::label`] and bound with
/// [`Asm::bind`], or created already bound with [`Asm::here`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    /// `jmp` — imm at offset 1, length 5.
    Jmp,
    /// `jcc` — imm at offset 2, length 6.
    Jcc,
    /// `call` — imm at offset 1, length 5.
    Call,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    insn_off: usize,
    kind: BranchKind,
    label: Label,
}

/// Two-pass assembler.
#[derive(Debug)]
pub struct Asm {
    base: u32,
    buf: Vec<u8>,
    labels: Vec<Option<u32>>,
    fixups: Vec<Fixup>,
    end_label: Label,
}

impl Asm {
    /// Creates an assembler emitting at `base`.
    pub fn new(base: u32) -> Asm {
        let mut a = Asm { base, buf: Vec::new(), labels: Vec::new(), fixups: Vec::new(), end_label: Label(0) };
        a.end_label = a.label();
        a
    }

    /// The current emission address.
    pub fn addr(&self) -> u32 {
        self.base + self.buf.len() as u32
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.addr());
    }

    /// Creates a label bound to the current address.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emits a raw instruction. Branch instructions emitted this way use
    /// their literal `rel` field; prefer the `*_to` helpers for labels.
    pub fn emit(&mut self, insn: Insn) {
        encode(&insn, &mut self.buf);
    }

    fn emit_fixup(&mut self, insn: Insn, kind: BranchKind, label: Label) {
        let off = self.buf.len();
        encode(&insn, &mut self.buf);
        self.fixups.push(Fixup { insn_off: off, kind, label });
    }

    /// `jmp label`.
    pub fn jmp_to(&mut self, label: Label) {
        self.emit_fixup(Insn::Jmp { rel: 0 }, BranchKind::Jmp, label);
    }

    /// `jcc label`.
    pub fn jcc_to(&mut self, cc: Cond, label: Label) {
        self.emit_fixup(Insn::Jcc { cc, rel: 0 }, BranchKind::Jcc, label);
    }

    /// `call label`.
    pub fn call_to(&mut self, label: Label) {
        self.emit_fixup(Insn::Call { rel: 0 }, BranchKind::Call, label);
    }

    /// `jmp` to the address just past the last instruction of the final
    /// program (where callers conventionally place `halt`).
    pub fn jmp_to_end(&mut self) {
        let end = self.end_label;
        self.jmp_to(end);
    }

    // ---- frequent-instruction sugar ----------------------------------------

    /// `mov dst, imm`.
    pub fn mov_ri(&mut self, dst: Gpr, imm: i32) {
        self.emit(Insn::MovRI { dst, imm });
    }

    /// `mov dst, src`.
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.emit(Insn::MovRR { dst, src });
    }

    /// `op dst, src`.
    pub fn alu_rr(&mut self, op: AluOp, dst: Gpr, src: Gpr) {
        self.emit(Insn::AluRR { op, dst, src });
    }

    /// `op dst, imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Gpr, imm: i32) {
        self.emit(Insn::AluRI { op, dst, imm });
    }

    /// `add dst, src`.
    pub fn add_rr(&mut self, dst: Gpr, src: Gpr) {
        self.alu_rr(AluOp::Add, dst, src);
    }

    /// `sub dst, src`.
    pub fn sub_rr(&mut self, dst: Gpr, src: Gpr) {
        self.alu_rr(AluOp::Sub, dst, src);
    }

    /// `cmp a, b`.
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.emit(Insn::CmpRR { a, b });
    }

    /// `cmp a, imm`.
    pub fn cmp_ri(&mut self, a: Gpr, imm: i32) {
        self.emit(Insn::CmpRI { a, imm });
    }

    /// 32-bit load `mov dst, [addr]`.
    pub fn load(&mut self, dst: Gpr, addr: Addr) {
        self.emit(Insn::Load { dst, addr, width: Width::D, sign: false });
    }

    /// Store `mov [addr], src`.
    pub fn store(&mut self, addr: Addr, src: Gpr, width: Width) {
        self.emit(Insn::Store { addr, src, width });
    }

    /// `lea dst, [addr]`.
    pub fn lea(&mut self, dst: Gpr, addr: Addr) {
        self.emit(Insn::Lea { dst, addr });
    }

    /// `push src`.
    pub fn push(&mut self, src: Gpr) {
        self.emit(Insn::Push { src });
    }

    /// `pop dst`.
    pub fn pop(&mut self, dst: Gpr) {
        self.emit(Insn::Pop { dst });
    }

    /// `inc dst`.
    pub fn inc(&mut self, dst: Gpr) {
        self.emit(Insn::Unary { op: crate::insn::UnaryOp::Inc, dst });
    }

    /// `dec dst`.
    pub fn dec(&mut self, dst: Gpr) {
        self.emit(Insn::Unary { op: crate::insn::UnaryOp::Dec, dst });
    }

    /// `shl dst, imm`.
    pub fn shl_i(&mut self, dst: Gpr, n: u8) {
        self.emit(Insn::Shift { op: ShiftOp::Shl, dst, amount: ShiftAmount::Imm(n) });
    }

    /// `imul dst, src`.
    pub fn imul(&mut self, dst: Gpr, src: Gpr) {
        self.emit(Insn::Imul { dst, src });
    }

    /// Loads an FP immediate.
    pub fn fld_i(&mut self, dst: Fpr, v: f64) {
        self.emit(Insn::FldI { dst, bits: v.to_bits() });
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.emit(Insn::Ret);
    }

    /// `syscall`.
    pub fn syscall(&mut self) {
        self.emit(Insn::Syscall);
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.emit(Insn::Halt);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.emit(Insn::Nop);
    }

    /// Resolves all labels and returns the encoded bytes.
    ///
    /// # Panics
    /// Panics if a referenced label was never bound.
    pub fn finish(mut self) -> Vec<u8> {
        let end = self.addr();
        self.labels[self.end_label.0].get_or_insert(end);
        for f in &self.fixups {
            let target = self.labels[f.label.0].expect("branch to unbound label");
            let (imm_off, insn_len) = match f.kind {
                BranchKind::Jmp | BranchKind::Call => (1usize, 5u32),
                BranchKind::Jcc => (2usize, 6u32),
            };
            let insn_end = self.base + f.insn_off as u32 + insn_len;
            let rel = target.wrapping_sub(insn_end) as i32;
            self.buf[f.insn_off + imm_off..f.insn_off + imm_off + 4]
                .copy_from_slice(&rel.to_le_bytes());
        }
        self.buf
    }

    /// Resolves labels and wraps the code in a [`GuestProgram`] with the
    /// default memory layout and this assembler's base as the entry point.
    pub fn into_program(self) -> GuestProgram {
        let base = self.base;
        let code = self.finish();
        let mut p = GuestProgram::new("asm", code);
        p.code_base = base;
        p.entry = base;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{step, Next};
    use crate::state::GuestState;

    #[test]
    fn backward_and_forward_branches_resolve() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Gpr::Eax, 0);
        a.mov_ri(Gpr::Ecx, 4);
        let top = a.here();
        a.add_rr(Gpr::Eax, Gpr::Ecx);
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top); // backward
        let done = a.label();
        a.jmp_to(done); // forward
        a.mov_ri(Gpr::Eax, -1); // skipped
        a.bind(done);
        a.halt();
        let p = a.into_program();
        let mut st = GuestState::boot(&p);
        loop {
            if step(&mut st).unwrap().next == Next::Halt {
                break;
            }
        }
        assert_eq!(st.gpr(Gpr::Eax), 10);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.jmp_to(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new(0);
        let l = a.here();
        a.bind(l);
    }
}
