//! The guest architectural executor — GISA's semantic specification.
//!
//! [`step`] fetches, decodes and executes exactly one instruction.
//! Both the authoritative component (`darco-xcomp`) and the TOL
//! interpreter (`darco-tol`) are built on this function, and the
//! translator's output is validated against it, so this module is the
//! single source of truth for instruction semantics.
//!
//! Two properties are load-bearing for the rest of the system:
//!
//! 1. **Fault atomicity** — a step that returns a [`Fault`] leaves the
//!    architectural state completely unchanged, so the instruction can be
//!    re-executed after the controller installs the missing page.
//! 2. **`REP` restartability** — repeated string instructions execute one
//!    element per step, updating `ECX`/`ESI`/`EDI` as they go and leaving
//!    `EIP` in place ([`Next::RepContinue`]), exactly like x86's
//!    interruptible `REP MOVS`.

use crate::encode::{decode, DecodeError, MAX_INSN_LEN};
use crate::insn::{AluOp, FBinOp, FUnOp, Insn, RepCond, ShiftAmount, ShiftOp, UnaryOp};
use crate::mem::{GuestMem, PageFault};
use crate::reg::{Addr, Flags, Gpr, Width};
use crate::softfp;
use crate::state::GuestState;
use std::fmt;

/// Control-flow outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Fall through to the next sequential instruction.
    Seq,
    /// Transfer to an explicit target (taken branch, call, return).
    Jump(u32),
    /// A `REP` string instruction performed one element and must re-execute.
    RepContinue,
    /// A system call; `EIP` has been advanced past the instruction.
    Syscall,
    /// The program halted.
    Halt,
}

/// Execution fault. Faults are precise: state is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Memory access touched an unmapped page.
    Page(PageFault),
    /// Integer division by zero.
    DivByZero { pc: u32 },
    /// Undecodable instruction bytes.
    BadOpcode { pc: u32 },
}

impl From<PageFault> for Fault {
    fn from(pf: PageFault) -> Fault {
        Fault::Page(pf)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Page(pf) => write!(
                f,
                "page fault ({}) at {:#010x}",
                if pf.write { "write" } else { "read" },
                pf.addr
            ),
            Fault::DivByZero { pc } => write!(f, "division by zero at {pc:#010x}"),
            Fault::BadOpcode { pc } => write!(f, "bad opcode at {pc:#010x}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Result of one successful [`step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo {
    /// Address of the executed instruction.
    pub pc: u32,
    /// Its encoded length.
    pub len: u32,
    /// The executed instruction.
    pub insn: Insn,
    /// Control-flow outcome.
    pub next: Next,
}

/// Fetches and decodes the instruction at `pc`.
///
/// # Errors
/// - [`Fault::Page`] if the instruction bytes touch an unmapped page;
/// - [`Fault::BadOpcode`] if the bytes are not a valid instruction.
pub fn fetch(mem: &GuestMem, pc: u32) -> Result<(Insn, u32), Fault> {
    // Fast path: decode straight out of the page the PC lives in. This
    // succeeds unless the instruction straddles a page boundary.
    if let Some(tail) = mem.page_tail(pc) {
        if tail.len() >= MAX_INSN_LEN {
            return match decode(&tail[..MAX_INSN_LEN]) {
                Ok((insn, len)) => Ok((insn, len as u32)),
                Err(_) => Err(Fault::BadOpcode { pc }),
            };
        }
        if let Ok((insn, len)) = decode(tail) {
            return Ok((insn, len as u32));
        }
    }
    // Slow path: byte-at-a-time across the page boundary (or faulting).
    let mut buf = [0u8; MAX_INSN_LEN];
    let mut available = 0;
    let mut fault: Option<PageFault> = None;
    for (i, slot) in buf.iter_mut().enumerate() {
        match mem.read_u8(pc.wrapping_add(i as u32)) {
            Ok(b) => {
                *slot = b;
                available = i + 1;
            }
            Err(pf) => {
                fault = Some(pf);
                break;
            }
        }
    }
    match decode(&buf[..available]) {
        Ok((insn, len)) => Ok((insn, len as u32)),
        Err(DecodeError::UnexpectedEnd) => match fault {
            Some(pf) => Err(Fault::Page(pf)),
            None => Err(Fault::BadOpcode { pc }),
        },
        Err(DecodeError::BadOpcode(_)) => Err(Fault::BadOpcode { pc }),
    }
}

/// Executes one instruction: fetch, decode, execute, advance `EIP`.
///
/// # Errors
/// Propagates [`Fault`]s; the state is unchanged on fault.
pub fn step(st: &mut GuestState) -> Result<StepInfo, Fault> {
    let pc = st.eip;
    let (insn, len) = fetch(&st.mem, pc)?;
    let next = exec_insn(st, &insn, pc, len)?;
    st.eip = match next {
        Next::Seq | Next::Syscall | Next::Halt => pc.wrapping_add(len),
        Next::Jump(t) => t,
        Next::RepContinue => pc,
    };
    Ok(StepInfo { pc, len, insn, next })
}

/// Computes the effective address of a memory operand.
#[inline]
pub fn effective_addr(st: &GuestState, a: &Addr) -> u32 {
    let mut ea = a.disp as u32;
    if let Some(b) = a.base {
        ea = ea.wrapping_add(st.gpr(b));
    }
    if let Some(i) = a.index {
        ea = ea.wrapping_add(st.gpr(i) << a.scale.shift());
    }
    ea
}

/// Evaluates a two-operand ALU operation, updating `fl` exactly as the
/// architecture specifies, and returns the result.
///
/// Exposed so that optimizer tests can cross-check constant folding.
pub fn eval_alu(op: AluOp, a: u32, b: u32, fl: &mut Flags) -> u32 {
    let cin = fl.cf as u32;
    let (r, cf, of) = match op {
        AluOp::Add => {
            let (r, c) = a.overflowing_add(b);
            let of = ((a ^ r) & (b ^ r)) >> 31 != 0;
            (r, c, of)
        }
        AluOp::Adc => {
            let (r1, c1) = a.overflowing_add(b);
            let (r, c2) = r1.overflowing_add(cin);
            let of = ((a ^ r) & (b ^ r)) >> 31 != 0;
            (r, c1 || c2, of)
        }
        AluOp::Sub => {
            let r = a.wrapping_sub(b);
            let of = ((a ^ b) & (a ^ r)) >> 31 != 0;
            (r, a < b, of)
        }
        AluOp::Sbb => {
            let r = a.wrapping_sub(b).wrapping_sub(cin);
            let cf = (a as u64) < (b as u64) + (cin as u64);
            let of = ((a ^ b) & (a ^ r)) >> 31 != 0;
            (r, cf, of)
        }
        AluOp::And => (a & b, false, false),
        AluOp::Or => (a | b, false, false),
        AluOp::Xor => (a ^ b, false, false),
    };
    fl.cf = cf;
    fl.of = of;
    fl.set_result(r);
    r
}

/// Evaluates a unary ALU operation with its architectural flag behaviour.
pub fn eval_unary(op: UnaryOp, a: u32, fl: &mut Flags) -> u32 {
    match op {
        UnaryOp::Inc => {
            let r = a.wrapping_add(1);
            fl.of = a == 0x7FFF_FFFF;
            fl.set_result(r); // CF preserved (x86 quirk)
            r
        }
        UnaryOp::Dec => {
            let r = a.wrapping_sub(1);
            fl.of = a == 0x8000_0000;
            fl.set_result(r);
            r
        }
        UnaryOp::Not => !a, // no flags
        UnaryOp::Neg => {
            let r = 0u32.wrapping_sub(a);
            fl.cf = a != 0;
            fl.of = a == 0x8000_0000;
            fl.set_result(r);
            r
        }
    }
}

/// Evaluates a shift/rotate with its architectural flag behaviour.
pub fn eval_shift(op: ShiftOp, a: u32, amount: u32, fl: &mut Flags) -> u32 {
    let amt = amount & 31;
    if amt == 0 {
        return a; // no result change, no flag change
    }
    match op {
        ShiftOp::Shl => {
            let r = a << amt;
            fl.cf = (a >> (32 - amt)) & 1 != 0;
            fl.of = false;
            fl.set_result(r);
            r
        }
        ShiftOp::Shr => {
            let r = a >> amt;
            fl.cf = (a >> (amt - 1)) & 1 != 0;
            fl.of = false;
            fl.set_result(r);
            r
        }
        ShiftOp::Sar => {
            let r = ((a as i32) >> amt) as u32;
            fl.cf = (a >> (amt - 1)) & 1 != 0;
            fl.of = false;
            fl.set_result(r);
            r
        }
        ShiftOp::Rol => {
            let r = a.rotate_left(amt);
            fl.cf = r & 1 != 0;
            fl.of = false;
            r // ZF/SF/PF unchanged
        }
        ShiftOp::Ror => {
            let r = a.rotate_right(amt);
            fl.cf = r >> 31 != 0;
            fl.of = false;
            r
        }
    }
}

/// Evaluates a signed multiply with architectural flag behaviour.
pub fn eval_imul(a: u32, b: u32, fl: &mut Flags) -> u32 {
    let full = (a as i32 as i64) * (b as i32 as i64);
    let r = full as u32;
    let ovf = full != (r as i32 as i64);
    fl.cf = ovf;
    fl.of = ovf;
    fl.set_result(r);
    r
}

/// Architectural signed division (quotient). `i32::MIN / -1` wraps.
#[inline]
pub fn eval_idiv(a: u32, b: u32) -> u32 {
    (a as i32).wrapping_div(b as i32) as u32
}

/// Architectural signed remainder. `i32::MIN % -1` is 0.
#[inline]
pub fn eval_irem(a: u32, b: u32) -> u32 {
    (a as i32).wrapping_rem(b as i32) as u32
}

/// Evaluates an FP binary operation.
#[inline]
pub fn eval_fbin(op: FBinOp, a: f64, b: f64) -> f64 {
    match op {
        FBinOp::Add => a + b,
        FBinOp::Sub => a - b,
        FBinOp::Mul => a * b,
        FBinOp::Div => a / b,
        // IEEE-style min/max that propagate the first operand on NaN ties
        // is messy; GISA defines: NaN in either operand yields NaN.
        FBinOp::Min => {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else if a < b {
                a
            } else {
                b
            }
        }
        FBinOp::Max => {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else if a > b {
                a
            } else {
                b
            }
        }
    }
}

/// Evaluates an FP unary operation (`sin`/`cos` follow [`softfp`]).
#[inline]
pub fn eval_funary(op: FUnOp, a: f64) -> f64 {
    match op {
        FUnOp::Sqrt => a.sqrt(),
        FUnOp::Abs => a.abs(),
        FUnOp::Neg => -a,
        FUnOp::Sin => softfp::sin_spec(a),
        FUnOp::Cos => softfp::cos_spec(a),
    }
}

/// Sets flags for `fcmp` (x86 `comisd` convention).
pub fn eval_fcmp(a: f64, b: f64, fl: &mut Flags) {
    if a.is_nan() || b.is_nan() {
        fl.zf = true;
        fl.cf = true;
        fl.pf = true;
    } else {
        fl.zf = a == b;
        fl.cf = a < b;
        fl.pf = false;
    }
    fl.sf = false;
    fl.of = false;
}

/// Executes a decoded instruction at `pc` with encoded length `len`.
///
/// On success, the caller updates `EIP` according to the returned [`Next`]
/// (as [`step`] does). On fault the state is unchanged.
///
/// # Errors
/// Returns [`Fault`] for unmapped memory, division by zero.
pub fn exec_insn(st: &mut GuestState, insn: &Insn, pc: u32, len: u32) -> Result<Next, Fault> {
    let fallthrough = pc.wrapping_add(len);
    match *insn {
        Insn::MovRR { dst, src } => st.set_gpr(dst, st.gpr(src)),
        Insn::MovRI { dst, imm } => st.set_gpr(dst, imm as u32),
        Insn::Load { dst, addr, width, sign } => {
            let ea = effective_addr(st, &addr);
            let v = st.mem.read_width(ea, width, sign)?;
            st.set_gpr(dst, v);
        }
        Insn::Store { addr, src, width } => {
            let ea = effective_addr(st, &addr);
            st.mem.write_width(ea, st.gpr(src), width)?;
        }
        Insn::StoreI { addr, imm, width } => {
            let ea = effective_addr(st, &addr);
            st.mem.write_width(ea, imm as u32, width)?;
        }
        Insn::Lea { dst, addr } => {
            let ea = effective_addr(st, &addr);
            st.set_gpr(dst, ea);
        }
        Insn::Xchg { a, b } => {
            let (va, vb) = (st.gpr(a), st.gpr(b));
            st.set_gpr(a, vb);
            st.set_gpr(b, va);
        }
        Insn::Cmov { cc, dst, src } => {
            if st.flags.cond(cc) {
                st.set_gpr(dst, st.gpr(src));
            }
        }
        Insn::Setcc { cc, dst } => {
            st.set_gpr(dst, st.flags.cond(cc) as u32);
        }
        Insn::Push { src } => {
            let sp = st.gpr(Gpr::Esp).wrapping_sub(4);
            st.mem.write_u32(sp, st.gpr(src))?;
            st.set_gpr(Gpr::Esp, sp);
        }
        Insn::PushI { imm } => {
            let sp = st.gpr(Gpr::Esp).wrapping_sub(4);
            st.mem.write_u32(sp, imm as u32)?;
            st.set_gpr(Gpr::Esp, sp);
        }
        Insn::Pop { dst } => {
            let sp = st.gpr(Gpr::Esp);
            let v = st.mem.read_u32(sp)?;
            st.set_gpr(Gpr::Esp, sp.wrapping_add(4));
            st.set_gpr(dst, v);
        }
        Insn::AluRR { op, dst, src } => {
            let r = eval_alu(op, st.gpr(dst), st.gpr(src), &mut st.flags);
            st.set_gpr(dst, r);
        }
        Insn::AluRI { op, dst, imm } => {
            let r = eval_alu(op, st.gpr(dst), imm as u32, &mut st.flags);
            st.set_gpr(dst, r);
        }
        Insn::AluRM { op, dst, addr } => {
            let ea = effective_addr(st, &addr);
            let m = st.mem.read_u32(ea)?;
            let r = eval_alu(op, st.gpr(dst), m, &mut st.flags);
            st.set_gpr(dst, r);
        }
        Insn::AluMR { op, addr, src } => {
            let ea = effective_addr(st, &addr);
            let m = st.mem.read_u32(ea)?;
            // The read probed the same bytes the write will touch, so the
            // write below cannot fault and flag updates are safe.
            let r = eval_alu(op, m, st.gpr(src), &mut st.flags);
            st.mem.write_u32(ea, r).expect("probed by read");
        }
        Insn::AluMI { op, addr, imm } => {
            let ea = effective_addr(st, &addr);
            let m = st.mem.read_u32(ea)?;
            let r = eval_alu(op, m, imm as u32, &mut st.flags);
            st.mem.write_u32(ea, r).expect("probed by read");
        }
        Insn::CmpRR { a, b } => {
            eval_alu(AluOp::Sub, st.gpr(a), st.gpr(b), &mut st.flags);
        }
        Insn::CmpRI { a, imm } => {
            eval_alu(AluOp::Sub, st.gpr(a), imm as u32, &mut st.flags);
        }
        Insn::CmpRM { a, addr } => {
            let ea = effective_addr(st, &addr);
            let m = st.mem.read_u32(ea)?;
            eval_alu(AluOp::Sub, st.gpr(a), m, &mut st.flags);
        }
        Insn::TestRR { a, b } => {
            eval_alu(AluOp::And, st.gpr(a), st.gpr(b), &mut st.flags);
        }
        Insn::TestRI { a, imm } => {
            eval_alu(AluOp::And, st.gpr(a), imm as u32, &mut st.flags);
        }
        Insn::Unary { op, dst } => {
            let r = eval_unary(op, st.gpr(dst), &mut st.flags);
            st.set_gpr(dst, r);
        }
        Insn::UnaryM { op, addr, width } => {
            let ea = effective_addr(st, &addr);
            let m = st.mem.read_width(ea, width, false)?;
            let r = eval_unary(op, m, &mut st.flags);
            st.mem.write_width(ea, r, width).expect("probed by read");
        }
        Insn::Shift { op, dst, amount } => {
            let amt = match amount {
                ShiftAmount::Imm(n) => n as u32,
                ShiftAmount::Cl => st.gpr(Gpr::Ecx),
            };
            let r = eval_shift(op, st.gpr(dst), amt, &mut st.flags);
            st.set_gpr(dst, r);
        }
        Insn::Imul { dst, src } => {
            let r = eval_imul(st.gpr(dst), st.gpr(src), &mut st.flags);
            st.set_gpr(dst, r);
        }
        Insn::ImulI { dst, src, imm } => {
            let r = eval_imul(st.gpr(src), imm as u32, &mut st.flags);
            st.set_gpr(dst, r);
        }
        Insn::Idiv { dst, src } => {
            let d = st.gpr(src);
            if d == 0 {
                return Err(Fault::DivByZero { pc });
            }
            st.set_gpr(dst, eval_idiv(st.gpr(dst), d));
        }
        Insn::Irem { dst, src } => {
            let d = st.gpr(src);
            if d == 0 {
                return Err(Fault::DivByZero { pc });
            }
            st.set_gpr(dst, eval_irem(st.gpr(dst), d));
        }
        Insn::Jmp { rel } => return Ok(Next::Jump(fallthrough.wrapping_add(rel as u32))),
        Insn::Jcc { cc, rel } => {
            if st.flags.cond(cc) {
                return Ok(Next::Jump(fallthrough.wrapping_add(rel as u32)));
            }
        }
        Insn::JmpInd { target } => return Ok(Next::Jump(st.gpr(target))),
        Insn::Call { rel } => {
            let sp = st.gpr(Gpr::Esp).wrapping_sub(4);
            st.mem.write_u32(sp, fallthrough)?;
            st.set_gpr(Gpr::Esp, sp);
            return Ok(Next::Jump(fallthrough.wrapping_add(rel as u32)));
        }
        Insn::CallInd { target } => {
            let t = st.gpr(target);
            let sp = st.gpr(Gpr::Esp).wrapping_sub(4);
            st.mem.write_u32(sp, fallthrough)?;
            st.set_gpr(Gpr::Esp, sp);
            return Ok(Next::Jump(t));
        }
        Insn::Ret => {
            let sp = st.gpr(Gpr::Esp);
            let t = st.mem.read_u32(sp)?;
            st.set_gpr(Gpr::Esp, sp.wrapping_add(4));
            return Ok(Next::Jump(t));
        }
        Insn::Movs { width, rep } => return exec_string(st, StringOp::Movs, width, rep_kind(rep)),
        Insn::Stos { width, rep } => return exec_string(st, StringOp::Stos, width, rep_kind(rep)),
        Insn::Lods { width, rep } => return exec_string(st, StringOp::Lods, width, rep_kind(rep)),
        Insn::Scas { width, rep } => {
            return exec_string(st, StringOp::Scas, width, rep_cond_kind(rep))
        }
        Insn::Cmps { width, rep } => {
            return exec_string(st, StringOp::Cmps, width, rep_cond_kind(rep))
        }
        Insn::Fld { dst, addr } => {
            let ea = effective_addr(st, &addr);
            let v = f64::from_bits(st.mem.read_u64(ea)?);
            st.set_fpr(dst, v);
        }
        Insn::Fst { addr, src } => {
            let ea = effective_addr(st, &addr);
            st.mem.write_u64(ea, st.fpr(src).to_bits())?;
        }
        Insn::FldI { dst, bits } => st.set_fpr(dst, f64::from_bits(bits)),
        Insn::FmovRR { dst, src } => st.set_fpr(dst, st.fpr(src)),
        Insn::Fbin { op, dst, src } => {
            let r = eval_fbin(op, st.fpr(dst), st.fpr(src));
            st.set_fpr(dst, r);
        }
        Insn::FbinM { op, dst, addr } => {
            let ea = effective_addr(st, &addr);
            let m = f64::from_bits(st.mem.read_u64(ea)?);
            let r = eval_fbin(op, st.fpr(dst), m);
            st.set_fpr(dst, r);
        }
        Insn::Funary { op, dst } => {
            let r = eval_funary(op, st.fpr(dst));
            st.set_fpr(dst, r);
        }
        Insn::Fcmp { a, b } => eval_fcmp(st.fpr(a), st.fpr(b), &mut st.flags),
        Insn::Cvtsi2f { dst, src } => st.set_fpr(dst, st.gpr(src) as i32 as f64),
        Insn::Cvtf2si { dst, src } => st.set_gpr(dst, st.fpr(src) as i32 as u32),
        Insn::Syscall => return Ok(Next::Syscall),
        Insn::Halt => return Ok(Next::Halt),
        Insn::Nop => {}
    }
    Ok(Next::Seq)
}

#[derive(Clone, Copy, PartialEq)]
enum StringOp {
    Movs,
    Stos,
    Lods,
    Scas,
    Cmps,
}

#[derive(Clone, Copy, PartialEq)]
enum RepKind {
    None,
    Plain,
    While(RepCond),
}

fn rep_kind(rep: bool) -> RepKind {
    if rep {
        RepKind::Plain
    } else {
        RepKind::None
    }
}

fn rep_cond_kind(rep: Option<RepCond>) -> RepKind {
    match rep {
        None => RepKind::None,
        Some(c) => RepKind::While(c),
    }
}

/// Executes one element of a string operation. With a `REP` prefix, `ECX`
/// is the element counter; pointers always advance upward (GISA has no
/// direction flag).
fn exec_string(st: &mut GuestState, op: StringOp, width: Width, rep: RepKind) -> Result<Next, Fault> {
    let w = width.bytes();
    if rep != RepKind::None && st.gpr(Gpr::Ecx) == 0 {
        return Ok(Next::Seq);
    }
    // Perform all memory accesses (and collect register updates) before
    // mutating anything, for fault atomicity.
    let esi = st.gpr(Gpr::Esi);
    let edi = st.gpr(Gpr::Edi);
    match op {
        StringOp::Movs => {
            let v = st.mem.read_width(esi, width, false)?;
            st.mem.write_width(edi, v, width)?;
            st.set_gpr(Gpr::Esi, esi.wrapping_add(w));
            st.set_gpr(Gpr::Edi, edi.wrapping_add(w));
        }
        StringOp::Stos => {
            st.mem.write_width(edi, st.gpr(Gpr::Eax), width)?;
            st.set_gpr(Gpr::Edi, edi.wrapping_add(w));
        }
        StringOp::Lods => {
            let v = st.mem.read_width(esi, width, false)?;
            st.set_gpr(Gpr::Esi, esi.wrapping_add(w));
            st.set_gpr(Gpr::Eax, v);
        }
        StringOp::Scas => {
            let m = st.mem.read_width(edi, width, false)?;
            let a = truncate(st.gpr(Gpr::Eax), width);
            eval_alu(AluOp::Sub, a, m, &mut st.flags);
            st.set_gpr(Gpr::Edi, edi.wrapping_add(w));
        }
        StringOp::Cmps => {
            let a = st.mem.read_width(esi, width, false)?;
            let b = st.mem.read_width(edi, width, false)?;
            eval_alu(AluOp::Sub, a, b, &mut st.flags);
            st.set_gpr(Gpr::Esi, esi.wrapping_add(w));
            st.set_gpr(Gpr::Edi, edi.wrapping_add(w));
        }
    }
    match rep {
        RepKind::None => Ok(Next::Seq),
        RepKind::Plain => {
            let ecx = st.gpr(Gpr::Ecx).wrapping_sub(1);
            st.set_gpr(Gpr::Ecx, ecx);
            Ok(if ecx != 0 { Next::RepContinue } else { Next::Seq })
        }
        RepKind::While(c) => {
            let ecx = st.gpr(Gpr::Ecx).wrapping_sub(1);
            st.set_gpr(Gpr::Ecx, ecx);
            let cont = match c {
                RepCond::Eq => st.flags.zf,
                RepCond::Ne => !st.flags.zf,
            };
            Ok(if ecx != 0 && cont { Next::RepContinue } else { Next::Seq })
        }
    }
}

fn truncate(v: u32, width: Width) -> u32 {
    match width {
        Width::B => v & 0xFF,
        Width::W => v & 0xFFFF,
        Width::D => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::program::DEFAULT_CODE_BASE;
    use crate::reg::{Cond, Fpr};

    fn run(build: impl FnOnce(&mut Asm)) -> GuestState {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        build(&mut a);
        a.halt();
        let p = a.into_program();
        let mut st = GuestState::boot(&p);
        for _ in 0..1_000_000 {
            match step(&mut st).unwrap().next {
                Next::Halt => return st,
                Next::Syscall => panic!("unexpected syscall"),
                _ => {}
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_and_flags() {
        let st = run(|a| {
            a.mov_ri(Gpr::Eax, i32::MAX);
            a.alu_ri(AluOp::Add, Gpr::Eax, 1); // overflow
        });
        assert_eq!(st.gpr(Gpr::Eax), 0x8000_0000);
        assert!(st.flags.of);
        assert!(!st.flags.cf);
        assert!(st.flags.sf);
    }

    #[test]
    fn adc_chains_carry() {
        let st = run(|a| {
            a.mov_ri(Gpr::Eax, -1);
            a.alu_ri(AluOp::Add, Gpr::Eax, 1); // CF=1, EAX=0
            a.mov_ri(Gpr::Ebx, 5);
            a.alu_ri(AluOp::Adc, Gpr::Ebx, 0); // EBX = 5 + 0 + CF
        });
        assert_eq!(st.gpr(Gpr::Ebx), 6);
    }

    #[test]
    fn inc_preserves_carry() {
        let st = run(|a| {
            a.mov_ri(Gpr::Eax, -1);
            a.alu_ri(AluOp::Add, Gpr::Eax, 1); // CF=1
            a.emit(Insn::Unary { op: UnaryOp::Inc, dst: Gpr::Eax });
            a.emit(Insn::Setcc { cc: Cond::B, dst: Gpr::Ecx }); // reads CF
        });
        assert_eq!(st.gpr(Gpr::Ecx), 1, "INC must not clobber CF");
    }

    #[test]
    fn push_pop_call_ret() {
        let st = run(|a| {
            a.mov_ri(Gpr::Ebx, 0x1234);
            a.push(Gpr::Ebx);
            a.pop(Gpr::Ecx);
            let f = a.label();
            let after = a.label();
            a.call_to(f);
            a.jmp_to(after); // skip over the function body
            a.bind(f);
            a.mov_ri(Gpr::Edx, 99);
            a.ret();
            a.bind(after);
        });
        assert_eq!(st.gpr(Gpr::Ecx), 0x1234);
        assert_eq!(st.gpr(Gpr::Edx), 99);
    }

    #[test]
    fn rep_movs_copies_and_is_restartable() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Esi, 0x0040_0000);
        a.mov_ri(Gpr::Edi, 0x0040_0100);
        a.mov_ri(Gpr::Ecx, 8);
        a.emit(Insn::Movs { width: Width::D, rep: true });
        a.halt();
        let p = a.into_program().with_data((0u8..64).collect());
        let mut st = GuestState::boot(&p);
        let mut steps = 0;
        loop {
            let info = step(&mut st).unwrap();
            steps += 1;
            if info.next == Next::Halt {
                break;
            }
        }
        // 3 movs + 8 string elements + halt
        assert_eq!(steps, 3 + 8 + 1);
        for i in 0..32 {
            assert_eq!(
                st.mem.read_u8(0x0040_0100 + i).unwrap(),
                st.mem.read_u8(0x0040_0000 + i).unwrap()
            );
        }
        assert_eq!(st.gpr(Gpr::Ecx), 0);
    }

    #[test]
    fn repne_scas_finds_byte() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Edi, 0x0040_0000);
        a.mov_ri(Gpr::Ecx, 100);
        a.mov_ri(Gpr::Eax, 7);
        a.emit(Insn::Scas { width: Width::B, rep: Some(RepCond::Ne) });
        a.halt();
        let mut data = vec![0u8; 64];
        data[13] = 7;
        let p = a.into_program().with_data(data);
        let mut st = GuestState::boot(&p);
        loop {
            if step(&mut st).unwrap().next == Next::Halt {
                break;
            }
        }
        assert_eq!(st.gpr(Gpr::Edi), 0x0040_0000 + 14, "EDI one past the match");
        assert!(st.flags.zf);
    }

    #[test]
    fn faults_preserve_state() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Ebx, 0x7000_0000); // unmapped
        a.store(crate::reg::Addr::base(Gpr::Ebx), Gpr::Eax, Width::D);
        a.halt();
        let p = a.into_program();
        let mut st = GuestState::boot(&p);
        step(&mut st).unwrap();
        let before = st.clone();
        let err = step(&mut st).unwrap_err();
        assert!(matches!(err, Fault::Page(pf) if pf.write && pf.addr == 0x7000_0000));
        assert_eq!(st.first_reg_mismatch(&before, true), None);
        assert_eq!(st.eip, before.eip);
        // Install the page and re-execute: now it succeeds.
        st.mem.map_zero(0x7000_0000 >> 12);
        assert_eq!(step(&mut st).unwrap().next, Next::Seq);
    }

    #[test]
    fn div_by_zero_faults() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Eax, 10);
        a.mov_ri(Gpr::Ebx, 0);
        a.emit(Insn::Idiv { dst: Gpr::Eax, src: Gpr::Ebx });
        let p = a.into_program();
        let mut st = GuestState::boot(&p);
        step(&mut st).unwrap();
        step(&mut st).unwrap();
        assert!(matches!(step(&mut st).unwrap_err(), Fault::DivByZero { .. }));
    }

    #[test]
    fn idiv_min_by_minus_one_wraps() {
        let st = run(|a| {
            a.mov_ri(Gpr::Eax, i32::MIN);
            a.mov_ri(Gpr::Ebx, -1);
            a.emit(Insn::Idiv { dst: Gpr::Eax, src: Gpr::Ebx });
        });
        assert_eq!(st.gpr(Gpr::Eax), i32::MIN as u32);
    }

    #[test]
    fn fp_ops_and_compare() {
        let st = run(|a| {
            a.fld_i(Fpr::new(0), 2.0);
            a.fld_i(Fpr::new(1), 3.0);
            a.emit(Insn::Fbin { op: FBinOp::Mul, dst: Fpr::new(0), src: Fpr::new(1) });
            a.emit(Insn::Funary { op: FUnOp::Sqrt, dst: Fpr::new(0) });
            a.emit(Insn::Fcmp { a: Fpr::new(0), b: Fpr::new(1) }); // sqrt(6) < 3
            a.emit(Insn::Setcc { cc: Cond::B, dst: Gpr::Eax });
        });
        assert_eq!(st.fpr(Fpr::new(0)), 6.0f64.sqrt());
        assert_eq!(st.gpr(Gpr::Eax), 1);
    }

    #[test]
    fn sin_matches_spec() {
        let st = run(|a| {
            a.fld_i(Fpr::new(2), 1.25);
            a.emit(Insn::Funary { op: FUnOp::Sin, dst: Fpr::new(2) });
        });
        assert_eq!(st.fpr(Fpr::new(2)).to_bits(), softfp::sin_spec(1.25).to_bits());
    }

    #[test]
    fn shifts_by_zero_keep_flags() {
        let st = run(|a| {
            a.mov_ri(Gpr::Eax, -1);
            a.alu_ri(AluOp::Add, Gpr::Eax, 1); // CF=1, ZF=1
            a.emit(Insn::Shift { op: ShiftOp::Shl, dst: Gpr::Ebx, amount: ShiftAmount::Imm(0) });
            a.emit(Insn::Setcc { cc: Cond::B, dst: Gpr::Ecx });
            a.emit(Insn::Setcc { cc: Cond::E, dst: Gpr::Edx });
        });
        assert_eq!(st.gpr(Gpr::Ecx), 1);
        assert_eq!(st.gpr(Gpr::Edx), 1);
    }

    #[test]
    fn cmov_and_branches() {
        let st = run(|a| {
            a.mov_ri(Gpr::Eax, 5);
            a.cmp_ri(Gpr::Eax, 5);
            a.mov_ri(Gpr::Ebx, 111);
            a.mov_ri(Gpr::Ecx, 222);
            a.emit(Insn::Cmov { cc: Cond::E, dst: Gpr::Ebx, src: Gpr::Ecx });
            let skip = a.label();
            a.jcc_to(Cond::Ne, skip); // not taken
            a.mov_ri(Gpr::Edx, 1);
            a.bind(skip);
        });
        assert_eq!(st.gpr(Gpr::Ebx), 222);
        assert_eq!(st.gpr(Gpr::Edx), 1);
    }
}
