//! Architectural definition of the guest's software-emulated
//! transcendentals.
//!
//! Real x86 `fsin`/`fcos` have no direct host equivalent on a simple RISC
//! core, so DARCO's software layer emulates them — the paper names this as
//! the reason Physicsbench's emulation cost is high (Fig. 5). To let the
//! interpreter and the binary-translated host code produce **bit-identical**
//! results, GISA defines `sin`/`cos` *architecturally* as the fixed sequence
//! of IEEE-754 double operations below. The host runtime routine in
//! `darco-host::runtime` evaluates exactly the same sequence, so
//! co-designed state validation can compare FP registers exactly.
//!
//! Accuracy is that of a degree-15 Taylor expansion after range reduction to
//! `[-π, π)` (absolute error < 2e-6), which is ample for the synthetic
//! physics workloads.

/// 1/(2π), round-to-nearest double.
pub const INV_2PI: f64 = 0.159_154_943_091_895_35;
/// 2π, round-to-nearest double.
pub const TWO_PI: f64 = core::f64::consts::TAU;
/// Arguments with magnitude above this are architecturally NaN.
pub const DOMAIN_LIMIT: f64 = 1_073_741_824.0; // 2^30

/// Number of host instructions a call to a soft-FP runtime routine
/// executes, including call/return overhead. Kept in sync with the
/// hand-written HISA routines by a test in `darco-host`.
pub const SOFT_FP_HOST_COST: u64 = 42;

/// Range-reduces `x` to `r ∈ [-π, π)` with `x = r + k·2π`.
///
/// Uses truncation plus a floor correction, matching the exact operation
/// sequence of the host routine (which only has a truncating f64→i32
/// conversion).
#[inline]
pub fn range_reduce(x: f64) -> f64 {
    let t = x * INV_2PI;
    let kt = t + 0.5;
    let mut k = kt as i32 as f64; // truncating conversion
    if k > kt {
        k -= 1.0; // floor correction for negative kt
    }
    x - k * TWO_PI
}

/// Architectural `sin`.
///
/// Non-finite or out-of-domain arguments yield NaN.
pub fn sin_spec(x: f64) -> f64 {
    if !x.is_finite() || x.abs() > DOMAIN_LIMIT {
        return f64::NAN;
    }
    let r = range_reduce(x);
    sin_poly(r)
}

/// Architectural `cos`.
///
/// Non-finite or out-of-domain arguments yield NaN.
pub fn cos_spec(x: f64) -> f64 {
    if !x.is_finite() || x.abs() > DOMAIN_LIMIT {
        return f64::NAN;
    }
    let r = range_reduce(x);
    cos_poly(r)
}

/// Degree-15 Taylor polynomial for sin on the reduced range, evaluated in
/// Horner form. The operation order is part of the architecture.
#[inline]
pub fn sin_poly(r: f64) -> f64 {
    const S3: f64 = -1.0 / 6.0;
    const S5: f64 = 1.0 / 120.0;
    const S7: f64 = -1.0 / 5040.0;
    const S9: f64 = 1.0 / 362_880.0;
    const S11: f64 = -1.0 / 39_916_800.0;
    const S13: f64 = 1.0 / 6_227_020_800.0;
    const S15: f64 = -1.0 / 1_307_674_368_000.0;
    let r2 = r * r;
    let mut p = S15;
    p = p * r2 + S13;
    p = p * r2 + S11;
    p = p * r2 + S9;
    p = p * r2 + S7;
    p = p * r2 + S5;
    p = p * r2 + S3;
    r + (r * r2) * p
}

/// Degree-16 Taylor polynomial for cos on the reduced range (Horner form).
#[inline]
pub fn cos_poly(r: f64) -> f64 {
    const C2: f64 = -0.5;
    const C4: f64 = 1.0 / 24.0;
    const C6: f64 = -1.0 / 720.0;
    const C8: f64 = 1.0 / 40_320.0;
    const C10: f64 = -1.0 / 3_628_800.0;
    const C12: f64 = 1.0 / 479_001_600.0;
    const C14: f64 = -1.0 / 87_178_291_200.0;
    const C16: f64 = 1.0 / 20_922_789_888_000.0;
    let r2 = r * r;
    let mut p = C16;
    p = p * r2 + C14;
    p = p * r2 + C12;
    p = p * r2 + C10;
    p = p * r2 + C8;
    p = p * r2 + C6;
    p = p * r2 + C4;
    p = p * r2 + C2;
    1.0 + r2 * p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_to_libm_on_reduced_range() {
        for i in -314..=314 {
            let x = i as f64 / 100.0;
            assert!((sin_spec(x) - x.sin()).abs() < 3e-6, "sin({x})");
            assert!((cos_spec(x) - x.cos()).abs() < 3e-6, "cos({x})");
        }
    }

    #[test]
    fn range_reduction_keeps_identity() {
        for i in 0..1000 {
            let x = (i as f64) * 7.77 - 3000.0;
            let r = range_reduce(x);
            assert!(r.abs() <= core::f64::consts::PI, "reduce({x}) = {r}");
            assert!((sin_spec(x) - x.sin()).abs() < 1e-5, "sin({x})");
        }
    }

    #[test]
    fn out_of_domain_is_nan() {
        assert!(sin_spec(f64::NAN).is_nan());
        assert!(sin_spec(f64::INFINITY).is_nan());
        assert!(cos_spec(2.0e9).is_nan());
        assert!(cos_spec(-2.0e9).is_nan());
        // Just inside the domain is fine.
        assert!(!sin_spec(DOMAIN_LIMIT).is_nan());
    }

    #[test]
    fn determinism() {
        // The spec must be a pure function of the bit pattern.
        let x = 123.456_789;
        assert_eq!(sin_spec(x).to_bits(), sin_spec(x).to_bits());
        assert_eq!(cos_spec(x).to_bits(), cos_spec(x).to_bits());
    }
}
