//! Variable-length byte encoding of guest instructions.
//!
//! GISA instructions occupy 1 to 10 bytes, mirroring x86's variable length
//! (which is what makes a guest front-end/decoder non-trivial and why
//! DARCO's software layer decodes once and caches translations). The
//! encoder and decoder are exact inverses; see the round-trip property
//! test at the bottom of this module.

use crate::insn::{AluOp, FBinOp, FUnOp, Insn, RepCond, ShiftAmount, ShiftOp, UnaryOp};
use crate::reg::{Addr, Cond, Fpr, Gpr, Scale, Width};
use std::fmt;

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended in the middle of an instruction.
    UnexpectedEnd,
    /// The opcode byte is not a valid instruction.
    BadOpcode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of instruction stream"),
            DecodeError::BadOpcode(op) => write!(f, "invalid opcode byte {op:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode space. Grouped by family; gaps are reserved.
const OP_MOV_RR: u8 = 0x01;
const OP_MOV_RI: u8 = 0x02;
const OP_LOAD: u8 = 0x03;
const OP_STORE: u8 = 0x04;
const OP_STORE_I: u8 = 0x05;
const OP_LEA: u8 = 0x06;
const OP_XCHG: u8 = 0x07;
const OP_CMOV: u8 = 0x08;
const OP_SETCC: u8 = 0x09;
const OP_PUSH: u8 = 0x0a;
const OP_PUSH_I: u8 = 0x0b;
const OP_POP: u8 = 0x0c;

const OP_ALU_RR: u8 = 0x10;
const OP_ALU_RI: u8 = 0x11;
const OP_ALU_RM: u8 = 0x12;
const OP_ALU_MR: u8 = 0x13;
const OP_ALU_MI: u8 = 0x14;
const OP_CMP_RR: u8 = 0x15;
const OP_CMP_RI: u8 = 0x16;
const OP_CMP_RM: u8 = 0x17;
const OP_TEST_RR: u8 = 0x18;
const OP_TEST_RI: u8 = 0x19;
const OP_UNARY: u8 = 0x1a;
const OP_UNARY_M: u8 = 0x1b;
const OP_SHIFT_I: u8 = 0x1c;
const OP_SHIFT_CL: u8 = 0x1d;
const OP_IMUL: u8 = 0x1e;
const OP_IMUL_I: u8 = 0x1f;
const OP_IDIV: u8 = 0x20;
const OP_IREM: u8 = 0x21;

const OP_JMP: u8 = 0x30;
const OP_JCC: u8 = 0x31;
const OP_JMP_IND: u8 = 0x32;
const OP_CALL: u8 = 0x33;
const OP_CALL_IND: u8 = 0x34;
const OP_RET: u8 = 0x35;

const OP_MOVS: u8 = 0x40;
const OP_STOS: u8 = 0x41;
const OP_LODS: u8 = 0x42;
const OP_SCAS: u8 = 0x43;
const OP_CMPS: u8 = 0x44;

const OP_FLD: u8 = 0x50;
const OP_FST: u8 = 0x51;
const OP_FLD_I: u8 = 0x52;
const OP_FMOV_RR: u8 = 0x53;
const OP_FBIN: u8 = 0x54;
const OP_FBIN_M: u8 = 0x55;
const OP_FUNARY: u8 = 0x56;
const OP_FCMP: u8 = 0x57;
const OP_CVT_SI2F: u8 = 0x58;
const OP_CVT_F2SI: u8 = 0x59;

const OP_SYSCALL: u8 = 0x70;
const OP_HALT: u8 = 0x71;
const OP_NOP: u8 = 0x72;

/// Maximum encoded length of any instruction, in bytes
/// (a memory-form ALU op with 32-bit displacement and 32-bit immediate).
pub const MAX_INSN_LEN: usize = 12;

/// Encodes one instruction, appending its bytes to `out`.
///
/// Returns the encoded length.
pub fn encode(insn: &Insn, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match *insn {
        Insn::MovRR { dst, src } => {
            out.push(OP_MOV_RR);
            out.push(regs2(dst, src));
        }
        Insn::MovRI { dst, imm } => {
            out.push(OP_MOV_RI);
            out.push(dst.index() as u8);
            imm32(imm, out);
        }
        Insn::Load { dst, addr, width, sign } => {
            out.push(OP_LOAD);
            out.push((dst.index() as u8) << 4 | (width as u8) << 1 | sign as u8);
            enc_addr(addr, out);
        }
        Insn::Store { addr, src, width } => {
            out.push(OP_STORE);
            out.push((src.index() as u8) << 4 | (width as u8) << 1);
            enc_addr(addr, out);
        }
        Insn::StoreI { addr, imm, width } => {
            out.push(OP_STORE_I);
            out.push(width as u8);
            enc_addr(addr, out);
            imm32(imm, out);
        }
        Insn::Lea { dst, addr } => {
            out.push(OP_LEA);
            out.push(dst.index() as u8);
            enc_addr(addr, out);
        }
        Insn::Xchg { a, b } => {
            out.push(OP_XCHG);
            out.push(regs2(a, b));
        }
        Insn::Cmov { cc, dst, src } => {
            out.push(OP_CMOV);
            out.push(cc.index() as u8);
            out.push(regs2(dst, src));
        }
        Insn::Setcc { cc, dst } => {
            out.push(OP_SETCC);
            out.push((cc.index() as u8) << 4 | dst.index() as u8);
        }
        Insn::Push { src } => {
            out.push(OP_PUSH);
            out.push(src.index() as u8);
        }
        Insn::PushI { imm } => {
            out.push(OP_PUSH_I);
            imm32(imm, out);
        }
        Insn::Pop { dst } => {
            out.push(OP_POP);
            out.push(dst.index() as u8);
        }
        Insn::AluRR { op, dst, src } => {
            out.push(OP_ALU_RR);
            out.push(op as u8);
            out.push(regs2(dst, src));
        }
        Insn::AluRI { op, dst, imm } => {
            out.push(OP_ALU_RI);
            out.push((op as u8) << 4 | dst.index() as u8);
            imm32(imm, out);
        }
        Insn::AluRM { op, dst, addr } => {
            out.push(OP_ALU_RM);
            out.push((op as u8) << 4 | dst.index() as u8);
            enc_addr(addr, out);
        }
        Insn::AluMR { op, addr, src } => {
            out.push(OP_ALU_MR);
            out.push((op as u8) << 4 | src.index() as u8);
            enc_addr(addr, out);
        }
        Insn::AluMI { op, addr, imm } => {
            out.push(OP_ALU_MI);
            out.push(op as u8);
            enc_addr(addr, out);
            imm32(imm, out);
        }
        Insn::CmpRR { a, b } => {
            out.push(OP_CMP_RR);
            out.push(regs2(a, b));
        }
        Insn::CmpRI { a, imm } => {
            out.push(OP_CMP_RI);
            out.push(a.index() as u8);
            imm32(imm, out);
        }
        Insn::CmpRM { a, addr } => {
            out.push(OP_CMP_RM);
            out.push(a.index() as u8);
            enc_addr(addr, out);
        }
        Insn::TestRR { a, b } => {
            out.push(OP_TEST_RR);
            out.push(regs2(a, b));
        }
        Insn::TestRI { a, imm } => {
            out.push(OP_TEST_RI);
            out.push(a.index() as u8);
            imm32(imm, out);
        }
        Insn::Unary { op, dst } => {
            out.push(OP_UNARY);
            out.push((op as u8) << 4 | dst.index() as u8);
        }
        Insn::UnaryM { op, addr, width } => {
            out.push(OP_UNARY_M);
            out.push((op as u8) << 2 | width as u8);
            enc_addr(addr, out);
        }
        Insn::Shift { op, dst, amount } => match amount {
            ShiftAmount::Imm(n) => {
                out.push(OP_SHIFT_I);
                out.push((op as u8) << 3 | dst.index() as u8);
                out.push(n);
            }
            ShiftAmount::Cl => {
                out.push(OP_SHIFT_CL);
                out.push((op as u8) << 3 | dst.index() as u8);
            }
        },
        Insn::Imul { dst, src } => {
            out.push(OP_IMUL);
            out.push(regs2(dst, src));
        }
        Insn::ImulI { dst, src, imm } => {
            out.push(OP_IMUL_I);
            out.push(regs2(dst, src));
            imm32(imm, out);
        }
        Insn::Idiv { dst, src } => {
            out.push(OP_IDIV);
            out.push(regs2(dst, src));
        }
        Insn::Irem { dst, src } => {
            out.push(OP_IREM);
            out.push(regs2(dst, src));
        }
        Insn::Jmp { rel } => {
            out.push(OP_JMP);
            imm32(rel, out);
        }
        Insn::Jcc { cc, rel } => {
            out.push(OP_JCC);
            out.push(cc.index() as u8);
            imm32(rel, out);
        }
        Insn::JmpInd { target } => {
            out.push(OP_JMP_IND);
            out.push(target.index() as u8);
        }
        Insn::Call { rel } => {
            out.push(OP_CALL);
            imm32(rel, out);
        }
        Insn::CallInd { target } => {
            out.push(OP_CALL_IND);
            out.push(target.index() as u8);
        }
        Insn::Ret => out.push(OP_RET),
        Insn::Movs { width, rep } => {
            out.push(OP_MOVS);
            out.push((width as u8) << 2 | rep as u8);
        }
        Insn::Stos { width, rep } => {
            out.push(OP_STOS);
            out.push((width as u8) << 2 | rep as u8);
        }
        Insn::Lods { width, rep } => {
            out.push(OP_LODS);
            out.push((width as u8) << 2 | rep as u8);
        }
        Insn::Scas { width, rep } => {
            out.push(OP_SCAS);
            out.push((width as u8) << 2 | repc(rep));
        }
        Insn::Cmps { width, rep } => {
            out.push(OP_CMPS);
            out.push((width as u8) << 2 | repc(rep));
        }
        Insn::Fld { dst, addr } => {
            out.push(OP_FLD);
            out.push(dst.0);
            enc_addr(addr, out);
        }
        Insn::Fst { addr, src } => {
            out.push(OP_FST);
            out.push(src.0);
            enc_addr(addr, out);
        }
        Insn::FldI { dst, bits } => {
            out.push(OP_FLD_I);
            out.push(dst.0);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        Insn::FmovRR { dst, src } => {
            out.push(OP_FMOV_RR);
            out.push(dst.0 << 4 | src.0);
        }
        Insn::Fbin { op, dst, src } => {
            out.push(OP_FBIN);
            out.push(op as u8);
            out.push(dst.0 << 4 | src.0);
        }
        Insn::FbinM { op, dst, addr } => {
            out.push(OP_FBIN_M);
            out.push((op as u8) << 3 | dst.0);
            enc_addr(addr, out);
        }
        Insn::Funary { op, dst } => {
            out.push(OP_FUNARY);
            out.push((op as u8) << 3 | dst.0);
        }
        Insn::Fcmp { a, b } => {
            out.push(OP_FCMP);
            out.push(a.0 << 4 | b.0);
        }
        Insn::Cvtsi2f { dst, src } => {
            out.push(OP_CVT_SI2F);
            out.push(dst.0 << 4 | src.index() as u8);
        }
        Insn::Cvtf2si { dst, src } => {
            out.push(OP_CVT_F2SI);
            out.push((dst.index() as u8) << 4 | src.0);
        }
        Insn::Syscall => out.push(OP_SYSCALL),
        Insn::Halt => out.push(OP_HALT),
        Insn::Nop => out.push(OP_NOP),
    }
    out.len() - start
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and its encoded length.
///
/// # Errors
/// Returns [`DecodeError`] if the bytes do not form a valid instruction.
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let op = c.u8()?;
    let insn = match op {
        OP_MOV_RR => {
            let (dst, src) = c.regs2()?;
            Insn::MovRR { dst, src }
        }
        OP_MOV_RI => Insn::MovRI { dst: c.gpr()?, imm: c.i32()? },
        OP_LOAD => {
            let b = c.u8()?;
            Insn::Load {
                dst: Gpr::from_index((b >> 4) as usize & 7),
                width: Width::from_index((b >> 1) as usize & 3),
                sign: b & 1 != 0,
                addr: c.addr()?,
            }
        }
        OP_STORE => {
            let b = c.u8()?;
            Insn::Store {
                src: Gpr::from_index((b >> 4) as usize & 7),
                width: Width::from_index((b >> 1) as usize & 3),
                addr: c.addr()?,
            }
        }
        OP_STORE_I => {
            let width = Width::from_index(c.u8()? as usize & 3);
            let addr = c.addr()?;
            Insn::StoreI { addr, imm: c.i32()?, width }
        }
        OP_LEA => Insn::Lea { dst: c.gpr()?, addr: c.addr()? },
        OP_XCHG => {
            let (a, b) = c.regs2()?;
            Insn::Xchg { a, b }
        }
        OP_CMOV => {
            let cc = Cond::from_index(c.u8()? as usize & 15);
            let (dst, src) = c.regs2()?;
            Insn::Cmov { cc, dst, src }
        }
        OP_SETCC => {
            let b = c.u8()?;
            Insn::Setcc {
                cc: Cond::from_index((b >> 4) as usize),
                dst: Gpr::from_index(b as usize & 7),
            }
        }
        OP_PUSH => Insn::Push { src: c.gpr()? },
        OP_PUSH_I => Insn::PushI { imm: c.i32()? },
        OP_POP => Insn::Pop { dst: c.gpr()? },
        OP_ALU_RR => {
            let aop = alu_op(c.u8()?, op)?;
            let (dst, src) = c.regs2()?;
            Insn::AluRR { op: aop, dst, src }
        }
        OP_ALU_RI => {
            let b = c.u8()?;
            Insn::AluRI {
                op: alu_op(b >> 4, op)?,
                dst: Gpr::from_index(b as usize & 7),
                imm: c.i32()?,
            }
        }
        OP_ALU_RM => {
            let b = c.u8()?;
            Insn::AluRM {
                op: alu_op(b >> 4, op)?,
                dst: Gpr::from_index(b as usize & 7),
                addr: c.addr()?,
            }
        }
        OP_ALU_MR => {
            let b = c.u8()?;
            Insn::AluMR {
                op: alu_op(b >> 4, op)?,
                src: Gpr::from_index(b as usize & 7),
                addr: c.addr()?,
            }
        }
        OP_ALU_MI => {
            let aop = alu_op(c.u8()?, op)?;
            let addr = c.addr()?;
            Insn::AluMI { op: aop, addr, imm: c.i32()? }
        }
        OP_CMP_RR => {
            let (a, b) = c.regs2()?;
            Insn::CmpRR { a, b }
        }
        OP_CMP_RI => Insn::CmpRI { a: c.gpr()?, imm: c.i32()? },
        OP_CMP_RM => Insn::CmpRM { a: c.gpr()?, addr: c.addr()? },
        OP_TEST_RR => {
            let (a, b) = c.regs2()?;
            Insn::TestRR { a, b }
        }
        OP_TEST_RI => Insn::TestRI { a: c.gpr()?, imm: c.i32()? },
        OP_UNARY => {
            let b = c.u8()?;
            if (b >> 4) > 3 {
                return Err(DecodeError::BadOpcode(op));
            }
            Insn::Unary {
                op: UnaryOp::from_index((b >> 4) as usize),
                dst: Gpr::from_index(b as usize & 7),
            }
        }
        OP_UNARY_M => {
            let b = c.u8()?;
            if (b >> 2) > 3 || (b & 3) > 2 {
                return Err(DecodeError::BadOpcode(op));
            }
            Insn::UnaryM {
                op: UnaryOp::from_index((b >> 2) as usize),
                width: Width::from_index(b as usize & 3),
                addr: c.addr()?,
            }
        }
        OP_SHIFT_I => {
            let b = c.u8()?;
            let n = c.u8()?;
            Insn::Shift {
                op: shift_op(b >> 3, op)?,
                dst: Gpr::from_index(b as usize & 7),
                amount: ShiftAmount::Imm(n),
            }
        }
        OP_SHIFT_CL => {
            let b = c.u8()?;
            Insn::Shift {
                op: shift_op(b >> 3, op)?,
                dst: Gpr::from_index(b as usize & 7),
                amount: ShiftAmount::Cl,
            }
        }
        OP_IMUL => {
            let (dst, src) = c.regs2()?;
            Insn::Imul { dst, src }
        }
        OP_IMUL_I => {
            let (dst, src) = c.regs2()?;
            Insn::ImulI { dst, src, imm: c.i32()? }
        }
        OP_IDIV => {
            let (dst, src) = c.regs2()?;
            Insn::Idiv { dst, src }
        }
        OP_IREM => {
            let (dst, src) = c.regs2()?;
            Insn::Irem { dst, src }
        }
        OP_JMP => Insn::Jmp { rel: c.i32()? },
        OP_JCC => {
            let cc = Cond::from_index(c.u8()? as usize & 15);
            Insn::Jcc { cc, rel: c.i32()? }
        }
        OP_JMP_IND => Insn::JmpInd { target: c.gpr()? },
        OP_CALL => Insn::Call { rel: c.i32()? },
        OP_CALL_IND => Insn::CallInd { target: c.gpr()? },
        OP_RET => Insn::Ret,
        OP_MOVS | OP_STOS | OP_LODS => {
            let b = c.u8()?;
            if (b >> 2) > 2 {
                return Err(DecodeError::BadOpcode(op));
            }
            let width = Width::from_index((b >> 2) as usize);
            let rep = b & 1 != 0;
            match op {
                OP_MOVS => Insn::Movs { width, rep },
                OP_STOS => Insn::Stos { width, rep },
                _ => Insn::Lods { width, rep },
            }
        }
        OP_SCAS | OP_CMPS => {
            let b = c.u8()?;
            if (b >> 2) > 2 {
                return Err(DecodeError::BadOpcode(op));
            }
            let width = Width::from_index((b >> 2) as usize);
            let rep = match b & 3 {
                0 => None,
                1 => Some(RepCond::Eq),
                2 => Some(RepCond::Ne),
                _ => return Err(DecodeError::BadOpcode(op)),
            };
            if op == OP_SCAS {
                Insn::Scas { width, rep }
            } else {
                Insn::Cmps { width, rep }
            }
        }
        OP_FLD => Insn::Fld { dst: c.fpr()?, addr: c.addr()? },
        OP_FST => {
            let src = c.fpr()?;
            Insn::Fst { addr: c.addr()?, src }
        }
        OP_FLD_I => {
            let dst = c.fpr()?;
            let mut b = [0u8; 8];
            for x in &mut b {
                *x = c.u8()?;
            }
            Insn::FldI { dst, bits: u64::from_le_bytes(b) }
        }
        OP_FMOV_RR => {
            let b = c.u8()?;
            Insn::FmovRR { dst: Fpr::new(b >> 4 & 7), src: Fpr::new(b & 7) }
        }
        OP_FBIN => {
            let o = c.u8()?;
            if o > 5 {
                return Err(DecodeError::BadOpcode(op));
            }
            let b = c.u8()?;
            Insn::Fbin {
                op: FBinOp::from_index(o as usize),
                dst: Fpr::new(b >> 4 & 7),
                src: Fpr::new(b & 7),
            }
        }
        OP_FBIN_M => {
            let b = c.u8()?;
            if (b >> 3) > 5 {
                return Err(DecodeError::BadOpcode(op));
            }
            Insn::FbinM {
                op: FBinOp::from_index((b >> 3) as usize),
                dst: Fpr::new(b & 7),
                addr: c.addr()?,
            }
        }
        OP_FUNARY => {
            let b = c.u8()?;
            if (b >> 3) > 4 {
                return Err(DecodeError::BadOpcode(op));
            }
            Insn::Funary { op: FUnOp::from_index((b >> 3) as usize), dst: Fpr::new(b & 7) }
        }
        OP_FCMP => {
            let b = c.u8()?;
            Insn::Fcmp { a: Fpr::new(b >> 4 & 7), b: Fpr::new(b & 7) }
        }
        OP_CVT_SI2F => {
            let b = c.u8()?;
            Insn::Cvtsi2f { dst: Fpr::new(b >> 4 & 7), src: Gpr::from_index(b as usize & 7) }
        }
        OP_CVT_F2SI => {
            let b = c.u8()?;
            Insn::Cvtf2si { dst: Gpr::from_index((b >> 4) as usize & 7), src: Fpr::new(b & 7) }
        }
        OP_SYSCALL => Insn::Syscall,
        OP_HALT => Insn::Halt,
        OP_NOP => Insn::Nop,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((insn, c.pos))
}

fn alu_op(bits: u8, op: u8) -> Result<AluOp, DecodeError> {
    let bits = bits & 15;
    if bits as usize >= AluOp::ALL.len() {
        return Err(DecodeError::BadOpcode(op));
    }
    Ok(AluOp::from_index(bits as usize))
}

fn shift_op(bits: u8, op: u8) -> Result<ShiftOp, DecodeError> {
    if bits as usize >= ShiftOp::ALL.len() {
        return Err(DecodeError::BadOpcode(op));
    }
    Ok(ShiftOp::from_index(bits as usize))
}

fn repc(rep: Option<RepCond>) -> u8 {
    match rep {
        None => 0,
        Some(RepCond::Eq) => 1,
        Some(RepCond::Ne) => 2,
    }
}

fn regs2(a: Gpr, b: Gpr) -> u8 {
    (a.index() as u8) << 4 | b.index() as u8
}

fn imm32(v: i32, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_addr(a: Addr, out: &mut Vec<u8>) {
    let mut mode: u8 = 0;
    if let Some(b) = a.base {
        mode |= 0x80 | (b.index() as u8) << 4;
    }
    if let Some(i) = a.index {
        mode |= 0x08 | i.index() as u8;
    }
    out.push(mode);
    let disp_size: u8 = if a.disp == 0 {
        0
    } else if (-128..128).contains(&a.disp) {
        1
    } else {
        2
    };
    out.push((a.scale as u8) | disp_size << 2);
    match disp_size {
        1 => out.push(a.disp as u8),
        2 => out.extend_from_slice(&a.disp.to_le_bytes()),
        _ => {}
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut b = [0u8; 4];
        for x in &mut b {
            *x = self.u8()?;
        }
        Ok(i32::from_le_bytes(b))
    }

    fn gpr(&mut self) -> Result<Gpr, DecodeError> {
        Ok(Gpr::from_index(self.u8()? as usize & 7))
    }

    fn fpr(&mut self) -> Result<Fpr, DecodeError> {
        Ok(Fpr::new(self.u8()? & 7))
    }

    fn regs2(&mut self) -> Result<(Gpr, Gpr), DecodeError> {
        let b = self.u8()?;
        Ok((Gpr::from_index((b >> 4) as usize & 7), Gpr::from_index(b as usize & 7)))
    }

    fn addr(&mut self) -> Result<Addr, DecodeError> {
        let mode = self.u8()?;
        let sb = self.u8()?;
        let base =
            if mode & 0x80 != 0 { Some(Gpr::from_index((mode >> 4) as usize & 7)) } else { None };
        let index = if mode & 0x08 != 0 { Some(Gpr::from_index(mode as usize & 7)) } else { None };
        let scale = Scale::from_index(sb as usize & 3);
        let disp = match sb >> 2 & 3 {
            0 => 0,
            1 => self.u8()? as i8 as i32,
            _ => self.i32()?,
        };
        Ok(Addr { base, index, scale, disp })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::arbitrary_insn;
    use crate::prng::SmallRng;

    #[test]
    fn roundtrip_hand_picked() {
        let cases = [
            Insn::Nop,
            Insn::MovRI { dst: Gpr::Eax, imm: -1 },
            Insn::Load {
                dst: Gpr::Edx,
                addr: Addr::full(Gpr::Ebx, Gpr::Ecx, Scale::S8, -4096),
                width: Width::W,
                sign: true,
            },
            Insn::Shift { op: ShiftOp::Sar, dst: Gpr::Edi, amount: ShiftAmount::Cl },
            Insn::FldI { dst: Fpr::new(7), bits: f64::to_bits(-0.5) },
            Insn::Cmps { width: Width::B, rep: Some(RepCond::Ne) },
            Insn::Jcc { cc: Cond::G, rel: -1234567 },
        ];
        for insn in cases {
            let mut buf = Vec::new();
            let len = encode(&insn, &mut buf);
            assert!(len <= MAX_INSN_LEN);
            let (got, glen) = decode(&buf).unwrap();
            assert_eq!(got, insn);
            assert_eq!(glen, len);
        }
    }

    #[test]
    fn roundtrip_randomized() {
        let mut rng = SmallRng::seed_from_u64(0xDA5C0);
        for _ in 0..20_000 {
            let insn = arbitrary_insn(&mut rng);
            let mut buf = Vec::new();
            let len = encode(&insn, &mut buf);
            assert!(len <= MAX_INSN_LEN, "{insn:?} too long: {len}");
            let (got, glen) = decode(&buf).expect("decode");
            assert_eq!(got, insn);
            assert_eq!(glen, len, "{insn:?}");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert_eq!(decode(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
        assert_eq!(decode(&[]), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        encode(&Insn::MovRI { dst: Gpr::Eax, imm: 77 }, &mut buf);
        for cut in 1..buf.len() {
            assert_eq!(decode(&buf[..cut]), Err(DecodeError::UnexpectedEnd), "cut at {cut}");
        }
    }

    #[test]
    fn decoding_is_a_prefix_code() {
        // Decoding must consume exactly the instruction's bytes even when
        // followed by arbitrary trailing garbage.
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let insn = arbitrary_insn(&mut rng);
            let mut buf = Vec::new();
            let len = encode(&insn, &mut buf);
            buf.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
            let (got, glen) = decode(&buf).unwrap();
            assert_eq!((got, glen), (insn, len));
        }
    }
}
