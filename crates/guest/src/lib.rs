//! # GISA — the guest ISA of the DARCO reproduction
//!
//! DARCO (ISPASS 2017) simulates a HW/SW co-designed processor that executes
//! guest **x86** binaries on a PowerPC-like RISC host. This crate defines the
//! guest side: a 32-bit CISC ISA deliberately modeled on user-level x86,
//! with every property the paper's evaluation exercises:
//!
//! * eight general-purpose registers with x86 names ([`Gpr`]), an
//!   instruction pointer and a five-bit flags register ([`Flags`]:
//!   CF/ZF/SF/OF/PF) written as an implicit side effect of ALU operations;
//! * complex addressing modes (`base + index * scale + disp`, [`Addr`]);
//! * memory-operand (read-modify-write) ALU forms, push/pop, `REP`-prefixed
//!   string operations and condition-code driven instructions;
//! * a floating-point register file with transcendentals (`sin`, `cos`)
//!   whose architectural definition is a fixed polynomial ([`softfp`]), so
//!   that an interpreter and a binary translator can produce bit-identical
//!   results;
//! * a variable-length byte [`encoding`](mod@encode) with an exact
//!   encoder/decoder pair.
//!
//! The single-instruction executor in [`exec`] is the *architectural
//! specification*: both the authoritative full-system component
//! (`darco-xcomp`) and the interpreter inside the Translation Optimization
//! Layer (`darco-tol`) call it, which is what makes DARCO-style state
//! comparison meaningful.
//!
//! ## Example
//!
//! ```
//! use darco_guest::{Asm, Gpr, GuestState, exec, Cond};
//!
//! // Sum the integers 1..=10.
//! let mut a = Asm::new(0x1000);
//! a.mov_ri(Gpr::Eax, 0);
//! a.mov_ri(Gpr::Ecx, 10);
//! let top = a.here();
//! a.add_rr(Gpr::Eax, Gpr::Ecx);
//! a.dec(Gpr::Ecx);
//! a.jcc_to(Cond::Ne, top);
//! a.halt();
//!
//! let program = a.into_program();
//! let mut st = GuestState::boot(&program);
//! while !matches!(exec::step(&mut st).unwrap().next, exec::Next::Halt) {}
//! assert_eq!(st.gpr(Gpr::Eax), 55);
//! ```

pub mod asm;
pub mod encode;
pub mod exec;
pub mod insn;
pub mod mem;
pub mod predecode;
pub mod prng;
pub mod program;
pub mod reg;
pub mod softfp;
pub mod state;
pub mod wire;

pub use asm::Asm;
pub use encode::{decode, encode, DecodeError};
pub use exec::{Fault, Next, StepInfo};
pub use insn::{AluOp, FBinOp, FUnOp, Insn, RepCond, ShiftAmount, ShiftOp, UnaryOp};
pub use mem::{GuestMem, PAGE_SHIFT, PAGE_SIZE};
pub use predecode::DecodeCache;
pub use program::GuestProgram;
pub use reg::{Addr, Cond, Flags, Fpr, Gpr, Scale, Width};
pub use state::GuestState;
pub use wire::{Wire, WireError, WireReader};

pub mod gen;
