//! Paged guest memory.
//!
//! Guest memory is a sparse collection of 4 KiB pages. Accessing an
//! unmapped page returns a fault rather than mapping silently: in the
//! co-designed component this is what raises DARCO's *data request*
//! synchronization event (the page is then fetched from the authoritative
//! x86 component), while the authoritative component itself maps pages
//! on demand like an OS would.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Guest page size in bytes (4 KiB).
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;

/// A memory access fault: the referenced page is not mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The exact address whose page is missing.
    pub addr: u32,
    /// Whether the access was a write.
    pub write: bool,
}

/// Sparse, paged guest memory.
///
/// All accesses are little-endian and may straddle page boundaries; an
/// access faults if *any* byte of it touches an unmapped page, and a
/// faulting access performs no partial writes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GuestMem {
    pages: BTreeMap<u32, Vec<u8>>,
}

impl GuestMem {
    /// Creates empty memory with no mapped pages.
    pub fn new() -> GuestMem {
        GuestMem::default()
    }

    /// Page number of an address.
    #[inline]
    pub fn page_of(addr: u32) -> u32 {
        addr >> PAGE_SHIFT
    }

    /// Whether the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.pages.contains_key(&Self::page_of(addr))
    }

    /// Maps a zero-filled page (no-op if already mapped).
    pub fn map_zero(&mut self, page: u32) {
        self.pages.entry(page).or_insert_with(|| vec![0u8; PAGE_SIZE as usize]);
    }

    /// Installs page contents, replacing any existing mapping.
    ///
    /// # Panics
    /// Panics if `data` is not exactly [`PAGE_SIZE`] bytes.
    pub fn install_page(&mut self, page: u32, data: Vec<u8>) {
        assert_eq!(data.len(), PAGE_SIZE as usize, "page must be {PAGE_SIZE} bytes");
        self.pages.insert(page, data);
    }

    /// Returns a copy of a page's contents, if mapped.
    pub fn page(&self, page: u32) -> Option<&[u8]> {
        self.pages.get(&page).map(|p| p.as_slice())
    }

    /// Iterates over `(page_number, contents)` for all mapped pages.
    pub fn pages(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.pages.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Checks that `len` bytes starting at `addr` are all mapped.
    ///
    /// # Errors
    /// Returns the first missing page's fault.
    pub fn probe(&self, addr: u32, len: u32, write: bool) -> Result<(), PageFault> {
        if len == 0 {
            return Ok(());
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr.wrapping_add(len - 1));
        let mut p = first;
        loop {
            if !self.pages.contains_key(&p) {
                let fault_addr = if p == first { addr } else { p << PAGE_SHIFT };
                return Err(PageFault { addr: fault_addr, write });
            }
            if p == last {
                return Ok(());
            }
            p = p.wrapping_add(1);
        }
    }

    /// Reads `buf.len()` bytes at `addr`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped; no partial reads are observable.
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), PageFault> {
        self.probe(addr, buf.len() as u32, false)?;
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr.wrapping_add(i as u32);
            let page = &self.pages[&Self::page_of(a)];
            *b = page[(a & (PAGE_SIZE - 1)) as usize];
        }
        Ok(())
    }

    /// Writes `buf` at `addr`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped; a faulting write changes nothing.
    pub fn write(&mut self, addr: u32, buf: &[u8]) -> Result<(), PageFault> {
        self.probe(addr, buf.len() as u32, true)?;
        for (i, b) in buf.iter().enumerate() {
            let a = addr.wrapping_add(i as u32);
            let page = self.pages.get_mut(&Self::page_of(a)).expect("probed");
            page[(a & (PAGE_SIZE - 1)) as usize] = *b;
        }
        Ok(())
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// Faults if the page is unmapped.
    pub fn read_u8(&self, addr: u32) -> Result<u8, PageFault> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_u16(&self, addr: u32) -> Result<u16, PageFault> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_u32(&self, addr: u32) -> Result<u32, PageFault> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_u64(&self, addr: u32) -> Result<u64, PageFault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u8`.
    ///
    /// # Errors
    /// Faults if the page is unmapped.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), PageFault> {
        self.write(addr, &[v])
    }

    /// Writes a little-endian `u16`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), PageFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), PageFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_u64(&mut self, addr: u32, v: u64) -> Result<(), PageFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Reads a value of the given width, zero- or sign-extended to 32 bits.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_width(&self, addr: u32, width: crate::reg::Width, sign: bool) -> Result<u32, PageFault> {
        use crate::reg::Width;
        Ok(match (width, sign) {
            (Width::B, false) => self.read_u8(addr)? as u32,
            (Width::B, true) => self.read_u8(addr)? as i8 as i32 as u32,
            (Width::W, false) => self.read_u16(addr)? as u32,
            (Width::W, true) => self.read_u16(addr)? as i16 as i32 as u32,
            (Width::D, _) => self.read_u32(addr)?,
        })
    }

    /// Writes the low `width` bytes of `v`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_width(&mut self, addr: u32, v: u32, width: crate::reg::Width) -> Result<(), PageFault> {
        use crate::reg::Width;
        match width {
            Width::B => self.write_u8(addr, v as u8),
            Width::W => self.write_u16(addr, v as u16),
            Width::D => self.write_u32(addr, v),
        }
    }

    /// Copies a byte range into a fresh `Vec`, mapping nothing.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_vec(&self, addr: u32, len: u32) -> Result<Vec<u8>, PageFault> {
        let mut v = vec![0u8; len as usize];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Compares this memory's mapped pages against another's.
    ///
    /// Only pages mapped in **both** are compared byte-for-byte (the
    /// co-designed component lazily fetches pages, so it legitimately maps a
    /// subset of the authoritative memory). Returns the first differing
    /// address, if any.
    pub fn first_difference(&self, other: &GuestMem) -> Option<u32> {
        for (num, data) in &self.pages {
            if let Some(odata) = other.pages.get(num) {
                if let Some(off) = data.iter().zip(odata.iter()).position(|(a, b)| a != b) {
                    return Some((num << PAGE_SHIFT) + off as u32);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults_with_address() {
        let mut m = GuestMem::new();
        assert_eq!(m.read_u32(0x5000), Err(PageFault { addr: 0x5000, write: false }));
        assert_eq!(m.write_u8(0x5001, 1), Err(PageFault { addr: 0x5001, write: true }));
        m.map_zero(5);
        assert_eq!(m.read_u32(0x5000), Ok(0));
    }

    #[test]
    fn cross_page_access_faults_atomically() {
        let mut m = GuestMem::new();
        m.map_zero(0);
        // u32 at 0xFFE crosses into page 1 (unmapped): must fault and write nothing.
        let err = m.write_u32(0xFFE, 0xDEAD_BEEF).unwrap_err();
        assert!(err.write);
        assert_eq!(err.addr, 0x1000);
        assert_eq!(m.read_u16(0xFFE).unwrap(), 0, "no partial write");
        m.map_zero(1);
        m.write_u32(0xFFE, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_u32(0xFFE).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = GuestMem::new();
        m.map_zero(0);
        m.write_u32(0x10, 0x0403_0201).unwrap();
        assert_eq!(m.read_u8(0x10).unwrap(), 1);
        assert_eq!(m.read_u8(0x13).unwrap(), 4);
        assert_eq!(m.read_u16(0x11).unwrap(), 0x0302);
    }

    #[test]
    fn width_reads_extend_properly() {
        use crate::reg::Width;
        let mut m = GuestMem::new();
        m.map_zero(0);
        m.write_u8(0, 0x80).unwrap();
        assert_eq!(m.read_width(0, Width::B, false).unwrap(), 0x80);
        assert_eq!(m.read_width(0, Width::B, true).unwrap(), 0xFFFF_FF80);
        m.write_u16(2, 0x8000).unwrap();
        assert_eq!(m.read_width(2, Width::W, true).unwrap(), 0xFFFF_8000);
    }

    #[test]
    fn first_difference_ignores_unshared_pages() {
        let mut a = GuestMem::new();
        let mut b = GuestMem::new();
        a.map_zero(1);
        b.map_zero(1);
        b.map_zero(9); // only in b: ignored
        assert_eq!(a.first_difference(&b), None);
        b.write_u8(0x1234, 7).unwrap();
        assert_eq!(a.first_difference(&b), Some(0x1234));
    }

    #[test]
    fn install_page_replaces() {
        let mut m = GuestMem::new();
        m.map_zero(2);
        m.write_u8(0x2000, 9).unwrap();
        let mut fresh = vec![0u8; PAGE_SIZE as usize];
        fresh[0] = 42;
        m.install_page(2, fresh);
        assert_eq!(m.read_u8(0x2000).unwrap(), 42);
    }
}
