//! Paged guest memory.
//!
//! Guest memory is a sparse collection of 4 KiB pages. Accessing an
//! unmapped page returns a fault rather than mapping silently: in the
//! co-designed component this is what raises DARCO's *data request*
//! synchronization event (the page is then fetched from the authoritative
//! x86 component), while the authoritative component itself maps pages
//! on demand like an OS would.
//!
//! ## Hot-path layout
//!
//! Page storage is an arena (`slots`) indexed through a `BTreeMap` page
//! table, fronted by two small direct-mapped *L0 TLBs* (one for reads,
//! one for writes) that cache `page → slot` resolutions. Single-page
//! accesses — the overwhelmingly common case — hit the TLB and copy a
//! slice without touching the map. The TLBs are flushed whenever the page
//! table changes ([`GuestMem::map_zero`] of a new page,
//! [`GuestMem::install_page`] of a new page, [`GuestMem::unmap`]).
//!
//! Pages holding decoded instructions can be marked with
//! [`GuestMem::mark_code_page`]; writes to marked pages bump a generation
//! counter ([`GuestMem::code_gen`]) that decode caches use to invalidate
//! stale predecoded blocks (self-modifying code). Code pages are never
//! entered into the write TLB, so every write to one takes the slow path
//! and is observed.

use std::cell::Cell;
use std::collections::{BTreeMap, HashSet};

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Guest page size in bytes (4 KiB).
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;

/// Number of entries in each L0 TLB (direct-mapped by low page bits).
const TLB_ENTRIES: usize = 16;
const TLB_MASK: u32 = TLB_ENTRIES as u32 - 1;
/// An invalid TLB entry (tag half is zero; tags store `page + 1`).
const TLB_INVALID: u64 = 0;

/// A memory access fault: the referenced page is not mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The exact address whose page is missing.
    pub addr: u32,
    /// Whether the access was a write.
    pub write: bool,
}

/// Sparse, paged guest memory.
///
/// All accesses are little-endian and may straddle page boundaries; an
/// access faults if *any* byte of it touches an unmapped page, and a
/// faulting access performs no partial writes.
#[derive(Debug, Clone, Default)]
pub struct GuestMem {
    /// Page number → arena slot.
    page_map: BTreeMap<u32, u32>,
    /// Page storage arena. Slots are recycled through `free_slots`.
    slots: Vec<Vec<u8>>,
    free_slots: Vec<u32>,
    /// L0 TLBs: each entry packs `(page + 1) << 32 | slot`; 0 = invalid.
    /// `Cell` lets read paths refill on miss through `&self`.
    read_tlb: [Cell<u64>; TLB_ENTRIES],
    write_tlb: [Cell<u64>; TLB_ENTRIES],
    /// Pages containing predecoded instructions (see module docs).
    code_pages: HashSet<u32>,
    code_gen: u64,
}

impl GuestMem {
    /// Creates empty memory with no mapped pages.
    pub fn new() -> GuestMem {
        GuestMem::default()
    }

    /// Page number of an address.
    #[inline]
    pub fn page_of(addr: u32) -> u32 {
        addr >> PAGE_SHIFT
    }

    #[inline]
    fn tlb_get(tlb: &[Cell<u64>; TLB_ENTRIES], page: u32) -> Option<u32> {
        let e = tlb[(page & TLB_MASK) as usize].get();
        ((e >> 32) == page as u64 + 1).then_some(e as u32)
    }

    #[inline]
    fn tlb_fill(tlb: &[Cell<u64>; TLB_ENTRIES], page: u32, slot: u32) {
        tlb[(page & TLB_MASK) as usize].set((page as u64 + 1) << 32 | slot as u64);
    }

    fn flush_tlbs(&self) {
        for e in &self.read_tlb {
            e.set(TLB_INVALID);
        }
        for e in &self.write_tlb {
            e.set(TLB_INVALID);
        }
    }

    /// Resolves a page for reading, refilling the read TLB on miss.
    #[inline]
    fn read_slot(&self, page: u32) -> Option<&[u8]> {
        let slot = match Self::tlb_get(&self.read_tlb, page) {
            Some(s) => s,
            None => {
                let s = *self.page_map.get(&page)?;
                Self::tlb_fill(&self.read_tlb, page, s);
                s
            }
        };
        Some(&self.slots[slot as usize])
    }

    /// Resolves a page for writing. Code pages never enter the write TLB,
    /// so every write to one lands here and bumps the generation.
    #[inline]
    fn write_slot(&mut self, page: u32) -> Option<u32> {
        if let Some(s) = Self::tlb_get(&self.write_tlb, page) {
            return Some(s);
        }
        let s = *self.page_map.get(&page)?;
        if self.code_pages.contains(&page) {
            self.code_gen += 1;
        } else {
            Self::tlb_fill(&self.write_tlb, page, s);
        }
        Some(s)
    }

    /// Mutable page contents for the store-commit fast path. `Some` only
    /// for mapped *non-code* pages: writes to a marked code page must go
    /// through [`GuestMem::write`] so the decode-cache generation
    /// advances exactly once per store, matching the reference
    /// emulator's commit bump-for-bump (the generation is serialized in
    /// checkpoints, so backends must agree on its value, not just on
    /// whether it changed).
    /// `None` on a write-TLB miss as well: the caller's `write` fallback
    /// resolves the page and fills the TLB, so the next commit to it
    /// hits here. Code pages never enter the write TLB, which is what
    /// keeps them off this path.
    #[inline]
    pub fn page_for_commit(&mut self, page: u32) -> Option<&mut [u8]> {
        let s = Self::tlb_get(&self.write_tlb, page)?;
        Some(&mut self.slots[s as usize])
    }

    /// Whether the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.read_slot(Self::page_of(addr)).is_some()
    }

    /// Maps a zero-filled page (no-op if already mapped).
    pub fn map_zero(&mut self, page: u32) {
        if self.page_map.contains_key(&page) {
            return;
        }
        let slot = self.alloc_slot();
        self.page_map.insert(page, slot);
        self.flush_tlbs();
    }

    /// Installs page contents, replacing any existing mapping.
    ///
    /// # Panics
    /// Panics if `data` is not exactly [`PAGE_SIZE`] bytes.
    pub fn install_page(&mut self, page: u32, data: Vec<u8>) {
        assert_eq!(data.len(), PAGE_SIZE as usize, "page must be {PAGE_SIZE} bytes");
        match self.page_map.get(&page) {
            Some(&slot) => {
                self.slots[slot as usize] = data;
                if self.code_pages.contains(&page) {
                    self.code_gen += 1;
                }
            }
            None => {
                let slot = self.alloc_slot();
                self.slots[slot as usize] = data;
                self.page_map.insert(page, slot);
                self.flush_tlbs();
            }
        }
    }

    /// Removes a page mapping (no-op if unmapped). Subsequent accesses to
    /// the page fault.
    pub fn unmap(&mut self, page: u32) {
        if let Some(slot) = self.page_map.remove(&page) {
            self.slots[slot as usize].clear();
            self.free_slots.push(slot);
            self.flush_tlbs();
            if self.code_pages.remove(&page) {
                self.code_gen += 1;
            }
        }
    }

    fn alloc_slot(&mut self) -> u32 {
        match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = vec![0u8; PAGE_SIZE as usize];
                s
            }
            None => {
                self.slots.push(vec![0u8; PAGE_SIZE as usize]);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Marks a page as holding predecoded instructions: subsequent writes
    /// to it bump [`GuestMem::code_gen`]. Evicts it from the write TLB.
    pub fn mark_code_page(&mut self, page: u32) {
        if self.code_pages.insert(page) {
            self.write_tlb[(page & TLB_MASK) as usize].set(TLB_INVALID);
        }
    }

    /// Generation counter bumped on every write to a marked code page (and
    /// on [`GuestMem::install_page`]/[`GuestMem::unmap`] of one). Decode
    /// caches compare this to detect self-modifying code.
    #[inline]
    pub fn code_gen(&self) -> u64 {
        self.code_gen
    }

    /// Whether `page` is marked as holding predecoded instructions.
    #[inline]
    pub fn is_code_page(&self, page: u32) -> bool {
        self.code_pages.contains(&page)
    }

    /// Whether the byte range `[addr, addr+len)` touches a marked code
    /// page. Host backends use this to detect self-modifying stores
    /// before they enter a transaction.
    #[inline]
    pub fn is_code(&self, addr: u32, len: u32) -> bool {
        let first = Self::page_of(addr);
        let last = Self::page_of(addr.wrapping_add(len.saturating_sub(1)));
        self.code_pages.contains(&first) || (last != first && self.code_pages.contains(&last))
    }

    /// Returns a copy of a page's contents, if mapped.
    pub fn page(&self, page: u32) -> Option<&[u8]> {
        self.read_slot(page)
    }

    /// The in-page slice from `addr` to the end of its page, if mapped
    /// (the instruction-fetch fast path).
    #[inline]
    pub fn page_tail(&self, addr: u32) -> Option<&[u8]> {
        let pg = self.read_slot(Self::page_of(addr))?;
        Some(&pg[(addr & (PAGE_SIZE - 1)) as usize..])
    }

    /// Iterates over `(page_number, contents)` for all mapped pages.
    pub fn pages(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.page_map.iter().map(|(k, &v)| (*k, self.slots[v as usize].as_slice()))
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.page_map.len()
    }

    /// Checks that `len` bytes starting at `addr` are all mapped.
    ///
    /// # Errors
    /// Returns the first missing page's fault.
    pub fn probe(&self, addr: u32, len: u32, write: bool) -> Result<(), PageFault> {
        if len == 0 {
            return Ok(());
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr.wrapping_add(len - 1));
        let mut p = first;
        loop {
            if self.read_slot(p).is_none() {
                let fault_addr = if p == first { addr } else { p << PAGE_SHIFT };
                return Err(PageFault { addr: fault_addr, write });
            }
            if p == last {
                return Ok(());
            }
            p = p.wrapping_add(1);
        }
    }

    /// Reads `buf.len()` bytes at `addr`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped; no partial reads are observable.
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), PageFault> {
        let len = buf.len() as u32;
        let off = addr & (PAGE_SIZE - 1);
        // Fast path: the access is contained in a single page.
        if len > 0 && off as u64 + len as u64 <= PAGE_SIZE as u64 {
            match self.read_slot(Self::page_of(addr)) {
                Some(pg) => {
                    buf.copy_from_slice(&pg[off as usize..(off + len) as usize]);
                    return Ok(());
                }
                None => return Err(PageFault { addr, write: false }),
            }
        }
        self.probe(addr, len, false)?;
        let mut done = 0u32;
        while done < len {
            let a = addr.wrapping_add(done);
            let pg = self.read_slot(Self::page_of(a)).expect("probed");
            let off = (a & (PAGE_SIZE - 1)) as usize;
            let n = ((PAGE_SIZE - (a & (PAGE_SIZE - 1))).min(len - done)) as usize;
            buf[done as usize..done as usize + n].copy_from_slice(&pg[off..off + n]);
            done += n as u32;
        }
        Ok(())
    }

    /// Writes `buf` at `addr`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped; a faulting write changes nothing.
    pub fn write(&mut self, addr: u32, buf: &[u8]) -> Result<(), PageFault> {
        let len = buf.len() as u32;
        let off = addr & (PAGE_SIZE - 1);
        // Fast path: the access is contained in a single page.
        if len > 0 && off as u64 + len as u64 <= PAGE_SIZE as u64 {
            match self.write_slot(Self::page_of(addr)) {
                Some(slot) => {
                    self.slots[slot as usize][off as usize..(off + len) as usize]
                        .copy_from_slice(buf);
                    return Ok(());
                }
                None => return Err(PageFault { addr, write: true }),
            }
        }
        self.probe(addr, len, true)?;
        let mut done = 0u32;
        while done < len {
            let a = addr.wrapping_add(done);
            let slot = self.write_slot(Self::page_of(a)).expect("probed");
            let off = (a & (PAGE_SIZE - 1)) as usize;
            let n = ((PAGE_SIZE - (a & (PAGE_SIZE - 1))).min(len - done)) as usize;
            self.slots[slot as usize][off..off + n].copy_from_slice(&buf[done as usize..done as usize + n]);
            done += n as u32;
        }
        Ok(())
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// Faults if the page is unmapped.
    pub fn read_u8(&self, addr: u32) -> Result<u8, PageFault> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_u16(&self, addr: u32) -> Result<u16, PageFault> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_u32(&self, addr: u32) -> Result<u32, PageFault> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_u64(&self, addr: u32) -> Result<u64, PageFault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u8`.
    ///
    /// # Errors
    /// Faults if the page is unmapped.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), PageFault> {
        self.write(addr, &[v])
    }

    /// Writes a little-endian `u16`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), PageFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), PageFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_u64(&mut self, addr: u32, v: u64) -> Result<(), PageFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Reads a value of the given width, zero- or sign-extended to 32 bits.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_width(&self, addr: u32, width: crate::reg::Width, sign: bool) -> Result<u32, PageFault> {
        use crate::reg::Width;
        Ok(match (width, sign) {
            (Width::B, false) => self.read_u8(addr)? as u32,
            (Width::B, true) => self.read_u8(addr)? as i8 as i32 as u32,
            (Width::W, false) => self.read_u16(addr)? as u32,
            (Width::W, true) => self.read_u16(addr)? as i16 as i32 as u32,
            (Width::D, _) => self.read_u32(addr)?,
        })
    }

    /// Writes the low `width` bytes of `v`.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn write_width(&mut self, addr: u32, v: u32, width: crate::reg::Width) -> Result<(), PageFault> {
        use crate::reg::Width;
        match width {
            Width::B => self.write_u8(addr, v as u8),
            Width::W => self.write_u16(addr, v as u16),
            Width::D => self.write_u32(addr, v),
        }
    }

    /// Copies a byte range into a fresh `Vec`, mapping nothing.
    ///
    /// # Errors
    /// Faults if any byte is unmapped.
    pub fn read_vec(&self, addr: u32, len: u32) -> Result<Vec<u8>, PageFault> {
        let mut v = vec![0u8; len as usize];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Serializes all mapped pages, the code-page set and the SMC
    /// generation counter into `w`.
    ///
    /// Pages travel in page-number order (the `BTreeMap` iteration order),
    /// so two snapshots of identical memory are byte-identical regardless
    /// of arena slot history. Slot numbering, free lists and TLB contents
    /// are invisible state and are not serialized.
    pub fn snapshot_into(&self, w: &mut crate::wire::Wire) {
        w.put_usize(self.page_map.len());
        for (num, data) in self.pages() {
            w.put_u32(num);
            w.put_bytes(data);
        }
        let mut code: Vec<u32> = self.code_pages.iter().copied().collect();
        code.sort_unstable();
        w.put_u32s(&code);
        w.put_u64(self.code_gen);
    }

    /// Rebuilds this memory from a [`GuestMem::snapshot_into`] stream:
    /// pages are re-packed into fresh arena slots `0..n`, the free list is
    /// emptied and both TLBs start cold.
    ///
    /// # Errors
    /// Propagates wire decode failures (truncated/malformed snapshot).
    pub fn restore_from(&mut self, r: &mut crate::wire::WireReader<'_>) -> Result<(), crate::wire::WireError> {
        let n = r.get_usize()?;
        let mut page_map = BTreeMap::new();
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let num = r.get_u32()?;
            let data = r.get_bytes()?;
            if data.len() != PAGE_SIZE as usize {
                return Err(crate::wire::WireError::Malformed {
                    at: r.pos(),
                    what: "page is not PAGE_SIZE bytes",
                });
            }
            page_map.insert(num, slots.len() as u32);
            slots.push(data);
        }
        let code_pages: HashSet<u32> = r.get_u32s()?.into_iter().collect();
        let code_gen = r.get_u64()?;
        self.page_map = page_map;
        self.slots = slots;
        self.free_slots.clear();
        self.code_pages = code_pages;
        self.code_gen = code_gen;
        self.flush_tlbs();
        Ok(())
    }

    /// Compares this memory's mapped pages against another's.
    ///
    /// Only pages mapped in **both** are compared byte-for-byte (the
    /// co-designed component lazily fetches pages, so it legitimately maps a
    /// subset of the authoritative memory). Returns the first differing
    /// address, if any.
    pub fn first_difference(&self, other: &GuestMem) -> Option<u32> {
        for (num, &slot) in &self.page_map {
            if let Some(&oslot) = other.page_map.get(num) {
                let data = &self.slots[slot as usize];
                let odata = &other.slots[oslot as usize];
                if let Some(off) = data.iter().zip(odata.iter()).position(|(a, b)| a != b) {
                    return Some((num << PAGE_SHIFT) + off as u32);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults_with_address() {
        let mut m = GuestMem::new();
        assert_eq!(m.read_u32(0x5000), Err(PageFault { addr: 0x5000, write: false }));
        assert_eq!(m.write_u8(0x5001, 1), Err(PageFault { addr: 0x5001, write: true }));
        m.map_zero(5);
        assert_eq!(m.read_u32(0x5000), Ok(0));
    }

    #[test]
    fn cross_page_access_faults_atomically() {
        let mut m = GuestMem::new();
        m.map_zero(0);
        // u32 at 0xFFE crosses into page 1 (unmapped): must fault and write nothing.
        let err = m.write_u32(0xFFE, 0xDEAD_BEEF).unwrap_err();
        assert!(err.write);
        assert_eq!(err.addr, 0x1000);
        assert_eq!(m.read_u16(0xFFE).unwrap(), 0, "no partial write");
        m.map_zero(1);
        m.write_u32(0xFFE, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_u32(0xFFE).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = GuestMem::new();
        m.map_zero(0);
        m.write_u32(0x10, 0x0403_0201).unwrap();
        assert_eq!(m.read_u8(0x10).unwrap(), 1);
        assert_eq!(m.read_u8(0x13).unwrap(), 4);
        assert_eq!(m.read_u16(0x11).unwrap(), 0x0302);
    }

    #[test]
    fn width_reads_extend_properly() {
        use crate::reg::Width;
        let mut m = GuestMem::new();
        m.map_zero(0);
        m.write_u8(0, 0x80).unwrap();
        assert_eq!(m.read_width(0, Width::B, false).unwrap(), 0x80);
        assert_eq!(m.read_width(0, Width::B, true).unwrap(), 0xFFFF_FF80);
        m.write_u16(2, 0x8000).unwrap();
        assert_eq!(m.read_width(2, Width::W, true).unwrap(), 0xFFFF_8000);
    }

    #[test]
    fn first_difference_ignores_unshared_pages() {
        let mut a = GuestMem::new();
        let mut b = GuestMem::new();
        a.map_zero(1);
        b.map_zero(1);
        b.map_zero(9); // only in b: ignored
        assert_eq!(a.first_difference(&b), None);
        b.write_u8(0x1234, 7).unwrap();
        assert_eq!(a.first_difference(&b), Some(0x1234));
    }

    #[test]
    fn install_page_replaces() {
        let mut m = GuestMem::new();
        m.map_zero(2);
        m.write_u8(0x2000, 9).unwrap();
        let mut fresh = vec![0u8; PAGE_SIZE as usize];
        fresh[0] = 42;
        m.install_page(2, fresh);
        assert_eq!(m.read_u8(0x2000).unwrap(), 42);
    }

    #[test]
    fn unmap_faults_and_remap_is_fresh() {
        let mut m = GuestMem::new();
        m.map_zero(3);
        m.write_u32(0x3000, 0xABCD).unwrap();
        assert_eq!(m.read_u32(0x3000).unwrap(), 0xABCD);
        m.unmap(3);
        assert_eq!(m.read_u32(0x3000), Err(PageFault { addr: 0x3000, write: false }));
        assert_eq!(m.write_u8(0x3000, 1), Err(PageFault { addr: 0x3000, write: true }));
        m.map_zero(3);
        assert_eq!(m.read_u32(0x3000).unwrap(), 0, "remapped page is zeroed");
    }

    #[test]
    fn tlb_sees_no_stale_entries_across_map_unmap() {
        let mut m = GuestMem::new();
        // Prime both TLBs on pages 0 and 16 (same direct-mapped set).
        m.map_zero(0);
        m.map_zero(16);
        m.write_u32(0x0, 1).unwrap();
        m.write_u32(0x10000, 2).unwrap();
        assert_eq!(m.read_u32(0x0).unwrap(), 1);
        assert_eq!(m.read_u32(0x10000).unwrap(), 2);
        // Unmapping page 0 must not leave a stale TLB entry behind.
        m.unmap(0);
        assert_eq!(m.read_u32(0x0), Err(PageFault { addr: 0, write: false }));
        assert_eq!(m.read_u32(0x10000).unwrap(), 2, "other page still mapped");
        // Remap recycles the arena slot; content must be fresh zeroes.
        m.map_zero(0);
        assert_eq!(m.read_u32(0x0).unwrap(), 0);
        m.write_u32(0x0, 3).unwrap();
        assert_eq!(m.read_u32(0x10000).unwrap(), 2, "no cross-slot aliasing");
    }

    #[test]
    fn code_page_writes_bump_generation() {
        let mut m = GuestMem::new();
        m.map_zero(1);
        m.map_zero(2);
        let g0 = m.code_gen();
        m.write_u32(0x2000, 5).unwrap();
        assert_eq!(m.code_gen(), g0, "writes to plain pages don't bump");
        m.mark_code_page(1);
        m.write_u32(0x2000, 6).unwrap();
        assert_eq!(m.code_gen(), g0, "other pages still don't bump");
        m.write_u8(0x1000, 0xCC).unwrap();
        assert!(m.code_gen() > g0, "write to a code page bumps the generation");
        let g1 = m.code_gen();
        m.install_page(1, vec![0u8; PAGE_SIZE as usize]);
        assert!(m.code_gen() > g1, "installing over a code page bumps too");
    }

    #[test]
    fn snapshot_round_trips_and_is_slot_order_independent() {
        let mut a = GuestMem::new();
        a.map_zero(1);
        a.map_zero(7);
        a.write_u32(0x1010, 0xCAFE).unwrap();
        a.mark_code_page(7);
        a.write_u8(0x7000, 0x90).unwrap(); // bumps code_gen

        // Build the same logical memory with a different slot history.
        let mut b = GuestMem::new();
        b.map_zero(3);
        b.map_zero(7);
        b.unmap(3);
        b.map_zero(1);
        b.write_u32(0x1010, 0xCAFE).unwrap();
        b.mark_code_page(7);
        b.write_u8(0x7000, 0x90).unwrap();

        let snap = |m: &GuestMem| {
            let mut w = crate::wire::Wire::new();
            m.snapshot_into(&mut w);
            w.finish()
        };
        assert_eq!(snap(&a), snap(&b), "slot history must not leak into snapshots");

        let bytes = snap(&a);
        let mut restored = GuestMem::new();
        restored.map_zero(99); // pre-existing state must be replaced
        let mut r = crate::wire::WireReader::new(&bytes);
        restored.restore_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(restored.read_u32(0x1010).unwrap(), 0xCAFE);
        assert!(!restored.is_mapped(99 << PAGE_SHIFT));
        assert_eq!(restored.code_gen(), a.code_gen());
        assert_eq!(snap(&restored), bytes, "re-snapshot is byte-identical");
        // Code-page tracking survives: a write to page 7 bumps the gen.
        let g = restored.code_gen();
        restored.write_u8(0x7004, 1).unwrap();
        assert!(restored.code_gen() > g);
    }

    #[test]
    fn page_tail_returns_in_page_slice() {
        let mut m = GuestMem::new();
        m.map_zero(0);
        m.write_u32(0xFF8, 0x11223344).unwrap();
        let tail = m.page_tail(0xFF8).unwrap();
        assert_eq!(tail.len(), 8);
        assert_eq!(tail[0], 0x44);
        assert!(m.page_tail(0x5000).is_none());
    }
}
