//! Random generation of well-formed instructions.
//!
//! Used by the encode/decode round-trip tests here, by the
//! translator-equivalence property tests in `darco-tol`, and as a building
//! block of the workload generator. All generation is seeded and
//! deterministic.

use crate::insn::{AluOp, FBinOp, FUnOp, Insn, RepCond, ShiftAmount, ShiftOp, UnaryOp};
use crate::prng::Rng;
use crate::reg::{Addr, Cond, Fpr, Gpr, Scale, Width};

/// Generates a random well-formed addressing mode.
///
/// The displacement is drawn from four buckets: zero, short (byte-sized),
/// page-boundary-straddling, and full-width. The straddle bucket places
/// `disp` within a cache-line of a page-size multiple so accesses off a
/// page-aligned base regularly cross page boundaries — the case that
/// exercises split faults and TLB edges, and which a uniform 32-bit draw
/// essentially never produces. The full-width bucket is inclusive on both
/// ends (`i32::MIN..i32::MAX` exclusive could never yield `i32::MAX`).
pub fn arbitrary_addr<R: Rng>(rng: &mut R) -> Addr {
    let base = if rng.gen_bool(0.8) { Some(arbitrary_gpr(rng)) } else { None };
    let index = if rng.gen_bool(0.3) { Some(arbitrary_gpr(rng)) } else { None };
    let scale = Scale::from_index(rng.gen_range(0..4));
    let disp = match rng.gen_range(0..4) {
        0 => 0,
        1 => rng.gen_range(-128..=127),
        2 => {
            // Within ±63 bytes of a multiple of the page size (including
            // negative multiples), so a page-aligned base straddles.
            let page = rng.gen_range(-8i32..=8) * 4096;
            page.saturating_add(rng.gen_range(-63..=63))
        }
        _ => rng.gen_range(i32::MIN..=i32::MAX),
    };
    Addr { base, index, scale, disp }
}

/// Generates a random general-purpose register.
pub fn arbitrary_gpr<R: Rng>(rng: &mut R) -> Gpr {
    Gpr::from_index(rng.gen_range(0..8))
}

/// Generates a random FP register.
pub fn arbitrary_fpr<R: Rng>(rng: &mut R) -> Fpr {
    Fpr::new(rng.gen_range(0..8))
}

/// Generates a random condition code.
pub fn arbitrary_cond<R: Rng>(rng: &mut R) -> Cond {
    Cond::from_index(rng.gen_range(0..16))
}

/// Generates one random well-formed instruction, covering every variant.
pub fn arbitrary_insn<R: Rng>(rng: &mut R) -> Insn {
    let imm = || 0;
    let _ = imm;
    match rng.gen_range(0..48) {
        0 => Insn::MovRR { dst: arbitrary_gpr(rng), src: arbitrary_gpr(rng) },
        1 => Insn::MovRI { dst: arbitrary_gpr(rng), imm: rng.gen() },
        2 => Insn::Load {
            dst: arbitrary_gpr(rng),
            addr: arbitrary_addr(rng),
            width: Width::from_index(rng.gen_range(0..3)),
            sign: rng.gen(),
        },
        3 => Insn::Store {
            addr: arbitrary_addr(rng),
            src: arbitrary_gpr(rng),
            width: Width::from_index(rng.gen_range(0..3)),
        },
        4 => Insn::StoreI {
            addr: arbitrary_addr(rng),
            imm: rng.gen(),
            width: Width::from_index(rng.gen_range(0..3)),
        },
        5 => Insn::Lea { dst: arbitrary_gpr(rng), addr: arbitrary_addr(rng) },
        6 => Insn::Xchg { a: arbitrary_gpr(rng), b: arbitrary_gpr(rng) },
        7 => Insn::Cmov { cc: arbitrary_cond(rng), dst: arbitrary_gpr(rng), src: arbitrary_gpr(rng) },
        8 => Insn::Setcc { cc: arbitrary_cond(rng), dst: arbitrary_gpr(rng) },
        9 => Insn::Push { src: arbitrary_gpr(rng) },
        10 => Insn::PushI { imm: rng.gen() },
        11 => Insn::Pop { dst: arbitrary_gpr(rng) },
        12 => Insn::AluRR {
            op: AluOp::from_index(rng.gen_range(0..7)),
            dst: arbitrary_gpr(rng),
            src: arbitrary_gpr(rng),
        },
        13 => Insn::AluRI {
            op: AluOp::from_index(rng.gen_range(0..7)),
            dst: arbitrary_gpr(rng),
            imm: rng.gen(),
        },
        14 => Insn::AluRM {
            op: AluOp::from_index(rng.gen_range(0..7)),
            dst: arbitrary_gpr(rng),
            addr: arbitrary_addr(rng),
        },
        15 => Insn::AluMR {
            op: AluOp::from_index(rng.gen_range(0..7)),
            addr: arbitrary_addr(rng),
            src: arbitrary_gpr(rng),
        },
        16 => Insn::AluMI {
            op: AluOp::from_index(rng.gen_range(0..7)),
            addr: arbitrary_addr(rng),
            imm: rng.gen(),
        },
        17 => Insn::CmpRR { a: arbitrary_gpr(rng), b: arbitrary_gpr(rng) },
        18 => Insn::CmpRI { a: arbitrary_gpr(rng), imm: rng.gen() },
        19 => Insn::CmpRM { a: arbitrary_gpr(rng), addr: arbitrary_addr(rng) },
        20 => Insn::TestRR { a: arbitrary_gpr(rng), b: arbitrary_gpr(rng) },
        21 => Insn::TestRI { a: arbitrary_gpr(rng), imm: rng.gen() },
        22 => Insn::Unary { op: UnaryOp::from_index(rng.gen_range(0..4)), dst: arbitrary_gpr(rng) },
        23 => Insn::UnaryM {
            op: UnaryOp::from_index(rng.gen_range(0..4)),
            addr: arbitrary_addr(rng),
            width: Width::from_index(rng.gen_range(0..3)),
        },
        24 => Insn::Shift {
            op: ShiftOp::from_index(rng.gen_range(0..5)),
            dst: arbitrary_gpr(rng),
            amount: if rng.gen() {
                ShiftAmount::Imm(rng.gen_range(0..32))
            } else {
                ShiftAmount::Cl
            },
        },
        25 => Insn::Imul { dst: arbitrary_gpr(rng), src: arbitrary_gpr(rng) },
        26 => Insn::ImulI { dst: arbitrary_gpr(rng), src: arbitrary_gpr(rng), imm: rng.gen() },
        27 => Insn::Idiv { dst: arbitrary_gpr(rng), src: arbitrary_gpr(rng) },
        28 => Insn::Irem { dst: arbitrary_gpr(rng), src: arbitrary_gpr(rng) },
        29 => Insn::Jmp { rel: rng.gen() },
        30 => Insn::Jcc { cc: arbitrary_cond(rng), rel: rng.gen() },
        31 => Insn::JmpInd { target: arbitrary_gpr(rng) },
        32 => Insn::Call { rel: rng.gen() },
        33 => Insn::CallInd { target: arbitrary_gpr(rng) },
        34 => Insn::Ret,
        35 => Insn::Movs { width: Width::from_index(rng.gen_range(0..3)), rep: rng.gen() },
        36 => Insn::Stos { width: Width::from_index(rng.gen_range(0..3)), rep: rng.gen() },
        37 => Insn::Lods { width: Width::from_index(rng.gen_range(0..3)), rep: rng.gen() },
        38 => Insn::Scas {
            width: Width::from_index(rng.gen_range(0..3)),
            rep: match rng.gen_range(0..3) {
                0 => None,
                1 => Some(RepCond::Eq),
                _ => Some(RepCond::Ne),
            },
        },
        39 => Insn::Cmps {
            width: Width::from_index(rng.gen_range(0..3)),
            rep: match rng.gen_range(0..3) {
                0 => None,
                1 => Some(RepCond::Eq),
                _ => Some(RepCond::Ne),
            },
        },
        40 => Insn::Fld { dst: arbitrary_fpr(rng), addr: arbitrary_addr(rng) },
        41 => Insn::Fst { addr: arbitrary_addr(rng), src: arbitrary_fpr(rng) },
        42 => Insn::FldI { dst: arbitrary_fpr(rng), bits: rng.gen() },
        43 => match rng.gen_range(0..4) {
            0 => Insn::FmovRR { dst: arbitrary_fpr(rng), src: arbitrary_fpr(rng) },
            1 => Insn::Fbin {
                op: FBinOp::from_index(rng.gen_range(0..6)),
                dst: arbitrary_fpr(rng),
                src: arbitrary_fpr(rng),
            },
            2 => Insn::FbinM {
                op: FBinOp::from_index(rng.gen_range(0..6)),
                dst: arbitrary_fpr(rng),
                addr: arbitrary_addr(rng),
            },
            _ => Insn::Funary {
                op: FUnOp::from_index(rng.gen_range(0..5)),
                dst: arbitrary_fpr(rng),
            },
        },
        44 => Insn::Fcmp { a: arbitrary_fpr(rng), b: arbitrary_fpr(rng) },
        45 => {
            if rng.gen() {
                Insn::Cvtsi2f { dst: arbitrary_fpr(rng), src: arbitrary_gpr(rng) }
            } else {
                Insn::Cvtf2si { dst: arbitrary_gpr(rng), src: arbitrary_fpr(rng) }
            }
        }
        46 => Insn::Nop,
        _ => match rng.gen_range(0..3) {
            0 => Insn::Syscall,
            1 => Insn::Halt,
            _ => Insn::Nop,
        },
    }
}
