//! Predecoded guest basic-block cache.
//!
//! Interpreting guest code costs a fetch + decode per executed
//! instruction, and the fetch alone touches memory byte-wise in the worst
//! case. Both DARCO interpreters — the TOL's IM interpreter and the
//! authoritative x86 component's replay loop — execute the same basic
//! blocks over and over between promotions and sync points, so decoding
//! each block once and replaying the predecoded run amortizes nearly all
//! of that cost.
//!
//! [`DecodeCache`] maps a block's entry PC to its decoded instruction run
//! (a [`Block`]). Coherence with self-modifying code relies on
//! [`GuestMem`]'s code-page generation: every page a decoded block's bytes
//! occupy is marked with [`GuestMem::mark_code_page`], any write to a
//! marked page bumps [`GuestMem::code_gen`], and [`DecodeCache::block`]
//! flushes the whole cache whenever the generation moved. Replay loops
//! must additionally re-check the generation after each executed
//! instruction to catch a block modifying *itself* mid-run.

use crate::exec::{fetch, Fault};
use crate::insn::Insn;
use crate::mem::{GuestMem, PAGE_SHIFT};
use std::collections::HashMap;

/// Cap on decoded instructions per block; mirrors the interpreter's
/// artificial block split (`MAX_BLOCK_INSNS`).
pub const MAX_BLOCK_INSNS: usize = 128;

/// Cache-size backstop: a full flush past this many blocks keeps the
/// memory footprint bounded on pathological block-entry churn.
const MAX_CACHED_BLOCKS: usize = 1 << 16;

/// One predecoded basic block: the `(instruction, encoded length)` run
/// starting at its entry PC.
#[derive(Debug, Clone)]
pub struct Block {
    /// Decoded instructions in fetch order.
    pub insns: Vec<(Insn, u32)>,
    /// `true` if the last instruction ends the block architecturally
    /// (branch/call/ret/syscall/halt). `false` means the run was cut
    /// short — by the size cap or because the next fetch faulted — and
    /// execution past it must re-enter the cache at the next PC.
    pub terminated: bool,
}

/// A decode cache keyed by block entry PC (see module docs).
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    blocks: HashMap<u32, Block>,
    gen: u64,
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Drops every cached block (e.g. alongside a code-cache flush).
    pub fn flush(&mut self) {
        self.blocks.clear();
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the block entered at `pc`, decoding (and caching) it on
    /// miss. Flushes first if `mem`'s code generation moved since the
    /// last call (a marked code page was written).
    ///
    /// # Errors
    /// Propagates the fetch fault if even the first instruction cannot be
    /// decoded (nothing is cached in that case).
    pub fn block(&mut self, mem: &mut GuestMem, pc: u32) -> Result<&Block, Fault> {
        if mem.code_gen() != self.gen {
            self.blocks.clear();
            self.gen = mem.code_gen();
        }
        if !self.blocks.contains_key(&pc) {
            let b = Self::decode_block(mem, pc)?;
            if self.blocks.len() >= MAX_CACHED_BLOCKS {
                self.blocks.clear();
            }
            self.blocks.insert(pc, b);
        }
        Ok(&self.blocks[&pc])
    }

    fn decode_block(mem: &mut GuestMem, entry: u32) -> Result<Block, Fault> {
        let mut insns = Vec::new();
        let mut pc = entry;
        let mut terminated = false;
        loop {
            match fetch(mem, pc) {
                Ok((insn, len)) => {
                    let ends = insn.ends_block();
                    insns.push((insn, len));
                    pc = pc.wrapping_add(len);
                    if ends {
                        terminated = true;
                        break;
                    }
                    if insns.len() >= MAX_BLOCK_INSNS {
                        break;
                    }
                }
                // A fault or bad opcode past the first instruction cuts
                // the block; the tail is only an error if control
                // actually reaches it.
                Err(f) => {
                    if insns.is_empty() {
                        return Err(f);
                    }
                    break;
                }
            }
        }
        // Mark every page the block's bytes occupy so stores to them are
        // observed (self-modifying code).
        let mut p = entry >> PAGE_SHIFT;
        let last = pc.wrapping_sub(1) >> PAGE_SHIFT;
        loop {
            mem.mark_code_page(p);
            if p == last {
                break;
            }
            p = p.wrapping_add(1);
        }
        Ok(Block { insns, terminated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::DEFAULT_CODE_BASE;
    use crate::{Asm, Gpr};

    fn mem_with(build: impl FnOnce(&mut Asm)) -> GuestMem {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        build(&mut a);
        let p = a.into_program();
        crate::GuestState::boot(&p).mem
    }

    #[test]
    fn block_ends_at_terminator() {
        let mut mem = mem_with(|a| {
            let top = a.here();
            a.inc(Gpr::Eax);
            a.inc(Gpr::Ebx);
            a.jmp_to(top);
            a.nop(); // next block
        });
        let mut dc = DecodeCache::new();
        let b = dc.block(&mut mem, DEFAULT_CODE_BASE).unwrap();
        assert!(b.terminated);
        assert_eq!(b.insns.len(), 3);
        assert!(matches!(b.insns[2].0, Insn::Jmp { .. }));
    }

    #[test]
    fn long_runs_are_cut_at_the_cap() {
        let mut mem = mem_with(|a| {
            for _ in 0..300 {
                a.nop();
            }
            a.halt();
        });
        let mut dc = DecodeCache::new();
        let b = dc.block(&mut mem, DEFAULT_CODE_BASE).unwrap();
        assert!(!b.terminated);
        assert_eq!(b.insns.len(), MAX_BLOCK_INSNS);
    }

    #[test]
    fn writes_to_code_invalidate() {
        let mut mem = mem_with(|a| {
            a.nop();
            a.halt();
        });
        let mut dc = DecodeCache::new();
        let n = dc.block(&mut mem, DEFAULT_CODE_BASE).unwrap().insns.len();
        assert_eq!(n, 2);
        assert_eq!(dc.len(), 1);
        // Overwrite the nop (1 byte) with a halt.
        let halt_byte = {
            let mut buf = Vec::new();
            crate::encode(&Insn::Halt, &mut buf);
            buf[0]
        };
        mem.write_u8(DEFAULT_CODE_BASE, halt_byte).unwrap();
        let b = dc.block(&mut mem, DEFAULT_CODE_BASE).unwrap();
        assert_eq!(b.insns.len(), 1, "stale block was re-decoded");
        assert!(matches!(b.insns[0].0, Insn::Halt));
    }

    #[test]
    fn first_insn_fault_is_not_cached() {
        let mut mem = GuestMem::new();
        let mut dc = DecodeCache::new();
        assert!(matches!(dc.block(&mut mem, 0x5000), Err(Fault::Page(_))));
        assert!(dc.is_empty());
    }
}
