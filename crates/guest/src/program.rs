//! Guest program images.

use crate::mem::{GuestMem, PAGE_SIZE};

/// Default base address of the code segment.
pub const DEFAULT_CODE_BASE: u32 = 0x0010_0000;
/// Default base address of the data segment.
pub const DEFAULT_DATA_BASE: u32 = 0x0040_0000;
/// Default initial stack pointer (grows down).
pub const DEFAULT_STACK_TOP: u32 = 0x7FFF_F000;
/// Default mapped stack size in bytes.
pub const DEFAULT_STACK_SIZE: u32 = 16 * PAGE_SIZE;
/// Default program break (heap base) for the `sbrk` syscall.
pub const DEFAULT_BRK_BASE: u32 = 0x0100_0000;

/// A complete guest program image: what the paper's controller hands to
/// both the authoritative x86 component and the co-designed component at
/// initialization.
#[derive(Debug, Clone)]
pub struct GuestProgram {
    /// Human-readable name (benchmark name in the workload suite).
    pub name: String,
    /// Encoded instruction bytes.
    pub code: Vec<u8>,
    /// Load address of `code`.
    pub code_base: u32,
    /// Initial data segment contents.
    pub data: Vec<u8>,
    /// Load address of `data`.
    pub data_base: u32,
    /// Entry point.
    pub entry: u32,
    /// Initial stack pointer.
    pub stack_top: u32,
    /// Bytes of stack mapped below `stack_top`.
    pub stack_size: u32,
    /// Program break base for `sbrk`.
    pub brk_base: u32,
    /// Deterministic input stream served by the `read` syscall.
    pub input: Vec<u8>,
}

impl GuestProgram {
    /// Creates a program with the default memory layout.
    pub fn new(name: impl Into<String>, code: Vec<u8>) -> GuestProgram {
        GuestProgram {
            name: name.into(),
            entry: DEFAULT_CODE_BASE,
            code,
            code_base: DEFAULT_CODE_BASE,
            data: Vec::new(),
            data_base: DEFAULT_DATA_BASE,
            stack_top: DEFAULT_STACK_TOP,
            stack_size: DEFAULT_STACK_SIZE,
            brk_base: DEFAULT_BRK_BASE,
            input: Vec::new(),
        }
    }

    /// Sets the data segment.
    pub fn with_data(mut self, data: Vec<u8>) -> GuestProgram {
        self.data = data;
        self
    }

    /// Sets the input stream consumed by the `read` syscall.
    pub fn with_input(mut self, input: Vec<u8>) -> GuestProgram {
        self.input = input;
        self
    }

    /// Number of static instructions in the code image.
    ///
    /// Decodes the image front to back; stops at the first undecodable byte
    /// (data embedded in code is not supported by the loader).
    pub fn static_insn_count(&self) -> usize {
        let mut n = 0;
        let mut off = 0;
        while off < self.code.len() {
            match crate::encode::decode(&self.code[off..]) {
                Ok((_, len)) => {
                    off += len;
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Deterministic FNV-1a fingerprint over every field of the image.
    ///
    /// Engine snapshots embed this so a checkpoint can only be restored
    /// into the program it was taken from; any change to the code, data,
    /// layout or input stream changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            // Length-prefix each field so (e.g.) code/data boundaries
            // cannot alias.
            for b in (bytes.len() as u64).to_le_bytes().iter().chain(bytes.iter()) {
                h = (h ^ u64::from(*b)).wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.code);
        eat(&self.code_base.to_le_bytes());
        eat(&self.data);
        eat(&self.data_base.to_le_bytes());
        eat(&self.entry.to_le_bytes());
        eat(&self.stack_top.to_le_bytes());
        eat(&self.stack_size.to_le_bytes());
        eat(&self.brk_base.to_le_bytes());
        eat(&self.input);
        h
    }

    /// Maps the full image (code, data, stack) into `mem`.
    pub fn map_into(&self, mem: &mut GuestMem) {
        map_segment(mem, self.code_base, &self.code);
        map_segment(mem, self.data_base, &self.data);
        let stack_lo = self.stack_top.wrapping_sub(self.stack_size);
        let first = GuestMem::page_of(stack_lo);
        let last = GuestMem::page_of(self.stack_top.wrapping_sub(1));
        for p in first..=last {
            mem.map_zero(p);
        }
    }
}

fn map_segment(mem: &mut GuestMem, base: u32, bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    let first = GuestMem::page_of(base);
    let last = GuestMem::page_of(base + bytes.len() as u32 - 1);
    for p in first..=last {
        mem.map_zero(p);
    }
    mem.write(base, bytes).expect("segment pages were just mapped");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Gpr;

    #[test]
    fn map_into_covers_segments() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.mov_ri(Gpr::Eax, 1);
        a.halt();
        let p = a.into_program().with_data(vec![1, 2, 3]);
        let mut mem = GuestMem::new();
        p.map_into(&mut mem);
        assert!(mem.is_mapped(p.code_base));
        assert!(mem.is_mapped(p.data_base));
        assert!(mem.is_mapped(p.stack_top - 4));
        assert_eq!(mem.read_u8(p.data_base + 2).unwrap(), 3);
        assert_eq!(p.static_insn_count(), 2);
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let make = || {
            let mut a = Asm::new(DEFAULT_CODE_BASE);
            a.mov_ri(Gpr::Eax, 1);
            a.halt();
            a.into_program().with_data(vec![1, 2, 3])
        };
        let p = make();
        assert_eq!(p.fingerprint(), make().fingerprint());
        let mut q = make();
        q.input = vec![9];
        assert_ne!(p.fingerprint(), q.fingerprint());
        let mut q = make();
        q.entry += 4;
        assert_ne!(p.fingerprint(), q.fingerprint());
        // Moving a byte across the code/data boundary must change it.
        let mut q = make();
        let b = q.code.pop().unwrap();
        q.data.insert(0, b);
        assert_ne!(p.fingerprint(), q.fingerprint());
    }
}
