//! Minimal binary wire codec for engine checkpoints.
//!
//! Snapshots must be byte-stable across runs and hosts, so every field is
//! written little-endian with explicit widths and length prefixes — no
//! platform-sized types on the wire (`usize` travels as `u64`). The codec
//! is deliberately dumb: a flat byte stream with no schema, no framing and
//! no compression. Structure lives in the writers/readers of each crate
//! (every snapshotted type serializes its fields in declaration order,
//! maps in sorted-key order), which is what makes two snapshots of
//! identical state byte-identical.

use std::fmt;

/// Decode failure: the stream ended early or held an impossible value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran past the end of the buffer.
    Truncated {
        /// Byte offset of the failed read.
        at: usize,
        /// What was being read.
        what: &'static str,
    },
    /// A tag, length or enum discriminant held an impossible value.
    Malformed {
        /// Byte offset of the offending value.
        at: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { at, what } => {
                write!(f, "snapshot truncated at byte {at} while reading {what}")
            }
            WireError::Malformed { at, what } => {
                write!(f, "snapshot malformed at byte {at}: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct Wire {
    buf: Vec<u8>,
}

impl Wire {
    /// Creates an empty writer.
    pub fn new() -> Wire {
        Wire { buf: Vec::new() }
    }

    /// Consumes the writer, returning the serialized bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (lossless; NaN
    /// payloads preserved).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a `usize` as `u64` (platform-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `u32` slice (each element little-endian).
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &w in v {
            self.put_u32(w);
        }
    }
}

/// Cursor-based reader over a serialized byte stream.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails if any bytes remain unread (trailing garbage guard).
    ///
    /// # Errors
    /// [`WireError::Malformed`] when the stream has trailing bytes.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed { at: self.pos, what: "trailing bytes after snapshot" })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { at: self.pos, what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of stream.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of stream.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of stream.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of stream.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of stream.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::Malformed`].
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed { at: self.pos - 1, what: "bool byte not 0/1" }),
        }
    }

    /// Reads a `usize` written by [`Wire::put_usize`].
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::Malformed`] when the value
    /// does not fit the platform `usize`.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed { at, what: "usize overflow" })
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::Malformed`] on an
    /// impossible length.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let at = self.pos;
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(WireError::Malformed { at, what: "byte-string length exceeds stream" });
        }
        Ok(self.take(n as usize, "bytes")?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::Malformed`] on bad length
    /// or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let at = self.pos;
        let b = self.get_bytes()?;
        String::from_utf8(b).map_err(|_| WireError::Malformed { at, what: "invalid UTF-8" })
    }

    /// Reads a length-prefixed `u32` slice.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::Malformed`] on an
    /// impossible length.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let at = self.pos;
        let n = self.get_u64()?;
        if n.saturating_mul(4) > self.remaining() as u64 {
            return Err(WireError::Malformed { at, what: "u32-slice length exceeds stream" });
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Wire::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(-0.5);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_usize(123_456);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -0.5);
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_usize().unwrap(), 123_456);
        r.expect_end().unwrap();
    }

    #[test]
    fn strings_and_slices_round_trip() {
        let mut w = Wire::new();
        w.put_bytes(&[1, 2, 3]);
        w.put_str("héllo");
        w.put_u32s(&[7, 8, 9]);
        w.put_bytes(&[]);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_u32s().unwrap(), vec![7, 8, 9]);
        assert_eq!(r.get_bytes().unwrap(), Vec::<u8>::new());
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_malformed_are_detected() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(WireError::Truncated { .. })));

        // Length prefix claims more bytes than the stream holds.
        let mut w = Wire::new();
        w.put_u64(1_000);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(WireError::Malformed { .. })));

        // Bad bool byte.
        let mut r = WireReader::new(&[7]);
        assert!(matches!(r.get_bool(), Err(WireError::Malformed { .. })));

        // Trailing bytes.
        let r = WireReader::new(&[0]);
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn identical_writes_are_byte_identical() {
        let emit = || {
            let mut w = Wire::new();
            w.put_str("state");
            w.put_u64(99);
            w.put_u32s(&[1, 2, 3]);
            w.finish()
        };
        assert_eq!(emit(), emit());
    }
}
