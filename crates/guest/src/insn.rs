//! The guest instruction set.

use crate::reg::{Addr, Cond, Fpr, Gpr, Width};
use std::fmt;

/// Two-operand ALU operations (flag-writing, like their x86 namesakes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    Add = 0,
    Sub = 1,
    Adc = 2,
    Sbb = 3,
    And = 4,
    Or = 5,
    Xor = 6,
}

impl AluOp {
    pub const ALL: [AluOp; 7] =
        [AluOp::Add, AluOp::Sub, AluOp::Adc, AluOp::Sbb, AluOp::And, AluOp::Or, AluOp::Xor];

    /// Decodes a 3-bit ALU op field.
    ///
    /// # Panics
    /// Panics if `idx >= 7`.
    pub fn from_index(idx: usize) -> AluOp {
        Self::ALL[idx]
    }

    /// True for `Adc`/`Sbb`, which read CF as an input.
    pub fn reads_carry(self) -> bool {
        matches!(self, AluOp::Adc | AluOp::Sbb)
    }
}

/// Single-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum UnaryOp {
    /// Increment; leaves CF unchanged (x86 quirk preserved).
    Inc = 0,
    /// Decrement; leaves CF unchanged.
    Dec = 1,
    /// Bitwise not; writes no flags.
    Not = 2,
    /// Two's complement negate.
    Neg = 3,
}

impl UnaryOp {
    pub const ALL: [UnaryOp; 4] = [UnaryOp::Inc, UnaryOp::Dec, UnaryOp::Not, UnaryOp::Neg];

    /// Decodes a 2-bit unary op field.
    ///
    /// # Panics
    /// Panics if `idx >= 4`.
    pub fn from_index(idx: usize) -> UnaryOp {
        Self::ALL[idx]
    }
}

/// Shift and rotate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ShiftOp {
    Shl = 0,
    Shr = 1,
    Sar = 2,
    Rol = 3,
    Ror = 4,
}

impl ShiftOp {
    pub const ALL: [ShiftOp; 5] =
        [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar, ShiftOp::Rol, ShiftOp::Ror];

    /// Decodes a 3-bit shift op field.
    ///
    /// # Panics
    /// Panics if `idx >= 5`.
    pub fn from_index(idx: usize) -> ShiftOp {
        Self::ALL[idx]
    }
}

/// Shift amount: an immediate or the low bits of `ECX` (x86's `CL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftAmount {
    Imm(u8),
    Cl,
}

/// Repeat-prefix condition for `SCAS`/`CMPS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RepCond {
    /// `REPE`: repeat while equal (ZF set) and ECX != 0.
    Eq = 0,
    /// `REPNE`: repeat while not equal (ZF clear) and ECX != 0.
    Ne = 1,
}

/// Binary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FBinOp {
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    Min = 4,
    Max = 5,
}

impl FBinOp {
    pub const ALL: [FBinOp; 6] =
        [FBinOp::Add, FBinOp::Sub, FBinOp::Mul, FBinOp::Div, FBinOp::Min, FBinOp::Max];

    /// Decodes a 3-bit FP binary op field.
    ///
    /// # Panics
    /// Panics if `idx >= 6`.
    pub fn from_index(idx: usize) -> FBinOp {
        Self::ALL[idx]
    }
}

/// Unary floating-point operations.
///
/// `Sin` and `Cos` are architecturally defined as the fixed polynomial in
/// [`crate::softfp`]; a host implementation must evaluate the identical
/// operation sequence to be bit-compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FUnOp {
    Sqrt = 0,
    Abs = 1,
    Neg = 2,
    Sin = 3,
    Cos = 4,
}

impl FUnOp {
    pub const ALL: [FUnOp; 5] = [FUnOp::Sqrt, FUnOp::Abs, FUnOp::Neg, FUnOp::Sin, FUnOp::Cos];

    /// Decodes a 3-bit FP unary op field.
    ///
    /// # Panics
    /// Panics if `idx >= 5`.
    pub fn from_index(idx: usize) -> FUnOp {
        Self::ALL[idx]
    }

    /// Software-emulated on the host (no hardware functional unit): the
    /// translator expands these into a call to a host runtime routine,
    /// which is where Physicsbench's high emulation cost comes from.
    pub fn is_soft(self) -> bool {
        matches!(self, FUnOp::Sin | FUnOp::Cos)
    }
}

/// A guest instruction.
///
/// The set is a faithful user-level x86 subset re-spelled as an enum:
/// moves, memory-operand ALU forms, pushes/pops, shifts, multiplies and
/// divides, conditional moves/sets, direct/indirect control flow, string
/// operations with `REP` prefixes, scalar floating point with
/// transcendentals, and a syscall/halt pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    // -- data movement ------------------------------------------------------
    /// `mov dst, src`.
    MovRR { dst: Gpr, src: Gpr },
    /// `mov dst, imm`.
    MovRI { dst: Gpr, imm: i32 },
    /// Load: `mov dst, [addr]` (`width`+`sign` cover `movzx`/`movsx`).
    Load { dst: Gpr, addr: Addr, width: Width, sign: bool },
    /// Store: `mov [addr], src` (sub-word widths store the low bytes).
    Store { addr: Addr, src: Gpr, width: Width },
    /// `mov [addr], imm`.
    StoreI { addr: Addr, imm: i32, width: Width },
    /// `lea dst, [addr]`: address arithmetic without memory access.
    Lea { dst: Gpr, addr: Addr },
    /// `xchg a, b`.
    Xchg { a: Gpr, b: Gpr },
    /// `cmovcc dst, src`.
    Cmov { cc: Cond, dst: Gpr, src: Gpr },
    /// `setcc dst`: dst = cc ? 1 : 0.
    Setcc { cc: Cond, dst: Gpr },
    /// `push src`.
    Push { src: Gpr },
    /// `push imm`.
    PushI { imm: i32 },
    /// `pop dst`.
    Pop { dst: Gpr },

    // -- integer ALU ---------------------------------------------------------
    /// `op dst, src` (register-register).
    AluRR { op: AluOp, dst: Gpr, src: Gpr },
    /// `op dst, imm`.
    AluRI { op: AluOp, dst: Gpr, imm: i32 },
    /// `op dst, [addr]` (register-memory).
    AluRM { op: AluOp, dst: Gpr, addr: Addr },
    /// `op [addr], src` (read-modify-write memory form).
    AluMR { op: AluOp, addr: Addr, src: Gpr },
    /// `op [addr], imm` (read-modify-write memory form).
    AluMI { op: AluOp, addr: Addr, imm: i32 },
    /// `cmp a, b`.
    CmpRR { a: Gpr, b: Gpr },
    /// `cmp a, imm`.
    CmpRI { a: Gpr, imm: i32 },
    /// `cmp a, [addr]`.
    CmpRM { a: Gpr, addr: Addr },
    /// `test a, b` (flags of `a & b`).
    TestRR { a: Gpr, b: Gpr },
    /// `test a, imm`.
    TestRI { a: Gpr, imm: i32 },
    /// `inc`/`dec`/`not`/`neg dst`.
    Unary { op: UnaryOp, dst: Gpr },
    /// Read-modify-write unary on memory.
    UnaryM { op: UnaryOp, addr: Addr, width: Width },
    /// Shifts and rotates.
    Shift { op: ShiftOp, dst: Gpr, amount: ShiftAmount },
    /// `imul dst, src` (truncating 32-bit product; CF/OF on overflow).
    Imul { dst: Gpr, src: Gpr },
    /// `imul dst, src, imm`.
    ImulI { dst: Gpr, src: Gpr, imm: i32 },
    /// Signed division `dst = dst / src` (GISA deviates from x86's
    /// EDX:EAX pair form; quotient only, no flags).
    Idiv { dst: Gpr, src: Gpr },
    /// Signed remainder `dst = dst % src`.
    Irem { dst: Gpr, src: Gpr },

    // -- control flow --------------------------------------------------------
    /// Unconditional relative jump (target = end-of-insn + rel).
    Jmp { rel: i32 },
    /// Conditional relative jump.
    Jcc { cc: Cond, rel: i32 },
    /// Indirect jump through a register.
    JmpInd { target: Gpr },
    /// Relative call: pushes the return address.
    Call { rel: i32 },
    /// Indirect call through a register.
    CallInd { target: Gpr },
    /// Return: pops the return address.
    Ret,

    // -- string operations ----------------------------------------------------
    /// `movs`: `[EDI] <- [ESI]`, advance both; with `rep`, repeat ECX times.
    Movs { width: Width, rep: bool },
    /// `stos`: `[EDI] <- EAX`, advance EDI.
    Stos { width: Width, rep: bool },
    /// `lods`: `EAX <- [ESI]`, advance ESI.
    Lods { width: Width, rep: bool },
    /// `scas`: compare EAX with `[EDI]`, advance EDI.
    Scas { width: Width, rep: Option<RepCond> },
    /// `cmps`: compare `[ESI]` with `[EDI]`, advance both.
    Cmps { width: Width, rep: Option<RepCond> },

    // -- floating point --------------------------------------------------------
    /// Load an `f64` from memory.
    Fld { dst: Fpr, addr: Addr },
    /// Store an `f64` to memory.
    Fst { addr: Addr, src: Fpr },
    /// Load an immediate `f64` (by bit pattern).
    FldI { dst: Fpr, bits: u64 },
    /// FP register move.
    FmovRR { dst: Fpr, src: Fpr },
    /// FP binary operation `dst = dst op src`.
    Fbin { op: FBinOp, dst: Fpr, src: Fpr },
    /// FP binary operation with memory source `dst = dst op [addr]`.
    FbinM { op: FBinOp, dst: Fpr, addr: Addr },
    /// FP unary operation (in place).
    Funary { op: FUnOp, dst: Fpr },
    /// FP compare, sets ZF/CF/PF like x86 `comisd` (PF = unordered).
    Fcmp { a: Fpr, b: Fpr },
    /// Convert signed integer to f64.
    Cvtsi2f { dst: Fpr, src: Gpr },
    /// Convert f64 to signed integer (truncating).
    Cvtf2si { dst: Gpr, src: Fpr },

    // -- system -----------------------------------------------------------------
    /// System call: number in EAX, arguments in EBX/ECX/EDX, result in EAX.
    Syscall,
    /// Stop the program.
    Halt,
    /// No operation.
    Nop,
}

/// Coarse classification used by profilers and the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnClass {
    Alu,
    Mem,
    Branch,
    Call,
    Ret,
    String,
    Fp,
    FpSoft,
    System,
}

impl Insn {
    /// Classifies the instruction.
    pub fn class(&self) -> InsnClass {
        use Insn::*;
        match self {
            MovRR { .. } | MovRI { .. } | Lea { .. } | Xchg { .. } | Cmov { .. }
            | Setcc { .. } | AluRR { .. } | AluRI { .. } | CmpRR { .. } | CmpRI { .. }
            | TestRR { .. } | TestRI { .. } | Unary { .. } | Shift { .. } | Imul { .. }
            | ImulI { .. } | Idiv { .. } | Irem { .. } | Nop => InsnClass::Alu,
            Load { .. } | Store { .. } | StoreI { .. } | Push { .. } | PushI { .. }
            | Pop { .. } | AluRM { .. } | AluMR { .. } | AluMI { .. } | CmpRM { .. }
            | UnaryM { .. } => InsnClass::Mem,
            Jmp { .. } | Jcc { .. } | JmpInd { .. } => InsnClass::Branch,
            Call { .. } | CallInd { .. } => InsnClass::Call,
            Ret => InsnClass::Ret,
            Movs { .. } | Stos { .. } | Lods { .. } | Scas { .. } | Cmps { .. } => {
                InsnClass::String
            }
            Funary { op, .. } if op.is_soft() => InsnClass::FpSoft,
            Fld { .. } | Fst { .. } | FldI { .. } | FmovRR { .. } | Fbin { .. }
            | FbinM { .. } | Funary { .. } | Fcmp { .. } | Cvtsi2f { .. } | Cvtf2si { .. } => {
                InsnClass::Fp
            }
            Syscall | Halt => InsnClass::System,
        }
    }

    /// True if this instruction ends a basic block.
    pub fn ends_block(&self) -> bool {
        use Insn::*;
        matches!(
            self,
            Jmp { .. }
                | Jcc { .. }
                | JmpInd { .. }
                | Call { .. }
                | CallInd { .. }
                | Ret
                | Syscall
                | Halt
        )
    }

    /// True for control transfers whose target is not a static constant.
    pub fn is_indirect(&self) -> bool {
        matches!(self, Insn::JmpInd { .. } | Insn::CallInd { .. } | Insn::Ret)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Insn::*;
        match self {
            MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            MovRI { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Load { dst, addr, width, sign } => {
                write!(f, "mov{} {dst}, {addr}", suffix(*width, *sign))
            }
            Store { addr, src, width } => write!(f, "mov{} {addr}, {src}", suffix(*width, false)),
            StoreI { addr, imm, width } => {
                write!(f, "mov{} {addr}, {imm:#x}", suffix(*width, false))
            }
            Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            Xchg { a, b } => write!(f, "xchg {a}, {b}"),
            Cmov { cc, dst, src } => write!(f, "cmov{cc:?} {dst}, {src}"),
            Setcc { cc, dst } => write!(f, "set{cc:?} {dst}"),
            Push { src } => write!(f, "push {src}"),
            PushI { imm } => write!(f, "push {imm:#x}"),
            Pop { dst } => write!(f, "pop {dst}"),
            AluRR { op, dst, src } => write!(f, "{op:?} {dst}, {src}"),
            AluRI { op, dst, imm } => write!(f, "{op:?} {dst}, {imm:#x}"),
            AluRM { op, dst, addr } => write!(f, "{op:?} {dst}, {addr}"),
            AluMR { op, addr, src } => write!(f, "{op:?} {addr}, {src}"),
            AluMI { op, addr, imm } => write!(f, "{op:?} {addr}, {imm:#x}"),
            CmpRR { a, b } => write!(f, "cmp {a}, {b}"),
            CmpRI { a, imm } => write!(f, "cmp {a}, {imm:#x}"),
            CmpRM { a, addr } => write!(f, "cmp {a}, {addr}"),
            TestRR { a, b } => write!(f, "test {a}, {b}"),
            TestRI { a, imm } => write!(f, "test {a}, {imm:#x}"),
            Unary { op, dst } => write!(f, "{op:?} {dst}"),
            UnaryM { op, addr, .. } => write!(f, "{op:?} {addr}"),
            Shift { op, dst, amount } => match amount {
                ShiftAmount::Imm(n) => write!(f, "{op:?} {dst}, {n}"),
                ShiftAmount::Cl => write!(f, "{op:?} {dst}, cl"),
            },
            Imul { dst, src } => write!(f, "imul {dst}, {src}"),
            ImulI { dst, src, imm } => write!(f, "imul {dst}, {src}, {imm:#x}"),
            Idiv { dst, src } => write!(f, "idiv {dst}, {src}"),
            Irem { dst, src } => write!(f, "irem {dst}, {src}"),
            Jmp { rel } => write!(f, "jmp {rel:+}"),
            Jcc { cc, rel } => write!(f, "j{cc:?} {rel:+}"),
            JmpInd { target } => write!(f, "jmp {target}"),
            Call { rel } => write!(f, "call {rel:+}"),
            CallInd { target } => write!(f, "call {target}"),
            Ret => write!(f, "ret"),
            Movs { width, rep } => write!(f, "{}movs{}", rep_str(*rep), w(*width)),
            Stos { width, rep } => write!(f, "{}stos{}", rep_str(*rep), w(*width)),
            Lods { width, rep } => write!(f, "{}lods{}", rep_str(*rep), w(*width)),
            Scas { width, rep } => write!(f, "{}scas{}", repc_str(*rep), w(*width)),
            Cmps { width, rep } => write!(f, "{}cmps{}", repc_str(*rep), w(*width)),
            Fld { dst, addr } => write!(f, "fld {dst}, {addr}"),
            Fst { addr, src } => write!(f, "fst {addr}, {src}"),
            FldI { dst, bits } => write!(f, "fldi {dst}, {}", f64::from_bits(*bits)),
            FmovRR { dst, src } => write!(f, "fmov {dst}, {src}"),
            Fbin { op, dst, src } => write!(f, "f{op:?} {dst}, {src}"),
            FbinM { op, dst, addr } => write!(f, "f{op:?} {dst}, {addr}"),
            Funary { op, dst } => write!(f, "f{op:?} {dst}"),
            Fcmp { a, b } => write!(f, "fcmp {a}, {b}"),
            Cvtsi2f { dst, src } => write!(f, "cvtsi2f {dst}, {src}"),
            Cvtf2si { dst, src } => write!(f, "cvtf2si {dst}, {src}"),
            Syscall => write!(f, "syscall"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

fn suffix(width: Width, sign: bool) -> &'static str {
    match (width, sign) {
        (Width::D, _) => "",
        (Width::B, false) => "zxb",
        (Width::B, true) => "sxb",
        (Width::W, false) => "zxw",
        (Width::W, true) => "sxw",
    }
}

fn w(width: Width) -> &'static str {
    match width {
        Width::B => "b",
        Width::W => "w",
        Width::D => "d",
    }
}

fn rep_str(rep: bool) -> &'static str {
    if rep {
        "rep "
    } else {
        ""
    }
}

fn repc_str(rep: Option<RepCond>) -> &'static str {
    match rep {
        None => "",
        Some(RepCond::Eq) => "repe ",
        Some(RepCond::Ne) => "repne ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_enders() {
        assert!(Insn::Ret.ends_block());
        assert!(Insn::Jcc { cc: Cond::E, rel: 4 }.ends_block());
        assert!(Insn::Syscall.ends_block());
        assert!(!Insn::Nop.ends_block());
        assert!(!Insn::Movs { width: Width::B, rep: true }.ends_block());
    }

    #[test]
    fn classes() {
        assert_eq!(Insn::Funary { op: FUnOp::Sin, dst: Fpr::new(0) }.class(), InsnClass::FpSoft);
        assert_eq!(Insn::Funary { op: FUnOp::Sqrt, dst: Fpr::new(0) }.class(), InsnClass::Fp);
        assert_eq!(Insn::Push { src: Gpr::Eax }.class(), InsnClass::Mem);
        assert_eq!(Insn::Ret.class(), InsnClass::Ret);
    }

    #[test]
    fn display_is_nonempty() {
        let samples = [
            Insn::MovRI { dst: Gpr::Eax, imm: 5 },
            Insn::Shift { op: ShiftOp::Shl, dst: Gpr::Ebx, amount: ShiftAmount::Cl },
            Insn::Cmps { width: Width::B, rep: Some(RepCond::Ne) },
        ];
        for s in samples {
            assert!(!format!("{s}").is_empty());
        }
    }
}
