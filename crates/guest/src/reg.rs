//! Registers, flags, condition codes, addressing modes and operand widths.

use std::fmt;

/// A guest general-purpose register.
///
/// The eight registers keep their x86 names; `Esp` is the stack pointer
/// used implicitly by `push`/`pop`/`call`/`ret`, `Esi`/`Edi`/`Ecx` are used
/// implicitly by the string instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Gpr {
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
}

impl Gpr {
    /// All registers in encoding order.
    pub const ALL: [Gpr; 8] = [
        Gpr::Eax,
        Gpr::Ecx,
        Gpr::Edx,
        Gpr::Ebx,
        Gpr::Esp,
        Gpr::Ebp,
        Gpr::Esi,
        Gpr::Edi,
    ];

    /// The register's 3-bit encoding index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes a 3-bit index back into a register.
    ///
    /// # Panics
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn from_index(idx: usize) -> Gpr {
        Self::ALL[idx]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Gpr::Eax => "eax",
            Gpr::Ecx => "ecx",
            Gpr::Edx => "edx",
            Gpr::Ebx => "ebx",
            Gpr::Esp => "esp",
            Gpr::Ebp => "ebp",
            Gpr::Esi => "esi",
            Gpr::Edi => "edi",
        };
        f.write_str(name)
    }
}

/// A guest floating-point register (`f64`-valued).
///
/// Unlike real x87 these are directly addressed rather than a stack; this is
/// the same simplification SSE2 made and it does not change any behaviour
/// the paper measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fpr(pub u8);

impl Fpr {
    /// Number of architectural FP registers.
    pub const COUNT: u8 = 8;

    /// Creates a register from its index.
    ///
    /// # Panics
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn new(idx: u8) -> Fpr {
        assert!(idx < Self::COUNT, "FP register index out of range: {idx}");
        Fpr(idx)
    }

    /// The register's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The guest flags register.
///
/// GISA keeps the five x86 status flags that user code can observe through
/// conditional instructions. Every flag-writing instruction defines all of
/// its output flags deterministically (GISA has no "undefined" flag states,
/// so translated code can be validated bit-exactly against the interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Carry flag: unsigned overflow / borrow.
    pub cf: bool,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag: bit 31 of the result.
    pub sf: bool,
    /// Overflow flag: signed overflow.
    pub of: bool,
    /// Parity flag: even parity of the least-significant result byte.
    pub pf: bool,
}

impl Flags {
    /// Sets ZF, SF and PF from an ALU result (the "result flags").
    #[inline]
    pub fn set_result(&mut self, r: u32) {
        self.zf = r == 0;
        self.sf = (r as i32) < 0;
        self.pf = (r as u8).count_ones().is_multiple_of(2);
    }

    /// Packs the flags into a 5-bit integer (CF|ZF|SF|OF|PF from bit 0).
    #[inline]
    pub fn to_bits(self) -> u8 {
        (self.cf as u8)
            | (self.zf as u8) << 1
            | (self.sf as u8) << 2
            | (self.of as u8) << 3
            | (self.pf as u8) << 4
    }

    /// Unpacks flags produced by [`Flags::to_bits`].
    #[inline]
    pub fn from_bits(bits: u8) -> Flags {
        Flags {
            cf: bits & 1 != 0,
            zf: bits & 2 != 0,
            sf: bits & 4 != 0,
            of: bits & 8 != 0,
            pf: bits & 16 != 0,
        }
    }

    /// Evaluates an x86 condition code against these flags.
    #[inline]
    pub fn cond(&self, cc: Cond) -> bool {
        match cc {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !(self.cf || self.zf),
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{}]",
            if self.cf { 'C' } else { '-' },
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.of { 'O' } else { '-' },
            if self.pf { 'P' } else { '-' },
        )
    }
}

/// x86 condition codes, used by `Jcc`, `SETcc` and `CMOVcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow.
    O = 0,
    /// Not overflow.
    No = 1,
    /// Below (unsigned <).
    B = 2,
    /// Above or equal (unsigned >=).
    Ae = 3,
    /// Equal.
    E = 4,
    /// Not equal.
    Ne = 5,
    /// Below or equal (unsigned <=).
    Be = 6,
    /// Above (unsigned >).
    A = 7,
    /// Sign (negative).
    S = 8,
    /// Not sign.
    Ns = 9,
    /// Parity even.
    P = 10,
    /// Parity odd.
    Np = 11,
    /// Less (signed <).
    L = 12,
    /// Greater or equal (signed >=).
    Ge = 13,
    /// Less or equal (signed <=).
    Le = 14,
    /// Greater (signed >).
    G = 15,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// 4-bit encoding of the condition.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes a 4-bit condition index.
    ///
    /// # Panics
    /// Panics if `idx >= 16`.
    #[inline]
    pub fn from_index(idx: usize) -> Cond {
        Self::ALL[idx]
    }

    /// The condition that is true exactly when `self` is false.
    #[inline]
    pub fn negate(self) -> Cond {
        // Conditions come in adjacent true/false pairs.
        Cond::from_index(self.index() ^ 1)
    }

    /// The set of flags this condition reads, as a [`Flags::to_bits`]-style
    /// mask. Used by the translator's lazy flag materialization.
    pub fn flags_read(self) -> u8 {
        let (cf, zf, sf, of, pf) = match self {
            Cond::O | Cond::No => (false, false, false, true, false),
            Cond::B | Cond::Ae => (true, false, false, false, false),
            Cond::E | Cond::Ne => (false, true, false, false, false),
            Cond::Be | Cond::A => (true, true, false, false, false),
            Cond::S | Cond::Ns => (false, false, true, false, false),
            Cond::P | Cond::Np => (false, false, false, false, true),
            Cond::L | Cond::Ge => (false, false, true, true, false),
            Cond::Le | Cond::G => (false, true, true, true, false),
        };
        (cf as u8) | (zf as u8) << 1 | (sf as u8) << 2 | (of as u8) << 3 | (pf as u8) << 4
    }
}

/// Scale factor of an indexed addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Scale {
    S1 = 0,
    S2 = 1,
    S4 = 2,
    S8 = 3,
}

impl Scale {
    /// The multiplication factor (1, 2, 4 or 8).
    #[inline]
    pub fn factor(self) -> u32 {
        1 << (self as u32)
    }

    /// log2 of the factor.
    #[inline]
    pub fn shift(self) -> u32 {
        self as u32
    }

    /// Decodes a 2-bit scale field.
    ///
    /// # Panics
    /// Panics if `idx >= 4`.
    #[inline]
    pub fn from_index(idx: usize) -> Scale {
        [Scale::S1, Scale::S2, Scale::S4, Scale::S8][idx]
    }
}

/// An x86-style memory operand: `[base + index * scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Optional base register.
    pub base: Option<Gpr>,
    /// Optional index register.
    pub index: Option<Gpr>,
    /// Scale applied to the index register.
    pub scale: Scale,
    /// Signed displacement.
    pub disp: i32,
}

impl Addr {
    /// An absolute address (displacement only).
    pub fn abs(disp: u32) -> Addr {
        Addr { base: None, index: None, scale: Scale::S1, disp: disp as i32 }
    }

    /// `[base]`.
    pub fn base(base: Gpr) -> Addr {
        Addr { base: Some(base), index: None, scale: Scale::S1, disp: 0 }
    }

    /// `[base + disp]`.
    pub fn base_disp(base: Gpr, disp: i32) -> Addr {
        Addr { base: Some(base), index: None, scale: Scale::S1, disp }
    }

    /// `[base + index * scale]`.
    pub fn base_index(base: Gpr, index: Gpr, scale: Scale) -> Addr {
        Addr { base: Some(base), index: Some(index), scale, disp: 0 }
    }

    /// `[base + index * scale + disp]`.
    pub fn full(base: Gpr, index: Gpr, scale: Scale, disp: i32) -> Addr {
        Addr { base: Some(base), index: Some(index), scale, disp }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{}", self.scale.factor())?;
            first = false;
        }
        if self.disp != 0 || first {
            if !first && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{:#x}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// Operand width for memory accesses and string operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Width {
    /// 8-bit.
    B = 0,
    /// 16-bit.
    W = 1,
    /// 32-bit.
    D = 2,
}

impl Width {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        1 << (self as u32)
    }

    /// Decodes a 2-bit width field.
    ///
    /// # Panics
    /// Panics if `idx >= 3`.
    #[inline]
    pub fn from_index(idx: usize) -> Width {
        [Width::B, Width::W, Width::D][idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_index_roundtrip() {
        for r in Gpr::ALL {
            assert_eq!(Gpr::from_index(r.index()), r);
        }
    }

    #[test]
    fn cond_negation_is_involutive_and_opposite() {
        let mut fl = Flags::default();
        fl.set_result(0); // ZF set
        for cc in Cond::ALL {
            assert_eq!(cc.negate().negate(), cc);
            assert_ne!(fl.cond(cc), fl.cond(cc.negate()), "{cc:?}");
        }
    }

    #[test]
    fn flags_bits_roundtrip() {
        for bits in 0..32u8 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn parity_matches_x86_definition() {
        let mut fl = Flags::default();
        fl.set_result(0x0000_0300); // low byte 0x00 -> even parity (0 ones)
        assert!(fl.pf);
        fl.set_result(0x1); // one bit -> odd
        assert!(!fl.pf);
        fl.set_result(0x3); // two bits -> even
        assert!(fl.pf);
    }

    #[test]
    fn cond_eval_signed_unsigned() {
        // 3 - 5: CF (borrow), SF, no OF.
        let mut fl = Flags::default();
        let a: u32 = 3;
        let b: u32 = 5;
        let r = a.wrapping_sub(b);
        fl.cf = a < b;
        fl.of = ((a ^ b) & (a ^ r)) >> 31 != 0;
        fl.set_result(r);
        assert!(fl.cond(Cond::B));
        assert!(fl.cond(Cond::L));
        assert!(!fl.cond(Cond::E));
        assert!(fl.cond(Cond::Le));
        assert!(!fl.cond(Cond::G));
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::S1.factor(), 1);
        assert_eq!(Scale::S8.factor(), 8);
        assert_eq!(Width::D.bytes(), 4);
    }

    #[test]
    fn addr_display_covers_forms() {
        let a = Addr::full(Gpr::Ebx, Gpr::Ecx, Scale::S4, -8);
        let s = format!("{a}");
        assert!(s.contains("ebx") && s.contains("ecx*4"));
        assert_eq!(format!("{}", Addr::abs(0x100)), "[0x100]");
    }
}
