//! A small, dependency-free deterministic PRNG.
//!
//! The workspace builds in sandboxed environments with no crates.io
//! access, so random program/workload generation uses this SplitMix64
//! generator instead of the `rand` crate. The API mirrors the subset of
//! `rand::Rng` the generators use (`gen`, `gen_bool`, `gen_range`), so
//! call sites read the same.
//!
//! All generation is seeded and deterministic: the same seed yields the
//! same stream on every platform (SplitMix64 is defined purely over
//! wrapping 64-bit arithmetic).

/// The random-source trait: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly random value of a samplable type.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Returns a uniformly random value in `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// SplitMix64: tiny, fast, and statistically solid for test/workload
/// generation purposes (it seeds xoshiro in the reference code).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }
}

/// Derives an independent stream seed from a base seed and a stream
/// index, so per-job/per-candidate generators are decorrelated but fully
/// reproducible (`derive(s, i)` is a pure function; neighbouring indices
/// yield unrelated streams).
///
/// Two SplitMix64 finalizer rounds over `seed ^ mix(stream)`: a plain
/// `seed + stream` would make stream `i` of seed `s` identical to stream
/// `i+1` of seed `s-1`; the finalizer breaks that shear.
pub fn derive(seed: u64, stream: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    mix(seed ^ mix(stream))
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a generator.
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly, producing a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Element types drawable from half-open/inclusive ranges.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Unbiased bounded draw via Lemire-style rejection on the widened span.
fn bounded<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: accept draws below the largest multiple of
    // `span` that fits in 2^64 (at most one retry expected for any span).
    let rem = ((u64::MAX % span) + 1) % span; // 2^64 mod span
    let zone = u64::MAX - rem;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = bounded(rng, span + 1);
                    ((lo as $wide as u64).wrapping_add(off)) as $t
                } else {
                    assert!(lo < hi, "gen_range on empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    let off = bounded(rng, span);
                    ((lo as $wide as u64).wrapping_add(off)) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_range<R: Rng>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range on empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let v = r.gen_range(-100i32..100);
            assert!((-100..100).contains(&v));
            let v = r.gen_range(0u32..1);
            assert_eq!(v, 0);
            let v = r.gen_range(5u8..=5);
            assert_eq!(v, 5);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_ranges_work() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let _ = r.gen_range(i32::MIN..i32::MAX);
            let _ = r.gen_range(u64::MIN..=u64::MAX);
        }
    }

    #[test]
    fn derive_streams_are_independent_and_reproducible() {
        assert_eq!(derive(42, 7), derive(42, 7));
        // Distinct streams (and distinct seeds) give distinct streams.
        assert_ne!(derive(42, 7), derive(42, 8));
        assert_ne!(derive(42, 7), derive(43, 7));
        // The additive shear `derive(s, i) == derive(s-1, i+1)` must not
        // hold — that is exactly what a bare `seed + stream` would do.
        assert_ne!(derive(42, 7), derive(41, 8));
        // First draws of neighbouring streams differ too.
        let mut ra = SmallRng::seed_from_u64(derive(1, 0));
        let mut rb = SmallRng::seed_from_u64(derive(1, 1));
        assert_ne!(ra.next_u64(), rb.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) measured {frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn range_values_cover_the_domain() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
