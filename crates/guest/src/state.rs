//! Architectural guest state.

use crate::mem::GuestMem;
use crate::program::GuestProgram;
use crate::reg::{Flags, Fpr, Gpr};

/// The complete architectural state of the guest: registers, flags,
/// instruction pointer and memory.
///
/// Both DARCO components carry one of these. The authoritative x86
/// component's copy is ground truth; the co-designed component's copy is
/// the *emulated* state that translation/optimization must keep equal to it
/// at every synchronization point.
#[derive(Debug, Clone, Default)]
pub struct GuestState {
    gprs: [u32; 8],
    fprs: [f64; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Status flags.
    pub flags: Flags,
    /// Paged memory.
    pub mem: GuestMem,
}

impl GuestState {
    /// Creates a zeroed state with empty memory.
    pub fn new() -> GuestState {
        GuestState::default()
    }

    /// Boots a program with its full image mapped (authoritative component).
    pub fn boot(program: &GuestProgram) -> GuestState {
        let mut st = GuestState::boot_regs_only(program);
        program.map_into(&mut st.mem);
        st
    }

    /// Boots only the register state (co-designed component): memory starts
    /// empty and pages arrive through data-request synchronization.
    pub fn boot_regs_only(program: &GuestProgram) -> GuestState {
        let mut st = GuestState::new();
        st.eip = program.entry;
        st.set_gpr(Gpr::Esp, program.stack_top);
        st
    }

    /// Reads a general-purpose register.
    #[inline]
    pub fn gpr(&self, r: Gpr) -> u32 {
        self.gprs[r.index()]
    }

    /// Writes a general-purpose register.
    #[inline]
    pub fn set_gpr(&mut self, r: Gpr, v: u32) {
        self.gprs[r.index()] = v;
    }

    /// Reads an FP register.
    #[inline]
    pub fn fpr(&self, r: Fpr) -> f64 {
        self.fprs[r.index()]
    }

    /// Writes an FP register.
    #[inline]
    pub fn set_fpr(&mut self, r: Fpr, v: f64) {
        self.fprs[r.index()] = v;
    }

    /// All GPR values in encoding order.
    pub fn gprs(&self) -> [u32; 8] {
        self.gprs
    }

    /// All FPR values in encoding order.
    pub fn fprs(&self) -> [f64; 8] {
        self.fprs
    }

    /// Copies the register file (GPRs, FPRs, EIP, flags) from another state,
    /// leaving memory untouched. This is the "initial x86 architectural
    /// state" message of the paper's Initialization phase.
    pub fn copy_regs_from(&mut self, other: &GuestState) {
        self.gprs = other.gprs;
        self.fprs = other.fprs;
        self.eip = other.eip;
        self.flags = other.flags;
    }

    /// Serializes the full architectural state (registers, flags, EIP and
    /// memory) into `w`. FPRs travel as IEEE-754 bit patterns.
    pub fn snapshot_into(&self, w: &mut crate::wire::Wire) {
        for g in self.gprs {
            w.put_u32(g);
        }
        for f in self.fprs {
            w.put_f64(f);
        }
        w.put_u32(self.eip);
        w.put_u8(self.flags.to_bits());
        self.mem.snapshot_into(w);
    }

    /// Restores the full architectural state from a
    /// [`GuestState::snapshot_into`] stream.
    ///
    /// # Errors
    /// Propagates wire decode failures.
    pub fn restore_from(&mut self, r: &mut crate::wire::WireReader<'_>) -> Result<(), crate::wire::WireError> {
        for g in &mut self.gprs {
            *g = r.get_u32()?;
        }
        for f in &mut self.fprs {
            *f = r.get_f64()?;
        }
        self.eip = r.get_u32()?;
        self.flags = Flags::from_bits(r.get_u8()?);
        self.mem.restore_from(r)
    }

    /// Compares the register state against another, returning a description
    /// of the first mismatch.
    ///
    /// `check_flags` controls whether the flags register participates: with
    /// lazy flag materialization the co-designed component only guarantees
    /// flags that a consumer observed (see `DESIGN.md` §4), matching the
    /// paper's "write the flag register only if consumed" optimization.
    pub fn first_reg_mismatch(&self, other: &GuestState, check_flags: bool) -> Option<String> {
        for r in Gpr::ALL {
            if self.gpr(r) != other.gpr(r) {
                return Some(format!(
                    "{r}: {:#010x} != {:#010x}",
                    self.gpr(r),
                    other.gpr(r)
                ));
            }
        }
        for i in 0..8 {
            let (a, b) = (self.fprs[i], other.fprs[i]);
            if a.to_bits() != b.to_bits() {
                return Some(format!("f{i}: {a:?} ({:#x}) != {b:?} ({:#x})", a.to_bits(), b.to_bits()));
            }
        }
        if self.eip != other.eip {
            return Some(format!("eip: {:#010x} != {:#010x}", self.eip, other.eip));
        }
        if check_flags && self.flags != other.flags {
            return Some(format!("flags: {} != {}", self.flags, other.flags));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::program::DEFAULT_CODE_BASE;

    #[test]
    fn boot_sets_entry_and_stack() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.halt();
        let p = a.into_program();
        let st = GuestState::boot(&p);
        assert_eq!(st.eip, p.entry);
        assert_eq!(st.gpr(Gpr::Esp), p.stack_top);
        assert!(st.mem.is_mapped(p.entry));

        let st2 = GuestState::boot_regs_only(&p);
        assert!(!st2.mem.is_mapped(p.entry));
        assert_eq!(st2.eip, p.entry);
    }

    #[test]
    fn mismatch_reporting() {
        let mut a = GuestState::new();
        let mut b = GuestState::new();
        assert_eq!(a.first_reg_mismatch(&b, true), None);
        b.set_gpr(Gpr::Ebx, 7);
        assert!(a.first_reg_mismatch(&b, true).unwrap().contains("ebx"));
        b.set_gpr(Gpr::Ebx, 0);
        b.flags.cf = true;
        assert!(a.first_reg_mismatch(&b, true).unwrap().contains("flags"));
        assert_eq!(a.first_reg_mismatch(&b, false), None);
        // NaN payloads are compared bitwise, not with ==.
        a.set_fpr(Fpr::new(0), f64::NAN);
        b.set_fpr(Fpr::new(0), f64::NAN);
        assert_eq!(a.first_reg_mismatch(&b, false), None);
    }

    #[test]
    fn state_snapshot_round_trips() {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        a.halt();
        let p = a.into_program();
        let mut st = GuestState::boot(&p);
        st.set_gpr(Gpr::Eax, 0x1234);
        st.set_fpr(Fpr::new(3), -2.5);
        st.flags.zf = true;
        st.mem.write_u32(p.stack_top - 8, 0xBEEF).unwrap();

        let mut w = crate::wire::Wire::new();
        st.snapshot_into(&mut w);
        let bytes = w.finish();

        let mut out = GuestState::new();
        let mut r = crate::wire::WireReader::new(&bytes);
        out.restore_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(out.first_reg_mismatch(&st, true), None);
        assert_eq!(out.mem.first_difference(&st.mem), None);
        assert_eq!(out.mem.page_count(), st.mem.page_count());
        assert_eq!(out.mem.read_u32(p.stack_top - 8).unwrap(), 0xBEEF);
    }
}
