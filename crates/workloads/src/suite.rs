//! The 31 named benchmarks of the paper's evaluation (SPECINT2006,
//! SPECFP2006, Physicsbench), as characteristic profiles for the
//! generator.

use crate::gen::BenchProfile;

/// Benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECINT2006-like.
    SpecInt,
    /// SPECFP2006-like.
    SpecFp,
    /// Physicsbench-like.
    Physics,
}

impl Suite {
    /// Display name matching the paper's averages columns.
    pub fn name(self) -> &'static str {
        match self {
            Suite::SpecInt => "SPECINT2006",
            Suite::SpecFp => "SPECFP2006",
            Suite::Physics => "Physicsbench",
        }
    }
}

/// One named benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Paper benchmark name.
    pub name: &'static str,
    /// Its suite.
    pub suite: Suite,
    /// Generator profile.
    pub profile: BenchProfile,
}

fn int_profile(name: &'static str, seed: u64, v: u64) -> BenchProfile {
    // Small blocks, branch-dense, call/ret, strings, high dyn/static.
    BenchProfile {
        name: name.to_string(),
        hot_loops: 2 + (v % 2) as usize,
        hot_iters: 46_000 + (v * 3_000) as u32,
        hot_diamonds: 3,
        bb_insns: (3, 7),
        bias_of_16: 12 + (v % 3) as u32, // 0.75–0.88
        warm_funcs: 11 + (v % 4) as usize,
        warm_iters: 460,
        warm_insns: 26,
        cold_blocks: 12,
        mem_ratio: 0.44,
        fp_ratio: 0.02,
        trig_ratio: 0.0,
        muldiv_ratio: 0.08,
        callret: true,
        switches: true,
        rep_strings: true,
        seed,
    }
}

fn fp_profile(name: &'static str, seed: u64, v: u64) -> BenchProfile {
    // Big straight-line bodies, FP-dominated, few branches, very high
    // dyn/static ratio.
    BenchProfile {
        name: name.to_string(),
        hot_loops: 2,
        hot_iters: 62_000 + (v * 4_000) as u32,
        hot_diamonds: 1,
        bb_insns: (14, 26),
        bias_of_16: 14,
        warm_funcs: 2,
        warm_iters: 120,
        warm_insns: 22,
        cold_blocks: 6,
        mem_ratio: 0.28,
        fp_ratio: 0.42,
        trig_ratio: 0.01,
        muldiv_ratio: 0.02,
        callret: false,
        switches: false,
        rep_strings: false,
        seed,
    }
}

fn physics_profile(name: &'static str, seed: u64, hot: bool) -> BenchProfile {
    // Trig-heavy; the "warm" subset (continuous/periodic/ragdoll) has a
    // low dynamic-to-static ratio: lots of warm code, short hot phases.
    BenchProfile {
        name: name.to_string(),
        hot_loops: if hot { 2 } else { 1 },
        hot_iters: if hot { 22_000 } else { 7_000 },
        hot_diamonds: 2,
        bb_insns: (6, 14),
        bias_of_16: 13,
        warm_funcs: if hot { 10 } else { 18 },
        warm_iters: if hot { 170 } else { 480 },
        warm_insns: 24,
        cold_blocks: if hot { 20 } else { 24 },
        mem_ratio: 0.26,
        fp_ratio: 0.34,
        trig_ratio: 0.12,
        muldiv_ratio: 0.02,
        callret: false,
        switches: false,
        rep_strings: true,
        seed,
    }
}

/// The full 31-benchmark suite, in the paper's figure order.
pub fn benchmarks() -> Vec<Benchmark> {
    let ints = [
        "400.perlbench",
        "401.bzip2",
        "403.gcc",
        "429.mcf",
        "445.gobmk",
        "458.sjeng",
        "462.libquantum",
        "464.h264ref",
        "471.omnetpp",
        "473.astar",
        "483.xalancbmk",
    ];
    let fps = [
        "410.bwaves",
        "433.milc",
        "434.zeusmp",
        "435.gromacs",
        "436.cactusADM",
        "437.leslie3d",
        "444.namd",
        "450.soplex",
        "453.povray",
        "454.calculix",
        "459.GemsFDTD",
        "470.lbm",
        "482.sphinx3",
    ];
    // (name, hot?) — continuous/periodic/ragdoll are the warm-dominated
    // three the paper singles out.
    let phys: [(&'static str, bool); 7] = [
        ("breakable", true),
        ("continuous", false),
        ("deformable", true),
        ("explosions", true),
        ("highspeed", true),
        ("periodic", false),
        ("ragdoll", false),
    ];
    let mut out = Vec::new();
    for (i, n) in ints.iter().enumerate() {
        out.push(Benchmark {
            name: n,
            suite: Suite::SpecInt,
            profile: int_profile(n, 0x1000 + i as u64, i as u64),
        });
    }
    for (i, n) in fps.iter().enumerate() {
        out.push(Benchmark {
            name: n,
            suite: Suite::SpecFp,
            profile: fp_profile(n, 0x2000 + i as u64, i as u64),
        });
    }
    for (i, (n, hot)) in phys.iter().enumerate() {
        out.push(Benchmark {
            name: n,
            suite: Suite::Physics,
            profile: physics_profile(n, 0x3000 + i as u64, *hot),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_31_benchmarks() {
        let b = benchmarks();
        assert_eq!(b.len(), 31);
        assert_eq!(b.iter().filter(|x| x.suite == Suite::SpecInt).count(), 11);
        assert_eq!(b.iter().filter(|x| x.suite == Suite::SpecFp).count(), 13);
        assert_eq!(b.iter().filter(|x| x.suite == Suite::Physics).count(), 7);
        assert_eq!(b[0].name, "400.perlbench");
        assert_eq!(b[30].name, "ragdoll");
    }

    #[test]
    fn names_are_unique_and_seeds_differ() {
        let b = benchmarks();
        let mut names: Vec<_> = b.iter().map(|x| x.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 31);
        let mut seeds: Vec<_> = b.iter().map(|x| x.profile.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 31);
    }
}
