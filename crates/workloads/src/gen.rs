//! The parameterized benchmark generator.

use darco_guest::insn::{AluOp, Insn, ShiftAmount, ShiftOp};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::reg::{Addr, Cond, Scale, Width};
use darco_guest::prng::{Rng, SmallRng};
use darco_guest::{Asm, FBinOp, FUnOp, Fpr, GuestProgram, Gpr};

/// Base address of the benchmark's data arrays.
const DATA: u32 = 0x0040_0000;
/// Bytes of data segment backing the arrays.
const DATA_LEN: usize = 128 << 10;

/// Characteristics of one benchmark (DESIGN.md §1 explains how each knob
/// maps to a paper-observable behaviour).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchProfile {
    /// Benchmark name.
    pub name: String,
    /// Number of hot loops (executed far beyond the SBM threshold).
    pub hot_loops: usize,
    /// Iterations per hot loop.
    pub hot_iters: u32,
    /// Conditional-branch diamonds per hot loop body.
    pub hot_diamonds: usize,
    /// Instructions per straight-line chunk (min, max).
    pub bb_insns: (usize, usize),
    /// Probability of the biased direction of inner branches (× 16,
    /// i.e. 11 ⇒ bias 11/16 ≈ 0.69).
    pub bias_of_16: u32,
    /// Warm functions: executed past the BBM threshold but (mostly) short
    /// of the SBM threshold.
    pub warm_funcs: usize,
    /// Calls per warm function.
    pub warm_iters: u32,
    /// Instructions per warm function body.
    pub warm_insns: usize,
    /// Cold straight-line blocks (each executed once).
    pub cold_blocks: usize,
    /// Fraction of memory operations in generated code.
    pub mem_ratio: f64,
    /// Fraction of f64 operations.
    pub fp_ratio: f64,
    /// Fraction of `sin`/`cos` among FP operations.
    pub trig_ratio: f64,
    /// Fraction of integer multiply/divide.
    pub muldiv_ratio: f64,
    /// Put a call/return pair inside hot loops (SPECINT character).
    pub callret: bool,
    /// Put a computed 4-way dispatch (jump table through an indirect
    /// call) inside hot loops — interpreter/VM-style SPECINT control flow.
    pub switches: bool,
    /// Sprinkle `REP` string operations into cold code (interpreted —
    /// exercises the IM safety net).
    pub rep_strings: bool,
    /// Generator seed.
    pub seed: u64,
}

impl BenchProfile {
    /// Scales the dynamic size (hot/warm iteration counts) by `num/den`,
    /// for quick runs.
    pub fn scaled(mut self, num: u32, den: u32) -> BenchProfile {
        self.hot_iters = (self.hot_iters * num / den).max(8);
        self.warm_iters = (self.warm_iters * num / den).max(4);
        self
    }
}

struct Gen<'a> {
    a: Asm,
    rng: SmallRng,
    p: &'a BenchProfile,
}

impl Gen<'_> {
    fn data_reg(&mut self) -> Gpr {
        // Registers safe for scratch use (ECX is the loop counter, ESP the
        // stack pointer).
        [Gpr::Eax, Gpr::Ebx, Gpr::Edx, Gpr::Edi][self.rng.gen_range(0..4)]
    }

    /// One generated instruction of the profile's mix. `counter_valid`
    /// means ECX currently holds a loop counter usable for addressing.
    fn body_insn(&mut self, counter_valid: bool) {
        let r = self.rng.gen::<f64>();
        let p = self.p;
        if r < p.mem_ratio {
            self.mem_insn(counter_valid);
        } else if r < p.mem_ratio + p.fp_ratio {
            self.fp_insn(counter_valid);
        } else if r < p.mem_ratio + p.fp_ratio + p.muldiv_ratio {
            self.muldiv_insn();
        } else {
            self.alu_insn();
        }
    }

    fn array_addr(&mut self, counter_valid: bool, wide: bool) -> Addr {
        let slot = self.rng.gen_range(0..64) * 8;
        if counter_valid && self.rng.gen_bool(0.6) {
            // Streaming access: base + counter*scale (trains the
            // prefetcher, stays in the data segment via small strides).
            let scale = if wide { Scale::S8 } else { Scale::S4 };
            Addr::full(Gpr::Esi, Gpr::Ecx, scale, slot)
        } else {
            Addr::base_disp(Gpr::Esi, self.rng.gen_range(0..2048) * 8 + slot)
        }
    }

    fn mem_insn(&mut self, counter_valid: bool) {
        let dst = self.data_reg();
        let addr = self.array_addr(counter_valid, false);
        match self.rng.gen_range(0..7) {
            0 => self.a.load(dst, addr),
            1 => self.a.store(addr, dst, Width::D),
            2 => self.a.emit(Insn::AluRM { op: AluOp::Add, dst, addr }),
            3 => self.a.emit(Insn::AluMR { op: AluOp::Add, addr, src: dst }),
            4 => {
                // Sub-word load with sign extension (x86 movsx/movzx).
                let sign = self.rng.gen_bool(0.5);
                let width = if self.rng.gen_bool(0.5) { Width::B } else { Width::W };
                self.a.emit(Insn::Load { dst, addr, width, sign });
            }
            _ => {
                let pop_dst = self.data_reg();
                self.a.push(dst);
                self.a.pop(pop_dst);
            }
        }
    }

    fn fp_insn(&mut self, counter_valid: bool) {
        let f = Fpr::new(self.rng.gen_range(0..6));
        let g = Fpr::new(self.rng.gen_range(0..6));
        if self.rng.gen::<f64>() < self.p.trig_ratio {
            let op = if self.rng.gen() { FUnOp::Sin } else { FUnOp::Cos };
            self.a.emit(Insn::Funary { op, dst: f });
            return;
        }
        match self.rng.gen_range(0..5) {
            0 => {
                let addr = self.array_addr(counter_valid, true);
                self.a.emit(Insn::Fld { dst: f, addr });
            }
            1 => {
                let addr = self.array_addr(counter_valid, true);
                self.a.emit(Insn::Fst { addr, src: f });
            }
            2 => {
                let op = [FBinOp::Add, FBinOp::Sub, FBinOp::Mul][self.rng.gen_range(0..3)];
                self.a.emit(Insn::Fbin { op, dst: f, src: g });
            }
            3 => {
                let addr = self.array_addr(counter_valid, true);
                self.a.emit(Insn::FbinM { op: FBinOp::Add, dst: f, addr });
            }
            _ => self.a.emit(Insn::Funary {
                op: [FUnOp::Abs, FUnOp::Neg, FUnOp::Sqrt][self.rng.gen_range(0..3)],
                dst: f,
            }),
        }
    }

    fn muldiv_insn(&mut self) {
        let dst = self.data_reg();
        if self.rng.gen_bool(0.7) {
            self.a.emit(Insn::ImulI { dst, src: dst, imm: self.rng.gen_range(3..100) });
        } else {
            // Safe division: divisor = (ECX | 1).
            self.a.mov_rr(Gpr::Edx, Gpr::Ecx);
            self.a.alu_ri(AluOp::Or, Gpr::Edx, 1);
            self.a.emit(Insn::Idiv { dst, src: Gpr::Edx });
        }
    }

    fn alu_insn(&mut self) {
        let dst = self.data_reg();
        match self.rng.gen_range(0..8) {
            0 => self.a.alu_ri(AluOp::Add, dst, self.rng.gen_range(-100..100)),
            1 => self.a.alu_ri(AluOp::Xor, dst, self.rng.gen()),
            2 => {
                let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or]
                    [self.rng.gen_range(0..4)];
                let src = self.data_reg();
                self.a.alu_rr(op, dst, src);
            }
            3 => self.a.emit(Insn::Shift {
                op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][self.rng.gen_range(0..3)],
                dst,
                amount: ShiftAmount::Imm(self.rng.gen_range(1..5)),
            }),
            4 => {
                let idx = self.data_reg();
                self.a.lea(dst, Addr::full(dst, idx, Scale::S2, 12));
            }
            5 => {
                let other = self.data_reg();
                let cc = [Cond::L, Cond::B, Cond::Ne][self.rng.gen_range(0..3)];
                self.a.cmp_rr(dst, other);
                self.a.emit(Insn::Setcc { cc, dst });
            }
            6 => {
                // cmp + cmov: branch-free selection (x86-typical, costly
                // to emulate on a plain RISC host).
                let other = self.data_reg();
                let cc = [Cond::L, Cond::A, Cond::Ge][self.rng.gen_range(0..3)];
                self.a.cmp_rr(dst, other);
                self.a.emit(Insn::Cmov { cc, dst, src: other });
            }
            _ => {
                let src = self.data_reg();
                self.a.mov_rr(dst, src);
            }
        }
    }

    fn chunk(&mut self, counter_valid: bool) {
        let (lo, hi) = self.p.bb_insns;
        let n = self.rng.gen_range(lo..=hi.max(lo + 1));
        for _ in 0..n {
            self.body_insn(counter_valid);
        }
    }

    /// A biased if/else diamond driven by the loop counter, so the bias is
    /// exact and deterministic.
    fn diamond(&mut self) {
        let bias = self.p.bias_of_16.clamp(1, 15);
        self.a.mov_rr(Gpr::Eax, Gpr::Ecx);
        self.a.alu_ri(AluOp::And, Gpr::Eax, 15);
        self.a.cmp_ri(Gpr::Eax, bias as i32);
        let rare = self.a.label();
        let join = self.a.label();
        // Taken (biased) direction: skip the rare path.
        self.a.jcc_to(Cond::B, join);
        self.a.bind(rare);
        self.chunk(true);
        self.a.bind(join);
        self.chunk(true);
    }

    fn hot_loop(&mut self, func: Option<darco_guest::asm::Label>, table_off: Option<u32>) {
        self.a.mov_ri(Gpr::Ecx, self.p.hot_iters as i32);
        let top = self.a.here();
        // Stack traffic spanning the diamonds (not forwardable within one
        // translation region).
        self.a.push(Gpr::Ebx);
        self.chunk(true);
        for _ in 0..self.p.hot_diamonds {
            self.diamond();
        }
        if let Some(off) = table_off {
            // Computed dispatch (twice, interpreter-style): call
            // arms[ecx & 3] and arms[(ecx >> 2) & 3] through the table.
            self.a.mov_rr(Gpr::Eax, Gpr::Ecx);
            self.a.alu_ri(AluOp::And, Gpr::Eax, 3);
            self.a.load(Gpr::Edx, Addr::full(Gpr::Esi, Gpr::Eax, Scale::S4, off as i32));
            self.a.emit(Insn::CallInd { target: Gpr::Edx });
            self.a.mov_rr(Gpr::Eax, Gpr::Ecx);
            self.a.emit(Insn::Shift { op: ShiftOp::Shr, dst: Gpr::Eax, amount: ShiftAmount::Imm(2) });
            self.a.alu_ri(AluOp::And, Gpr::Eax, 3);
            self.a.load(Gpr::Edx, Addr::full(Gpr::Esi, Gpr::Eax, Scale::S4, off as i32));
            self.a.emit(Insn::CallInd { target: Gpr::Edx });
        }
        if let Some(f) = func {
            self.a.call_to(f);
        }
        self.a.pop(Gpr::Ebx);
        // `sub` (not `dec`) in the loop shell: a full flag writer, so the
        // block is a legal chain/IBTC target (compilers emit this form).
        self.a.alu_ri(AluOp::Sub, Gpr::Ecx, 1);
        self.a.jcc_to(Cond::Ne, top);
    }

    fn cold_code(&mut self) {
        for _ in 0..self.p.cold_blocks {
            self.chunk(false);
            if self.p.rep_strings && self.rng.gen_bool(0.2) {
                self.a.mov_ri(Gpr::Edi, (DATA + 0x8000) as i32);
                self.a.push(Gpr::Ecx);
                self.a.mov_ri(Gpr::Ecx, self.rng.gen_range(8..64));
                self.a.emit(Insn::Movs { width: Width::D, rep: true });
                self.a.pop(Gpr::Ecx);
                // Restore the array base the rep advanced.
                self.a.mov_ri(Gpr::Esi, DATA as i32);
            }
            // Break the straight line so each chunk is its own block.
            let next = self.a.label();
            self.a.jmp_to(next);
            self.a.bind(next);
        }
    }
}

/// Builds the guest program for a profile.
pub fn build(p: &BenchProfile) -> GuestProgram {
    let mut g = Gen { a: Asm::new(DEFAULT_CODE_BASE), rng: SmallRng::seed_from_u64(p.seed), p };

    // Entry: set up the array base, jump over the function bodies.
    g.a.mov_ri(Gpr::Esi, DATA as i32);
    let start = g.a.label();
    g.a.jmp_to(start);

    // Warm functions.
    let mut warm: Vec<darco_guest::asm::Label> = Vec::new();
    for _ in 0..p.warm_funcs {
        let f = g.a.here();
        for _ in 0..p.warm_insns {
            g.body_insn(false);
        }
        g.a.ret();
        warm.push(f);
    }
    // A tiny hot callee for call/ret-heavy suites.
    let hot_callee = if p.callret {
        let f = g.a.here();
        g.a.alu_ri(AluOp::Add, Gpr::Ebx, 1);
        g.a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x55AA);
        g.a.ret();
        Some(f)
    } else {
        None
    };
    // Jump-table arms (addresses recorded now, written into the data
    // segment below). The table lives above the streaming-store range
    // (ecx*4 stays below 0x48000 for every profile).
    let table_off: u32 = 0x4_8000;
    let mut arm_addrs: Vec<u32> = Vec::new();
    if p.switches {
        for k in 0..4 {
            arm_addrs.push(g.a.addr());
            g.a.alu_ri(AluOp::Add, Gpr::Ebx, 0x11 * (k + 1));
            g.a.alu_ri(AluOp::Xor, Gpr::Edi, 0x7 << k);
            g.a.emit(Insn::Shift {
                op: ShiftOp::Shr,
                dst: Gpr::Ebx,
                amount: ShiftAmount::Imm(1),
            });
            g.a.ret();
        }
    }

    g.a.bind(start);
    // Cold startup code.
    g.cold_code();
    // Warm phases: each function called `warm_iters` times.
    for f in warm {
        g.a.mov_ri(Gpr::Ecx, p.warm_iters as i32);
        let top = g.a.here();
        g.a.push(Gpr::Ecx);
        g.a.call_to(f);
        g.a.pop(Gpr::Ecx);
        g.a.alu_ri(AluOp::Sub, Gpr::Ecx, 1);
        g.a.jcc_to(Cond::Ne, top);
    }
    // Hot phases.
    for _ in 0..p.hot_loops {
        g.hot_loop(hot_callee, p.switches.then_some(table_off));
    }
    // Publish a checksum through the write syscall, then exit cleanly.
    g.a.store(Addr::abs(DATA + 0x1_0000), Gpr::Ebx, Width::D);
    g.a.mov_ri(Gpr::Eax, darco_xcomp::OS_WRITE as i32);
    g.a.mov_ri(Gpr::Ebx, 1);
    g.a.mov_ri(Gpr::Ecx, (DATA + 0x1_0000) as i32);
    g.a.mov_ri(Gpr::Edx, 4);
    g.a.syscall();
    g.a.halt();

    let data_len = if p.switches { table_off as usize + 64 } else { DATA_LEN };
    let mut data = vec![0x11; data_len];
    for (k, addr) in arm_addrs.iter().enumerate() {
        data[table_off as usize + k * 4..table_off as usize + k * 4 + 4]
            .copy_from_slice(&addr.to_le_bytes());
    }
    let mut prog = g.a.into_program().with_data(data);
    prog.name = p.name.clone();
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmarks;

    #[test]
    fn build_is_deterministic() {
        let p = &benchmarks()[0].profile;
        let a = build(p);
        let b = build(p);
        assert_eq!(a.code, b.code);
        assert!(a.static_insn_count() > 50);
    }

    #[test]
    fn scaled_profiles_shrink() {
        let p = benchmarks()[0].profile.clone();
        let s = p.clone().scaled(1, 10);
        assert!(s.hot_iters <= p.hot_iters / 9);
    }

    #[test]
    fn every_benchmark_builds_and_decodes() {
        for b in benchmarks() {
            let prog = build(&b.profile.clone().scaled(1, 50));
            let n = prog.static_insn_count();
            assert!(n > 40, "{}: {} static insns", b.name, n);
            // The whole image must decode (static_insn_count stops early
            // otherwise); verify by re-encoding length coverage.
            let mut off = 0;
            let mut cnt = 0;
            while off < prog.code.len() {
                let (_, len) = darco_guest::decode(&prog.code[off..])
                    .unwrap_or_else(|e| panic!("{}: undecodable at {off}: {e}", b.name));
                off += len;
                cnt += 1;
            }
            assert_eq!(cnt, n);
        }
    }
}
