//! Structured fuzz programs: the generation/mutation substrate of
//! `darco-fuzz`.
//!
//! A [`FuzzProgram`] is a list of basic blocks over a small, *total* op
//! vocabulary: every field of every op is interpreted modulo its valid
//! range during lowering, so any mutation of the structure (or of its
//! flat `[i64; 5]` word encoding) still lowers to a well-formed,
//! terminating guest program. Termination is enforced structurally: a
//! fuel counter in `EBP` is decremented on every block entry and routes
//! to the exit stub when it reaches zero, so arbitrary control-flow
//! graphs (including irreducible loops through the indirect-jump table)
//! run a bounded number of guest instructions.
//!
//! Register discipline: `ESI` holds the data-window base and `EBP` the
//! fuel counter — ops never name them (REP ops that use `ESI`
//! implicitly save and restore it). `EAX EBX ECX EDX EDI` are fuzz
//! scratch. Loads and stores are masked into the window, except the
//! deliberate [`FuzzOp::Edge`] probe, which straddles the last mapped
//! data page to exercise fault paths, and [`FuzzOp::Patch`], which
//! rewrites the immediate of an earlier [`FuzzOp::Patchable`] in place —
//! a length-stable store into the code page that drives the SMC
//! invalidation machinery.
//!
//! Programs serialize to a compact JSON form (`to_json`/`parse`) so a
//! minimized divergence ships as a standalone reproducer workload that
//! `darco-run` and `darco-fleet` load via the `fuzz:PATH` namespace.

use darco_guest::insn::{AluOp, FBinOp, FUnOp, Insn, RepCond, ShiftAmount, ShiftOp};
use darco_guest::prng::{Rng, SmallRng};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::reg::{Addr, Cond, Fpr, Gpr, Scale, Width};
use darco_guest::{encode, Asm, GuestProgram};
use darco_obs::{parse, JsonValue, JsonWriter};

/// Base address of the fuzz data window.
pub const WINDOW_BASE: u32 = 0x0040_0000;
/// Bytes of window addressable by masked load/store ops.
pub const WINDOW_LEN: u32 = 16 * 1024;
/// Offset of the indirect-jump table (just past the masked window).
pub const TABLE_OFF: u32 = WINDOW_LEN;
/// Entries in the indirect-jump table (power of two).
pub const TABLE_SLOTS: u32 = 8;
/// Offset of the final-state spill area written by the exit stub.
pub const OUT_OFF: u32 = TABLE_OFF + TABLE_SLOTS * 4;
/// Total data-segment bytes.
pub const DATA_LEN: u32 = OUT_OFF + 32;

/// Number of op tags (`FuzzOp::decode` takes any `i64` tag modulo this).
pub const N_OP_TAGS: i64 = 20;
/// Number of exit tags.
pub const N_EXIT_TAGS: i64 = 5;

/// Fuzz scratch registers (everything except `ESI`, `EBP`, `ESP`).
const SCRATCH: [Gpr; 5] = [Gpr::Eax, Gpr::Ebx, Gpr::Ecx, Gpr::Edx, Gpr::Edi];

fn gpr(sel: u8) -> Gpr {
    SCRATCH[sel as usize % SCRATCH.len()]
}

fn fpr(sel: u8) -> Fpr {
    Fpr::new(sel % 8)
}

/// Masked window address: always at least 8 bytes short of the table so
/// no op-sized access can clobber it.
fn waddr(off: u16) -> Addr {
    Addr::base_disp(Gpr::Esi, (off as u32 % (WINDOW_LEN - 8)) as i32)
}

/// One straight-line fuzz op. Every field is total under lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzOp {
    /// `mov r, imm`.
    MovRI { dst: u8, imm: i32 },
    /// `op r, r` over the seven ALU ops.
    AluRR { op: u8, dst: u8, src: u8 },
    /// `op r, imm`.
    AluRI { op: u8, dst: u8, imm: i32 },
    /// Shift/rotate by a masked immediate amount.
    Shift { op: u8, dst: u8, amt: u8 },
    /// Multiply or guarded divide/remainder (divisor forced into
    /// `257..=511`, so neither `#DE` case is reachable).
    MulDiv { kind: u8, dst: u8, src: u8, imm: i32 },
    /// Windowed load, optionally sub-word and sign-extending.
    Load { dst: u8, off: u16, width: u8, sign: bool },
    /// Windowed store.
    Store { src: u8, off: u16, width: u8 },
    /// Windowed store-immediate.
    StoreI { off: u16, imm: i32, width: u8 },
    /// Read-modify-write ALU against the window (`to_mem` picks the
    /// memory-destination form).
    AluM { op: u8, reg: u8, off: u16, to_mem: bool },
    /// Flag producer: cmp/test in register, immediate and memory forms.
    CmpTest { kind: u8, a: u8, b: u8, imm: i32 },
    /// Conditional move consuming whatever flags are live.
    Cmov { cc: u8, dst: u8, src: u8 },
    /// Condition-to-register materialization.
    Setcc { cc: u8, dst: u8 },
    /// Balanced `push src; pop dst` pair (stack traffic).
    PushPop { src: u8, dst: u8 },
    /// `lea` of a windowed address.
    Lea { dst: u8, off: u16 },
    /// FP op family (load/store/const/move/arith/unary/compare/convert).
    Fp { kind: u8, a: u8, b: u8, off: u16 },
    /// REP string op between two windowed cursors; saves/restores
    /// `ECX`/`ESI` around the implicit-register protocol.
    Rep { kind: u8, width: u8, count: u8, off: u16 },
    /// Access straddling the last mapped data page — deterministic
    /// fault-or-not probe at the page boundary.
    Edge { delta: i8, width: u8, store: bool },
    /// A patchable `add ebx, imm` whose code address is recorded as an
    /// SMC slot for later [`FuzzOp::Patch`] ops.
    Patchable { imm: i32 },
    /// Byte-store a new (length-stable) encoding over an earlier
    /// [`FuzzOp::Patchable`] slot; a no-op when no slot exists yet.
    Patch { slot: u8, imm: i32 },
    /// `nop`.
    Nop,
}

impl FuzzOp {
    /// Flat word encoding `[tag, a, b, c, d]` — the mutation substrate.
    pub fn encode(&self) -> [i64; 5] {
        match *self {
            FuzzOp::MovRI { dst, imm } => [0, dst as i64, imm as i64, 0, 0],
            FuzzOp::AluRR { op, dst, src } => [1, op as i64, dst as i64, src as i64, 0],
            FuzzOp::AluRI { op, dst, imm } => [2, op as i64, dst as i64, imm as i64, 0],
            FuzzOp::Shift { op, dst, amt } => [3, op as i64, dst as i64, amt as i64, 0],
            FuzzOp::MulDiv { kind, dst, src, imm } => {
                [4, kind as i64, dst as i64, src as i64, imm as i64]
            }
            FuzzOp::Load { dst, off, width, sign } => {
                [5, dst as i64, off as i64, width as i64, sign as i64]
            }
            FuzzOp::Store { src, off, width } => [6, src as i64, off as i64, width as i64, 0],
            FuzzOp::StoreI { off, imm, width } => [7, off as i64, imm as i64, width as i64, 0],
            FuzzOp::AluM { op, reg, off, to_mem } => {
                [8, op as i64, reg as i64, off as i64, to_mem as i64]
            }
            FuzzOp::CmpTest { kind, a, b, imm } => {
                [9, kind as i64, a as i64, b as i64, imm as i64]
            }
            FuzzOp::Cmov { cc, dst, src } => [10, cc as i64, dst as i64, src as i64, 0],
            FuzzOp::Setcc { cc, dst } => [11, cc as i64, dst as i64, 0, 0],
            FuzzOp::PushPop { src, dst } => [12, src as i64, dst as i64, 0, 0],
            FuzzOp::Lea { dst, off } => [13, dst as i64, off as i64, 0, 0],
            FuzzOp::Fp { kind, a, b, off } => [14, kind as i64, a as i64, b as i64, off as i64],
            FuzzOp::Rep { kind, width, count, off } => {
                [15, kind as i64, width as i64, count as i64, off as i64]
            }
            FuzzOp::Edge { delta, width, store } => {
                [16, delta as i64, width as i64, store as i64, 0]
            }
            FuzzOp::Patchable { imm } => [17, imm as i64, 0, 0, 0],
            FuzzOp::Patch { slot, imm } => [18, slot as i64, imm as i64, 0, 0],
            FuzzOp::Nop => [19, 0, 0, 0, 0],
        }
    }

    /// Total inverse of [`FuzzOp::encode`]: any five words decode to a
    /// valid op (tag modulo [`N_OP_TAGS`], fields truncated).
    pub fn decode(w: [i64; 5]) -> FuzzOp {
        let [tag, a, b, c, d] = w;
        match tag.rem_euclid(N_OP_TAGS) {
            0 => FuzzOp::MovRI { dst: a as u8, imm: b as i32 },
            1 => FuzzOp::AluRR { op: a as u8, dst: b as u8, src: c as u8 },
            2 => FuzzOp::AluRI { op: a as u8, dst: b as u8, imm: c as i32 },
            3 => FuzzOp::Shift { op: a as u8, dst: b as u8, amt: c as u8 },
            4 => FuzzOp::MulDiv { kind: a as u8, dst: b as u8, src: c as u8, imm: d as i32 },
            5 => FuzzOp::Load { dst: a as u8, off: b as u16, width: c as u8, sign: d != 0 },
            6 => FuzzOp::Store { src: a as u8, off: b as u16, width: c as u8 },
            7 => FuzzOp::StoreI { off: a as u16, imm: b as i32, width: c as u8 },
            8 => FuzzOp::AluM { op: a as u8, reg: b as u8, off: c as u16, to_mem: d != 0 },
            9 => FuzzOp::CmpTest { kind: a as u8, a: b as u8, b: c as u8, imm: d as i32 },
            10 => FuzzOp::Cmov { cc: a as u8, dst: b as u8, src: c as u8 },
            11 => FuzzOp::Setcc { cc: a as u8, dst: b as u8 },
            12 => FuzzOp::PushPop { src: a as u8, dst: b as u8 },
            13 => FuzzOp::Lea { dst: a as u8, off: b as u16 },
            14 => FuzzOp::Fp { kind: a as u8, a: b as u8, b: c as u8, off: d as u16 },
            15 => FuzzOp::Rep { kind: a as u8, width: b as u8, count: c as u8, off: d as u16 },
            16 => FuzzOp::Edge { delta: a as i8, width: b as u8, store: c != 0 },
            17 => FuzzOp::Patchable { imm: a as i32 },
            18 => FuzzOp::Patch { slot: a as u8, imm: b as i32 },
            _ => FuzzOp::Nop,
        }
    }
}

/// How a block ends. Control can only leave a block through its exit,
/// and every entered block burns one unit of fuel first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzExit {
    /// Fall through to the next block (or the exit stub after the last).
    Fall,
    /// Unconditional jump to block `target % nblocks`.
    Jmp { target: u8 },
    /// `cmp a, b; jcc cc target`, falling through otherwise.
    Cond { cc: u8, a: u8, b: u8, target: u8 },
    /// Indirect jump through the data-segment table, indexed by the
    /// fuel counter (`ebp & (TABLE_SLOTS-1)`).
    Indirect,
    /// Call the shared tiny callee (exercising call/ret and the IBTC),
    /// then jump to `target % nblocks`.
    CallThen { target: u8 },
}

impl FuzzExit {
    /// Flat word encoding `[tag, a, b, c, d]`.
    pub fn encode(&self) -> [i64; 5] {
        match *self {
            FuzzExit::Fall => [0, 0, 0, 0, 0],
            FuzzExit::Jmp { target } => [1, target as i64, 0, 0, 0],
            FuzzExit::Cond { cc, a, b, target } => {
                [2, cc as i64, a as i64, b as i64, target as i64]
            }
            FuzzExit::Indirect => [3, 0, 0, 0, 0],
            FuzzExit::CallThen { target } => [4, target as i64, 0, 0, 0],
        }
    }

    /// Total inverse of [`FuzzExit::encode`].
    pub fn decode(w: [i64; 5]) -> FuzzExit {
        let [tag, a, b, c, d] = w;
        match tag.rem_euclid(N_EXIT_TAGS) {
            0 => FuzzExit::Fall,
            1 => FuzzExit::Jmp { target: a as u8 },
            2 => FuzzExit::Cond { cc: a as u8, a: b as u8, b: c as u8, target: d as u8 },
            3 => FuzzExit::Indirect,
            _ => FuzzExit::CallThen { target: a as u8 },
        }
    }
}

/// One basic block: straight-line ops plus an exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzBlock {
    /// Straight-line body.
    pub ops: Vec<FuzzOp>,
    /// Terminator.
    pub exit: FuzzExit,
}

/// A structured fuzz program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzProgram {
    /// Block-entry budget: every block entry decrements it; zero routes
    /// to the exit stub. Bounds dynamic length for any CFG.
    pub fuel: u32,
    /// The blocks, in layout order.
    pub blocks: Vec<FuzzBlock>,
}

impl FuzzProgram {
    /// Total number of ops across all blocks.
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }

    /// Lowers to a runnable guest program. Pure: the same structure
    /// always yields byte-identical code and data.
    pub fn lower(&self) -> GuestProgram {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        let n = self.blocks.len();
        let block_labels: Vec<_> = (0..n).map(|_| a.label()).collect();
        let exit_label = a.label();

        // Prologue: window base, fuel, skip over the callee body.
        a.mov_ri(Gpr::Esi, WINDOW_BASE as i32);
        a.mov_ri(Gpr::Ebp, self.fuel.max(1) as i32);
        let start = a.label();
        a.jmp_to(start);
        let callee = a.here();
        a.alu_ri(AluOp::Add, Gpr::Ebx, 1);
        a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x55AA);
        a.ret();
        a.bind(start);

        let mut slots: Vec<u32> = Vec::new();
        let mut block_addrs: Vec<u32> = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            a.bind(block_labels[i]);
            block_addrs.push(a.addr());
            // Fuel gate: the one structural termination guarantee.
            a.alu_ri(AluOp::Sub, Gpr::Ebp, 1);
            a.jcc_to(Cond::E, exit_label);
            for op in &b.ops {
                lower_op(&mut a, op, &mut slots);
            }
            match b.exit {
                FuzzExit::Fall => {}
                FuzzExit::Jmp { target } => a.jmp_to(block_labels[target as usize % n]),
                FuzzExit::Cond { cc, a: ra, b: rb, target } => {
                    a.cmp_rr(gpr(ra), gpr(rb));
                    a.jcc_to(Cond::from_index(cc as usize % 16), block_labels[target as usize % n]);
                }
                FuzzExit::Indirect => {
                    a.mov_rr(Gpr::Eax, Gpr::Ebp);
                    a.alu_ri(AluOp::And, Gpr::Eax, TABLE_SLOTS as i32 - 1);
                    a.load(Gpr::Edx, Addr::full(Gpr::Esi, Gpr::Eax, Scale::S4, TABLE_OFF as i32));
                    a.emit(Insn::JmpInd { target: Gpr::Edx });
                }
                FuzzExit::CallThen { target } => {
                    a.call_to(callee);
                    a.jmp_to(block_labels[target as usize % n]);
                }
            }
        }

        // Exit stub: spill scratch state, publish it, halt. The spill
        // makes every scratch register part of the observable output
        // even before the end-of-run state validation.
        a.bind(exit_label);
        let exit_addr = a.addr();
        for (i, r) in SCRATCH.iter().enumerate() {
            a.store(Addr::abs(WINDOW_BASE + OUT_OFF + 4 * i as u32), *r, Width::D);
        }
        a.mov_ri(Gpr::Eax, darco_xcomp::OS_WRITE as i32);
        a.mov_ri(Gpr::Ebx, 1);
        a.mov_ri(Gpr::Ecx, (WINDOW_BASE + OUT_OFF) as i32);
        a.mov_ri(Gpr::Edx, 4 * SCRATCH.len() as i32);
        a.syscall();
        a.halt();

        // Data: deterministically-seeded window, then the jump table.
        let mut data = vec![0u8; DATA_LEN as usize];
        let mut rng = SmallRng::seed_from_u64(0xF022_5EED);
        for b in data[..WINDOW_LEN as usize].iter_mut() {
            *b = rng.gen();
        }
        for k in 0..TABLE_SLOTS as usize {
            let dest = if block_addrs.is_empty() {
                exit_addr
            } else {
                block_addrs[k % block_addrs.len()]
            };
            let at = TABLE_OFF as usize + k * 4;
            data[at..at + 4].copy_from_slice(&dest.to_le_bytes());
        }

        let mut p = a.into_program().with_data(data);
        p.name = "fuzz".into();
        p
    }

    /// Serializes to the reproducer JSON form.
    pub fn to_json(&self) -> String {
        let word_arr = |w: [i64; 5]| format!("[{},{},{},{},{}]", w[0], w[1], w[2], w[3], w[4]);
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("v", 1);
        w.field_str("kind", "fuzzprog");
        w.field_num("fuel", self.fuel);
        w.begin_arr(Some("blocks"));
        for b in &self.blocks {
            w.begin_obj(None);
            w.begin_arr(Some("ops"));
            for op in &b.ops {
                w.elem_raw(&word_arr(op.encode()));
            }
            w.end_arr();
            w.field_raw("exit", &word_arr(b.exit.encode()));
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Parses the reproducer JSON form.
    ///
    /// # Errors
    /// Malformed JSON or a document that is not a v1 fuzzprog.
    pub fn parse(s: &str) -> Result<FuzzProgram, String> {
        let doc = parse(s).map_err(|e| format!("fuzzprog: {e:?}"))?;
        if doc.get("kind").and_then(JsonValue::as_str) != Some("fuzzprog") {
            return Err("fuzzprog: missing kind=\"fuzzprog\"".into());
        }
        let words = |v: &JsonValue| -> Result<[i64; 5], String> {
            let arr = v.as_arr().ok_or("fuzzprog: op/exit must be an array")?;
            let mut w = [0i64; 5];
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = arr
                    .get(i)
                    .and_then(JsonValue::as_num)
                    .ok_or("fuzzprog: op/exit needs 5 numbers")? as i64;
            }
            Ok(w)
        };
        let fuel = doc
            .get("fuel")
            .and_then(JsonValue::as_num)
            .ok_or("fuzzprog: missing fuel")? as u32;
        let mut blocks = Vec::new();
        for b in doc
            .get("blocks")
            .and_then(JsonValue::as_arr)
            .ok_or("fuzzprog: missing blocks")?
        {
            let mut ops = Vec::new();
            for op in b.get("ops").and_then(JsonValue::as_arr).ok_or("fuzzprog: block.ops")? {
                ops.push(FuzzOp::decode(words(op)?));
            }
            let exit = FuzzExit::decode(words(b.get("exit").ok_or("fuzzprog: block.exit")?)?);
            blocks.push(FuzzBlock { ops, exit });
        }
        Ok(FuzzProgram { fuel, blocks })
    }
}

fn lower_op(a: &mut Asm, op: &FuzzOp, slots: &mut Vec<u32>) {
    match *op {
        FuzzOp::MovRI { dst, imm } => a.mov_ri(gpr(dst), imm),
        FuzzOp::AluRR { op, dst, src } => {
            a.alu_rr(AluOp::from_index(op as usize % 7), gpr(dst), gpr(src))
        }
        FuzzOp::AluRI { op, dst, imm } => {
            a.alu_ri(AluOp::from_index(op as usize % 7), gpr(dst), imm)
        }
        FuzzOp::Shift { op, dst, amt } => a.emit(Insn::Shift {
            op: ShiftOp::from_index(op as usize % 5),
            dst: gpr(dst),
            amount: ShiftAmount::Imm(amt % 32),
        }),
        FuzzOp::MulDiv { kind, dst, src, imm } => match kind % 4 {
            0 => a.emit(Insn::Imul { dst: gpr(dst), src: gpr(src) }),
            1 => a.emit(Insn::ImulI { dst: gpr(dst), src: gpr(src), imm }),
            k => {
                // Divisor in 257..=511: nonzero and not -1, so neither
                // divide-fault case is reachable.
                a.mov_ri(Gpr::Edi, (imm & 0xFF) | 0x101);
                if k == 2 {
                    a.emit(Insn::Idiv { dst: gpr(dst), src: Gpr::Edi });
                } else {
                    a.emit(Insn::Irem { dst: gpr(dst), src: Gpr::Edi });
                }
            }
        },
        FuzzOp::Load { dst, off, width, sign } => a.emit(Insn::Load {
            dst: gpr(dst),
            addr: waddr(off),
            width: Width::from_index(width as usize % 3),
            sign,
        }),
        FuzzOp::Store { src, off, width } => {
            a.store(waddr(off), gpr(src), Width::from_index(width as usize % 3))
        }
        FuzzOp::StoreI { off, imm, width } => a.emit(Insn::StoreI {
            addr: waddr(off),
            imm,
            width: Width::from_index(width as usize % 3),
        }),
        FuzzOp::AluM { op, reg, off, to_mem } => {
            let op = AluOp::from_index(op as usize % 7);
            if to_mem {
                a.emit(Insn::AluMR { op, addr: waddr(off), src: gpr(reg) });
            } else {
                a.emit(Insn::AluRM { op, dst: gpr(reg), addr: waddr(off) });
            }
        }
        FuzzOp::CmpTest { kind, a: ra, b: rb, imm } => match kind % 5 {
            0 => a.cmp_rr(gpr(ra), gpr(rb)),
            1 => a.cmp_ri(gpr(ra), imm),
            2 => a.emit(Insn::CmpRM { a: gpr(ra), addr: waddr(imm as u16) }),
            3 => a.emit(Insn::TestRR { a: gpr(ra), b: gpr(rb) }),
            _ => a.emit(Insn::TestRI { a: gpr(ra), imm }),
        },
        FuzzOp::Cmov { cc, dst, src } => a.emit(Insn::Cmov {
            cc: Cond::from_index(cc as usize % 16),
            dst: gpr(dst),
            src: gpr(src),
        }),
        FuzzOp::Setcc { cc, dst } => {
            a.emit(Insn::Setcc { cc: Cond::from_index(cc as usize % 16), dst: gpr(dst) })
        }
        FuzzOp::PushPop { src, dst } => {
            a.push(gpr(src));
            a.pop(gpr(dst));
        }
        FuzzOp::Lea { dst, off } => a.lea(gpr(dst), waddr(off)),
        FuzzOp::Fp { kind, a: fa, b: fb, off } => match kind % 8 {
            0 => a.emit(Insn::Fld { dst: fpr(fa), addr: waddr(off) }),
            1 => a.emit(Insn::Fst { addr: waddr(off), src: fpr(fa) }),
            2 => a.emit(Insn::FldI {
                dst: fpr(fa),
                bits: (off as f64 * 0.015625 - 256.0).to_bits(),
            }),
            3 => a.emit(Insn::FmovRR { dst: fpr(fa), src: fpr(fb) }),
            4 => a.emit(Insn::Fbin {
                op: FBinOp::from_index(off as usize % 6),
                dst: fpr(fa),
                src: fpr(fb),
            }),
            5 => a.emit(Insn::Funary { op: FUnOp::from_index(off as usize % 5), dst: fpr(fa) }),
            6 => a.emit(Insn::Fcmp { a: fpr(fa), b: fpr(fb) }),
            _ => {
                if fb & 1 == 0 {
                    a.emit(Insn::Cvtsi2f { dst: fpr(fa), src: gpr(fb) });
                } else {
                    a.emit(Insn::Cvtf2si { dst: gpr(fb), src: fpr(fa) });
                }
            }
        },
        FuzzOp::Rep { kind, width, count, off } => {
            let width = Width::from_index(width as usize % 3);
            let n = 1 + (count % 32) as i32;
            let src = WINDOW_BASE + off as u32 % (WINDOW_LEN / 2);
            let dst = WINDOW_BASE + WINDOW_LEN / 2 + (off as u32 ^ 0x155) % (WINDOW_LEN / 2 - 256);
            // The string protocol owns ECX/ESI/EDI; the window base and
            // (for REP ops only) the count register are restored after.
            a.push(Gpr::Ecx);
            a.mov_ri(Gpr::Esi, src as i32);
            a.mov_ri(Gpr::Edi, dst as i32);
            a.mov_ri(Gpr::Ecx, n);
            let cond = if count & 1 == 0 { RepCond::Eq } else { RepCond::Ne };
            match kind % 5 {
                0 => a.emit(Insn::Movs { width, rep: true }),
                1 => a.emit(Insn::Stos { width, rep: true }),
                2 => a.emit(Insn::Lods { width, rep: true }),
                3 => a.emit(Insn::Scas { width, rep: Some(cond) }),
                _ => a.emit(Insn::Cmps { width, rep: Some(cond) }),
            }
            a.mov_ri(Gpr::Esi, WINDOW_BASE as i32);
            a.pop(Gpr::Ecx);
        }
        FuzzOp::Edge { delta, width, store } => {
            // First unmapped byte after the data segment, page-rounded.
            let edge = WINDOW_BASE + ((DATA_LEN + 0xFFF) & !0xFFF);
            let addr = Addr::abs(edge.wrapping_add(delta as i32 as u32));
            let width = Width::from_index(width as usize % 3);
            if store {
                a.store(addr, Gpr::Eax, width);
            } else {
                a.emit(Insn::Load { dst: Gpr::Eax, addr, width, sign: false });
            }
        }
        FuzzOp::Patchable { imm } => {
            slots.push(a.addr());
            a.emit(Insn::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm });
        }
        FuzzOp::Patch { slot, imm } => {
            if slots.is_empty() {
                a.nop();
                return;
            }
            let target = slots[slot as usize % slots.len()];
            // AluRI always carries a 4-byte immediate, so the rewrite is
            // length-stable for any imm.
            let mut bytes = Vec::new();
            encode::encode(&Insn::AluRI { op: AluOp::Add, dst: Gpr::Ebx, imm }, &mut bytes);
            for (i, b) in bytes.iter().enumerate() {
                a.emit(Insn::StoreI {
                    addr: Addr::abs(target + i as u32),
                    imm: *b as i32,
                    width: Width::B,
                });
            }
        }
        FuzzOp::Nop => a.nop(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbitrary_program(seed: u64, nblocks: usize, ops_per_block: usize) -> FuzzProgram {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut blocks = Vec::new();
        for _ in 0..nblocks {
            let ops = (0..ops_per_block)
                .map(|_| {
                    FuzzOp::decode([rng.gen(), rng.gen(), rng.gen(), rng.gen(), rng.gen()])
                })
                .collect();
            let exit =
                FuzzExit::decode([rng.gen(), rng.gen(), rng.gen(), rng.gen(), rng.gen()]);
            blocks.push(FuzzBlock { ops, exit });
        }
        FuzzProgram { fuel: 200, blocks }
    }

    #[test]
    fn decode_is_total_and_lowering_produces_decodable_code() {
        for seed in 0..20u64 {
            let p = arbitrary_program(seed, 6, 12);
            let g = p.lower();
            let mut off = 0;
            while off < g.code.len() {
                let (_, len) = darco_guest::decode(&g.code[off..])
                    .unwrap_or_else(|e| panic!("seed {seed}: undecodable at {off}: {e}"));
                off += len;
            }
        }
    }

    #[test]
    fn lowering_is_deterministic() {
        let p = arbitrary_program(7, 5, 10);
        let a = p.lower();
        let b = p.lower();
        assert_eq!(a.code, b.code);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn word_encoding_round_trips() {
        for seed in 0..200u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let w = [rng.gen(), rng.gen(), rng.gen(), rng.gen(), rng.gen()];
            let op = FuzzOp::decode(w);
            assert_eq!(FuzzOp::decode(op.encode()), op);
            let ex = FuzzExit::decode(w);
            assert_eq!(FuzzExit::decode(ex.encode()), ex);
        }
    }

    #[test]
    fn json_round_trips() {
        let p = arbitrary_program(3, 4, 9);
        let j = p.to_json();
        let q = FuzzProgram::parse(&j).expect("parse back");
        assert_eq!(p, q);
        assert_eq!(q.to_json(), j);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(FuzzProgram::parse("{}").is_err());
        assert!(FuzzProgram::parse("not json").is_err());
        assert!(FuzzProgram::parse(r#"{"kind":"fuzzprog"}"#).is_err());
    }

    #[test]
    fn jump_table_points_at_blocks() {
        let p = arbitrary_program(11, 3, 4);
        let g = p.lower();
        for k in 0..TABLE_SLOTS as usize {
            let at = TABLE_OFF as usize + k * 4;
            let dest = u32::from_le_bytes(g.data[at..at + 4].try_into().unwrap());
            assert!(
                dest >= g.code_base && dest < g.code_base + g.code.len() as u32,
                "table entry {k} ({dest:#x}) outside code"
            );
        }
    }
}
