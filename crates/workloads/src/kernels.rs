//! Hand-written guest kernels for examples and tests.

use darco_guest::insn::{AluOp, Insn};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::reg::{Addr, Cond, Scale, Width};
use darco_guest::{Asm, FBinOp, FUnOp, Fpr, GuestProgram, Gpr};

const DATA: u32 = 0x0040_0000;

/// Dot product of two `n`-element f64 vectors (`a[i] = i`, `b[i] = 2i`),
/// leaving the result in `F0` and storing it at `DATA`.
pub fn dot_product(n: u32) -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    // Initialize the arrays: a[i] = i, b[i] = 2i (as f64).
    a.mov_ri(Gpr::Ecx, n as i32);
    let init = a.here();
    a.mov_rr(Gpr::Eax, Gpr::Ecx);
    a.emit(Insn::Cvtsi2f { dst: Fpr::new(1), src: Gpr::Eax });
    a.emit(Insn::Fst { addr: Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S8, DATA as i32 - 8), src: Fpr::new(1) });
    a.emit(Insn::Fbin { op: FBinOp::Add, dst: Fpr::new(1), src: Fpr::new(1) });
    a.emit(Insn::Fst {
        addr: Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S8, (DATA + 0x8000) as i32 - 8),
        src: Fpr::new(1),
    });
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, init);
    // Accumulate.
    a.fld_i(Fpr::new(0), 0.0);
    a.mov_ri(Gpr::Ecx, n as i32);
    let top = a.here();
    a.emit(Insn::Fld {
        dst: Fpr::new(1),
        addr: Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S8, DATA as i32 - 8),
    });
    a.emit(Insn::FbinM {
        op: FBinOp::Mul,
        dst: Fpr::new(1),
        addr: Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S8, (DATA + 0x8000) as i32 - 8),
    });
    a.emit(Insn::Fbin { op: FBinOp::Add, dst: Fpr::new(0), src: Fpr::new(1) });
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.emit(Insn::Fst { addr: Addr::abs(DATA), src: Fpr::new(0) });
    a.halt();
    let mut p = a.into_program().with_data(vec![0; 0x10000]);
    p.name = "dot_product".into();
    p
}

/// The f64 value a [`dot_product`] run should produce.
pub fn dot_product_expected(n: u32) -> f64 {
    (1..=n as u64).map(|i| (i * i * 2) as f64).sum()
}

/// `n × n` integer matrix multiply (`a[i][j] = i + j`, `b = identity * 3`).
pub fn matmul(n: u32) -> GuestProgram {
    let n = n as i32;
    let a_base = DATA as i32;
    let b_base = DATA as i32 + n * n * 4;
    let c_base = b_base + n * n * 4;
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    // Init: a[i][j] = i + j; b[i][j] = (i==j) ? 3 : 0, via flat loops.
    a.mov_ri(Gpr::Ecx, n * n);
    let init = a.here();
    a.mov_rr(Gpr::Eax, Gpr::Ecx);
    a.mov_ri(Gpr::Edx, 0);
    // i = (ecx-1) / n, j = (ecx-1) % n
    a.dec(Gpr::Eax);
    a.mov_rr(Gpr::Ebx, Gpr::Eax);
    a.mov_ri(Gpr::Edi, n);
    a.emit(Insn::Idiv { dst: Gpr::Ebx, src: Gpr::Edi }); // i
    a.emit(Insn::Irem { dst: Gpr::Eax, src: Gpr::Edi }); // j
    a.mov_rr(Gpr::Edx, Gpr::Ebx);
    a.add_rr(Gpr::Edx, Gpr::Eax);
    a.store(
        Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S4, a_base - 4),
        Gpr::Edx,
        Width::D,
    );
    a.mov_ri(Gpr::Edx, 0);
    a.cmp_rr(Gpr::Ebx, Gpr::Eax);
    let nz = a.label();
    a.jcc_to(Cond::Ne, nz);
    a.mov_ri(Gpr::Edx, 3);
    a.bind(nz);
    a.store(
        Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S4, b_base - 4),
        Gpr::Edx,
        Width::D,
    );
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, init);
    // c[i][j] = sum_k a[i][k] * b[k][j]; flat triple loop via EDI=i, EBX=j.
    a.mov_ri(Gpr::Edi, 0); // i
    let iloop = a.here();
    a.mov_ri(Gpr::Ebx, 0); // j
    let jloop = a.here();
    a.mov_ri(Gpr::Edx, 0); // acc
    a.mov_ri(Gpr::Ecx, 0); // k
    let kloop = a.here();
    // eax = a[i*n + k]
    a.mov_rr(Gpr::Eax, Gpr::Edi);
    a.emit(Insn::ImulI { dst: Gpr::Eax, src: Gpr::Edi, imm: n });
    a.add_rr(Gpr::Eax, Gpr::Ecx);
    a.load(Gpr::Eax, Addr::full(Gpr::Esi, Gpr::Eax, Scale::S4, a_base));
    // save into EBP? avoid: use push
    a.push(Gpr::Eax);
    // eax = b[k*n + j]
    a.emit(Insn::ImulI { dst: Gpr::Eax, src: Gpr::Ecx, imm: n });
    a.add_rr(Gpr::Eax, Gpr::Ebx);
    a.load(Gpr::Eax, Addr::full(Gpr::Esi, Gpr::Eax, Scale::S4, b_base));
    a.pop(Gpr::Ebp);
    a.imul(Gpr::Eax, Gpr::Ebp);
    a.add_rr(Gpr::Edx, Gpr::Eax);
    a.inc(Gpr::Ecx);
    a.cmp_ri(Gpr::Ecx, n);
    a.jcc_to(Cond::L, kloop);
    // c[i*n + j] = acc
    a.emit(Insn::ImulI { dst: Gpr::Eax, src: Gpr::Edi, imm: n });
    a.add_rr(Gpr::Eax, Gpr::Ebx);
    a.store(Addr::full(Gpr::Esi, Gpr::Eax, Scale::S4, c_base), Gpr::Edx, Width::D);
    a.inc(Gpr::Ebx);
    a.cmp_ri(Gpr::Ebx, n);
    a.jcc_to(Cond::L, jloop);
    a.inc(Gpr::Edi);
    a.cmp_ri(Gpr::Edi, n);
    a.jcc_to(Cond::L, iloop);
    a.halt();
    let mut p = a.into_program().with_data(vec![0; (3 * n * n * 4) as usize + 64]);
    p.name = "matmul".into();
    p
}

/// Address of `c[i][j]` in a [`matmul`] result.
pub fn matmul_c_addr(n: u32, i: u32, j: u32) -> u32 {
    DATA + 2 * n * n * 4 + (i * n + j) * 4
}

/// Searches a byte pattern in a haystack with `REPNE SCAS` + verify loops
/// (string-op heavy; exercises the interpreter safety net for `REP`).
pub fn string_search(hay_len: u32, needle_at: u32) -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    // Find byte 0x7F in the haystack, then store its index at DATA+hay+16.
    a.mov_ri(Gpr::Edi, DATA as i32);
    a.mov_ri(Gpr::Ecx, hay_len as i32);
    a.mov_ri(Gpr::Eax, 0x7F);
    a.emit(Insn::Scas { width: Width::B, rep: Some(darco_guest::RepCond::Ne) });
    a.mov_rr(Gpr::Ebx, Gpr::Edi);
    a.alu_ri(AluOp::Sub, Gpr::Ebx, DATA as i32 + 1);
    a.store(Addr::abs(DATA + hay_len + 16), Gpr::Ebx, Width::D);
    a.halt();
    let mut hay = vec![b'.'; hay_len as usize + 64];
    hay[needle_at as usize] = 0x7F;
    let mut p = a.into_program().with_data(hay);
    p.name = "string_search".into();
    p
}

/// An n-body-flavoured physics step: for each of `n` bodies over `steps`
/// steps, advance an angle and accumulate `sin`/`cos` forces
/// (trigonometry-dominated, like Physicsbench).
pub fn nbody_step(n: u32, steps: u32) -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.fld_i(Fpr::new(0), 0.0); // energy accumulator
    a.fld_i(Fpr::new(1), 0.01); // dt
    a.mov_ri(Gpr::Edx, steps as i32);
    let steploop = a.here();
    a.mov_ri(Gpr::Ecx, n as i32);
    let body = a.here();
    // angle = bodies[i] (f64), loaded/advanced/stored
    a.emit(Insn::Fld {
        dst: Fpr::new(2),
        addr: Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S8, DATA as i32 - 8),
    });
    a.emit(Insn::Fbin { op: FBinOp::Add, dst: Fpr::new(2), src: Fpr::new(1) });
    a.emit(Insn::Fst {
        addr: Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S8, DATA as i32 - 8),
        src: Fpr::new(2),
    });
    a.emit(Insn::FmovRR { dst: Fpr::new(3), src: Fpr::new(2) });
    a.emit(Insn::Funary { op: FUnOp::Sin, dst: Fpr::new(3) });
    a.emit(Insn::FmovRR { dst: Fpr::new(4), src: Fpr::new(2) });
    a.emit(Insn::Funary { op: FUnOp::Cos, dst: Fpr::new(4) });
    a.emit(Insn::Fbin { op: FBinOp::Mul, dst: Fpr::new(3), src: Fpr::new(3) });
    a.emit(Insn::Fbin { op: FBinOp::Mul, dst: Fpr::new(4), src: Fpr::new(4) });
    a.emit(Insn::Fbin { op: FBinOp::Add, dst: Fpr::new(3), src: Fpr::new(4) });
    a.emit(Insn::Fbin { op: FBinOp::Add, dst: Fpr::new(0), src: Fpr::new(3) });
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, body);
    a.dec(Gpr::Edx);
    a.jcc_to(Cond::Ne, steploop);
    a.emit(Insn::Fst { addr: Addr::abs(DATA + 0x8000), src: Fpr::new(0) });
    a.halt();
    let mut p = a.into_program().with_data(vec![0; 0x9000]);
    p.name = "nbody_step".into();
    p
}

/// In-place quicksort of `n` pseudo-random u32 keys (iterative, explicit
/// stack) — pointer/branch-heavy integer code with data-dependent control
/// flow.
pub fn quicksort(n: u32) -> GuestProgram {
    let arr = DATA as i32;
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    // Fill with an xorshift sequence.
    a.mov_ri(Gpr::Eax, 0x1234_5677);
    a.mov_ri(Gpr::Ecx, n as i32);
    let fill = a.here();
    a.mov_rr(Gpr::Edx, Gpr::Eax);
    a.emit(Insn::Shift { op: darco_guest::ShiftOp::Shl, dst: Gpr::Edx, amount: darco_guest::ShiftAmount::Imm(13) });
    a.alu_rr(AluOp::Xor, Gpr::Eax, Gpr::Edx);
    a.mov_rr(Gpr::Edx, Gpr::Eax);
    a.emit(Insn::Shift { op: darco_guest::ShiftOp::Shr, dst: Gpr::Edx, amount: darco_guest::ShiftAmount::Imm(17) });
    a.alu_rr(AluOp::Xor, Gpr::Eax, Gpr::Edx);
    a.store(Addr::full(Gpr::Esi, Gpr::Ecx, Scale::S4, arr - 4), Gpr::Eax, Width::D);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, fill);
    // Explicit-stack quicksort over [lo, hi) ranges pushed on the guest
    // stack. Registers: EBX=lo, EDX=hi, EDI=i, ECX=j (byte offsets).
    a.mov_ri(Gpr::Esi, arr);
    a.mov_ri(Gpr::Ebx, 0);
    a.mov_ri(Gpr::Edx, (n as i32) * 4);
    a.push(Gpr::Ebx);
    a.push(Gpr::Edx);
    a.mov_ri(Gpr::Ebp, 1); // stack depth
    let pop_range = a.here();
    a.pop(Gpr::Edx); // hi
    a.pop(Gpr::Ebx); // lo
    a.dec(Gpr::Ebp);
    // if hi - lo <= 4 bytes (one element), skip
    let skip = a.label();
    a.mov_rr(Gpr::Eax, Gpr::Edx);
    a.sub_rr(Gpr::Eax, Gpr::Ebx);
    a.cmp_ri(Gpr::Eax, 8);
    a.jcc_to(Cond::B, skip);
    // Lomuto partition: pivot = a[hi-4], i = lo, j = lo..hi-4
    a.mov_rr(Gpr::Edi, Gpr::Ebx); // i
    a.mov_rr(Gpr::Ecx, Gpr::Ebx); // j
    let part = a.here();
    // eax = a[j]; pivot in... reload pivot each time: eax = a[hi-4]
    a.load(Gpr::Eax, Addr::full(Gpr::Esi, Gpr::Edx, Scale::S1, -4));
    a.emit(Insn::CmpRM { a: Gpr::Eax, addr: Addr::base_index(Gpr::Esi, Gpr::Ecx, Scale::S1) });
    let noswap = a.label();
    a.jcc_to(Cond::Be, noswap); // pivot <= a[j] -> no swap
    // swap a[i], a[j]
    a.load(Gpr::Eax, Addr::base_index(Gpr::Esi, Gpr::Edi, Scale::S1));
    a.push(Gpr::Eax);
    a.load(Gpr::Eax, Addr::base_index(Gpr::Esi, Gpr::Ecx, Scale::S1));
    a.store(Addr::base_index(Gpr::Esi, Gpr::Edi, Scale::S1), Gpr::Eax, Width::D);
    a.pop(Gpr::Eax);
    a.store(Addr::base_index(Gpr::Esi, Gpr::Ecx, Scale::S1), Gpr::Eax, Width::D);
    a.alu_ri(AluOp::Add, Gpr::Edi, 4);
    a.bind(noswap);
    a.alu_ri(AluOp::Add, Gpr::Ecx, 4);
    // j < hi-4 ?
    a.mov_rr(Gpr::Eax, Gpr::Edx);
    a.alu_ri(AluOp::Sub, Gpr::Eax, 4);
    a.cmp_rr(Gpr::Ecx, Gpr::Eax);
    a.jcc_to(Cond::B, part);
    // swap a[i], a[hi-4] (pivot into place)
    a.load(Gpr::Eax, Addr::base_index(Gpr::Esi, Gpr::Edi, Scale::S1));
    a.push(Gpr::Eax);
    a.load(Gpr::Eax, Addr::full(Gpr::Esi, Gpr::Edx, Scale::S1, -4));
    a.store(Addr::base_index(Gpr::Esi, Gpr::Edi, Scale::S1), Gpr::Eax, Width::D);
    a.pop(Gpr::Eax);
    a.store(Addr::full(Gpr::Esi, Gpr::Edx, Scale::S1, -4), Gpr::Eax, Width::D);
    // push [lo, i) and [i+4, hi)
    a.push(Gpr::Ebx);
    a.push(Gpr::Edi);
    a.mov_rr(Gpr::Eax, Gpr::Edi);
    a.alu_ri(AluOp::Add, Gpr::Eax, 4);
    a.push(Gpr::Eax);
    a.push(Gpr::Edx);
    a.alu_ri(AluOp::Add, Gpr::Ebp, 2);
    a.bind(skip);
    a.cmp_ri(Gpr::Ebp, 0);
    a.jcc_to(Cond::Ne, pop_range);
    a.halt();
    let mut p = a.into_program().with_data(vec![0; (n as usize) * 4 + 64]);
    p.name = "quicksort".into();
    p
}

/// CRC-32 (bitwise, polynomial 0xEDB88320) over `n` bytes of data —
/// shift/xor-dominated integer code. The result lands at `DATA + n + 16`.
pub fn crc32(n: u32) -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ebx, -1); // crc
    a.mov_ri(Gpr::Edi, DATA as i32); // ptr
    a.mov_ri(Gpr::Ecx, n as i32);
    let byte_loop = a.here();
    a.emit(Insn::Load { dst: Gpr::Eax, addr: Addr::base(Gpr::Edi), width: Width::B, sign: false });
    a.alu_rr(AluOp::Xor, Gpr::Ebx, Gpr::Eax);
    for _ in 0..8 {
        // crc = (crc >> 1) ^ (0xEDB88320 & -(crc & 1))
        a.mov_rr(Gpr::Edx, Gpr::Ebx);
        a.alu_ri(AluOp::And, Gpr::Edx, 1);
        a.emit(Insn::Unary { op: darco_guest::UnaryOp::Neg, dst: Gpr::Edx });
        a.alu_ri(AluOp::And, Gpr::Edx, 0xEDB8_8320u32 as i32);
        a.emit(Insn::Shift { op: darco_guest::ShiftOp::Shr, dst: Gpr::Ebx, amount: darco_guest::ShiftAmount::Imm(1) });
        a.alu_rr(AluOp::Xor, Gpr::Ebx, Gpr::Edx);
    }
    a.inc(Gpr::Edi);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, byte_loop);
    a.emit(Insn::Unary { op: darco_guest::UnaryOp::Not, dst: Gpr::Ebx });
    a.store(Addr::abs(DATA + n + 16), Gpr::Ebx, Width::D);
    a.halt();
    let data: Vec<u8> = (0..n + 64).map(|i| (i * 31 + 7) as u8).collect();
    let mut p = a.into_program().with_data(data);
    p.name = "crc32".into();
    p
}

/// Reference CRC-32 for [`crc32`]'s data pattern.
pub fn crc32_expected(n: u32) -> u32 {
    let data: Vec<u8> = (0..n).map(|i| (i * 31 + 7) as u8).collect();
    let mut crc = u32::MAX;
    for b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (crc & 1).wrapping_neg());
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::exec::{self, Next};
    use darco_guest::GuestState;

    fn run(p: &GuestProgram) -> GuestState {
        let mut st = GuestState::boot(p);
        for _ in 0..200_000_000u64 {
            match exec::step(&mut st).unwrap().next {
                Next::Halt => return st,
                Next::Syscall => panic!("kernel made a syscall"),
                _ => {}
            }
        }
        panic!("kernel did not halt");
    }

    #[test]
    fn dot_product_is_correct() {
        let p = dot_product(64);
        let st = run(&p);
        let got = f64::from_bits(st.mem.read_u64(DATA).unwrap());
        assert_eq!(got, dot_product_expected(64));
    }

    #[test]
    fn matmul_against_identity_times_three() {
        let n = 6;
        let p = matmul(n);
        let st = run(&p);
        for i in 0..n {
            for j in 0..n {
                let got = st.mem.read_u32(matmul_c_addr(n, i, j)).unwrap();
                assert_eq!(got, 3 * (i + j), "c[{i}][{j}]");
            }
        }
    }

    #[test]
    fn string_search_finds_needle() {
        let p = string_search(500, 123);
        let st = run(&p);
        assert_eq!(st.mem.read_u32(DATA + 500 + 16).unwrap(), 123);
    }

    #[test]
    fn quicksort_sorts() {
        let n = 150;
        let p = quicksort(n);
        let st = run(&p);
        let mut prev = 0u32;
        for i in 0..n {
            let v = st.mem.read_u32(DATA + i * 4).unwrap();
            assert!(v >= prev, "a[{i}] = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn crc32_matches_reference() {
        let n = 700;
        let p = crc32(n);
        let st = run(&p);
        assert_eq!(st.mem.read_u32(DATA + n + 16).unwrap(), crc32_expected(n));
    }

    #[test]
    fn nbody_energy_is_n_times_steps() {
        // sin² + cos² = 1 (within the architectural polynomial's error).
        let (n, steps) = (8, 10);
        let p = nbody_step(n, steps);
        let st = run(&p);
        let e = f64::from_bits(st.mem.read_u64(DATA + 0x8000).unwrap());
        let want = (n * steps) as f64;
        assert!((e - want).abs() < 1e-3, "energy {e} vs {want}");
    }
}
