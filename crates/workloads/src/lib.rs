//! # The DARCO benchmark suite
//!
//! Stand-ins for SPEC CPU2006 and Physicsbench (see DESIGN.md §1): 31
//! deterministic synthetic benchmarks carrying the paper's benchmark names,
//! generated from per-suite characteristic profiles:
//!
//! * **SPECINT-like** — small basic blocks, branch-dense control flow with
//!   ~60–80% biased branches, calls/returns, string operations, integer
//!   multiply/divide, and a high dynamic-to-static instruction ratio;
//! * **SPECFP-like** — large straight-line loop bodies dominated by f64
//!   arithmetic over arrays, very high dynamic-to-static ratio;
//! * **Physicsbench-like** — medium bodies with significant `sin`/`cos`
//!   usage (software-emulated on the host) and a *low* dynamic-to-static
//!   ratio; `continuous`, `periodic` and `ragdoll` are dominated by warm
//!   code that barely crosses the BBM threshold, exactly the behaviour the
//!   paper reports for them in Figs. 4, 6 and 7.
//!
//! All generation is seeded; a benchmark builds bit-identically every time.

pub mod fuzzprog;
pub mod gen;
pub mod kernels;
pub mod suite;

pub use gen::{build, BenchProfile};
pub use suite::{benchmarks, Benchmark, Suite};
