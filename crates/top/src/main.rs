//! `darco-top` — attach a terminal dashboard to a live fleet campaign.
//!
//! ```text
//! darco-top 127.0.0.1:7171                 # live dashboard
//! darco-top 127.0.0.1:7171 --once          # one frame after catch-up, then exit
//! darco-top 127.0.0.1:7171 --record s.jsonl
//! darco-top --replay s.jsonl               # deterministic re-render, no fleet
//! ```
//!
//! The stream is the JSON-lines protocol published by
//! `darco-fleet run --live ADDR` (and the `watch` op of
//! `darco-fleet serve`). All state folding and rendering live in the
//! library ([`darco_top::Model`]); this binary only moves bytes:
//! connect with retry, tee to `--record`, repaint between line batches.
//!
//! `--replay` renders the final frame of a recording to stdout — a pure
//! function of the file, which is what the golden-render test pins.

use darco_top::Model;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: darco-top <HOST:PORT> [--once] [--record FILE] [--interval MS] [--width N]\n\
         \u{20}      darco-top --replay FILE [--width N]\n\
         \n\
         \u{20} --once         render one frame once caught up (`sync` seen and the\n\
         \u{20}                campaign announced), then exit\n\
         \u{20} --record FILE  append every received stream line to FILE\n\
         \u{20} --replay FILE  render the final frame of a recorded stream and exit\n\
         \u{20} --interval MS  repaint interval in live mode (default 250)\n\
         \u{20} --width N      frame width in columns (default 100)"
    );
    std::process::exit(2);
}

struct Opts {
    addr: Option<String>,
    once: bool,
    record: Option<String>,
    replay: Option<String>,
    interval_ms: u64,
    width: usize,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts { addr: None, once: false, record: None, replay: None, interval_ms: 250, width: 100 };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--once" => o.once = true,
            "--record" => o.record = Some(take(&mut i)),
            "--replay" => o.replay = Some(take(&mut i)),
            "--interval" => {
                o.interval_ms = take(&mut i).parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage())
            }
            "--width" => {
                o.width = take(&mut i).parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage())
            }
            a if a.starts_with("--") => usage(),
            a if o.addr.is_none() => o.addr = Some(a.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    o
}

/// Re-renders a recorded stream: fold every line, print the final frame.
fn cmd_replay(path: &str, width: usize) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("darco-top: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut model = Model::new();
    for line in text.lines() {
        if let Err(e) = model.apply_line(line) {
            eprintln!("darco-top: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{}", model.render(width));
    ExitCode::SUCCESS
}

/// Connects with retry — the usual race is `darco-top` starting a beat
/// before the fleet binds its live socket.
fn connect(addr: &str) -> Option<TcpStream> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Some(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("darco-top: cannot connect to {addr}: {e}");
                    return None;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Clear screen + home. Frames are repainted in place.
const CLEAR: &str = "\u{1b}[2J\u{1b}[H";

fn cmd_live(o: &Opts) -> ExitCode {
    let addr = o.addr.as_deref().unwrap_or_else(|| usage());
    let Some(stream) = connect(addr) else {
        return ExitCode::FAILURE;
    };
    let mut record = match &o.record {
        Some(path) => match std::fs::OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("darco-top: cannot open {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    // A reader thread feeds lines through a channel so the render loop
    // can repaint on a timer even while the stream is quiet.
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let reader = BufReader::new(stream);
    std::thread::Builder::new()
        .name("top-reader".to_string())
        .spawn(move || {
            for line in reader.lines() {
                let Ok(l) = line else { break };
                if tx.send(l).is_err() {
                    break;
                }
            }
        })
        .expect("spawn reader thread");

    let mut model = Model::new();
    let mut stdout = std::io::stdout();
    let interval = Duration::from_millis(o.interval_ms);
    let mut dirty = false;
    loop {
        match rx.recv_timeout(interval) {
            Ok(line) => {
                if let Some(f) = &mut record {
                    let _ = writeln!(f, "{line}");
                }
                if let Err(e) = model.apply_line(&line) {
                    eprintln!("darco-top: {e}");
                }
                dirty = true;
                // Drain whatever else is queued before repainting.
                while let Ok(line) = rx.try_recv() {
                    if let Some(f) = &mut record {
                        let _ = writeln!(f, "{line}");
                    }
                    if let Err(e) = model.apply_line(&line) {
                        eprintln!("darco-top: {e}");
                    }
                }
                if o.once {
                    // Wait for the catch-up marker AND campaign metadata:
                    // a subscriber can win the race with the fleet's very
                    // first publication, in which case `sync` arrives
                    // before the campaign event does.
                    if model.synced && model.campaign.is_some() {
                        print!("{}", model.render(o.width));
                        return ExitCode::SUCCESS;
                    }
                    continue; // no repaints while catching up
                }
                print!("{CLEAR}{}", model.render(o.width));
                let _ = stdout.flush();
                dirty = false;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if dirty && !o.once {
                    print!("{CLEAR}{}", model.render(o.width));
                    let _ = stdout.flush();
                    dirty = false;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Stream over (campaign ended or fleet exited): leave the
                // final frame on screen and report how it ended.
                if o.once {
                    // Hub closed before `sync` — render what we have so a
                    // scripted probe still sees a frame, but fail.
                    print!("{}", model.render(o.width));
                    eprintln!("darco-top: stream ended before catch-up completed");
                    return ExitCode::FAILURE;
                }
                print!("{CLEAR}{}", model.render(o.width));
                let _ = stdout.flush();
                return if model.ended() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse_opts(&args);
    match (&o.replay, &o.addr) {
        (Some(path), None) => cmd_replay(path, o.width),
        (None, Some(_)) => cmd_live(&o),
        _ => usage(),
    }
}
