//! # darco-top — terminal dashboard for live fleet campaigns
//!
//! The library half is deliberately I/O-free: [`Model`] folds the
//! JSON-lines telemetry stream (`darco_fleet::live` protocol) into
//! per-campaign/per-job state, and [`Model::render`] turns that state
//! into one plain-text frame. Rendering is a pure function of the model
//! — no clocks, no terminal queries — which is what makes
//! `darco-top --replay` deterministic: the same recorded stream always
//! renders the same final frame (the golden-render test pins this).
//!
//! The binary (`src/main.rs`) owns everything impure: connecting (with
//! retry) to `darco-fleet run --live`, ANSI screen handling, `--record`
//! (append the raw stream to a file) and `--replay` (re-render a
//! recording without a fleet).

use darco_obs::{JsonValue, Registry};
use std::collections::BTreeMap;

/// Campaign metadata from the `campaign` event.
#[derive(Debug, Clone, Default)]
pub struct CampaignMeta {
    /// Campaign name.
    pub name: String,
    /// Total jobs in the campaign.
    pub jobs: u64,
    /// Worker threads driving it.
    pub workers: u64,
    /// Scheduler quantum (guest instructions per slice).
    pub quantum: u64,
}

/// Latest known state of one job, folded from `job` and `progress`
/// events.
#[derive(Debug, Clone, Default)]
pub struct JobRow {
    /// Job id (campaign expansion order).
    pub id: u64,
    /// Workload name.
    pub workload: String,
    /// Lifecycle state: `running` or `done` (empty before the first
    /// lifecycle event).
    pub state: String,
    /// Terminal status spelling (`ok`, `failed`, ...) once done.
    pub status: Option<String>,
    /// Worker index that last reported it.
    pub worker: u64,
    /// Retired guest instructions at the last progress event.
    pub insns: u64,
    /// Instantaneous MIPS over the last publication interval.
    pub mips: f64,
    /// Mode-residency split (IM, BBM, SBM) in guest instructions.
    pub mode: (u64, u64, u64),
    /// Speculation rollbacks so far.
    pub rollbacks: u64,
}

/// Fuzzing-campaign stats, folded from `fuzz` events (published by
/// `darco-fuzz run --live`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Candidates evaluated so far.
    pub execs: u64,
    /// Interesting-input corpus size.
    pub corpus: u64,
    /// Distinct `fuzz.cov.*` coverage edges.
    pub edges: u64,
    /// Divergence findings (first hits plus duplicates).
    pub divergences: u64,
}

/// The aggregate CPI/MPKI view of a timing-enabled campaign (see
/// [`Model::timing_panel`]). Rates are per guest instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingPanel {
    /// Cycles per guest instruction across all reporting jobs.
    pub cpi: f64,
    /// Data-cache misses per kilo guest instruction.
    pub dl1_mpki: f64,
    /// Branch mispredicts per kilo guest instruction.
    pub br_mpki: f64,
    /// Jobs whose registries carry timing counters.
    pub jobs: u64,
}

/// The dashboard state: everything the stream has said so far.
#[derive(Debug, Default)]
pub struct Model {
    /// Campaign metadata, once announced.
    pub campaign: Option<CampaignMeta>,
    /// Fuzzing stats, present only on `darco-fuzz` streams.
    pub fuzz: Option<FuzzStats>,
    /// Per-job rows in id order.
    pub jobs: BTreeMap<u64, JobRow>,
    /// Per-job metric registries, folded from `delta` events.
    pub metrics: BTreeMap<u64, Registry>,
    /// `(ok, failed)` from the `end` event.
    pub end: Option<(u64, u64)>,
    /// Whether the catch-up replay finished (`sync` seen).
    pub synced: bool,
    /// Largest `t_ms` stamp seen — the stream's notion of elapsed time.
    pub t_ms: u64,
    /// Events applied (all kinds).
    pub events: u64,
}

fn num(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(|v| v.as_num()).unwrap_or(0.0) as u64
}

impl Model {
    /// A blank model (what a freshly attached dashboard holds).
    pub fn new() -> Model {
        Model::default()
    }

    /// Folds one stream line into the model. Unknown event kinds are
    /// counted and otherwise ignored (forward compatibility).
    ///
    /// # Errors
    /// The offending line, when it is not a JSON object with an `ev`.
    pub fn apply_line(&mut self, line: &str) -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let doc = darco_obs::parse(line).map_err(|e| format!("bad stream line ({e}): {line}"))?;
        let ev = doc
            .get("ev")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("stream line without `ev`: {line}"))?;
        self.events += 1;
        self.t_ms = self.t_ms.max(num(&doc, "t_ms"));
        match ev {
            "campaign" => {
                self.campaign = Some(CampaignMeta {
                    name: doc.get("name").and_then(|v| v.as_str()).unwrap_or("?").to_string(),
                    jobs: num(&doc, "jobs"),
                    workers: num(&doc, "workers"),
                    quantum: num(&doc, "quantum"),
                });
            }
            "job" => {
                let id = num(&doc, "id");
                let row = self.jobs.entry(id).or_default();
                row.id = id;
                if let Some(w) = doc.get("workload").and_then(|v| v.as_str()) {
                    row.workload = w.to_string();
                }
                if let Some(s) = doc.get("state").and_then(|v| v.as_str()) {
                    row.state = s.to_string();
                }
                row.status = doc.get("status").and_then(|v| v.as_str()).map(String::from);
                row.worker = num(&doc, "worker");
            }
            "progress" => {
                let id = num(&doc, "id");
                let row = self.jobs.entry(id).or_default();
                row.id = id;
                if row.state.is_empty() {
                    row.state = "running".to_string();
                }
                row.worker = num(&doc, "worker");
                row.insns = num(&doc, "insns");
                row.mips = doc.get("mips").and_then(|v| v.as_num()).unwrap_or(0.0);
                row.mode = (num(&doc, "im"), num(&doc, "bbm"), num(&doc, "sbm"));
                row.rollbacks = num(&doc, "rollbacks");
            }
            "delta" => {
                if let Some(d) = doc.get("delta") {
                    if let Ok(delta) = darco_obs::RegistryDelta::from_json(d) {
                        self.metrics.entry(num(&doc, "id")).or_default().apply_delta(&delta);
                    }
                }
            }
            "fuzz" => {
                self.fuzz = Some(FuzzStats {
                    execs: num(&doc, "execs"),
                    corpus: num(&doc, "corpus"),
                    edges: num(&doc, "edges"),
                    divergences: num(&doc, "divergences"),
                });
            }
            "end" => self.end = Some((num(&doc, "ok"), num(&doc, "failed"))),
            "sync" => self.synced = true,
            _ => {}
        }
        Ok(())
    }

    /// Whether the campaign reported termination.
    pub fn ended(&self) -> bool {
        self.end.is_some()
    }

    /// Aggregates `timing.*` counters across the per-job registries into
    /// the dashboard's CPI/MPKI panel. `None` when no job has reported a
    /// timing delta yet (functional-only campaigns).
    pub fn timing_panel(&self) -> Option<TimingPanel> {
        let mut cycles = 0u64;
        let mut guest = 0u64;
        let mut dl1 = 0u64;
        let mut br = 0u64;
        let mut jobs = 0u64;
        for reg in self.metrics.values() {
            let Some(c) = reg.counter_value("timing.cycles").filter(|&c| c > 0) else { continue };
            // Guest retire count for the architectural rate; the sink's
            // own (host) instruction count is the fallback for streams
            // that don't publish `sys.guest_insns`.
            let g = reg
                .counter_value("sys.guest_insns")
                .filter(|&g| g > 0)
                .or_else(|| reg.counter_value("timing.insns"))
                .unwrap_or(0);
            if g == 0 {
                continue;
            }
            cycles += c;
            guest += g;
            dl1 += reg.counter_value("timing.dl1_misses").unwrap_or(0);
            br += reg.counter_value("timing.mispredicts").unwrap_or(0);
            jobs += 1;
        }
        if jobs == 0 {
            return None;
        }
        let kilo = guest as f64 / 1e3;
        Some(TimingPanel {
            cpi: cycles as f64 / guest as f64,
            dl1_mpki: dl1 as f64 / kilo,
            br_mpki: br as f64 / kilo,
            jobs,
        })
    }

    /// Renders one dashboard frame at the given terminal width (pure:
    /// same model + width → same text). Plain text — the binary adds
    /// cursor/clear control sequences around it.
    pub fn render(&self, width: usize) -> String {
        let width = width.clamp(40, 200);
        let mut out = String::new();
        let meta = self.campaign.clone().unwrap_or_default();
        let title = if meta.name.is_empty() { "(waiting for campaign)" } else { &meta.name };
        out.push_str(&format!(
            "darco-top — {title}  [{}]\n",
            if self.ended() {
                "finished"
            } else if self.synced {
                "live"
            } else {
                "catching up"
            }
        ));
        out.push_str(&format!(
            "elapsed {}  jobs {}  workers {}  quantum {}\n",
            fmt_elapsed(self.t_ms),
            meta.jobs,
            meta.workers,
            meta.quantum
        ));
        out.push_str(&"-".repeat(width));
        out.push('\n');

        // Aggregates over the latest per-job rows.
        let running: Vec<&JobRow> =
            self.jobs.values().filter(|j| j.state == "running").collect();
        let done = self.jobs.values().filter(|j| j.state == "done").count();
        // `.max(0.0)` also fixes the empty-sum case: f64's sum identity
        // is -0.0, which would otherwise render as "-0.0 MIPS".
        let agg_mips: f64 = running.iter().map(|j| j.mips).sum::<f64>().max(0.0);
        let insns: u64 = self.jobs.values().map(|j| j.insns).sum();
        let mode = self.jobs.values().fold((0u64, 0u64, 0u64), |a, j| {
            (a.0 + j.mode.0, a.1 + j.mode.1, a.2 + j.mode.2)
        });
        let rollbacks: u64 = self.jobs.values().map(|j| j.rollbacks).sum();
        let mtot = (mode.0 + mode.1 + mode.2).max(1) as f64;
        out.push_str(&format!(
            "running {:<3} done {:<3} aggregate {:>8.1} MIPS  {:>10} insns\n",
            running.len(),
            done,
            agg_mips,
            fmt_insns(insns)
        ));
        out.push_str(&format!(
            "mode residency  IM {:>5.1}%  BBM {:>5.1}%  SBM {:>5.1}%   rollbacks {} ({:.2}/Mi)\n",
            mode.0 as f64 / mtot * 100.0,
            mode.1 as f64 / mtot * 100.0,
            mode.2 as f64 / mtot * 100.0,
            rollbacks,
            rollbacks as f64 / (insns.max(1) as f64 / 1e6)
        ));

        // Fuzzing stats (only on darco-fuzz streams, so plain fleet
        // frames — and the golden render — are unchanged).
        if let Some(f) = &self.fuzz {
            out.push_str(&format!(
                "fuzz  execs {}  corpus {}  cov edges {}  divergences {}\n",
                f.execs, f.corpus, f.edges, f.divergences
            ));
        }

        // Timing panel, folded live from the per-job `delta` registries
        // (present only when jobs run with a timing sink, so untimed
        // campaigns render the same frames as before). CPI and MPKI are
        // against *guest* instructions — the co-designed machine's
        // architectural rate, the number the sampling campaign reports.
        if let Some(t) = self.timing_panel() {
            out.push_str(&format!(
                "timing  CPI {:.2}  dl1 {:.2} MPKI  br-miss {:.2} MPKI  ({} job{} reporting)\n",
                t.cpi,
                t.dl1_mpki,
                t.br_mpki,
                t.jobs,
                if t.jobs == 1 { "" } else { "s" }
            ));
        }

        // Per-worker utilization: how many live jobs each worker holds.
        if meta.workers > 0 {
            let mut per_worker = vec![0usize; meta.workers as usize];
            for j in &running {
                if let Some(slot) = per_worker.get_mut(j.worker as usize) {
                    *slot += 1;
                }
            }
            out.push_str("workers ");
            for (w, n) in per_worker.iter().enumerate() {
                out.push_str(&format!(" w{w}:{n}"));
            }
            out.push('\n');
        }

        // ETA from job completion rate (rendered only while running).
        if !self.ended() && done > 0 && meta.jobs > 0 {
            let remaining = meta.jobs.saturating_sub(done as u64);
            let eta_ms = self.t_ms as f64 / done as f64 * remaining as f64;
            out.push_str(&format!("eta ~{}\n", fmt_elapsed(eta_ms as u64)));
        }
        if let Some((ok, failed)) = self.end {
            out.push_str(&format!("campaign finished: {ok} ok, {failed} failed\n"));
        }
        out.push_str(&"-".repeat(width));
        out.push('\n');

        // The job table, id order. Workload column flexes with width.
        let wl_w = (width.saturating_sub(58)).clamp(12, 28);
        out.push_str(&format!(
            "{:>4} {:<wl$} {:<9} {:>10} {:>7} {:<12} {:>6}\n",
            "id",
            "workload",
            "state",
            "insns",
            "mips",
            "mode",
            "rb",
            wl = wl_w
        ));
        for j in self.jobs.values() {
            let state = match (&j.state[..], &j.status) {
                ("done", Some(s)) => s.clone(),
                (s, _) => s.to_string(),
            };
            out.push_str(&format!(
                "{:>4} {:<wl$} {:<9} {:>10} {:>7.1} {:<12} {:>6}\n",
                j.id,
                clip(&j.workload, wl_w),
                clip(&state, 9),
                fmt_insns(j.insns),
                j.mips,
                mode_bar(j.mode),
                j.rollbacks,
                wl = wl_w
            ));
        }
        out.push_str(&format!("{} events\n", self.events));
        out
    }
}

/// `mm:ss` from milliseconds.
fn fmt_elapsed(ms: u64) -> String {
    let s = ms / 1000;
    format!("{:02}:{:02}", s / 60, s % 60)
}

/// Guest-instruction counts in compact form (`999`, `12.3k`, `4.5M`,
/// `1.2G`).
fn fmt_insns(n: u64) -> String {
    match n {
        0..=999 => format!("{n}"),
        1_000..=999_999 => format!("{:.1}k", n as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}M", n as f64 / 1e6),
        _ => format!("{:.1}G", n as f64 / 1e9),
    }
}

/// A 10-slot mode-residency bar: `.` IM, `o` BBM, `#` SBM.
fn mode_bar(mode: (u64, u64, u64)) -> String {
    let total = (mode.0 + mode.1 + mode.2) as f64;
    if total == 0.0 {
        return "..........".to_string();
    }
    // Largest-remainder apportionment of 10 slots keeps the bar exactly
    // 10 wide and every non-zero share visible where possible.
    let mut slots = [
        (mode.0 as f64 * 10.0 / total) as usize,
        (mode.1 as f64 * 10.0 / total) as usize,
        (mode.2 as f64 * 10.0 / total) as usize,
    ];
    while slots.iter().sum::<usize>() < 10 {
        let rem = [
            mode.0 as f64 * 10.0 / total - slots[0] as f64,
            mode.1 as f64 * 10.0 / total - slots[1] as f64,
            mode.2 as f64 * 10.0 / total - slots[2] as f64,
        ];
        let k = (0..3).max_by(|&a, &b| rem[a].total_cmp(&rem[b])).unwrap();
        slots[k] += 1;
    }
    format!("{}{}{}", ".".repeat(slots[0]), "o".repeat(slots[1]), "#".repeat(slots[2]))
}

/// Clips a string to `w` chars with a `…` marker.
fn clip(s: &str, w: usize) -> String {
    if s.chars().count() <= w {
        s.to_string()
    } else {
        let cut: String = s.chars().take(w.saturating_sub(1)).collect();
        format!("{cut}\u{2026}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recorded stream fragment: campaign of 2 jobs on 2 workers, one
    /// finishes, telemetry for both, then the end event.
    const RECORDING: &[&str] = &[
        r#"{"ev":"campaign","t_ms":0,"name":"demo","jobs":2,"workers":2,"quantum":5000}"#,
        r#"{"ev":"sync","t_ms":0}"#,
        r#"{"ev":"job","t_ms":1,"id":0,"workload":"kernel:dot","state":"running","status":null,"worker":0}"#,
        r#"{"ev":"job","t_ms":1,"id":1,"workload":"kernel:crc32","state":"running","status":null,"worker":1}"#,
        r#"{"ev":"progress","t_ms":210,"id":0,"worker":0,"insns":1500000,"mips":30.5,"im":15000,"bbm":285000,"sbm":1200000,"rollbacks":12}"#,
        r#"{"ev":"progress","t_ms":215,"id":1,"worker":1,"insns":800000,"mips":21.0,"im":80000,"bbm":720000,"sbm":0,"rollbacks":0}"#,
        r#"{"ev":"delta","t_ms":216,"id":1,"delta":{"delta":1,"from":"0","to":"2","c":[["tol.rollbacks","0"],["sys.guest_insns","800000"]],"g":[],"h":[]}}"#,
        r#"{"ev":"job","t_ms":400,"id":0,"workload":"kernel:dot","state":"done","status":"ok","worker":0}"#,
        r#"{"ev":"progress","t_ms":400,"id":0,"worker":0,"insns":2000000,"mips":28.0,"im":15000,"bbm":285000,"sbm":1700000,"rollbacks":12}"#,
        r#"{"ev":"end","t_ms":650,"ok":2,"failed":0}"#,
    ];

    fn replayed() -> Model {
        let mut m = Model::new();
        for l in RECORDING {
            m.apply_line(l).unwrap();
        }
        m
    }

    #[test]
    fn model_folds_the_stream() {
        let m = replayed();
        assert!(m.synced);
        assert_eq!(m.end, Some((2, 0)));
        assert_eq!(m.t_ms, 650);
        let meta = m.campaign.as_ref().unwrap();
        assert_eq!((meta.jobs, meta.workers), (2, 2));
        let j0 = &m.jobs[&0];
        assert_eq!(j0.state, "done");
        assert_eq!(j0.status.as_deref(), Some("ok"));
        assert_eq!(j0.insns, 2_000_000);
        let j1 = &m.jobs[&1];
        assert_eq!(j1.state, "running");
        assert_eq!(j1.mips, 21.0);
        // The delta folded into a per-job registry.
        assert_eq!(m.metrics[&1].counter_value("sys.guest_insns"), Some(800_000));
    }

    #[test]
    fn golden_render_is_deterministic() {
        let frame = replayed().render(80);
        let golden = "\
darco-top — demo  [finished]
elapsed 00:00  jobs 2  workers 2  quantum 5000
--------------------------------------------------------------------------------
running 1   done 1   aggregate     21.0 MIPS        2.8M insns
mode residency  IM   3.4%  BBM  35.9%  SBM  60.7%   rollbacks 12 (4.29/Mi)
workers  w0:0 w1:1
campaign finished: 2 ok, 0 failed
--------------------------------------------------------------------------------
  id workload               state          insns    mips mode             rb
   0 kernel:dot             ok              2.0M    28.0 o#########       12
   1 kernel:crc32           running       800.0k    21.0 .ooooooooo        0
10 events
";
        assert_eq!(frame, golden, "render drifted:\n{frame}");
        // And rendering twice is identical (purity).
        assert_eq!(frame, replayed().render(80));
    }

    #[test]
    fn renders_before_campaign_and_at_odd_widths() {
        let mut m = Model::new();
        let early = m.render(10); // clamped to 40
        assert!(early.contains("waiting for campaign"));
        m.apply_line(RECORDING[0]).unwrap();
        m.apply_line(RECORDING[4]).unwrap();
        let frame = m.render(200);
        assert!(frame.contains("kernel") || frame.contains('0'));
        assert!(m.apply_line("not json").is_err());
        assert!(m.apply_line(r#"{"no_ev":1}"#).is_err());
        assert!(m.apply_line(r#"{"ev":"future-kind","t_ms":9}"#).is_ok(), "unknown kinds skip");
        assert!(m.apply_line("").is_ok(), "blank lines are benign");
    }

    #[test]
    fn fuzz_events_fold_and_render_conditionally() {
        let mut m = replayed();
        assert!(m.fuzz.is_none(), "plain fleet streams carry no fuzz stats");
        assert!(!m.render(80).contains("fuzz "));
        m.apply_line(
            r#"{"ev":"fuzz","t_ms":700,"execs":230,"corpus":41,"edges":187,"divergences":2}"#,
        )
        .unwrap();
        let f = m.fuzz.unwrap();
        assert_eq!((f.execs, f.corpus, f.edges, f.divergences), (230, 41, 187, 2));
        let frame = m.render(80);
        assert!(frame.contains("fuzz  execs 230  corpus 41  cov edges 187  divergences 2"), "{frame}");
    }

    #[test]
    fn timing_panel_folds_from_deltas_and_renders_conditionally() {
        let mut m = replayed();
        assert!(m.timing_panel().is_none(), "functional streams carry no timing counters");
        assert!(!m.render(80).contains("timing  CPI"));
        // Two jobs report timing deltas: 1.5M cycles over 1M guest insns
        // and 2.5M over 1M — aggregate CPI 2.00; 4k + 2k dl1 misses over
        // 2M insns — 3.00 MPKI; 1k + 1k mispredicts — 1.00 MPKI.
        m.apply_line(
            r#"{"ev":"delta","t_ms":500,"id":0,"delta":{"delta":1,"from":"0","to":"1","c":[["timing.cycles","1500000"],["sys.guest_insns","1000000"],["timing.dl1_misses","4000"],["timing.mispredicts","1000"]],"g":[],"h":[]}}"#,
        )
        .unwrap();
        m.apply_line(
            r#"{"ev":"delta","t_ms":501,"id":1,"delta":{"delta":1,"from":"2","to":"3","c":[["timing.cycles","2500000"],["sys.guest_insns","1000000"],["timing.dl1_misses","2000"],["timing.mispredicts","1000"]],"g":[],"h":[]}}"#,
        )
        .unwrap();
        let t = m.timing_panel().unwrap();
        assert_eq!(t.jobs, 2);
        assert!((t.cpi - 2.0).abs() < 1e-9, "{t:?}");
        assert!((t.dl1_mpki - 3.0).abs() < 1e-9, "{t:?}");
        assert!((t.br_mpki - 1.0).abs() < 1e-9, "{t:?}");
        let frame = m.render(80);
        assert!(
            frame.contains("timing  CPI 2.00  dl1 3.00 MPKI  br-miss 1.00 MPKI  (2 jobs reporting)"),
            "{frame}"
        );
    }

    #[test]
    fn mode_bar_is_always_ten_wide() {
        for mode in [(0, 0, 0), (1, 0, 0), (1, 1, 1), (99, 1, 0), (0, 1, 99), (7, 13, 80)] {
            assert_eq!(mode_bar(mode).chars().count(), 10, "{mode:?}");
        }
        assert_eq!(mode_bar((0, 0, 1)), "##########");
    }
}
