//! Optimizer semantic-equivalence tests: for random straight-line
//! regions, the fully optimized + scheduled + register-allocated host code
//! must compute exactly what the unoptimized translation computes.
//!
//! This is the compiler-correctness half of DARCO's validation story,
//! isolated from the guest ISA: if these hold, a divergence caught by the
//! controller points at translation (guest semantics), not optimization.
//! Random regions come from the internal seeded PRNG (deterministic).

use darco_guest::prng::{Rng, SmallRng};
use darco_guest::{GuestMem, Width};
use darco_host::emu::{ExitCause, HostEmulator, IbtcTable, ProfTable};
use darco_host::runtime::build_runtime;
use darco_host::sink::NullSink;
use darco_host::{HAluOp, HReg};
use darco_ir::codegen::{self, CodegenCtx, SPILL_AREA_BASE};
use darco_ir::ddg;
use darco_ir::passes::{run_pipeline, OptLevel};
use darco_ir::sched::{list_schedule, SchedConfig};
use darco_ir::{ExitDesc, ExitKind, Inst, IrOp, RegClass, Region, VReg};

/// One region operation over a small pool of values.
#[derive(Debug, Clone)]
enum ROp {
    Const(u32),
    Alu(u8, u8, u8),
    Load(u8),
    Store(u8, u8),
    Cvt(u8),
    FAdd(u8, u8),
}

fn rop(rng: &mut SmallRng) -> ROp {
    match rng.gen_range(0u32..6) {
        0 => ROp::Const(rng.gen()),
        1 => ROp::Alu(rng.gen_range(0u8..12), rng.gen_range(0u8..8), rng.gen_range(0u8..8)),
        2 => ROp::Load(rng.gen_range(0u8..16)),
        3 => ROp::Store(rng.gen_range(0u8..16), rng.gen_range(0u8..8)),
        4 => ROp::Cvt(rng.gen_range(0u8..8)),
        _ => ROp::FAdd(rng.gen_range(0u8..4), rng.gen_range(0u8..4)),
    }
}

const ALU_OPS: [HAluOp; 12] = [
    HAluOp::Add,
    HAluOp::Sub,
    HAluOp::Mul,
    HAluOp::And,
    HAluOp::Or,
    HAluOp::Xor,
    HAluOp::Shl,
    HAluOp::Shr,
    HAluOp::Sar,
    HAluOp::SltS,
    HAluOp::SltU,
    HAluOp::Seq,
];

/// Builds a region from the op list: maintains rolling pools of int/fp
/// values; publishes the most recent values through the exit.
fn build_region(ops: &[ROp]) -> Region {
    let mut r = Region::new(0x1000);
    let base = r.new_vreg(RegClass::Int);
    r.entry.gprs[6] = Some(base); // ESI-style array base
    let mut ints: Vec<VReg> = Vec::new();
    let mut fps: Vec<VReg> = Vec::new();
    for i in 0..8 {
        let v = r.new_vreg(RegClass::Int);
        if i < 4 {
            // seed ints from entry registers 0..3
            r.entry.gprs[i] = Some(v);
            ints.push(v);
        } else {
            let f = r.new_vreg(RegClass::Fp);
            r.entry.fprs[i - 4] = Some(f);
            fps.push(f);
        }
    }
    let mut seq = 0u16;
    for op in ops {
        match op {
            ROp::Const(c) => {
                let v = r.emit(IrOp::ConstI(*c), vec![], RegClass::Int);
                ints.push(v);
            }
            ROp::Alu(o, a, b) => {
                let op = ALU_OPS[*o as usize % ALU_OPS.len()];
                let a = ints[*a as usize % ints.len()];
                let b = ints[*b as usize % ints.len()];
                let v = r.emit(IrOp::Alu(op), vec![a, b], RegClass::Int);
                ints.push(v);
            }
            ROp::Load(slot) => {
                let off = r.emit(IrOp::ConstI(*slot as u32 * 4), vec![], RegClass::Int);
                let addr = r.emit(IrOp::Alu(HAluOp::Add), vec![base, off], RegClass::Int);
                seq += 1;
                let dst = r.new_vreg(RegClass::Int);
                let mut inst =
                    Inst::new(IrOp::Load { width: Width::D, sign: false }, Some(dst), vec![addr]);
                inst.seq = seq;
                r.push(inst);
                ints.push(dst);
            }
            ROp::Store(slot, v) => {
                let off = r.emit(IrOp::ConstI(*slot as u32 * 4), vec![], RegClass::Int);
                let addr = r.emit(IrOp::Alu(HAluOp::Add), vec![base, off], RegClass::Int);
                let val = ints[*v as usize % ints.len()];
                seq += 1;
                let mut inst = Inst::new(IrOp::Store { width: Width::D }, None, vec![addr, val]);
                inst.seq = seq;
                r.push(inst);
            }
            ROp::Cvt(i) => {
                let a = ints[*i as usize % ints.len()];
                let f = r.emit(IrOp::CvtIF, vec![a], RegClass::Fp);
                fps.push(f);
                let back = r.emit(IrOp::CvtFI, vec![f], RegClass::Int);
                ints.push(back);
            }
            ROp::FAdd(a, b) => {
                let a = fps[*a as usize % fps.len()];
                let b = fps[*b as usize % fps.len()];
                let f = r.emit(IrOp::FAlu(darco_host::FAluOp::Add), vec![a, b], RegClass::Fp);
                fps.push(f);
            }
        }
    }
    let mut e = ExitDesc::new(ExitKind::Jump { target: 0x2000 });
    for (i, v) in ints.iter().rev().take(4).enumerate() {
        e.gprs[i] = Some(*v);
    }
    for (i, f) in fps.iter().rev().take(4).enumerate() {
        e.fprs[i] = Some(*f);
    }
    let idx = r.exits.len();
    r.exits.push(e);
    r.push(Inst::new(IrOp::ExitAlways { exit: idx }, None, vec![]));
    r.validate();
    r
}

/// Compiles and executes a region; returns (gprs, fprs-bits, memory words).
fn execute(region: &Region, optimize: bool) -> ([u32; 8], [u64; 8], Vec<u32>) {
    let mut region = region.clone();
    if optimize {
        run_pipeline(&mut region, OptLevel::O2);
        ddg::memory_opt(&mut region);
        run_pipeline(&mut region, OptLevel::O2);
        let g = ddg::build(&mut region, true);
        list_schedule(&mut region, &g, &SchedConfig::default());
        region.validate();
    }
    let rt = build_runtime();
    let base_addr = rt.code.len();
    let ctx = CodegenCtx {
        base: base_addr,
        sin_addr: rt.sin_entry,
        cos_addr: rt.cos_entry,
        entry_count_idx: None,
        sb_mode: true,
    };
    let out = codegen::generate(&region, &ctx);
    let mut arena = rt.code;
    arena.extend(out.code);

    let mut emu = HostEmulator::new();
    // Deterministic initial state.
    for i in 0..4 {
        emu.iregs[i] = 0x100 + i as u32 * 7;
    }
    for i in 0..4 {
        emu.fregs[i] = i as f64 * 1.5 - 2.0;
    }
    emu.iregs[6] = 0x0040_0000;
    emu.iregs[darco_host::regs::R_SPILL_BASE.index()] = SPILL_AREA_BASE;
    let _ = HReg(0);
    let mut mem = GuestMem::new();
    mem.map_zero(0x0040_0000 >> 12);
    mem.map_zero(SPILL_AREA_BASE >> 12);
    for s in 0..16u32 {
        mem.write_u32(0x0040_0000 + s * 4, 0xABC0 + s).unwrap();
    }
    let ibtc = IbtcTable::new();
    let mut prof = ProfTable::new();
    let info = emu.execute(&arena, base_addr, &mut mem, &ibtc, &mut prof, u64::MAX, &mut NullSink);
    assert_eq!(info.cause, ExitCause::Exit { id: 0 });
    let mut gprs = [0u32; 8];
    gprs.copy_from_slice(&emu.iregs[..8]);
    let mut fprs = [0u64; 8];
    for (slot, f) in fprs.iter_mut().zip(&emu.fregs) {
        *slot = f.to_bits();
    }
    let words: Vec<u32> = (0..16).map(|s| mem.read_u32(0x0040_0000 + s * 4).unwrap()).collect();
    (gprs, fprs, words)
}

#[test]
fn optimized_pipeline_preserves_semantics() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x1234_5678 ^ seed);
        let n = rng.gen_range(4usize..40);
        let ops: Vec<ROp> = (0..n).map(|_| rop(&mut rng)).collect();
        let region = build_region(&ops);
        let plain = execute(&region, false);
        let opt = execute(&region, true);
        assert_eq!(plain.0, opt.0, "seed {seed}: guest register results differ");
        assert_eq!(plain.1, opt.1, "seed {seed}: fp register results differ");
        assert_eq!(plain.2, opt.2, "seed {seed}: memory results differ");
    }
}
