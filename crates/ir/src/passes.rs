//! The optimizer passes.
//!
//! Each pass implements [`Pass`] and can be enabled, disabled or reordered
//! independently ("plug-and-play", paper §IV/§V-D). [`run_pipeline`] runs
//! the paper's pipeline for a given [`OptLevel`].

use crate::ir::{Inst, IrOp, Region, VReg};
use darco_guest::exec as gexec;
use darco_guest::insn::AluOp;
use darco_guest::Flags;
use darco_host::emu::{eval_falu, eval_halu};
use darco_host::{FCmpOp, FUnOp2, HAluOp};
use std::collections::HashMap;

/// Statistics returned by one pass invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Instructions rewritten in place (e.g. folded to constants).
    pub rewritten: u64,
    /// Instructions removed.
    pub removed: u64,
}

impl PassStats {
    /// Merges another pass's stats into this one.
    pub fn absorb(&mut self, other: PassStats) {
        self.rewritten += other.rewritten;
        self.removed += other.removed;
    }
}

/// An optimizer pass over a region.
pub trait Pass {
    /// Short name (for the debug toolchain's per-stage replay).
    fn name(&self) -> &'static str;
    /// Runs the pass.
    fn run(&self, region: &mut Region) -> PassStats;
}

/// Optimization levels for the ablation benches.
///
/// * `O0` — straight translation, no optimization;
/// * `O1` — constant folding + DCE (the paper's BBM-level optimizations);
/// * `O2` — adds copy propagation and CSE (the SBM forward pass);
/// * `O3` — `O2` plus DDG memory optimizations and scheduling (handled by
///   the caller; the pass pipeline itself is the same as `O2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    O0,
    O1,
    O2,
    O3,
}

/// Runs the pass pipeline for an optimization level, returning accumulated
/// stats.
pub fn run_pipeline(region: &mut Region, level: OptLevel) -> PassStats {
    let mut stats = PassStats::default();
    let passes: Vec<Box<dyn Pass>> = match level {
        OptLevel::O0 => vec![],
        OptLevel::O1 => vec![Box::new(ConstFold), Box::new(Dce)],
        OptLevel::O2 | OptLevel::O3 => vec![
            Box::new(ConstFold),
            Box::new(CopyProp),
            Box::new(Cse),
            Box::new(CopyProp),
            Box::new(Dce),
        ],
    };
    for p in passes {
        stats.absorb(p.run(region));
    }
    stats
}

// ---------------------------------------------------------------------------

/// Constant folding (and constant propagation: operands are resolved
/// through already-folded constants, so chains collapse in one pass).
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        let mut iconst: HashMap<VReg, u32> = HashMap::new();
        let mut fconst: HashMap<VReg, u64> = HashMap::new();
        for inst in &mut region.insts {
            match inst.op {
                IrOp::ConstI(v) => {
                    iconst.insert(inst.dst.unwrap(), v);
                    continue;
                }
                IrOp::ConstF(v) => {
                    fconst.insert(inst.dst.unwrap(), v);
                    continue;
                }
                _ => {}
            }
            let folded: Option<IrOp> = match inst.op {
                IrOp::Copy => match region_class_is_int(inst, &iconst, &fconst) {
                    Some(FoldedConst::I(v)) => Some(IrOp::ConstI(v)),
                    Some(FoldedConst::F(v)) => Some(IrOp::ConstF(v)),
                    None => None,
                },
                IrOp::Alu(op) => {
                    // Division folding is skipped: a guest divide-by-zero
                    // must fault at runtime, not at translation time.
                    if matches!(op, HAluOp::Div | HAluOp::Rem) {
                        None
                    } else {
                        let a = iconst.get(&inst.srcs[0]).copied();
                        let b = inst.srcs.get(1).and_then(|s| iconst.get(s)).copied();
                        match (a, b, inst.srcs.len()) {
                            (Some(a), Some(b), 2) => Some(IrOp::ConstI(eval_halu(op, a, b))),
                            (Some(a), None, 1) => Some(IrOp::ConstI(eval_halu(op, a, 0))),
                            _ => None,
                        }
                    }
                }
                IrOp::FAlu(op) => {
                    let a = fconst.get(&inst.srcs[0]).copied();
                    let b = fconst.get(&inst.srcs[1]).copied();
                    if let (Some(a), Some(b)) = (a, b) {
                        let r = eval_falu(op, f64::from_bits(a), f64::from_bits(b));
                        Some(IrOp::ConstF(r.to_bits()))
                    } else {
                        None
                    }
                }
                IrOp::FUn(op) => fconst.get(&inst.srcs[0]).map(|a| {
                    let a = f64::from_bits(*a);
                    let r = match op {
                        FUnOp2::Mov => a,
                        FUnOp2::Sqrt => a.sqrt(),
                        FUnOp2::Abs => a.abs(),
                        FUnOp2::Neg => -a,
                    };
                    IrOp::ConstF(r.to_bits())
                }),
                IrOp::FCmp(op) => {
                    let a = fconst.get(&inst.srcs[0]).copied();
                    let b = fconst.get(&inst.srcs[1]).copied();
                    if let (Some(a), Some(b)) = (a, b) {
                        let (a, b) = (f64::from_bits(a), f64::from_bits(b));
                        let v = match op {
                            FCmpOp::Lt => a < b,
                            FCmpOp::Le => a <= b,
                            FCmpOp::Eq => a == b,
                            FCmpOp::Unord => a.is_nan() || b.is_nan(),
                        };
                        Some(IrOp::ConstI(v as u32))
                    } else {
                        None
                    }
                }
                IrOp::CvtIF => iconst
                    .get(&inst.srcs[0])
                    .map(|a| IrOp::ConstF(((*a as i32) as f64).to_bits())),
                IrOp::CvtFI => fconst
                    .get(&inst.srcs[0])
                    .map(|a| IrOp::ConstI(f64::from_bits(*a) as i32 as u32)),
                IrOp::FSin => fconst.get(&inst.srcs[0]).map(|a| {
                    IrOp::ConstF(darco_guest::softfp::sin_spec(f64::from_bits(*a)).to_bits())
                }),
                IrOp::FCos => fconst.get(&inst.srcs[0]).map(|a| {
                    IrOp::ConstF(darco_guest::softfp::cos_spec(f64::from_bits(*a)).to_bits())
                }),
                _ => None,
            };
            if let Some(op) = folded {
                match op {
                    IrOp::ConstI(v) => {
                        iconst.insert(inst.dst.unwrap(), v);
                    }
                    IrOp::ConstF(v) => {
                        fconst.insert(inst.dst.unwrap(), v);
                    }
                    _ => unreachable!(),
                }
                inst.op = op;
                inst.srcs.clear();
                stats.rewritten += 1;
            }
        }
        stats
    }
}

enum FoldedConst {
    I(u32),
    F(u64),
}

fn region_class_is_int(
    inst: &Inst,
    iconst: &HashMap<VReg, u32>,
    fconst: &HashMap<VReg, u64>,
) -> Option<FoldedConst> {
    let s = inst.srcs[0];
    if let Some(v) = iconst.get(&s) {
        return Some(FoldedConst::I(*v));
    }
    if let Some(v) = fconst.get(&s) {
        return Some(FoldedConst::F(*v));
    }
    None
}

// ---------------------------------------------------------------------------

/// Copy propagation: rewrites uses of `Copy` destinations to the copy
/// source (the dead copies are later removed by DCE).
pub struct CopyProp;

impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copyprop"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        let mut alias: HashMap<VReg, VReg> = HashMap::new();
        let resolve = |alias: &HashMap<VReg, VReg>, mut v: VReg| {
            while let Some(&t) = alias.get(&v) {
                v = t;
            }
            v
        };
        let mut exits = std::mem::take(&mut region.exits);
        for inst in &mut region.insts {
            for s in &mut inst.srcs {
                let r = resolve(&alias, *s);
                if r != *s {
                    *s = r;
                    stats.rewritten += 1;
                }
            }
            if inst.op == IrOp::Copy {
                alias.insert(inst.dst.unwrap(), inst.srcs[0]);
            }
        }
        for e in &mut exits {
            for v in e
                .gprs
                .iter_mut()
                .chain(e.fprs.iter_mut())
                .chain(e.flags.iter_mut())
                .chain(std::iter::once(&mut e.indirect_target))
                .flatten()
            {
                *v = resolve(&alias, *v);
            }
            if let Some((k, a, b)) = e.deferred {
                e.deferred = Some((k, resolve(&alias, a), resolve(&alias, b)));
            }
        }
        region.exits = exits;
        stats
    }
}

// ---------------------------------------------------------------------------

/// Common subexpression elimination over pure operations. Loads are *not*
/// CSE'd here (redundant load elimination runs in the DDG phase where
/// intervening stores are visible).
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        // Key: textual op identity + sources.
        let mut table: HashMap<(String, Vec<VReg>), VReg> = HashMap::new();
        for inst in &mut region.insts {
            if !inst.op.is_pure() || inst.dst.is_none() || inst.op == IrOp::Copy {
                continue;
            }
            let key = (format!("{:?}", inst.op), inst.srcs.clone());
            match table.get(&key) {
                Some(&prev) => {
                    inst.op = IrOp::Copy;
                    inst.srcs = vec![prev];
                    stats.rewritten += 1;
                }
                None => {
                    table.insert(key, inst.dst.unwrap());
                }
            }
        }
        stats
    }
}

// ---------------------------------------------------------------------------

/// Backward dead code elimination. Stores, asserts and exits (plus
/// everything they transitively use) are live roots.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        let mut live = vec![false; region.vreg_count()];
        let mut keep = vec![false; region.insts.len()];
        for (i, inst) in region.insts.iter().enumerate().rev() {
            let root = match inst.op {
                IrOp::Store { .. } | IrOp::StoreF | IrOp::Assert { .. } => true,
                IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } => {
                    for u in region.exits[exit].used_vregs() {
                        live[u.0 as usize] = true;
                    }
                    true
                }
                // Dead loads are removable (see DESIGN.md: a skipped page
                // request is not an architectural difference).
                _ => false,
            };
            let needed = root || inst.dst.is_some_and(|d| live[d.0 as usize]);
            if needed {
                keep[i] = true;
                for s in &inst.srcs {
                    live[s.0 as usize] = true;
                }
            }
        }
        let mut i = 0;
        region.insts.retain(|_| {
            let k = keep[i];
            i += 1;
            if !k {
                stats.removed += 1;
            }
            k
        });
        stats
    }
}

// ---------------------------------------------------------------------------

/// Cross-checks constant folding of guest flag helpers against the guest
/// executor (used by optimizer tests; exported for the fault-injection
/// debug tests too).
pub fn guest_sub_flags(a: u32, b: u32) -> Flags {
    let mut fl = Flags::default();
    gexec::eval_alu(AluOp::Sub, a, b, &mut fl);
    fl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ExitDesc, ExitKind, RegClass};

    fn region_with_exit(f: impl FnOnce(&mut Region) -> Vec<(usize, VReg)>) -> Region {
        let mut r = Region::new(0x1000);
        let outs = f(&mut r);
        let mut e = ExitDesc::new(ExitKind::Jump { target: 0x2000 });
        for (g, v) in outs {
            e.gprs[g] = Some(v);
        }
        r.exits.push(e);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        r
    }

    #[test]
    fn constfold_collapses_chains() {
        let mut r = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(6), vec![], RegClass::Int);
            let b = r.emit(IrOp::ConstI(7), vec![], RegClass::Int);
            let m = r.emit(IrOp::Alu(HAluOp::Mul), vec![a, b], RegClass::Int);
            let k = r.emit(IrOp::ConstI(58), vec![], RegClass::Int);
            let s = r.emit(IrOp::Alu(HAluOp::Sub), vec![m, k], RegClass::Int); // 42 - 58... wait
            vec![(0, s)]
        });
        let st = ConstFold.run(&mut r);
        assert_eq!(st.rewritten, 2, "mul and sub both fold");
        // The sub is now ConstI(42 - 58) as u32.
        let last_val = r
            .insts
            .iter()
            .filter_map(|i| match i.op {
                IrOp::ConstI(v) => Some(v),
                _ => None,
            })
            .next_back()
            .unwrap();
        assert_eq!(last_val, 42u32.wrapping_sub(58));
        r.validate();
    }

    #[test]
    fn constfold_respects_division_faults() {
        let mut r = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(10), vec![], RegClass::Int);
            let z = r.emit(IrOp::ConstI(0), vec![], RegClass::Int);
            let d = r.emit(IrOp::Alu(HAluOp::Div), vec![a, z], RegClass::Int);
            vec![(0, d)]
        });
        let st = ConstFold.run(&mut r);
        assert_eq!(st.rewritten, 0, "division must not fold");
    }

    #[test]
    fn constfold_folds_fp_and_transcendentals() {
        let mut r = region_with_exit(|r| {
            let x = r.emit(IrOp::ConstF(1.25f64.to_bits()), vec![], RegClass::Fp);
            let s = r.emit(IrOp::FSin, vec![x], RegClass::Fp);
            let c = r.emit(IrOp::CvtFI, vec![s], RegClass::Int);
            vec![(0, c)]
        });
        let st = ConstFold.run(&mut r);
        assert_eq!(st.rewritten, 2);
        let folded = r
            .insts
            .iter()
            .find_map(|i| match i.op {
                IrOp::ConstF(v) if v == darco_guest::softfp::sin_spec(1.25).to_bits() => Some(()),
                _ => None,
            });
        assert!(folded.is_some(), "sin folded through the architectural spec");
    }

    #[test]
    fn copyprop_rewrites_uses_and_exits() {
        let mut r = region_with_exit(|r| {
            let a = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            let c1 = r.emit(IrOp::Copy, vec![a], RegClass::Int);
            let c2 = r.emit(IrOp::Copy, vec![c1], RegClass::Int);
            let s = r.emit(IrOp::Alu(HAluOp::Add), vec![c2, c2], RegClass::Int);
            vec![(0, s), (1, c2)]
        });
        CopyProp.run(&mut r);
        // The add now reads the entry vreg directly; exit gpr1 points at it.
        let add = r.insts.iter().find(|i| matches!(i.op, IrOp::Alu(HAluOp::Add))).unwrap();
        assert_eq!(add.srcs, vec![VReg(0), VReg(0)]);
        assert_eq!(r.exits[0].gprs[1], Some(VReg(0)));
        r.validate();
    }

    #[test]
    fn cse_then_dce_removes_duplicate_work() {
        let mut r = region_with_exit(|r| {
            let a = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            let x = r.emit(IrOp::Alu(HAluOp::Mul), vec![a, a], RegClass::Int);
            let y = r.emit(IrOp::Alu(HAluOp::Mul), vec![a, a], RegClass::Int); // duplicate
            let s = r.emit(IrOp::Alu(HAluOp::Add), vec![x, y], RegClass::Int);
            vec![(0, s)]
        });
        let n_before = r.insts.len();
        Cse.run(&mut r);
        CopyProp.run(&mut r);
        let st = Dce.run(&mut r);
        assert_eq!(st.removed, 1, "the CSE'd duplicate (now a dead copy) is removed");
        assert_eq!(r.insts.len(), n_before - 1);
        r.validate();
    }

    #[test]
    fn dce_keeps_stores_and_their_inputs() {
        let mut r = region_with_exit(|r| {
            let a = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            let addr = r.emit(IrOp::ConstI(0x100), vec![], RegClass::Int);
            r.push(Inst::new(IrOp::Store { width: darco_guest::Width::D }, None, vec![addr, a]));
            let dead = r.emit(IrOp::Alu(HAluOp::Add), vec![a, a], RegClass::Int);
            let _ = dead;
            vec![]
        });
        let st = Dce.run(&mut r);
        assert_eq!(st.removed, 1, "only the dead add is removed");
        assert!(r.insts.iter().any(|i| i.op.is_store()));
        r.validate();
    }

    #[test]
    fn full_pipeline_levels() {
        for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let mut r = region_with_exit(|r| {
                let a = r.emit(IrOp::ConstI(2), vec![], RegClass::Int);
                let b = r.emit(IrOp::ConstI(3), vec![], RegClass::Int);
                let s = r.emit(IrOp::Alu(HAluOp::Add), vec![a, b], RegClass::Int);
                vec![(0, s)]
            });
            let st = run_pipeline(&mut r, lvl);
            r.validate();
            if lvl == OptLevel::O0 {
                assert_eq!(st.rewritten + st.removed, 0);
            } else {
                assert!(st.rewritten > 0);
            }
        }
    }
}
