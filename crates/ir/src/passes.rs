//! The optimizer passes.
//!
//! Each pass implements [`Pass`] and can be enabled, disabled or reordered
//! independently ("plug-and-play", paper §IV/§V-D). [`run_pipeline`] runs
//! the paper's pipeline for a given [`OptLevel`].

use crate::ir::{Inst, IrOp, Region, VReg};
use darco_guest::exec as gexec;
use darco_guest::insn::AluOp;
use darco_guest::Flags;
use darco_host::emu::{eval_falu, eval_halu};
use darco_host::{FCmpOp, FUnOp2, HAluOp};
use std::collections::HashMap;

/// Statistics returned by one pass invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Instructions rewritten in place (e.g. folded to constants).
    pub rewritten: u64,
    /// Instructions removed.
    pub removed: u64,
    /// Verifier invocations performed while running the pipeline
    /// (non-zero only in verify-each mode).
    pub verifies: u64,
}

impl PassStats {
    /// Merges another pass's stats into this one.
    pub fn absorb(&mut self, other: PassStats) {
        self.rewritten += other.rewritten;
        self.removed += other.removed;
        self.verifies += other.verifies;
    }
}

/// An optimizer pass over a region.
pub trait Pass {
    /// Short name (for the debug toolchain's per-stage replay).
    fn name(&self) -> &'static str;
    /// Runs the pass.
    fn run(&self, region: &mut Region) -> PassStats;
}

/// Optimization levels for the ablation benches.
///
/// * `O0` — straight translation, no optimization;
/// * `O1` — constant folding + DCE (the paper's BBM-level optimizations);
/// * `O2` — adds copy propagation and CSE (the SBM forward pass);
/// * `O3` — `O2` plus DDG memory optimizations and scheduling (handled by
///   the caller; the pass pipeline itself is the same as `O2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    O0,
    O1,
    O2,
    O3,
}

/// The pass pipeline for an optimization level.
pub fn level_passes(level: OptLevel) -> Vec<Box<dyn Pass>> {
    match level {
        OptLevel::O0 => vec![],
        OptLevel::O1 => vec![Box::new(ConstFold), Box::new(Dce)],
        OptLevel::O2 | OptLevel::O3 => vec![
            Box::new(ConstFold),
            Box::new(CopyProp),
            Box::new(Cse),
            Box::new(CopyProp),
            Box::new(Dce),
        ],
    }
}

/// A pass broke an IR invariant (verify-each mode): names the offending
/// pass and carries the verifier's findings.
#[derive(Debug)]
pub struct VerifyFailure {
    /// The pass after which verification failed (`"<input>"` when the
    /// region was already invalid before the first pass ran).
    pub pass: &'static str,
    /// The findings.
    pub report: crate::verify::VerifyReport,
}

impl std::fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IR verification failed after pass `{}`: {}", self.pass, self.report)
    }
}

/// Runs a pass sequence. With `verify_each`, the verifier runs on the
/// incoming region and again after every pass, so a broken invariant is
/// pinned on the pass that introduced it.
pub fn run_passes(
    region: &mut Region,
    passes: &[Box<dyn Pass>],
    verify_each: bool,
) -> Result<PassStats, Box<VerifyFailure>> {
    let mut stats = PassStats::default();
    let check = |region: &Region, pass: &'static str, stats: &mut PassStats| {
        stats.verifies += 1;
        let report = crate::verify::verify_region(region);
        if report.is_ok() {
            Ok(())
        } else {
            Err(Box::new(VerifyFailure { pass, report }))
        }
    };
    if verify_each {
        check(region, "<input>", &mut stats)?;
    }
    for p in passes {
        stats.absorb(p.run(region));
        if verify_each {
            check(region, p.name(), &mut stats)?;
        }
    }
    Ok(stats)
}

/// Runs the pass pipeline for an optimization level, returning accumulated
/// stats. Debug builds verify the region between passes (verify-each) and
/// panic naming the offending pass; release builds leave verification to
/// the translation layer's pre-cache-insertion check.
///
/// # Panics
/// In debug builds, when a pass breaks an IR invariant.
pub fn run_pipeline(region: &mut Region, level: OptLevel) -> PassStats {
    match run_passes(region, &level_passes(level), cfg!(debug_assertions)) {
        Ok(stats) => stats,
        Err(failure) => panic!("{failure}"),
    }
}

/// Runs a pass sequence under **semantic translation validation**
/// (DESIGN.md §13): the region is summarized symbolically before the
/// first pass, re-summarized and compared after *every* pass, so a
/// semantics-changing rewrite — one the structural verifier cannot see,
/// like a miscompiled constant — is pinned on the pass that introduced
/// it. The structural verify-each check also runs when `verify_each` is
/// set, exactly as in [`run_passes`].
pub fn run_passes_validated(
    region: &mut Region,
    passes: &[Box<dyn Pass>],
    verify_each: bool,
) -> Result<PassStats, Box<VerifyFailure>> {
    let mut stats = PassStats::default();
    let check = |region: &Region, pass: &'static str, stats: &mut PassStats| {
        stats.verifies += 1;
        let report = crate::verify::verify_region(region);
        if report.is_ok() {
            Ok(())
        } else {
            Err(Box::new(VerifyFailure { pass, report }))
        }
    };
    if verify_each {
        check(region, "<input>", &mut stats)?;
    }
    let mut pool = crate::sym::TermPool::new();
    let baseline = crate::sym::try_summarize(region, &mut pool, "<input>")
        .map_err(|report| Box::new(VerifyFailure { pass: "<input>", report }))?;
    for p in passes {
        stats.absorb(p.run(region));
        if verify_each {
            check(region, p.name(), &mut stats)?;
        }
        stats.verifies += 1;
        let after = crate::sym::try_summarize(region, &mut pool, p.name())
            .map_err(|report| Box::new(VerifyFailure { pass: p.name(), report }))?;
        let report = crate::sym::check_equiv(&pool, &baseline, &after, p.name());
        if !report.is_ok() {
            return Err(Box::new(VerifyFailure { pass: p.name(), report }));
        }
    }
    Ok(stats)
}

/// [`run_pipeline`], but with per-pass semantic validation (see
/// [`run_passes_validated`]).
///
/// # Errors
/// Returns the failure naming the offending pass when a pass breaks an
/// IR invariant or changes the region's guest-observable semantics.
pub fn run_pipeline_validated(
    region: &mut Region,
    level: OptLevel,
) -> Result<PassStats, Box<VerifyFailure>> {
    run_passes_validated(region, &level_passes(level), cfg!(debug_assertions))
}

// ---------------------------------------------------------------------------

/// Constant folding (and constant propagation: operands are resolved
/// through already-folded constants, so chains collapse in one pass).
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        let mut iconst: HashMap<VReg, u32> = HashMap::new();
        let mut fconst: HashMap<VReg, u64> = HashMap::new();
        for inst in &mut region.insts {
            match inst.op {
                IrOp::ConstI(v) => {
                    iconst.insert(inst.dst.unwrap(), v);
                    continue;
                }
                IrOp::ConstF(v) => {
                    fconst.insert(inst.dst.unwrap(), v);
                    continue;
                }
                _ => {}
            }
            let folded: Option<IrOp> = match inst.op {
                IrOp::Copy => match region_class_is_int(inst, &iconst, &fconst) {
                    Some(FoldedConst::I(v)) => Some(IrOp::ConstI(v)),
                    Some(FoldedConst::F(v)) => Some(IrOp::ConstF(v)),
                    None => None,
                },
                IrOp::Alu(op) => {
                    // Division folding is skipped: a guest divide-by-zero
                    // must fault at runtime, not at translation time.
                    if matches!(op, HAluOp::Div | HAluOp::Rem) {
                        None
                    } else {
                        let a = iconst.get(&inst.srcs[0]).copied();
                        let b = inst.srcs.get(1).and_then(|s| iconst.get(s)).copied();
                        match (a, b, inst.srcs.len()) {
                            (Some(a), Some(b), 2) => Some(IrOp::ConstI(eval_halu(op, a, b))),
                            (Some(a), None, 1) => Some(IrOp::ConstI(eval_halu(op, a, 0))),
                            _ => None,
                        }
                    }
                }
                IrOp::FAlu(op) => {
                    let a = fconst.get(&inst.srcs[0]).copied();
                    let b = fconst.get(&inst.srcs[1]).copied();
                    if let (Some(a), Some(b)) = (a, b) {
                        let r = eval_falu(op, f64::from_bits(a), f64::from_bits(b));
                        Some(IrOp::ConstF(r.to_bits()))
                    } else {
                        None
                    }
                }
                IrOp::FUn(op) => fconst.get(&inst.srcs[0]).map(|a| {
                    let a = f64::from_bits(*a);
                    let r = match op {
                        FUnOp2::Mov => a,
                        FUnOp2::Sqrt => a.sqrt(),
                        FUnOp2::Abs => a.abs(),
                        FUnOp2::Neg => -a,
                    };
                    IrOp::ConstF(r.to_bits())
                }),
                IrOp::FCmp(op) => {
                    let a = fconst.get(&inst.srcs[0]).copied();
                    let b = fconst.get(&inst.srcs[1]).copied();
                    if let (Some(a), Some(b)) = (a, b) {
                        let (a, b) = (f64::from_bits(a), f64::from_bits(b));
                        let v = match op {
                            FCmpOp::Lt => a < b,
                            FCmpOp::Le => a <= b,
                            FCmpOp::Eq => a == b,
                            FCmpOp::Unord => a.is_nan() || b.is_nan(),
                        };
                        Some(IrOp::ConstI(v as u32))
                    } else {
                        None
                    }
                }
                IrOp::CvtIF => iconst
                    .get(&inst.srcs[0])
                    .map(|a| IrOp::ConstF(((*a as i32) as f64).to_bits())),
                IrOp::CvtFI => fconst
                    .get(&inst.srcs[0])
                    .map(|a| IrOp::ConstI(f64::from_bits(*a) as i32 as u32)),
                IrOp::FSin => fconst.get(&inst.srcs[0]).map(|a| {
                    IrOp::ConstF(darco_guest::softfp::sin_spec(f64::from_bits(*a)).to_bits())
                }),
                IrOp::FCos => fconst.get(&inst.srcs[0]).map(|a| {
                    IrOp::ConstF(darco_guest::softfp::cos_spec(f64::from_bits(*a)).to_bits())
                }),
                _ => None,
            };
            if let Some(op) = folded {
                match op {
                    IrOp::ConstI(v) => {
                        iconst.insert(inst.dst.unwrap(), v);
                    }
                    IrOp::ConstF(v) => {
                        fconst.insert(inst.dst.unwrap(), v);
                    }
                    _ => unreachable!(),
                }
                inst.op = op;
                inst.srcs.clear();
                stats.rewritten += 1;
            }
        }
        stats
    }
}

enum FoldedConst {
    I(u32),
    F(u64),
}

fn region_class_is_int(
    inst: &Inst,
    iconst: &HashMap<VReg, u32>,
    fconst: &HashMap<VReg, u64>,
) -> Option<FoldedConst> {
    let s = inst.srcs[0];
    if let Some(v) = iconst.get(&s) {
        return Some(FoldedConst::I(*v));
    }
    if let Some(v) = fconst.get(&s) {
        return Some(FoldedConst::F(*v));
    }
    None
}

// ---------------------------------------------------------------------------

/// Copy propagation: rewrites uses of `Copy` destinations to the copy
/// source (the dead copies are later removed by DCE).
pub struct CopyProp;

impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copyprop"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        let mut alias: HashMap<VReg, VReg> = HashMap::new();
        let resolve = |alias: &HashMap<VReg, VReg>, mut v: VReg| {
            while let Some(&t) = alias.get(&v) {
                v = t;
            }
            v
        };
        let mut exits = std::mem::take(&mut region.exits);
        for inst in &mut region.insts {
            for s in &mut inst.srcs {
                let r = resolve(&alias, *s);
                if r != *s {
                    *s = r;
                    stats.rewritten += 1;
                }
            }
            if inst.op == IrOp::Copy {
                alias.insert(inst.dst.unwrap(), inst.srcs[0]);
            }
        }
        for e in &mut exits {
            for v in e
                .gprs
                .iter_mut()
                .chain(e.fprs.iter_mut())
                .chain(e.flags.iter_mut())
                .chain(std::iter::once(&mut e.indirect_target))
                .flatten()
            {
                *v = resolve(&alias, *v);
            }
            if let Some((k, a, b)) = e.deferred {
                e.deferred = Some((k, resolve(&alias, a), resolve(&alias, b)));
            }
        }
        region.exits = exits;
        stats
    }
}

// ---------------------------------------------------------------------------

/// Common subexpression elimination over pure operations. Loads are *not*
/// CSE'd here (redundant load elimination runs in the DDG phase where
/// intervening stores are visible).
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        // Key: textual op identity + sources.
        let mut table: HashMap<(String, Vec<VReg>), VReg> = HashMap::new();
        for inst in &mut region.insts {
            if !inst.op.is_pure() || inst.dst.is_none() || inst.op == IrOp::Copy {
                continue;
            }
            let key = (format!("{:?}", inst.op), inst.srcs.clone());
            match table.get(&key) {
                Some(&prev) => {
                    inst.op = IrOp::Copy;
                    inst.srcs = vec![prev];
                    stats.rewritten += 1;
                }
                None => {
                    table.insert(key, inst.dst.unwrap());
                }
            }
        }
        stats
    }
}

// ---------------------------------------------------------------------------

/// Backward dead code elimination. Stores, asserts and exits (plus
/// everything they transitively use) are live roots.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, region: &mut Region) -> PassStats {
        let mut stats = PassStats::default();
        let mut live = vec![false; region.vreg_count()];
        let mut keep = vec![false; region.insts.len()];
        for (i, inst) in region.insts.iter().enumerate().rev() {
            let root = match inst.op {
                IrOp::Store { .. } | IrOp::StoreF | IrOp::Assert { .. } => true,
                IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } => {
                    for u in region.exits[exit].used_vregs() {
                        live[u.0 as usize] = true;
                    }
                    true
                }
                // Dead loads are removable (see DESIGN.md: a skipped page
                // request is not an architectural difference).
                _ => false,
            };
            let needed = root || inst.dst.is_some_and(|d| live[d.0 as usize]);
            if needed {
                keep[i] = true;
                for s in &inst.srcs {
                    live[s.0 as usize] = true;
                }
            }
        }
        let mut i = 0;
        region.insts.retain(|_| {
            let k = keep[i];
            i += 1;
            if !k {
                stats.removed += 1;
            }
            k
        });
        stats
    }
}

// ---------------------------------------------------------------------------

/// Cross-checks constant folding of guest flag helpers against the guest
/// executor (used by optimizer tests; exported for the fault-injection
/// debug tests too).
pub fn guest_sub_flags(a: u32, b: u32) -> Flags {
    let mut fl = Flags::default();
    gexec::eval_alu(AluOp::Sub, a, b, &mut fl);
    fl
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ir::{ExitDesc, ExitKind, RegClass};

    fn region_with_exit(f: impl FnOnce(&mut Region) -> Vec<(usize, VReg)>) -> Region {
        let mut r = Region::new(0x1000);
        let outs = f(&mut r);
        let mut e = ExitDesc::new(ExitKind::Jump { target: 0x2000 });
        for (g, v) in outs {
            e.gprs[g] = Some(v);
        }
        r.exits.push(e);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        r
    }

    #[test]
    fn constfold_collapses_chains() {
        let mut r = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(6), vec![], RegClass::Int);
            let b = r.emit(IrOp::ConstI(7), vec![], RegClass::Int);
            let m = r.emit(IrOp::Alu(HAluOp::Mul), vec![a, b], RegClass::Int);
            let k = r.emit(IrOp::ConstI(58), vec![], RegClass::Int);
            let s = r.emit(IrOp::Alu(HAluOp::Sub), vec![m, k], RegClass::Int); // 42 - 58... wait
            vec![(0, s)]
        });
        let st = ConstFold.run(&mut r);
        assert_eq!(st.rewritten, 2, "mul and sub both fold");
        // The sub is now ConstI(42 - 58) as u32.
        let last_val = r
            .insts
            .iter()
            .filter_map(|i| match i.op {
                IrOp::ConstI(v) => Some(v),
                _ => None,
            })
            .next_back()
            .unwrap();
        assert_eq!(last_val, 42u32.wrapping_sub(58));
        r.validate();
    }

    #[test]
    fn constfold_respects_division_faults() {
        let mut r = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(10), vec![], RegClass::Int);
            let z = r.emit(IrOp::ConstI(0), vec![], RegClass::Int);
            let d = r.emit(IrOp::Alu(HAluOp::Div), vec![a, z], RegClass::Int);
            vec![(0, d)]
        });
        let st = ConstFold.run(&mut r);
        assert_eq!(st.rewritten, 0, "division must not fold");
    }

    #[test]
    fn constfold_folds_fp_and_transcendentals() {
        let mut r = region_with_exit(|r| {
            let x = r.emit(IrOp::ConstF(1.25f64.to_bits()), vec![], RegClass::Fp);
            let s = r.emit(IrOp::FSin, vec![x], RegClass::Fp);
            let c = r.emit(IrOp::CvtFI, vec![s], RegClass::Int);
            vec![(0, c)]
        });
        let st = ConstFold.run(&mut r);
        assert_eq!(st.rewritten, 2);
        let folded = r
            .insts
            .iter()
            .find_map(|i| match i.op {
                IrOp::ConstF(v) if v == darco_guest::softfp::sin_spec(1.25).to_bits() => Some(()),
                _ => None,
            });
        assert!(folded.is_some(), "sin folded through the architectural spec");
    }

    #[test]
    fn copyprop_rewrites_uses_and_exits() {
        let mut r = region_with_exit(|r| {
            let a = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            let c1 = r.emit(IrOp::Copy, vec![a], RegClass::Int);
            let c2 = r.emit(IrOp::Copy, vec![c1], RegClass::Int);
            let s = r.emit(IrOp::Alu(HAluOp::Add), vec![c2, c2], RegClass::Int);
            vec![(0, s), (1, c2)]
        });
        CopyProp.run(&mut r);
        // The add now reads the entry vreg directly; exit gpr1 points at it.
        let add = r.insts.iter().find(|i| matches!(i.op, IrOp::Alu(HAluOp::Add))).unwrap();
        assert_eq!(add.srcs, vec![VReg(0), VReg(0)]);
        assert_eq!(r.exits[0].gprs[1], Some(VReg(0)));
        r.validate();
    }

    #[test]
    fn cse_then_dce_removes_duplicate_work() {
        let mut r = region_with_exit(|r| {
            let a = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            let x = r.emit(IrOp::Alu(HAluOp::Mul), vec![a, a], RegClass::Int);
            let y = r.emit(IrOp::Alu(HAluOp::Mul), vec![a, a], RegClass::Int); // duplicate
            let s = r.emit(IrOp::Alu(HAluOp::Add), vec![x, y], RegClass::Int);
            vec![(0, s)]
        });
        let n_before = r.insts.len();
        Cse.run(&mut r);
        CopyProp.run(&mut r);
        let st = Dce.run(&mut r);
        assert_eq!(st.removed, 1, "the CSE'd duplicate (now a dead copy) is removed");
        assert_eq!(r.insts.len(), n_before - 1);
        r.validate();
    }

    #[test]
    fn dce_keeps_stores_and_their_inputs() {
        let mut r = region_with_exit(|r| {
            let a = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            let addr = r.emit(IrOp::ConstI(0x100), vec![], RegClass::Int);
            r.push(Inst::new(IrOp::Store { width: darco_guest::Width::D }, None, vec![addr, a]));
            let dead = r.emit(IrOp::Alu(HAluOp::Add), vec![a, a], RegClass::Int);
            let _ = dead;
            vec![]
        });
        let st = Dce.run(&mut r);
        assert_eq!(st.removed, 1, "only the dead add is removed");
        assert!(r.insts.iter().any(|i| i.op.is_store()));
        r.validate();
    }

    /// A deliberately broken pass: drops the terminal `ExitAlways`.
    struct KillTerminator;

    impl Pass for KillTerminator {
        fn name(&self) -> &'static str {
            "kill-terminator"
        }

        fn run(&self, region: &mut Region) -> PassStats {
            region.insts.pop();
            PassStats { removed: 1, ..PassStats::default() }
        }
    }

    #[test]
    fn verify_each_names_the_offending_pass() {
        let mut r = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(2), vec![], RegClass::Int);
            vec![(0, a)]
        });
        let passes: Vec<Box<dyn Pass>> =
            vec![Box::new(ConstFold), Box::new(KillTerminator), Box::new(Dce)];
        let err = run_passes(&mut r, &passes, true).unwrap_err();
        assert_eq!(err.pass, "kill-terminator");
        let msg = format!("{err}");
        assert!(msg.contains("after pass `kill-terminator`"), "{msg}");
        assert!(msg.contains("missing-terminator"), "{msg}");
    }

    #[test]
    fn verify_each_attributes_broken_input() {
        let mut r = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(2), vec![], RegClass::Int);
            vec![(0, a)]
        });
        r.insts.pop(); // invalid before any pass runs
        let err = run_passes(&mut r, &level_passes(OptLevel::O2), true).unwrap_err();
        assert_eq!(err.pass, "<input>");
    }

    #[test]
    fn verify_each_counts_verifier_invocations() {
        let mut r = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(2), vec![], RegClass::Int);
            vec![(0, a)]
        });
        let st = run_passes(&mut r, &level_passes(OptLevel::O1), true).unwrap();
        assert_eq!(st.verifies, 3, "input check + one per pass");
        let mut r2 = region_with_exit(|r| {
            let a = r.emit(IrOp::ConstI(2), vec![], RegClass::Int);
            vec![(0, a)]
        });
        let st2 = run_passes(&mut r2, &level_passes(OptLevel::O1), false).unwrap();
        assert_eq!(st2.verifies, 0);
    }

    /// Builds a random (but well-formed) region mixing pure work with
    /// side-effecting stores, asserts and side exits. Also exercised by
    /// the `sym` module's no-false-positive test.
    pub(crate) fn random_region(seed: u64) -> Region {
        use darco_guest::prng::{Rng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut r = Region::new(0x8000);
        let base = r.new_vreg(RegClass::Int);
        let cond = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(base);
        r.entry.gprs[1] = Some(cond);
        let mut ints = vec![base, cond];
        let mut seq = 0u16;
        let next_seq = |seq: &mut u16| {
            *seq += 1;
            *seq
        };
        for _ in 0..rng.gen_range(8..40) {
            match rng.gen_range(0..10) {
                0..=2 => {
                    let v = r.emit(IrOp::ConstI(rng.gen()), vec![], RegClass::Int);
                    ints.push(v);
                }
                3..=5 => {
                    let a = ints[rng.gen_range(0..ints.len())];
                    let b = ints[rng.gen_range(0..ints.len())];
                    let op = [HAluOp::Add, HAluOp::Sub, HAluOp::Xor, HAluOp::And]
                        [rng.gen_range(0..4)];
                    let v = r.emit(IrOp::Alu(op), vec![a, b], RegClass::Int);
                    ints.push(v);
                }
                6 => {
                    let addr = ints[rng.gen_range(0..ints.len())];
                    let val = ints[rng.gen_range(0..ints.len())];
                    let mut st = Inst::new(
                        IrOp::Store { width: darco_guest::Width::D },
                        None,
                        vec![addr, val],
                    );
                    st.seq = next_seq(&mut seq);
                    r.push(st);
                }
                7 => {
                    let addr = ints[rng.gen_range(0..ints.len())];
                    let dst = r.new_vreg(RegClass::Int);
                    let mut ld = Inst::new(
                        IrOp::Load { width: darco_guest::Width::D, sign: false },
                        Some(dst),
                        vec![addr],
                    );
                    ld.seq = next_seq(&mut seq);
                    r.push(ld);
                    ints.push(dst);
                }
                8 => {
                    let c = ints[rng.gen_range(0..ints.len())];
                    let mut asrt = Inst::new(IrOp::Assert { expect_nz: rng.gen() }, None, vec![c]);
                    asrt.seq = next_seq(&mut seq);
                    r.push(asrt);
                }
                _ => {
                    let c = ints[rng.gen_range(0..ints.len())];
                    let mut e = ExitDesc::new(ExitKind::Jump { target: rng.gen() });
                    e.gprs[rng.gen_range(0..8)] = Some(ints[rng.gen_range(0..ints.len())]);
                    r.exits.push(e);
                    let exit = r.exits.len() - 1;
                    r.push(Inst::new(IrOp::ExitIf { exit }, None, vec![c]));
                }
            }
        }
        let mut e = ExitDesc::new(ExitKind::Jump { target: 0x9000 });
        e.gprs[0] = Some(ints[ints.len() - 1]);
        r.exits.push(e);
        let exit = r.exits.len() - 1;
        r.push(Inst::new(IrOp::ExitAlways { exit }, None, vec![]));
        r
    }

    /// Verifier-backed DCE soundness: DCE must never remove an
    /// instruction with a side effect (`Store`, `StoreF`, `Assert`,
    /// `ExitIf`), and its output must still verify.
    #[test]
    fn dce_never_removes_side_effects() {
        for seed in 0..64u64 {
            let mut r = random_region(seed);
            let count = |r: &Region| {
                r.insts
                    .iter()
                    .filter(|i| {
                        i.op.is_store()
                            || matches!(i.op, IrOp::Assert { .. } | IrOp::ExitIf { .. })
                    })
                    .count()
            };
            let before = count(&r);
            Dce.run(&mut r);
            assert_eq!(count(&r), before, "seed {seed}: DCE removed a side effect");
            let rep = crate::verify::verify_region(&r);
            assert!(rep.is_ok(), "seed {seed}:\n{rep}");
        }
    }

    /// Random regions stay valid through the whole pipeline at every
    /// optimization level.
    #[test]
    fn pipeline_preserves_invariants_on_random_regions() {
        for seed in 0..32u64 {
            for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
                let mut r = random_region(seed);
                run_passes(&mut r, &level_passes(lvl), true)
                    .unwrap_or_else(|e| panic!("seed {seed} at {lvl:?}: {e}"));
            }
        }
    }

    #[test]
    fn full_pipeline_levels() {
        for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let mut r = region_with_exit(|r| {
                let a = r.emit(IrOp::ConstI(2), vec![], RegClass::Int);
                let b = r.emit(IrOp::ConstI(3), vec![], RegClass::Int);
                let s = r.emit(IrOp::Alu(HAluOp::Add), vec![a, b], RegClass::Int);
                vec![(0, s)]
            });
            let st = run_pipeline(&mut r, lvl);
            r.validate();
            if lvl == OptLevel::O0 {
                assert_eq!(st.rewritten + st.removed, 0);
            } else {
                assert!(st.rewritten > 0);
            }
        }
    }
}
