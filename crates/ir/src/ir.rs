//! IR data structures: virtual registers, instructions, regions, exits.

use darco_guest::{Width};
use darco_host::{FAluOp, FCmpOp, FUnOp2, HAluOp};
use std::fmt;

/// A virtual register. The register class is recorded in the owning
/// [`Region`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Register class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// 32-bit integer.
    Int,
    /// f64 floating point.
    Fp,
}

/// IR operations.
///
/// Integer ALU operations reuse the host [`HAluOp`] vocabulary (the IR is
/// host-leaning, as in any dynamic binary translator), plus a few
/// region-structure operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrOp {
    /// Integer constant.
    ConstI(u32),
    /// FP constant (by bit pattern, so NaNs survive).
    ConstF(u64),
    /// Register copy (same class).
    Copy,
    /// Integer ALU operation; srcs `[a, b]` (unary host ops ignore `b`,
    /// and take srcs `[a]`).
    Alu(HAluOp),
    /// Memory load; srcs `[addr]`.
    Load { width: Width, sign: bool },
    /// Memory store; srcs `[addr, value]`; no dst.
    Store { width: Width },
    /// f64 load; srcs `[addr]`.
    LoadF,
    /// f64 store; srcs `[addr, value]`.
    StoreF,
    /// FP ALU operation; srcs `[a, b]`.
    FAlu(FAluOp),
    /// FP unary; srcs `[a]`.
    FUn(FUnOp2),
    /// FP compare producing 0/1 int; srcs `[a, b]`.
    FCmp(FCmpOp),
    /// i32 → f64; srcs `[a]` (int), dst fp.
    CvtIF,
    /// f64 → i32 truncating; srcs `[a]` (fp), dst int.
    CvtFI,
    /// Software-emulated sin (runtime routine call); srcs `[a]`, dst fp.
    FSin,
    /// Software-emulated cos.
    FCos,
    /// Assert: speculation check replacing a biased branch. srcs `[cond]`;
    /// fails (rolls back) when the condition does not match `expect_nz`.
    Assert {
        /// `true`: fail if cond == 0; `false`: fail if cond != 0.
        expect_nz: bool,
    },
    /// Conditional side exit: leave the region through `exits[exit]` when
    /// the condition (srcs `[cond]`) is non-zero.
    ExitIf {
        /// Index into [`Region::exits`].
        exit: usize,
    },
    /// Unconditional exit; must be the last instruction of a region.
    ExitAlways {
        /// Index into [`Region::exits`].
        exit: usize,
    },
}

impl IrOp {
    /// True if the operation has no side effect and produces a value that
    /// only depends on its operands (safe to CSE and to kill when dead).
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            IrOp::ConstI(_)
                | IrOp::ConstF(_)
                | IrOp::Copy
                | IrOp::Alu(_)
                | IrOp::FAlu(_)
                | IrOp::FUn(_)
                | IrOp::FCmp(_)
                | IrOp::CvtIF
                | IrOp::CvtFI
                | IrOp::FSin
                | IrOp::FCos
        )
    }

    /// True for operations that end or leave the region.
    pub fn is_exit(&self) -> bool {
        matches!(self, IrOp::ExitIf { .. } | IrOp::ExitAlways { .. })
    }

    /// True for memory reads.
    pub fn is_load(&self) -> bool {
        matches!(self, IrOp::Load { .. } | IrOp::LoadF)
    }

    /// True for memory writes.
    pub fn is_store(&self) -> bool {
        matches!(self, IrOp::Store { .. } | IrOp::StoreF)
    }

    /// Access size in bytes for memory operations.
    pub fn mem_bytes(&self) -> Option<u8> {
        match self {
            IrOp::Load { width, .. } | IrOp::Store { width } => Some(width.bytes() as u8),
            IrOp::LoadF | IrOp::StoreF => Some(8),
            _ => None,
        }
    }
}

/// One IR instruction.
#[derive(Debug, PartialEq)]
pub struct Inst {
    /// The operation.
    pub op: IrOp,
    /// Destination, if the operation produces a value.
    pub dst: Option<VReg>,
    /// Source operands.
    pub srcs: Vec<VReg>,
    /// Original program-order sequence number (memory operations and
    /// asserts; carried through to the host's alias-detection hardware
    /// and used by the verifier to detect scheduling inversions).
    pub seq: u16,
    /// Whether a load may be speculatively reordered past may-alias
    /// stores (set by the DDG phase; checked by the host alias table).
    pub spec: bool,
    /// Guest PC of the originating instruction (debug toolchain).
    pub guest_pc: u32,
}

impl Clone for Inst {
    fn clone(&self) -> Inst {
        Inst {
            op: self.op,
            dst: self.dst,
            srcs: self.srcs.clone(),
            seq: self.seq,
            spec: self.spec,
            guest_pc: self.guest_pc,
        }
    }

    /// Reuses the existing `srcs` buffer (the derived fallback would
    /// reallocate it); `Region::clone_from` leans on this for the
    /// semantic validator's per-translation pristine copy.
    fn clone_from(&mut self, src: &Inst) {
        self.op = src.op;
        self.dst = src.dst;
        self.srcs.clone_from(&src.srcs);
        self.seq = src.seq;
        self.spec = src.spec;
        self.guest_pc = src.guest_pc;
    }
}

impl Inst {
    /// Creates an instruction with no memory/debug annotations.
    pub fn new(op: IrOp, dst: Option<VReg>, srcs: Vec<VReg>) -> Inst {
        Inst { op, dst, srcs, seq: 0, spec: false, guest_pc: 0 }
    }
}

/// How control leaves a region through a given exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// Continue at a statically known guest PC (chainable).
    Jump {
        /// Next guest PC.
        target: u32,
    },
    /// Continue at a guest PC held in a virtual register (goes through
    /// the IBTC).
    Indirect,
    /// The guest executed `syscall`; the controller takes over. The
    /// co-designed component stops *at* the syscall instruction (the
    /// authoritative component executes it).
    Syscall {
        /// Guest PC of the syscall instruction itself.
        pc: u32,
    },
    /// The guest executed `halt`.
    Halt,
}

/// The flag-producer descriptor published at an exit for lazy (deferred)
/// flag materialization: instead of computing the five guest flags, the
/// exit records which operation last defined them and its operands; a
/// later consumer (or the state validator in strict mode) re-derives the
/// flags from the descriptor. This is the paper's "write to the flag
/// registers only if the value is really going to be consumed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagsKind {
    /// Flags of `a + b`.
    Add,
    /// Flags of `a - b` (also cmp/neg/scas/cmps).
    Sub,
    /// Flags of a logic op result `a` (CF=OF=0).
    Logic,
    /// Flags of `a + 1` with CF preserved.
    Inc,
    /// Flags of `a - 1` with CF preserved.
    Dec,
    /// Flags of the signed multiply `a * b`.
    Imul,
    /// Flags of `a << b` (b is a non-zero constant).
    Shl,
    /// Flags of `a >> b` (logical).
    Shr,
    /// Flags of `a >> b` (arithmetic).
    Sar,
}

impl FlagsKind {
    /// Runtime code of the descriptor kind, held in the dedicated host
    /// register `r15` so the descriptor threads through chained
    /// translations (0 is reserved for "no descriptor; flags are
    /// materialized in r8–r12").
    pub fn code(self) -> u16 {
        match self {
            FlagsKind::Add => 1,
            FlagsKind::Sub => 2,
            FlagsKind::Logic => 3,
            FlagsKind::Inc => 4,
            FlagsKind::Dec => 5,
            FlagsKind::Imul => 6,
            FlagsKind::Shl => 7,
            FlagsKind::Shr => 8,
            FlagsKind::Sar => 9,
        }
    }

    /// Inverse of [`FlagsKind::code`].
    pub fn from_code(code: u32) -> Option<FlagsKind> {
        Some(match code {
            1 => FlagsKind::Add,
            2 => FlagsKind::Sub,
            3 => FlagsKind::Logic,
            4 => FlagsKind::Inc,
            5 => FlagsKind::Dec,
            6 => FlagsKind::Imul,
            7 => FlagsKind::Shl,
            8 => FlagsKind::Shr,
            9 => FlagsKind::Sar,
            _ => return None,
        })
    }
}

/// An exit descriptor: target kind plus the guest-state mapping the code
/// generator must restore into the pinned host registers on that path.
#[derive(Debug, Clone, PartialEq)]
pub struct ExitDesc {
    /// Where this exit goes.
    pub kind: ExitKind,
    /// For [`ExitKind::Indirect`]: the vreg holding the guest target.
    pub indirect_target: Option<VReg>,
    /// Guest GPR values live at this exit (`None` = unchanged since entry).
    pub gprs: [Option<VReg>; 8],
    /// Guest FPR values live at this exit.
    pub fprs: [Option<VReg>; 8],
    /// Materialized guest flags (CF, ZF, SF, OF, PF) at this exit.
    pub flags: [Option<VReg>; 5],
    /// Deferred flag descriptor: kind plus the two operand vregs.
    pub deferred: Option<(FlagsKind, VReg, VReg)>,
    /// Guest instructions retired along the path to this exit (emitted as
    /// a `gcnt` hardware-counter update in the exit stub).
    pub gcnt: u16,
    /// Software profile counter bumped on this exit (BBM edge profiling).
    pub count_idx: Option<u32>,
}

impl ExitDesc {
    /// Creates an exit with no state changes.
    pub fn new(kind: ExitKind) -> ExitDesc {
        ExitDesc {
            kind,
            indirect_target: None,
            gprs: [None; 8],
            fprs: [None; 8],
            flags: [None; 5],
            deferred: None,
            gcnt: 0,
            count_idx: None,
        }
    }

    /// All vregs this exit uses (inputs the scheduler must order before
    /// the exit).
    pub fn used_vregs(&self) -> Vec<VReg> {
        self.used_vregs_iter().collect()
    }

    /// Allocation-free variant of [`Self::used_vregs`] for hot paths
    /// (the verifier walks exit recipes on every translation).
    pub fn used_vregs_iter(&self) -> impl Iterator<Item = VReg> + '_ {
        self.indirect_target
            .into_iter()
            .chain(self.gprs.iter().flatten().copied())
            .chain(self.fprs.iter().flatten().copied())
            .chain(self.flags.iter().flatten().copied())
            .chain(self.deferred.into_iter().flat_map(|(_, a, b)| [a, b]))
    }
}

/// Entry bindings: which vregs hold the guest state on region entry (these
/// are pre-colored to the pinned host registers by the allocator).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntryBindings {
    /// Entry vreg for each guest GPR actually read before being written.
    pub gprs: [Option<VReg>; 8],
    /// Entry vreg for each guest FPR.
    pub fprs: [Option<VReg>; 8],
    /// Entry vreg for each guest flag (CF, ZF, SF, OF, PF).
    pub flags: [Option<VReg>; 5],
}

/// A translation region: a linear, single-entry sequence of IR
/// instructions with side exits — a basic block (one exit) or a superblock
/// (asserts, or multiple side exits after assert-failure recreation).
#[derive(Debug)]
pub struct Region {
    /// The instructions, in program order (until the scheduler reorders).
    pub insts: Vec<Inst>,
    /// Exit descriptors referenced by `ExitIf`/`ExitAlways`.
    pub exits: Vec<ExitDesc>,
    /// Entry guest-state bindings.
    pub entry: EntryBindings,
    /// Guest PC of the region entry.
    pub guest_entry_pc: u32,
    classes: Vec<RegClass>,
}

// Manual impl so `clone_from` reuses the destination's buffers — the
// semantic validator keeps a pristine copy of every region it checks,
// and the recycled scratch makes that copy allocation-free.
impl Clone for Region {
    fn clone(&self) -> Region {
        Region {
            insts: self.insts.clone(),
            exits: self.exits.clone(),
            entry: self.entry.clone(),
            guest_entry_pc: self.guest_entry_pc,
            classes: self.classes.clone(),
        }
    }

    fn clone_from(&mut self, src: &Region) {
        self.insts.clone_from(&src.insts);
        self.exits.clone_from(&src.exits);
        self.entry.clone_from(&src.entry);
        self.guest_entry_pc = src.guest_entry_pc;
        self.classes.clone_from(&src.classes);
    }
}

impl Region {
    /// Creates an empty region anchored at a guest PC.
    pub fn new(guest_entry_pc: u32) -> Region {
        Region {
            insts: Vec::new(),
            exits: Vec::new(),
            entry: EntryBindings::default(),
            guest_entry_pc,
            classes: Vec::new(),
        }
    }

    /// Allocates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        self.classes.push(class);
        VReg(self.classes.len() as u32 - 1)
    }

    /// The class of a vreg.
    ///
    /// # Panics
    /// Panics if the vreg does not belong to this region.
    pub fn class(&self, v: VReg) -> RegClass {
        self.classes[v.0 as usize]
    }

    /// Number of virtual registers allocated so far.
    pub fn vreg_count(&self) -> usize {
        self.classes.len()
    }

    /// Pushes an instruction and returns its index.
    pub fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Convenience: emit a pure op producing a fresh vreg.
    pub fn emit(&mut self, op: IrOp, srcs: Vec<VReg>, class: RegClass) -> VReg {
        let dst = self.new_vreg(class);
        self.push(Inst::new(op, Some(dst), srcs));
        dst
    }

    /// Checks structural invariants (used by tests and after passes).
    ///
    /// # Panics
    /// Panics if an invariant is violated, naming it.
    pub fn validate(&self) {
        assert!(
            matches!(self.insts.last().map(|i| &i.op), Some(IrOp::ExitAlways { .. })),
            "region must end with ExitAlways"
        );
        let mut defined: Vec<bool> = vec![false; self.vreg_count()];
        for e in [
            self.entry.gprs.iter().flatten(),
            self.entry.fprs.iter().flatten(),
            self.entry.flags.iter().flatten(),
        ] {
            for v in e {
                defined[v.0 as usize] = true;
            }
        }
        for (idx, inst) in self.insts.iter().enumerate() {
            for s in &inst.srcs {
                assert!(defined[s.0 as usize], "use of undefined {s} at inst {idx}: {:?}", inst.op);
            }
            if let Some(d) = inst.dst {
                assert!(!defined[d.0 as usize], "SSA violation: {d} defined twice (inst {idx})");
                defined[d.0 as usize] = true;
            }
            if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = inst.op {
                assert!(exit < self.exits.len(), "exit index out of range at inst {idx}");
                for u in self.exits[exit].used_vregs() {
                    assert!(defined[u.0 as usize], "exit {exit} uses undefined {u}");
                }
            }
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "region @ {:#010x}:", self.guest_entry_pc)?;
        for (i, inst) in self.insts.iter().enumerate() {
            write!(f, "  {i:3}: ")?;
            if let Some(d) = inst.dst {
                write!(f, "{d} = ")?;
            }
            write!(f, "{:?}", inst.op)?;
            for s in &inst.srcs {
                write!(f, " {s}")?;
            }
            if inst.spec {
                write!(f, " [spec]")?;
            }
            writeln!(f)?;
        }
        for (i, e) in self.exits.iter().enumerate() {
            writeln!(f, "  exit {i}: {:?}", e.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_region() -> Region {
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let c = r.emit(IrOp::ConstI(5), vec![], RegClass::Int);
        let s = r.emit(IrOp::Alu(HAluOp::Add), vec![a, c], RegClass::Int);
        let mut exit = ExitDesc::new(ExitKind::Jump { target: 0x1010 });
        exit.gprs[0] = Some(s);
        r.exits.push(exit);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        r
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny_region().validate();
    }

    #[test]
    #[should_panic(expected = "use of undefined")]
    fn validate_rejects_undefined_use() {
        let mut r = tiny_region();
        let ghost = VReg(999);
        r.classes.resize(1000, RegClass::Int);
        let dst = r.new_vreg(RegClass::Int);
        r.insts.insert(0, Inst::new(IrOp::Alu(HAluOp::Add), Some(dst), vec![ghost]));
        // ghost (v999) was never defined before use at index 0… but we
        // resized classes so only definedness fails.
        r.validate();
    }

    #[test]
    #[should_panic(expected = "must end with ExitAlways")]
    fn validate_rejects_missing_terminal() {
        let mut r = tiny_region();
        r.insts.pop();
        r.validate();
    }

    #[test]
    fn display_is_nonempty() {
        let r = tiny_region();
        let s = format!("{r}");
        assert!(s.contains("region @"));
        assert!(s.contains("exit 0"));
    }

    #[test]
    fn exit_used_vregs_collects_everything() {
        let mut r = Region::new(0);
        let a = r.new_vreg(RegClass::Int);
        let b = r.new_vreg(RegClass::Int);
        let mut e = ExitDesc::new(ExitKind::Indirect);
        e.indirect_target = Some(a);
        e.deferred = Some((FlagsKind::Sub, a, b));
        e.flags[1] = Some(b);
        let used = e.used_vregs();
        assert_eq!(used.iter().filter(|v| **v == a).count(), 2);
        assert_eq!(used.iter().filter(|v| **v == b).count(), 2);
    }
}
