//! Symbolic translation validation (DESIGN.md §13, stage 1).
//!
//! A region freshly built by the translator is a direct, syntactic
//! rendering of the guest block — it *is* the reference semantics. Every
//! optimization pass must preserve the guest-observable meaning of that
//! region: the conditions of its speculation asserts, and at every exit
//! the full guest state (GPRs, FPRs, flags — materialized or deferred —
//! the indirect target, retire count) plus the contents of guest memory.
//!
//! This module normalizes a region into exactly that observable summary:
//! every value becomes a node in a hash-consed *term DAG* rooted at the
//! region's entry bindings and at the initial memory state, with memory
//! modeled as a store chain (`Store(addr, val, mem)`). Normalization
//! applies the same folds as the [`crate::passes::ConstFold`] pass (via
//! the identical `eval_halu`/`eval_falu`/`softfp` evaluators, and with
//! the same divide-by-zero exclusion), so a region before and after a
//! *correct* pass reduces to the same terms, while a miscompiled constant
//! or a dropped/reordered effect shows up as a term mismatch.
//!
//! [`summarize`] produces the ordered event list (asserts and exits, in
//! program order — the scalar pass pipeline never reorders them), and
//! [`check_equiv`] diffs two summaries interned in the same [`TermPool`],
//! reporting each divergence as an
//! [`InvariantKind::SemanticDivergence`] finding. The DDG memory phase
//! and the list scheduler intentionally reorder memory operations under
//! their own alias-analysis contract; they are cross-checked by
//! [`crate::verify::verify_ddg`] instead and are outside this module's
//! scope.

use crate::ir::{ExitKind, FlagsKind, IrOp, Region, VReg};
use crate::verify::{Finding, InvariantKind, VerifyReport};
use darco_guest::Width;
use darco_host::emu::{eval_falu, eval_halu};
use darco_host::{FAluOp, FCmpOp, FUnOp2, HAluOp};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
/// FxHash-style multiplicative hasher for the intern memo. Terms are
/// interned once per instruction on the translation hot path (DESIGN.md
/// §13 meters semantic validation against a share-of-translation-time
/// budget), and the default SipHash dominates that profile.
#[derive(Default)]
struct TermHasher(u64);

impl Hasher for TermHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(26);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A node in the term DAG (index into the owning [`TermPool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// Term-level address analysis result (mirror of
/// [`crate::ddg::AddrExpr`], with the root as a term instead of a vreg).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TAddr {
    /// Compile-time constant address.
    Const(u32),
    /// `root + off`.
    Affine { root: TermId, off: i64 },
    /// Not analyzable (mirror of the DDG's chain-length cap).
    Unknown,
}

/// Term-level alias relation (mirror of [`crate::ddg::Alias`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TAlias {
    No,
    Must,
    May,
}

/// A normalized symbolic value. FP values are carried by bit pattern so
/// NaN payloads survive, exactly as in [`IrOp::ConstF`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// Integer constant.
    IConst(u32),
    /// FP constant (bit pattern).
    FConst(u64),
    /// Guest GPR `i` at region entry.
    EntryGpr(u8),
    /// Guest FPR `i` at region entry.
    EntryFpr(u8),
    /// Guest flag `i` (CF, ZF, SF, OF, PF) at region entry.
    EntryFlag(u8),
    /// Guest memory at region entry.
    InitMem,
    /// Integer ALU op; `b` is `None` for unary host ops.
    Alu(HAluOp, TermId, Option<TermId>),
    /// FP ALU op.
    FAlu(FAluOp, TermId, TermId),
    /// FP unary op.
    FUn(FUnOp2, TermId),
    /// FP compare producing 0/1.
    FCmp(FCmpOp, TermId, TermId),
    /// i32 → f64.
    CvtIF(TermId),
    /// f64 → i32 (truncating).
    CvtFI(TermId),
    /// Architectural soft-float sine.
    FSin(TermId),
    /// Architectural soft-float cosine.
    FCos(TermId),
    /// Integer load from `addr` out of memory state `mem`.
    Load { width: Width, sign: bool, addr: TermId, mem: TermId },
    /// f64 load.
    LoadF { addr: TermId, mem: TermId },
    /// Memory state after an integer store into `mem`.
    Store { width: Width, addr: TermId, val: TermId, mem: TermId },
    /// Memory state after an f64 store.
    StoreF { addr: TermId, val: TermId, mem: TermId },
}

/// Hash-consing pool: structurally equal (post-normalization) terms get
/// the same [`TermId`], so semantic equivalence of two summaries built in
/// the same pool is plain id equality.
#[derive(Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    memo: HashMap<Term, TermId, BuildHasherDefault<TermHasher>>,
    /// Cached address analysis per term (same index as `terms`), with
    /// the add/sub-chain depth that the analysis consumed. Computed once
    /// at intern time so [`Self::look_through`] resolves each store in a
    /// chain in O(1) instead of re-walking address chains per load.
    taddrs: Vec<(TAddr, u8)>,
    /// Recycled [`summarize`] working buffers (vreg→term map, liveness
    /// bits) — terms are closed expressions over a region's entry state,
    /// so one pool serves many regions back to back and the summarizer's
    /// only per-region allocation is its event list.
    scratch_val: Vec<Option<TermId>>,
    scratch_live: Vec<bool>,
    scratch_live_inst: Vec<bool>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Empties the pool, keeping its allocations — every outstanding
    /// [`TermId`] is invalidated. Lets a caller that validates many
    /// regions in sequence pay the table allocations once.
    pub fn clear(&mut self) {
        self.terms.clear();
        self.memo.clear();
        self.taddrs.clear();
    }

    /// The term behind an id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Interns a term, folding constants first (see [`Self::normalize`]).
    pub fn intern(&mut self, t: Term) -> TermId {
        let t = self.normalize(t);
        if let Some(&id) = self.memo.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        let ta = self.compute_taddr(&t, id);
        self.terms.push(t);
        self.taddrs.push(ta);
        self.memo.insert(t, id);
        id
    }

    /// Pre-sizes the pool for roughly `n` more interns (one per
    /// instruction is the summarizer's upper bound), so a summary does
    /// not rehash the memo mid-region.
    pub fn reserve(&mut self, n: usize) {
        self.terms.reserve(n);
        self.memo.reserve(n);
        self.taddrs.reserve(n);
    }

    fn iconst_of(&self, id: TermId) -> Option<u32> {
        match self.terms[id.0 as usize] {
            Term::IConst(v) => Some(v),
            _ => None,
        }
    }

    /// Term-level mirror of [`crate::ddg::addr_expr`]: resolves an
    /// address term to `root + offset` (or a constant) by following
    /// add/sub-constant chains. Must agree with the DDG's analysis so
    /// the normalizer forwards exactly the loads `memory_opt` forwards.
    ///
    /// Computed bottom-up at intern time — a chain term extends its
    /// child's cached result by one step, preserving the iterative
    /// walk's 64-step cap via the recorded depth.
    fn compute_taddr(&self, t: &Term, self_id: TermId) -> (TAddr, u8) {
        let extend = |child: TermId, delta: i64| -> (TAddr, u8) {
            let (ta, d) = self.taddrs[child.0 as usize];
            let nd = d.saturating_add(1);
            if nd > 64 {
                return (TAddr::Unknown, nd);
            }
            let ta = match ta {
                TAddr::Const(c) => TAddr::Const((c as i64 + delta) as u32),
                TAddr::Affine { root, off } => TAddr::Affine { root, off: off + delta },
                TAddr::Unknown => TAddr::Unknown,
            };
            (ta, nd)
        };
        match *t {
            Term::IConst(c) => (TAddr::Const(c), 1),
            Term::Alu(HAluOp::Add, a, Some(b)) => {
                if let Some(c) = self.iconst_of(b) {
                    extend(a, c as i32 as i64)
                } else if let Some(c) = self.iconst_of(a) {
                    extend(b, c as i32 as i64)
                } else {
                    (TAddr::Affine { root: self_id, off: 0 }, 1)
                }
            }
            Term::Alu(HAluOp::Sub, a, Some(b)) => {
                if let Some(c) = self.iconst_of(b) {
                    extend(a, -(c as i32 as i64))
                } else {
                    (TAddr::Affine { root: self_id, off: 0 }, 1)
                }
            }
            _ => (TAddr::Affine { root: self_id, off: 0 }, 1),
        }
    }

    /// The cached address analysis of an interned term.
    fn taddr(&self, t: TermId) -> TAddr {
        self.taddrs[t.0 as usize].0
    }

    /// Term-level mirror of [`crate::ddg::alias`].
    fn talias(&self, a: TAddr, abytes: u8, b: TAddr, bbytes: u8) -> TAlias {
        let ranges = |x: TAddr, n: u8| -> Option<(i64, i64, Option<TermId>)> {
            match x {
                TAddr::Const(c) => Some((c as i64, c as i64 + n as i64, None)),
                TAddr::Affine { root, off } => Some((off, off + n as i64, Some(root))),
                TAddr::Unknown => None,
            }
        };
        match (ranges(a, abytes), ranges(b, bbytes)) {
            (Some((alo, ahi, ra)), Some((blo, bhi, rb))) if ra == rb => {
                if alo < bhi && blo < ahi {
                    TAlias::Must
                } else {
                    TAlias::No
                }
            }
            _ => TAlias::May,
        }
    }

    /// Resolves the memory state a load at `addr`/`bytes` actually
    /// observes: walks the store chain looking through provably-disjoint
    /// stores, and — for full-width accesses at a provably-identical
    /// address — forwards the stored value itself. This is the semantic
    /// model of [`crate::ddg::memory_opt`]'s store-to-load forwarding
    /// and redundant-load elimination (two loads that look through to
    /// the same memory state intern to the same term), so the DDG memory
    /// phase validates like any other pass instead of forcing a
    /// re-baseline.
    fn look_through(
        &self,
        addr: TermId,
        bytes: u8,
        is_fp: bool,
        mut mem: TermId,
    ) -> Result<TermId, TermId> {
        let la = self.taddr(addr);
        let forwardable = bytes == 4 || bytes == 8;
        loop {
            let (sa, sbytes, val, next, s_fp) = match self.terms[mem.0 as usize] {
                Term::Store { width, addr, val, mem } => {
                    (addr, width.bytes() as u8, val, mem, false)
                }
                Term::StoreF { addr, val, mem } => (addr, 8, val, mem, true),
                _ => return Err(mem),
            };
            let ta = self.taddr(sa);
            if forwardable
                && is_fp == s_fp
                && bytes == sbytes
                && ta != TAddr::Unknown
                && ta == la
            {
                return Ok(val);
            }
            match self.talias(la, bytes, ta, sbytes) {
                TAlias::No => mem = next,
                TAlias::Must | TAlias::May => return Err(mem),
            }
        }
    }

    fn fconst_of(&self, id: TermId) -> Option<u64> {
        match self.terms[id.0 as usize] {
            Term::FConst(v) => Some(v),
            _ => None,
        }
    }

    /// Applies exactly the folds [`crate::passes::ConstFold`] performs, so
    /// a folded and an unfolded region reduce to identical terms. Division
    /// is never folded (a guest divide-by-zero must fault at runtime, not
    /// be judged at validation time), mirroring the pass.
    fn normalize(&self, t: Term) -> Term {
        match t {
            Term::Alu(op, a, b) => {
                if matches!(op, HAluOp::Div | HAluOp::Rem) {
                    return t;
                }
                match (self.iconst_of(a), b.map(|b| self.iconst_of(b))) {
                    (Some(a), Some(Some(b))) => Term::IConst(eval_halu(op, a, b)),
                    (Some(a), None) => Term::IConst(eval_halu(op, a, 0)),
                    _ => t,
                }
            }
            Term::FAlu(op, a, b) => match (self.fconst_of(a), self.fconst_of(b)) {
                (Some(a), Some(b)) => Term::FConst(
                    eval_falu(op, f64::from_bits(a), f64::from_bits(b)).to_bits(),
                ),
                _ => t,
            },
            Term::FUn(op, a) => match self.fconst_of(a) {
                Some(a) => {
                    let a = f64::from_bits(a);
                    let r = match op {
                        FUnOp2::Mov => a,
                        FUnOp2::Sqrt => a.sqrt(),
                        FUnOp2::Abs => a.abs(),
                        FUnOp2::Neg => -a,
                    };
                    Term::FConst(r.to_bits())
                }
                None => t,
            },
            Term::FCmp(op, a, b) => match (self.fconst_of(a), self.fconst_of(b)) {
                (Some(a), Some(b)) => {
                    let (a, b) = (f64::from_bits(a), f64::from_bits(b));
                    let v = match op {
                        FCmpOp::Lt => a < b,
                        FCmpOp::Le => a <= b,
                        FCmpOp::Eq => a == b,
                        FCmpOp::Unord => a.is_nan() || b.is_nan(),
                    };
                    Term::IConst(v as u32)
                }
                _ => t,
            },
            Term::CvtIF(a) => match self.iconst_of(a) {
                Some(a) => Term::FConst(((a as i32) as f64).to_bits()),
                None => t,
            },
            Term::CvtFI(a) => match self.fconst_of(a) {
                Some(a) => Term::IConst(f64::from_bits(a) as i32 as u32),
                None => t,
            },
            Term::FSin(a) => match self.fconst_of(a) {
                Some(a) => {
                    Term::FConst(darco_guest::softfp::sin_spec(f64::from_bits(a)).to_bits())
                }
                None => t,
            },
            Term::FCos(a) => match self.fconst_of(a) {
                Some(a) => {
                    Term::FConst(darco_guest::softfp::cos_spec(f64::from_bits(a)).to_bits())
                }
                None => t,
            },
            Term::Load { width, sign, addr, mem } => {
                match self.look_through(addr, width.bytes() as u8, false, mem) {
                    // A full-width load of the value just stored is that
                    // value (32-bit extend of a 32-bit value is identity).
                    Ok(val) => self.terms[val.0 as usize],
                    Err(mem) => Term::Load { width, sign, addr, mem },
                }
            }
            Term::LoadF { addr, mem } => match self.look_through(addr, 8, true, mem) {
                Ok(val) => self.terms[val.0 as usize],
                Err(mem) => Term::LoadF { addr, mem },
            },
            _ => t,
        }
    }

    /// Renders a term for findings, depth-capped so messages stay short.
    pub fn render(&self, id: TermId) -> String {
        let mut out = String::new();
        self.render_into(id, 3, &mut out);
        out
    }

    fn render_into(&self, id: TermId, depth: u8, out: &mut String) {
        use std::fmt::Write as _;
        if depth == 0 {
            let _ = write!(out, "t{}", id.0);
            return;
        }
        let d = depth - 1;
        match &self.terms[id.0 as usize] {
            Term::IConst(v) => {
                let _ = write!(out, "{v:#x}");
            }
            Term::FConst(v) => {
                let _ = write!(out, "{}f", f64::from_bits(*v));
            }
            Term::EntryGpr(i) => {
                let _ = write!(out, "gpr{i}");
            }
            Term::EntryFpr(i) => {
                let _ = write!(out, "fpr{i}");
            }
            Term::EntryFlag(i) => {
                let _ = write!(out, "flag{i}");
            }
            Term::InitMem => out.push_str("mem0"),
            Term::Alu(op, a, b) => {
                let _ = write!(out, "{op:?}(");
                self.render_into(*a, d, out);
                if let Some(b) = b {
                    out.push(',');
                    self.render_into(*b, d, out);
                }
                out.push(')');
            }
            Term::FAlu(op, a, b) => {
                let _ = write!(out, "{op:?}(");
                self.render_into(*a, d, out);
                out.push(',');
                self.render_into(*b, d, out);
                out.push(')');
            }
            Term::FUn(op, a) => {
                let _ = write!(out, "{op:?}(");
                self.render_into(*a, d, out);
                out.push(')');
            }
            Term::FCmp(op, a, b) => {
                let _ = write!(out, "FCmp{op:?}(");
                self.render_into(*a, d, out);
                out.push(',');
                self.render_into(*b, d, out);
                out.push(')');
            }
            Term::CvtIF(a) => {
                out.push_str("i2f(");
                self.render_into(*a, d, out);
                out.push(')');
            }
            Term::CvtFI(a) => {
                out.push_str("f2i(");
                self.render_into(*a, d, out);
                out.push(')');
            }
            Term::FSin(a) => {
                out.push_str("sin(");
                self.render_into(*a, d, out);
                out.push(')');
            }
            Term::FCos(a) => {
                out.push_str("cos(");
                self.render_into(*a, d, out);
                out.push(')');
            }
            Term::Load { addr, mem, .. } | Term::LoadF { addr, mem } => {
                out.push_str("load(");
                self.render_into(*addr, d, out);
                out.push(',');
                self.render_into(*mem, d, out);
                out.push(')');
            }
            Term::Store { addr, val, mem, .. } | Term::StoreF { addr, val, mem } => {
                out.push_str("store(");
                self.render_into(*addr, d, out);
                out.push(',');
                self.render_into(*val, d, out);
                out.push(',');
                self.render_into(*mem, d, out);
                out.push(')');
            }
        }
    }
}

/// The guest-observable state published at one exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExitState {
    /// Exit target kind (compared verbatim: a changed chain target is a
    /// semantic change).
    pub kind: ExitKind,
    /// Indirect-target value.
    pub indirect: Option<TermId>,
    /// Guest GPR values (`None` = unchanged since entry).
    pub gprs: [Option<TermId>; 8],
    /// Guest FPR values.
    pub fprs: [Option<TermId>; 8],
    /// Materialized guest flags.
    pub flags: [Option<TermId>; 5],
    /// Deferred flag descriptor with its operand values.
    pub deferred: Option<(FlagsKind, TermId, TermId)>,
    /// Guest instructions retired on this path.
    pub gcnt: u16,
    /// Profile counter bumped on this exit.
    pub count_idx: Option<u32>,
    /// Guest memory at this exit (store-chain term).
    pub mem: TermId,
}

/// One guest-observable event of a region, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A speculation assert: rolls back when `cond` does not match
    /// `expect_nz` — the condition value is architecturally observable
    /// (it decides whether this execution commits).
    Assert {
        /// Polarity, as in [`IrOp::Assert`].
        expect_nz: bool,
        /// The asserted condition.
        cond: TermId,
    },
    /// A region exit: conditional (`cond` non-`None`, for `ExitIf`) or
    /// the unconditional terminator.
    Exit {
        /// Exit-taken condition; `None` for `ExitAlways`.
        cond: Option<TermId>,
        /// Published guest state.
        state: Box<ExitState>,
    },
}

/// The normalized guest-observable meaning of a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSummary {
    /// Region entry PC.
    pub guest_entry_pc: u32,
    /// Asserts and exits, in program order.
    pub events: Vec<Event>,
}

/// Normalizes `region` into its observable event summary, interning all
/// values in `pool`.
///
/// # Errors
/// Returns the offending vreg and instruction index when a value has no
/// derivable term (use of an undefined vreg — the structural verifier
/// reports the same defect as `use-before-def`).
pub fn summarize(region: &Region, pool: &mut TermPool) -> Result<RegionSummary, (VReg, usize)> {
    pool.reserve(region.insts.len() + 8);
    // Backward liveness from the observable events (stores, asserts,
    // exits): values that never reach an event cannot appear in the
    // summary, so their instructions are skipped outright below. The
    // pre-optimization region carries dead code (flag materializations
    // that DCE later removes), and one boolean sweep here is cheaper
    // than interning terms for it.
    let mut live = std::mem::take(&mut pool.scratch_live);
    live.clear();
    live.resize(region.vreg_count(), false);
    let mut live_inst = std::mem::take(&mut pool.scratch_live_inst);
    live_inst.clear();
    live_inst.resize(region.insts.len(), false);
    for (idx, inst) in region.insts.iter().enumerate().rev() {
        let effect = matches!(
            inst.op,
            IrOp::Store { .. }
                | IrOp::StoreF
                | IrOp::Assert { .. }
                | IrOp::ExitIf { .. }
                | IrOp::ExitAlways { .. }
        );
        let mut needed = effect;
        if let Some(d) = inst.dst {
            if let Some(slot) = live.get_mut(d.0 as usize) {
                if *slot {
                    needed = true;
                    *slot = false;
                }
            }
        }
        if !needed {
            continue;
        }
        live_inst[idx] = true;
        for &s in &inst.srcs {
            if let Some(slot) = live.get_mut(s.0 as usize) {
                *slot = true;
            }
        }
        if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = inst.op {
            if let Some(e) = region.exits.get(exit) {
                for u in e.used_vregs_iter() {
                    if let Some(slot) = live.get_mut(u.0 as usize) {
                        *slot = true;
                    }
                }
            }
        }
    }
    // Dense vreg → term map: vregs are small consecutive indices, and a
    // hash map here dominates the summarizer's profile.
    let mut val = std::mem::take(&mut pool.scratch_val);
    val.clear();
    val.resize(region.vreg_count(), None);
    let result = eval_events(region, pool, &mut val, &live_inst);
    pool.scratch_val = val;
    pool.scratch_live = live;
    pool.scratch_live_inst = live_inst;
    result.map(|events| RegionSummary { guest_entry_pc: region.guest_entry_pc, events })
}

/// The forward evaluation behind [`summarize`]: interns a term per live
/// instruction and collects the observable events. Split out so the
/// caller can return the recycled scratch buffers to the pool on both
/// the success and the error path.
fn eval_events(
    region: &Region,
    pool: &mut TermPool,
    val: &mut Vec<Option<TermId>>,
    live_inst: &[bool],
) -> Result<Vec<Event>, (VReg, usize)> {
    let bind = |val: &mut Vec<Option<TermId>>, v: VReg, t: TermId| {
        if let Some(slot) = val.get_mut(v.0 as usize) {
            *slot = Some(t);
        }
    };
    for (i, v) in region.entry.gprs.iter().enumerate() {
        if let Some(v) = *v {
            let t = pool.intern(Term::EntryGpr(i as u8));
            bind(val, v, t);
        }
    }
    for (i, v) in region.entry.fprs.iter().enumerate() {
        if let Some(v) = *v {
            let t = pool.intern(Term::EntryFpr(i as u8));
            bind(val, v, t);
        }
    }
    for (i, v) in region.entry.flags.iter().enumerate() {
        if let Some(v) = *v {
            let t = pool.intern(Term::EntryFlag(i as u8));
            bind(val, v, t);
        }
    }
    let mut mem = pool.intern(Term::InitMem);
    let mut events = Vec::new();
    for (idx, inst) in region.insts.iter().enumerate() {
        if !live_inst[idx] {
            continue;
        }
        let arg = |val: &[Option<TermId>], n: usize| -> Result<TermId, (VReg, usize)> {
            let v = *inst.srcs.get(n).ok_or((VReg(u32::MAX), idx))?;
            val.get(v.0 as usize).copied().flatten().ok_or((v, idx))
        };
        let term = match inst.op {
            IrOp::ConstI(v) => Some(Term::IConst(v)),
            IrOp::ConstF(v) => Some(Term::FConst(v)),
            IrOp::Copy => {
                let t = arg(val, 0)?;
                if let Some(d) = inst.dst {
                    bind(val, d, t);
                }
                continue;
            }
            IrOp::Alu(op) => {
                let a = arg(val, 0)?;
                let b = if inst.srcs.len() > 1 { Some(arg(val, 1)?) } else { None };
                Some(Term::Alu(op, a, b))
            }
            IrOp::FAlu(op) => Some(Term::FAlu(op, arg(val, 0)?, arg(val, 1)?)),
            IrOp::FUn(op) => Some(Term::FUn(op, arg(val, 0)?)),
            IrOp::FCmp(op) => Some(Term::FCmp(op, arg(val, 0)?, arg(val, 1)?)),
            IrOp::CvtIF => Some(Term::CvtIF(arg(val, 0)?)),
            IrOp::CvtFI => Some(Term::CvtFI(arg(val, 0)?)),
            IrOp::FSin => Some(Term::FSin(arg(val, 0)?)),
            IrOp::FCos => Some(Term::FCos(arg(val, 0)?)),
            IrOp::Load { width, sign } => {
                Some(Term::Load { width, sign, addr: arg(val, 0)?, mem })
            }
            IrOp::LoadF => Some(Term::LoadF { addr: arg(val, 0)?, mem }),
            IrOp::Store { width } => {
                mem = pool.intern(Term::Store {
                    width,
                    addr: arg(val, 0)?,
                    val: arg(val, 1)?,
                    mem,
                });
                continue;
            }
            IrOp::StoreF => {
                mem = pool.intern(Term::StoreF {
                    addr: arg(val, 0)?,
                    val: arg(val, 1)?,
                    mem,
                });
                continue;
            }
            IrOp::Assert { expect_nz } => {
                events.push(Event::Assert { expect_nz, cond: arg(val, 0)? });
                continue;
            }
            IrOp::ExitIf { exit } => {
                let cond = Some(arg(val, 0)?);
                let state = exit_state(region, exit, val, mem, idx)?;
                events.push(Event::Exit { cond, state: Box::new(state) });
                continue;
            }
            IrOp::ExitAlways { exit } => {
                let state = exit_state(region, exit, val, mem, idx)?;
                events.push(Event::Exit { cond: None, state: Box::new(state) });
                continue;
            }
        };
        if let (Some(t), Some(d)) = (term, inst.dst) {
            let id = pool.intern(t);
            bind(val, d, id);
        }
    }
    Ok(events)
}

fn exit_state(
    region: &Region,
    exit: usize,
    val: &[Option<TermId>],
    mem: TermId,
    inst_idx: usize,
) -> Result<ExitState, (VReg, usize)> {
    let e = region.exits.get(exit).ok_or((VReg(u32::MAX), inst_idx))?;
    let lookup =
        |v: VReg| -> Option<TermId> { val.get(v.0 as usize).copied().flatten() };
    let resolve = |v: Option<VReg>| -> Result<Option<TermId>, (VReg, usize)> {
        match v {
            None => Ok(None),
            Some(v) => lookup(v).map(Some).ok_or((v, inst_idx)),
        }
    };
    let mut gprs = [None; 8];
    let mut fprs = [None; 8];
    let mut flags = [None; 5];
    for (slot, src) in gprs.iter_mut().zip(e.gprs) {
        *slot = resolve(src)?;
    }
    for (slot, src) in fprs.iter_mut().zip(e.fprs) {
        *slot = resolve(src)?;
    }
    for (slot, src) in flags.iter_mut().zip(e.flags) {
        *slot = resolve(src)?;
    }
    let deferred = match e.deferred {
        None => None,
        Some((k, a, b)) => {
            let a = lookup(a).ok_or((a, inst_idx))?;
            let b = lookup(b).ok_or((b, inst_idx))?;
            Some((k, a, b))
        }
    };
    Ok(ExitState {
        kind: e.kind,
        indirect: resolve(e.indirect_target)?,
        gprs,
        fprs,
        flags,
        deferred,
        gcnt: e.gcnt,
        count_idx: e.count_idx,
        mem,
    })
}

fn diff_term(pool: &TermPool, what: &str, a: TermId, b: TermId, out: &mut Vec<String>) {
    if a != b {
        out.push(format!("{what}: {} != {}", pool.render(a), pool.render(b)));
    }
}

fn diff_opt(pool: &TermPool, what: &str, a: Option<TermId>, b: Option<TermId>, out: &mut Vec<String>) {
    match (a, b) {
        (Some(a), Some(b)) => diff_term(pool, what, a, b, out),
        (None, None) => {}
        (Some(a), None) => out.push(format!("{what}: {} != <unchanged>", pool.render(a))),
        (None, Some(b)) => out.push(format!("{what}: <unchanged> != {}", pool.render(b))),
    }
}

/// Compares two summaries interned in the same `pool` and reports every
/// divergence as an [`InvariantKind::SemanticDivergence`] finding.
/// `context` names the producer of `after` (the offending pass or
/// pipeline stage) and is embedded in each finding's message.
pub fn check_equiv(
    pool: &TermPool,
    before: &RegionSummary,
    after: &RegionSummary,
    context: &str,
) -> VerifyReport {
    let mut rep =
        VerifyReport { region_pc: before.guest_entry_pc, findings: Vec::new() };
    let mut fail = |message: String| {
        rep.findings.push(Finding {
            kind: InvariantKind::SemanticDivergence,
            inst: None,
            guest_pc: before.guest_entry_pc,
            message: format!("[{context}] {message}"),
        });
    };
    if before.events.len() != after.events.len() {
        fail(format!(
            "observable event count changed: {} before, {} after",
            before.events.len(),
            after.events.len()
        ));
        return rep;
    }
    for (i, (ea, eb)) in before.events.iter().zip(&after.events).enumerate() {
        if ea == eb {
            continue;
        }
        let mut diffs: Vec<String> = Vec::new();
        match (ea, eb) {
            (
                Event::Assert { expect_nz: pa, cond: ca },
                Event::Assert { expect_nz: pb, cond: cb },
            ) => {
                if pa != pb {
                    diffs.push(format!("assert polarity: {pa} != {pb}"));
                }
                diff_term(pool, "assert cond", *ca, *cb, &mut diffs);
            }
            (Event::Exit { cond: ca, state: sa }, Event::Exit { cond: cb, state: sb }) => {
                diff_opt(pool, "exit cond", *ca, *cb, &mut diffs);
                if sa.kind != sb.kind {
                    diffs.push(format!("exit kind: {:?} != {:?}", sa.kind, sb.kind));
                }
                diff_opt(pool, "indirect target", sa.indirect, sb.indirect, &mut diffs);
                for (r, (a, b)) in sa.gprs.iter().zip(sb.gprs).enumerate() {
                    diff_opt(pool, &format!("gpr{r}"), *a, b, &mut diffs);
                }
                for (r, (a, b)) in sa.fprs.iter().zip(sb.fprs).enumerate() {
                    diff_opt(pool, &format!("fpr{r}"), *a, b, &mut diffs);
                }
                for (f, (a, b)) in sa.flags.iter().zip(sb.flags).enumerate() {
                    diff_opt(pool, &format!("flag{f}"), *a, b, &mut diffs);
                }
                if sa.deferred.map(|(k, ..)| k) != sb.deferred.map(|(k, ..)| k) {
                    diffs.push(format!(
                        "deferred flags kind: {:?} != {:?}",
                        sa.deferred.map(|(k, ..)| k),
                        sb.deferred.map(|(k, ..)| k)
                    ));
                } else if let (Some((_, aa, ab)), Some((_, ba, bb))) =
                    (sa.deferred, sb.deferred)
                {
                    diff_term(pool, "deferred a", aa, ba, &mut diffs);
                    diff_term(pool, "deferred b", ab, bb, &mut diffs);
                }
                if sa.gcnt != sb.gcnt {
                    diffs.push(format!("gcnt: {} != {}", sa.gcnt, sb.gcnt));
                }
                if sa.count_idx != sb.count_idx {
                    diffs.push(format!(
                        "count_idx: {:?} != {:?}",
                        sa.count_idx, sb.count_idx
                    ));
                }
                diff_term(pool, "memory", sa.mem, sb.mem, &mut diffs);
            }
            _ => diffs.push("event kind changed (assert vs exit)".to_string()),
        }
        if diffs.is_empty() {
            // Boxed states compared unequal but every field matched —
            // cannot happen; keep the event visible anyway.
            diffs.push("events differ".to_string());
        }
        for d in diffs {
            fail(format!("event {i}: {d}"));
        }
    }
    rep
}

/// Summarizes a region, converting an undefined-vreg failure into a
/// [`VerifyReport`] (the shape the TOL's verify hooks consume).
///
/// # Errors
/// A one-finding report naming the vreg with no derivable value.
pub fn try_summarize(
    region: &Region,
    pool: &mut TermPool,
    context: &str,
) -> Result<RegionSummary, VerifyReport> {
    summarize(region, pool).map_err(|(v, idx)| VerifyReport {
        region_pc: region.guest_entry_pc,
        findings: vec![Finding {
            kind: InvariantKind::SemanticDivergence,
            inst: Some(idx),
            guest_pc: region
                .insts
                .get(idx)
                .map_or(region.guest_entry_pc, |i| i.guest_pc),
            message: format!("[{context}] no derivable value for {v} at inst {idx}"),
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ExitDesc, Inst, RegClass};
    use crate::passes::{level_passes, run_passes, OptLevel};

    fn demo_region() -> Region {
        let mut r = Region::new(0x4000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let c6 = r.emit(IrOp::ConstI(6), vec![], RegClass::Int);
        let c7 = r.emit(IrOp::ConstI(7), vec![], RegClass::Int);
        let m = r.emit(IrOp::Alu(HAluOp::Mul), vec![c6, c7], RegClass::Int);
        let s = r.emit(IrOp::Alu(HAluOp::Add), vec![a, m], RegClass::Int);
        let cp = r.emit(IrOp::Copy, vec![s], RegClass::Int);
        let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![a, cp]);
        st.seq = 1;
        r.push(st);
        let mut e = ExitDesc::new(ExitKind::Jump { target: 0x4100 });
        e.gprs[0] = Some(cp);
        e.gcnt = 3;
        r.exits.push(e);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        r
    }

    #[test]
    fn folded_and_unfolded_regions_are_equivalent() {
        let mut pool = TermPool::new();
        let r = demo_region();
        let before = summarize(&r, &mut pool).unwrap();
        let mut opt = r.clone();
        let st = run_passes(&mut opt, &level_passes(OptLevel::O2), false).unwrap();
        assert!(st.rewritten > 0, "pipeline did fold something");
        let after = summarize(&opt, &mut pool).unwrap();
        let rep = check_equiv(&pool, &before, &after, "test");
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn constant_tamper_is_detected() {
        let mut pool = TermPool::new();
        let r = demo_region();
        let before = summarize(&r, &mut pool).unwrap();
        let mut bad = r.clone();
        for inst in &mut bad.insts {
            if let IrOp::ConstI(c) = inst.op {
                inst.op = IrOp::ConstI(c.wrapping_add(1));
                break;
            }
        }
        let after = summarize(&bad, &mut pool).unwrap();
        let rep = check_equiv(&pool, &before, &after, "tamper");
        assert!(!rep.is_ok());
        assert_eq!(rep.findings[0].kind, InvariantKind::SemanticDivergence);
        assert!(rep.findings[0].message.contains("[tamper]"), "{rep}");
    }

    #[test]
    fn dropped_store_is_detected() {
        let mut pool = TermPool::new();
        let r = demo_region();
        let before = summarize(&r, &mut pool).unwrap();
        let mut bad = r.clone();
        bad.insts.retain(|i| !i.op.is_store());
        let after = summarize(&bad, &mut pool).unwrap();
        let rep = check_equiv(&pool, &before, &after, "drop-store");
        assert!(!rep.is_ok());
        assert!(
            rep.findings.iter().any(|f| f.message.contains("memory")),
            "memory divergence named: {rep}"
        );
    }

    #[test]
    fn assert_polarity_flip_is_detected() {
        let mut r = Region::new(0x5000);
        let c = r.new_vreg(RegClass::Int);
        r.entry.gprs[1] = Some(c);
        let mut asrt = Inst::new(IrOp::Assert { expect_nz: true }, None, vec![c]);
        asrt.seq = 1;
        r.push(asrt);
        r.exits.push(ExitDesc::new(ExitKind::Jump { target: 0x5004 }));
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        let mut pool = TermPool::new();
        let before = summarize(&r, &mut pool).unwrap();
        let mut bad = r.clone();
        if let IrOp::Assert { expect_nz } = &mut bad.insts[0].op {
            *expect_nz = false;
        }
        let after = summarize(&bad, &mut pool).unwrap();
        let rep = check_equiv(&pool, &before, &after, "flip");
        assert!(!rep.is_ok());
        assert!(rep.findings[0].message.contains("polarity"), "{rep}");
    }

    #[test]
    fn normalization_skips_division() {
        let mut pool = TermPool::new();
        let ten = pool.intern(Term::IConst(10));
        let zero = pool.intern(Term::IConst(0));
        let div = pool.intern(Term::Alu(HAluOp::Div, ten, Some(zero)));
        assert!(
            matches!(pool.term(div), Term::Alu(HAluOp::Div, ..)),
            "division stays symbolic"
        );
        let add = pool.intern(Term::Alu(HAluOp::Add, ten, Some(zero)));
        assert!(matches!(pool.term(add), Term::IConst(10)));
    }

    #[test]
    fn hash_consing_dedups() {
        let mut pool = TermPool::new();
        let a = pool.intern(Term::EntryGpr(0));
        let b = pool.intern(Term::EntryGpr(0));
        assert_eq!(a, b);
        let x = pool.intern(Term::Alu(HAluOp::Add, a, Some(b)));
        let y = pool.intern(Term::Alu(HAluOp::Add, a, Some(b)));
        assert_eq!(x, y);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn undefined_vreg_is_reported() {
        let mut r = Region::new(0x6000);
        let ghost = VReg(7);
        let _ = (0..8).map(|_| r.new_vreg(RegClass::Int)).count();
        let d = r.new_vreg(RegClass::Int);
        r.push(Inst::new(IrOp::Alu(HAluOp::Add), Some(d), vec![ghost, ghost]));
        let mut e = ExitDesc::new(ExitKind::Jump { target: 0 });
        e.gprs[0] = Some(d);
        r.exits.push(e);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        let mut pool = TermPool::new();
        let err = try_summarize(&r, &mut pool, "ctx").unwrap_err();
        assert_eq!(err.findings[0].kind, InvariantKind::SemanticDivergence);
        assert!(err.findings[0].message.contains("v7"), "{err}");
    }

    /// The whole scalar pipeline preserves semantics on the randomized
    /// regions from the passes test generator (every level, many seeds):
    /// the semantic validator itself must never produce a false positive.
    #[test]
    fn pipeline_is_semantics_preserving_on_random_regions() {
        for seed in 0..48u64 {
            for lvl in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
                let mut r = crate::passes::tests::random_region(seed);
                let mut pool = TermPool::new();
                let before = summarize(&r, &mut pool).unwrap();
                run_passes(&mut r, &level_passes(lvl), false).unwrap();
                let after = summarize(&r, &mut pool).unwrap();
                let rep = check_equiv(&pool, &before, &after, "random");
                assert!(rep.is_ok(), "seed {seed} {lvl:?}:\n{rep}");
            }
        }
    }
}
